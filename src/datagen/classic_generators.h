// Textbook random-graph generators.
//
// Used as independent test substrates (known structure, known degree laws)
// and by the Last.fm listener-listener substitute, which is a social graph
// rather than a projection (Chung-Lu with activity-driven expected degrees).

#ifndef D2PR_DATAGEN_CLASSIC_GENERATORS_H_
#define D2PR_DATAGEN_CLASSIC_GENERATORS_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/csr_graph.h"

namespace d2pr {

/// \brief G(n, m): exactly m distinct undirected non-loop edges, uniform.
/// m must not exceed n(n-1)/2.
Result<CsrGraph> ErdosRenyi(NodeId num_nodes, int64_t num_edges, Rng* rng);

/// \brief Barabási–Albert preferential attachment: starts from a clique of
/// `edges_per_node` + 1 nodes, then each new node attaches to
/// `edges_per_node` distinct existing nodes with probability ∝ degree.
Result<CsrGraph> BarabasiAlbert(NodeId num_nodes, int32_t edges_per_node,
                                Rng* rng);

/// \brief Watts–Strogatz small world: ring lattice with `k` nearest
/// neighbors per side... each right-going lattice edge rewired with
/// probability `rewire_prob` to a uniform non-duplicate target.
Result<CsrGraph> WattsStrogatz(NodeId num_nodes, int32_t k,
                               double rewire_prob, Rng* rng);

/// \brief Chung–Lu: undirected edges sampled independently with
/// P(u ~ v) = min(1, w_u·w_v / Σw). Expected degree of u ≈ w_u when the
/// weights are graphical. O(n²) sampling; intended for n up to a few
/// thousand.
Result<CsrGraph> ChungLu(const std::vector<double>& expected_degrees,
                         Rng* rng);

}  // namespace d2pr

#endif  // D2PR_DATAGEN_CLASSIC_GENERATORS_H_
