#include "common/flags.h"

#include <gtest/gtest.h>

#include "d2pr_rank_flags.h"

namespace d2pr {
namespace {

Flags ParseOrDie(std::vector<const char*> args) {
  auto flags = Flags::Parse(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(flags.ok()) << flags.status().ToString();
  return std::move(flags).value();
}

TEST(FlagsTest, EqualsSyntax) {
  Flags flags = ParseOrDie({"--p=0.5", "--graph=edges.txt"});
  EXPECT_TRUE(flags.Has("p"));
  EXPECT_EQ(flags.GetString("graph"), "edges.txt");
  EXPECT_DOUBLE_EQ(flags.GetDouble("p", 0.0).value(), 0.5);
}

TEST(FlagsTest, SpaceSyntax) {
  Flags flags = ParseOrDie({"--alpha", "0.9", "--top", "5"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0).value(), 0.9);
  EXPECT_EQ(flags.GetInt("top", 0).value(), 5);
}

TEST(FlagsTest, BareBooleanFlags) {
  Flags flags = ParseOrDie({"--directed", "--weighted=false", "--stats"});
  EXPECT_TRUE(flags.GetBool("directed", false).value());
  EXPECT_FALSE(flags.GetBool("weighted", true).value());
  EXPECT_TRUE(flags.Has("stats"));
  EXPECT_FALSE(flags.GetBool("absent", false).value());
  EXPECT_TRUE(flags.GetBool("absent", true).value());
}

TEST(FlagsTest, PositionalArguments) {
  Flags flags = ParseOrDie({"input.txt", "--p=1", "output.txt"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.txt", "output.txt"}));
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  Flags flags = ParseOrDie({});
  EXPECT_EQ(flags.GetString("missing", "default"), "default");
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 2.5).value(), 2.5);
  EXPECT_EQ(flags.GetInt("missing", -3).value(), -3);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, BadNumbersAreErrors) {
  Flags flags = ParseOrDie({"--p=abc", "--n=1.5", "--b=maybe"});
  EXPECT_FALSE(flags.GetDouble("p", 0.0).ok());
  EXPECT_FALSE(flags.GetInt("n", 0).ok());
  EXPECT_FALSE(flags.GetBool("b", false).ok());
}

TEST(FlagsTest, MalformedFlagRejected) {
  std::vector<const char*> args{"--=value"};
  auto flags = Flags::Parse(1, args.data());
  EXPECT_FALSE(flags.ok());
}

TEST(FlagsTest, LastValueWins) {
  Flags flags = ParseOrDie({"--p=1", "--p=2"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("p", 0.0).value(), 2.0);
}

TEST(FlagsTest, NegativeNumberAsSeparateValue) {
  // "--p -1" treats "-1" as the value (does not start with "--").
  Flags flags = ParseOrDie({"--p", "-1.5"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("p", 0.0).value(), -1.5);
}

TEST(FlagsTest, FlagNamesEnumerated) {
  Flags flags = ParseOrDie({"--b=1", "--a=2"});
  EXPECT_EQ(flags.FlagNames(), (std::vector<std::string>{"a", "b"}));
}

// ---------------------------------------------------------------------
// d2pr_rank flag-combination rules (ValidateRankFlags). Every rejection
// here is exit code 2 in the binary; every acceptance proceeds to run.
// ---------------------------------------------------------------------

Status ValidateArgs(std::vector<const char*> args) {
  auto flags = Flags::Parse(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(flags.ok()) << flags.status().ToString();
  return ValidateRankFlags(*flags);
}

TEST(RankFlagsTest, MinimalInvocationAccepted) {
  EXPECT_TRUE(ValidateArgs({"--graph=g.txt"}).ok());
}

TEST(RankFlagsTest, GraphIsRequired) {
  EXPECT_FALSE(ValidateArgs({"--p=0.5"}).ok());
}

TEST(RankFlagsTest, UnknownFlagRejected) {
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--partiton=range"}).ok());
}

TEST(RankFlagsTest, PartitionRequiresShards) {
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--partition=range"}).ok());
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--partition=hash"}).ok());
  EXPECT_TRUE(
      ValidateArgs({"--graph=g.txt", "--partition=range", "--shards=4"})
          .ok());
  EXPECT_TRUE(
      ValidateArgs({"--graph=g.txt", "--partition=hash", "--shards=1"})
          .ok());
}

TEST(RankFlagsTopKTest, AcceptedAndRejectedCombinations) {
  EXPECT_TRUE(ValidateArgs({"--graph=g.txt", "--top-k=10"}).ok());
  EXPECT_TRUE(ValidateArgs({"--graph=g.txt", "--top-k=1",
                            "--method=forward-push", "--seeds=3"})
                  .ok());
  EXPECT_TRUE(ValidateArgs({"--graph=g.txt", "--top-k=10", "--shards=2",
                            "--route=partitioned"})
                  .ok());

  // k must be a positive count; 0 would silently mean "exact", so it is
  // rejected rather than reinterpreted.
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--top-k=0"}).ok());
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--top-k=-5"}).ok());
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--top-k=ten"}).ok());
}

TEST(RankFlagsTopKTest, ExcludesTuneAndPartitionAndFullVectorOutputs) {
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--top-k=10", "--tune",
                             "--significance=s.txt"})
                   .ok());
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--top-k=10",
                             "--partition=range", "--shards=2"})
                   .ok());
  EXPECT_FALSE(
      ValidateArgs({"--graph=g.txt", "--top-k=10", "--scores-out=s.bin"})
          .ok());
  EXPECT_FALSE(
      ValidateArgs({"--graph=g.txt", "--top-k=10", "--top=20"}).ok());
}

TEST(RankFlagsTest, PartitionSchemeNamesValidated) {
  EXPECT_FALSE(
      ValidateArgs({"--graph=g.txt", "--partition=modulo", "--shards=2"})
          .ok());
  EXPECT_FALSE(
      ValidateArgs({"--graph=g.txt", "--partition", "--shards=2"}).ok());
  EXPECT_FALSE(ParsePartitionScheme("").ok());
  EXPECT_TRUE(ParsePartitionScheme("range").ok());
  EXPECT_EQ(ParsePartitionScheme("hash").value(), PartitionScheme::kHash);
}

TEST(RankFlagsTest, PartitionExcludesRoute) {
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--partition=range",
                             "--shards=2", "--route=replicated"})
                   .ok());
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--partition=hash",
                             "--shards=2", "--route=partitioned"})
                   .ok());
}

TEST(RankFlagsTest, PartitionExcludesForwardPush) {
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--partition=range",
                             "--shards=2", "--method=forward-push"})
                   .ok());
  EXPECT_TRUE(ValidateArgs({"--graph=g.txt", "--partition=range",
                            "--shards=2", "--method=gauss-seidel"})
                  .ok());
  EXPECT_TRUE(ValidateArgs({"--graph=g.txt", "--partition=range",
                            "--shards=2", "--method=power"})
                  .ok());
}

TEST(RankFlagsTest, PartitionExcludesTuneViaShardsRule) {
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--partition=range",
                             "--shards=2", "--tune",
                             "--significance=s.txt"})
                   .ok());
}

TEST(RankFlagsTest, SlicesRequiresPartitionAndValidatesVocabulary) {
  // --slices selects the partitioned router's slice construction; it is
  // meaningless without --partition.
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--slices=subgraph"}).ok());
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--slices=matrix",
                             "--shards=4"})
                   .ok());
  EXPECT_TRUE(ValidateArgs({"--graph=g.txt", "--partition=range",
                            "--shards=4", "--slices=matrix"})
                  .ok());
  EXPECT_TRUE(ValidateArgs({"--graph=g.txt", "--partition=hash",
                            "--shards=2", "--slices=subgraph"})
                  .ok());
  // Vocabulary: a typo'd mode is exit 2, and a bare --slices (empty
  // value) is as unknown as any other misspelling.
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--partition=range",
                             "--shards=4", "--slices=sliced"})
                   .ok());
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--partition=range",
                             "--shards=4", "--slices"})
                   .ok());
  EXPECT_EQ(ParseSliceBuild("").value(), SliceBuild::kFromMatrix);
  EXPECT_EQ(ParseSliceBuild("matrix").value(), SliceBuild::kFromMatrix);
  EXPECT_EQ(ParseSliceBuild("subgraph").value(), SliceBuild::kSubgraph);
  EXPECT_FALSE(ParseSliceBuild("local").ok());
}

TEST(RankFlagsTest, SlicesComposesWithPartitionServingFlags) {
  EXPECT_TRUE(ValidateArgs({"--graph=g.txt", "--partition=hash",
                            "--shards=4", "--slices=subgraph",
                            "--threads=4", "--repeat=16",
                            "--method=gauss-seidel", "--seeds=1,2,3"})
                  .ok());
  // --cache-dir stays legal with --slices=subgraph (the store still
  // serves warm-start and non-partitioned paths); the subgraph build
  // simply never touches it for the transition.
  EXPECT_TRUE(ValidateArgs({"--graph=g.txt", "--partition=range",
                            "--shards=2", "--slices=subgraph",
                            "--cache-dir=/tmp/store", "--cache-mode=rw"})
                  .ok());
}

TEST(RankFlagsTest, PartitionComposesWithServingAndCacheFlags) {
  EXPECT_TRUE(ValidateArgs({"--graph=g.txt", "--partition=hash",
                            "--shards=4", "--threads=4", "--repeat=16",
                            "--cache-dir=/tmp/store", "--cache-mode=rw",
                            "--seeds=1,2,3"})
                  .ok());
}

TEST(RankFlagsTest, ValueVocabulariesValidated) {
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--method=jacobi"}).ok());
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--shards=2",
                             "--route=scatter"})
                   .ok());
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--cache-dir=/tmp/s",
                             "--cache-mode=sometimes"})
                   .ok());
  EXPECT_TRUE(ValidateArgs({"--graph=g.txt", "--method=gauss-seidel",
                            "--shards=2", "--route=least-loaded",
                            "--cache-dir=/tmp/s", "--cache-mode=read"})
                  .ok());
  EXPECT_EQ(ParseRankMethod("forward-push").value(),
            SolverMethod::kForwardPush);
  EXPECT_EQ(ParseCacheMode("write").value(), PersistMode::kWriteOnly);
  EXPECT_EQ(ParseRoute("partitioned").value().policy,
            RoutingPolicy::kPartitionedTeleport);
  EXPECT_EQ(ParseRoute("").value().strategy, ReplicaStrategy::kRoundRobin);
}

TEST(RankFlagsTest, ExistingCombinationRulesStillEnforced) {
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--route=replicated"}).ok());
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--cache-mode=rw"}).ok());
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--tune"}).ok());
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--significance=s.txt"}).ok());
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--tune",
                             "--significance=s.txt", "--seeds=1"})
                   .ok());
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--tune",
                             "--significance=s.txt", "--shards=2"})
                   .ok());
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--shards=0"}).ok());
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--threads=-1"}).ok());
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--repeat=0"}).ok());
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "--p=abc"}).ok());
  EXPECT_FALSE(ValidateArgs({"--graph=g.txt", "stray-positional"}).ok());
}

}  // namespace
}  // namespace d2pr
