#include "api/transition_cache.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/classic_generators.h"

namespace d2pr {
namespace {

std::shared_ptr<const TransitionMatrix> BuildShared(const CsrGraph& graph,
                                                    double p) {
  auto built = TransitionMatrix::Build(graph, {.p = p});
  EXPECT_TRUE(built.ok());
  return std::make_shared<const TransitionMatrix>(std::move(built).value());
}

TEST(TransitionCacheTest, HitAndMissAccounting) {
  Rng rng(1);
  auto graph = ErdosRenyi(50, 150, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionCache cache(4);

  const TransitionKey key{0.5, 0.0, DegreeMetric::kOutDegree};
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 0);

  cache.Insert(key, BuildShared(*graph, 0.5));
  auto found = cache.Lookup(key);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TransitionCacheTest, DistinctKeysDoNotCollide) {
  Rng rng(2);
  auto graph = ErdosRenyi(50, 150, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionCache cache(4);
  cache.Insert({0.5, 0.0, DegreeMetric::kOutDegree}, BuildShared(*graph, 0.5));

  EXPECT_EQ(cache.Lookup({0.6, 0.0, DegreeMetric::kOutDegree}), nullptr);
  EXPECT_EQ(cache.Lookup({0.5, 0.5, DegreeMetric::kOutDegree}), nullptr);
  EXPECT_EQ(cache.Lookup({0.5, 0.0, DegreeMetric::kInDegree}), nullptr);
  EXPECT_NE(cache.Lookup({0.5, 0.0, DegreeMetric::kOutDegree}), nullptr);
}

TEST(TransitionCacheTest, EvictsLeastRecentlyUsed) {
  Rng rng(3);
  auto graph = ErdosRenyi(40, 120, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionCache cache(2);
  const TransitionKey a{1.0, 0.0, DegreeMetric::kOutDegree};
  const TransitionKey b{2.0, 0.0, DegreeMetric::kOutDegree};
  const TransitionKey c{3.0, 0.0, DegreeMetric::kOutDegree};
  cache.Insert(a, BuildShared(*graph, 1.0));
  cache.Insert(b, BuildShared(*graph, 2.0));
  // Touch `a` so `b` becomes the eviction victim.
  EXPECT_NE(cache.Lookup(a), nullptr);
  cache.Insert(c, BuildShared(*graph, 3.0));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Lookup(a), nullptr);
  EXPECT_NE(cache.Lookup(c), nullptr);
  EXPECT_EQ(cache.Lookup(b), nullptr);
}

TEST(TransitionCacheTest, SharedOwnershipSurvivesEviction) {
  Rng rng(4);
  auto graph = ErdosRenyi(40, 120, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionCache cache(1);
  const TransitionKey a{1.0, 0.0, DegreeMetric::kOutDegree};
  cache.Insert(a, BuildShared(*graph, 1.0));
  auto held = cache.Lookup(a);
  ASSERT_NE(held, nullptr);
  cache.Insert({2.0, 0.0, DegreeMetric::kOutDegree},
               BuildShared(*graph, 2.0));  // evicts `a`
  EXPECT_EQ(cache.Lookup(a), nullptr);
  // The evicted matrix stays valid for holders of the shared_ptr.
  EXPECT_EQ(held->num_nodes(), 40);
  EXPECT_FALSE(held->probs().empty());
}

TEST(TransitionCacheTest, ZeroCapacityDisablesCaching) {
  Rng rng(5);
  auto graph = ErdosRenyi(40, 120, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionCache cache(0);
  const TransitionKey a{1.0, 0.0, DegreeMetric::kOutDegree};
  cache.Insert(a, BuildShared(*graph, 1.0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(a), nullptr);
}

TEST(TransitionCacheTest, ReinsertRefreshesValueWithoutGrowth) {
  Rng rng(6);
  auto graph = ErdosRenyi(40, 120, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionCache cache(4);
  const TransitionKey a{1.0, 0.0, DegreeMetric::kOutDegree};
  cache.Insert(a, BuildShared(*graph, 1.0));
  auto replacement = BuildShared(*graph, 1.0);
  cache.Insert(a, replacement);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup(a), replacement);
}

}  // namespace
}  // namespace d2pr
