// High-level one-shot D2PR API: one call from graph to scores.
//
//   CsrGraph graph = ...;
//   auto ranked = ComputeD2pr(graph, {.p = 0.5});
//   if (ranked.ok()) use(ranked->scores);
//
// These free functions are thin wrappers over a call-scoped D2prEngine
// (api/engine.h). Applications issuing many queries against one graph —
// sweeps, tuning, personalized serving — should construct a D2prEngine
// directly to reuse its transition cache and warm starts across calls.

#ifndef D2PR_CORE_D2PR_H_
#define D2PR_CORE_D2PR_H_

#include <span>

#include "common/result.h"
#include "core/pagerank.h"
#include "core/transition.h"
#include "graph/csr_graph.h"

namespace d2pr {

/// \brief All knobs of a degree de-coupled PageRank computation.
struct D2prOptions {
  /// Degree de-coupling weight (paper's p): 0 = conventional PageRank,
  /// > 0 penalizes high-degree destinations, < 0 boosts them.
  double p = 0.0;
  /// Connection-strength blend on weighted graphs (paper's β); 0 = full
  /// de-coupling (paper default), 1 = conventional weighted PageRank.
  double beta = 0.0;
  /// Residual probability (paper's α).
  double alpha = 0.85;
  double tolerance = 1e-10;
  int max_iterations = 200;
  DegreeMetric metric = DegreeMetric::kAuto;
  DanglingPolicy dangling = DanglingPolicy::kTeleport;
};

/// \brief Computes D2PR scores with a uniform teleport vector.
Result<PagerankResult> ComputeD2pr(const CsrGraph& graph,
                                   const D2prOptions& options = {});

/// \brief Conventional PageRank (p = 0, and β = 1 on weighted graphs so
/// edge weights act as connection strengths, exactly the classical
/// weighted-PageRank transition).
Result<PagerankResult> ComputeConventionalPagerank(const CsrGraph& graph,
                                                   double alpha = 0.85);

/// \brief Personalized D2PR: teleportation restricted to `seeds` (uniform
/// across them). Combines the paper's de-coupling with PPR-style context.
Result<PagerankResult> ComputePersonalizedD2pr(
    const CsrGraph& graph, std::span<const NodeId> seeds,
    const D2prOptions& options = {});

/// \brief Translates D2prOptions into the two lower-level configs.
TransitionConfig ToTransitionConfig(const D2prOptions& options);
PagerankOptions ToPagerankOptions(const D2prOptions& options);

}  // namespace d2pr

#endif  // D2PR_CORE_D2PR_H_
