// Engine thread-safety regressions: EngineStats counters must stay exact
// under concurrent Rank calls (plain int64 counters would race and
// undercount), concurrent misses on one transition key must build it
// exactly once (single-flight), per-thread warm-start trajectories on a
// shared engine must reproduce the single-threaded results, and the
// EngineRouter's shared ScoreCache must keep exact counters — and never
// serve a partial per-shard response — under concurrent sharded traffic.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "common/rng.h"
#include "datagen/classic_generators.h"
#include "serve/engine_router.h"

namespace d2pr {
namespace {

Result<CsrGraph> TestGraph(uint64_t seed, NodeId nodes = 200,
                           int64_t edges = 600) {
  Rng rng(seed);
  return ErdosRenyi(nodes, edges, &rng);
}

TEST(EngineConcurrencyTest, StatsCountersStayExactUnderConcurrentRank) {
  auto graph = TestGraph(11);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 24;
  const std::vector<double> p_values = {0.0, 0.5, 1.0, 1.5};

  std::atomic<int64_t> total_iterations{0};
  std::atomic<int64_t> cache_hits_seen{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      int64_t iterations = 0;
      int64_t hits = 0;
      for (int i = 0; i < kPerThread; ++i) {
        RankRequest request;
        request.p = p_values[(t + i) % p_values.size()];
        request.tolerance = 1e-8;
        auto response = engine.Rank(request);
        if (!response.ok()) {
          ++failures;
          return;
        }
        iterations += response->iterations;
        if (response->transition_cache_hit) ++hits;
      }
      total_iterations += iterations;
      cache_hits_seen += hits;
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);

  constexpr int64_t kTotal = kThreads * kPerThread;
  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.requests, kTotal);
  // Single-flight: each of the 4 distinct keys is built exactly once no
  // matter how many threads miss on it simultaneously.
  EXPECT_EQ(stats.transition_builds,
            static_cast<int64_t>(p_values.size()));
  // Every request either hit the cache or performed the build.
  EXPECT_EQ(stats.transition_cache_hits + stats.transition_builds, kTotal);
  EXPECT_EQ(stats.transition_cache_hits, cache_hits_seen.load());
  // The exactness regression: summed per-response iterations must equal
  // the engine's cumulative counter — lost increments would show here.
  EXPECT_EQ(stats.solver_iterations, total_iterations.load());
}

TEST(EngineConcurrencyTest, PushCountersAggregateExactly) {
  auto graph = TestGraph(12);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  std::atomic<int64_t> total_pushes{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      int64_t pushes = 0;
      for (int i = 0; i < kPerThread; ++i) {
        RankRequest request;
        request.p = 0.5;
        request.method = SolverMethod::kForwardPush;
        request.push_epsilon = 1e-5;
        request.seeds = {static_cast<NodeId>((t * kPerThread + i) %
                                             engine.graph().num_nodes())};
        auto response = engine.Rank(request);
        if (!response.ok()) {
          ++failures;
          return;
        }
        pushes += response->pushes;
      }
      total_pushes += pushes;
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);

  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.requests, kThreads * kPerThread);
  EXPECT_EQ(stats.push_operations, total_pushes.load());
  EXPECT_EQ(stats.transition_builds, 1);
}

TEST(EngineConcurrencyTest, PerThreadWarmTrajectoriesMatchSequential) {
  auto graph = TestGraph(13, 150, 450);
  ASSERT_TRUE(graph.ok());

  const std::vector<double> grid = {-1.0, -0.5, 0.0, 0.5, 1.0};
  auto make_request = [&](double p, const std::string& tag) {
    RankRequest request;
    request.p = p;
    request.tolerance = 1e-10;
    request.warm_start_tag = tag;
    return request;
  };

  // Sequential reference: one engine, one tag, the grid in order.
  D2prEngine reference = D2prEngine::Borrowing(*graph);
  std::vector<std::vector<double>> expected;
  for (double p : grid) {
    auto response = reference.Rank(make_request(p, "ref"));
    ASSERT_TRUE(response.ok());
    expected.push_back(response->scores);
  }

  // Concurrent: 4 threads share one engine, each walking its own tag.
  // Warm trajectories are per-tag state, so every thread must reproduce
  // the sequential scores bit-for-bit.
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  constexpr int kThreads = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string tag = "thread-" + std::to_string(t);
      for (size_t i = 0; i < grid.size(); ++i) {
        auto response = engine.Rank(make_request(grid[i], tag));
        if (!response.ok() || response->scores != expected[i]) ++mismatches;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(engine.stats().warm_start_hits, 0);
}

TEST(EngineConcurrencyTest, RouterSharedScoreCacheExactUnderTraffic) {
  auto graph = TestGraph(14);
  ASSERT_TRUE(graph.ok());

  // 16 distinct requests, half global, half personalized with seed sets
  // spanning several owner shards — so partitioned routing splits them
  // and only the *merged* response may ever reach the shared cache.
  std::vector<RankRequest> distinct;
  for (int i = 0; i < 16; ++i) {
    RankRequest request;
    request.tolerance = 1e-10;
    if (i < 8) {
      request.p = -0.8 + 0.3 * i;
    } else {
      request.p = 0.5;
      request.seeds = {static_cast<NodeId>(i), static_cast<NodeId>(i + 1),
                       static_cast<NodeId>(i + 2)};
    }
    distinct.push_back(std::move(request));
  }

  RouterOptions options;
  options.num_shards = 4;
  options.policy = RoutingPolicy::kPartitionedTeleport;
  // Reference responses are deterministic per request (routing state
  // never affects scores), computed on a cacheless twin router.
  options.score_cache_capacity = 0;
  EngineRouter reference = EngineRouter::Borrowing(*graph, options);
  std::vector<std::vector<double>> expected;
  for (const RankRequest& request : distinct) {
    auto response = reference.Rank(request);
    ASSERT_TRUE(response.ok());
    expected.push_back(response->scores);
  }

  // Capacity 8 < 16 distinct keys: the LFU path must evict under load.
  options.score_cache_capacity = 8;
  EngineRouter router = EngineRouter::Borrowing(*graph, options);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 32;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const size_t index =
            static_cast<size_t>(t * 5 + i) % distinct.size();
        auto response = router.Rank(distinct[index]);
        if (!response.ok()) {
          ++failures;
          return;
        }
        // A response built for any other request's key — including a
        // partial per-shard response of a split request — differs from
        // the deterministic reference and shows up here.
        if (response->scores != expected[index]) ++mismatches;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  constexpr int64_t kTotal = kThreads * kPerThread;
  const ScoreCacheStats cache = router.score_cache().stats();
  // Exactness: every Rank call probes the cache exactly once, every miss
  // inserts exactly once, and nothing is lost under concurrency.
  EXPECT_EQ(cache.hits + cache.misses, kTotal);
  EXPECT_EQ(cache.insertions, cache.misses);
  EXPECT_EQ(cache.expirations, 0);
  EXPECT_LE(router.score_cache().size(), 8u);
  // 16 distinct keys through an 8-entry cache force evictions.
  EXPECT_GE(cache.evictions, 8);
}

}  // namespace
}  // namespace d2pr
