// ServingRuntime: a multi-threaded batch/async serving layer over one
// thread-safe D2prEngine.
//
// The engine makes concurrent Rank calls safe; the runtime makes them
// fast and convenient for a server:
//
//   * RankBatch fans independent requests out across a fixed ThreadPool.
//     Warm-started requests are the exception: trajectory lookups and
//     stores mutate one LRU-evicting store inside the engine, so ALL
//     tagged requests of a batch run chained on one worker in submission
//     order (per-tag chains would leave the cross-tag eviction order a
//     race). That keeps the warm store's operation sequence — and with
//     the score cache disabled, every field of every response —
//     identical to the engine's sequential RankBatch on the same
//     starting state. One caveat: scores and solver diagnostics are
//     schedule-independent unconditionally, but the normalized
//     transition_cache_hit flags of *later* batches assume earlier
//     parallel batches did not overflow the engine's transition cache
//     (more distinct keys per batch than transition_cache_capacity
//     makes the surviving resident set schedule-dependent).
//   * RankAsync returns a std::future so a server can overlap solves
//     with IO and fan-in replies as they complete.
//   * A ScoreCache memoizes full responses keyed by the entire request,
//     so repeated identical queries skip the solve outright. Warm-started
//     requests bypass it (their responses depend on trajectory state).
//
// For multi-engine sharding behind this same query surface (replicated
// or seed-partitioned fleets), see serve/engine_router.h.
//
// One runtime per engine per process is the intended shape:
//
//   D2prEngine engine(std::move(graph));
//   ServingRuntime runtime = ServingRuntime::Borrowing(
//       engine, {.num_threads = 4});
//   auto responses = runtime.RankBatch(requests);       // parallel
//   auto future = runtime.RankAsync(request);           // overlap with IO
//   RankResponse reply = future.get().value();

#ifndef D2PR_SERVE_SERVING_RUNTIME_H_
#define D2PR_SERVE_SERVING_RUNTIME_H_

#include <condition_variable>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/rank_request.h"
#include "common/result.h"
#include "serve/score_cache.h"
#include "serve/thread_pool.h"

namespace d2pr {

/// \brief ServingRuntime construction knobs.
struct ServingOptions {
  /// Worker threads in the pool (0 is clamped to 1).
  size_t num_threads = 4;
  /// Response memo entry budget; 0 = no entry limit. The cache is
  /// disabled only when this and score_cache_capacity_bytes are both 0.
  size_t score_cache_capacity = 256;
  /// Response memo byte budget (see ScoreCacheOptions::capacity_bytes);
  /// 0 = no byte limit.
  size_t score_cache_capacity_bytes = 0;
  /// Response memo TTL; zero means entries never expire by age.
  std::chrono::nanoseconds score_cache_ttl{0};
  /// Injectable time source for the score cache (tests).
  std::function<std::chrono::steady_clock::time_point()> clock;
};

/// \brief Thread-pool batch/async execution plus response memoization
/// over a shared D2prEngine.
class ServingRuntime {
 public:
  /// Shares ownership of `engine`.
  explicit ServingRuntime(std::shared_ptr<D2prEngine> engine,
                          const ServingOptions& options = {});

  /// Borrows `engine`; the caller keeps it alive for the runtime's
  /// lifetime (the pattern tools and tests use for stack engines).
  static ServingRuntime Borrowing(D2prEngine& engine,
                                  const ServingOptions& options = {});

  D2prEngine& engine() { return *engine_; }
  const ScoreCache& score_cache() const { return score_cache_; }
  size_t num_threads() const { return pool_.num_threads(); }

  /// \brief One query through the score cache, on the caller's thread.
  Result<RankResponse> Rank(const RankRequest& request);

  /// \brief Executes `requests` on the worker pool and returns their
  /// responses in request order.
  ///
  /// Independent requests run concurrently; warm-started requests run
  /// sequentially in submission order relative to each other, so
  /// trajectories (and the warm store's eviction order) stay as the
  /// sequential path would leave them. Cache-hit diagnostics on the
  /// responses are normalized to the sequential reference execution
  /// (see RankBatch determinism note in the file comment). On failure,
  /// returns the error of the lowest-index failing request — the same
  /// status the fail-fast sequential path reports; side effects of
  /// later requests (caches, warm stores) are unspecified in that case.
  Result<std::vector<RankResponse>> RankBatch(
      std::span<const RankRequest> requests);

  /// \brief Enqueues one query and immediately returns its future.
  ///
  /// Warm-started async requests are legal but their trajectory order is
  /// whatever the pool happens to run; serialize via RankBatch (or one
  /// tag per in-flight request) when order matters.
  std::future<Result<RankResponse>> RankAsync(RankRequest request);

  /// \brief Enqueues one query; `done` runs on the worker that solved it,
  /// with the result.
  ///
  /// The completion-queue form: instead of parking a thread per request
  /// on future.get(), a server hands in a callback that posts the result
  /// onto its own response queue — N in-flight requests cost zero waiting
  /// threads (see net/server.h). `done` must not block for long and must
  /// not call back into this runtime's batch surface; it runs inline on a
  /// pool worker.
  ///
  /// A non-null `gate` runs on the worker immediately before the solve;
  /// returning non-OK skips the solve entirely and delivers that status
  /// to `done`. This is the deadline hook: a request whose deadline
  /// expired while queued is rejected at the last responsible moment
  /// without the engine ever seeing it.
  void RankAsync(RankRequest request,
                 std::function<void(Result<RankResponse>)> done,
                 std::function<Status()> gate = nullptr);

  /// The worker pool, exposed so an admission-control layer (net/server.h)
  /// can read queue_depth() to shed load before enqueueing, and so tests
  /// can park workers deterministically.
  ThreadPool& pool() { return pool_; }

 private:
  /// Score-cache-aware single execution. When `expected_cache_hit` is
  /// set, the response's transition_cache_hit flag is overwritten with
  /// the sequential-reference value (batch determinism).
  Result<RankResponse> Execute(const RankRequest& request,
                               std::optional<bool> expected_cache_hit);

  /// Replays the engine's LRU transition cache over `requests` in
  /// sequence, starting from its current contents, and returns the
  /// hit/miss flag each request would see on the sequential path.
  std::vector<bool> SimulateSequentialCacheHits(
      std::span<const RankRequest> requests) const;

  std::shared_ptr<D2prEngine> engine_;
  ScoreCache score_cache_;

  /// Single-flight for cacheable queries: guards inflight_keys_, the
  /// score-cache keys currently being solved. Concurrent identical
  /// requests wait for the first solve and take the memo hit instead of
  /// duplicating the full solve (the engine only deduplicates the
  /// transition build, not the iteration).
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  std::vector<std::string> inflight_keys_;

  ThreadPool pool_;  // last member: workers must die before state above
};

}  // namespace d2pr

#endif  // D2PR_SERVE_SERVING_RUNTIME_H_
