#include "graph/graph_metrics.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/classic_generators.h"
#include "graph/graph_builder.h"

namespace d2pr {
namespace {

CsrGraph BuildOrDie(GraphBuilder* builder) {
  auto result = builder->Build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

CsrGraph Triangle() {
  GraphBuilder builder(3, GraphKind::kUndirected);
  EXPECT_TRUE(builder.AddEdge(0, 1).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2).ok());
  EXPECT_TRUE(builder.AddEdge(2, 0).ok());
  return BuildOrDie(&builder);
}

CsrGraph Star(NodeId leaves) {
  GraphBuilder builder(leaves + 1, GraphKind::kUndirected);
  for (NodeId leaf = 1; leaf <= leaves; ++leaf) {
    EXPECT_TRUE(builder.AddEdge(0, leaf).ok());
  }
  return BuildOrDie(&builder);
}

TEST(ClusteringTest, TriangleIsFullyClustered) {
  CsrGraph graph = Triangle();
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(graph, v), 1.0);
  }
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(graph), 1.0);
  EXPECT_DOUBLE_EQ(GlobalTransitivity(graph), 1.0);
}

TEST(ClusteringTest, StarHasNoTriangles) {
  CsrGraph graph = Star(5);
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(graph, 0), 0.0);
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(graph), 0.0);
  EXPECT_DOUBLE_EQ(GlobalTransitivity(graph), 0.0);
}

TEST(ClusteringTest, TriangleWithPendant) {
  // Triangle {0,1,2} plus pendant 3 attached to 0.
  GraphBuilder builder(4, GraphKind::kUndirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  ASSERT_TRUE(builder.AddEdge(2, 0).ok());
  ASSERT_TRUE(builder.AddEdge(0, 3).ok());
  CsrGraph graph = BuildOrDie(&builder);
  // Node 0 has neighbors {1,2,3}: one of three pairs connected.
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(graph, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(graph, 1), 1.0);
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(graph, 3), 0.0);
  // Average over nodes with degree >= 2: (1/3 + 1 + 1) / 3.
  EXPECT_NEAR(AverageClusteringCoefficient(graph), (1.0 / 3.0 + 2.0) / 3.0,
              1e-12);
  // Transitivity: 3 triangles corners / triples: triples = C(3,2)+1+1 = 5;
  // closed = 3 -> 0.6.
  EXPECT_DOUBLE_EQ(GlobalTransitivity(graph), 3.0 / 5.0);
}

TEST(ClusteringTest, SelfLoopsIgnored) {
  GraphBuilder builder(3, GraphKind::kUndirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  ASSERT_TRUE(builder.AddEdge(2, 0).ok());
  ASSERT_TRUE(builder.AddEdge(0, 0).ok());
  CsrGraph graph = BuildOrDie(&builder);
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(graph, 0), 1.0);
}

TEST(ClusteringTest, WattsStrogatzLatticeValue) {
  // Ring lattice with k = 2: C = (3k - 3) / (4k - 2) = 3/6 = 0.5.
  Rng rng(1);
  auto graph = WattsStrogatz(50, 2, 0.0, &rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_NEAR(AverageClusteringCoefficient(*graph), 0.5, 1e-12);
}

TEST(ClusteringTest, RewiringReducesClustering) {
  Rng rng(2);
  auto lattice = WattsStrogatz(300, 3, 0.0, &rng);
  auto random = WattsStrogatz(300, 3, 1.0, &rng);
  ASSERT_TRUE(lattice.ok());
  ASSERT_TRUE(random.ok());
  EXPECT_GT(AverageClusteringCoefficient(*lattice),
            3.0 * AverageClusteringCoefficient(*random));
}

TEST(AssortativityTest, StarIsPerfectlyDisassortative) {
  CsrGraph graph = Star(6);
  EXPECT_NEAR(DegreeAssortativity(graph), -1.0, 1e-12);
}

TEST(AssortativityTest, RegularGraphIsDegenerate) {
  Rng rng(3);
  auto graph = WattsStrogatz(40, 2, 0.0, &rng);
  ASSERT_TRUE(graph.ok());
  // All degrees equal: correlation undefined -> 0 by convention.
  EXPECT_DOUBLE_EQ(DegreeAssortativity(*graph), 0.0);
}

TEST(AssortativityTest, TwoStarsJoinedAtLeavesArePositivelyMixed) {
  // Path of two hubs: hub A (0) - leaves 1..3; hub B (4) - leaves 5..7;
  // hubs connected. Hub-hub edge joins degree-4 to degree-4.
  GraphBuilder builder(8, GraphKind::kUndirected);
  for (NodeId leaf : {1, 2, 3}) ASSERT_TRUE(builder.AddEdge(0, leaf).ok());
  for (NodeId leaf : {5, 6, 7}) ASSERT_TRUE(builder.AddEdge(4, leaf).ok());
  ASSERT_TRUE(builder.AddEdge(0, 4).ok());
  CsrGraph joined = BuildOrDie(&builder);
  // Compare against a single star with the same leaf count.
  EXPECT_GT(DegreeAssortativity(joined), DegreeAssortativity(Star(7)));
}

TEST(AssortativityTest, EmptyGraphIsZero) {
  GraphBuilder builder(5, GraphKind::kUndirected);
  CsrGraph graph = BuildOrDie(&builder);
  EXPECT_DOUBLE_EQ(DegreeAssortativity(graph), 0.0);
}

TEST(MetricsDeathTest, DirectedGraphsRejectedForClustering) {
  GraphBuilder builder(3, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  CsrGraph graph = BuildOrDie(&builder);
  EXPECT_DEATH((void)AverageClusteringCoefficient(graph), "CHECK failed");
}

}  // namespace
}  // namespace d2pr
