// Handshake rejection semantics: every way a cluster can be mis-wired
// maps to a DISTINCT status code, so an operator diagnoses the
// misconfiguration from the code alone — and a rejected connection never
// poisons the shard for a correctly-configured coordinator.
//
//   wrong shard id (channels permuted)       -> NotFound
//   wrong shard count                        -> OutOfRange
//   wrong partition scheme                   -> FailedPrecondition
//   graph fingerprint mismatch               -> FailedPrecondition
//   transition key mismatch (p/beta/metric)  -> InvalidArgument
//   shard claimed by another live session    -> AlreadyExists

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/teleport.h"
#include "dist/coordinator.h"
#include "dist_test_util.h"
#include "graph/partition.h"

namespace d2pr {
namespace {

class DistHandshakeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(47);
    auto graph = BarabasiAlbert(150, 2, &rng);
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<CsrGraph>(std::move(graph).value());
  }

  std::unique_ptr<CsrGraph> graph_;
};

TEST_F(DistHandshakeTest, MatchingDeclarationsHandshakeClean) {
  DistFleet fleet = MakeFleet(*graph_, 2);
  DistributedCoordinator coordinator(fleet.raw,
                                     MakeCoordinatorOptions(*graph_));
  EXPECT_TRUE(coordinator.Handshake().ok());
}

TEST_F(DistHandshakeTest, PermutedChannelsAreNotFound) {
  // Shard 1's worker answering for shard 0: the worker names the shard
  // it actually hosts.
  DistFleet fleet = MakeFleet(*graph_, 2);
  std::swap(fleet.raw[0], fleet.raw[1]);
  DistributedCoordinator coordinator(fleet.raw,
                                     MakeCoordinatorOptions(*graph_));
  const Status status = coordinator.Handshake();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(DistHandshakeTest, WrongShardCountIsOutOfRange) {
  // Workers partitioned 2-way, coordinator only driving one of them as
  // a 1-shard cluster.
  DistFleet fleet = MakeFleet(*graph_, 2);
  std::vector<ShardChannel*> first_only = {fleet.raw[0]};
  DistributedCoordinator coordinator(first_only,
                                     MakeCoordinatorOptions(*graph_));
  const Status status = coordinator.Handshake();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
}

TEST_F(DistHandshakeTest, WrongSchemeIsFailedPrecondition) {
  DistFleet fleet = MakeFleet(*graph_, 2, PartitionScheme::kHash);
  DistributedCoordinator coordinator(
      fleet.raw, MakeCoordinatorOptions(*graph_, PartitionScheme::kRange));
  const Status status = coordinator.Handshake();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("scheme"), std::string::npos);
}

TEST_F(DistHandshakeTest, FingerprintMismatchIsFailedPrecondition) {
  // The coordinator believes in a different graph than the workers hold.
  DistFleet fleet = MakeFleet(*graph_, 2);
  CoordinatorOptions options = MakeCoordinatorOptions(*graph_);
  options.graph_fingerprint ^= 1;
  DistributedCoordinator coordinator(fleet.raw, options);
  const Status status = coordinator.Handshake();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("fingerprint"), std::string::npos);
}

TEST_F(DistHandshakeTest, TransitionKeyMismatchIsInvalidArgument) {
  TransitionConfig worker_config;
  worker_config.p = 0.5;
  DistFleet fleet = MakeFleet(*graph_, 2, PartitionScheme::kRange,
                              worker_config);
  TransitionConfig coordinator_config;
  coordinator_config.p = 0.75;
  DistributedCoordinator coordinator(
      fleet.raw, MakeCoordinatorOptions(*graph_, PartitionScheme::kRange,
                                        coordinator_config));
  const Status status = coordinator.Handshake();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("transition key"), std::string::npos);
}

TEST_F(DistHandshakeTest, DuplicateClaimIsAlreadyExistsAndLeavesOwnerAlive) {
  // Coordinator A claims the fleet; coordinator B — a second set of
  // connections to the same workers — is turned away per shard with
  // AlreadyExists, and A keeps working: the rejection closed B's claim
  // attempt, not A's session.
  DistFleet fleet = MakeFleet(*graph_, 2);
  DistributedCoordinator first(fleet.raw, MakeCoordinatorOptions(*graph_));
  ASSERT_TRUE(first.Handshake().ok());

  std::vector<std::unique_ptr<InProcessShardChannel>> second_connections;
  std::vector<ShardChannel*> second_raw;
  for (auto& worker : fleet.workers) {
    second_connections.push_back(
        std::make_unique<InProcessShardChannel>(*worker));
    second_raw.push_back(second_connections.back().get());
  }
  DistributedCoordinator second(second_raw,
                                MakeCoordinatorOptions(*graph_));
  const Status status = second.Handshake();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);

  PagerankOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 500;
  auto solved = first.Solve(SolverMethod::kPower,
                            UniformTeleport(graph_->num_nodes()), options);
  EXPECT_TRUE(solved.ok()) << solved.status().ToString();
}

TEST_F(DistHandshakeTest, ReleasedClaimIsReclaimable) {
  // When A's sessions close (CloseSession — what the hosting server does
  // as A's connections die), B's handshake must succeed.
  DistFleet fleet = MakeFleet(*graph_, 2);
  DistributedCoordinator first(fleet.raw, MakeCoordinatorOptions(*graph_));
  ASSERT_TRUE(first.Handshake().ok());
  for (size_t s = 0; s < fleet.workers.size(); ++s) {
    fleet.workers[s]->CloseSession(fleet.channels[s]->session_id());
  }

  std::vector<std::unique_ptr<InProcessShardChannel>> second_connections;
  std::vector<ShardChannel*> second_raw;
  for (auto& worker : fleet.workers) {
    second_connections.push_back(
        std::make_unique<InProcessShardChannel>(*worker));
    second_raw.push_back(second_connections.back().get());
  }
  DistributedCoordinator second(second_raw,
                                MakeCoordinatorOptions(*graph_));
  EXPECT_TRUE(second.Handshake().ok());
}

TEST_F(DistHandshakeTest, SolveWithoutHandshakeIsFailedPrecondition) {
  DistFleet fleet = MakeFleet(*graph_, 2);
  DistributedCoordinator coordinator(fleet.raw,
                                     MakeCoordinatorOptions(*graph_));
  auto result = coordinator.Solve(
      SolverMethod::kPower, UniformTeleport(graph_->num_nodes()), {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(DistHandshakeTest, EmptyFleetIsInvalidArgument) {
  std::vector<ShardChannel*> none;
  DistributedCoordinator coordinator(none, MakeCoordinatorOptions(*graph_));
  const Status status = coordinator.Handshake();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace d2pr
