#include "d2pr_rank_flags.h"

#include <set>

#include "common/string_util.h"

namespace d2pr {

Result<PartitionScheme> ParsePartitionScheme(const std::string& name) {
  if (name == "range") return PartitionScheme::kRange;
  if (name == "hash") return PartitionScheme::kHash;
  return Status::InvalidArgument(
      StrCat("unknown --partition '", name, "' (expected range or hash)"));
}

Result<SliceBuild> ParseSliceBuild(const std::string& name) {
  if (name.empty() || name == "matrix") return SliceBuild::kFromMatrix;
  if (name == "subgraph") return SliceBuild::kSubgraph;
  return Status::InvalidArgument(
      StrCat("unknown --slices '", name, "' (expected matrix or subgraph)"));
}

Result<SolverMethod> ParseRankMethod(const std::string& name) {
  if (name.empty() || name == "power") return SolverMethod::kPower;
  if (name == "gauss-seidel") return SolverMethod::kGaussSeidel;
  if (name == "forward-push") return SolverMethod::kForwardPush;
  return Status::InvalidArgument(StrCat("unknown --method '", name, "'"));
}

Result<PersistMode> ParseCacheMode(const std::string& name) {
  if (name.empty() || name == "rw") return PersistMode::kReadWrite;
  if (name == "off") return PersistMode::kOff;
  if (name == "read") return PersistMode::kReadOnly;
  if (name == "write") return PersistMode::kWriteOnly;
  return Status::InvalidArgument(StrCat("unknown --cache-mode '", name, "'"));
}

Result<RouteSpec> ParseRoute(const std::string& name) {
  RouteSpec spec;
  if (name.empty() || name == "replicated") return spec;
  if (name == "least-loaded") {
    spec.strategy = ReplicaStrategy::kLeastLoaded;
    return spec;
  }
  if (name == "partitioned") {
    spec.policy = RoutingPolicy::kPartitionedTeleport;
    return spec;
  }
  return Status::InvalidArgument(StrCat("unknown --route '", name, "'"));
}

Status ValidateRankFlags(const Flags& flags) {
  // Every flag the tool understands; anything else is a typo the user
  // should hear about instead of a silently ignored option.
  static const std::set<std::string> kKnown = {
      "graph",  "directed",   "weighted",   "p",
      "alpha",  "beta",       "top",        "top-k",
      "method", "seeds",      "scores-out", "tune",
      "significance",         "stats",      "threads",
      "repeat", "shards",     "route",      "cache-dir",
      "cache-mode",           "partition",  "slices",
  };
  for (const std::string& name : flags.FlagNames()) {
    if (!kKnown.contains(name)) {
      return Status::InvalidArgument(StrCat("unknown flag --", name));
    }
  }
  if (!flags.positional().empty()) {
    return Status::InvalidArgument(
        StrCat("unexpected argument '", flags.positional().front(), "'"));
  }

  if (flags.GetString("graph").empty()) {
    return Status::InvalidArgument("--graph=EDGELIST is required");
  }
  if (flags.Has("tune") && flags.GetString("significance").empty()) {
    return Status::InvalidArgument("--tune requires --significance=FILE");
  }
  if (flags.Has("significance") && !flags.Has("tune")) {
    return Status::InvalidArgument(
        "--significance is only meaningful with --tune");
  }
  if (flags.Has("tune") && flags.Has("seeds")) {
    return Status::InvalidArgument(
        "--seeds cannot be combined with --tune (tuning maximizes a "
        "global ranking's correlation; personalize after tuning)");
  }

  const auto directed = flags.GetBool("directed", false);
  if (!directed.ok()) return directed.status();
  const auto weighted = flags.GetBool("weighted", false);
  if (!weighted.ok()) return weighted.status();
  const auto p = flags.GetDouble("p", 0.0);
  const auto alpha = flags.GetDouble("alpha", 0.85);
  const auto beta = flags.GetDouble("beta", 0.0);
  const auto top = flags.GetInt("top", 20);
  const auto top_k = flags.GetInt("top-k", 0);
  const auto threads = flags.GetInt("threads", 1);
  const auto repeat = flags.GetInt("repeat", 1);
  const auto shards = flags.GetInt("shards", 1);
  if (!p.ok() || !alpha.ok() || !beta.ok() || !top.ok() || !top_k.ok() ||
      !threads.ok() || !repeat.ok() || !shards.ok()) {
    return Status::InvalidArgument("bad numeric flag");
  }
  if (*threads < 1) return Status::InvalidArgument("--threads must be >= 1");
  if (*repeat < 1) return Status::InvalidArgument("--repeat must be >= 1");
  if (*shards < 1) return Status::InvalidArgument("--shards must be >= 1");

  // --- truncated serving (--top-k) ---
  if (flags.Has("top-k")) {
    if (*top_k < 1) {
      return Status::InvalidArgument("--top-k must be >= 1");
    }
    if (flags.Has("tune")) {
      return Status::InvalidArgument(
          "--top-k cannot be combined with --tune (tuning correlates the "
          "FULL ranking against significance; tune first, truncate after)");
    }
    if (flags.Has("partition")) {
      return Status::InvalidArgument(
          "--top-k is not supported with --partition (the block solve "
          "produces one distributed full vector); use a replicated or "
          "partitioned-teleport router");
    }
    if (flags.Has("scores-out")) {
      return Status::InvalidArgument(
          "--scores-out needs the full score vector, which a --top-k "
          "response does not carry");
    }
    if (flags.Has("top")) {
      return Status::InvalidArgument(
          "--top and --top-k are mutually exclusive (--top-k already "
          "bounds the served and printed entries)");
    }
  }

  if (flags.Has("shards") && flags.Has("tune")) {
    return Status::InvalidArgument(
        "--shards cannot be combined with --tune (tuning is one warm "
        "trajectory on one engine; shard after tuning)");
  }
  if (flags.Has("route") && !flags.Has("shards")) {
    return Status::InvalidArgument("--route requires --shards");
  }

  // Value vocabularies: every named option must parse, so a typo'd value
  // is exit 2 here rather than surprise behavior later.
  const auto method = ParseRankMethod(flags.GetString("method"));
  if (!method.ok()) return method.status();
  const auto route = ParseRoute(flags.GetString("route"));
  if (!route.ok()) return route.status();
  const auto cache_mode = ParseCacheMode(flags.GetString("cache-mode"));
  if (!cache_mode.ok()) return cache_mode.status();

  // --- edge-partitioned serving (--partition) ---
  if (flags.Has("partition")) {
    if (!flags.Has("shards")) {
      return Status::InvalidArgument(
          "--partition requires --shards (the partition's shard count)");
    }
    auto scheme = ParsePartitionScheme(flags.GetString("partition"));
    if (!scheme.ok()) return scheme.status();
    if (flags.Has("route")) {
      return Status::InvalidArgument(
          "--partition and --route are mutually exclusive (--partition "
          "IS the routing mode: partitioned-subgraph)");
    }
    if (flags.GetString("method") == "forward-push") {
      return Status::InvalidArgument(
          "--method=forward-push is not supported with --partition "
          "(forward push has no block formulation); use power or "
          "gauss-seidel");
    }
  }

  // --- slice construction (--slices) ---
  if (flags.Has("slices")) {
    if (!flags.Has("partition")) {
      return Status::InvalidArgument(
          "--slices is only meaningful with --partition (it selects how "
          "the partitioned router builds its per-shard slices)");
    }
    if (flags.GetString("slices").empty()) {
      // ParseSliceBuild maps "" to the default so the BINARY can call it
      // with the flag absent; an explicit bare --slices is still a usage
      // error, like every other value-carrying flag.
      return Status::InvalidArgument(
          "--slices requires a value (matrix or subgraph)");
    }
    auto slice_build = ParseSliceBuild(flags.GetString("slices"));
    if (!slice_build.ok()) return slice_build.status();
  }

  if (flags.Has("cache-mode") && !flags.Has("cache-dir")) {
    return Status::InvalidArgument("--cache-mode requires --cache-dir");
  }
  if (flags.Has("cache-dir") && flags.GetString("cache-dir").empty()) {
    return Status::InvalidArgument("--cache-dir requires a directory path");
  }
  return Status::OK();
}

}  // namespace d2pr
