// Structural graph metrics beyond degree statistics: clustering and
// degree assortativity.
//
// Used to characterize the synthetic data graphs against their real
// counterparts (projection graphs are highly clustered; social graphs
// mildly assortative) and by tests as independent structure oracles.

#ifndef D2PR_GRAPH_GRAPH_METRICS_H_
#define D2PR_GRAPH_GRAPH_METRICS_H_

#include <vector>

#include "graph/csr_graph.h"

namespace d2pr {

/// \brief Local clustering coefficient of `v`: the fraction of pairs of
/// v's neighbors that are themselves connected. 0 for degree < 2.
/// Undirected graphs only (checked).
double LocalClusteringCoefficient(const CsrGraph& graph, NodeId v);

/// \brief Mean local clustering coefficient over all nodes with
/// degree >= 2 (Watts-Strogatz convention); 0 if no such node exists.
double AverageClusteringCoefficient(const CsrGraph& graph);

/// \brief Global transitivity: 3 x triangles / connected triples.
double GlobalTransitivity(const CsrGraph& graph);

/// \brief Pearson correlation of end-point degrees over all edges
/// (Newman's degree assortativity, r in [-1, 1]). 0 for degenerate
/// graphs (no edges or constant degrees).
double DegreeAssortativity(const CsrGraph& graph);

}  // namespace d2pr

#endif  // D2PR_GRAPH_GRAPH_METRICS_H_
