// Teleportation vector construction.
//
// The paper uses the uniform vector t[i] = 1/|V| throughout; personalized
// and degree-proportional variants are provided for the PPR machinery and
// for the "equal-opportunity PageRank" baseline (related work [2], Banky et
// al.), which modifies the teleportation vector proportionally to node
// degrees instead of touching the transition matrix.

#ifndef D2PR_CORE_TELEPORT_H_
#define D2PR_CORE_TELEPORT_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace d2pr {

/// \brief Uniform teleport: t[i] = 1/|V| (the paper's ~t).
std::vector<double> UniformTeleport(NodeId num_nodes);

/// \brief Personalized teleport concentrated on `seeds`, uniform across
/// them. Duplicated and out-of-range seeds are rejected; the seed set must
/// be non-empty.
Result<std::vector<double>> SeededTeleport(NodeId num_nodes,
                                           std::span<const NodeId> seeds);

/// \brief Personalized teleport with per-seed weights (must be positive);
/// normalized to sum 1.
Result<std::vector<double>> WeightedTeleport(
    NodeId num_nodes, std::span<const NodeId> seeds,
    std::span<const double> weights);

/// \brief Teleport proportional to deg(v)^gamma.
///
/// gamma = -1 reproduces the low-degree-boosting teleport of related work
/// [2] (equal opportunity for low-degree nodes); gamma = +1 teleports
/// preferentially to hubs. Degree-0 nodes receive the minimum positive
/// share so the vector stays strictly positive (required for irreducibility
/// of the walk).
std::vector<double> DegreeProportionalTeleport(const CsrGraph& graph,
                                               double gamma);

}  // namespace d2pr

#endif  // D2PR_CORE_TELEPORT_H_
