// Figure 5: correlations between node degrees and application-specific
// significances for every data graph, grouped by optimal-p regime. The
// paper's bar chart shows negative bars for the p > 0 group, small positive
// bars for the p = 0 group, and clearly positive bars for the p < 0 group —
// i.e., the usefulness of degree predicts the right de-coupling direction.

#include <cstdio>

#include "common/string_util.h"
#include "eval/table_writer.h"
#include "graph/graph_stats.h"
#include "repro_common.h"
#include "stats/correlation.h"

namespace d2pr {
namespace bench {
namespace {

int Run() {
  PrintHeader("Figure 5: degree vs significance correlation per graph",
              "Figure 5 (bar chart rendered as a grouped table)");
  const RegistryOptions options = BenchRegistryOptions();

  TextTable table({"group", "data graph", "Spearman(degree, significance)"});
  int exit_code = 0;
  for (ApplicationGroup group :
       {ApplicationGroup::kPenalizationHelps,
        ApplicationGroup::kConventionalIdeal,
        ApplicationGroup::kBoostingHelps}) {
    for (PaperGraphId id : GraphsInGroup(group)) {
      DataGraph data = LoadGraph(id, options);
      const double corr = SpearmanCorrelation(
          DegreesAsDoubles(data.unweighted), data.significance);
      const char* tag = group == ApplicationGroup::kPenalizationHelps
                            ? "p > 0"
                            : group == ApplicationGroup::kConventionalIdeal
                                  ? "p = 0"
                                  : "p < 0";
      table.AddRow({tag, data.name, FormatCorr(corr)});
      // Verdict: sign structure must match the paper's chart.
      const bool ok =
          group == ApplicationGroup::kPenalizationHelps ? corr < 0.0
          : group == ApplicationGroup::kBoostingHelps   ? corr > 0.05
                                                        : corr > -0.05;
      if (!ok) {
        std::fprintf(stderr, "MISMATCH: %s has corr %.3f\n",
                     data.name.c_str(), corr);
        exit_code = 1;
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Shape check (paper Fig. 5): negative for the p > 0 group, mildly\n"
      "positive for p = 0, clearly positive for p < 0.\n\n");
  ArchiveCsv(table, "figure5");
  return exit_code;
}

}  // namespace
}  // namespace bench
}  // namespace d2pr

int main() { return d2pr::bench::Run(); }
