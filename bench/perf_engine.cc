// Microbenchmarks for the serving engine: what transition caching, warm
// starts, and batch execution buy over one-shot free-function calls.

#include <benchmark/benchmark.h>

#include "api/engine.h"
#include "common/rng.h"
#include "core/sweeps.h"
#include "datagen/classic_generators.h"

namespace d2pr {
namespace {

CsrGraph MakeGraph(int64_t nodes) {
  Rng rng(42);
  auto graph = BarabasiAlbert(static_cast<NodeId>(nodes), 4, &rng);
  D2PR_CHECK(graph.ok());
  return std::move(graph).value();
}

// One-shot path: every query rebuilds the transition and cold-solves.
void BM_RankOneShot(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(state.range(0));
  D2prOptions options;
  options.p = 0.5;
  options.tolerance = 1e-9;
  for (auto _ : state) {
    auto result = ComputeD2pr(graph, options);
    benchmark::DoNotOptimize(result->scores.data());
  }
}
BENCHMARK(BM_RankOneShot)->Arg(1000)->Arg(10000);

// Serving path: the engine reuses the cached transition across queries.
void BM_RankEngineCached(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(state.range(0));
  D2prEngine engine = D2prEngine::Borrowing(graph);
  RankRequest request;
  request.p = 0.5;
  request.tolerance = 1e-9;
  for (auto _ : state) {
    auto response = engine.Rank(request);
    benchmark::DoNotOptimize(response->scores.data());
  }
}
BENCHMARK(BM_RankEngineCached)->Arg(1000)->Arg(10000);

// The paper's p grid as independent cold solves (fresh engine per sweep,
// caches cleared every round) versus one warm engine.
void BM_SweepPCold(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(10000);
  D2prOptions base;
  base.tolerance = 1e-9;
  const std::vector<double> grid = PaperPGrid();
  for (auto _ : state) {
    for (double p : grid) {
      D2prOptions options = base;
      options.p = p;
      auto result = ComputeD2pr(graph, options);
      benchmark::DoNotOptimize(result->scores.data());
    }
  }
}
BENCHMARK(BM_SweepPCold);

void BM_SweepPEngine(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(10000);
  D2prEngine engine = D2prEngine::Borrowing(graph);
  D2prOptions base;
  base.tolerance = 1e-9;
  const std::vector<double> grid = PaperPGrid();
  for (auto _ : state) {
    auto sweep = SweepP(engine, grid, base);
    benchmark::DoNotOptimize(sweep->data());
  }
}
BENCHMARK(BM_SweepPEngine);

// Personalized batch serving: many seed queries against one cached
// transition model.
void BM_RankBatchPersonalized(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(10000);
  D2prEngine engine = D2prEngine::Borrowing(graph);
  std::vector<RankRequest> requests;
  for (NodeId seed = 0; seed < static_cast<NodeId>(state.range(0)); ++seed) {
    RankRequest request;
    request.p = 0.5;
    request.method = SolverMethod::kForwardPush;
    request.push_epsilon = 1e-6;
    request.seeds = {seed};
    requests.push_back(request);
  }
  for (auto _ : state) {
    auto responses = engine.RankBatch(requests);
    benchmark::DoNotOptimize(responses->data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(requests.size()));
}
BENCHMARK(BM_RankBatchPersonalized)->Arg(8)->Arg(64);

}  // namespace
}  // namespace d2pr

BENCHMARK_MAIN();
