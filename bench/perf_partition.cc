// Partitioned vs whole-graph solve cost: what the edge-partitioned block
// iteration pays (or saves) against the monolithic reference at 10k and
// 100k nodes, for shard counts 1/2/4/8 and both partition schemes.
//
// The questions, one sweep each:
//   * BM_WholeGraphPower vs BM_PartitionedPower — the per-solve overhead
//     of the block formulation (in-CSR pull + global folds) as shard
//     count grows; scores are bit-identical by contract, so this is a
//     pure mechanics comparison. BM_PartitionedPower gathers each arc
//     probability through the partition's in_arc_index permutation —
//     the random-access pattern the slices were built to remove.
//   * BM_PartitionedPowerSliced — the same sweep over materialized
//     per-shard slices (core/transition_slices.h): the inner loop
//     streams two contiguous arrays instead of gathering through the
//     arc index. Same bits, different memory traffic.
//   * BM_PartitionedPowerPooled — the sliced sweep fanned across an
//     EngineRouter worker pool, i.e. what partitioned serving ships.
//   * BM_SliceBuild / BM_SliceBuildLocal — the one-time slice
//     materialization cost, from a prebuilt matrix (permutation copy)
//     and matrix-free from the subgraphs + broadcast metric vector.
//   * BM_PartitionBuild — the one-time partitioning cost a deployment
//     amortizes over its whole serving lifetime.
//
// Numbers are recorded in results/partition_bench.md.

#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/block_solver.h"
#include "core/pagerank.h"
#include "core/teleport.h"
#include "core/transition.h"
#include "core/transition_slices.h"
#include "datagen/classic_generators.h"
#include "graph/partition.h"
#include "serve/engine_router.h"

namespace d2pr {
namespace {

CsrGraph MakeGraph(NodeId nodes) {
  Rng rng(42);
  // Preferential attachment at m = 4: power-law degrees, ~4|V| edges —
  // the regime the paper's analysis targets.
  auto graph = BarabasiAlbert(nodes, 4, &rng);
  D2PR_CHECK(graph.ok());
  return std::move(graph).value();
}

const CsrGraph& GraphOf(int64_t nodes) {
  static const CsrGraph small = MakeGraph(10000);
  static const CsrGraph large = MakeGraph(100000);
  return nodes == 10000 ? small : large;
}

const TransitionMatrix& TransitionOf(const CsrGraph& graph) {
  static const TransitionMatrix small = [] {
    auto t = TransitionMatrix::Build(GraphOf(10000), {.p = 0.5});
    D2PR_CHECK(t.ok());
    return std::move(t).value();
  }();
  static const TransitionMatrix large = [] {
    auto t = TransitionMatrix::Build(GraphOf(100000), {.p = 0.5});
    D2PR_CHECK(t.ok());
    return std::move(t).value();
  }();
  return graph.num_nodes() == 10000 ? small : large;
}

PagerankOptions SolveOptions() {
  PagerankOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 200;
  return options;
}

void BM_WholeGraphPower(benchmark::State& state) {
  const CsrGraph& graph = GraphOf(state.range(0));
  const TransitionMatrix& transition = TransitionOf(graph);
  const std::vector<double> teleport = UniformTeleport(graph.num_nodes());
  int iterations = 0;
  for (auto _ : state) {
    auto solved = SolvePagerank(graph, transition, teleport, SolveOptions());
    D2PR_CHECK(solved.ok());
    iterations = solved->iterations;
    benchmark::DoNotOptimize(solved->scores.data());
  }
  state.counters["solver_iters"] = iterations;
}
BENCHMARK(BM_WholeGraphPower)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_PartitionedPower(benchmark::State& state) {
  const CsrGraph& graph = GraphOf(state.range(0));
  const TransitionMatrix& transition = TransitionOf(graph);
  const auto scheme = static_cast<PartitionScheme>(state.range(2));
  auto partition = GraphPartition::Build(
      graph, {.scheme = scheme,
              .num_shards = static_cast<size_t>(state.range(1))});
  D2PR_CHECK(partition.ok());
  const std::vector<double> teleport = UniformTeleport(graph.num_nodes());
  for (auto _ : state) {
    auto solved = SolvePagerankPartitioned(transition, *partition, teleport,
                                           SolveOptions());
    D2PR_CHECK(solved.ok());
    benchmark::DoNotOptimize(solved->scores.data());
  }
  state.counters["boundary_frac"] = partition->BoundaryFraction();
}
BENCHMARK(BM_PartitionedPower)
    ->ArgsProduct({{10000, 100000},
                   {1, 2, 4, 8},
                   {static_cast<int>(PartitionScheme::kRange),
                    static_cast<int>(PartitionScheme::kHash)}})
    ->Unit(benchmark::kMillisecond);

void BM_PartitionedPowerSliced(benchmark::State& state) {
  const CsrGraph& graph = GraphOf(state.range(0));
  const TransitionMatrix& transition = TransitionOf(graph);
  const auto scheme = static_cast<PartitionScheme>(state.range(2));
  auto partition = GraphPartition::Build(
      graph, {.scheme = scheme,
              .num_shards = static_cast<size_t>(state.range(1))});
  D2PR_CHECK(partition.ok());
  auto slices = BuildTransitionSlices(*partition, transition);
  D2PR_CHECK(slices.ok());
  const std::vector<double> teleport = UniformTeleport(graph.num_nodes());
  for (auto _ : state) {
    auto solved = SolvePagerankPartitioned(*slices, *partition, teleport,
                                           SolveOptions());
    D2PR_CHECK(solved.ok());
    benchmark::DoNotOptimize(solved->scores.data());
  }
  state.counters["boundary_frac"] = partition->BoundaryFraction();
}
BENCHMARK(BM_PartitionedPowerSliced)
    ->ArgsProduct({{10000, 100000},
                   {1, 2, 4, 8},
                   {static_cast<int>(PartitionScheme::kRange),
                    static_cast<int>(PartitionScheme::kHash)}})
    ->Unit(benchmark::kMillisecond);

void BM_SliceBuild(benchmark::State& state) {
  const CsrGraph& graph = GraphOf(state.range(0));
  const TransitionMatrix& transition = TransitionOf(graph);
  auto partition = GraphPartition::Build(
      graph, {.scheme = PartitionScheme::kRange,
              .num_shards = static_cast<size_t>(state.range(1))});
  D2PR_CHECK(partition.ok());
  for (auto _ : state) {
    auto slices = BuildTransitionSlices(*partition, transition);
    D2PR_CHECK(slices.ok());
    benchmark::DoNotOptimize(slices->in_probs.data());
  }
}
BENCHMARK(BM_SliceBuild)
    ->ArgsProduct({{10000, 100000}, {2, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_SliceBuildLocal(benchmark::State& state) {
  const CsrGraph& graph = GraphOf(state.range(0));
  auto partition = GraphPartition::Build(
      graph, {.scheme = PartitionScheme::kRange,
              .num_shards = static_cast<size_t>(state.range(1))});
  D2PR_CHECK(partition.ok());
  for (auto _ : state) {
    auto slices = BuildTransitionSlicesLocal(graph, *partition, {.p = 0.5});
    D2PR_CHECK(slices.ok());
    benchmark::DoNotOptimize(slices->in_probs.data());
  }
}
BENCHMARK(BM_SliceBuildLocal)
    ->ArgsProduct({{10000, 100000}, {2, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_PartitionedPowerPooled(benchmark::State& state) {
  const CsrGraph& graph = GraphOf(state.range(0));
  EngineRouter router = EngineRouter::Borrowing(
      graph, {.num_shards = static_cast<size_t>(state.range(1)),
              .policy = RoutingPolicy::kPartitionedSubgraph,
              .partition_scheme = PartitionScheme::kRange});
  RankRequest request;
  request.p = 0.5;
  request.tolerance = 1e-10;
  for (auto _ : state) {
    auto response = router.Rank(request);
    D2PR_CHECK(response.ok());
    benchmark::DoNotOptimize(response->scores.data());
  }
}
BENCHMARK(BM_PartitionedPowerPooled)
    ->ArgsProduct({{10000, 100000}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_PartitionBuild(benchmark::State& state) {
  const CsrGraph& graph = GraphOf(state.range(0));
  const auto scheme = static_cast<PartitionScheme>(state.range(2));
  for (auto _ : state) {
    auto partition = GraphPartition::Build(
        graph, {.scheme = scheme,
                .num_shards = static_cast<size_t>(state.range(1))});
    D2PR_CHECK(partition.ok());
    benchmark::DoNotOptimize(partition->boundary_arcs());
  }
}
BENCHMARK(BM_PartitionBuild)
    ->ArgsProduct({{10000, 100000},
                   {2, 8},
                   {static_cast<int>(PartitionScheme::kRange),
                    static_cast<int>(PartitionScheme::kHash)}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace d2pr

BENCHMARK_MAIN();
