// v2 wire frames of the distributed block solve: the vocabulary a
// DistributedCoordinator (src/dist/coordinator.h) speaks to ShardWorker
// processes (src/dist/shard_worker.h) over the net/wire.h framing.
//
// The conversation is strictly request/response from the coordinator's
// side — every frame it sends gets exactly one reply frame — and mirrors
// the data flow of the in-process block solvers (core/block_solver.h):
//
//   kShardHandshake / kShardHandshakeAck
//     Sent once per connection. The coordinator declares the topology it
//     believes in (scheme, shard id, shard count, slice build) plus the
//     two identities that make cross-process numerics meaningful at all:
//     the graph fingerprint (graph/graph_fingerprint.h) and the
//     normalized transition key (p, effective beta, resolved metric). A
//     shard whose own configuration disagrees rejects with a DISTINCT
//     status per field (see shard_worker.h) and the hosting server closes
//     only that connection. The ack publishes what the coordinator cannot
//     derive closed-form: the shard's ascending dangling-owned list and
//     its ascending boundary-source list (the distinct remote nodes its
//     in-CSR pulls each sweep — the order sweep-request boundary values
//     are laid out in forever after).
//
//   kSolveBegin
//     Per-solve constants: method, dangling policy, alpha, and the
//     shard's owned slices of the initial iterate and the teleport
//     vector. Replies kStatus OK.
//
//   kSweepRequest / kSweepResponse
//     One synchronized sweep. The request carries the iteration index,
//     the globally folded dangling mass of the current iterate, the
//     boundary values (current iterate at the shard's published boundary
//     sources, in that order), and — when the previous iteration
//     L1-normalized globally — the exact 1/norm scalar, so the shard
//     rescales its retained slice bitwise identically to the
//     coordinator's NormalizeL1 over the full vector (Scale multiplies by
//     1.0/norm; replaying the multiply commutes with slicing). The
//     response publishes the shard's new owned slice plus advisory
//     partial sums (shard-folded dangling mass and L1 delta —
//     exchange-accounting telemetry; the coordinator recomputes the
//     canonical global folds itself because a sum of per-shard partials
//     groups differently in floating point than the reference's single
//     ascending fold).
//
//   kSolveEnd
//     Releases the shard's per-solve state. Replies kStatus OK;
//     idempotent (ending an unknown solve is OK).
//
// Codecs are pure functions over byte vectors with the same
// reject-all-malformed discipline as the v1 codecs in net/wire.h:
// truncation at any offset, trailing garbage, out-of-range enums, and
// element counts the remaining bytes cannot hold are all InvalidArgument,
// never a crash or an allocation sized from a lie.

#ifndef D2PR_NET_SHARD_WIRE_H_
#define D2PR_NET_SHARD_WIRE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/pagerank.h"
#include "core/transition.h"
#include "core/transition_slices.h"
#include "graph/partition.h"
#include "graph/types.h"
#include "net/wire.h"

namespace d2pr {

// RankRequest (api/rank_request.h) is not included here; the solver
// method enum lives there, so the handshake/solve frames carry it as a
// plain u32 validated against the two block-solvable methods.

/// \brief Coordinator -> shard: identity and topology declaration
/// (kShardHandshake).
struct ShardHandshake {
  /// The shard id this connection intends to drive; the worker rejects a
  /// handshake for an id it does not host (NotFound).
  uint32_t shard_id = 0;
  /// Total shards of the partition (OutOfRange on mismatch).
  uint32_t num_shards = 1;
  PartitionScheme scheme = PartitionScheme::kRange;
  SliceBuild slice_build = SliceBuild::kSubgraph;
  /// GraphFingerprint of the coordinator's graph (FailedPrecondition on
  /// mismatch — scores against a different graph are meaningless).
  uint64_t graph_fingerprint = 0;
  /// Normalized transition key: resolved metric, effective beta
  /// (InvalidArgument on mismatch). Compared bitwise — two configs that
  /// differ in any bit build different matrices.
  double p = 0.0;
  double beta = 0.0;
  DegreeMetric metric = DegreeMetric::kOutDegree;
};

/// \brief Shard -> coordinator: what the coordinator cannot derive
/// closed-form from the scheme (kShardHandshakeAck).
struct ShardHandshakeAck {
  uint64_t num_nodes = 0;
  uint64_t num_arcs = 0;
  /// Cross-check against the coordinator's closed-form owned count.
  uint64_t num_owned = 0;
  /// Pull-side boundary arcs (exchange-volume accounting).
  uint64_t boundary_in_arcs = 0;
  /// Owned nodes with no out-arcs, ascending global ids. The coordinator
  /// merges all shards' lists into the global ascending dangling list the
  /// bit-parity fold requires.
  std::vector<NodeId> dangling_owned;
  /// Distinct non-owned sources of the shard's in-CSR, ascending global
  /// ids. Every kSweepRequest lays its boundary values out in exactly
  /// this order.
  std::vector<NodeId> boundary_sources;
  /// True when the shard was loaded from a pre-cut file and has not yet
  /// built its transition slice: the coordinator must ship the global
  /// metric vector in its next kSolveBegin. Encoded as a TRAILING byte
  /// appended only when true, so the false encoding is byte-identical to
  /// the previous wire revision (old coordinators keep working against
  /// whole-graph workers, which never set it).
  bool needs_metric_values = false;
};

/// \brief Coordinator -> shard: per-solve constants (kSolveBegin).
struct ShardSolveBegin {
  /// Coordinator-chosen id correlating all frames of one solve.
  uint64_t solve_id = 0;
  /// SolverMethod as u32; only kPower and kGaussSeidel are block
  /// methods, anything else is rejected at decode.
  uint32_t method = 0;
  DanglingPolicy dangling = DanglingPolicy::kTeleport;
  double alpha = 0.85;
  /// Owned slice of the initial iterate (power: the globally normalized
  /// teleport; Gauss-Seidel: the raw teleport), ascending owned order.
  std::vector<double> initial;
  /// Owned slice of the teleport vector, ascending owned order.
  std::vector<double> teleport;
  /// The FULL global per-node metric vector (MetricValues under the
  /// handshaken key's metric) — the one O(|V|) broadcast a cut-loaded
  /// shard needs to build its transition slice, shipped only to shards
  /// whose ack set needs_metric_values. Encoded as a TRAILING score list
  /// appended only when non-empty, so the empty encoding is
  /// byte-identical to the previous wire revision.
  std::vector<double> metric_values;
};

/// \brief Coordinator -> shard: one synchronized sweep (kSweepRequest).
struct ShardSweepRequest {
  uint64_t solve_id = 0;
  /// 1-based iteration index. A request repeating the last completed
  /// sweep is answered from the shard's cached reply (idempotent
  /// retries); anything else out of order is FailedPrecondition.
  uint32_t sweep = 0;
  /// Dangling mass of the current iterate, folded by the coordinator
  /// over the global ascending dangling list (the canonical order).
  double dangling_mass = 0.0;
  /// When true, multiply the retained local slice by `rescale` before
  /// sweeping — the 1/norm scalar of the coordinator's NormalizeL1 on
  /// the previous iterate, replayed bitwise.
  bool has_rescale = false;
  double rescale = 1.0;
  /// Current iterate at the shard's boundary sources, in the ack's
  /// published order.
  std::vector<double> boundary;
};

/// \brief Shard -> coordinator: one sweep's published slice
/// (kSweepResponse).
struct ShardSweepResponse {
  uint64_t solve_id = 0;
  uint32_t sweep = 0;
  /// The shard's new owned slice, ascending owned order (pre-normalize
  /// under policies that normalize globally).
  std::vector<double> owned;
  /// Advisory shard-folded partials (see the file comment): dangling
  /// mass of the new slice over dangling_owned, and Σ|new - old| over
  /// owned. Telemetry, not control inputs.
  double dangling_partial = 0.0;
  double residual_partial = 0.0;
};

/// \brief Coordinator -> shard: release per-solve state (kSolveEnd).
struct ShardSolveEnd {
  uint64_t solve_id = 0;
};

// --- payload codecs (payload bytes only, no frame header) ---

std::vector<uint8_t> EncodeShardHandshake(const ShardHandshake& handshake);
Result<ShardHandshake> DecodeShardHandshake(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeShardHandshakeAck(const ShardHandshakeAck& ack);
Result<ShardHandshakeAck> DecodeShardHandshakeAck(
    std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeShardSolveBegin(const ShardSolveBegin& begin);
Result<ShardSolveBegin> DecodeShardSolveBegin(
    std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeShardSweepRequest(const ShardSweepRequest& request);
Result<ShardSweepRequest> DecodeShardSweepRequest(
    std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeShardSweepResponse(
    const ShardSweepResponse& response);
Result<ShardSweepResponse> DecodeShardSweepResponse(
    std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeShardSolveEnd(const ShardSolveEnd& end);
Result<ShardSolveEnd> DecodeShardSolveEnd(std::span<const uint8_t> payload);

}  // namespace d2pr

#endif  // D2PR_NET_SHARD_WIRE_H_
