#include "api/transition_cache.h"

namespace d2pr {

std::shared_ptr<const TransitionMatrix> TransitionCache::Lookup(
    const TransitionKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == key) {
      ++hits_;
      entries_.splice(entries_.begin(), entries_, it);
      return entries_.front().second;
    }
  }
  ++misses_;
  return nullptr;
}

void TransitionCache::Insert(const TransitionKey& key,
                             std::shared_ptr<const TransitionMatrix> transition) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == key) {
      it->second = std::move(transition);
      entries_.splice(entries_.begin(), entries_, it);
      return;
    }
  }
  entries_.emplace_front(key, std::move(transition));
  while (entries_.size() > capacity_) entries_.pop_back();
}

std::vector<std::pair<TransitionKey, std::shared_ptr<const TransitionMatrix>>>
TransitionCache::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

std::vector<TransitionKey> TransitionCache::Keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TransitionKey> keys;
  keys.reserve(entries_.size());
  for (const Entry& entry : entries_) keys.push_back(entry.first);
  return keys;
}

}  // namespace d2pr
