// Wire-protocol codecs: exact round-trips across the full enum space,
// and rejection (never a crash, never a bogus success) of malformed
// bytes — truncation at every boundary, oversize lengths, bad magic and
// version, corrupted payloads.

#include "net/wire.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/shard_wire.h"

namespace d2pr {
namespace {

void ExpectRequestsEqual(const WireRankRequest& a, const WireRankRequest& b) {
  EXPECT_EQ(a.deadline_ms, b.deadline_ms);
  EXPECT_EQ(a.request.p, b.request.p);
  EXPECT_EQ(a.request.beta, b.request.beta);
  EXPECT_EQ(a.request.metric, b.request.metric);
  EXPECT_EQ(a.request.alpha, b.request.alpha);
  EXPECT_EQ(a.request.tolerance, b.request.tolerance);
  EXPECT_EQ(a.request.max_iterations, b.request.max_iterations);
  EXPECT_EQ(a.request.dangling, b.request.dangling);
  EXPECT_EQ(a.request.method, b.request.method);
  EXPECT_EQ(a.request.push_epsilon, b.request.push_epsilon);
  EXPECT_EQ(a.request.seeds, b.request.seeds);
  EXPECT_EQ(a.request.warm_start_tag, b.request.warm_start_tag);
  EXPECT_EQ(a.request.top_k, b.request.top_k);
}

TEST(NetWireTest, RankRequestRoundTripsEverySolverMetricDanglingCombo) {
  const SolverMethod methods[] = {SolverMethod::kPower,
                                  SolverMethod::kGaussSeidel,
                                  SolverMethod::kForwardPush};
  const DegreeMetric metrics[] = {DegreeMetric::kAuto,
                                  DegreeMetric::kOutDegree,
                                  DegreeMetric::kOutStrength,
                                  DegreeMetric::kInDegree};
  const DanglingPolicy danglings[] = {DanglingPolicy::kTeleport,
                                      DanglingPolicy::kSelfLoop,
                                      DanglingPolicy::kRenormalize};
  int combo = 0;
  for (SolverMethod method : methods) {
    for (DegreeMetric metric : metrics) {
      for (DanglingPolicy dangling : danglings) {
        SCOPED_TRACE("combo " + std::to_string(combo));
        WireRankRequest wire;
        wire.deadline_ms = static_cast<uint64_t>(combo) * 17;
        wire.request.p = -2.5 + combo * 0.125;
        wire.request.beta = (combo % 5) * 0.25;
        wire.request.metric = metric;
        wire.request.alpha = 0.5 + (combo % 4) * 0.1;
        wire.request.tolerance = 1e-10;
        wire.request.max_iterations = 100 + combo;
        wire.request.dangling = dangling;
        wire.request.method = method;
        wire.request.push_epsilon = 1e-7 * (1 + combo);
        if (combo % 2 == 0) wire.request.seeds = {0, 7, 42};
        if (combo % 3 == 0) wire.request.warm_start_tag = "sweep-p";
        auto decoded = DecodeRankRequest(EncodeRankRequest(wire));
        ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
        ExpectRequestsEqual(decoded.value(), wire);
        ++combo;
      }
    }
  }
  EXPECT_EQ(combo, 36);
}

TEST(NetWireTest, RankRequestRoundTripsBitExactDoubles) {
  // NaN tolerance or signed-zero p must survive the wire bit-for-bit —
  // the server re-validates; the codec must not launder values.
  WireRankRequest wire;
  wire.request.p = -0.0;
  wire.request.alpha = std::numeric_limits<double>::quiet_NaN();
  auto decoded = DecodeRankRequest(EncodeRankRequest(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::signbit(decoded.value().request.p));
  EXPECT_TRUE(std::isnan(decoded.value().request.alpha));
}

TEST(NetWireTest, RankResponseRoundTripsAllFlagCombinations) {
  for (uint32_t flags = 0; flags < 32; ++flags) {
    SCOPED_TRACE("flags " + std::to_string(flags));
    RankResponse response;
    response.scores = {0.25, 0.5, 0.125, 0.125};
    response.method = static_cast<SolverMethod>(flags % 3);
    response.iterations = static_cast<int>(flags) * 3;
    response.pushes = 1'000'000'000'000ll + flags;
    response.residual = 1e-11 * flags;
    response.converged = (flags & 1) != 0;
    response.transition_cache_hit = (flags & 2) != 0;
    response.transition_store_hit = (flags & 4) != 0;
    response.warm_start_hit = (flags & 8) != 0;
    response.served_partitioned = (flags & 16) != 0;
    auto decoded = DecodeRankResponse(EncodeRankResponse(response));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().scores, response.scores);
    EXPECT_EQ(decoded.value().method, response.method);
    EXPECT_EQ(decoded.value().iterations, response.iterations);
    EXPECT_EQ(decoded.value().pushes, response.pushes);
    EXPECT_EQ(decoded.value().residual, response.residual);
    EXPECT_EQ(decoded.value().converged, response.converged);
    EXPECT_EQ(decoded.value().transition_cache_hit,
              response.transition_cache_hit);
    EXPECT_EQ(decoded.value().transition_store_hit,
              response.transition_store_hit);
    EXPECT_EQ(decoded.value().warm_start_hit, response.warm_start_hit);
    EXPECT_EQ(decoded.value().served_partitioned,
              response.served_partitioned);
  }
}

TEST(NetWireTest, StatusPayloadRoundTripsEveryCode) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kUnavailable);
       ++code) {
    SCOPED_TRACE("code " + std::to_string(code));
    const Status original(static_cast<StatusCode>(code),
                          "message for code " + std::to_string(code));
    Status decoded;
    const Status ok = DecodeStatusPayload(EncodeStatusPayload(original),
                                          &decoded);
    ASSERT_TRUE(ok.ok()) << ok.ToString();
    EXPECT_EQ(decoded.code(), original.code());
    if (code != 0) EXPECT_EQ(decoded.message(), original.message());
  }
}

TEST(NetWireTest, ServerInfoRoundTrips) {
  ServerInfo info{123456789ull, 987654321ull, 4, 8};
  auto decoded = DecodeServerInfo(EncodeServerInfo(info));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().num_nodes, info.num_nodes);
  EXPECT_EQ(decoded.value().num_arcs, info.num_arcs);
  EXPECT_EQ(decoded.value().num_shards, info.num_shards);
  EXPECT_EQ(decoded.value().num_threads, info.num_threads);
}

TEST(NetWireTest, FrameHeaderRoundTrips) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  const std::vector<uint8_t> frame =
      EncodeFrame(FrameType::kRankResponse, 0xdeadbeefcafef00dull, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
  auto header = DecodeFrameHeader(frame);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header.value().payload_len, payload.size());
  EXPECT_EQ(header.value().type, FrameType::kRankResponse);
  EXPECT_EQ(header.value().request_id, 0xdeadbeefcafef00dull);
}

TEST(NetWireTest, FrameHeaderRejectsBadMagicVersionTypeAndLength) {
  const std::vector<uint8_t> good =
      EncodeFrame(FrameType::kStatus, 7, std::vector<uint8_t>{});
  {
    std::vector<uint8_t> bad = good;
    bad[4] ^= 0xff;  // magic
    EXPECT_FALSE(DecodeFrameHeader(bad).ok());
  }
  {
    std::vector<uint8_t> bad = good;
    bad[8] = 99;  // version
    EXPECT_FALSE(DecodeFrameHeader(bad).ok());
  }
  {
    std::vector<uint8_t> bad = good;
    bad[10] = 0;  // type 0: below the valid range
    EXPECT_FALSE(DecodeFrameHeader(bad).ok());
    bad[10] = 200;  // far above it
    EXPECT_FALSE(DecodeFrameHeader(bad).ok());
  }
  {
    std::vector<uint8_t> bad = good;
    // payload_len = kMaxPayloadBytes + 1 (little-endian at offset 0).
    const uint32_t oversize = kMaxPayloadBytes + 1;
    bad[0] = static_cast<uint8_t>(oversize);
    bad[1] = static_cast<uint8_t>(oversize >> 8);
    bad[2] = static_cast<uint8_t>(oversize >> 16);
    bad[3] = static_cast<uint8_t>(oversize >> 24);
    EXPECT_FALSE(DecodeFrameHeader(bad).ok());
  }
}

TEST(NetWireTest, FrameHeaderRejectsEveryTruncation) {
  const std::vector<uint8_t> frame =
      EncodeFrame(FrameType::kInfoRequest, 1, std::vector<uint8_t>{});
  for (size_t len = 0; len < kFrameHeaderBytes; ++len) {
    SCOPED_TRACE("length " + std::to_string(len));
    EXPECT_FALSE(
        DecodeFrameHeader(std::span<const uint8_t>(frame.data(), len)).ok());
  }
}

TEST(NetWireTest, PayloadDecodersRejectEveryTruncation) {
  WireRankRequest wire;
  wire.deadline_ms = 250;
  wire.request.p = 0.5;
  wire.request.seeds = {3, 1, 4, 1, 5};
  wire.request.warm_start_tag = "trajectory";
  const std::vector<uint8_t> request_payload = EncodeRankRequest(wire);
  for (size_t len = 0; len < request_payload.size(); ++len) {
    SCOPED_TRACE("request truncated to " + std::to_string(len));
    EXPECT_FALSE(
        DecodeRankRequest({request_payload.data(), len}).ok());
  }

  RankResponse response;
  response.scores = {0.5, 0.25, 0.25};
  response.converged = true;
  const std::vector<uint8_t> response_payload = EncodeRankResponse(response);
  for (size_t len = 0; len < response_payload.size(); ++len) {
    SCOPED_TRACE("response truncated to " + std::to_string(len));
    EXPECT_FALSE(
        DecodeRankResponse({response_payload.data(), len}).ok());
  }

  const std::vector<uint8_t> status_payload =
      EncodeStatusPayload(Status::InvalidArgument("bad alpha"));
  for (size_t len = 0; len < status_payload.size(); ++len) {
    SCOPED_TRACE("status truncated to " + std::to_string(len));
    Status decoded;
    EXPECT_FALSE(
        DecodeStatusPayload({status_payload.data(), len}, &decoded).ok());
  }

  const std::vector<uint8_t> info_payload =
      EncodeServerInfo(ServerInfo{10, 20, 2, 4});
  for (size_t len = 0; len < info_payload.size(); ++len) {
    SCOPED_TRACE("info truncated to " + std::to_string(len));
    EXPECT_FALSE(DecodeServerInfo({info_payload.data(), len}).ok());
  }
}

TEST(NetWireTest, PayloadDecodersRejectTrailingGarbage) {
  WireRankRequest wire;
  wire.request.seeds = {1};
  std::vector<uint8_t> padded = EncodeRankRequest(wire);
  padded.push_back(0);
  EXPECT_FALSE(DecodeRankRequest(padded).ok());

  std::vector<uint8_t> response = EncodeRankResponse(RankResponse{});
  response.push_back(0);
  EXPECT_FALSE(DecodeRankResponse(response).ok());
}

TEST(NetWireTest, RankRequestRejectsOutOfRangeEnums) {
  WireRankRequest wire;
  std::vector<uint8_t> payload = EncodeRankRequest(wire);
  // metric is the u32 after deadline(8) + p(8) + beta(8) = offset 24.
  payload[24] = 200;
  EXPECT_FALSE(DecodeRankRequest(payload).ok());
}

TEST(NetWireTest, RankRequestRejectsLyingSeedCount) {
  // A seed count larger than the remaining bytes must be rejected before
  // any allocation sized from it.
  WireRankRequest wire;
  wire.request.seeds = {1, 2};
  std::vector<uint8_t> payload = EncodeRankRequest(wire);
  // num_seeds is the u64 at offset 8*6 + 4*4 = 64 (after deadline, p,
  // beta, metric, alpha, tolerance, max_iterations, dangling, method,
  // push_epsilon).
  const size_t seed_count_offset = 64;
  for (int b = 0; b < 8; ++b) payload[seed_count_offset + b] = 0xff;
  EXPECT_FALSE(DecodeRankRequest(payload).ok());
}

// --- top-k extension ---

TEST(NetWireTopKTest, RequestTopKRoundTrips) {
  for (int top_k : {1, 10, 5000, std::numeric_limits<int32_t>::max()}) {
    SCOPED_TRACE("top_k " + std::to_string(top_k));
    WireRankRequest wire;
    wire.request.seeds = {3, 9};
    wire.request.method = SolverMethod::kForwardPush;
    wire.request.top_k = top_k;
    auto decoded = DecodeRankRequest(EncodeRankRequest(wire));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ExpectRequestsEqual(decoded.value(), wire);
  }
}

TEST(NetWireTopKTest, ExactRequestIsByteIdenticalToOldFormat) {
  // top_k = 0 must not be encoded at all: the exact-serving frame is the
  // pre-top-k frame, so old servers and new servers read the same bytes.
  WireRankRequest wire;
  wire.request.seeds = {1, 2, 3};
  wire.request.warm_start_tag = "tag";
  const std::vector<uint8_t> exact = EncodeRankRequest(wire);
  wire.request.top_k = 7;
  const std::vector<uint8_t> truncated = EncodeRankRequest(wire);
  EXPECT_EQ(truncated.size(), exact.size() + 4);
  EXPECT_TRUE(std::equal(exact.begin(), exact.end(), truncated.begin()));

  // And an old-format frame (no trailing field) decodes as top_k = 0.
  auto decoded = DecodeRankRequest(exact);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().request.top_k, 0);
}

TEST(NetWireTopKTest, RequestRejectsOutOfRangeTopK) {
  WireRankRequest wire;
  wire.request.top_k = 1;
  std::vector<uint8_t> payload = EncodeRankRequest(wire);
  // Overwrite the trailing u32 with a value above INT32_MAX.
  const size_t at = payload.size() - 4;
  payload[at] = 0xff;
  payload[at + 1] = 0xff;
  payload[at + 2] = 0xff;
  payload[at + 3] = 0xff;
  auto decoded = DecodeRankRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("top_k"), std::string::npos);
}

TEST(NetWireTopKTest, RequestWithTopKRejectsEveryRealTruncation) {
  WireRankRequest wire;
  wire.request.seeds = {3, 1, 4};
  wire.request.warm_start_tag = "t";
  wire.request.top_k = 12;
  const std::vector<uint8_t> payload = EncodeRankRequest(wire);
  for (size_t len = 0; len < payload.size(); ++len) {
    SCOPED_TRACE("truncated to " + std::to_string(len));
    auto decoded = DecodeRankRequest({payload.data(), len});
    if (len == payload.size() - 4) {
      // Dropping exactly the optional field yields a valid old-format
      // frame — the one truncation that is by construction decodable,
      // and it must read back as exact serving, not a garbled k.
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(decoded.value().request.top_k, 0);
    } else {
      EXPECT_FALSE(decoded.ok());
    }
  }
}

RankResponse TruncatedResponse() {
  RankResponse response;
  response.truncated = true;
  response.top = {{7, 0.5, true}, {3, 0.25, true}, {11, 0.125, false}};
  response.uncertainty_gap = 3e-4;
  response.method = SolverMethod::kForwardPush;
  response.pushes = 4200;
  response.converged = true;
  return response;
}

TEST(NetWireTopKTest, TruncatedResponseRoundTrips) {
  const RankResponse response = TruncatedResponse();
  auto decoded = DecodeRankResponse(EncodeRankResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value().truncated);
  EXPECT_TRUE(decoded.value().scores.empty());
  ASSERT_EQ(decoded.value().top.size(), response.top.size());
  for (size_t i = 0; i < response.top.size(); ++i) {
    EXPECT_EQ(decoded.value().top[i], response.top[i]) << "entry " << i;
  }
  EXPECT_EQ(decoded.value().uncertainty_gap, response.uncertainty_gap);
  EXPECT_EQ(decoded.value().pushes, response.pushes);

  // An empty truncated set (k-query against an empty graph) still rides
  // the flag bit and round-trips.
  RankResponse empty;
  empty.truncated = true;
  auto empty_decoded = DecodeRankResponse(EncodeRankResponse(empty));
  ASSERT_TRUE(empty_decoded.ok());
  EXPECT_TRUE(empty_decoded.value().truncated);
  EXPECT_TRUE(empty_decoded.value().top.empty());
}

TEST(NetWireTopKTest, ExactResponseIsByteIdenticalToOldFormat) {
  RankResponse response;
  response.scores = {0.5, 0.5};
  response.converged = true;
  const std::vector<uint8_t> payload = EncodeRankResponse(response);
  // flags is the final u32 of the pre-top-k layout; bit 5 must be clear
  // and no truncated section may follow.
  const size_t flags_at = payload.size() - 4;
  EXPECT_EQ(payload[flags_at] & 0x20, 0);
  auto decoded = DecodeRankResponse(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().truncated);
  EXPECT_TRUE(decoded.value().top.empty());
  EXPECT_EQ(decoded.value().uncertainty_gap, 0.0);
}

TEST(NetWireTopKTest, TruncatedResponseRejectsEveryTruncation) {
  const std::vector<uint8_t> payload =
      EncodeRankResponse(TruncatedResponse());
  for (size_t len = 0; len < payload.size(); ++len) {
    SCOPED_TRACE("truncated to " + std::to_string(len));
    EXPECT_FALSE(DecodeRankResponse({payload.data(), len}).ok());
  }
}

TEST(NetWireTopKTest, TruncatedResponseRejectsTrailingGarbage) {
  std::vector<uint8_t> payload = EncodeRankResponse(TruncatedResponse());
  payload.push_back(0);
  EXPECT_FALSE(DecodeRankResponse(payload).ok());
}

TEST(NetWireTopKTest, TruncatedResponseRejectsLyingEntryCount) {
  std::vector<uint8_t> payload = EncodeRankResponse(TruncatedResponse());
  // The entry count is the u64 right after the flags word: scores count
  // (8, zero scores) + method(4) + iterations(4) + pushes(8) +
  // residual(8) + flags(4) = offset 36.
  const size_t count_at = 36;
  for (int b = 0; b < 8; ++b) payload[count_at + b] = 0xff;
  EXPECT_FALSE(DecodeRankResponse(payload).ok());
}

TEST(NetWireTopKTest, TruncatedResponseRejectsBadCertifiedByte) {
  std::vector<uint8_t> payload = EncodeRankResponse(TruncatedResponse());
  // First entry's certified byte: entries start at offset 44 (count at
  // 36 + 8), each entry is node(4) + score(8) + certified(1).
  const size_t certified_at = 44 + 4 + 8;
  ASSERT_EQ(payload[certified_at], 1);
  payload[certified_at] = 2;
  auto decoded = DecodeRankResponse(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("certified"), std::string::npos);
}

TEST(NetWireTopKTest, ResponseRejectsUnknownFlagBits) {
  std::vector<uint8_t> payload = EncodeRankResponse(RankResponse{});
  const size_t flags_at = payload.size() - 4;
  payload[flags_at] |= 0x40;  // bit 6: above the known mask
  EXPECT_FALSE(DecodeRankResponse(payload).ok());
}

TEST(NetWireTopKTest, RandomCorruptionNeverCrashesTopKDecoders) {
  // The corruption fuzz of NetWireTest, re-aimed at payloads that carry
  // the optional field and the flag-gated section.
  Rng rng(20260809);
  WireRankRequest wire;
  wire.request.seeds = {5, 10};
  wire.request.top_k = 25;
  const std::vector<uint8_t> request_payload = EncodeRankRequest(wire);
  const std::vector<uint8_t> response_payload =
      EncodeRankResponse(TruncatedResponse());
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> corrupted =
        (trial % 2 == 0) ? request_payload : response_payload;
    const int flips = 1 + static_cast<int>(rng.Next() % 4);
    for (int f = 0; f < flips; ++f) {
      corrupted[rng.Next() % corrupted.size()] ^=
          static_cast<uint8_t>(1 + rng.Next() % 255);
    }
    if (trial % 2 == 0) {
      (void)DecodeRankRequest(corrupted);
    } else {
      (void)DecodeRankResponse(corrupted);
    }
  }
}

TEST(NetWireTest, RandomCorruptionNeverCrashesDecoders) {
  // Fuzz: flip random bytes in valid payloads; decoders must either
  // reject or produce a value, never crash or over-read (ASan-observable
  // if they did).
  Rng rng(20260808);
  WireRankRequest wire;
  wire.deadline_ms = 99;
  wire.request.seeds = {5, 10, 15};
  wire.request.warm_start_tag = "tag";
  const std::vector<uint8_t> request_payload = EncodeRankRequest(wire);
  RankResponse response;
  response.scores = {0.1, 0.2, 0.3, 0.4};
  const std::vector<uint8_t> response_payload = EncodeRankResponse(response);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> corrupted =
        (trial % 2 == 0) ? request_payload : response_payload;
    const int flips = 1 + static_cast<int>(rng.Next() % 4);
    for (int f = 0; f < flips; ++f) {
      corrupted[rng.Next() % corrupted.size()] ^=
          static_cast<uint8_t>(1 + rng.Next() % 255);
    }
    if (trial % 2 == 0) {
      (void)DecodeRankRequest(corrupted);
    } else {
      (void)DecodeRankResponse(corrupted);
    }
  }
}

// --- v2 distributed-block-solve frames (net/shard_wire.h) ---

ShardHandshake SampleHandshake() {
  ShardHandshake handshake;
  handshake.shard_id = 2;
  handshake.num_shards = 4;
  handshake.scheme = PartitionScheme::kHash;
  handshake.slice_build = SliceBuild::kSubgraph;
  handshake.graph_fingerprint = 0xfeedfacecafebeefull;
  handshake.p = 0.5;
  handshake.beta = 0.25;
  handshake.metric = DegreeMetric::kOutStrength;
  return handshake;
}

ShardHandshakeAck SampleAck() {
  ShardHandshakeAck ack;
  ack.num_nodes = 1000;
  ack.num_arcs = 8000;
  ack.num_owned = 250;
  ack.boundary_in_arcs = 300;
  ack.dangling_owned = {250, 260, 270};
  ack.boundary_sources = {0, 5, 999};
  return ack;
}

ShardSolveBegin SampleSolveBegin() {
  ShardSolveBegin begin;
  begin.solve_id = 77;
  begin.method = static_cast<uint32_t>(SolverMethod::kGaussSeidel);
  begin.dangling = DanglingPolicy::kSelfLoop;
  begin.alpha = 0.85;
  begin.initial = {0.25, 0.5};
  begin.teleport = {0.125, 0.875};
  return begin;
}

ShardSweepRequest SampleSweepRequest() {
  ShardSweepRequest request;
  request.solve_id = 77;
  request.sweep = 3;
  request.dangling_mass = 0.0625;
  request.has_rescale = true;
  request.rescale = 1.0 / 3.0;
  request.boundary = {0.1, 0.2, 0.3};
  return request;
}

ShardSweepResponse SampleSweepResponse() {
  ShardSweepResponse response;
  response.solve_id = 77;
  response.sweep = 3;
  response.owned = {0.4, 0.6};
  response.dangling_partial = 0.03125;
  response.residual_partial = 1e-7;
  return response;
}

TEST(ShardWireTest, HandshakeRoundTripsEverySchemeBuildMetricCombo) {
  for (PartitionScheme scheme :
       {PartitionScheme::kRange, PartitionScheme::kHash}) {
    for (SliceBuild build : {SliceBuild::kFromMatrix, SliceBuild::kSubgraph}) {
      for (DegreeMetric metric :
           {DegreeMetric::kOutDegree, DegreeMetric::kOutStrength,
            DegreeMetric::kInDegree}) {
        ShardHandshake handshake = SampleHandshake();
        handshake.scheme = scheme;
        handshake.slice_build = build;
        handshake.metric = metric;
        auto decoded = DecodeShardHandshake(EncodeShardHandshake(handshake));
        ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
        EXPECT_EQ(decoded->shard_id, handshake.shard_id);
        EXPECT_EQ(decoded->num_shards, handshake.num_shards);
        EXPECT_EQ(decoded->scheme, scheme);
        EXPECT_EQ(decoded->slice_build, build);
        EXPECT_EQ(decoded->graph_fingerprint, handshake.graph_fingerprint);
        EXPECT_EQ(decoded->p, handshake.p);
        EXPECT_EQ(decoded->beta, handshake.beta);
        EXPECT_EQ(decoded->metric, metric);
      }
    }
  }
}

TEST(ShardWireTest, HandshakeKeyDoublesSurviveBitExact) {
  // The key comparison shard-side is bitwise; the codec must not launder
  // signed zero (or any other bit pattern).
  ShardHandshake handshake = SampleHandshake();
  handshake.p = -0.0;
  handshake.beta = std::numeric_limits<double>::denorm_min();
  auto decoded = DecodeShardHandshake(EncodeShardHandshake(handshake));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::signbit(decoded->p));
  EXPECT_EQ(decoded->beta, std::numeric_limits<double>::denorm_min());
}

TEST(ShardWireTest, HandshakeRejectsUnresolvedAndOutOfRangeEnums) {
  const std::vector<uint8_t> good = EncodeShardHandshake(SampleHandshake());
  {
    std::vector<uint8_t> bad = good;
    bad[8] = 9;  // scheme u32 at offset 8
    EXPECT_FALSE(DecodeShardHandshake(bad).ok());
  }
  {
    std::vector<uint8_t> bad = good;
    bad[12] = 9;  // slice_build u32 at offset 12
    EXPECT_FALSE(DecodeShardHandshake(bad).ok());
  }
  {
    // metric u32 at offset 40: kAuto (unresolved) must be rejected even
    // though it is a valid enum value elsewhere — the wire carries only
    // RESOLVED keys.
    std::vector<uint8_t> bad = good;
    bad[40] = static_cast<uint8_t>(DegreeMetric::kAuto);
    auto decoded = DecodeShardHandshake(bad);
    ASSERT_FALSE(decoded.ok());
    EXPECT_NE(decoded.status().message().find("metric"), std::string::npos);
    bad[40] = 200;
    EXPECT_FALSE(DecodeShardHandshake(bad).ok());
  }
  {
    std::vector<uint8_t> bad = good;
    bad[4] = 0;  // num_shards = 0
    EXPECT_FALSE(DecodeShardHandshake(bad).ok());
  }
  {
    std::vector<uint8_t> bad = good;
    bad[0] = 200;  // shard_id >= num_shards
    EXPECT_FALSE(DecodeShardHandshake(bad).ok());
  }
}

TEST(ShardWireTest, AckRoundTripsWithAndWithoutLists) {
  const ShardHandshakeAck ack = SampleAck();
  auto decoded = DecodeShardHandshakeAck(EncodeShardHandshakeAck(ack));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_nodes, ack.num_nodes);
  EXPECT_EQ(decoded->num_arcs, ack.num_arcs);
  EXPECT_EQ(decoded->num_owned, ack.num_owned);
  EXPECT_EQ(decoded->boundary_in_arcs, ack.boundary_in_arcs);
  EXPECT_EQ(decoded->dangling_owned, ack.dangling_owned);
  EXPECT_EQ(decoded->boundary_sources, ack.boundary_sources);

  // Empty lists (a dangling-free interior shard) are legal.
  ShardHandshakeAck bare;
  bare.num_nodes = 10;
  bare.num_owned = 10;
  auto bare_decoded = DecodeShardHandshakeAck(EncodeShardHandshakeAck(bare));
  ASSERT_TRUE(bare_decoded.ok());
  EXPECT_TRUE(bare_decoded->dangling_owned.empty());
  EXPECT_TRUE(bare_decoded->boundary_sources.empty());
}

TEST(ShardWireTest, AckRejectsLyingListCounts) {
  // Counts bigger than the remaining bytes must be rejected BEFORE any
  // allocation sized from them. The dangling count is the u32 at offset
  // 32 (after four u64s); the boundary count follows the dangling ids.
  std::vector<uint8_t> payload = EncodeShardHandshakeAck(SampleAck());
  for (int b = 0; b < 4; ++b) payload[32 + b] = 0xff;
  auto decoded = DecodeShardHandshakeAck(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("count"), std::string::npos);

  payload = EncodeShardHandshakeAck(SampleAck());
  const size_t boundary_count_at = 32 + 4 + 3 * 4;
  for (int b = 0; b < 4; ++b) payload[boundary_count_at + b] = 0xff;
  EXPECT_FALSE(DecodeShardHandshakeAck(payload).ok());
}

TEST(ShardWireTest, AckNeedsMetricTrailingByteIsBackwardCompatible) {
  // needs_metric_values rides a TRAILING byte appended only when true:
  // the false encoding must stay byte-identical to the pre-cut-file
  // revision, and a decoder reading the short (old) payload must default
  // to false.
  ShardHandshakeAck ack = SampleAck();
  ack.needs_metric_values = false;
  const std::vector<uint8_t> old_bytes = EncodeShardHandshakeAck(ack);
  ack.needs_metric_values = true;
  const std::vector<uint8_t> new_bytes = EncodeShardHandshakeAck(ack);

  ASSERT_EQ(new_bytes.size(), old_bytes.size() + 1);
  EXPECT_TRUE(std::equal(old_bytes.begin(), old_bytes.end(),
                         new_bytes.begin()));
  EXPECT_EQ(new_bytes.back(), 1);

  auto old_decoded = DecodeShardHandshakeAck(old_bytes);
  ASSERT_TRUE(old_decoded.ok());
  EXPECT_FALSE(old_decoded->needs_metric_values);
  auto new_decoded = DecodeShardHandshakeAck(new_bytes);
  ASSERT_TRUE(new_decoded.ok());
  EXPECT_TRUE(new_decoded->needs_metric_values);
  EXPECT_EQ(new_decoded->boundary_sources, ack.boundary_sources);
}

TEST(ShardWireTest, AckRejectsBadNeedsMetricByte) {
  ShardHandshakeAck ack = SampleAck();
  ack.needs_metric_values = true;
  std::vector<uint8_t> payload = EncodeShardHandshakeAck(ack);
  payload.back() = 2;
  auto decoded = DecodeShardHandshakeAck(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("needs_metric_values"),
            std::string::npos);
}

TEST(ShardWireTest, SolveBeginMetricValuesAreTrailingAndBackwardCompatible) {
  // The metric vector rides a trailing score list appended only when
  // non-empty — same compatibility contract as the ack's trailing byte.
  ShardSolveBegin begin = SampleSolveBegin();
  const std::vector<uint8_t> old_bytes = EncodeShardSolveBegin(begin);
  begin.metric_values = {1.0, 2.5, 0x1.fffffffffffffp+1, -0.0};
  const std::vector<uint8_t> new_bytes = EncodeShardSolveBegin(begin);

  ASSERT_GT(new_bytes.size(), old_bytes.size());
  EXPECT_TRUE(std::equal(old_bytes.begin(), old_bytes.end(),
                         new_bytes.begin()));

  auto old_decoded = DecodeShardSolveBegin(old_bytes);
  ASSERT_TRUE(old_decoded.ok());
  EXPECT_TRUE(old_decoded->metric_values.empty());
  auto new_decoded = DecodeShardSolveBegin(new_bytes);
  ASSERT_TRUE(new_decoded.ok()) << new_decoded.status().ToString();
  EXPECT_EQ(new_decoded->metric_values, begin.metric_values);  // bit-exact
}

TEST(ShardWireTest, SolveBeginRejectsPresentButEmptyMetricSection) {
  // An empty trailing list would be indistinguishable from its own
  // absence (and one count longer); the codec forbids encoding it by
  // construction and rejects it on decode.
  std::vector<uint8_t> payload = EncodeShardSolveBegin(SampleSolveBegin());
  payload.insert(payload.end(), {0, 0, 0, 0});  // score list, count 0
  auto decoded = DecodeShardSolveBegin(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("metric section present"),
            std::string::npos);
}

TEST(ShardWireTest, SolveBeginRejectsTruncatedMetricSection) {
  ShardSolveBegin begin = SampleSolveBegin();
  begin.metric_values = {1.0, 2.0, 3.0};
  const std::vector<uint8_t> full = EncodeShardSolveBegin(begin);
  const std::vector<uint8_t> base = EncodeShardSolveBegin(SampleSolveBegin());
  for (size_t len = base.size() + 1; len < full.size(); ++len) {
    std::vector<uint8_t> cut(full.begin(), full.begin() + len);
    EXPECT_FALSE(DecodeShardSolveBegin(cut).ok()) << "length " << len;
  }
}

TEST(ShardWireTest, SolveBeginRoundTripsBothMethodsEveryPolicy) {
  for (SolverMethod method :
       {SolverMethod::kPower, SolverMethod::kGaussSeidel}) {
    for (DanglingPolicy dangling :
         {DanglingPolicy::kTeleport, DanglingPolicy::kSelfLoop,
          DanglingPolicy::kRenormalize}) {
      ShardSolveBegin begin = SampleSolveBegin();
      begin.method = static_cast<uint32_t>(method);
      begin.dangling = dangling;
      auto decoded = DecodeShardSolveBegin(EncodeShardSolveBegin(begin));
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(decoded->solve_id, begin.solve_id);
      EXPECT_EQ(decoded->method, begin.method);
      EXPECT_EQ(decoded->dangling, dangling);
      EXPECT_EQ(decoded->alpha, begin.alpha);
      EXPECT_EQ(decoded->initial, begin.initial);
      EXPECT_EQ(decoded->teleport, begin.teleport);
    }
  }
}

TEST(ShardWireTest, SolveBeginRejectsNonBlockMethodsAndBadPolicy) {
  {
    // kForwardPush is a valid SolverMethod but has no distributed sweep;
    // the codec rejects it at decode, not deep in the worker.
    ShardSolveBegin begin = SampleSolveBegin();
    begin.method = static_cast<uint32_t>(SolverMethod::kForwardPush);
    EXPECT_FALSE(DecodeShardSolveBegin(EncodeShardSolveBegin(begin)).ok());
    begin.method = 99;
    EXPECT_FALSE(DecodeShardSolveBegin(EncodeShardSolveBegin(begin)).ok());
  }
  {
    std::vector<uint8_t> bad = EncodeShardSolveBegin(SampleSolveBegin());
    bad[12] = 9;  // dangling u32 at offset 12
    EXPECT_FALSE(DecodeShardSolveBegin(bad).ok());
  }
  {
    // initial/teleport slice lengths must agree.
    ShardSolveBegin begin = SampleSolveBegin();
    begin.teleport.push_back(0.0);
    EXPECT_FALSE(DecodeShardSolveBegin(EncodeShardSolveBegin(begin)).ok());
  }
}

TEST(ShardWireTest, SweepRequestRoundTripsWithAndWithoutRescale) {
  for (bool has_rescale : {false, true}) {
    ShardSweepRequest request = SampleSweepRequest();
    request.has_rescale = has_rescale;
    auto decoded = DecodeShardSweepRequest(EncodeShardSweepRequest(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->solve_id, request.solve_id);
    EXPECT_EQ(decoded->sweep, request.sweep);
    EXPECT_EQ(decoded->dangling_mass, request.dangling_mass);
    EXPECT_EQ(decoded->has_rescale, has_rescale);
    EXPECT_EQ(decoded->rescale, request.rescale);
    EXPECT_EQ(decoded->boundary, request.boundary);
  }
}

TEST(ShardWireTest, SweepFramesRejectZeroSweepAndBadRescaleByte) {
  {
    ShardSweepRequest request = SampleSweepRequest();
    request.sweep = 0;  // sweeps are 1-based
    EXPECT_FALSE(
        DecodeShardSweepRequest(EncodeShardSweepRequest(request)).ok());
  }
  {
    std::vector<uint8_t> bad = EncodeShardSweepRequest(SampleSweepRequest());
    bad[20] = 2;  // has_rescale byte at offset 20: only 0/1 are booleans
    EXPECT_FALSE(DecodeShardSweepRequest(bad).ok());
  }
  {
    ShardSweepResponse response = SampleSweepResponse();
    response.sweep = 0;
    EXPECT_FALSE(
        DecodeShardSweepResponse(EncodeShardSweepResponse(response)).ok());
  }
}

TEST(ShardWireTest, SweepFramesRejectLyingScoreCounts) {
  std::vector<uint8_t> request = EncodeShardSweepRequest(SampleSweepRequest());
  // boundary count u32 at offset 8 + 4 + 8 + 1 + 8 = 29.
  for (int b = 0; b < 4; ++b) request[29 + b] = 0xff;
  EXPECT_FALSE(DecodeShardSweepRequest(request).ok());

  std::vector<uint8_t> response =
      EncodeShardSweepResponse(SampleSweepResponse());
  // owned count u32 at offset 8 + 4 = 12.
  for (int b = 0; b < 4; ++b) response[12 + b] = 0xff;
  EXPECT_FALSE(DecodeShardSweepResponse(response).ok());
}

TEST(ShardWireTest, SweepResponseAndSolveEndRoundTrip) {
  const ShardSweepResponse response = SampleSweepResponse();
  auto decoded = DecodeShardSweepResponse(EncodeShardSweepResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->solve_id, response.solve_id);
  EXPECT_EQ(decoded->sweep, response.sweep);
  EXPECT_EQ(decoded->owned, response.owned);
  EXPECT_EQ(decoded->dangling_partial, response.dangling_partial);
  EXPECT_EQ(decoded->residual_partial, response.residual_partial);

  ShardSolveEnd end;
  end.solve_id = 0xabcdef0123456789ull;
  auto end_decoded = DecodeShardSolveEnd(EncodeShardSolveEnd(end));
  ASSERT_TRUE(end_decoded.ok());
  EXPECT_EQ(end_decoded->solve_id, end.solve_id);
}

TEST(ShardWireTest, EveryDecoderRejectsEveryTruncationOffset) {
  const std::vector<uint8_t> payloads[] = {
      EncodeShardHandshake(SampleHandshake()),
      EncodeShardHandshakeAck(SampleAck()),
      EncodeShardSolveBegin(SampleSolveBegin()),
      EncodeShardSweepRequest(SampleSweepRequest()),
      EncodeShardSweepResponse(SampleSweepResponse()),
      EncodeShardSolveEnd(ShardSolveEnd{77}),
  };
  for (size_t which = 0; which < 6; ++which) {
    const std::vector<uint8_t>& payload = payloads[which];
    for (size_t len = 0; len < payload.size(); ++len) {
      SCOPED_TRACE("payload " + std::to_string(which) + " truncated to " +
                   std::to_string(len));
      const std::span<const uint8_t> cut(payload.data(), len);
      bool ok = false;
      switch (which) {
        case 0: ok = DecodeShardHandshake(cut).ok(); break;
        case 1: ok = DecodeShardHandshakeAck(cut).ok(); break;
        case 2: ok = DecodeShardSolveBegin(cut).ok(); break;
        case 3: ok = DecodeShardSweepRequest(cut).ok(); break;
        case 4: ok = DecodeShardSweepResponse(cut).ok(); break;
        case 5: ok = DecodeShardSolveEnd(cut).ok(); break;
      }
      EXPECT_FALSE(ok);
    }
  }
}

TEST(ShardWireTest, EveryDecoderRejectsTrailingGarbage) {
  {
    std::vector<uint8_t> padded = EncodeShardHandshake(SampleHandshake());
    padded.push_back(0);
    EXPECT_FALSE(DecodeShardHandshake(padded).ok());
  }
  {
    std::vector<uint8_t> padded = EncodeShardHandshakeAck(SampleAck());
    padded.push_back(0);
    EXPECT_FALSE(DecodeShardHandshakeAck(padded).ok());
  }
  {
    std::vector<uint8_t> padded = EncodeShardSolveBegin(SampleSolveBegin());
    padded.push_back(0);
    EXPECT_FALSE(DecodeShardSolveBegin(padded).ok());
  }
  {
    std::vector<uint8_t> padded =
        EncodeShardSweepRequest(SampleSweepRequest());
    padded.push_back(0);
    EXPECT_FALSE(DecodeShardSweepRequest(padded).ok());
  }
  {
    std::vector<uint8_t> padded =
        EncodeShardSweepResponse(SampleSweepResponse());
    padded.push_back(0);
    EXPECT_FALSE(DecodeShardSweepResponse(padded).ok());
  }
  {
    std::vector<uint8_t> padded = EncodeShardSolveEnd(ShardSolveEnd{1});
    padded.push_back(0);
    EXPECT_FALSE(DecodeShardSolveEnd(padded).ok());
  }
}

TEST(ShardWireTest, FrameHeaderAcceptsAllV2TypesAndStillRejectsBeyond) {
  for (FrameType type :
       {FrameType::kShardHandshake, FrameType::kShardHandshakeAck,
        FrameType::kSolveBegin, FrameType::kSweepRequest,
        FrameType::kSweepResponse, FrameType::kSolveEnd}) {
    const std::vector<uint8_t> frame =
        EncodeFrame(type, 9, std::vector<uint8_t>{});
    auto header = DecodeFrameHeader(frame);
    ASSERT_TRUE(header.ok()) << header.status().ToString();
    EXPECT_EQ(header->type, type);
  }
  // One past the v2 range is still an unknown type.
  std::vector<uint8_t> frame =
      EncodeFrame(FrameType::kSolveEnd, 9, std::vector<uint8_t>{});
  frame[10] = 13;
  EXPECT_FALSE(DecodeFrameHeader(frame).ok());
}

TEST(ShardWireTest, RandomCorruptionNeverCrashesV2Decoders) {
  // The same 2000-trial byte-flip fuzz the v1 codecs get, cycled across
  // all six v2 payloads: reject or decode, never crash or over-read.
  Rng rng(20260810);
  const std::vector<uint8_t> payloads[] = {
      EncodeShardHandshake(SampleHandshake()),
      EncodeShardHandshakeAck(SampleAck()),
      EncodeShardSolveBegin(SampleSolveBegin()),
      EncodeShardSweepRequest(SampleSweepRequest()),
      EncodeShardSweepResponse(SampleSweepResponse()),
      EncodeShardSolveEnd(ShardSolveEnd{77}),
  };
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t which = static_cast<size_t>(trial) % 6;
    std::vector<uint8_t> corrupted = payloads[which];
    const int flips = 1 + static_cast<int>(rng.Next() % 4);
    for (int f = 0; f < flips; ++f) {
      corrupted[rng.Next() % corrupted.size()] ^=
          static_cast<uint8_t>(1 + rng.Next() % 255);
    }
    switch (which) {
      case 0: (void)DecodeShardHandshake(corrupted); break;
      case 1: (void)DecodeShardHandshakeAck(corrupted); break;
      case 2: (void)DecodeShardSolveBegin(corrupted); break;
      case 3: (void)DecodeShardSweepRequest(corrupted); break;
      case 4: (void)DecodeShardSweepResponse(corrupted); break;
      case 5: (void)DecodeShardSolveEnd(corrupted); break;
    }
  }
}

// --- v1 backward-compat pin ---
//
// Adding the v2 frame types must leave every v1 byte layout untouched:
// these goldens were captured from the encoder BEFORE the v2 vocabulary
// landed (same kWireVersion). If any of them fails, a new client can no
// longer talk to an old server.

TEST(ShardWireTest, V1FramesStillEncodeByteIdentically) {
  WireRankRequest wire;
  wire.deadline_ms = 1500;
  wire.request.p = 0.5;
  wire.request.beta = 0.25;
  wire.request.metric = DegreeMetric::kOutDegree;
  wire.request.alpha = 0.85;
  wire.request.tolerance = 1e-10;
  wire.request.max_iterations = 100;
  wire.request.dangling = DanglingPolicy::kSelfLoop;
  wire.request.method = SolverMethod::kGaussSeidel;
  wire.request.push_epsilon = 1e-6;
  wire.request.seeds = {3, 17};
  wire.request.warm_start_tag = "pin";
  const std::vector<uint8_t> request_golden = {
      0x5b, 0x00, 0x00, 0x00, 0x44, 0x32, 0x50, 0x52, 0x01, 0x00, 0x01,
      0x00, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, 0xdc, 0x05,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0xe0, 0x3f, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xd0, 0x3f,
      0x01, 0x00, 0x00, 0x00, 0x33, 0x33, 0x33, 0x33, 0x33, 0x33, 0xeb,
      0x3f, 0xbb, 0xbd, 0xd7, 0xd9, 0xdf, 0x7c, 0xdb, 0x3d, 0x64, 0x00,
      0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x8d,
      0xed, 0xb5, 0xa0, 0xf7, 0xc6, 0xb0, 0x3e, 0x02, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00, 0x11, 0x00, 0x00,
      0x00, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x70, 0x69,
      0x6e};
  EXPECT_EQ(EncodeFrame(FrameType::kRankRequest, 0x1122334455667788ull,
                        EncodeRankRequest(wire)),
            request_golden);

  const std::vector<uint8_t> status_golden = {
      0x02, 0x00, 0x00, 0x00, 0x0c, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x6e, 0x6f, 0x20, 0x73, 0x75, 0x63, 0x68, 0x20, 0x6e, 0x6f,
      0x64, 0x65};
  EXPECT_EQ(EncodeStatusPayload(Status::NotFound("no such node")),
            status_golden);

  const std::vector<uint8_t> info_golden = {
      0x2a, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x54, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  EXPECT_EQ(EncodeServerInfo(ServerInfo{42, 84, 2, 4}), info_golden);

  // And the goldens decode back to the exact originals: old bytes keep
  // meaning the same thing.
  auto request_header = DecodeFrameHeader(request_golden);
  ASSERT_TRUE(request_header.ok());
  EXPECT_EQ(request_header->request_id, 0x1122334455667788ull);
  auto decoded_request = DecodeRankRequest(
      {request_golden.data() + kFrameHeaderBytes,
       request_golden.size() - kFrameHeaderBytes});
  ASSERT_TRUE(decoded_request.ok());
  ExpectRequestsEqual(decoded_request.value(), wire);
}

}  // namespace
}  // namespace d2pr
