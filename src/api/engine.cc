#include "api/engine.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/gauss_seidel.h"
#include "graph/graph_fingerprint.h"
#include "core/pagerank.h"
#include "core/push_ppr.h"
#include "core/teleport.h"
#include "linalg/vec_ops.h"

namespace d2pr {

namespace {

// Extrapolation guardrail: a requested point farther than this many stored
// trajectory steps falls back to a plain warm start.
constexpr double kMaxExtrapolationFactor = 4.0;

}  // namespace

const char* SolverMethodName(SolverMethod method) {
  switch (method) {
    case SolverMethod::kPower:
      return "power";
    case SolverMethod::kGaussSeidel:
      return "gauss-seidel";
    case SolverMethod::kForwardPush:
      return "forward-push";
  }
  return "unknown";
}

D2prEngine::D2prEngine(CsrGraph graph, const EngineOptions& options)
    : D2prEngine(std::make_shared<const CsrGraph>(std::move(graph)),
                 options) {}

D2prEngine::D2prEngine(std::shared_ptr<const CsrGraph> graph,
                       const EngineOptions& options)
    : graph_(std::move(graph)),
      options_(options),
      transition_cache_(options.transition_cache_capacity) {
  if (!options_.cache_dir.empty() &&
      options_.persist_mode != PersistMode::kOff) {
    TransitionStoreOptions store_options;
    store_options.verify_payload_checksums = options_.persist_verify_checksums;
    store_ = std::make_unique<TransitionStore>(options_.cache_dir,
                                               store_options);
    // O(|E|) once per graph — noise next to a single transition build,
    // and it gates every store file against this exact graph. Callers
    // standing up many engines over one graph pass it in precomputed.
    graph_fingerprint_ = options_.precomputed_graph_fingerprint != 0
                             ? options_.precomputed_graph_fingerprint
                             : GraphFingerprint(*graph_);
    // A wrong precomputed fingerprint would let the store replay another
    // graph's matrices; catch the caller mistake where builds can afford
    // the re-hash.
    D2PR_DCHECK(options_.precomputed_graph_fingerprint == 0 ||
                graph_fingerprint_ == GraphFingerprint(*graph_))
        << "precomputed_graph_fingerprint does not match this graph";
  }
}

D2prEngine::~D2prEngine() {
  if (options_.persist_policy == PersistPolicy::kLazy && StoreWritable()) {
    const Status spilled = PersistCachedTransitions();
    if (!spilled.ok()) {
      D2PR_LOG(Warning) << "lazy transition spill failed at shutdown: "
                        << spilled.ToString();
    }
  }
}

Status D2prEngine::PersistCachedTransitions() {
  if (!StoreWritable()) {
    return Status::FailedPrecondition(
        "no writable transition store attached (set EngineOptions::"
        "cache_dir and a writable persist_mode)");
  }
  // Snapshot the cache and read/prune the dirty set under one
  // persist_mu_ hold. GetTransition marks a key dirty only *after*
  // inserting its matrix (and takes persist_mu_ to do it), so inside
  // this critical section a dirty key absent from the snapshot is
  // provably evicted — its bytes are gone and the mark can never be
  // honored; prune it so the list stays bounded by the resident set. A
  // concurrent build that inserts after the snapshot keeps its mark for
  // the next flush (or the destructor's) instead of losing it.
  std::vector<std::pair<TransitionKey, std::shared_ptr<const TransitionMatrix>>>
      snapshot;
  std::vector<TransitionKey> dirty;
  {
    std::lock_guard<std::mutex> lock(persist_mu_);
    snapshot = transition_cache_.Snapshot();
    dirty = unspilled_keys_;
    std::erase_if(unspilled_keys_, [&](const TransitionKey& unspilled) {
      return std::none_of(
          snapshot.begin(), snapshot.end(),
          [&](const auto& entry) { return entry.first == unspilled; });
    });
  }
  Status first_error;
  for (const auto& [key, matrix] : snapshot) {
    // A key this engine built must be (re)written even if a file exists —
    // the file may be the corrupt one whose rejection caused the rebuild.
    // Everything else skips on existence, keeping the flush idempotent.
    const bool must_write =
        std::find(dirty.begin(), dirty.end(), key) != dirty.end();
    if (!must_write && store_->Contains(graph_fingerprint_, key)) continue;
    const Status saved = store_->Save(graph_fingerprint_, key, *matrix);
    if (saved.ok()) {
      ++stats_.transition_store_saves;
      std::lock_guard<std::mutex> lock(persist_mu_);
      std::erase(unspilled_keys_, key);
    } else if (first_error.ok()) {
      first_error = saved;
    }
  }
  return first_error;
}

D2prEngine D2prEngine::Borrowing(const CsrGraph& graph,
                                 const EngineOptions& options) {
  return D2prEngine(
      std::shared_ptr<const CsrGraph>(&graph, [](const CsrGraph*) {}),
      options);
}

void D2prEngine::ClearCaches() {
  transition_cache_.Clear();
  {
    // The matrices are gone, so their pending lazy spills can never run.
    std::lock_guard<std::mutex> lock(persist_mu_);
    unspilled_keys_.clear();
  }
  std::lock_guard<std::mutex> lock(warm_mu_);
  warm_entries_.clear();
}

TransitionKey D2prEngine::ResolveKey(const RankRequest& request) const {
  TransitionKey key;
  key.p = request.p;
  key.beta = graph_->weighted() ? request.beta : 0.0;
  key.metric = ResolveMetric(*graph_, request.metric);
  return key;
}

std::span<const double> D2prEngine::UniformTeleportVector() {
  // Built on first unseeded query so purely personalized workloads never
  // pay for it; immutable afterwards, so readers need no lock.
  std::call_once(uniform_teleport_once_, [this] {
    uniform_teleport_ = UniformTeleport(graph_->num_nodes());
  });
  return uniform_teleport_;
}

Result<std::shared_ptr<const TransitionMatrix>> D2prEngine::GetTransition(
    const TransitionKey& key, bool* cache_hit, bool* store_hit) {
  // Single-flight only pays off when the finished matrix lands in the
  // cache for the waiters; with caching disabled, waiting would turn N
  // independent builds into N serialized ones.
  const bool single_flight = transition_cache_.capacity() > 0;
  if (single_flight) {
    std::unique_lock<std::mutex> lock(build_mu_);
    for (;;) {
      if (auto cached = transition_cache_.Lookup(key)) {
        *cache_hit = true;
        ++stats_.transition_cache_hits;
        return cached;
      }
      // Someone else is loading or building this key: wait for them
      // instead of paying the work twice, then re-check the cache.
      if (std::find(building_keys_.begin(), building_keys_.end(), key) ==
          building_keys_.end()) {
        break;
      }
      build_cv_.wait(lock);
    }
    building_keys_.push_back(key);
  }

  *cache_hit = false;
  Status error;
  std::shared_ptr<const TransitionMatrix> shared;

  // Spill layer first: mapping a persisted matrix is O(1) against the
  // O(|E|) rebuild. A missing file is the expected cold path; a rejected
  // file (wrong graph, corruption, version skew) is surfaced loudly but
  // never used — the rebuild below always produces a correct matrix.
  if (StoreReadable()) {
    auto loaded = store_->Load(graph_fingerprint_, key, graph_->num_nodes(),
                               graph_->num_arcs());
    if (loaded.ok()) {
      *store_hit = true;
      ++stats_.transition_store_loads;
      shared = std::move(loaded).value();
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      D2PR_LOG(Warning) << "transition store rejected; rebuilding: "
                        << loaded.status().ToString();
    }
  }

  bool built_fresh = false;
  if (shared == nullptr) {
    TransitionConfig config;
    config.p = key.p;
    config.beta = key.beta;
    config.metric = key.metric;
    ++stats_.transition_builds;
    Result<TransitionMatrix> built = TransitionMatrix::Build(*graph_, config);
    if (built.ok()) {
      shared =
          std::make_shared<const TransitionMatrix>(std::move(built).value());
      built_fresh = true;
    } else {
      error = built.status();
    }
  }

  if (single_flight) {
    {
      std::lock_guard<std::mutex> lock(build_mu_);
      std::erase(building_keys_, key);
      if (shared != nullptr) transition_cache_.Insert(key, shared);
    }
    // Wake waiters whether the load/build succeeded (they will hit the
    // cache) or failed (one of them retries and reports the same error).
    build_cv_.notify_all();
  }

  // Spill after releasing the single-flight slot: waiters need the
  // matrix, not the file, so the disk write must not sit on their
  // critical path.
  if (built_fresh && StoreWritable()) {
    // With the cache on, a key builds at most once per process, so the
    // unconditional write doubles as repair of a rejected (corrupt)
    // file. With the cache off every request rebuilds; skip the spill
    // when the file already exists or each query would pay a full
    // rewrite (at the cost of not healing corrupt files in that
    // degenerate configuration).
    const bool spill_write_through =
        options_.persist_policy == PersistPolicy::kWriteThrough &&
        (single_flight || !store_->Contains(graph_fingerprint_, key));
    if (spill_write_through) {
      const Status saved = store_->Save(graph_fingerprint_, key, *shared);
      if (saved.ok()) {
        ++stats_.transition_store_saves;
      } else {
        D2PR_LOG(Warning) << "transition store spill failed: "
                          << saved.ToString();
      }
    } else if (options_.persist_policy == PersistPolicy::kLazy) {
      std::lock_guard<std::mutex> lock(persist_mu_);
      if (std::find(unspilled_keys_.begin(), unspilled_keys_.end(), key) ==
          unspilled_keys_.end()) {
        unspilled_keys_.push_back(key);
      }
    }
  }

  if (!error.ok()) return error;
  return shared;
}

Result<RankResponse> D2prEngine::Rank(const RankRequest& request) {
  ++stats_.requests;
  // Gauge for least-loaded routing (EngineRouter): held for the whole
  // call, including validation failures, so a router sees every in-flight
  // request it dispatched.
  ++stats_.requests_inflight;
  struct InflightGuard {
    std::atomic<int64_t>& gauge;
    ~InflightGuard() { --gauge; }
  } inflight_guard{stats_.requests_inflight};
  // Parameter checks run before the cache is touched; shared with every
  // other serving front end so the surface errors identically per mode.
  D2PR_RETURN_NOT_OK(ValidateRankRequestParameters(request));

  // The teleport vector is validated before the transition is fetched for
  // the same reason as the parameter checks above: bad seeds must not pay
  // a build or evict a cached matrix.
  std::vector<double> seeded;
  std::span<const double> teleport;
  if (!request.seeds.empty()) {
    D2PR_ASSIGN_OR_RETURN(seeded,
                          SeededTeleport(graph_->num_nodes(), request.seeds));
    teleport = seeded;
  } else {
    teleport = UniformTeleportVector();
  }

  const TransitionKey key = ResolveKey(request);

  RankResponse response;
  response.method = request.method;
  bool cache_hit = false;
  bool store_hit = false;
  D2PR_ASSIGN_OR_RETURN(std::shared_ptr<const TransitionMatrix> transition,
                        GetTransition(key, &cache_hit, &store_hit));
  response.transition_cache_hit = cache_hit;
  response.transition_store_hit = store_hit;

  if (request.method == SolverMethod::kForwardPush) {
    PushOptions push;
    push.alpha = request.alpha;
    push.epsilon = request.push_epsilon;
    // kSelfLoop was rejected before the transition was fetched.
    push.reinject_dangling = request.dangling == DanglingPolicy::kTeleport;
    D2PR_ASSIGN_OR_RETURN(
        PushResult pushed,
        ForwardPushPpr(*graph_, *transition, teleport, push));
    stats_.push_operations += pushed.pushes;
    response.scores = std::move(pushed.scores);
    response.pushes = pushed.pushes;
    response.converged = pushed.completed;
    return response;
  }

  PagerankOptions solver;
  solver.alpha = request.alpha;
  solver.tolerance = request.tolerance;
  solver.max_iterations = request.max_iterations;
  solver.dangling = request.dangling;

  Result<PagerankResult> solved = [&]() -> Result<PagerankResult> {
    if (request.method == SolverMethod::kGaussSeidel) {
      return SolvePagerankGaussSeidel(*graph_, *transition, teleport, solver);
    }
    std::vector<double> start;
    if (!request.warm_start_tag.empty()) {
      start = WarmStartFor(request, key);
    }
    if (start.empty()) {
      return SolvePagerank(*graph_, *transition, teleport, solver);
    }
    response.warm_start_hit = true;
    ++stats_.warm_start_hits;
    return SolvePagerankFrom(*graph_, *transition, teleport, start, solver);
  }();
  if (!solved.ok()) return solved.status();

  stats_.solver_iterations += solved->iterations;
  response.iterations = solved->iterations;
  response.converged = solved->converged;
  response.residual = solved->residual;
  response.scores = std::move(solved->scores);
  if (!request.warm_start_tag.empty()) {
    StoreWarmStart(request, key, response.scores);
  }
  return response;
}

Result<std::vector<RankResponse>> D2prEngine::RankBatch(
    std::span<const RankRequest> requests) {
  std::vector<RankResponse> responses;
  responses.reserve(requests.size());
  for (const RankRequest& request : requests) {
    D2PR_ASSIGN_OR_RETURN(RankResponse response, Rank(request));
    responses.push_back(std::move(response));
  }
  return responses;
}

void D2prEngine::ForgetWarmStart(const std::string& tag) {
  std::lock_guard<std::mutex> lock(warm_mu_);
  auto it = FindWarmEntry(tag);
  if (it != warm_entries_.end()) warm_entries_.erase(it);
}

std::list<D2prEngine::WarmEntry>::iterator D2prEngine::FindWarmEntry(
    const std::string& tag) {
  for (auto it = warm_entries_.begin(); it != warm_entries_.end(); ++it) {
    if (it->tag == tag) {
      warm_entries_.splice(warm_entries_.begin(), warm_entries_, it);
      return warm_entries_.begin();
    }
  }
  return warm_entries_.end();
}

std::vector<double> D2prEngine::WarmStartFor(const RankRequest& request,
                                             const TransitionKey& key) {
  std::lock_guard<std::mutex> lock(warm_mu_);
  auto entry = FindWarmEntry(request.warm_start_tag);
  if (entry == warm_entries_.end() || entry->snapshots.empty()) return {};
  const WarmSnapshot& cur = entry->snapshots.front();
  // A stored solution from a different metric, dangling policy, or seed
  // set solves a different family of fixed points; starting from it is
  // still correct (the fixed point is unique) but rarely closer than the
  // teleport vector, so require an exact context match.
  if (cur.metric != key.metric || cur.dangling != request.dangling ||
      cur.seeds != request.seeds) {
    return {};
  }

  if (entry->snapshots.size() == 2) {
    const WarmSnapshot& prev = entry->snapshots[1];
    if (prev.metric == cur.metric && prev.dangling == cur.dangling &&
        prev.seeds == cur.seeds) {
      // If exactly one of (p, beta, alpha) moves along prev -> cur ->
      // request, extrapolate linearly along that coordinate: the solution
      // curve is smooth in each parameter, so the predicted iterate lands
      // closer than cur.scores alone.
      const double steps[3] = {cur.p - prev.p, cur.beta - prev.beta,
                               cur.alpha - prev.alpha};
      const double wants[3] = {request.p - cur.p, key.beta - cur.beta,
                               request.alpha - cur.alpha};
      int moving = -1;
      int moving_count = 0;
      for (int i = 0; i < 3; ++i) {
        if (steps[i] != 0.0 || wants[i] != 0.0) {
          moving = i;
          ++moving_count;
        }
      }
      if (moving_count == 1 && steps[moving] != 0.0) {
        const double t = wants[moving] / steps[moving];
        if (std::isfinite(t) && std::abs(t) <= kMaxExtrapolationFactor) {
          std::vector<double> guess(cur.scores.size());
          for (size_t i = 0; i < guess.size(); ++i) {
            const double extrapolated =
                cur.scores[i] + t * (cur.scores[i] - prev.scores[i]);
            guess[i] = extrapolated > 0.0 ? extrapolated : 0.0;
          }
          if (NormalizeL1(guess) > 0.0) return guess;
        }
      }
    }
  }
  return cur.scores;
}

void D2prEngine::StoreWarmStart(const RankRequest& request,
                                const TransitionKey& key,
                                const std::vector<double>& scores) {
  if (options_.warm_start_capacity == 0) return;
  std::lock_guard<std::mutex> lock(warm_mu_);
  auto entry = FindWarmEntry(request.warm_start_tag);
  if (entry == warm_entries_.end()) {
    warm_entries_.push_front(WarmEntry{request.warm_start_tag, {}});
    entry = warm_entries_.begin();
    while (warm_entries_.size() > options_.warm_start_capacity) {
      warm_entries_.pop_back();
    }
  }
  WarmSnapshot snapshot;
  snapshot.p = key.p;
  snapshot.beta = key.beta;
  snapshot.alpha = request.alpha;
  snapshot.metric = key.metric;
  snapshot.dangling = request.dangling;
  snapshot.seeds = request.seeds;
  snapshot.scores = scores;
  entry->snapshots.insert(entry->snapshots.begin(), std::move(snapshot));
  if (entry->snapshots.size() > 2) entry->snapshots.resize(2);
}

RankRequest ToRankRequest(const D2prOptions& options) {
  RankRequest request;
  request.p = options.p;
  request.beta = options.beta;
  request.metric = options.metric;
  request.alpha = options.alpha;
  request.tolerance = options.tolerance;
  request.max_iterations = options.max_iterations;
  request.dangling = options.dangling;
  return request;
}

PagerankResult ToPagerankResult(RankResponse response) {
  PagerankResult result;
  result.scores = std::move(response.scores);
  result.iterations = response.iterations;
  result.converged = response.converged;
  result.residual = response.residual;
  return result;
}

}  // namespace d2pr
