// TopKSolver and DegreeBoundIndex unit behavior: the degree-derived
// in-probability bounds are exact maxima over arcs, the solver's
// per-entry intervals contain the true scores, certification implies
// membership in the exact top-k, and the push cap degrades to a
// best-effort (completed = false) state instead of an error.

#include "topk/topk_solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/pagerank.h"
#include "core/teleport.h"
#include "datagen/classic_generators.h"
#include "graph/graph_builder.h"
#include "topk/degree_bound.h"

namespace d2pr {
namespace {

TransitionMatrix Transition(const CsrGraph& graph, double p = 0.0) {
  auto result = TransitionMatrix::Build(graph, {.p = p});
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

std::vector<double> PointSeed(NodeId n, NodeId at) {
  std::vector<double> seed(static_cast<size_t>(n), 0.0);
  seed[static_cast<size_t>(at)] = 1.0;
  return seed;
}

/// Exact reference scores via power iteration to near machine precision.
std::vector<double> ExactScores(const CsrGraph& graph,
                                const TransitionMatrix& transition,
                                NodeId seed, double alpha = 0.85) {
  auto teleport =
      SeededTeleport(graph.num_nodes(), std::vector<NodeId>{seed});
  EXPECT_TRUE(teleport.ok());
  PagerankOptions options;
  options.alpha = alpha;
  options.tolerance = 1e-14;
  options.max_iterations = 2000;
  auto exact = SolvePagerank(graph, transition, *teleport, options);
  EXPECT_TRUE(exact.ok());
  return exact->scores;
}

std::vector<NodeId> ExactTopK(const std::vector<double>& scores, size_t k) {
  std::vector<NodeId> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<NodeId>(i);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const double sa = scores[static_cast<size_t>(a)];
    const double sb = scores[static_cast<size_t>(b)];
    if (sa != sb) return sa > sb;
    return a < b;
  });
  order.resize(std::min(k, order.size()));
  return order;
}

TEST(TopKBoundTest, MaxInProbMatchesBruteForceMaximum) {
  Rng rng(501);
  auto graph = BarabasiAlbert(80, 3, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph, 0.5);
  const DegreeBoundIndex index = DegreeBoundIndex::Build(*graph, t);
  ASSERT_EQ(index.num_nodes(), graph->num_nodes());

  // Recompute the maximum incoming probability per destination by brute
  // force over every source's out-neighbor span (a BA graph has no
  // dangling nodes, so every arc's probability is live).
  std::vector<double> expected(static_cast<size_t>(graph->num_nodes()), 0.0);
  const auto probs = t.probs();
  for (NodeId u = 0; u < graph->num_nodes(); ++u) {
    ASSERT_FALSE(t.IsDangling(u));
    const auto targets = graph->OutNeighbors(u);
    const size_t begin = static_cast<size_t>(graph->ArcBegin(u));
    for (size_t j = 0; j < targets.size(); ++j) {
      auto& slot = expected[static_cast<size_t>(targets[j])];
      slot = std::max(slot, probs[begin + j]);
    }
  }
  for (NodeId v = 0; v < graph->num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(index.MaxInProb(v), expected[static_cast<size_t>(v)])
        << "node " << v;
  }
  EXPECT_FALSE(index.has_dangling());
}

TEST(TopKBoundTest, OrderIsDescendingWithDeterministicTies) {
  Rng rng(502);
  auto graph = ErdosRenyi(60, 240, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph);
  const DegreeBoundIndex index = DegreeBoundIndex::Build(*graph, t);
  const auto order = index.ByBoundDescending();
  ASSERT_EQ(order.size(), static_cast<size_t>(graph->num_nodes()));
  for (size_t i = 1; i < order.size(); ++i) {
    const double prev = index.MaxInProb(order[i - 1]);
    const double cur = index.MaxInProb(order[i]);
    EXPECT_GE(prev, cur);
    if (prev == cur) {
      EXPECT_LT(order[i - 1], order[i]);
    }
  }
}

TEST(TopKBoundTest, DanglingGraphSetsFlag) {
  GraphBuilder builder(3, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph);
  const DegreeBoundIndex index = DegreeBoundIndex::Build(*graph, t);
  EXPECT_TRUE(index.has_dangling());
  // Node 0 has no in-arcs at all: its arc-delivered bound is exactly 0.
  EXPECT_EQ(index.MaxInProb(0), 0.0);
}

TEST(TopKSolverTest, ValidationErrors) {
  Rng rng(503);
  auto graph = ErdosRenyi(20, 60, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph);
  const DegreeBoundIndex index = DegreeBoundIndex::Build(*graph, t);
  const auto seed = PointSeed(graph->num_nodes(), 0);

  TopKOptions bad_k;
  bad_k.k = 0;
  EXPECT_FALSE(SolveTopK(*graph, t, index, seed, bad_k).ok());

  TopKOptions bad_alpha;
  bad_alpha.alpha = 1.0;
  EXPECT_FALSE(SolveTopK(*graph, t, index, seed, bad_alpha).ok());

  TopKOptions bad_epsilon;
  bad_epsilon.epsilon = 0.0;
  EXPECT_FALSE(SolveTopK(*graph, t, index, seed, bad_epsilon).ok());

  std::vector<double> not_a_distribution(20, 0.2);  // sums to 4
  EXPECT_FALSE(SolveTopK(*graph, t, index, not_a_distribution, {}).ok());

  std::vector<double> wrong_size(7, 1.0 / 7);
  EXPECT_FALSE(SolveTopK(*graph, t, index, wrong_size, {}).ok());
}

TEST(TopKSolverTest, BoundsContainExactScoresAndCertifiedMeansMembership) {
  Rng rng(504);
  auto graph = BarabasiAlbert(250, 3, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph, 0.5);
  const DegreeBoundIndex index = DegreeBoundIndex::Build(*graph, t);
  const std::vector<double> exact = ExactScores(*graph, t, 5);

  TopKOptions options;
  options.k = 10;
  auto result =
      SolveTopK(*graph, t, index, PointSeed(graph->num_nodes(), 5), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->completed);
  ASSERT_EQ(result->entries.size(), 10u);

  // The intervals are certificates: every true score must land inside
  // (modulo the 1e-14 exact-solver tolerance).
  for (const TopKEntry& entry : result->entries) {
    const double truth = exact[static_cast<size_t>(entry.node)];
    EXPECT_LE(entry.lower_bound, truth + 1e-11) << "node " << entry.node;
    EXPECT_GE(entry.upper_bound, truth - 1e-11) << "node " << entry.node;
  }

  const std::vector<NodeId> truth_top = ExactTopK(exact, 10);
  for (const TopKEntry& entry : result->entries) {
    if (!entry.certified) continue;
    EXPECT_NE(std::find(truth_top.begin(), truth_top.end(), entry.node),
              truth_top.end())
        << "certified node " << entry.node << " is not in the exact top-10";
  }
  if (result->certified) {
    EXPECT_EQ(result->uncertainty_gap, 0.0);
    for (const TopKEntry& entry : result->entries) {
      EXPECT_TRUE(entry.certified);
    }
  }
}

TEST(TopKSolverTest, CertifiesWellSeparatedSeedNeighborhood) {
  // A tight epsilon on a personalized query must fully certify: the seed
  // and its neighborhood dominate the tail by orders of magnitude.
  Rng rng(505);
  auto graph = BarabasiAlbert(400, 3, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph);
  const DegreeBoundIndex index = DegreeBoundIndex::Build(*graph, t);
  TopKOptions options;
  options.k = 5;
  options.epsilon = 1e-9;
  auto result =
      SolveTopK(*graph, t, index, PointSeed(graph->num_nodes(), 7), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->certified);
  EXPECT_EQ(result->uncertainty_gap, 0.0);
  EXPECT_EQ(result->entries.front().node, 7);  // seed dominates (push_ppr)
  // Entries are ordered by lower bound descending.
  for (size_t i = 1; i < result->entries.size(); ++i) {
    EXPECT_GE(result->entries[i - 1].lower_bound,
              result->entries[i].lower_bound);
  }
}

TEST(TopKSolverTest, KLargerThanGraphReturnsAllNodes) {
  Rng rng(506);
  auto graph = ErdosRenyi(12, 40, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph);
  const DegreeBoundIndex index = DegreeBoundIndex::Build(*graph, t);
  TopKOptions options;
  options.k = 50;
  auto result =
      SolveTopK(*graph, t, index, PointSeed(graph->num_nodes(), 0), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entries.size(), 12u);
}

TEST(TopKSolverTest, PushCapReturnsBestEffortNotError) {
  Rng rng(507);
  auto graph = BarabasiAlbert(500, 3, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph);
  const DegreeBoundIndex index = DegreeBoundIndex::Build(*graph, t);
  TopKOptions options;
  options.k = 10;
  options.epsilon = 1e-12;
  options.max_pushes = 3;
  auto result =
      SolveTopK(*graph, t, index, PointSeed(graph->num_nodes(), 0), options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->completed);
  EXPECT_LE(result->pushes, 3);
  EXPECT_FALSE(result->entries.empty());
  // Even a partial solve reports honest intervals and residual mass.
  EXPECT_GT(result->residual_mass, 0.0);
  for (const TopKEntry& entry : result->entries) {
    EXPECT_LE(entry.lower_bound, entry.upper_bound);
  }
}

TEST(TopKSolverTest, DanglingReinjectionWidensBoundsBySeedMass) {
  // 0 -> 1 -> sink: with reinjection the sink's outflow returns through
  // the seed, so the seed's upper bound must account for it; the solve
  // still brackets the exact teleport-policy scores.
  GraphBuilder builder(2, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph);
  const DegreeBoundIndex index = DegreeBoundIndex::Build(*graph, t);
  ASSERT_TRUE(index.has_dangling());

  TopKOptions options;
  options.k = 2;
  options.epsilon = 1e-12;
  auto result =
      SolveTopK(*graph, t, index, PointSeed(graph->num_nodes(), 0), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->completed);

  const std::vector<double> exact = ExactScores(*graph, t, 0);
  for (const TopKEntry& entry : result->entries) {
    const double truth = exact[static_cast<size_t>(entry.node)];
    EXPECT_LE(entry.lower_bound, truth + 1e-9);
    EXPECT_GE(entry.upper_bound, truth - 1e-9);
  }
}

}  // namespace
}  // namespace d2pr
