#include "eval/table_writer.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace d2pr {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "0.85"});
  table.AddRow({"a-much-longer-name", "7"});
  const std::string out = table.ToString();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  // Numeric cells right-aligned: "0.85" is preceded by spaces.
  EXPECT_NE(out.find(" 0.85"), std::string::npos);
}

TEST(TextTableTest, NumRows) {
  TextTable table({"x"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"1"});
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TextTableDeathTest, CellCountMismatchAborts) {
  TextTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "CHECK failed");
}

TEST(TextTableTest, CsvEscapesSpecialCharacters) {
  TextTable table({"name", "note"});
  table.AddRow({"plain", "with,comma"});
  table.AddRow({"quoted", "say \"hi\""});
  const std::string path = testing::TempDir() + "/table.csv";
  ASSERT_TRUE(table.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,note");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"with,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "quoted,\"say \"\"hi\"\"\"");
}

TEST(TextTableTest, CsvToMissingDirectoryFails) {
  TextTable table({"a"});
  EXPECT_FALSE(
      table.WriteCsv("/nonexistent_dir_zzz/file.csv").ok());
}

TEST(EnsureDirectoryTest, CreatesNested) {
  const std::string dir = testing::TempDir() + "/d2pr_test_dir/a/b";
  std::filesystem::remove_all(testing::TempDir() + "/d2pr_test_dir");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  // Idempotent.
  EXPECT_TRUE(EnsureDirectory(dir).ok());
}

TEST(ResultsDirTest, IsStable) { EXPECT_EQ(ResultsDir(), "results"); }

}  // namespace
}  // namespace d2pr
