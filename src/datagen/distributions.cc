#include "datagen/distributions.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"

namespace d2pr {

ZipfSampler::ZipfSampler(int64_t n, double s) {
  D2PR_CHECK_GE(n, 1);
  D2PR_CHECK_GE(s, 0.0);
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  double weighted = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    const double mass = std::pow(static_cast<double>(k), -s);
    total += mass;
    weighted += mass * static_cast<double>(k);
    cdf_[static_cast<size_t>(k - 1)] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
  mean_ = weighted / total;
}

int64_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->Uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin()) + 1;
}

std::vector<int64_t> SampleZipfMany(int64_t count, int64_t n, double s,
                                    int64_t min_value, Rng* rng) {
  ZipfSampler sampler(n, s);
  std::vector<int64_t> out(static_cast<size_t>(count));
  for (int64_t& v : out) v = sampler.Sample(rng) + (min_value - 1);
  return out;
}

std::vector<int32_t> WeightedSampleWithoutReplacement(
    const std::vector<double>& weights, int32_t k, Rng* rng) {
  D2PR_CHECK_GE(k, 0);
  // Efraimidis–Spirakis: key_i = U_i^(1/w_i); take the k largest keys.
  // Equivalent formulation via -log(U)/w (exponential race, smaller wins).
  using Entry = std::pair<double, int32_t>;  // (race time, index)
  std::priority_queue<Entry> worst_first;    // max-heap on race time
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i];
    D2PR_CHECK_GE(w, 0.0);
    if (w <= 0.0) continue;
    double u;
    do {
      u = rng->Uniform();
    } while (u == 0.0);
    const double race = -std::log(u) / w;
    if (worst_first.size() < static_cast<size_t>(k)) {
      worst_first.emplace(race, static_cast<int32_t>(i));
    } else if (!worst_first.empty() && race < worst_first.top().first) {
      worst_first.pop();
      worst_first.emplace(race, static_cast<int32_t>(i));
    }
  }
  D2PR_CHECK_GE(worst_first.size(), static_cast<size_t>(k))
      << "fewer positive weights than requested sample size";
  std::vector<int32_t> sample;
  sample.reserve(static_cast<size_t>(k));
  while (!worst_first.empty()) {
    sample.push_back(worst_first.top().second);
    worst_first.pop();
  }
  std::sort(sample.begin(), sample.end());
  return sample;
}

double NormalQuantile(double prob) {
  D2PR_CHECK(prob > 0.0 && prob < 1.0);
  // Acklam's inverse-normal approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;
  double q, r;
  if (prob < kLow) {
    q = std::sqrt(-2.0 * std::log(prob));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (prob <= 1.0 - kLow) {
    q = prob - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - prob));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace d2pr
