#include "core/push_ppr.h"

#include <cmath>
#include <deque>

#include "common/string_util.h"

namespace d2pr {

int64_t DefaultPushCap(NodeId num_nodes) {
  return int64_t{512} * std::max<int64_t>(num_nodes, 1024);
}

Result<PushResult> ForwardPushPpr(const CsrGraph& graph,
                                  const TransitionMatrix& transition,
                                  std::span<const double> seed,
                                  const PushOptions& options) {
  const NodeId n = graph.num_nodes();
  if (seed.size() != static_cast<size_t>(n)) {
    return Status::InvalidArgument(
        StrCat("seed size ", seed.size(), " != num nodes ", n));
  }
  if (!(options.alpha >= 0.0) || options.alpha >= 1.0) {
    return Status::InvalidArgument(
        StrCat("alpha must lie in [0, 1), got ", options.alpha));
  }
  if (!(options.epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  double seed_sum = 0.0;
  for (double s : seed) {
    if (s < 0.0) return Status::InvalidArgument("seed entries must be >= 0");
    seed_sum += s;
  }
  if (n > 0 && std::abs(seed_sum - 1.0) > 1e-9) {
    return Status::InvalidArgument(
        StrCat("seed must sum to 1, got ", seed_sum));
  }

  PushResult result;
  result.scores.assign(static_cast<size_t>(n), 0.0);
  result.residual.assign(seed.begin(), seed.end());
  if (n == 0) {
    result.completed = true;
    return result;
  }

  const int64_t max_pushes =
      options.max_pushes > 0 ? options.max_pushes : DefaultPushCap(n);

  std::deque<NodeId> queue;
  std::vector<uint8_t> queued(static_cast<size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    if (result.residual[static_cast<size_t>(v)] > options.epsilon) {
      queue.push_back(v);
      queued[static_cast<size_t>(v)] = 1;
    }
  }

  const auto targets = graph.targets();
  const auto probs = transition.probs();
  while (!queue.empty() && result.pushes < max_pushes) {
    const NodeId u = queue.front();
    queue.pop_front();
    queued[static_cast<size_t>(u)] = 0;
    double& ru = result.residual[static_cast<size_t>(u)];
    if (ru <= options.epsilon) continue;
    const double mass = ru;
    ru = 0.0;
    ++result.pushes;
    result.scores[static_cast<size_t>(u)] += (1.0 - options.alpha) * mass;

    auto spread = [&](NodeId v, double amount) {
      double& rv = result.residual[static_cast<size_t>(v)];
      rv += amount;
      if (rv > options.epsilon && !queued[static_cast<size_t>(v)]) {
        queue.push_back(v);
        queued[static_cast<size_t>(v)] = 1;
      }
    };

    if (transition.IsDangling(u)) {
      if (options.reinject_dangling) {
        // Route the walk mass through the seed distribution, as the
        // power-iteration solver's kTeleport policy does.
        for (NodeId v = 0; v < n; ++v) {
          const double share = seed[static_cast<size_t>(v)];
          if (share > 0.0) spread(v, options.alpha * mass * share);
        }
      }
      continue;
    }
    const EdgeIndex begin = graph.ArcBegin(u);
    const EdgeIndex end = begin + graph.OutDegree(u);
    for (EdgeIndex e = begin; e < end; ++e) {
      spread(targets[static_cast<size_t>(e)],
             options.alpha * mass * probs[static_cast<size_t>(e)]);
    }
  }

  result.completed = queue.empty();
  return result;
}

Result<PushResult> ForwardPushPpr(const CsrGraph& graph,
                                  const TransitionMatrix& transition,
                                  NodeId seed, const PushOptions& options) {
  if (seed < 0 || seed >= graph.num_nodes()) {
    return Status::InvalidArgument(StrCat("seed ", seed, " out of range"));
  }
  std::vector<double> dist(static_cast<size_t>(graph.num_nodes()), 0.0);
  dist[static_cast<size_t>(seed)] = 1.0;
  return ForwardPushPpr(graph, transition, dist, options);
}

}  // namespace d2pr
