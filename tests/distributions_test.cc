#include "datagen/distributions.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace d2pr {
namespace {

TEST(ZipfSamplerTest, ValuesInRange) {
  Rng rng(1);
  ZipfSampler sampler(100, 1.2);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = sampler.Sample(&rng);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
  }
}

TEST(ZipfSamplerTest, ExponentZeroIsUniform) {
  Rng rng(2);
  ZipfSampler sampler(10, 0.0);
  std::vector<int> counts(11, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(&rng)];
  for (int k = 1; k <= 10; ++k) {
    EXPECT_NEAR(counts[k], n / 10, n / 10 * 0.1) << "k = " << k;
  }
}

TEST(ZipfSamplerTest, HigherExponentConcentratesOnSmallValues) {
  Rng rng(3);
  ZipfSampler flat(50, 0.5);
  ZipfSampler steep(50, 2.5);
  double mean_flat = 0.0, mean_steep = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    mean_flat += static_cast<double>(flat.Sample(&rng));
    mean_steep += static_cast<double>(steep.Sample(&rng));
  }
  EXPECT_GT(mean_flat / n, 2.0 * mean_steep / n);
}

TEST(ZipfSamplerTest, EmpiricalMeanMatchesAnalytic) {
  Rng rng(4);
  ZipfSampler sampler(30, 1.1);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(sampler.Sample(&rng));
  }
  EXPECT_NEAR(sum / n, sampler.Mean(), sampler.Mean() * 0.03);
}

TEST(ZipfSamplerTest, FrequenciesFollowPowerLaw) {
  Rng rng(5);
  const double s = 1.5;
  ZipfSampler sampler(1000, s);
  std::vector<int64_t> counts(1001, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(&rng)];
  // P(1)/P(2) should be 2^s.
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], std::pow(2.0, s),
              0.25);
}

TEST(SampleZipfManyTest, ShiftsToMinValue) {
  Rng rng(6);
  const std::vector<int64_t> values = SampleZipfMany(5000, 10, 1.0, 3, &rng);
  EXPECT_EQ(values.size(), 5000u);
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  EXPECT_GE(*lo, 3);
  EXPECT_LE(*hi, 12);
  EXPECT_EQ(*lo, 3);  // min value should actually appear
}

TEST(WeightedSampleTest, RespectsKAndDistinctness) {
  Rng rng(7);
  std::vector<double> weights(50, 1.0);
  const std::vector<int32_t> sample =
      WeightedSampleWithoutReplacement(weights, 10, &rng);
  EXPECT_EQ(sample.size(), 10u);
  for (size_t i = 1; i < sample.size(); ++i) {
    EXPECT_LT(sample[i - 1], sample[i]);  // sorted and distinct
  }
}

TEST(WeightedSampleTest, ZeroWeightNeverSampled) {
  Rng rng(8);
  std::vector<double> weights(20, 1.0);
  weights[5] = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<int32_t> sample =
        WeightedSampleWithoutReplacement(weights, 10, &rng);
    EXPECT_EQ(std::count(sample.begin(), sample.end(), 5), 0);
  }
}

TEST(WeightedSampleTest, HeavyWeightSampledMuchMoreOften) {
  Rng rng(9);
  std::vector<double> weights(10, 1.0);
  weights[0] = 50.0;
  int hits = 0;
  const int trials = 2000;
  for (int trial = 0; trial < trials; ++trial) {
    const std::vector<int32_t> sample =
        WeightedSampleWithoutReplacement(weights, 1, &rng);
    hits += (sample[0] == 0);
  }
  // P(pick 0) = 50/59 ≈ 0.847.
  EXPECT_NEAR(static_cast<double>(hits) / trials, 50.0 / 59.0, 0.03);
}

TEST(WeightedSampleTest, KZeroGivesEmpty) {
  Rng rng(10);
  std::vector<double> weights{1.0, 2.0};
  EXPECT_TRUE(WeightedSampleWithoutReplacement(weights, 0, &rng).empty());
}

TEST(WeightedSampleDeathTest, TooFewPositiveWeightsAborts) {
  Rng rng(11);
  std::vector<double> weights{1.0, 0.0, 0.0};
  EXPECT_DEATH(WeightedSampleWithoutReplacement(weights, 2, &rng),
               "CHECK failed");
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.8413447460685429), 1.0, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.99865), 3.0, 1e-4);
}

TEST(NormalQuantileTest, SymmetryAroundHalf) {
  for (double q : {0.01, 0.1, 0.3, 0.45}) {
    EXPECT_NEAR(NormalQuantile(q), -NormalQuantile(1.0 - q), 1e-8);
  }
}

TEST(NormalQuantileDeathTest, RejectsBoundary) {
  EXPECT_DEATH((void)NormalQuantile(0.0), "CHECK failed");
  EXPECT_DEATH((void)NormalQuantile(1.0), "CHECK failed");
}

}  // namespace
}  // namespace d2pr
