#include "graph/partition.h"

#include "common/string_util.h"

namespace d2pr {

const char* PartitionSchemeName(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kRange:
      return "range";
    case PartitionScheme::kHash:
      return "hash";
  }
  return "unknown";
}

size_t PartitionOwnerOf(PartitionScheme scheme, NodeId node, NodeId num_nodes,
                        size_t num_shards) {
  D2PR_DCHECK(num_shards > 0);
  D2PR_DCHECK(node >= 0 && node < num_nodes);
  if (scheme == PartitionScheme::kHash) {
    // Matches serve/ModuloShardMap, so seed ownership and node ownership
    // agree across the serving stack.
    return static_cast<size_t>(static_cast<uint32_t>(node)) % num_shards;
  }
  // Range, closed-form: the first `extra` shards hold base + 1 nodes
  // (covering ids below the pivot), the rest hold base. When base == 0
  // (more shards than nodes) every node sits below the pivot.
  const NodeId base = num_nodes / static_cast<NodeId>(num_shards);
  const NodeId extra = num_nodes % static_cast<NodeId>(num_shards);
  const NodeId pivot = extra * (base + 1);
  if (node < pivot) {
    return static_cast<size_t>(node / (base + 1));
  }
  return static_cast<size_t>(extra + (node - pivot) / base);
}

Result<GraphPartition> GraphPartition::Build(const CsrGraph& graph,
                                             const PartitionOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("partition shard count must be >= 1");
  }
  const NodeId n = graph.num_nodes();
  const size_t num_shards = options.num_shards;

  GraphPartition partition;
  partition.scheme_ = options.scheme;
  partition.num_nodes_ = n;
  partition.shards_.resize(num_shards);

  // Owner of every node, and each owner's local index for the in-CSR
  // scatter below.
  std::vector<size_t> owner(static_cast<size_t>(n));
  std::vector<EdgeIndex> local_index(static_cast<size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const size_t s = partition.OwnerOf(v);
    owner[static_cast<size_t>(v)] = s;
    PartitionShard& shard = partition.shards_[s];
    local_index[static_cast<size_t>(v)] =
        static_cast<EdgeIndex>(shard.owned.size());
    shard.owned.push_back(v);
  }

  // --- out-CSR of owned rows + push-side boundary counts. The counters
  // (boundary_out_arcs, dangling_owned) are filled either way; the
  // arrays only when requested — pull-only consumers skip the O(|E|)
  // copy. ---
  const auto targets = graph.targets();
  for (PartitionShard& shard : partition.shards_) {
    if (options.build_out_csr) {
      EdgeIndex out_arcs = 0;
      for (NodeId v : shard.owned) out_arcs += graph.OutDegree(v);
      shard.out_offsets.reserve(shard.owned.size() + 1);
      shard.out_targets.reserve(static_cast<size_t>(out_arcs));
      shard.out_arc_begin.reserve(shard.owned.size());
      shard.out_offsets.push_back(0);
    }
    for (NodeId v : shard.owned) {
      if (graph.OutDegree(v) == 0) shard.dangling_owned.push_back(v);
      for (NodeId target : graph.OutNeighbors(v)) {
        if (owner[static_cast<size_t>(target)] !=
            owner[static_cast<size_t>(v)]) {
          ++shard.boundary_out_arcs;
        }
      }
      if (options.build_out_csr) {
        shard.out_arc_begin.push_back(graph.ArcBegin(v));
        const auto row = graph.OutNeighbors(v);
        shard.out_targets.insert(shard.out_targets.end(), row.begin(),
                                 row.end());
        shard.out_offsets.push_back(
            static_cast<EdgeIndex>(shard.out_targets.size()));
      }
    }
  }

  // --- in-CSR of owned destinations. ---
  // Two passes over the global arc array. Pass 1 counts each destination's
  // in-degree; pass 2 scatters (source, arc index) pairs. The outer loop
  // ascends over sources and rows keep targets unique, so every in-row
  // comes out strictly ascending by source — the fold order the block
  // power solver's bit-parity contract depends on.
  std::vector<EdgeIndex> in_degree(static_cast<size_t>(n), 0);
  for (EdgeIndex e = 0; e < graph.num_arcs(); ++e) {
    ++in_degree[static_cast<size_t>(targets[static_cast<size_t>(e)])];
  }
  for (PartitionShard& shard : partition.shards_) {
    shard.in_offsets.resize(shard.owned.size() + 1, 0);
    for (size_t k = 0; k < shard.owned.size(); ++k) {
      shard.in_offsets[k + 1] =
          shard.in_offsets[k] +
          in_degree[static_cast<size_t>(shard.owned[k])];
    }
    const size_t total = static_cast<size_t>(shard.in_offsets.back());
    shard.in_sources.resize(total);
    shard.in_arc_index.resize(total);
    shard.in_interior.resize(total);
  }
  // Per-destination write cursors, initialized to each row's start.
  std::vector<EdgeIndex> cursor(static_cast<size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const PartitionShard& shard = partition.shards_[owner[static_cast<size_t>(v)]];
    cursor[static_cast<size_t>(v)] =
        shard.in_offsets[static_cast<size_t>(local_index[static_cast<size_t>(v)])];
  }
  for (NodeId src = 0; src < n; ++src) {
    const EdgeIndex begin = graph.ArcBegin(src);
    const EdgeIndex end = begin + graph.OutDegree(src);
    for (EdgeIndex e = begin; e < end; ++e) {
      const NodeId dst = targets[static_cast<size_t>(e)];
      PartitionShard& shard = partition.shards_[owner[static_cast<size_t>(dst)]];
      const EdgeIndex slot = cursor[static_cast<size_t>(dst)]++;
      const bool interior =
          owner[static_cast<size_t>(src)] == owner[static_cast<size_t>(dst)];
      shard.in_sources[static_cast<size_t>(slot)] = src;
      shard.in_arc_index[static_cast<size_t>(slot)] = e;
      shard.in_interior[static_cast<size_t>(slot)] = interior ? 1 : 0;
      if (!interior) ++shard.boundary_in_arcs;
    }
  }

  for (const PartitionShard& shard : partition.shards_) {
    partition.boundary_arcs_ += shard.boundary_in_arcs;
  }
  return partition;
}

size_t GraphPartition::OwnerOf(NodeId node) const {
  return PartitionOwnerOf(scheme_, node, num_nodes_, num_shards());
}

Status GraphPartition::ValidateSlices(const TransitionSlices& slices) const {
  if (slices.num_nodes != num_nodes_) {
    return Status::InvalidArgument(
        StrCat("partition covers ", num_nodes_,
               " nodes but transition slices cover ", slices.num_nodes));
  }
  if (slices.in_probs.size() != num_shards()) {
    return Status::InvalidArgument(
        StrCat("partition has ", num_shards(), " shards but slices carry ",
               slices.in_probs.size()));
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (slices.in_probs[s].size() !=
        static_cast<size_t>(shards_[s].num_in_arcs())) {
      return Status::InvalidArgument(
          StrCat("shard ", s, " has ", shards_[s].num_in_arcs(),
                 " in-arcs but its slice holds ", slices.in_probs[s].size(),
                 " probabilities"));
    }
  }
  if (slices.is_dangling.size() != static_cast<size_t>(num_nodes_)) {
    return Status::InvalidArgument(
        StrCat("dangling bitmap covers ", slices.is_dangling.size(),
               " nodes, expected ", num_nodes_));
  }
  return Status::OK();
}

double GraphPartition::BoundaryFraction() const {
  // Totaled over the in-CSR, which exists in every build mode (the
  // out-CSR is optional); both sides sum to the graph's arc count.
  EdgeIndex total = 0;
  for (const PartitionShard& shard : shards_) total += shard.num_in_arcs();
  if (total == 0) return 0.0;
  return static_cast<double>(boundary_arcs_) / static_cast<double>(total);
}

std::string GraphPartition::ToString() const {
  return StrCat(PartitionSchemeName(scheme_), " partition: ", num_shards(),
                " shard(s), ", num_nodes_, " node(s), ", boundary_arcs_,
                " boundary arc(s)");
}

}  // namespace d2pr
