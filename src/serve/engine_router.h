// EngineRouter: N D2prEngine shards behind the single-engine serving
// surface (Rank / RankBatch / RankAsync).
//
// The engine facade is the seam: callers speak only RankRequest /
// RankResponse, so a router can replace one engine with a fleet of them
// without touching any call site. All shards share one immutable CsrGraph
// (a shared_ptr, not a copy); what is sharded is the mutable per-engine
// state — transition caches, warm-start stores, and the locks guarding
// them — which is exactly what serializes traffic on a single engine.
//
// Two routing policies:
//
//   * kReplicated — every shard can answer every request. Untagged
//     requests spread round-robin (deterministic) or least-loaded (by a
//     snapshot of each shard's requests_inflight gauge) so cache and lock
//     contention stops serializing independent queries. Warm-tag
//     affinity: all requests sharing a warm_start_tag pin to one shard
//     (stable hash of the tag), so every trajectory sees exactly the
//     per-tag request subsequence a single engine would — scores,
//     iteration counts, and warm diagnostics stay bit-identical to the
//     sequential single-engine reference.
//   * kPartitionedSubgraph — the *edges* themselves are partitioned: a
//     GraphPartitioner (graph/partition.h) splits the vertex set into
//     per-shard subgraphs (range or hash ownership), and every query is
//     answered by a block power / Gauss-Seidel iteration
//     (core/block_solver.h) that sweeps each shard's owned slice and
//     exchanges boundary mass between sweeps, with dangling mass and
//     teleportation handled globally. This is the scale mode for graphs
//     whose adjacency exceeds one machine's memory: each shard touches
//     only its own CSR slice during a sweep. No whole-graph shard
//     engines exist in this mode (shard() is invalid); the router keys
//     per-shard TransitionSlices per (p, beta, metric) — contiguous,
//     in-CSR-aligned probability slices each sweep streams
//     (core/transition_slices.h). Under the default
//     SliceBuild::kFromMatrix the slices are cut from one shared
//     whole-graph TransitionMatrix (resolved through the cache /
//     persistent store exactly as before); under SliceBuild::kSubgraph
//     they are built shard-locally from the shard rows plus a broadcast
//     O(|V|) global-metric vector — global metrics are required either
//     way because a boundary target's degree is not visible inside one
//     shard — and no whole-graph matrix (or store access) ever exists.
//     Power-iteration responses are BIT-IDENTICAL
//     to the single-engine reference for any shard count and either
//     scheme; Gauss-Seidel responses agree within solver tolerance
//     (<= 1e-9 at tolerance 1e-11). Forward push, top-k truncation
//     (RankRequest::top_k > 0), and warm starts are whole-graph
//     constructs: push and top-k requests fail with InvalidArgument,
//     warm tags are accepted but solve cold (warm_start_hit stays
//     false). Gauss-Seidel under DanglingPolicy::kRenormalize is also
//     rejected — its fixed point depends on the sweep order (see
//     core/block_solver.h), the same non-linearity that makes
//     kPartitionedTeleport route kRenormalize requests whole. See
//     tests/partition_parity_test.cc and tests/partition_fuzz_test.cc
//     for the enforced contract.
//   * kPartitionedTeleport — the *query space* is partitioned by seed
//     ownership under a pluggable ShardMap: a personalized request whose
//     seeds span several owner shards is split into one sub-request per
//     owner (seeds restricted to that shard's nodes), and the per-shard
//     score vectors are merged back into one global RankResponse. The
//     merge exploits that the PageRank fixed point is linear in the
//     teleport vector once each sub-solution is un-normalized: under
//     DanglingPolicy::kTeleport a sub-solution x_s with dangling mass m_s
//     satisfies x_s = ((1-a) + a*m_s) * (I - aP)^-1 v_s, so the router
//     rescales each x_s by weight_s / ((1-a) + a*m_s), sums, and
//     L1-renormalizes — recovering the full-teleport solution to within
//     solver tolerance. Top-k requests that split strip top_k from the
//     sub-requests (the merge needs full vectors) and truncate the
//     merged vector, serving boundary-near entries uncertified (1e-9
//     merge margin). Global (unseeded) requests and warm-tagged
//     requests route whole, as in replicated mode;
//     DanglingPolicy::kRenormalize breaks the linearity argument, so
//     seeded kRenormalize requests also route whole.
//
// Determinism contract (the parity suite in tests/engine_router_test.cc
// and tests/router_fuzz_test.cc enforces this):
//
//   * Replicated RankBatch is element-for-element identical to
//     D2prEngine::RankBatch on the same request sequence, for any shard
//     count, provided distinct warm tags stay within
//     EngineOptions::warm_start_capacity (per-shard warm stores evict
//     independently beyond that, the same caveat ServingRuntime documents
//     for cross-tag eviction order).
//   * Partitioned responses agree with the single-engine reference within
//     solver tolerance, and merged score vectors sum to 1.
//   * transition_cache_hit diagnostics are normalized to the sequential
//     single-engine reference: the router replays a persistent virtual
//     LRU (same capacity as one engine's transition cache) over the
//     request stream in submission order and overwrites each response's
//     flag with the replayed value, so diagnostics do not depend on how
//     traffic happened to spread across shards. Failed requests never
//     advance the replay — mirroring the engine, which validates before
//     touching its cache. warm_start_hit needs no normalization — tag
//     pinning makes it deterministic already.
//
// Concurrency: Rank / RankBatch / RankAsync are thread-safe. A RankBatch
// runs each shard's sub-sequence in submission order on a worker pool
// (one chain per shard); concurrent batches are safe but interleave on
// the shard engines, so cross-batch warm ordering is unspecified — the
// same contract ServingRuntime has.
//
//   CsrGraph graph = ...;
//   EngineRouter router(std::move(graph), {.num_shards = 4});
//   auto responses = router.RankBatch(requests);   // fans across shards
//   auto future = router.RankAsync(request);       // overlap with IO

#ifndef D2PR_SERVE_ENGINE_ROUTER_H_
#define D2PR_SERVE_ENGINE_ROUTER_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include <atomic>

#include "api/engine.h"
#include "api/rank_request.h"
#include "common/result.h"
#include "core/block_solver.h"
#include "core/transition_slices.h"
#include "graph/csr_graph.h"
#include "graph/partition.h"
#include "serve/score_cache.h"
#include "serve/thread_pool.h"

namespace d2pr {

/// \brief How the router spreads requests across shards.
enum class RoutingPolicy {
  /// Every shard answers any request; untagged requests spread by
  /// ReplicaStrategy, warm-tagged requests pin by tag hash.
  kReplicated,
  /// Personalized requests route (and split) by seed-node ownership under
  /// the ShardMap; everything else behaves as in kReplicated.
  kPartitionedTeleport,
  /// The graph's edges are partitioned into per-shard subgraphs
  /// (graph/partition.h) and every query runs as a block iteration with
  /// cross-shard mass exchange (core/block_solver.h). See the file
  /// comment for the parity contract and mode restrictions.
  kPartitionedSubgraph,
};

/// \brief Untagged-request spreading strategy in replicated routing.
enum class ReplicaStrategy {
  /// Deterministic rotation over shards (default; reproducible routing).
  kRoundRobin,
  /// Snapshot of each shard's requests_inflight gauge plus the
  /// assignments already planned, lowest shard index on ties.
  /// Deterministic from an idle router, adaptive under live traffic.
  kLeastLoaded,
};

/// \brief Pluggable seed-node ownership for kPartitionedTeleport.
class ShardMap {
 public:
  virtual ~ShardMap() = default;
  /// Which shard owns `node`. Must be a pure function of (node,
  /// num_shards) — the router calls it from multiple threads and relies
  /// on stable answers for cache affinity.
  virtual size_t OwnerOf(NodeId node, size_t num_shards) const = 0;
};

/// \brief Default ownership: node id modulo shard count.
class ModuloShardMap final : public ShardMap {
 public:
  size_t OwnerOf(NodeId node, size_t num_shards) const override {
    return static_cast<size_t>(static_cast<uint32_t>(node)) % num_shards;
  }
};

/// \brief EngineRouter construction knobs.
struct RouterOptions {
  /// Shard engines to stand up (0 is clamped to 1).
  size_t num_shards = 2;
  RoutingPolicy policy = RoutingPolicy::kReplicated;
  ReplicaStrategy strategy = ReplicaStrategy::kRoundRobin;
  /// Seed ownership for kPartitionedTeleport; null = ModuloShardMap.
  std::shared_ptr<const ShardMap> shard_map;
  /// Node-ownership scheme for kPartitionedSubgraph (ignored by the
  /// other policies). kHash matches ModuloShardMap, so seed ownership
  /// and subgraph ownership coincide under the default ShardMap.
  PartitionScheme partition_scheme = PartitionScheme::kRange;
  /// How kPartitionedSubgraph constructs the per-shard transition slices
  /// its block solves stream (ignored by the other policies).
  /// kFromMatrix (default) resolves the shared whole-graph matrix
  /// exactly as before — cache, persistent store, and every counter
  /// unchanged — and slices it; kSubgraph builds slices shard-locally
  /// from the partition plus an O(|V|) broadcast metric vector, never
  /// materializing a whole-graph matrix (and therefore never touching
  /// the persistent store). Responses are bit-identical either way.
  SliceBuild partition_slice_build = SliceBuild::kFromMatrix;
  /// Options forwarded to every shard engine. The transition-cache
  /// capacity also sizes the router's virtual reference LRU (diagnostic
  /// normalization).
  EngineOptions engine_options;
  /// Shared response memo in front of routing; 0 (default) disables it so
  /// the router is parity-pure out of the box. Only full (merged)
  /// responses are ever inserted — per-shard partial responses never
  /// reach the cache. With the memo on, duplicate memoizable requests
  /// within one RankBatch also solve exactly once (in-batch dedup).
  size_t score_cache_capacity = 0;
  /// Response memo byte budget (see ScoreCacheOptions::capacity_bytes);
  /// 0 = no byte limit. Either nonzero budget enables the memo.
  size_t score_cache_capacity_bytes = 0;
  std::chrono::nanoseconds score_cache_ttl{0};
  /// Injectable time source for the score cache (tests).
  std::function<std::chrono::steady_clock::time_point()> clock;
  /// Worker threads for RankBatch / RankAsync; 0 = one per shard.
  size_t worker_threads = 0;
};

/// \brief N-shard engine fleet behind the single-engine query surface.
class EngineRouter {
 public:
  /// Shares ownership of an already-managed graph across all shards.
  explicit EngineRouter(std::shared_ptr<const CsrGraph> graph,
                        const RouterOptions& options = {});

  /// Takes ownership of `graph`.
  explicit EngineRouter(CsrGraph graph, const RouterOptions& options = {});

  /// Borrows `graph`; the caller keeps it alive for the router's
  /// lifetime (the pattern tools and tests use for stack graphs).
  static EngineRouter Borrowing(const CsrGraph& graph,
                                const RouterOptions& options = {});

  const CsrGraph& graph() const { return *graph_; }
  const RouterOptions& options() const { return options_; }
  size_t num_shards() const {
    return partition_ ? partition_->num_shards() : shards_.size();
  }
  /// Shard engines are exposed for telemetry (stats snapshots) and tests;
  /// routing through the router while mutating a shard directly voids the
  /// determinism contract. Invalid in partitioned-subgraph mode, which
  /// has no whole-graph engines — use partition() there.
  D2prEngine& shard(size_t index) {
    D2PR_CHECK(!shards_.empty())
        << "no shard engines in partitioned-subgraph mode";
    return *shards_[index];
  }
  const D2prEngine& shard(size_t index) const {
    D2PR_CHECK(!shards_.empty())
        << "no shard engines in partitioned-subgraph mode";
    return *shards_[index];
  }

  /// True when the router serves through an edge-partitioned block solve
  /// (RoutingPolicy::kPartitionedSubgraph).
  bool partitioned_subgraph() const { return partition_ != nullptr; }
  /// The edge partition; only valid in partitioned-subgraph mode.
  const GraphPartition& partition() const {
    D2PR_CHECK(partition_ != nullptr)
        << "partition() outside partitioned-subgraph mode";
    return *partition_;
  }
  /// Transition accounting of the partitioned-subgraph mode (the shared
  /// per-key matrices the block solves read). Zero in the other modes.
  int64_t partition_transition_builds() const {
    return partition_resolver_ ? partition_resolver_->builds() : 0;
  }
  int64_t partition_transition_cache_hits() const {
    return partition_resolver_ ? partition_resolver_->cache_lookup_hits() : 0;
  }
  int64_t partition_transition_cache_misses() const {
    return partition_resolver_ ? partition_resolver_->cache_lookup_misses()
                               : 0;
  }
  int64_t partition_transition_store_loads() const {
    return partition_resolver_ ? partition_resolver_->store_loads() : 0;
  }
  int64_t partition_transition_store_saves() const {
    return partition_resolver_ ? partition_resolver_->store_saves() : 0;
  }
  /// Slice constructions in the partitioned-subgraph mode (cache misses
  /// in the resolver's slice cache, under either SliceBuild path).
  int64_t partition_slice_builds() const {
    return partition_resolver_ ? partition_resolver_->slice_builds() : 0;
  }
  const ScoreCache& score_cache() const { return score_cache_; }
  size_t num_worker_threads() const { return pool_.num_threads(); }

  /// The shard a warm-start tag pins to (stable for the router's life).
  size_t ShardForTag(const std::string& tag) const;
  /// The shard owning `node` under the active ShardMap.
  size_t OwnerShardOf(NodeId node) const;

  /// \brief One query, routed (and, in partitioned mode, split/merged) on
  /// the caller's thread.
  Result<RankResponse> Rank(const RankRequest& request);

  /// \brief Executes `requests` across the shards and returns responses
  /// in request order.
  ///
  /// Each shard's sub-sequence runs in submission order on one worker, so
  /// per-shard state (warm trajectories, cache recency) evolves exactly
  /// as the routing plan dictates. On failure, returns the error of the
  /// lowest-index failing request — the same status the fail-fast
  /// sequential path reports; side effects of later requests are
  /// unspecified in that case.
  Result<std::vector<RankResponse>> RankBatch(
      std::span<const RankRequest> requests);

  /// \brief Enqueues one query and immediately returns its future.
  ///
  /// Routing order across concurrent async requests is whatever the pool
  /// runs; use RankBatch when reference-identical diagnostics matter.
  std::future<Result<RankResponse>> RankAsync(RankRequest request);

  /// \brief Enqueues one query; `done` runs on the worker that solved it,
  /// with the result (the completion-queue form — see the ServingRuntime
  /// overload for the contract `done` and the pre-solve `gate` honor).
  void RankAsync(RankRequest request,
                 std::function<void(Result<RankResponse>)> done,
                 std::function<Status()> gate = nullptr);

  /// The worker pool, exposed so an admission-control layer (net/server.h)
  /// can read queue_depth() to shed load before enqueueing, and so tests
  /// can park workers deterministically.
  ThreadPool& pool() { return pool_; }

 private:
  /// One engine execution planned for a request. A request routed whole
  /// is a single unit of weight 1; a seed-split request has one unit per
  /// owning shard, weighted by its share of the seed set.
  struct Unit {
    size_t request_index = 0;
    size_t shard = 0;
    size_t slot = 0;      ///< Index into the request's parts vector.
    double weight = 1.0;
    RankRequest request;
  };
  struct Part {
    double weight = 1.0;
    RankResponse response;
  };

  /// Routes one request into units. Caller holds route_mu_;
  /// `planned_load` accumulates this plan's per-shard assignments for
  /// kLeastLoaded.
  std::vector<Unit> RouteLocked(const RankRequest& request,
                                size_t request_index,
                                std::vector<size_t>& planned_load);

  /// Advances the virtual single-engine LRU by one request's transition
  /// key and returns the hit flag the sequential reference would report.
  /// Caller holds route_mu_.
  bool AdvanceReferenceLruLocked(const TransitionKey& key);

  /// Weighted, dangling-aware merge of per-shard partial responses into
  /// one global response (see the linearity note in the file comment).
  /// The merged score vector is L1-normalized to mass 1.
  RankResponse MergeParts(const RankRequest& request,
                          std::vector<Part> parts) const;

  /// Runs one request's units sequentially on the caller's thread.
  Result<RankResponse> ExecuteUnits(const RankRequest& request,
                                    std::vector<Unit> units);

  /// One query through the partitioned-subgraph path: validate (mirroring
  /// D2prEngine::Rank), resolve the shared transition, run the block
  /// solve. `allow_pool` fans the shard sweeps across the worker pool;
  /// RankAsync tasks pass false because they already occupy a worker and
  /// nested waits could exhaust a fixed-size pool.
  Result<RankResponse> RankPartitioned(const RankRequest& request,
                                       bool allow_pool);

  /// Per-shard transition slices for `key`, under the configured
  /// SliceBuild path. Delegates to the shared TransitionResolver
  /// (single-flight; concurrent requesters of one key wait rather than
  /// duplicating the work): kFromMatrix resolves the whole-graph matrix
  /// exactly as the whole-graph engines do — cache, store, write-through
  /// spill — then slices it; kSubgraph builds shard-locally and never
  /// materializes (or persists) a whole-graph matrix.
  Result<std::shared_ptr<const TransitionSlices>> PartitionSlices(
      const TransitionKey& key, bool* cache_hit, bool* store_hit);

  std::shared_ptr<const CsrGraph> graph_;
  RouterOptions options_;
  std::shared_ptr<const ShardMap> shard_map_;
  std::vector<std::unique_ptr<D2prEngine>> shards_;
  std::vector<NodeId> dangling_nodes_;  ///< For the merge rescale.
  ScoreCache score_cache_;

  /// Partitioned-subgraph state; null in the other modes. The partition
  /// and teleport vector are immutable after construction; the resolver
  /// is the same cache + store + single-flight-build class the
  /// whole-graph engines use, honoring EngineOptions cache_dir /
  /// persist_mode / persist_verify_checksums exactly as they do. Spills
  /// are always write-through (this mode has no lazy-flush surface).
  std::unique_ptr<const GraphPartition> partition_;
  std::vector<double> partition_uniform_teleport_;
  std::unique_ptr<TransitionResolver> partition_resolver_;

  /// Guards the routing state: the round-robin cursor and the virtual
  /// reference LRU. Held only for planning (key bookkeeping), never
  /// during a solve.
  std::mutex route_mu_;
  size_t round_robin_next_ = 0;
  std::list<TransitionKey> reference_lru_;  // front = most recently used

  ThreadPool pool_;  // last member: workers must die before state above
};

}  // namespace d2pr

#endif  // D2PR_SERVE_ENGINE_ROUTER_H_
