#include "core/teleport.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "linalg/vec_ops.h"

namespace d2pr {

std::vector<double> UniformTeleport(NodeId num_nodes) {
  return UniformVector(static_cast<size_t>(num_nodes));
}

Result<std::vector<double>> SeededTeleport(NodeId num_nodes,
                                           std::span<const NodeId> seeds) {
  std::vector<double> weights(seeds.size(), 1.0);
  return WeightedTeleport(num_nodes, seeds, weights);
}

Result<std::vector<double>> WeightedTeleport(
    NodeId num_nodes, std::span<const NodeId> seeds,
    std::span<const double> weights) {
  if (seeds.empty()) {
    return Status::InvalidArgument("teleport seed set must be non-empty");
  }
  if (seeds.size() != weights.size()) {
    return Status::InvalidArgument(
        StrCat("seed/weight size mismatch: ", seeds.size(), " vs ",
               weights.size()));
  }
  std::vector<double> teleport(static_cast<size_t>(num_nodes), 0.0);
  for (size_t i = 0; i < seeds.size(); ++i) {
    const NodeId s = seeds[i];
    if (s < 0 || s >= num_nodes) {
      return Status::InvalidArgument(StrCat("seed ", s, " out of range"));
    }
    if (!(weights[i] > 0.0)) {
      return Status::InvalidArgument(
          StrCat("seed weight must be positive, got ", weights[i]));
    }
    if (teleport[static_cast<size_t>(s)] != 0.0) {
      return Status::InvalidArgument(StrCat("duplicate seed ", s));
    }
    teleport[static_cast<size_t>(s)] = weights[i];
  }
  NormalizeL1(teleport);
  return teleport;
}

std::vector<double> DegreeProportionalTeleport(const CsrGraph& graph,
                                               double gamma) {
  const NodeId n = graph.num_nodes();
  std::vector<double> teleport(static_cast<size_t>(n), 0.0);
  double min_positive = std::numeric_limits<double>::max();
  for (NodeId v = 0; v < n; ++v) {
    const double degree = static_cast<double>(graph.OutDegree(v));
    if (degree > 0.0) {
      const double share = std::pow(degree, gamma);
      teleport[static_cast<size_t>(v)] = share;
      min_positive = std::min(min_positive, share);
    }
  }
  if (min_positive == std::numeric_limits<double>::max()) {
    // No node has positive degree: fall back to uniform.
    return UniformTeleport(n);
  }
  for (double& share : teleport) {
    if (share == 0.0) share = min_positive;
  }
  NormalizeL1(teleport);
  return teleport;
}

}  // namespace d2pr
