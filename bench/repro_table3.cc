// Table 3: data sets and data graphs — nodes, edges, average degree,
// standard deviation of node degrees, and the median standard deviation of
// neighbors' node degrees (the column the paper uses to explain the
// stability of the p < 0 regime).

#include <cstdio>

#include "common/string_util.h"
#include "eval/table_writer.h"
#include "graph/graph_stats.h"
#include "repro_common.h"

namespace d2pr {
namespace bench {
namespace {

int Run() {
  PrintHeader("Table 3: data sets and data graphs",
              "Table 3 (synthetic analogs at reduced scale; same columns)");
  const RegistryOptions options = BenchRegistryOptions();

  TextTable table({"data graph", "nodes", "edges", "avg degree",
                   "stddev degree", "median stddev of nbr degrees"});
  for (PaperGraphId id : AllPaperGraphIds()) {
    DataGraph data = LoadGraph(id, options);
    const GraphStats stats = ComputeGraphStats(data.unweighted);
    table.AddRow({data.name, FormatWithCommas(stats.num_nodes),
                  FormatWithCommas(stats.num_edges),
                  FormatDouble(stats.avg_degree, 2),
                  FormatDouble(stats.stddev_degree, 2),
                  FormatDouble(stats.median_neighbor_degree_stddev, 2)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Shape check (paper Table 3): graphs in the p < 0 group\n"
      "(article-article, artist-artist) carry high neighbor-degree spread\n"
      "(a dominant high-degree neighbor), while the p = 0 group\n"
      "(author-author, movie-movie) is comparatively homogeneous.\n\n");
  ArchiveCsv(table, "table3");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace d2pr

int main() { return d2pr::bench::Run(); }
