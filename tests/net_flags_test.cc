// Flag validation of the network CLIs (d2pr_server, d2pr_loadgen): every
// accepted and rejected combination, without spawning processes. A
// rejection here is exit code 2 in the binary.

#include "d2pr_net_flags.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace d2pr {
namespace {

Flags ParseOrDie(std::vector<const char*> args) {
  auto flags = Flags::Parse(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(flags.ok()) << flags.status().ToString();
  return std::move(flags).value();
}

Status Server(std::vector<const char*> args) {
  return ValidateServerFlags(ParseOrDie(std::move(args)));
}

Status LoadGen(std::vector<const char*> args) {
  return ValidateLoadGenFlags(ParseOrDie(std::move(args)));
}

// ---------------------------------------------------------------- server

TEST(NetFlagsTest, ServerDefaultsAreValid) {
  EXPECT_TRUE(Server({}).ok());
}

TEST(NetFlagsTest, ServerAcceptsFullSyntheticConfiguration) {
  EXPECT_TRUE(Server({"--port=8080", "--threads=8", "--shards=4",
                      "--route=least-loaded", "--max-queue=64",
                      "--coalesce=false", "--nodes=5000",
                      "--edges-per-node=4", "--gen-seed=7"})
                  .ok());
}

TEST(NetFlagsTest, ServerAcceptsGraphFileWithOrientationFlags) {
  EXPECT_TRUE(
      Server({"--graph=edges.txt", "--directed", "--weighted"}).ok());
}

TEST(NetFlagsTest, ServerAcceptsEveryRouteName) {
  for (const char* route :
       {"replicated", "least-loaded", "partitioned", "subgraph"}) {
    SCOPED_TRACE(route);
    EXPECT_TRUE(
        Server({"--shards=2", (std::string("--route=") + route).c_str()})
            .ok());
  }
}

TEST(NetFlagsTest, ServerRejectsUnknownFlagAndPositionals) {
  EXPECT_FALSE(Server({"--bogus=1"}).ok());
  EXPECT_FALSE(Server({"stray"}).ok());
}

TEST(NetFlagsTest, ServerRejectsBadPort) {
  EXPECT_FALSE(Server({"--port=70000"}).ok());
  EXPECT_FALSE(Server({"--port=-1"}).ok());
  EXPECT_FALSE(Server({"--port=abc"}).ok());
  EXPECT_TRUE(Server({"--port=0"}).ok());  // ephemeral is legal here
  EXPECT_TRUE(Server({"--port=65535"}).ok());
}

TEST(NetFlagsTest, ServerRejectsOutOfRangeNumerics) {
  EXPECT_FALSE(Server({"--threads=0"}).ok());
  EXPECT_FALSE(Server({"--shards=0"}).ok());
  EXPECT_FALSE(Server({"--max-queue=0"}).ok());
  EXPECT_FALSE(Server({"--nodes=1"}).ok());
  EXPECT_FALSE(Server({"--edges-per-node=0"}).ok());
  EXPECT_FALSE(Server({"--threads=two"}).ok());
  EXPECT_FALSE(Server({"--coalesce=maybe"}).ok());
}

TEST(NetFlagsTest, ServerRejectsRouteCombinations) {
  EXPECT_FALSE(Server({"--route=diagonal", "--shards=2"}).ok());
  // --route without a fleet to route over.
  EXPECT_FALSE(Server({"--route=replicated"}).ok());
  EXPECT_FALSE(Server({"--route=subgraph", "--shards=1"}).ok());
}

TEST(NetFlagsTest, ServerRejectsGraphSourceConflicts) {
  EXPECT_FALSE(Server({"--graph="}).ok());
  EXPECT_FALSE(Server({"--graph=edges.txt", "--nodes=100"}).ok());
  EXPECT_FALSE(Server({"--graph=edges.txt", "--edges-per-node=2"}).ok());
  EXPECT_FALSE(Server({"--graph=edges.txt", "--gen-seed=1"}).ok());
  // Orientation flags describe a file; meaningless for the generator.
  EXPECT_FALSE(Server({"--directed"}).ok());
  EXPECT_FALSE(Server({"--weighted", "--nodes=100"}).ok());
}

// --------------------------------------------------------------- loadgen

TEST(NetFlagsTest, LoadGenRequiresPort) {
  EXPECT_FALSE(LoadGen({}).ok());
  EXPECT_FALSE(LoadGen({"--connections=2"}).ok());
  EXPECT_TRUE(LoadGen({"--port=9000"}).ok());
}

TEST(NetFlagsTest, LoadGenAcceptsFullConfiguration) {
  EXPECT_TRUE(LoadGen({"--port=9000", "--host=127.0.0.1",
                       "--connections=8", "--requests=500", "--zipf-s=0.9",
                       "--zipf-n=100000", "--global-fraction=0.1",
                       "--deadline-ms=250", "--seed=3", "--p=1.5",
                       "--alpha=0.9", "--method=forward-push"})
                  .ok());
}

TEST(NetFlagsTest, LoadGenRejectsUnknownFlagAndPositionals) {
  EXPECT_FALSE(LoadGen({"--port=9000", "--zipf=1.1"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "run"}).ok());
}

TEST(NetFlagsTest, LoadGenRejectsBadPort) {
  // Unlike the server, the loadgen cannot aim at port 0.
  EXPECT_FALSE(LoadGen({"--port=0"}).ok());
  EXPECT_FALSE(LoadGen({"--port=70000"}).ok());
  EXPECT_FALSE(LoadGen({"--port=-5"}).ok());
  EXPECT_FALSE(LoadGen({"--port=localhost"}).ok());
}

TEST(NetFlagsTest, LoadGenRejectsZeroDeadline) {
  // deadline 0 means "no deadline" on the wire; as an explicit flag it
  // would silently disable what the user asked for, so it is an error.
  EXPECT_FALSE(LoadGen({"--port=9000", "--deadline-ms=0"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--deadline-ms=-1"}).ok());
  EXPECT_TRUE(LoadGen({"--port=9000", "--deadline-ms=1"}).ok());
}

TEST(NetFlagsTest, LoadGenRejectsZipfOutOfRange) {
  EXPECT_FALSE(LoadGen({"--port=9000", "--zipf-s=0"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--zipf-s=-1"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--zipf-s=8.5"}).ok());
  EXPECT_TRUE(LoadGen({"--port=9000", "--zipf-s=8"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--zipf-n=-1"}).ok());
}

TEST(NetFlagsTest, LoadGenRejectsOutOfRangeNumerics) {
  EXPECT_FALSE(LoadGen({"--port=9000", "--connections=0"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--requests=0"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--global-fraction=1.5"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--global-fraction=-0.1"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--alpha=1.0"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--alpha=-0.2"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--requests=many"}).ok());
}

TEST(NetFlagsTopKTest, LoadGenAcceptsPositiveRejectsNonPositive) {
  EXPECT_TRUE(LoadGen({"--port=9000", "--top-k=10"}).ok());
  EXPECT_TRUE(LoadGen({"--port=9000", "--top-k=1",
                       "--method=forward-push"})
                  .ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--top-k=0"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--top-k=-3"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--top-k=many"}).ok());
  // The server has no such flag: it serves whatever the requests ask.
  EXPECT_FALSE(Server({"--top-k=10"}).ok());
}

TEST(NetFlagsTest, LoadGenRejectsUnknownMethod) {
  EXPECT_FALSE(LoadGen({"--port=9000", "--method=jacobi"}).ok());
  for (const char* method : {"power", "gauss-seidel", "forward-push"}) {
    SCOPED_TRACE(method);
    EXPECT_TRUE(
        LoadGen({"--port=9000",
                 (std::string("--method=") + method).c_str()})
            .ok());
  }
}

// ------------------------------------------------------------ shard role

Status Cluster(std::vector<const char*> args) {
  return ValidateClusterFlags(ParseOrDie(std::move(args)));
}

TEST(NetFlagsDistTest, ShardRoleAcceptsFullConfiguration) {
  EXPECT_TRUE(Server({"--shard-role", "--shard-id=1", "--shard-count=4",
                      "--scheme=hash", "--p=0.75", "--beta=0.5",
                      "--port=9100", "--nodes=5000"})
                  .ok());
  EXPECT_TRUE(Server({"--shard-role"}).ok());  // defaults: shard 0 of 1
}

TEST(NetFlagsDistTest, ShardRoleRejectsIdOutsideCount) {
  EXPECT_FALSE(Server({"--shard-role", "--shard-id=2", "--shard-count=2"})
                   .ok());
  EXPECT_FALSE(Server({"--shard-role", "--shard-id=-1"}).ok());
  EXPECT_FALSE(Server({"--shard-role", "--shard-count=0"}).ok());
  EXPECT_TRUE(Server({"--shard-role", "--shard-id=1", "--shard-count=2"})
                  .ok());
}

TEST(NetFlagsDistTest, ShardRoleRejectsServingPolicyFlags) {
  // A shard process is not the front door: the serving knobs have
  // nothing to configure and silently ignoring them would mislead.
  EXPECT_FALSE(Server({"--shard-role", "--shards=2"}).ok());
  EXPECT_FALSE(Server({"--shard-role", "--route=replicated"}).ok());
  EXPECT_FALSE(Server({"--shard-role", "--max-queue=10"}).ok());
  EXPECT_FALSE(Server({"--shard-role", "--coalesce=true"}).ok());
  EXPECT_FALSE(Server({"--shard-role", "--threads=4"}).ok());
}

TEST(NetFlagsDistTest, ShardFlagsRequireShardRole) {
  EXPECT_FALSE(Server({"--shard-id=1"}).ok());
  EXPECT_FALSE(Server({"--shard-count=2"}).ok());
  EXPECT_FALSE(Server({"--scheme=hash"}).ok());
  EXPECT_FALSE(Server({"--p=0.5"}).ok());
  EXPECT_FALSE(Server({"--beta=0.1"}).ok());
}

TEST(NetFlagsDistTest, ShardRoleRejectsBadSchemeAndTransition) {
  EXPECT_FALSE(Server({"--shard-role", "--scheme=diagonal"}).ok());
  EXPECT_FALSE(Server({"--shard-role", "--beta=1.5"}).ok());
  EXPECT_FALSE(Server({"--shard-role", "--beta=-0.1"}).ok());
  EXPECT_TRUE(Server({"--shard-role", "--scheme=range", "--beta=1"}).ok());
}

// --------------------------------------------------------------- cluster

TEST(NetFlagsDistTest, ClusterRequiresShardPorts) {
  EXPECT_FALSE(Cluster({}).ok());
  EXPECT_FALSE(Cluster({"--method=power"}).ok());
  EXPECT_TRUE(Cluster({"--shard-ports=9100,9101"}).ok());
  EXPECT_TRUE(Cluster({"--shard-ports=9100"}).ok());
}

TEST(NetFlagsDistTest, ClusterAcceptsFullConfiguration) {
  EXPECT_TRUE(Cluster({"--shard-ports=9100,9101,9102,9103",
                       "--host=127.0.0.1", "--scheme=hash",
                       "--method=gauss-seidel", "--dangling=self-loop",
                       "--p=0.75", "--beta=0.25", "--alpha=0.9",
                       "--tolerance=1e-9", "--max-iterations=500",
                       "--deadline-ms=2000", "--retries=5",
                       "--compare=false", "--nodes=5000",
                       "--edges-per-node=4", "--gen-seed=7"})
                  .ok());
}

TEST(NetFlagsDistTest, ClusterRejectsUnknownFlagAndPositionals) {
  EXPECT_FALSE(Cluster({"--shard-ports=9100", "--bogus=1"}).ok());
  EXPECT_FALSE(Cluster({"--shard-ports=9100", "stray"}).ok());
  // Front-door serving flags mean nothing to the cluster launcher.
  EXPECT_FALSE(Cluster({"--shard-ports=9100", "--shards=2"}).ok());
  EXPECT_FALSE(Cluster({"--shard-ports=9100", "--port=9000"}).ok());
}

TEST(NetFlagsDistTest, ClusterRejectsBadSolverKnobs) {
  EXPECT_FALSE(Cluster({"--shard-ports=9100", "--alpha=1.0"}).ok());
  EXPECT_FALSE(Cluster({"--shard-ports=9100", "--alpha=-0.1"}).ok());
  EXPECT_FALSE(Cluster({"--shard-ports=9100", "--tolerance=0"}).ok());
  EXPECT_FALSE(Cluster({"--shard-ports=9100", "--max-iterations=0"}).ok());
  EXPECT_FALSE(Cluster({"--shard-ports=9100", "--retries=-1"}).ok());
  EXPECT_FALSE(Cluster({"--shard-ports=9100", "--compare=maybe"}).ok());
  EXPECT_FALSE(Cluster({"--shard-ports=9100", "--method=jacobi"}).ok());
  EXPECT_FALSE(Cluster({"--shard-ports=9100", "--dangling=ignore"}).ok());
  EXPECT_FALSE(Cluster({"--shard-ports=9100", "--scheme=diagonal"}).ok());
}

TEST(NetFlagsDistTest, ClusterRejectsRenormalizeUnderGaussSeidel) {
  // The same contract ValidateBlockGaussSeidelPolicy enforces in the
  // solver, surfaced at flag time so the operator hears it before the
  // fleet spins up.
  EXPECT_FALSE(Cluster({"--shard-ports=9100", "--method=gauss-seidel",
                        "--dangling=renormalize"})
                   .ok());
  EXPECT_TRUE(Cluster({"--shard-ports=9100", "--method=power",
                       "--dangling=renormalize"})
                  .ok());
  EXPECT_TRUE(Cluster({"--shard-ports=9100", "--method=gauss-seidel",
                       "--dangling=teleport"})
                  .ok());
}

TEST(NetFlagsDistTest, ClusterFollowsServerGraphRules) {
  EXPECT_TRUE(
      Cluster({"--shard-ports=9100", "--graph=edges.txt", "--directed"})
          .ok());
  EXPECT_FALSE(
      Cluster({"--shard-ports=9100", "--graph=edges.txt", "--nodes=100"})
          .ok());
  EXPECT_FALSE(Cluster({"--shard-ports=9100", "--directed"}).ok());
  EXPECT_FALSE(Cluster({"--shard-ports=9100", "--nodes=1"}).ok());
}

// ------------------------------------------------------ pre-cut shards

TEST(NetFlagsDistTest, ShardFileAcceptsMinimalConfiguration) {
  EXPECT_TRUE(
      Server({"--shard-role", "--shard-file=/cuts/s0.d2psc"}).ok());
  EXPECT_TRUE(Server({"--shard-role", "--shard-file=/cuts/s0.d2psc",
                      "--port=9100", "--p=0.75", "--beta=0.5"})
                  .ok());
}

TEST(NetFlagsDistTest, ShardFileRequiresShardRole) {
  EXPECT_FALSE(Server({"--shard-file=/cuts/s0.d2psc"}).ok());
}

TEST(NetFlagsDistTest, ShardFileRejectsEmptyPath) {
  EXPECT_FALSE(Server({"--shard-role", "--shard-file="}).ok());
}

TEST(NetFlagsDistTest, ShardFileExcludesTopologyAndGraphFlags) {
  // The cut file's metadata fixes the shard topology AND the graph;
  // contradicting flags are rejected, not silently ignored.
  const std::vector<const char*> conflicts[] = {
      {"--shard-role", "--shard-file=/c/s0.d2psc", "--shard-id=0"},
      {"--shard-role", "--shard-file=/c/s0.d2psc", "--shard-count=2"},
      {"--shard-role", "--shard-file=/c/s0.d2psc", "--scheme=range"},
      {"--shard-role", "--shard-file=/c/s0.d2psc", "--graph=edges.txt"},
      {"--shard-role", "--shard-file=/c/s0.d2psc", "--directed"},
      {"--shard-role", "--shard-file=/c/s0.d2psc", "--weighted"},
      {"--shard-role", "--shard-file=/c/s0.d2psc", "--nodes=100"},
      {"--shard-role", "--shard-file=/c/s0.d2psc", "--edges-per-node=4"},
      {"--shard-role", "--shard-file=/c/s0.d2psc", "--gen-seed=7"},
  };
  for (const auto& args : conflicts) {
    const Status status = Server(args);
    EXPECT_FALSE(status.ok()) << args[2];
    EXPECT_NE(status.message().find("does not apply to --shard-file"),
              std::string::npos)
        << status.ToString();
  }
}

TEST(NetFlagsDistTest, ClusterAcceptsCutDirAndRejectsEmptyPath) {
  EXPECT_TRUE(
      Cluster({"--shard-ports=9100,9101", "--cut-dir=/cuts"}).ok());
  EXPECT_FALSE(Cluster({"--shard-ports=9100", "--cut-dir="}).ok());
}

// --------------------------------------------------------- partition cut

Status PartitionCut(std::vector<const char*> args) {
  return ValidatePartitionCutFlags(ParseOrDie(std::move(args)));
}

TEST(NetFlagsDistTest, PartitionCutRequiresOutDir) {
  EXPECT_FALSE(PartitionCut({}).ok());
  EXPECT_FALSE(PartitionCut({"--shards=2"}).ok());
  EXPECT_TRUE(PartitionCut({"--out-dir=/cuts"}).ok());
}

TEST(NetFlagsDistTest, PartitionCutAcceptsFullConfiguration) {
  EXPECT_TRUE(PartitionCut({"--out-dir=/cuts", "--shards=8",
                            "--scheme=hash", "--nodes=5000",
                            "--edges-per-node=4", "--gen-seed=7"})
                  .ok());
  EXPECT_TRUE(PartitionCut({"--out-dir=/cuts", "--graph=edges.txt",
                            "--directed", "--weighted"})
                  .ok());
}

TEST(NetFlagsDistTest, PartitionCutRejectsBadValues) {
  EXPECT_FALSE(PartitionCut({"--out-dir=/cuts", "--shards=0"}).ok());
  EXPECT_FALSE(PartitionCut({"--out-dir=/cuts", "--shards=-1"}).ok());
  EXPECT_FALSE(PartitionCut({"--out-dir=/cuts", "--scheme=diagonal"}).ok());
  EXPECT_FALSE(PartitionCut({"--out-dir=/cuts", "--graph=e.txt",
                             "--nodes=100"})
                   .ok());
  EXPECT_FALSE(PartitionCut({"--out-dir=/cuts", "--bogus=1"}).ok());
  EXPECT_FALSE(PartitionCut({"--out-dir="}).ok());
}

}  // namespace
}  // namespace d2pr
