// Co-occurrence projections of bipartite worlds.
//
// The paper's data graphs are one-mode projections: two actors are linked
// if they share a movie, two movies if they share a contributor, and so on.
// In the weighted variants the edge weight is the co-occurrence count
// ("# of common movies", "# of shared commenters", ...), matching the
// weight semantics of the paper's Figures 9-11.

#ifndef D2PR_DATAGEN_PROJECTION_H_
#define D2PR_DATAGEN_PROJECTION_H_

#include <vector>

#include "common/result.h"
#include "datagen/bipartite_world.h"
#include "graph/csr_graph.h"

namespace d2pr {

/// \brief Projection knobs.
struct ProjectionConfig {
  /// Store co-occurrence counts as weights; otherwise the graph is
  /// unweighted (the count is still used to decide edge existence).
  bool weighted = false;
  /// Anchors (groups) larger than this are skipped to bound the quadratic
  /// clique blow-up; 0 disables the cap.
  int32_t max_anchor_size = 0;
};

/// \brief Generic one-mode projection: for every anchor group, all pairs of
/// its `groups[a]` entries become edges; parallel pairs accumulate weight.
///
/// \param groups Each inner vector lists node ids (sorted or not) of one
///        anchor; ids must lie in [0, num_nodes).
Result<CsrGraph> ProjectGroups(const std::vector<std::vector<NodeId>>& groups,
                               NodeId num_nodes,
                               const ProjectionConfig& config = {});

/// \brief Member-member graph: members linked by shared venues
/// (actor-actor, author-author, commenter-commenter).
Result<CsrGraph> ProjectMembers(const BipartiteWorld& world,
                                const ProjectionConfig& config = {});

/// \brief Venue-venue graph: venues linked by shared members (movie-movie,
/// article-article, artist-artist, product-product).
Result<CsrGraph> ProjectVenues(const BipartiteWorld& world,
                               const ProjectionConfig& config = {});

/// \brief Re-weights an unweighted undirected graph with edge weight
/// 1 + |N(u) ∩ N(v)| (shared-neighbor count).
///
/// This is the paper's weighted listener-listener construction ("edge
/// weights denote the number of shared friends"); the +1 keeps weights
/// positive where two friends share no other friend.
Result<CsrGraph> CommonNeighborWeightedGraph(const CsrGraph& graph);

}  // namespace d2pr

#endif  // D2PR_DATAGEN_PROJECTION_H_
