#include "datagen/significance.h"

#include <algorithm>
#include <cmath>

namespace d2pr {

namespace {

// z-scores of log(1 + size) across venues; all-equal sizes give zeros.
std::vector<double> LogSizeZScores(const BipartiteWorld& world) {
  const size_t n = world.venue_members.size();
  std::vector<double> logs(n);
  for (size_t r = 0; r < n; ++r) {
    logs[r] = std::log1p(static_cast<double>(world.venue_members[r].size()));
  }
  double mean = 0.0;
  for (double v : logs) mean += v;
  mean /= static_cast<double>(n);
  double ss = 0.0;
  for (double v : logs) ss += (v - mean) * (v - mean);
  const double sd = std::sqrt(ss / static_cast<double>(n));
  if (sd == 0.0) return std::vector<double>(n, 0.0);
  for (double& v : logs) v = (v - mean) / sd;
  return logs;
}

}  // namespace

std::vector<double> AvgVenueQualitySignificance(const BipartiteWorld& world,
                                                double noise_sigma,
                                                Rng* rng) {
  const size_t n = world.member_venues.size();
  std::vector<double> significance(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& venues = world.member_venues[i];
    double value;
    if (venues.empty()) {
      value = world.member_quality[i];
    } else {
      double total = 0.0;
      for (NodeId r : venues) {
        total += world.venue_quality[static_cast<size_t>(r)];
      }
      value = total / static_cast<double>(venues.size());
    }
    significance[i] = value + rng->Normal(0.0, noise_sigma);
  }
  return significance;
}

std::vector<double> AvgVenueSignificance(
    const BipartiteWorld& world, const std::vector<double>& venue_scores) {
  D2PR_CHECK_EQ(venue_scores.size(), world.venue_members.size());
  const size_t n = world.member_venues.size();
  std::vector<double> significance(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const auto& venues = world.member_venues[i];
    if (venues.empty()) continue;
    double total = 0.0;
    for (NodeId r : venues) total += venue_scores[static_cast<size_t>(r)];
    significance[i] = total / static_cast<double>(venues.size());
  }
  return significance;
}

std::vector<double> VenueRatingSignificance(const BipartiteWorld& world,
                                            double size_slope,
                                            double noise_sigma, Rng* rng) {
  const std::vector<double> size_z = LogSizeZScores(world);
  const size_t n = world.venue_members.size();
  std::vector<double> significance(n);
  for (size_t r = 0; r < n; ++r) {
    const double raw = 1.0 + 4.0 * world.venue_quality[r] +
                       size_slope * size_z[r] +
                       rng->Normal(0.0, noise_sigma);
    significance[r] = std::clamp(raw, 1.0, 5.0);
  }
  return significance;
}

std::vector<double> SizeScaledCountSignificance(const BipartiteWorld& world,
                                                double quality_scale,
                                                double size_exponent,
                                                double noise_sigma,
                                                Rng* rng) {
  const size_t n = world.venue_members.size();
  std::vector<double> significance(n);
  for (size_t r = 0; r < n; ++r) {
    const double size = 1.0 + static_cast<double>(world.venue_members[r].size());
    significance[r] = std::exp(quality_scale * world.venue_quality[r]) *
                      std::pow(size, size_exponent) *
                      std::exp(rng->Normal(0.0, noise_sigma));
  }
  return significance;
}

std::vector<double> EffortDilutedTrustSignificance(const BipartiteWorld& world,
                                                   double dilution,
                                                   double budget_exponent,
                                                   double noise_sigma,
                                                   Rng* rng) {
  const size_t n = world.member_venues.size();
  std::vector<double> significance(n);
  for (size_t i = 0; i < n; ++i) {
    const double degree =
        1.0 + static_cast<double>(world.member_venues[i].size());
    const double effort =
        std::pow(world.member_budget[i], budget_exponent) / degree;
    significance[i] = world.member_quality[i] *
                      std::pow(effort, dilution) *
                      std::exp(rng->Normal(0.0, noise_sigma));
  }
  return significance;
}

}  // namespace d2pr
