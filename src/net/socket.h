// Thin RAII wrappers over blocking POSIX stream sockets — the entire OS
// surface of the network front door, so everything above this file
// (framing, server, client) is plain byte-vector logic.
//
// Scope is deliberately small: IPv4, blocking I/O, loopback-oriented
// defaults. The server's concurrency comes from one reader/writer thread
// pair per connection (net/server.h), not from non-blocking multiplexing;
// at the fleet sizes the bench drives (dozens of connections, thousands
// of requests each) thread-per-connection measures within noise of an
// event loop and keeps every code path synchronous and testable.
//
// Shutdown discipline: a blocking accept or recv is unblocked by
// shutdown(fd, SHUT_RDWR) from another thread, NOT by close — closing a
// descriptor another thread is blocked on is a use-after-free of the fd
// number. Socket::ShutdownBoth / ListenSocket::Shutdown exist for exactly
// that; the owning wrapper closes the descriptor at destruction.

#ifndef D2PR_NET_SOCKET_H_
#define D2PR_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace d2pr {

/// \brief One connected stream socket (client or accepted server side).
class Socket {
 public:
  /// Invalid socket; every operation on it fails with FailedPrecondition.
  Socket() = default;
  /// Adopts an already-connected descriptor (the accept path).
  explicit Socket(int fd) : fd_(fd) {}

  /// Blocking connect to `host`:`port` (numeric IPv4, e.g. "127.0.0.1").
  static Result<Socket> Connect(const std::string& host, uint16_t port);

  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all `len` bytes (looping over partial sends; SIGPIPE
  /// suppressed). IoError when the peer is gone.
  Status SendAll(const void* data, size_t len);

  /// Reads exactly `len` bytes. IoError on failure; when `clean_eof` is
  /// non-null it is set to true iff the peer closed before the FIRST
  /// byte — the one EOF that is a normal end of stream at a frame
  /// boundary rather than a truncation. When a receive timeout is set
  /// (SetRecvTimeout) and it expires, the status is DeadlineExceeded —
  /// distinguishable from a dead peer, so callers can retry an idempotent
  /// request instead of abandoning the connection.
  Status RecvExact(void* data, size_t len, bool* clean_eof = nullptr);

  /// Arms SO_RCVTIMEO: a RecvExact blocked longer than `ms` milliseconds
  /// returns DeadlineExceeded. 0 disables the timeout (blocking forever,
  /// the default). The distributed coordinator sets its per-sweep
  /// deadline this way.
  Status SetRecvTimeout(int64_t ms);

  /// Unblocks any thread inside SendAll/RecvExact on this socket.
  /// Idempotent; the descriptor stays owned until destruction.
  void ShutdownBoth();

  /// Unblocks readers only: subsequent/blocked RecvExact calls see EOF
  /// while queued writes still flush. The server's shutdown sequence uses
  /// this to stop new requests while in-flight responses drain.
  void ShutdownRead();

 private:
  int fd_ = -1;
};

/// \brief A listening IPv4 socket bound to loopback.
class ListenSocket {
 public:
  /// Invalid listener (the not-yet-started server state).
  ListenSocket() = default;

  /// Binds 127.0.0.1:`port` (0 = kernel-chosen ephemeral port, reported
  /// by port()) with SO_REUSEADDR and starts listening.
  static Result<ListenSocket> Listen(uint16_t port);

  ~ListenSocket();
  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  bool valid() const { return fd_ >= 0; }
  /// The bound port (the kernel's choice when Listen was given 0).
  uint16_t port() const { return port_; }

  /// Blocks for the next connection. IoError once Shutdown has been
  /// called (the accept-loop exit signal).
  Result<Socket> Accept();

  /// Unblocks a blocked Accept. Idempotent.
  void Shutdown();

 private:
  ListenSocket(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace d2pr

#endif  // D2PR_NET_SOCKET_H_
