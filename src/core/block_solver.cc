#include "core/block_solver.h"

#include <cmath>
#include <vector>

#include "common/string_util.h"
#include "linalg/vec_ops.h"

namespace d2pr {

namespace {

/// Runs fn(0) .. fn(count - 1): through `parallel_for` when provided,
/// sequentially inline otherwise.
void RunShards(const BlockParallelFor& parallel_for, size_t count,
               const std::function<void(size_t)>& fn) {
  if (parallel_for) {
    parallel_for(count, fn);
    return;
  }
  for (size_t i = 0; i < count; ++i) fn(i);
}

/// The single-graph solvers' shared validation plus the
/// partition/transition agreement check the block solvers add.
Status ValidateBlockInputs(const TransitionMatrix& transition,
                           const GraphPartition& partition,
                           std::span<const double> teleport,
                           const PagerankOptions& options) {
  D2PR_RETURN_NOT_OK(ValidatePagerankOptions(options));
  if (partition.num_nodes() != transition.num_nodes()) {
    return Status::InvalidArgument(
        StrCat("partition covers ", partition.num_nodes(),
               " nodes but transition matrix has ", transition.num_nodes()));
  }
  return ValidateTeleportVector(teleport, transition.num_nodes());
}

/// Sliced-overload validation: option/teleport checks plus the slice
/// shape contract (GraphPartition::ValidateSlices).
Status ValidateBlockSliceInputs(const TransitionSlices& slices,
                                const GraphPartition& partition,
                                std::span<const double> teleport,
                                const PagerankOptions& options) {
  D2PR_RETURN_NOT_OK(ValidatePagerankOptions(options));
  D2PR_RETURN_NOT_OK(partition.ValidateSlices(slices));
  return ValidateTeleportVector(teleport, slices.num_nodes);
}

}  // namespace

Status ValidateBlockGaussSeidelPolicy(DanglingPolicy dangling) {
  if (dangling == DanglingPolicy::kRenormalize) {
    // The renormalized Gauss-Seidel fixed point is sweep-order dependent
    // whenever dangling mass is dropped (see the header); a block sweep
    // cannot reproduce the single-graph order, so fail loudly instead of
    // serving a silently different solution.
    return Status::InvalidArgument(
        "block Gauss-Seidel does not support DanglingPolicy::kRenormalize "
        "(its fixed point depends on the sweep order); use kTeleport or "
        "power iteration");
  }
  return Status::OK();
}

Result<PagerankResult> SolvePagerankPartitioned(
    const TransitionMatrix& transition, const GraphPartition& partition,
    std::span<const double> teleport, const PagerankOptions& options,
    const BlockParallelFor& parallel_for) {
  D2PR_RETURN_NOT_OK(
      ValidateBlockInputs(transition, partition, teleport, options));
  const NodeId n = transition.num_nodes();

  PagerankResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  const std::vector<NodeId> dangling = transition.DanglingNodes();
  const auto probs = transition.probs();
  std::vector<double> current(teleport.begin(), teleport.end());
  NormalizeL1(current);  // mirrors the reference's defensive normalize
  std::vector<double> next(static_cast<size_t>(n), 0.0);

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    // Dangling mass of the previous iterate, folded over the ascending
    // dangling list exactly as the reference does. Known before the
    // sweeps start, so each shard can finish its owned slice end-to-end.
    double dangling_mass = 0.0;
    for (NodeId v : dangling) dangling_mass += current[static_cast<size_t>(v)];

    // One block sweep: every shard folds each owned destination's in-row
    // in ascending global source order — the accumulation order
    // TransitionMatrix::Multiply produces — then applies the dangling
    // policy and teleport blend element-wise. Shards write disjoint owned
    // slices of `next` and read only the frozen `current`, so the sweeps
    // compose in any order (or concurrently) without changing a bit.
    RunShards(parallel_for, partition.num_shards(), [&](size_t s) {
      const PartitionShard& shard = partition.shard(s);
      for (size_t k = 0; k < shard.owned.size(); ++k) {
        const NodeId dst = shard.owned[k];
        double value = 0.0;
        const EdgeIndex begin = shard.in_offsets[k];
        const EdgeIndex end = shard.in_offsets[k + 1];
        for (EdgeIndex idx = begin; idx < end; ++idx) {
          value += current[static_cast<size_t>(
                       shard.in_sources[static_cast<size_t>(idx)])] *
                   probs[static_cast<size_t>(
                       shard.in_arc_index[static_cast<size_t>(idx)])];
        }
        switch (options.dangling) {
          case DanglingPolicy::kTeleport:
            if (dangling_mass > 0.0) {
              value += dangling_mass * teleport[static_cast<size_t>(dst)];
            }
            break;
          case DanglingPolicy::kSelfLoop:
            if (transition.IsDangling(dst)) {
              value += current[static_cast<size_t>(dst)];
            }
            break;
          case DanglingPolicy::kRenormalize:
            break;
        }
        next[static_cast<size_t>(dst)] =
            options.alpha * value +
            (1.0 - options.alpha) * teleport[static_cast<size_t>(dst)];
      }
    });
    if (options.dangling == DanglingPolicy::kRenormalize) {
      NormalizeL1(next);
    }

    result.iterations = iter;
    result.residual = DiffL1(next, current);
    current.swap(next);
    if (result.residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.scores = std::move(current);
  return result;
}

Result<PagerankResult> SolvePagerankPartitioned(
    const TransitionSlices& slices, const GraphPartition& partition,
    std::span<const double> teleport, const PagerankOptions& options,
    const BlockParallelFor& parallel_for) {
  D2PR_RETURN_NOT_OK(
      ValidateBlockSliceInputs(slices, partition, teleport, options));
  const NodeId n = slices.num_nodes;

  PagerankResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  std::vector<double> current(teleport.begin(), teleport.end());
  NormalizeL1(current);  // mirrors the reference's defensive normalize
  std::vector<double> next(static_cast<size_t>(n), 0.0);

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    // Same ascending dangling fold as the matrix overload (the slices
    // carry the list so no TransitionMatrix is needed).
    double dangling_mass = 0.0;
    for (NodeId v : slices.dangling) {
      dangling_mass += current[static_cast<size_t>(v)];
    }

    // One block sweep, streaming form: the in-row fold is unchanged —
    // ascending global source order, bitwise the matrix overload's sum —
    // but the per-arc probability now comes off the shard's contiguous
    // slice in lockstep with in_sources, so the two hot arrays advance
    // sequentially instead of one of them gathering through the global
    // arc index.
    RunShards(parallel_for, partition.num_shards(), [&](size_t s) {
      const PartitionShard& shard = partition.shard(s);
      const double* slice = slices.in_probs[s].data();
      for (size_t k = 0; k < shard.owned.size(); ++k) {
        const NodeId dst = shard.owned[k];
        double value = 0.0;
        const EdgeIndex begin = shard.in_offsets[k];
        const EdgeIndex end = shard.in_offsets[k + 1];
        for (EdgeIndex idx = begin; idx < end; ++idx) {
          value += current[static_cast<size_t>(
                       shard.in_sources[static_cast<size_t>(idx)])] *
                   slice[static_cast<size_t>(idx)];
        }
        switch (options.dangling) {
          case DanglingPolicy::kTeleport:
            if (dangling_mass > 0.0) {
              value += dangling_mass * teleport[static_cast<size_t>(dst)];
            }
            break;
          case DanglingPolicy::kSelfLoop:
            if (slices.is_dangling[static_cast<size_t>(dst)]) {
              value += current[static_cast<size_t>(dst)];
            }
            break;
          case DanglingPolicy::kRenormalize:
            break;
        }
        next[static_cast<size_t>(dst)] =
            options.alpha * value +
            (1.0 - options.alpha) * teleport[static_cast<size_t>(dst)];
      }
    });
    if (options.dangling == DanglingPolicy::kRenormalize) {
      NormalizeL1(next);
    }

    result.iterations = iter;
    result.residual = DiffL1(next, current);
    current.swap(next);
    if (result.residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.scores = std::move(current);
  return result;
}

Result<PagerankResult> SolveGaussSeidelPartitioned(
    const TransitionMatrix& transition, const GraphPartition& partition,
    std::span<const double> teleport, const PagerankOptions& options,
    const BlockParallelFor& parallel_for) {
  D2PR_RETURN_NOT_OK(
      ValidateBlockInputs(transition, partition, teleport, options));
  D2PR_RETURN_NOT_OK(ValidateBlockGaussSeidelPolicy(options.dangling));
  const NodeId n = transition.num_nodes();

  PagerankResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  const auto probs = transition.probs();
  const std::vector<NodeId> dangling = transition.DanglingNodes();
  std::vector<double> x(teleport.begin(), teleport.end());
  std::vector<double> frozen(x);
  std::vector<double> previous(x);

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    // Lagged dangling mass, as in the single-graph Gauss-Seidel sweep.
    double dangling_mass = 0.0;
    for (NodeId v : dangling) dangling_mass += x[static_cast<size_t>(v)];

    // Exchange step: publish the whole iterate; each shard reads remote
    // slices from this frozen copy (block Jacobi across shards) while
    // sweeping its own slice Gauss-Seidel style (owned sources read the
    // in-place updated values).
    frozen = x;
    RunShards(parallel_for, partition.num_shards(), [&](size_t s) {
      const PartitionShard& shard = partition.shard(s);
      for (size_t k = 0; k < shard.owned.size(); ++k) {
        const NodeId dst = shard.owned[k];
        double incoming = 0.0;
        const EdgeIndex begin = shard.in_offsets[k];
        const EdgeIndex end = shard.in_offsets[k + 1];
        for (EdgeIndex idx = begin; idx < end; ++idx) {
          const NodeId src = shard.in_sources[static_cast<size_t>(idx)];
          // Interior sources read the live (in-sweep updated) iterate,
          // boundary sources the frozen exchange copy; the precomputed
          // flag keeps ownership resolution out of the inner loop.
          const double value = shard.in_interior[static_cast<size_t>(idx)]
                                   ? x[static_cast<size_t>(src)]
                                   : frozen[static_cast<size_t>(src)];
          incoming +=
              probs[static_cast<size_t>(
                  shard.in_arc_index[static_cast<size_t>(idx)])] *
              value;
        }
        double value = options.alpha * incoming +
                       (1.0 - options.alpha) *
                           teleport[static_cast<size_t>(dst)];
        switch (options.dangling) {
          case DanglingPolicy::kTeleport:
            value += options.alpha * dangling_mass *
                     teleport[static_cast<size_t>(dst)];
            break;
          case DanglingPolicy::kSelfLoop:
            if (transition.IsDangling(dst)) {
              value /= (1.0 - options.alpha);
            }
            break;
          case DanglingPolicy::kRenormalize:
            break;
        }
        x[static_cast<size_t>(dst)] = value;
      }
    });
    NormalizeL1(x);

    result.iterations = iter;
    result.residual = DiffL1(x, previous);
    previous = x;
    if (result.residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.scores = std::move(x);
  return result;
}

Result<PagerankResult> SolveGaussSeidelPartitioned(
    const TransitionSlices& slices, const GraphPartition& partition,
    std::span<const double> teleport, const PagerankOptions& options,
    const BlockParallelFor& parallel_for) {
  D2PR_RETURN_NOT_OK(
      ValidateBlockSliceInputs(slices, partition, teleport, options));
  D2PR_RETURN_NOT_OK(ValidateBlockGaussSeidelPolicy(options.dangling));
  const NodeId n = slices.num_nodes;

  PagerankResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  std::vector<double> x(teleport.begin(), teleport.end());
  std::vector<double> frozen(x);
  std::vector<double> previous(x);

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    // Lagged dangling mass, folded over the slices' ascending list.
    double dangling_mass = 0.0;
    for (NodeId v : slices.dangling) {
      dangling_mass += x[static_cast<size_t>(v)];
    }

    // Exchange + sweep exactly as the matrix overload; the probability
    // read streams off the shard's slice.
    frozen = x;
    RunShards(parallel_for, partition.num_shards(), [&](size_t s) {
      const PartitionShard& shard = partition.shard(s);
      const double* slice = slices.in_probs[s].data();
      for (size_t k = 0; k < shard.owned.size(); ++k) {
        const NodeId dst = shard.owned[k];
        double incoming = 0.0;
        const EdgeIndex begin = shard.in_offsets[k];
        const EdgeIndex end = shard.in_offsets[k + 1];
        for (EdgeIndex idx = begin; idx < end; ++idx) {
          const NodeId src = shard.in_sources[static_cast<size_t>(idx)];
          // Interior sources read the live (in-sweep updated) iterate,
          // boundary sources the frozen exchange copy.
          const double value = shard.in_interior[static_cast<size_t>(idx)]
                                   ? x[static_cast<size_t>(src)]
                                   : frozen[static_cast<size_t>(src)];
          incoming += slice[static_cast<size_t>(idx)] * value;
        }
        double value = options.alpha * incoming +
                       (1.0 - options.alpha) *
                           teleport[static_cast<size_t>(dst)];
        switch (options.dangling) {
          case DanglingPolicy::kTeleport:
            value += options.alpha * dangling_mass *
                     teleport[static_cast<size_t>(dst)];
            break;
          case DanglingPolicy::kSelfLoop:
            if (slices.is_dangling[static_cast<size_t>(dst)]) {
              value /= (1.0 - options.alpha);
            }
            break;
          case DanglingPolicy::kRenormalize:
            break;
        }
        x[static_cast<size_t>(dst)] = value;
      }
    });
    NormalizeL1(x);

    result.iterations = iter;
    result.residual = DiffL1(x, previous);
    previous = x;
    if (result.residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.scores = std::move(x);
  return result;
}

}  // namespace d2pr
