// d2pr_server: the network front door as a process.
//
// Stands up a graph (loaded from an edge list, or a seeded synthetic
// Barabási–Albert graph for benches and smoke tests), a serving backend
// (single-engine ServingRuntime, or an EngineRouter fleet under
// --shards/--route), and an RpcServer speaking the net/wire.h protocol on
// 127.0.0.1. Runs until SIGINT/SIGTERM, then drains and exits 0.
//
// The bound port is printed as "listening on 127.0.0.1:<port>" so
// scripts driving an ephemeral port (--port=0, the default) can scrape
// it.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <thread>

#include "api/engine.h"
#include "common/rng.h"
#include "d2pr_net_flags.h"
#include "datagen/classic_generators.h"
#include "dist/shard_server.h"
#include "dist/shard_worker.h"
#include "graph/graph_io.h"
#include "net/server.h"
#include "serve/engine_router.h"
#include "serve/serving_runtime.h"

namespace d2pr {
namespace {

constexpr char kUsage[] =
    "usage: d2pr_server [flags]\n"
    "  --port=N             TCP port on 127.0.0.1 (default 0 = ephemeral)\n"
    "  --threads=N          solver worker threads (default 4)\n"
    "  --shards=N           serve through an N-shard engine router\n"
    "  --route=NAME         routing policy, requires --shards >= 2:\n"
    "                       replicated (default), least-loaded,\n"
    "                       partitioned (seed ownership), or subgraph\n"
    "                       (edge-partitioned block solves)\n"
    "  --max-queue=N        admission bound: shed with Unavailable once\n"
    "                       this many solves are queued (default 256)\n"
    "  --coalesce=BOOL      join identical in-flight requests\n"
    "                       (default true)\n"
    "  --graph=EDGELIST     serve this graph (with --directed/--weighted)\n"
    "  --nodes=N            synthetic graph size (default 10000;\n"
    "                       excludes --graph)\n"
    "  --edges-per-node=N   synthetic attachment degree (default 8)\n"
    "  --gen-seed=N         synthetic generator seed (default 42)\n"
    "shard role (hosts one partition shard for d2pr_cluster):\n"
    "  --shard-role         serve one shard of the distributed block\n"
    "                       solve instead of the rank front door\n"
    "  --shard-file=PATH    host the shard in this pre-cut file\n"
    "                       (d2pr_partition_cut output) WITHOUT loading\n"
    "                       the whole graph; excludes the graph and\n"
    "                       topology flags (the cut fixes them)\n"
    "  --shard-id=N         which shard this process hosts (default 0)\n"
    "  --shard-count=N      total shards of the partition (default 1)\n"
    "  --scheme=NAME        partition scheme: range (default) or hash\n"
    "  --p=X                transition degree-decoupling exponent\n"
    "                       (default 0.5)\n"
    "  --beta=X             weighted-blend beta in [0, 1] (default 0)\n";

int UsageError(const char* message) {
  std::fprintf(stderr, "%s\n%s", message, kUsage);
  return 2;
}

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Run(const Flags& flags) {
  const Status valid = ValidateServerFlags(flags);
  if (!valid.ok()) return UsageError(valid.ToString().c_str());

  // Re-extractions succeed: ValidateServerFlags range-checked everything.
  const uint16_t port = static_cast<uint16_t>(*flags.GetInt("port", 0));
  const size_t threads = static_cast<size_t>(*flags.GetInt("threads", 4));
  const size_t shards = static_cast<size_t>(*flags.GetInt("shards", 1));
  const int64_t max_queue = *flags.GetInt("max-queue", 256);
  const bool coalesce = *flags.GetBool("coalesce", true);
  const std::string route = flags.GetString("route");
  const bool shard_role = *flags.GetBool("shard-role", false);
  const bool from_cut = shard_role && flags.Has("shard-file");

  Result<CsrGraph> graph = [&]() -> Result<CsrGraph> {
    // The pre-cut shard path is the one mode with NO whole graph in the
    // process — that absence is its point.
    if (from_cut) return CsrGraph();
    if (flags.Has("graph")) {
      return ReadEdgeListText(flags.GetString("graph"),
                              *flags.GetBool("directed", false)
                                  ? GraphKind::kDirected
                                  : GraphKind::kUndirected,
                              *flags.GetBool("weighted", false));
    }
    Rng rng(static_cast<uint64_t>(*flags.GetInt("gen-seed", 42)));
    return BarabasiAlbert(
        static_cast<NodeId>(*flags.GetInt("nodes", 10000)),
        static_cast<int32_t>(*flags.GetInt("edges-per-node", 8)), &rng);
  }();
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  if (!from_cut) {
    std::fprintf(stderr, "serving %d nodes, %lld arcs\n", graph->num_nodes(),
                 static_cast<long long>(graph->num_arcs()));
  }

  if (shard_role) {
    // Shard role: host one PartitionShard behind the v2 wire and wait
    // for a DistributedCoordinator (tools/d2pr_cluster.cc).
    TransitionConfig config;
    config.p = *flags.GetDouble("p", 0.5);
    config.beta = *flags.GetDouble("beta", 0.0);
    Result<std::unique_ptr<ShardWorker>> worker =
        [&]() -> Result<std::unique_ptr<ShardWorker>> {
      if (from_cut) {
        return ShardWorker::CreateFromCutFile(flags.GetString("shard-file"),
                                              config);
      }
      ShardWorkerOptions worker_options;
      worker_options.shard_id =
          static_cast<size_t>(*flags.GetInt("shard-id", 0));
      worker_options.num_shards =
          static_cast<size_t>(*flags.GetInt("shard-count", 1));
      worker_options.scheme = flags.GetString("scheme") == "hash"
                                  ? PartitionScheme::kHash
                                  : PartitionScheme::kRange;
      worker_options.config = config;
      return ShardWorker::Create(std::move(graph).value(), worker_options);
    }();
    if (!worker.ok()) {
      std::fprintf(stderr, "%s\n", worker.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "hosting shard %zu (%zu owned nodes, %lld resident graph "
                 "bytes%s)\n",
                 (*worker)->shard_id(), (*worker)->shard().num_owned(),
                 static_cast<long long>((*worker)->resident_graph_bytes()),
                 from_cut ? ", pre-cut" : "");

    ShardServerOptions shard_server_options;
    shard_server_options.port = port;
    ShardServer shard_server(**worker, shard_server_options);
    const Status started = shard_server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    std::printf("listening on 127.0.0.1:%u\n", shard_server.port());
    std::fflush(stdout);

    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    shard_server.Stop();
    const ShardServerStats& stats = shard_server.stats();
    std::fprintf(stderr,
                 "shard served %lld frames (%lld connections, %lld swept, "
                 "%lld handshake rejects, %lld protocol errors)\n",
                 static_cast<long long>(stats.frames_handled.load()),
                 static_cast<long long>(stats.connections_accepted.load()),
                 static_cast<long long>((*worker)->sweeps_executed()),
                 static_cast<long long>(stats.handshake_rejects.load()),
                 static_cast<long long>(stats.protocol_errors.load()));
    return 0;
  }

  // Either backend shape works behind the same RankBackend seam; the
  // locals live to the end of main, outliving the server.
  std::unique_ptr<D2prEngine> engine;
  std::unique_ptr<ServingRuntime> runtime;
  std::unique_ptr<EngineRouter> router;
  std::unique_ptr<RankBackend> backend;
  if (shards <= 1) {
    engine = std::make_unique<D2prEngine>(std::move(graph).value());
    ServingOptions serving_options;
    serving_options.num_threads = threads;
    runtime = std::make_unique<ServingRuntime>(
        std::shared_ptr<D2prEngine>(engine.get(), [](D2prEngine*) {}),
        serving_options);
    backend = MakeBackend(*runtime);
  } else {
    RouterOptions router_options;
    router_options.num_shards = shards;
    router_options.worker_threads = threads;
    if (route == "least-loaded") {
      router_options.strategy = ReplicaStrategy::kLeastLoaded;
    } else if (route == "partitioned") {
      router_options.policy = RoutingPolicy::kPartitionedTeleport;
    } else if (route == "subgraph") {
      router_options.policy = RoutingPolicy::kPartitionedSubgraph;
    }
    router = std::make_unique<EngineRouter>(std::move(graph).value(),
                                            router_options);
    backend = MakeBackend(*router);
  }

  ServerOptions server_options;
  server_options.port = port;
  server_options.max_queue_depth = max_queue;
  server_options.coalesce = coalesce;
  RpcServer server(*backend, server_options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  const ServerStats& stats = server.stats();
  std::fprintf(stderr,
               "served %lld requests (%lld responses, %lld shed, %lld "
               "coalesced, %lld protocol errors)\n",
               static_cast<long long>(stats.requests_received.load()),
               static_cast<long long>(stats.responses_sent.load()),
               static_cast<long long>(stats.shed_unavailable.load()),
               static_cast<long long>(stats.coalesce_joins.load()),
               static_cast<long long>(stats.protocol_errors.load()));
  return 0;
}

}  // namespace
}  // namespace d2pr

int main(int argc, char** argv) {
  auto flags = d2pr::Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    return d2pr::UsageError(flags.status().ToString().c_str());
  }
  return d2pr::Run(flags.value());
}
