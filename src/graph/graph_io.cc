#include "graph/graph_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "graph/graph_builder.h"

namespace d2pr {

namespace {

constexpr char kBinaryMagic[8] = {'D', '2', 'P', 'R', 'G', 'R', 'P', 'H'};
constexpr int32_t kBinaryVersion = 1;

}  // namespace

Status WriteEdgeListText(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError(StrCat("cannot open for write: ", path));
  out << "# d2pr edge list: " << graph.num_nodes() << " nodes, "
      << (graph.directed() ? "directed" : "undirected") << ", "
      << (graph.weighted() ? "weighted" : "unweighted") << "\n";
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    auto nbrs = graph.OutNeighbors(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      if (!graph.directed() && v < u) continue;  // emit each edge once
      out << u << ' ' << v;
      if (graph.weighted()) {
        out << ' ' << FormatGeneral(graph.OutWeights(u)[i], 17);
      }
      out << '\n';
    }
  }
  out.flush();
  if (!out) return Status::IoError(StrCat("write failed: ", path));
  return Status::OK();
}

Result<CsrGraph> ReadEdgeListText(const std::string& path, GraphKind kind,
                                  bool weighted, NodeId num_nodes) {
  std::ifstream in(path);
  if (!in) return Status::IoError(StrCat("cannot open for read: ", path));

  struct ParsedEdge {
    NodeId u, v;
    double w;
  };
  std::vector<ParsedEdge> edges;
  NodeId max_id = -1;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view view = StripWhitespace(line);
    if (view.empty() || view[0] == '#') continue;
    std::istringstream fields{std::string(view)};
    int64_t u64 = -1, v64 = -1;
    double w = 1.0;
    if (!(fields >> u64 >> v64)) {
      return Status::IoError(
          StrCat(path, ":", line_no, ": expected 'u v [w]', got '", line,
                 "'"));
    }
    if (weighted && !(fields >> w)) {
      return Status::IoError(
          StrCat(path, ":", line_no, ": missing weight on weighted graph"));
    }
    if (u64 < 0 || v64 < 0) {
      return Status::IoError(
          StrCat(path, ":", line_no, ": negative node id"));
    }
    const NodeId u = static_cast<NodeId>(u64);
    const NodeId v = static_cast<NodeId>(v64);
    max_id = std::max(max_id, std::max(u, v));
    edges.push_back({u, v, w});
  }
  if (num_nodes < 0) num_nodes = max_id + 1;

  GraphBuilder builder(num_nodes, kind, weighted);
  for (const ParsedEdge& e : edges) {
    D2PR_RETURN_NOT_OK(builder.AddEdge(e.u, e.v, e.w));
  }
  return builder.Build(DuplicatePolicy::kSum);
}

Status WriteBinary(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError(StrCat("cannot open for write: ", path));

  auto put = [&out](const void* data, size_t bytes) {
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(bytes));
  };
  put(kBinaryMagic, sizeof(kBinaryMagic));
  put(&kBinaryVersion, sizeof(kBinaryVersion));
  const int32_t kind = graph.directed() ? 1 : 0;
  const int32_t weighted = graph.weighted() ? 1 : 0;
  const int64_t n = graph.num_nodes();
  const int64_t m = graph.num_arcs();
  put(&kind, sizeof(kind));
  put(&weighted, sizeof(weighted));
  put(&n, sizeof(n));
  put(&m, sizeof(m));
  put(graph.offsets().data(), graph.offsets().size() * sizeof(EdgeIndex));
  put(graph.targets().data(), graph.targets().size() * sizeof(NodeId));
  if (graph.weighted()) {
    put(graph.weights().data(), graph.weights().size() * sizeof(double));
  }
  out.flush();
  if (!out) return Status::IoError(StrCat("write failed: ", path));
  return Status::OK();
}

Result<CsrGraph> ReadBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError(StrCat("cannot open for read: ", path));

  auto get = [&in](void* data, size_t bytes) -> bool {
    in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
    return static_cast<bool>(in);
  };
  char magic[8];
  int32_t version = 0, kind = 0, weighted = 0;
  int64_t n = 0, m = 0;
  if (!get(magic, sizeof(magic)) ||
      std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Status::IoError(StrCat("bad magic in ", path));
  }
  if (!get(&version, sizeof(version)) || version != kBinaryVersion) {
    return Status::IoError(StrCat("unsupported version in ", path));
  }
  if (!get(&kind, sizeof(kind)) || !get(&weighted, sizeof(weighted)) ||
      !get(&n, sizeof(n)) || !get(&m, sizeof(m))) {
    return Status::IoError(StrCat("truncated header in ", path));
  }
  if (n < 0 || m < 0) return Status::IoError("negative sizes");

  std::vector<EdgeIndex> offsets(static_cast<size_t>(n) + 1);
  std::vector<NodeId> targets(static_cast<size_t>(m));
  std::vector<double> weights;
  if (!get(offsets.data(), offsets.size() * sizeof(EdgeIndex)) ||
      !get(targets.data(), targets.size() * sizeof(NodeId))) {
    return Status::IoError(StrCat("truncated arrays in ", path));
  }
  if (weighted) {
    weights.resize(static_cast<size_t>(m));
    if (!get(weights.data(), weights.size() * sizeof(double))) {
      return Status::IoError(StrCat("truncated weights in ", path));
    }
  }
  // Validate CSR invariants before trusting the data.
  if (offsets.front() != 0 || offsets.back() != m) {
    return Status::IoError("corrupt offsets");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) return Status::IoError("offsets not monotone");
  }
  for (NodeId t : targets) {
    if (t < 0 || t >= n) return Status::IoError("target out of range");
  }

  GraphBuilder builder(static_cast<NodeId>(n),
                       kind ? GraphKind::kDirected : GraphKind::kUndirected,
                       weighted != 0);
  // Rebuild through the builder to re-establish sortedness invariants.
  for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
    for (EdgeIndex e = offsets[u]; e < offsets[u + 1]; ++e) {
      const NodeId v = targets[static_cast<size_t>(e)];
      if (kind == 0 && v < u) continue;  // undirected arcs are mirrored
      const double w =
          weighted ? weights[static_cast<size_t>(e)] : 1.0;
      D2PR_RETURN_NOT_OK(builder.AddEdge(u, v, w));
    }
  }
  return builder.Build(DuplicatePolicy::kKeepFirst);
}

}  // namespace d2pr
