// TopKSolver: bounded forward push with certified top-k set membership.
//
// Generalizes the forward local-push scheme of core/push_ppr.cc to answer
// the query products actually ask — "which k nodes rank highest?" —
// without finishing the full approximation. Three changes over plain push:
//
//   1. A generation-batched FIFO frontier (the push_ppr discipline): a
//      node re-enters at the back, so each push moves the accumulated
//      mass of a whole neighbor generation instead of slivers.
//   2. Degree-derived score bounds (topk/degree_bound.h). The push
//      invariant  ppr(t) = scores(t) + sum_u r(u) * ppr_u(t), combined
//      with ppr_u(t) <= (1-alpha)*[t == u] + alpha * ub_in(t), certifies
//
//        scores(t)                                   <= ppr(t) <=
//        scores(t) + (1-alpha)*r(t) + alpha*R*b(t)
//
//      where R is the total residual mass and b(t) widens ub_in(t) by the
//      re-injected seed mass seed(t) on graphs with dangling nodes.
//   3. Early termination: every `certify_interval` pushes the solver
//      recomputes the bounds and stops as soon as each of the current
//      top-k candidates' lower bounds clears every non-candidate's upper
//      bound — typically long before any residual reaches the epsilon
//      floor. Never-touched nodes are bounded in O(1) amortized through
//      the index's descending-by-bound order.
//
// The result reports, per entry, the certified lower/upper bound and a
// `certified` verdict, plus one aggregate `uncertainty_gap` (how far the
// best excluded node's upper bound overlaps the k-th candidate's lower
// bound; 0 when the set is fully certified) — so callers know exactly
// what is guaranteed and what is best-effort.

#ifndef D2PR_TOPK_TOPK_SOLVER_H_
#define D2PR_TOPK_TOPK_SOLVER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/transition.h"
#include "graph/csr_graph.h"
#include "topk/degree_bound.h"

namespace d2pr {

/// \brief Bounded-push top-k parameters.
struct TopKOptions {
  int k = 10;              ///< Entries to return (>= 1).
  double alpha = 0.85;     ///< Residual (walk-following) probability.
  /// Residual floor: a node whose residual is at or below this is never
  /// pushed. Certification usually terminates the solve much earlier;
  /// the floor is the fallback bound on work.
  double epsilon = 1e-7;
  /// Safety cap on push operations; any value <= 0 selects
  /// DefaultPushCap(|V|) (core/push_ppr.h). Hitting the cap returns the
  /// best-effort state with completed = false.
  int64_t max_pushes = -1;
  /// Dangling-node residual handling, as in PushOptions: true re-injects
  /// through the seed distribution (DanglingPolicy::kTeleport), false
  /// drops the mass.
  bool reinject_dangling = true;
  /// Certification slack: an entry is certified when its lower bound is
  /// within this of clearing every excluded upper bound. Kept well below
  /// the 1e-9 near-tie tolerance the parity suites grant, so float noise
  /// cannot flip a verdict the tests would reject.
  double tie_tolerance = 1e-12;
  /// Pushes between certification rounds; <= 0 selects an automatic
  /// interval (a round costs O(touched), so it amortizes against the
  /// pushes in between).
  int64_t certify_interval = 0;
};

/// \brief One candidate of a TopKResult.
struct TopKEntry {
  NodeId node = 0;
  double lower_bound = 0.0;  ///< Certified: exact score >= this.
  double upper_bound = 0.0;  ///< Certified: exact score <= this.
  /// True when this entry provably belongs to the exact top-k (its lower
  /// bound clears every non-candidate's upper bound).
  bool certified = false;
};

/// \brief Certified-bounds top-k output.
struct TopKResult {
  /// min(k, |V|) entries, ordered by lower bound descending (ties by
  /// ascending node id).
  std::vector<TopKEntry> entries;
  /// max(0, best excluded upper bound - k-th lower bound): how much of
  /// the candidate/non-candidate boundary is still unresolved. 0 when
  /// the whole set is certified.
  double uncertainty_gap = 0.0;
  int64_t pushes = 0;
  int64_t certification_rounds = 0;
  /// Residual mass left unpushed at termination (exactly the R of the
  /// final bound computation).
  double residual_mass = 0.0;
  bool certified = false;  ///< Every entry is certified.
  /// False only when max_pushes was exhausted before the frontier
  /// drained or certification succeeded.
  bool completed = false;
};

/// \brief Runs bounded forward push from a seed distribution until the
/// top-k set certifies, the frontier drains to the epsilon floor, or the
/// push cap is hit.
///
/// `seed` must be a probability distribution over the graph's nodes, and
/// `bounds` must have been built from this exact (graph, transition) pair
/// (the caller resolves both through one TransitionResolver key).
Result<TopKResult> SolveTopK(const CsrGraph& graph,
                             const TransitionMatrix& transition,
                             const DegreeBoundIndex& bounds,
                             std::span<const double> seed,
                             const TopKOptions& options = {});

}  // namespace d2pr

#endif  // D2PR_TOPK_TOPK_SOLVER_H_
