#include "d2pr_net_flags.h"

#include <set>
#include <string>

#include "common/string_util.h"

namespace d2pr {
namespace {

Status CheckKnown(const Flags& flags, const std::set<std::string>& known) {
  for (const std::string& name : flags.FlagNames()) {
    if (!known.contains(name)) {
      return Status::InvalidArgument(StrCat("unknown flag --", name));
    }
  }
  if (!flags.positional().empty()) {
    return Status::InvalidArgument(
        StrCat("unexpected argument '", flags.positional().front(), "'"));
  }
  return Status::OK();
}

/// --port: the server may bind 0 (ephemeral); the loadgen must aim at a
/// real port, so its minimum is 1.
Status CheckPort(const Flags& flags, int64_t minimum) {
  const auto port = flags.GetInt("port", minimum);
  if (!port.ok()) return port.status();
  if (*port < minimum || *port > 65535) {
    return Status::InvalidArgument(
        StrCat("--port must lie in [", minimum, ", 65535]"));
  }
  return Status::OK();
}

Status CheckDeadline(const Flags& flags) {
  const auto deadline = flags.GetInt("deadline-ms", 1);
  if (!deadline.ok()) return deadline.status();
  if (*deadline < 1) {
    return Status::InvalidArgument(
        "--deadline-ms must be >= 1 (omit the flag for no deadline; a "
        "zero deadline would expire every request unserved)");
  }
  return Status::OK();
}

}  // namespace

Status ValidateServerFlags(const Flags& flags) {
  static const std::set<std::string> kKnown = {
      "port",    "threads",        "shards", "route",    "max-queue",
      "coalesce", "graph",         "directed", "weighted",
      "nodes",   "edges-per-node", "gen-seed",
  };
  D2PR_RETURN_NOT_OK(CheckKnown(flags, kKnown));
  D2PR_RETURN_NOT_OK(CheckPort(flags, /*minimum=*/0));

  const auto threads = flags.GetInt("threads", 4);
  const auto shards = flags.GetInt("shards", 1);
  const auto max_queue = flags.GetInt("max-queue", 256);
  const auto nodes = flags.GetInt("nodes", 10000);
  const auto edges_per_node = flags.GetInt("edges-per-node", 8);
  const auto gen_seed = flags.GetInt("gen-seed", 42);
  const auto coalesce = flags.GetBool("coalesce", true);
  const auto directed = flags.GetBool("directed", false);
  const auto weighted = flags.GetBool("weighted", false);
  if (!threads.ok() || !shards.ok() || !max_queue.ok() || !nodes.ok() ||
      !edges_per_node.ok() || !gen_seed.ok()) {
    return Status::InvalidArgument("bad numeric flag");
  }
  if (!coalesce.ok() || !directed.ok() || !weighted.ok()) {
    return Status::InvalidArgument("bad boolean flag");
  }
  if (*threads < 1) return Status::InvalidArgument("--threads must be >= 1");
  if (*shards < 1) return Status::InvalidArgument("--shards must be >= 1");
  if (*max_queue < 1) {
    return Status::InvalidArgument(
        "--max-queue must be >= 1 (a zero bound would shed every request)");
  }
  if (*nodes < 2) return Status::InvalidArgument("--nodes must be >= 2");
  if (*edges_per_node < 1) {
    return Status::InvalidArgument("--edges-per-node must be >= 1");
  }

  const std::string route = flags.GetString("route");
  if (!route.empty() && route != "replicated" && route != "least-loaded" &&
      route != "partitioned" && route != "subgraph") {
    return Status::InvalidArgument(
        StrCat("unknown --route '", route,
               "' (expected replicated, least-loaded, partitioned, or "
               "subgraph)"));
  }
  if (flags.Has("route") && *shards < 2) {
    return Status::InvalidArgument("--route requires --shards >= 2");
  }
  if (flags.Has("graph")) {
    if (flags.GetString("graph").empty()) {
      return Status::InvalidArgument("--graph requires a file path");
    }
    if (flags.Has("nodes") || flags.Has("edges-per-node") ||
        flags.Has("gen-seed")) {
      return Status::InvalidArgument(
          "--graph excludes the synthetic-graph flags "
          "(--nodes/--edges-per-node/--gen-seed)");
    }
  } else if (flags.Has("directed") || flags.Has("weighted")) {
    return Status::InvalidArgument(
        "--directed/--weighted only apply to --graph files (the "
        "synthetic generator fixes its own graph kind)");
  }
  return Status::OK();
}

Status ValidateLoadGenFlags(const Flags& flags) {
  static const std::set<std::string> kKnown = {
      "port", "host",   "connections",     "requests", "zipf-s",
      "zipf-n", "global-fraction", "deadline-ms", "seed",
      "p",    "alpha",  "method", "top-k",
  };
  D2PR_RETURN_NOT_OK(CheckKnown(flags, kKnown));
  if (!flags.Has("port")) {
    return Status::InvalidArgument("--port=N is required (no server to find)");
  }
  D2PR_RETURN_NOT_OK(CheckPort(flags, /*minimum=*/1));
  if (flags.Has("deadline-ms")) D2PR_RETURN_NOT_OK(CheckDeadline(flags));

  const auto connections = flags.GetInt("connections", 4);
  const auto requests = flags.GetInt("requests", 100);
  const auto zipf_s = flags.GetDouble("zipf-s", 1.1);
  const auto zipf_n = flags.GetInt("zipf-n", 0);
  const auto global_fraction = flags.GetDouble("global-fraction", 0.0);
  const auto seed = flags.GetInt("seed", 1);
  const auto p = flags.GetDouble("p", 0.5);
  const auto alpha = flags.GetDouble("alpha", 0.85);
  const auto top_k = flags.GetInt("top-k", 0);
  if (!connections.ok() || !requests.ok() || !zipf_s.ok() || !zipf_n.ok() ||
      !global_fraction.ok() || !seed.ok() || !p.ok() || !alpha.ok() ||
      !top_k.ok()) {
    return Status::InvalidArgument("bad numeric flag");
  }
  if (flags.Has("top-k") && *top_k < 1) {
    return Status::InvalidArgument("--top-k must be >= 1");
  }
  if (*connections < 1) {
    return Status::InvalidArgument("--connections must be >= 1");
  }
  if (*requests < 1) return Status::InvalidArgument("--requests must be >= 1");
  if (*zipf_s <= 0.0 || *zipf_s > kMaxZipfExponent) {
    return Status::InvalidArgument(
        StrCat("--zipf-s must lie in (0, ", kMaxZipfExponent,
               "] (the Zipf exponent of the query-popularity mix)"));
  }
  if (*zipf_n < 0) return Status::InvalidArgument("--zipf-n must be >= 0");
  if (*global_fraction < 0.0 || *global_fraction > 1.0) {
    return Status::InvalidArgument("--global-fraction must lie in [0, 1]");
  }
  if (*alpha < 0.0 || *alpha >= 1.0) {
    return Status::InvalidArgument("--alpha must lie in [0, 1)");
  }
  const std::string method = flags.GetString("method");
  if (!method.empty() && method != "power" && method != "gauss-seidel" &&
      method != "forward-push") {
    return Status::InvalidArgument(StrCat("unknown --method '", method, "'"));
  }
  return Status::OK();
}

}  // namespace d2pr
