#include "datagen/dataset_registry.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "graph/graph_stats.h"
#include "graph/traversal.h"

namespace d2pr {
namespace {

RegistryOptions TestOptions() {
  RegistryOptions options;
  options.scale = 0.25;  // keep registry tests fast
  return options;
}

TEST(RegistryTest, AllGraphsGenerate) {
  for (PaperGraphId id : AllPaperGraphIds()) {
    auto graph = MakePaperGraph(id, TestOptions());
    ASSERT_TRUE(graph.ok())
        << PaperGraphName(id) << ": " << graph.status().ToString();
    EXPECT_GT(graph->unweighted.num_nodes(), 50)
        << PaperGraphName(id);
    EXPECT_GT(graph->unweighted.num_edges(), 100) << PaperGraphName(id);
    EXPECT_EQ(graph->significance.size(),
              static_cast<size_t>(graph->unweighted.num_nodes()));
    EXPECT_EQ(graph->name, PaperGraphName(id));
    EXPECT_EQ(graph->expected_group, ExpectedGroup(id));
    EXPECT_FALSE(graph->weight_semantics.empty());
  }
}

TEST(RegistryTest, WeightedAndUnweightedShareTopology) {
  auto graph =
      MakePaperGraph(PaperGraphId::kImdbActorActor, TestOptions());
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph->weighted.weighted());
  EXPECT_FALSE(graph->unweighted.weighted());
  ASSERT_EQ(graph->weighted.num_nodes(), graph->unweighted.num_nodes());
  ASSERT_EQ(graph->weighted.num_arcs(), graph->unweighted.num_arcs());
  for (NodeId v = 0; v < graph->weighted.num_nodes(); ++v) {
    auto wn = graph->weighted.OutNeighbors(v);
    auto un = graph->unweighted.OutNeighbors(v);
    ASSERT_EQ(wn.size(), un.size());
    for (size_t i = 0; i < wn.size(); ++i) EXPECT_EQ(wn[i], un[i]);
  }
}

TEST(RegistryTest, GraphsAreConnected) {
  // FinalizeDataGraph restricts to the largest component.
  for (PaperGraphId id : AllPaperGraphIds()) {
    auto graph = MakePaperGraph(id, TestOptions());
    ASSERT_TRUE(graph.ok());
    Components comps = ConnectedComponents(graph->unweighted);
    EXPECT_EQ(comps.count, 1) << PaperGraphName(id);
    GraphStats stats = ComputeGraphStats(graph->unweighted);
    EXPECT_EQ(stats.num_dangling, 0) << PaperGraphName(id);
  }
}

TEST(RegistryTest, DeterministicInSeed) {
  auto a = MakePaperGraph(PaperGraphId::kDblpAuthorAuthor, TestOptions());
  auto b = MakePaperGraph(PaperGraphId::kDblpAuthorAuthor, TestOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->unweighted == b->unweighted);
  EXPECT_EQ(a->significance, b->significance);
}

TEST(RegistryTest, SeedChangesOutput) {
  RegistryOptions other = TestOptions();
  other.seed = 777;
  auto a = MakePaperGraph(PaperGraphId::kDblpAuthorAuthor, TestOptions());
  auto b = MakePaperGraph(PaperGraphId::kDblpAuthorAuthor, other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->unweighted == b->unweighted);
}

TEST(RegistryTest, ScaleGrowsGraphs) {
  RegistryOptions small = TestOptions();
  RegistryOptions large = TestOptions();
  large.scale = 0.5;
  auto gs = MakePaperGraph(PaperGraphId::kLastfmListenerListener, small);
  auto gl = MakePaperGraph(PaperGraphId::kLastfmListenerListener, large);
  ASSERT_TRUE(gs.ok());
  ASSERT_TRUE(gl.ok());
  EXPECT_GT(gl->unweighted.num_nodes(), gs->unweighted.num_nodes());
}

TEST(RegistryTest, RejectsNonPositiveScale) {
  RegistryOptions bad;
  bad.scale = 0.0;
  EXPECT_FALSE(MakePaperGraph(PaperGraphId::kImdbMovieMovie, bad).ok());
}

TEST(RegistryTest, GroupsPartitionTheEightGraphs) {
  size_t total = 0;
  for (ApplicationGroup group :
       {ApplicationGroup::kPenalizationHelps,
        ApplicationGroup::kConventionalIdeal,
        ApplicationGroup::kBoostingHelps}) {
    const auto ids = GraphsInGroup(group);
    total += ids.size();
    for (PaperGraphId id : ids) EXPECT_EQ(ExpectedGroup(id), group);
  }
  EXPECT_EQ(total, AllPaperGraphIds().size());
}

TEST(RegistryTest, NamesAreUniqueAndStable) {
  std::set<std::string> names;
  for (PaperGraphId id : AllPaperGraphIds()) {
    names.insert(std::string(PaperGraphName(id)));
  }
  EXPECT_EQ(names.size(), 8u);
  EXPECT_EQ(PaperGraphName(PaperGraphId::kEpinionsProductProduct),
            "epinions_product_product");
}

TEST(RegistryTest, GroupLabelsMentionDirection) {
  EXPECT_NE(GroupLabel(ApplicationGroup::kPenalizationHelps).find("p > 0"),
            std::string_view::npos);
  EXPECT_NE(GroupLabel(ApplicationGroup::kConventionalIdeal).find("p = 0"),
            std::string_view::npos);
  EXPECT_NE(GroupLabel(ApplicationGroup::kBoostingHelps).find("p < 0"),
            std::string_view::npos);
}

TEST(ScaleFromEnvTest, ParsesAndClamps) {
  unsetenv("D2PR_SCALE");
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 1.0);
  setenv("D2PR_SCALE", "2.5", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 2.5);
  setenv("D2PR_SCALE", "0.001", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 0.1);
  setenv("D2PR_SCALE", "1e9", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 100.0);
  setenv("D2PR_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 1.0);
  unsetenv("D2PR_SCALE");
}

}  // namespace
}  // namespace d2pr
