#include "common/flags.h"

#include "common/string_util.h"

namespace d2pr {

Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      value = argv[++i];
    }
    if (name.empty()) {
      return Status::InvalidArgument(StrCat("malformed flag: ", arg));
    }
    flags.values_[name] = value;
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

Result<double> Flags::GetDouble(const std::string& name,
                                double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  double value = 0.0;
  if (!ParseDouble(it->second, &value)) {
    return Status::InvalidArgument(
        StrCat("--", name, " expects a number, got '", it->second, "'"));
  }
  return value;
}

Result<int64_t> Flags::GetInt(const std::string& name,
                              int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  int64_t value = 0;
  if (!ParseInt64(it->second, &value)) {
    return Status::InvalidArgument(
        StrCat("--", name, " expects an integer, got '", it->second, "'"));
  }
  return value;
}

Result<bool> Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& value = it->second;
  if (value.empty() || value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  return Status::InvalidArgument(
      StrCat("--", name, " expects a boolean, got '", value, "'"));
}

std::vector<std::string> Flags::FlagNames() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) names.push_back(name);
  return names;
}

}  // namespace d2pr
