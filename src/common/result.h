// Result<T>: value-or-Status, the library's exception-free return channel
// for fallible operations that produce a value.

#ifndef D2PR_COMMON_RESULT_H_
#define D2PR_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace d2pr {

/// \brief Holds either a value of type T or an error Status.
///
/// Accessing the value of an errored Result is a checked programming error
/// (process aborts with a diagnostic). Use ok() / status() to branch.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit for ergonomic returns).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error. `status.ok()` must be false.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    D2PR_CHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the status: OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Returns the held value; aborts if this Result holds an error.
  const T& value() const& {
    D2PR_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T& value() & {
    D2PR_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T&& value() && {
    D2PR_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value or `fallback` when errored.
  T value_or(T fallback) const& { return ok() ? value() : fallback; }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace d2pr

#define D2PR_INTERNAL_CONCAT_IMPL(a, b) a##b
#define D2PR_INTERNAL_CONCAT(a, b) D2PR_INTERNAL_CONCAT_IMPL(a, b)

#define D2PR_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

/// \brief Assigns the value of a Result expression to `lhs`, or returns its
/// error status from the enclosing function.
#define D2PR_ASSIGN_OR_RETURN(lhs, expr)                                  \
  D2PR_INTERNAL_ASSIGN_OR_RETURN(                                         \
      D2PR_INTERNAL_CONCAT(_d2pr_res_, __LINE__), lhs, expr)

#endif  // D2PR_COMMON_RESULT_H_
