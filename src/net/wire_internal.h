// Shared internals of the wire codecs (net/wire.cc and
// net/shard_wire.cc): the bounds-checked payload cursor and the common
// truncation diagnostic. Not part of the public surface — payload
// decoders are declared in wire.h / shard_wire.h; this header only keeps
// the two codec translation units from duplicating their byte-walking
// discipline (one implementation means one set of bounds-check bugs).

#ifndef D2PR_NET_WIRE_INTERNAL_H_
#define D2PR_NET_WIRE_INTERNAL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "common/binary_io.h"
#include "common/status.h"
#include "common/string_util.h"

namespace d2pr {
namespace wire_internal {

/// Bounds-checked forward reader over one payload. Every Read* returns
/// false instead of walking past the end, so a decoder is a linear chain
/// of reads with one truncation diagnostic at the end.
class Cursor {
 public:
  explicit Cursor(std::span<const uint8_t> bytes)
      : p_(bytes.data()), remaining_(bytes.size()) {}

  size_t remaining() const { return remaining_; }

  bool ReadU32(uint32_t* value) {
    if (remaining_ < 4) return false;
    *value = d2pr::ReadU32(p_);
    Advance(4);
    return true;
  }
  bool ReadU64(uint64_t* value) {
    if (remaining_ < 8) return false;
    *value = d2pr::ReadU64(p_);
    Advance(8);
    return true;
  }
  bool ReadI64(int64_t* value) {
    if (remaining_ < 8) return false;
    *value = d2pr::ReadI64(p_);
    Advance(8);
    return true;
  }
  bool ReadF64(double* value) {
    if (remaining_ < 8) return false;
    *value = d2pr::ReadF64(p_);
    Advance(8);
    return true;
  }
  bool ReadU8(uint8_t* value) {
    if (remaining_ < 1) return false;
    *value = *p_;
    Advance(1);
    return true;
  }
  bool ReadString(uint64_t length, std::string* value) {
    if (remaining_ < length) return false;
    value->assign(reinterpret_cast<const char*>(p_),
                  static_cast<size_t>(length));
    Advance(static_cast<size_t>(length));
    return true;
  }

 private:
  void Advance(size_t n) {
    p_ += n;
    remaining_ -= n;
  }

  const uint8_t* p_;
  size_t remaining_;
};

inline Status Truncated(const char* what) {
  return Status::InvalidArgument(StrCat("truncated ", what, " payload"));
}

}  // namespace wire_internal
}  // namespace d2pr

#endif  // D2PR_NET_WIRE_INTERNAL_H_
