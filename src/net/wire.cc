#include "net/wire.h"

#include <cstring>
#include <limits>
#include <string>

#include "common/binary_io.h"
#include "common/check.h"
#include "common/string_util.h"
#include "net/wire_internal.h"

namespace d2pr {
namespace {

using wire_internal::Cursor;
using wire_internal::Truncated;

void AppendU16(std::vector<uint8_t>& out, uint16_t value) {
  out.push_back(static_cast<uint8_t>(value & 0xff));
  out.push_back(static_cast<uint8_t>(value >> 8));
}

uint16_t ReadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

}  // namespace

std::vector<uint8_t> EncodeFrame(FrameType type, uint64_t request_id,
                                 std::span<const uint8_t> payload) {
  D2PR_CHECK(payload.size() <= kMaxPayloadBytes)
      << "frame payload exceeds kMaxPayloadBytes";
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  AppendU32(out, kWireMagic);
  AppendU16(out, kWireVersion);
  AppendU16(out, static_cast<uint16_t>(type));
  AppendU64(out, request_id);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<FrameHeader> DecodeFrameHeader(std::span<const uint8_t> bytes) {
  if (bytes.size() < kFrameHeaderBytes) {
    return Status::InvalidArgument(
        StrCat("frame header needs ", kFrameHeaderBytes, " bytes, got ",
               bytes.size()));
  }
  const uint8_t* p = bytes.data();
  FrameHeader header;
  header.payload_len = ReadU32(p);
  const uint32_t magic = ReadU32(p + 4);
  const uint16_t version = ReadU16(p + 8);
  const uint16_t type = ReadU16(p + 10);
  header.request_id = ReadU64(p + 12);
  if (magic != kWireMagic) {
    return Status::InvalidArgument(
        StrCat("bad frame magic ", magic, " (expected ", kWireMagic, ")"));
  }
  if (version != kWireVersion) {
    return Status::InvalidArgument(
        StrCat("unsupported wire version ", version, " (expected ",
               kWireVersion, ")"));
  }
  if (type < static_cast<uint16_t>(FrameType::kRankRequest) ||
      type > static_cast<uint16_t>(FrameType::kSolveEnd)) {
    return Status::InvalidArgument(StrCat("unknown frame type ", type));
  }
  if (header.payload_len > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        StrCat("frame payload length ", header.payload_len,
               " exceeds limit ", kMaxPayloadBytes));
  }
  header.type = static_cast<FrameType>(type);
  return header;
}

std::vector<uint8_t> EncodeRankRequest(const WireRankRequest& wire) {
  const RankRequest& r = wire.request;
  std::vector<uint8_t> out;
  out.reserve(8 * 6 + 4 * 4 + 4 * r.seeds.size() + r.warm_start_tag.size() +
              16);
  AppendU64(out, wire.deadline_ms);
  AppendF64(out, r.p);
  AppendF64(out, r.beta);
  AppendU32(out, static_cast<uint32_t>(r.metric));
  AppendF64(out, r.alpha);
  AppendF64(out, r.tolerance);
  AppendU32(out, static_cast<uint32_t>(r.max_iterations));
  AppendU32(out, static_cast<uint32_t>(r.dangling));
  AppendU32(out, static_cast<uint32_t>(r.method));
  AppendF64(out, r.push_epsilon);
  AppendU64(out, r.seeds.size());
  for (NodeId seed : r.seeds) {
    AppendU32(out, static_cast<uint32_t>(seed));
  }
  AppendU64(out, r.warm_start_tag.size());
  out.insert(out.end(), r.warm_start_tag.begin(), r.warm_start_tag.end());
  // top_k rides as a trailing optional field: appended only when nonzero,
  // so an exact-serving request is byte-identical to the pre-top-k format
  // and an old server keeps accepting it. (A truncated request to an old
  // server fails its trailing-bytes check — the right failure mode, since
  // that server cannot honor the truncation.)
  if (r.top_k != 0) AppendU32(out, static_cast<uint32_t>(r.top_k));
  return out;
}

Result<WireRankRequest> DecodeRankRequest(std::span<const uint8_t> payload) {
  Cursor cursor(payload);
  WireRankRequest wire;
  RankRequest& r = wire.request;
  uint32_t metric = 0;
  uint32_t max_iterations = 0;
  uint32_t dangling = 0;
  uint32_t method = 0;
  uint64_t num_seeds = 0;
  if (!cursor.ReadU64(&wire.deadline_ms) || !cursor.ReadF64(&r.p) ||
      !cursor.ReadF64(&r.beta) || !cursor.ReadU32(&metric) ||
      !cursor.ReadF64(&r.alpha) || !cursor.ReadF64(&r.tolerance) ||
      !cursor.ReadU32(&max_iterations) || !cursor.ReadU32(&dangling) ||
      !cursor.ReadU32(&method) || !cursor.ReadF64(&r.push_epsilon) ||
      !cursor.ReadU64(&num_seeds)) {
    return Truncated("RankRequest");
  }
  if (metric > static_cast<uint32_t>(DegreeMetric::kInDegree)) {
    return Status::InvalidArgument(StrCat("bad DegreeMetric ", metric));
  }
  if (dangling > static_cast<uint32_t>(DanglingPolicy::kRenormalize)) {
    return Status::InvalidArgument(StrCat("bad DanglingPolicy ", dangling));
  }
  if (method > static_cast<uint32_t>(SolverMethod::kForwardPush)) {
    return Status::InvalidArgument(StrCat("bad SolverMethod ", method));
  }
  // Each seed costs 4 bytes; a count the remaining bytes cannot hold is a
  // lie, caught before the reserve below can allocate against it.
  if (num_seeds > cursor.remaining() / 4) return Truncated("RankRequest");
  r.metric = static_cast<DegreeMetric>(metric);
  r.max_iterations = static_cast<int>(max_iterations);
  r.dangling = static_cast<DanglingPolicy>(dangling);
  r.method = static_cast<SolverMethod>(method);
  r.seeds.reserve(static_cast<size_t>(num_seeds));
  for (uint64_t i = 0; i < num_seeds; ++i) {
    uint32_t seed = 0;
    if (!cursor.ReadU32(&seed)) return Truncated("RankRequest");
    r.seeds.push_back(static_cast<NodeId>(seed));
  }
  uint64_t tag_len = 0;
  if (!cursor.ReadU64(&tag_len) ||
      !cursor.ReadString(tag_len, &r.warm_start_tag)) {
    return Truncated("RankRequest");
  }
  // Optional trailing top_k (see the encoder note): absent means 0, the
  // exact-serving default every pre-top-k frame implies.
  if (cursor.remaining() != 0) {
    uint32_t top_k = 0;
    if (!cursor.ReadU32(&top_k)) return Truncated("RankRequest");
    if (top_k > static_cast<uint32_t>(std::numeric_limits<int32_t>::max())) {
      return Status::InvalidArgument(StrCat("bad top_k ", top_k));
    }
    r.top_k = static_cast<int>(top_k);
  }
  if (cursor.remaining() != 0) {
    return Status::InvalidArgument(
        StrCat("RankRequest payload has ", cursor.remaining(),
               " trailing bytes"));
  }
  return wire;
}

std::vector<uint8_t> EncodeRankResponse(const RankResponse& response) {
  std::vector<uint8_t> out;
  out.reserve(8 * response.scores.size() + 64);
  AppendU64(out, response.scores.size());
  for (double score : response.scores) AppendF64(out, score);
  AppendU32(out, static_cast<uint32_t>(response.method));
  AppendU32(out, static_cast<uint32_t>(response.iterations));
  AppendI64(out, response.pushes);
  AppendF64(out, response.residual);
  // Diagnostic booleans packed into one word; bit order matches the
  // declaration order in RankResponse. Bit 5 gates the truncated top-k
  // section appended below — a response without it is byte-identical to
  // the pre-top-k format.
  uint32_t flags = 0;
  if (response.converged) flags |= 1u << 0;
  if (response.transition_cache_hit) flags |= 1u << 1;
  if (response.transition_store_hit) flags |= 1u << 2;
  if (response.warm_start_hit) flags |= 1u << 3;
  if (response.served_partitioned) flags |= 1u << 4;
  if (response.truncated) flags |= 1u << 5;
  AppendU32(out, flags);
  if (response.truncated) {
    AppendU64(out, response.top.size());
    for (const RankedEntry& entry : response.top) {
      AppendU32(out, static_cast<uint32_t>(entry.node));
      AppendF64(out, entry.score);
      out.push_back(entry.certified ? 1 : 0);
    }
    AppendF64(out, response.uncertainty_gap);
  }
  return out;
}

Result<RankResponse> DecodeRankResponse(std::span<const uint8_t> payload) {
  Cursor cursor(payload);
  RankResponse response;
  uint64_t num_scores = 0;
  if (!cursor.ReadU64(&num_scores)) return Truncated("RankResponse");
  if (num_scores > cursor.remaining() / 8) return Truncated("RankResponse");
  response.scores.reserve(static_cast<size_t>(num_scores));
  for (uint64_t i = 0; i < num_scores; ++i) {
    double score = 0.0;
    if (!cursor.ReadF64(&score)) return Truncated("RankResponse");
    response.scores.push_back(score);
  }
  uint32_t method = 0;
  uint32_t iterations = 0;
  uint32_t flags = 0;
  if (!cursor.ReadU32(&method) || !cursor.ReadU32(&iterations) ||
      !cursor.ReadI64(&response.pushes) ||
      !cursor.ReadF64(&response.residual) || !cursor.ReadU32(&flags)) {
    return Truncated("RankResponse");
  }
  if (method > static_cast<uint32_t>(SolverMethod::kForwardPush)) {
    return Status::InvalidArgument(StrCat("bad SolverMethod ", method));
  }
  if (flags > 0x3f) {
    return Status::InvalidArgument(
        StrCat("unknown RankResponse flag bits ", flags));
  }
  response.truncated = (flags & (1u << 5)) != 0;
  if (response.truncated) {
    uint64_t num_entries = 0;
    if (!cursor.ReadU64(&num_entries)) return Truncated("RankResponse");
    // 13 bytes per entry (u32 node + f64 score + u8 certified); a count
    // the remaining bytes cannot hold is a lie, caught before reserve.
    if (num_entries > cursor.remaining() / 13) return Truncated("RankResponse");
    response.top.reserve(static_cast<size_t>(num_entries));
    for (uint64_t i = 0; i < num_entries; ++i) {
      uint32_t node = 0;
      double score = 0.0;
      uint8_t certified = 0;
      if (!cursor.ReadU32(&node) || !cursor.ReadF64(&score) ||
          !cursor.ReadU8(&certified)) {
        return Truncated("RankResponse");
      }
      if (certified > 1) {
        return Status::InvalidArgument(
            StrCat("bad certified byte ", certified));
      }
      response.top.push_back(
          {static_cast<NodeId>(node), score, certified != 0});
    }
    if (!cursor.ReadF64(&response.uncertainty_gap)) {
      return Truncated("RankResponse");
    }
  }
  if (cursor.remaining() != 0) {
    return Status::InvalidArgument(
        StrCat("RankResponse payload has ", cursor.remaining(),
               " trailing bytes"));
  }
  response.method = static_cast<SolverMethod>(method);
  response.iterations = static_cast<int>(iterations);
  response.converged = (flags & (1u << 0)) != 0;
  response.transition_cache_hit = (flags & (1u << 1)) != 0;
  response.transition_store_hit = (flags & (1u << 2)) != 0;
  response.warm_start_hit = (flags & (1u << 3)) != 0;
  response.served_partitioned = (flags & (1u << 4)) != 0;
  return response;
}

std::vector<uint8_t> EncodeStatusPayload(const Status& status) {
  std::vector<uint8_t> out;
  const std::string& message = status.message();
  out.reserve(12 + message.size());
  AppendU32(out, static_cast<uint32_t>(status.code()));
  AppendU64(out, message.size());
  out.insert(out.end(), message.begin(), message.end());
  return out;
}

Status DecodeStatusPayload(std::span<const uint8_t> payload, Status* decoded) {
  Cursor cursor(payload);
  uint32_t code = 0;
  uint64_t message_len = 0;
  std::string message;
  if (!cursor.ReadU32(&code) || !cursor.ReadU64(&message_len) ||
      !cursor.ReadString(message_len, &message)) {
    return Truncated("Status");
  }
  if (code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument(StrCat("bad StatusCode ", code));
  }
  if (cursor.remaining() != 0) {
    return Status::InvalidArgument(
        StrCat("Status payload has ", cursor.remaining(), " trailing bytes"));
  }
  *decoded = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

std::vector<uint8_t> EncodeServerInfo(const ServerInfo& info) {
  std::vector<uint8_t> out;
  out.reserve(32);
  AppendU64(out, info.num_nodes);
  AppendU64(out, info.num_arcs);
  AppendU64(out, info.num_shards);
  AppendU64(out, info.num_threads);
  return out;
}

Result<ServerInfo> DecodeServerInfo(std::span<const uint8_t> payload) {
  Cursor cursor(payload);
  ServerInfo info;
  if (!cursor.ReadU64(&info.num_nodes) || !cursor.ReadU64(&info.num_arcs) ||
      !cursor.ReadU64(&info.num_shards) ||
      !cursor.ReadU64(&info.num_threads)) {
    return Truncated("ServerInfo");
  }
  if (cursor.remaining() != 0) {
    return Status::InvalidArgument(
        StrCat("ServerInfo payload has ", cursor.remaining(),
               " trailing bytes"));
  }
  return info;
}

}  // namespace d2pr
