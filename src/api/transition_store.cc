#include "api/transition_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "common/binary_io.h"
#include "common/string_util.h"

namespace d2pr {

namespace {

constexpr char kMagic[8] = {'D', '2', 'P', 'R', 'T', 'M', 'T', 'X'};
constexpr uint32_t kHeaderBytes = 96;
constexpr size_t kHeaderChecksumOffset = 80;  // checksum covers [0, 80)

// Header field offsets (see the layout table in transition_store.h).
constexpr size_t kVersionOffset = 8;
constexpr size_t kHeaderBytesOffset = 12;
constexpr size_t kFingerprintOffset = 16;
constexpr size_t kNumNodesOffset = 24;
constexpr size_t kNumArcsOffset = 32;
constexpr size_t kKeyPOffset = 40;
constexpr size_t kKeyBetaOffset = 48;
constexpr size_t kKeyMetricOffset = 56;
constexpr size_t kProbsChecksumOffset = 64;
constexpr size_t kDanglingChecksumOffset = 72;

std::string Hex16(uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace

TransitionStore::TransitionStore(std::string dir,
                                 const TransitionStoreOptions& options)
    : dir_(std::move(dir)), options_(options) {
  // Best-effort sweep of temp files orphaned by crashed writers, so a
  // long-lived shared cache_dir does not accumulate matrix-sized junk.
  // Only temps old enough that no live writer can own them are removed —
  // a freshly started concurrent process must not lose its in-flight
  // write.
  std::error_code ec;
  if (!std::filesystem::is_directory(dir_, ec)) return;
  const auto now = std::filesystem::file_time_type::clock::now();
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.path().filename().string().find(".d2ptm.tmp.") ==
        std::string::npos) {
      continue;
    }
    const auto written = std::filesystem::last_write_time(entry.path(), ec);
    if (!ec && now - written > std::chrono::hours(1)) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

std::string TransitionStore::FileNameFor(uint64_t graph_fingerprint,
                                         const TransitionKey& key) {
  return StrCat("tm-", Hex16(graph_fingerprint), "-p",
                Hex16(std::bit_cast<uint64_t>(key.p)), "-b",
                Hex16(std::bit_cast<uint64_t>(key.beta)), "-m",
                static_cast<uint32_t>(key.metric), ".d2ptm");
}

std::string TransitionStore::PathFor(uint64_t graph_fingerprint,
                                     const TransitionKey& key) const {
  return StrCat(dir_, "/", FileNameFor(graph_fingerprint, key));
}

bool TransitionStore::Contains(uint64_t graph_fingerprint,
                               const TransitionKey& key) const {
  std::error_code ec;
  return std::filesystem::exists(PathFor(graph_fingerprint, key), ec);
}

Status TransitionStore::Save(uint64_t graph_fingerprint,
                             const TransitionKey& key,
                             const TransitionMatrix& matrix) const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::IoError(
        StrCat("cannot create store directory ", dir_, ": ", ec.message()));
  }

  const std::span<const double> probs = matrix.probs_;
  const std::span<const uint8_t> dangling = matrix.dangling_;

  std::vector<uint8_t> header;
  header.reserve(kHeaderBytes);
  header.insert(header.end(), kMagic, kMagic + sizeof(kMagic));
  AppendU32(header, kFormatVersion);
  AppendU32(header, kHeaderBytes);
  AppendU64(header, graph_fingerprint);
  AppendI64(header, static_cast<int64_t>(matrix.num_nodes()));
  AppendI64(header, static_cast<int64_t>(probs.size()));
  AppendF64(header, key.p);
  AppendF64(header, key.beta);
  AppendU32(header, static_cast<uint32_t>(key.metric));
  AppendU32(header, 0);  // flags, reserved
  AppendU64(header, Checksum64(probs.data(), probs.size_bytes()));
  AppendU64(header, Checksum64(dangling.data(), dangling.size_bytes()));
  AppendU64(header, Checksum64(header.data(), kHeaderChecksumOffset));
  AppendU64(header, 0);  // padding: probs start 8-byte aligned
  D2PR_CHECK_EQ(header.size(), static_cast<size_t>(kHeaderBytes));

  // Unique temp name so concurrent writers (router shards sharing one
  // cache_dir) never interleave into one file; rename is atomic on POSIX.
  static std::atomic<uint64_t> temp_counter{0};
  const std::string path = PathFor(graph_fingerprint, key);
  const std::string temp_path =
      StrCat(path, ".tmp.", static_cast<int64_t>(::getpid()), ".",
             static_cast<int64_t>(temp_counter.fetch_add(1)));

  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError(StrCat("cannot open for write: ", temp_path));
    }
    auto put = [&out](const void* data, size_t bytes) {
      out.write(static_cast<const char*>(data),
                static_cast<std::streamsize>(bytes));
    };
    put(header.data(), header.size());
    put(probs.data(), probs.size_bytes());
    put(dangling.data(), dangling.size_bytes());
    out.flush();
    if (!out) {
      std::filesystem::remove(temp_path, ec);
      return Status::IoError(StrCat("write failed: ", temp_path));
    }
  }
  // Push the data to stable storage before the rename commits the name:
  // otherwise a power cut can publish an empty/partial file and the warm
  // store write-through promises is silently gone after the next boot.
  {
    const int fd = ::open(temp_path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0 || ::fsync(fd) != 0) {
      if (fd >= 0) ::close(fd);
      std::filesystem::remove(temp_path, ec);
      return Status::IoError(StrCat("cannot fsync: ", temp_path));
    }
    ::close(fd);
  }
  std::error_code rename_ec;
  std::filesystem::rename(temp_path, path, rename_ec);
  if (rename_ec) {
    const std::string reason = rename_ec.message();  // before remove resets ec
    std::filesystem::remove(temp_path, ec);
    return Status::IoError(
        StrCat("cannot rename ", temp_path, " -> ", path, ": ", reason));
  }
  return Status::OK();
}

Result<std::shared_ptr<const TransitionMatrix>> TransitionStore::Load(
    uint64_t graph_fingerprint, const TransitionKey& key,
    NodeId expected_num_nodes, EdgeIndex expected_num_arcs) const {
  const std::string path = PathFor(graph_fingerprint, key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return Status::NotFound(StrCat("no persisted transition at ", path));
  }
  D2PR_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  const uint8_t* bytes = file.data();

  // Gate order matters for error quality: identify the file kind first
  // (magic, version), then prove the header trustworthy (checksum), and
  // only then interpret its fields.
  if (file.size() < kHeaderBytes ||
      std::memcmp(bytes, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError(
        StrCat(path, ": not a d2pr transition store file (bad magic)"));
  }
  const uint32_t version = ReadU32(bytes + kVersionOffset);
  if (version != kFormatVersion) {
    return Status::FailedPrecondition(
        StrCat(path, ": format version ", version, ", this reader supports ",
               kFormatVersion));
  }
  if (ReadU32(bytes + kHeaderBytesOffset) != kHeaderBytes ||
      ReadU64(bytes + kHeaderChecksumOffset) !=
          Checksum64(bytes, kHeaderChecksumOffset)) {
    return Status::IoError(
        StrCat(path, ": header checksum mismatch (corrupt store file)"));
  }

  const uint64_t stored_fingerprint = ReadU64(bytes + kFingerprintOffset);
  if (stored_fingerprint != graph_fingerprint) {
    return Status::FailedPrecondition(
        StrCat(path, ": graph fingerprint mismatch (store ",
               Hex16(stored_fingerprint), ", serving graph ",
               Hex16(graph_fingerprint),
               "); the store was built for a different graph"));
  }
  const double stored_p = ReadF64(bytes + kKeyPOffset);
  const double stored_beta = ReadF64(bytes + kKeyBetaOffset);
  const uint32_t stored_metric = ReadU32(bytes + kKeyMetricOffset);
  if (std::bit_cast<uint64_t>(stored_p) != std::bit_cast<uint64_t>(key.p) ||
      std::bit_cast<uint64_t>(stored_beta) !=
          std::bit_cast<uint64_t>(key.beta) ||
      stored_metric != static_cast<uint32_t>(key.metric)) {
    return Status::FailedPrecondition(
        StrCat(path, ": stored key (p=", stored_p, ", beta=", stored_beta,
               ", metric=", stored_metric,
               ") does not match the requested key"));
  }

  const int64_t num_nodes = ReadI64(bytes + kNumNodesOffset);
  const int64_t num_arcs = ReadI64(bytes + kNumArcsOffset);
  // Exact count match against the serving graph — the documented gate
  // backing up the fingerprint, and what makes every size expression
  // below safe: from here on the counts are the caller's sane values,
  // not header-controlled integers that could overflow the arithmetic.
  if (num_nodes != static_cast<int64_t>(expected_num_nodes) ||
      num_arcs != static_cast<int64_t>(expected_num_arcs)) {
    return Status::FailedPrecondition(
        StrCat(path, ": stored sections (", num_nodes, " nodes, ", num_arcs,
               " arcs) do not match the serving graph (", expected_num_nodes,
               " nodes, ", expected_num_arcs,
               " arcs); the store was built for a different graph"));
  }
  const uint64_t expected_size = kHeaderBytes +
                                 static_cast<uint64_t>(num_arcs) * 8 +
                                 static_cast<uint64_t>(num_nodes);
  if (file.size() != expected_size) {
    return Status::IoError(
        StrCat(path, ": truncated or oversized store file (", file.size(),
               " bytes, header advertises ", expected_size, ")"));
  }

  const uint8_t* probs_bytes = bytes + kHeaderBytes;
  const uint8_t* dangling_bytes = probs_bytes + num_arcs * 8;
  if (options_.verify_payload_checksums) {
    if (ReadU64(bytes + kProbsChecksumOffset) !=
        Checksum64(probs_bytes, static_cast<size_t>(num_arcs) * 8)) {
      return Status::IoError(
          StrCat(path, ": probs section checksum mismatch (corrupt store "
                       "file)"));
    }
    if (ReadU64(bytes + kDanglingChecksumOffset) !=
        Checksum64(dangling_bytes, static_cast<size_t>(num_nodes))) {
      return Status::IoError(
          StrCat(path, ": dangling section checksum mismatch (corrupt "
                       "store file)"));
    }
  }

  auto backing = std::make_shared<const MmapFile>(std::move(file));
  const std::span<const double> probs{
      reinterpret_cast<const double*>(probs_bytes),
      static_cast<size_t>(num_arcs)};
  const std::span<const uint8_t> dangling{dangling_bytes,
                                          static_cast<size_t>(num_nodes)};
  return std::shared_ptr<const TransitionMatrix>(
      new TransitionMatrix(static_cast<NodeId>(num_nodes), probs, dangling,
                           std::move(backing)));
}

}  // namespace d2pr
