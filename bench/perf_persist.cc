// Microbenchmarks for the persistent transition store: what a warm
// cache_dir buys a restarting serving process.
//
// The serving cold-start cost is (transition build) + (first solve); the
// store replaces the build with an mmap + checksum pass. The pairs below
// measure the replacement in isolation (Build vs Load) and end-to-end
// (fresh engine answering its first query without and with a warm store).

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "api/engine.h"
#include "api/transition_store.h"
#include "common/rng.h"
#include "datagen/classic_generators.h"
#include "graph/graph_fingerprint.h"

namespace d2pr {
namespace {

CsrGraph MakeGraph(int64_t nodes) {
  Rng rng(42);
  auto graph = BarabasiAlbert(static_cast<NodeId>(nodes), 4, &rng);
  D2PR_CHECK(graph.ok());
  return std::move(graph).value();
}

std::string StoreDir(const benchmark::State& state) {
  return std::filesystem::temp_directory_path().string() +
         "/d2pr_perf_persist_" + std::to_string(state.range(0));
}

// Warms the store with the benchmark's single key and returns the dir.
std::string WarmStore(const CsrGraph& graph, benchmark::State& state) {
  const std::string dir = StoreDir(state);
  std::filesystem::remove_all(dir);
  EngineOptions options;
  options.cache_dir = dir;
  D2prEngine warmer = D2prEngine::Borrowing(graph, options);
  RankRequest request;
  request.p = 0.5;
  auto response = warmer.Rank(request);
  D2PR_CHECK(response.ok());
  return dir;
}

// Baseline: the O(|E|) rebuild every restart pays without a store.
void BM_ColdTransitionBuild(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(state.range(0));
  for (auto _ : state) {
    auto built = TransitionMatrix::Build(graph, {.p = 0.5});
    benchmark::DoNotOptimize(built->probs().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ColdTransitionBuild)->Arg(10000)->Arg(100000);

// The store path: mmap + gate checks + checksum pass over the payload.
void BM_StoreLoad(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(state.range(0));
  const std::string dir = WarmStore(graph, state);
  TransitionStore store(dir);
  const uint64_t fp = GraphFingerprint(graph);
  const TransitionKey key{0.5, 0.0, DegreeMetric::kOutDegree};
  for (auto _ : state) {
    auto loaded = store.Load(fp, key, graph.num_nodes(), graph.num_arcs());
    D2PR_CHECK(loaded.ok());
    benchmark::DoNotOptimize((*loaded)->probs().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreLoad)->Arg(10000)->Arg(100000);

// Same, trusting the payload (pure map, no checksum pass): the O(1)
// restart limit.
void BM_StoreLoadNoVerify(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(state.range(0));
  const std::string dir = WarmStore(graph, state);
  TransitionStore store(dir, {.verify_payload_checksums = false});
  const uint64_t fp = GraphFingerprint(graph);
  const TransitionKey key{0.5, 0.0, DegreeMetric::kOutDegree};
  for (auto _ : state) {
    auto loaded = store.Load(fp, key, graph.num_nodes(), graph.num_arcs());
    D2PR_CHECK(loaded.ok());
    benchmark::DoNotOptimize((*loaded)->probs().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreLoadNoVerify)->Arg(10000)->Arg(100000);

// End-to-end restart: fresh engine, first query, no store. Every
// iteration stands up a new engine — the "process restart" unit.
void BM_RestartFirstQueryCold(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(state.range(0));
  RankRequest request;
  request.p = 0.5;
  for (auto _ : state) {
    D2prEngine engine = D2prEngine::Borrowing(graph);
    auto response = engine.Rank(request);
    benchmark::DoNotOptimize(response->scores.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RestartFirstQueryCold)->Arg(10000)->Arg(100000);

void BM_RestartFirstQueryWarmStore(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(state.range(0));
  const std::string dir = WarmStore(graph, state);
  RankRequest request;
  request.p = 0.5;
  for (auto _ : state) {
    EngineOptions options;
    options.cache_dir = dir;
    D2prEngine engine = D2prEngine::Borrowing(graph, options);
    auto response = engine.Rank(request);
    benchmark::DoNotOptimize(response->scores.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RestartFirstQueryWarmStore)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace d2pr

BENCHMARK_MAIN();
