#include "graph/shard_cut.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/binary_io.h"
#include "common/string_util.h"
#include "graph/graph_fingerprint.h"

namespace d2pr {

namespace {

// --- file layout (little-endian; binary_io.h static-asserts the target) ---
//
//   offset  size  field
//        0     8  magic "D2PRSCUT"
//        8     4  format version
//       12     4  header bytes (200)
//       16     8  graph fingerprint
//       24     8  num_nodes   (global, i64)
//       32     8  num_arcs    (global, i64)
//       40     4  partition scheme
//       44     4  shard id
//       48     4  shard count
//       52     4  flags (bit 0 directed, bit 1 weighted)
//       56   6*8  section counts: owned, out arcs, in arcs, dangling,
//                 boundary sources, ghost arcs
//      104  11*8  per-section Checksum64s (section order below)
//      192     8  Checksum64 over bytes [0, 192)
//
// Payload sections, in order, raw little-endian element dumps:
//    0 out_offsets      (owned+1)    x i64
//    1 out_targets      out_arcs     x i32
//    2 out_arc_begin    owned        x i64
//    3 in_offsets       (owned+1)    x i64
//    4 in_sources       in_arcs      x i32
//    5 in_arc_index     in_arcs      x i64
//    6 dangling_owned   dangling     x i32
//    7 boundary_sources boundary     x i32
//    8 ghost_offsets    (boundary+1) x i64
//    9 ghost_targets    ghost_arcs   x i32
//   10 weights          weighted ? (out_arcs + in_arcs + ghost_arcs) x f64
//                       : absent — out, in, ghost weight runs back to back
//                       under one chained checksum

constexpr uint8_t kMagic[8] = {'D', '2', 'P', 'R', 'S', 'C', 'U', 'T'};
constexpr uint32_t kFormatVersion = 1;
constexpr uint32_t kHeaderBytes = 200;

constexpr size_t kVersionOffset = 8;
constexpr size_t kHeaderBytesOffset = 12;
constexpr size_t kFingerprintOffset = 16;
constexpr size_t kNumNodesOffset = 24;
constexpr size_t kNumArcsOffset = 32;
constexpr size_t kSchemeOffset = 40;
constexpr size_t kShardIdOffset = 44;
constexpr size_t kNumShardsOffset = 48;
constexpr size_t kFlagsOffset = 52;
constexpr size_t kNumOwnedOffset = 56;
constexpr size_t kSectionChecksumOffset = 104;
constexpr size_t kNumSections = 11;
constexpr size_t kHeaderChecksumOffset = 192;

constexpr uint32_t kFlagDirected = 1u << 0;
constexpr uint32_t kFlagWeighted = 1u << 1;

/// Section counts beyond num_arcs (itself capped here) make the expected
/// payload-size arithmetic meaningless; a header claiming more is corrupt,
/// not big.
constexpr int64_t kMaxPlausibleArcs = int64_t{1} << 40;

std::string Hex16(uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::IoError(StrCat(path, ": ", what));
}

/// The six section counts of the header, in file order.
struct SectionCounts {
  uint64_t owned = 0;
  uint64_t out_arcs = 0;
  uint64_t in_arcs = 0;
  uint64_t dangling = 0;
  uint64_t boundary = 0;
  uint64_t ghost_arcs = 0;
};

/// Byte size of payload section `index` under `counts` (see the layout
/// table above).
uint64_t SectionBytes(size_t index, const SectionCounts& counts,
                      bool weighted) {
  switch (index) {
    case 0:
      return (counts.owned + 1) * 8;
    case 1:
      return counts.out_arcs * 4;
    case 2:
      return counts.owned * 8;
    case 3:
      return (counts.owned + 1) * 8;
    case 4:
      return counts.in_arcs * 4;
    case 5:
      return counts.in_arcs * 8;
    case 6:
      return counts.dangling * 4;
    case 7:
      return counts.boundary * 4;
    case 8:
      return (counts.boundary + 1) * 8;
    case 9:
      return counts.ghost_arcs * 4;
    case 10:
      return weighted
                 ? (counts.out_arcs + counts.in_arcs + counts.ghost_arcs) * 8
                 : 0;
  }
  return 0;
}

/// Decodes and gate-checks the fixed header: magic, version, header
/// bytes, header checksum, enum ranges, count plausibility. Structural
/// payload validation happens in LoadShardCut.
struct ParsedHeader {
  ShardCutMetadata meta;
  SectionCounts counts;
  uint64_t section_checksums[kNumSections] = {};
};

Result<ParsedHeader> ParseHeader(const std::string& path,
                                 const uint8_t* bytes, size_t available) {
  if (available < kHeaderBytes ||
      std::memcmp(bytes, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path, "not a d2pr shard cut file (bad magic)");
  }
  const uint32_t version = ReadU32(bytes + kVersionOffset);
  if (version != kFormatVersion) {
    return Status::FailedPrecondition(
        StrCat(path, ": cut format version ", version,
               " unsupported (this build reads version ", kFormatVersion,
               ")"));
  }
  if (ReadU32(bytes + kHeaderBytesOffset) != kHeaderBytes) {
    return Corrupt(path, StrCat("header claims ",
                                ReadU32(bytes + kHeaderBytesOffset),
                                " header bytes, format has ", kHeaderBytes));
  }
  const uint64_t stored = ReadU64(bytes + kHeaderChecksumOffset);
  const uint64_t actual = Checksum64(bytes, kHeaderChecksumOffset);
  if (stored != actual) {
    return Corrupt(path, StrCat("header checksum mismatch (stored ",
                                Hex16(stored), ", computed ", Hex16(actual),
                                ")"));
  }

  ParsedHeader parsed;
  parsed.meta.graph_fingerprint = ReadU64(bytes + kFingerprintOffset);
  const int64_t num_nodes = ReadI64(bytes + kNumNodesOffset);
  const int64_t num_arcs = ReadI64(bytes + kNumArcsOffset);
  if (num_nodes < 0 || num_nodes > INT32_MAX) {
    return Corrupt(path, StrCat("implausible node count ", num_nodes));
  }
  if (num_arcs < 0 || num_arcs > kMaxPlausibleArcs) {
    return Corrupt(path, StrCat("implausible arc count ", num_arcs));
  }
  parsed.meta.num_nodes = static_cast<NodeId>(num_nodes);
  parsed.meta.num_arcs = num_arcs;

  const uint32_t scheme = ReadU32(bytes + kSchemeOffset);
  if (scheme > static_cast<uint32_t>(PartitionScheme::kHash)) {
    return Corrupt(path, StrCat("bad partition scheme ", scheme));
  }
  parsed.meta.scheme = static_cast<PartitionScheme>(scheme);
  parsed.meta.shard_id = ReadU32(bytes + kShardIdOffset);
  parsed.meta.num_shards = ReadU32(bytes + kNumShardsOffset);
  if (parsed.meta.num_shards == 0 ||
      parsed.meta.shard_id >= parsed.meta.num_shards) {
    return Corrupt(path, StrCat("shard id ", parsed.meta.shard_id,
                                " not below shard count ",
                                parsed.meta.num_shards));
  }
  const uint32_t flags = ReadU32(bytes + kFlagsOffset);
  if (flags > (kFlagDirected | kFlagWeighted)) {
    return Corrupt(path, StrCat("bad flags word ", flags));
  }
  parsed.meta.directed = (flags & kFlagDirected) != 0;
  parsed.meta.weighted = (flags & kFlagWeighted) != 0;

  uint64_t* count_fields[] = {&parsed.counts.owned,    &parsed.counts.out_arcs,
                              &parsed.counts.in_arcs,  &parsed.counts.dangling,
                              &parsed.counts.boundary,
                              &parsed.counts.ghost_arcs};
  for (size_t i = 0; i < 6; ++i) {
    *count_fields[i] = ReadU64(bytes + kNumOwnedOffset + i * 8);
  }
  const SectionCounts& c = parsed.counts;
  if (c.owned > static_cast<uint64_t>(num_nodes) ||
      c.boundary > static_cast<uint64_t>(num_nodes) ||
      c.dangling > c.owned ||
      c.out_arcs > static_cast<uint64_t>(num_arcs) ||
      c.in_arcs > static_cast<uint64_t>(num_arcs) ||
      c.ghost_arcs > static_cast<uint64_t>(num_arcs)) {
    return Corrupt(path, "implausible section counts");
  }
  for (size_t i = 0; i < kNumSections; ++i) {
    parsed.section_checksums[i] = ReadU64(bytes + kSectionChecksumOffset +
                                          i * 8);
  }
  return parsed;
}

/// Copies `count` raw little-endian elements out of the mmap.
template <typename T>
void CopySection(const uint8_t* p, uint64_t count, std::vector<T>* out) {
  out->resize(static_cast<size_t>(count));
  if (count > 0) std::memcpy(out->data(), p, static_cast<size_t>(count * sizeof(T)));
}

template <typename T>
int64_t VectorBytes(const std::vector<T>& v) {
  return static_cast<int64_t>(v.size() * sizeof(T));
}

}  // namespace

int64_t ShardCut::payload_bytes() const {
  return VectorBytes(shard.owned) + VectorBytes(shard.out_offsets) +
         VectorBytes(shard.out_targets) + VectorBytes(shard.out_arc_begin) +
         VectorBytes(shard.in_offsets) + VectorBytes(shard.in_sources) +
         VectorBytes(shard.in_arc_index) + VectorBytes(shard.in_interior) +
         VectorBytes(shard.dangling_owned) + VectorBytes(boundary_sources) +
         VectorBytes(ghost_offsets) + VectorBytes(ghost_targets) +
         VectorBytes(out_weights) + VectorBytes(in_weights) +
         VectorBytes(ghost_weights);
}

std::string ShardCutFileName(uint64_t graph_fingerprint,
                             PartitionScheme scheme, size_t num_shards,
                             size_t shard_id) {
  return StrCat("cut-", Hex16(graph_fingerprint), "-",
                PartitionSchemeName(scheme), "-s", shard_id, "of",
                num_shards, ".d2psc");
}

Status SaveShardCut(const CsrGraph& graph, const GraphPartition& partition,
                    size_t shard_id, const std::string& path) {
  if (shard_id >= partition.num_shards()) {
    return Status::InvalidArgument(
        StrCat("shard id ", shard_id, " not below partition shard count ",
               partition.num_shards()));
  }
  if (partition.num_nodes() != graph.num_nodes()) {
    return Status::InvalidArgument(
        StrCat("partition covers ", partition.num_nodes(),
               " nodes but the graph has ", graph.num_nodes()));
  }
  const PartitionShard& shard = partition.shard(shard_id);
  if (shard.out_offsets.size() != shard.owned.size() + 1) {
    return Status::InvalidArgument(
        "partition was built without its out-CSR (build_out_csr = false); "
        "a shard cut needs the forward slice");
  }
  const bool weighted = graph.weighted();

  // Boundary sources: distinct non-interior in-CSR sources, ascending —
  // the same derivation ShardWorker publishes in its handshake ack.
  std::vector<NodeId> boundary;
  for (size_t idx = 0; idx < shard.in_sources.size(); ++idx) {
    if (!shard.in_interior[idx]) boundary.push_back(shard.in_sources[idx]);
  }
  std::sort(boundary.begin(), boundary.end());
  boundary.erase(std::unique(boundary.begin(), boundary.end()),
                 boundary.end());

  // Ghost rows: each boundary source's full out-row, in boundary order.
  std::vector<EdgeIndex> ghost_offsets;
  std::vector<NodeId> ghost_targets;
  std::vector<double> ghost_weights;
  ghost_offsets.reserve(boundary.size() + 1);
  ghost_offsets.push_back(0);
  for (NodeId b : boundary) {
    const auto row = graph.OutNeighbors(b);
    ghost_targets.insert(ghost_targets.end(), row.begin(), row.end());
    if (weighted) {
      const auto row_weights = graph.OutWeights(b);
      ghost_weights.insert(ghost_weights.end(), row_weights.begin(),
                           row_weights.end());
    }
    ghost_offsets.push_back(static_cast<EdgeIndex>(ghost_targets.size()));
  }

  // Per-arc weights of the shard's own arc families. in_weights gathers
  // through the global arc index ONCE, here, so the loaded worker never
  // needs the global weight array.
  std::vector<double> out_weights;
  std::vector<double> in_weights;
  if (weighted) {
    out_weights.reserve(shard.out_targets.size());
    for (NodeId v : shard.owned) {
      const auto row_weights = graph.OutWeights(v);
      out_weights.insert(out_weights.end(), row_weights.begin(),
                         row_weights.end());
    }
    const auto weights = graph.weights();
    in_weights.reserve(shard.in_arc_index.size());
    for (EdgeIndex arc : shard.in_arc_index) {
      in_weights.push_back(weights[static_cast<size_t>(arc)]);
    }
  }

  // --- header ---
  std::vector<uint8_t> header;
  header.reserve(kHeaderBytes);
  header.insert(header.end(), kMagic, kMagic + sizeof(kMagic));
  AppendU32(header, kFormatVersion);
  AppendU32(header, kHeaderBytes);
  AppendU64(header, GraphFingerprint(graph));
  AppendI64(header, static_cast<int64_t>(graph.num_nodes()));
  AppendI64(header, graph.num_arcs());
  AppendU32(header, static_cast<uint32_t>(partition.scheme()));
  AppendU32(header, static_cast<uint32_t>(shard_id));
  AppendU32(header, static_cast<uint32_t>(partition.num_shards()));
  AppendU32(header, (graph.directed() ? kFlagDirected : 0) |
                        (weighted ? kFlagWeighted : 0));
  AppendU64(header, shard.owned.size());
  AppendU64(header, static_cast<uint64_t>(shard.out_targets.size()));
  AppendU64(header, static_cast<uint64_t>(shard.in_sources.size()));
  AppendU64(header, shard.dangling_owned.size());
  AppendU64(header, boundary.size());
  AppendU64(header, static_cast<uint64_t>(ghost_targets.size()));

  struct Section {
    const void* data;
    size_t bytes;
  };
  const Section sections[] = {
      {shard.out_offsets.data(), shard.out_offsets.size() * 8},
      {shard.out_targets.data(), shard.out_targets.size() * 4},
      {shard.out_arc_begin.data(), shard.out_arc_begin.size() * 8},
      {shard.in_offsets.data(), shard.in_offsets.size() * 8},
      {shard.in_sources.data(), shard.in_sources.size() * 4},
      {shard.in_arc_index.data(), shard.in_arc_index.size() * 8},
      {shard.dangling_owned.data(), shard.dangling_owned.size() * 4},
      {boundary.data(), boundary.size() * 4},
      {ghost_offsets.data(), ghost_offsets.size() * 8},
      {ghost_targets.data(), ghost_targets.size() * 4},
  };
  for (const Section& section : sections) {
    AppendU64(header, Checksum64(section.data, section.bytes));
  }
  // The three weight runs share one chained checksum (section 10).
  uint64_t weights_checksum = 0;
  if (weighted) {
    weights_checksum = Checksum64(out_weights.data(), out_weights.size() * 8);
    weights_checksum = Checksum64(in_weights.data(), in_weights.size() * 8,
                                  weights_checksum);
    weights_checksum = Checksum64(ghost_weights.data(),
                                  ghost_weights.size() * 8, weights_checksum);
  }
  AppendU64(header, weights_checksum);
  AppendU64(header, Checksum64(header.data(), header.size()));
  D2PR_CHECK_EQ(header.size(), static_cast<size_t>(kHeaderBytes));

  // --- atomic write: unique temp, fsync, rename ---
  static std::atomic<uint64_t> temp_counter{0};
  const std::string temp_path =
      StrCat(path, ".tmp.", static_cast<int64_t>(::getpid()), ".",
             static_cast<int64_t>(temp_counter.fetch_add(1)));
  std::error_code ec;
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError(StrCat("cannot open for write: ", temp_path));
    }
    auto put = [&out](const void* data, size_t bytes) {
      out.write(static_cast<const char*>(data),
                static_cast<std::streamsize>(bytes));
    };
    put(header.data(), header.size());
    for (const Section& section : sections) put(section.data, section.bytes);
    if (weighted) {
      put(out_weights.data(), out_weights.size() * 8);
      put(in_weights.data(), in_weights.size() * 8);
      put(ghost_weights.data(), ghost_weights.size() * 8);
    }
    out.flush();
    if (!out) {
      std::filesystem::remove(temp_path, ec);
      return Status::IoError(StrCat("write failed: ", temp_path));
    }
  }
  {
    const int fd = ::open(temp_path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0 || ::fsync(fd) != 0) {
      if (fd >= 0) ::close(fd);
      std::filesystem::remove(temp_path, ec);
      return Status::IoError(StrCat("cannot fsync: ", temp_path));
    }
    ::close(fd);
  }
  std::error_code rename_ec;
  std::filesystem::rename(temp_path, path, rename_ec);
  if (rename_ec) {
    const std::string reason = rename_ec.message();  // before remove resets ec
    std::filesystem::remove(temp_path, ec);
    return Status::IoError(
        StrCat("cannot rename ", temp_path, " -> ", path, ": ", reason));
  }
  return Status::OK();
}

Result<ShardCutMetadata> ReadShardCutMetadata(const std::string& path) {
  uint8_t header[kHeaderBytes];
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError(StrCat("cannot open ", path));
  }
  in.read(reinterpret_cast<char*>(header), kHeaderBytes);
  const size_t got = static_cast<size_t>(in.gcount());
  ParsedHeader parsed;
  D2PR_ASSIGN_OR_RETURN(parsed, ParseHeader(path, header, got));
  return parsed.meta;
}

Result<ShardCut> LoadShardCut(const std::string& path) {
  Result<MmapFile> file = MmapFile::Open(path);
  if (!file.ok()) return file.status();
  const uint8_t* bytes = file->data();

  ParsedHeader parsed;
  D2PR_ASSIGN_OR_RETURN(parsed, ParseHeader(path, bytes, file->size()));
  const ShardCutMetadata& meta = parsed.meta;
  const SectionCounts& counts = parsed.counts;

  // Exact size: the header's counts fully determine the payload.
  uint64_t expected = kHeaderBytes;
  for (size_t i = 0; i < kNumSections; ++i) {
    expected += SectionBytes(i, counts, meta.weighted);
  }
  if (file->size() != expected) {
    return Corrupt(path, StrCat("truncated or oversized: ", file->size(),
                                " bytes, header describes ", expected));
  }

  // Per-section checksums before any value is trusted. Section 10 chains
  // its three weight runs exactly as the writer did.
  {
    uint64_t offset = kHeaderBytes;
    for (size_t i = 0; i < kNumSections; ++i) {
      const uint64_t size = SectionBytes(i, counts, meta.weighted);
      const uint64_t actual = Checksum64(bytes + offset, size);
      if (actual != parsed.section_checksums[i] &&
          !(i == 10 && !meta.weighted)) {
        return Corrupt(path, StrCat("section ", i, " checksum mismatch"));
      }
      offset += size;
    }
  }

  ShardCut cut;
  cut.meta = meta;
  PartitionShard& shard = cut.shard;
  {
    const uint8_t* p = bytes + kHeaderBytes;
    CopySection(p, counts.owned + 1, &shard.out_offsets);
    p += SectionBytes(0, counts, meta.weighted);
    CopySection(p, counts.out_arcs, &shard.out_targets);
    p += SectionBytes(1, counts, meta.weighted);
    CopySection(p, counts.owned, &shard.out_arc_begin);
    p += SectionBytes(2, counts, meta.weighted);
    CopySection(p, counts.owned + 1, &shard.in_offsets);
    p += SectionBytes(3, counts, meta.weighted);
    CopySection(p, counts.in_arcs, &shard.in_sources);
    p += SectionBytes(4, counts, meta.weighted);
    CopySection(p, counts.in_arcs, &shard.in_arc_index);
    p += SectionBytes(5, counts, meta.weighted);
    CopySection(p, counts.dangling, &shard.dangling_owned);
    p += SectionBytes(6, counts, meta.weighted);
    CopySection(p, counts.boundary, &cut.boundary_sources);
    p += SectionBytes(7, counts, meta.weighted);
    CopySection(p, counts.boundary + 1, &cut.ghost_offsets);
    p += SectionBytes(8, counts, meta.weighted);
    CopySection(p, counts.ghost_arcs, &cut.ghost_targets);
    p += SectionBytes(9, counts, meta.weighted);
    if (meta.weighted) {
      CopySection(p, counts.out_arcs, &cut.out_weights);
      p += counts.out_arcs * 8;
      CopySection(p, counts.in_arcs, &cut.in_weights);
      p += counts.in_arcs * 8;
      CopySection(p, counts.ghost_arcs, &cut.ghost_weights);
    }
  }

  // --- structural validation: the file must DESCRIBE the shard the
  // ownership rule would cut, not merely checksum cleanly. ---
  const NodeId n = meta.num_nodes;
  const auto owner_of = [&](NodeId v) {
    return PartitionOwnerOf(meta.scheme, v, n, meta.num_shards);
  };

  // Owned list: derived, not stored — the rule is closed-form.
  shard.owned.reserve(static_cast<size_t>(counts.owned));
  for (NodeId v = 0; v < n; ++v) {
    if (owner_of(v) == meta.shard_id) shard.owned.push_back(v);
  }
  if (shard.owned.size() != counts.owned) {
    return Corrupt(path, StrCat("header claims ", counts.owned,
                                " owned nodes, the ownership rule assigns ",
                                shard.owned.size()));
  }

  // Out-CSR shape: monotone offsets bracketing ascending in-range rows,
  // each row anchored at a plausible global arc index, rows in ascending
  // disjoint global order (owned ids ascend, rows are whole graph rows).
  if (shard.out_offsets.front() != 0 ||
      shard.out_offsets.back() != static_cast<EdgeIndex>(counts.out_arcs)) {
    return Corrupt(path, "out-CSR offsets do not bracket the arc section");
  }
  for (size_t k = 0; k < shard.owned.size(); ++k) {
    const EdgeIndex begin = shard.out_offsets[k];
    const EdgeIndex end = shard.out_offsets[k + 1];
    if (end < begin) return Corrupt(path, "out-CSR offsets not monotone");
    NodeId prev = -1;
    for (EdgeIndex e = begin; e < end; ++e) {
      const NodeId t = shard.out_targets[static_cast<size_t>(e)];
      if (t < 0 || t >= n || t <= prev) {
        return Corrupt(path, StrCat("out-row of node ", shard.owned[k],
                                    " is not ascending in-range"));
      }
      prev = t;
    }
    const EdgeIndex arc_begin = shard.out_arc_begin[k];
    if (arc_begin < 0 || arc_begin + (end - begin) > meta.num_arcs ||
        (k > 0 && arc_begin < shard.out_arc_begin[k - 1] +
                                  (shard.out_offsets[k] -
                                   shard.out_offsets[k - 1]))) {
      return Corrupt(path, StrCat("out-row of node ", shard.owned[k],
                                  " has an implausible global arc index"));
    }
  }

  // In-CSR shape: strictly ascending sources per row, arc indexes in
  // range; interiority is derived from the ownership rule, boundary
  // counters recomputed.
  if (shard.in_offsets.front() != 0 ||
      shard.in_offsets.back() != static_cast<EdgeIndex>(counts.in_arcs)) {
    return Corrupt(path, "in-CSR offsets do not bracket the arc section");
  }
  shard.in_interior.resize(shard.in_sources.size());
  for (size_t k = 0; k < shard.owned.size(); ++k) {
    const EdgeIndex begin = shard.in_offsets[k];
    const EdgeIndex end = shard.in_offsets[k + 1];
    if (end < begin) return Corrupt(path, "in-CSR offsets not monotone");
    NodeId prev = -1;
    for (EdgeIndex e = begin; e < end; ++e) {
      const size_t idx = static_cast<size_t>(e);
      const NodeId src = shard.in_sources[idx];
      if (src < 0 || src >= n || src <= prev) {
        return Corrupt(path, StrCat("in-row of node ", shard.owned[k],
                                    " is not ascending in-range"));
      }
      prev = src;
      const EdgeIndex arc = shard.in_arc_index[idx];
      if (arc < 0 || arc >= meta.num_arcs) {
        return Corrupt(path, StrCat("in-arc index ", arc, " out of range"));
      }
      const bool interior = owner_of(src) == meta.shard_id;
      shard.in_interior[idx] = interior ? 1 : 0;
      if (!interior) ++shard.boundary_in_arcs;
    }
  }
  for (NodeId t : shard.out_targets) {
    if (owner_of(t) != meta.shard_id) ++shard.boundary_out_arcs;
  }

  // Dangling list: ascending owned nodes whose stored out-row is empty,
  // and COMPLETE (every empty owned row listed).
  {
    NodeId prev = -1;
    for (NodeId v : shard.dangling_owned) {
      if (v < 0 || v >= n || v <= prev || owner_of(v) != meta.shard_id) {
        return Corrupt(path, "dangling list is not ascending owned nodes");
      }
      prev = v;
      const auto it =
          std::lower_bound(shard.owned.begin(), shard.owned.end(), v);
      const size_t k = static_cast<size_t>(it - shard.owned.begin());
      if (shard.out_offsets[k + 1] != shard.out_offsets[k]) {
        return Corrupt(path, StrCat("dangling list names node ", v,
                                    " whose out-row is not empty"));
      }
    }
    uint64_t empty_rows = 0;
    for (size_t k = 0; k < shard.owned.size(); ++k) {
      if (shard.out_offsets[k + 1] == shard.out_offsets[k]) ++empty_rows;
    }
    if (empty_rows != counts.dangling) {
      return Corrupt(path, StrCat("dangling list holds ", counts.dangling,
                                  " nodes, the out-CSR has ", empty_rows,
                                  " empty rows"));
    }
  }

  // Boundary list: must equal the derivation from the in-CSR exactly.
  {
    std::vector<NodeId> derived;
    for (size_t idx = 0; idx < shard.in_sources.size(); ++idx) {
      if (!shard.in_interior[idx]) derived.push_back(shard.in_sources[idx]);
    }
    std::sort(derived.begin(), derived.end());
    derived.erase(std::unique(derived.begin(), derived.end()), derived.end());
    if (derived != cut.boundary_sources) {
      return Corrupt(path,
                     "boundary-source list disagrees with the in-CSR");
    }
  }

  // Ghost rows: one non-empty ascending in-range row per boundary source
  // (a boundary source, by construction, has at least the out-arc that
  // made it one).
  if (cut.ghost_offsets.front() != 0 ||
      cut.ghost_offsets.back() != static_cast<EdgeIndex>(counts.ghost_arcs)) {
    return Corrupt(path, "ghost offsets do not bracket the arc section");
  }
  for (size_t b = 0; b < cut.boundary_sources.size(); ++b) {
    const EdgeIndex begin = cut.ghost_offsets[b];
    const EdgeIndex end = cut.ghost_offsets[b + 1];
    if (end <= begin) {
      return Corrupt(path, StrCat("ghost row of boundary source ",
                                  cut.boundary_sources[b],
                                  " is empty or non-monotone"));
    }
    NodeId prev = -1;
    for (EdgeIndex e = begin; e < end; ++e) {
      const NodeId t = cut.ghost_targets[static_cast<size_t>(e)];
      if (t < 0 || t >= n || t <= prev) {
        return Corrupt(path, StrCat("ghost row of boundary source ",
                                    cut.boundary_sources[b],
                                    " is not ascending in-range"));
      }
      prev = t;
    }
  }

  return cut;
}

}  // namespace d2pr
