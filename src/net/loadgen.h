// Zipf load generator for the RPC front door.
//
// Real personalized-query traffic is heavily skewed: a few hot entities
// dominate. The generator reproduces that shape with a seeded Zipf draw
// over the node universe (P(node k) ∝ k^-s, datagen/distributions.h) —
// which is also what gives the server's coalescing and score cache
// something realistic to bite on: under s ≳ 1 the head nodes repeat
// often enough that identical requests overlap in flight.
//
// Shape: `connections` worker threads, each with its own RpcClient and
// its own Rng stream (seed ⊕ worker index — deterministic regardless of
// thread interleaving), each issuing `requests_per_connection` blocking
// calls. The report separates offered load from served load: percentiles
// and requests_per_s cover only OK responses (an admission reject's
// round-trip is a few microseconds of socket ping-pong, not a serve —
// mixing it in understates latency and inflates throughput exactly when
// the server saturates), while `attempted` / `attempted_per_s` keep the
// offered side visible next to the outcome tally (ok / unavailable /
// deadline-exceeded / failed), so a saturation run shows sheds and
// expiries without failing the run.

#ifndef D2PR_NET_LOADGEN_H_
#define D2PR_NET_LOADGEN_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "api/rank_request.h"
#include "common/result.h"

namespace d2pr {

/// \brief Load-generator knobs.
struct LoadGenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< Required (no default server to find).
  /// Concurrent connections (worker threads); each is one RpcClient.
  size_t connections = 4;
  size_t requests_per_connection = 100;
  /// Zipf exponent of the seed-popularity distribution.
  double zipf_s = 1.1;
  /// Seed universe size; 0 = ask the server (Info) and use num_nodes.
  int64_t zipf_n = 0;
  /// Fraction of requests issued as global (unseeded) queries instead of
  /// personalized ones, in [0, 1].
  double global_fraction = 0.0;
  /// Per-request deadline forwarded to the server; 0 = none.
  uint64_t deadline_ms = 0;
  uint64_t seed = 1;
  /// Template for every request; the generator only overwrites `seeds`.
  RankRequest base;
};

/// \brief Aggregate outcome of one load-generation run.
struct LoadGenReport {
  /// Requests issued, whatever their outcome (== ok + unavailable +
  /// deadline_exceeded + failed).
  size_t attempted = 0;
  size_t ok = 0;
  size_t unavailable = 0;        ///< Admission sheds.
  size_t deadline_exceeded = 0;  ///< Server-side expiries.
  size_t failed = 0;             ///< Everything else (transport, solver).
  double p50_us = 0.0;           ///< Median OK-response latency; 0 if none.
  double p99_us = 0.0;           ///< p99 over OK responses only.
  double elapsed_s = 0.0;
  double requests_per_s = 0.0;   ///< ok / elapsed: *served* throughput.
  double attempted_per_s = 0.0;  ///< attempted / elapsed: offered load.
};

/// \brief Runs the configured load against a live server and aggregates.
/// Fails only when the run cannot execute at all (no server, bad
/// options); per-request errors land in the report's tallies.
Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options);

}  // namespace d2pr

#endif  // D2PR_NET_LOADGEN_H_
