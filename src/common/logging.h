// Minimal leveled logging to stderr.
//
// Usage: D2PR_LOG(INFO) << "built graph with " << n << " nodes";
// The global level defaults to kInfo and can be lowered to silence output
// in tests or raised for debugging.

#ifndef D2PR_COMMON_LOGGING_H_
#define D2PR_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace d2pr {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Returns the mutable global minimum level; messages below it are
/// discarded.
LogLevel& GlobalLogLevel();

/// \brief Short tag ("DEBUG", "INFO", ...) for a level.
const char* LogLevelName(LogLevel level);

namespace internal {

/// \brief Buffers one log record and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace d2pr

#define D2PR_LOG(severity)                                        \
  ::d2pr::internal::LogMessage(::d2pr::LogLevel::k##severity,     \
                               __FILE__, __LINE__)

#endif  // D2PR_COMMON_LOGGING_H_
