// Cross-cutting invariance properties of the D2PR pipeline:
//  * permutation equivariance — relabeling nodes permutes scores,
//  * weight-scale invariance — multiplying all edge weights by a constant
//    changes nothing (both T_conn and Θ^-p normalize per row),
//  * solver determinism — identical inputs give bit-identical outputs,
//  * teleport composition — PPR over the union of seeds equals the mixture
//    of per-seed PPRs (linearity of the personalized fixed point).

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/d2pr.h"
#include "core/pagerank.h"
#include "core/teleport.h"
#include "datagen/classic_generators.h"
#include "graph/graph_builder.h"
#include "linalg/vec_ops.h"

namespace d2pr {
namespace {

class InvarianceTest : public ::testing::TestWithParam<double> {};

TEST_P(InvarianceTest, PermutationEquivariance) {
  Rng rng(11);
  auto graph = BarabasiAlbert(150, 3, &rng);
  ASSERT_TRUE(graph.ok());

  // Random relabeling.
  std::vector<NodeId> perm(150);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  rng.Shuffle(&perm);
  GraphBuilder builder(150, GraphKind::kUndirected);
  for (NodeId u = 0; u < 150; ++u) {
    for (NodeId v : graph->OutNeighbors(u)) {
      if (v > u) {
        ASSERT_TRUE(builder
                        .AddEdge(perm[static_cast<size_t>(u)],
                                 perm[static_cast<size_t>(v)])
                        .ok());
      }
    }
  }
  auto relabeled = builder.Build();
  ASSERT_TRUE(relabeled.ok());

  const D2prOptions options{.p = GetParam(), .tolerance = 1e-12};
  auto original = ComputeD2pr(*graph, options);
  auto permuted = ComputeD2pr(*relabeled, options);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(permuted.ok());
  for (NodeId v = 0; v < 150; ++v) {
    EXPECT_NEAR(original->scores[static_cast<size_t>(v)],
                permuted->scores[static_cast<size_t>(
                    perm[static_cast<size_t>(v)])],
                1e-9)
        << "node " << v << " p " << GetParam();
  }
}

TEST_P(InvarianceTest, WeightScaleInvariance) {
  Rng rng(13);
  auto topology = ErdosRenyi(80, 240, &rng);
  ASSERT_TRUE(topology.ok());
  auto build_weighted = [&](double scale) {
    GraphBuilder builder(80, GraphKind::kUndirected, /*weighted=*/true);
    Rng weights(99);  // same weight stream for both graphs
    for (NodeId u = 0; u < 80; ++u) {
      for (NodeId v : topology->OutNeighbors(u)) {
        if (v > u) {
          EXPECT_TRUE(
              builder.AddEdge(u, v, scale * (0.5 + weights.Uniform())).ok());
        }
      }
    }
    auto graph = builder.Build();
    EXPECT_TRUE(graph.ok());
    return std::move(graph).value();
  };
  const CsrGraph base = build_weighted(1.0);
  const CsrGraph scaled = build_weighted(7.5);

  const D2prOptions options{
      .p = GetParam(), .beta = 0.5, .tolerance = 1e-12};
  auto a = ComputeD2pr(base, options);
  auto b = ComputeD2pr(scaled, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(DiffLInf(a->scores, b->scores), 1e-10) << "p " << GetParam();
}

TEST_P(InvarianceTest, SolverDeterminism) {
  Rng rng(17);
  auto graph = BarabasiAlbert(200, 2, &rng);
  ASSERT_TRUE(graph.ok());
  const D2prOptions options{.p = GetParam()};
  auto a = ComputeD2pr(*graph, options);
  auto b = ComputeD2pr(*graph, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->scores, b->scores);  // bit-identical
  EXPECT_EQ(a->iterations, b->iterations);
}

INSTANTIATE_TEST_SUITE_P(PGrid, InvarianceTest,
                         ::testing::Values(-3.0, -1.0, 0.0, 0.5, 3.0));

TEST(TeleportLinearityTest, MixtureOfSeedsEqualsMixtureOfScores) {
  // The personalized fixed point is linear in the teleport vector:
  // scores(0.5·t_a + 0.5·t_b) == 0.5·scores(t_a) + 0.5·scores(t_b).
  Rng rng(19);
  auto graph = WattsStrogatz(120, 3, 0.2, &rng);
  ASSERT_TRUE(graph.ok());
  auto transition = TransitionMatrix::Build(*graph, {.p = 0.5});
  ASSERT_TRUE(transition.ok());
  PagerankOptions options;
  options.tolerance = 1e-13;
  options.max_iterations = 500;

  auto t_a = SeededTeleport(120, std::vector<NodeId>{10});
  auto t_b = SeededTeleport(120, std::vector<NodeId>{90});
  ASSERT_TRUE(t_a.ok());
  ASSERT_TRUE(t_b.ok());
  std::vector<double> t_mix(120);
  for (size_t i = 0; i < 120; ++i) t_mix[i] = 0.5 * (*t_a)[i] + 0.5 * (*t_b)[i];

  auto score_a = SolvePagerank(*graph, *transition, *t_a, options);
  auto score_b = SolvePagerank(*graph, *transition, *t_b, options);
  auto score_mix = SolvePagerank(*graph, *transition, t_mix, options);
  ASSERT_TRUE(score_a.ok());
  ASSERT_TRUE(score_b.ok());
  ASSERT_TRUE(score_mix.ok());
  for (size_t i = 0; i < 120; ++i) {
    EXPECT_NEAR(score_mix->scores[i],
                0.5 * score_a->scores[i] + 0.5 * score_b->scores[i], 1e-10);
  }
}

TEST(DuplicateEdgeSemanticsTest, RepeatedUnweightedEdgesCollapse) {
  // Adding the same unweighted edge twice must not change the walk.
  GraphBuilder once(4, GraphKind::kUndirected);
  GraphBuilder twice(4, GraphKind::kUndirected);
  const std::pair<NodeId, NodeId> edges[] = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  for (auto [u, v] : edges) {
    ASSERT_TRUE(once.AddEdge(u, v).ok());
    ASSERT_TRUE(twice.AddEdge(u, v).ok());
    ASSERT_TRUE(twice.AddEdge(u, v).ok());
  }
  auto g_once = once.Build(DuplicatePolicy::kKeepFirst);
  auto g_twice = twice.Build(DuplicatePolicy::kKeepFirst);
  ASSERT_TRUE(g_once.ok());
  ASSERT_TRUE(g_twice.ok());
  EXPECT_TRUE(*g_once == *g_twice);
}

TEST(AlphaContinuityTest, ScoresVaryContinuouslyInAlpha) {
  // Small alpha perturbations must produce small score changes — a guard
  // against discontinuities in dangling/teleport handling.
  Rng rng(23);
  auto graph = BarabasiAlbert(100, 2, &rng);
  ASSERT_TRUE(graph.ok());
  D2prOptions a{.p = 1.0, .alpha = 0.85, .tolerance = 1e-12};
  D2prOptions b{.p = 1.0, .alpha = 0.8501, .tolerance = 1e-12};
  auto score_a = ComputeD2pr(*graph, a);
  auto score_b = ComputeD2pr(*graph, b);
  ASSERT_TRUE(score_a.ok());
  ASSERT_TRUE(score_b.ok());
  EXPECT_LT(DiffL1(score_a->scores, score_b->scores), 1e-2);
}

}  // namespace
}  // namespace d2pr
