#include "graph/traversal.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace d2pr {
namespace {

CsrGraph TwoComponents() {
  // Component {0,1,2} (triangle) and component {3,4} (edge); 5 isolated.
  GraphBuilder builder(6, GraphKind::kUndirected);
  EXPECT_TRUE(builder.AddEdge(0, 1).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2).ok());
  EXPECT_TRUE(builder.AddEdge(2, 0).ok());
  EXPECT_TRUE(builder.AddEdge(3, 4).ok());
  auto graph = builder.Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(BfsTest, DistancesOnPath) {
  GraphBuilder builder(5, GraphKind::kUndirected);
  for (NodeId v = 0; v + 1 < 5; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, v + 1).ok());
  }
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  const std::vector<int64_t> dist = BfsDistances(*graph, 0);
  EXPECT_EQ(dist, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(BfsTest, UnreachableIsMinusOne) {
  const std::vector<int64_t> dist = BfsDistances(TwoComponents(), 0);
  EXPECT_EQ(dist[3], -1);
  EXPECT_EQ(dist[4], -1);
  EXPECT_EQ(dist[5], -1);
  EXPECT_EQ(dist[1], 1);
}

TEST(BfsTest, DirectedRespectsArcDirection) {
  GraphBuilder builder(3, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(BfsDistances(*graph, 0), (std::vector<int64_t>{0, 1, 2}));
  EXPECT_EQ(BfsDistances(*graph, 2), (std::vector<int64_t>{-1, -1, 0}));
}

TEST(ComponentsTest, CountsAndLargest) {
  Components comps = ConnectedComponents(TwoComponents());
  EXPECT_EQ(comps.count, 3);
  EXPECT_EQ(comps.largest_size, 3);
  EXPECT_EQ(comps.label[0], comps.label[1]);
  EXPECT_EQ(comps.label[1], comps.label[2]);
  EXPECT_EQ(comps.label[3], comps.label[4]);
  EXPECT_NE(comps.label[0], comps.label[3]);
  EXPECT_NE(comps.label[5], comps.label[0]);
  EXPECT_NE(comps.label[5], comps.label[3]);
}

TEST(ComponentsTest, DirectedUsesWeakConnectivity) {
  GraphBuilder builder(4, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(2, 1).ok());  // 2 reaches 1 but not vice versa
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  Components comps = ConnectedComponents(*graph);
  EXPECT_EQ(comps.count, 2);  // {0,1,2} weakly connected, {3}
  EXPECT_EQ(comps.label[0], comps.label[2]);
}

TEST(LargestComponentTest, ExtractsAndRemaps) {
  Subgraph sub = LargestComponentSubgraph(TwoComponents());
  EXPECT_EQ(sub.graph.num_nodes(), 3);
  EXPECT_EQ(sub.graph.num_edges(), 3);  // the triangle
  EXPECT_EQ(sub.original_id.size(), 3u);
  // Ids 0, 1, 2 in some order, compacted.
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_LT(sub.original_id[static_cast<size_t>(v)], 3);
    EXPECT_EQ(sub.graph.OutDegree(v), 2);
  }
}

TEST(LargestComponentTest, PreservesWeights) {
  GraphBuilder builder(4, GraphKind::kUndirected, /*weighted=*/true);
  ASSERT_TRUE(builder.AddEdge(0, 1, 5.0).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2, 7.0).ok());
  // Node 3 isolated.
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  Subgraph sub = LargestComponentSubgraph(*graph);
  EXPECT_EQ(sub.graph.num_nodes(), 3);
  EXPECT_TRUE(sub.graph.weighted());
  double total = 0.0;
  for (NodeId v = 0; v < sub.graph.num_nodes(); ++v) {
    total += sub.graph.OutStrength(v);
  }
  EXPECT_DOUBLE_EQ(total, 2 * (5.0 + 7.0));
}

TEST(LargestComponentTest, FullyConnectedGraphIsUnchanged) {
  GraphBuilder builder(3, GraphKind::kUndirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  Subgraph sub = LargestComponentSubgraph(*graph);
  EXPECT_TRUE(sub.graph == *graph);
  EXPECT_EQ(sub.original_id, (std::vector<NodeId>{0, 1, 2}));
}

}  // namespace
}  // namespace d2pr
