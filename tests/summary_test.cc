#include "stats/summary.h"

#include <vector>

#include <gtest/gtest.h>

namespace d2pr {
namespace {

TEST(SummaryTest, BasicMoments) {
  std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  Summary s = Summarize(values);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic example
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(SummaryTest, EmptySample) {
  Summary s = Summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(SummaryTest, SingleElement) {
  Summary s = Summarize(std::vector<double>{3.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
}

TEST(QuantileTest, MedianOddAndEven) {
  std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(odd, 0.5), 2.0);
  std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(even, 0.5), 2.5);
}

TEST(QuantileTest, Extremes) {
  std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.75), 7.5);
}

TEST(QuantileTest, EmptyGivesZero) {
  EXPECT_DOUBLE_EQ(Quantile(std::vector<double>{}, 0.5), 0.0);
}

TEST(QuantileDeathTest, OutOfRangeQAborts) {
  std::vector<double> v{1.0};
  EXPECT_DEATH((void)Quantile(v, -0.1), "CHECK failed");
  EXPECT_DEATH((void)Quantile(v, 1.1), "CHECK failed");
}

}  // namespace
}  // namespace d2pr
