#include "core/pagerank.h"

#include <cmath>

#include "common/string_util.h"
#include "core/teleport.h"
#include "linalg/vec_ops.h"

namespace d2pr {

Status ValidatePagerankOptions(const PagerankOptions& options) {
  if (!(options.alpha >= 0.0) || options.alpha >= 1.0) {
    return Status::InvalidArgument(
        StrCat("alpha must lie in [0, 1), got ", options.alpha));
  }
  if (!(options.tolerance > 0.0)) {
    return Status::InvalidArgument(
        StrCat("tolerance must be positive, got ", options.tolerance));
  }
  if (options.max_iterations < 1) {
    return Status::InvalidArgument(
        StrCat("max_iterations must be >= 1, got ", options.max_iterations));
  }
  return Status::OK();
}

Status ValidateTeleportVector(std::span<const double> teleport,
                              NodeId num_nodes) {
  if (teleport.size() != static_cast<size_t>(num_nodes)) {
    return Status::InvalidArgument(
        StrCat("teleport size ", teleport.size(), " != num nodes ",
               num_nodes));
  }
  double sum = 0.0;
  for (double t : teleport) {
    if (t < 0.0) {
      return Status::InvalidArgument("teleport entries must be >= 0");
    }
    sum += t;
  }
  if (num_nodes > 0 && std::abs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument(
        StrCat("teleport must sum to 1, got ", sum));
  }
  return Status::OK();
}

Result<PagerankResult> SolvePagerank(const CsrGraph& graph,
                                     const TransitionMatrix& transition,
                                     std::span<const double> teleport,
                                     const PagerankOptions& options) {
  return SolvePagerankFrom(graph, transition, teleport, teleport, options);
}

Result<PagerankResult> SolvePagerankFrom(const CsrGraph& graph,
                                         const TransitionMatrix& transition,
                                         std::span<const double> teleport,
                                         std::span<const double> initial,
                                         const PagerankOptions& options) {
  D2PR_RETURN_NOT_OK(ValidatePagerankOptions(options));
  const NodeId n = graph.num_nodes();
  if (n != transition.num_nodes()) {
    return Status::InvalidArgument(
        StrCat("graph has ", n, " nodes but transition matrix has ",
               transition.num_nodes()));
  }
  D2PR_RETURN_NOT_OK(ValidateTeleportVector(teleport, n));
  if (initial.size() != static_cast<size_t>(n)) {
    return Status::InvalidArgument("initial vector size mismatch");
  }
  for (double v : initial) {
    if (v < 0.0) {
      return Status::InvalidArgument("initial entries must be >= 0");
    }
  }

  PagerankResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  const std::vector<NodeId> dangling = transition.DanglingNodes();
  std::vector<double> current(initial.begin(), initial.end());
  NormalizeL1(current);  // defensive: keep the iterate a distribution
  std::vector<double> next(static_cast<size_t>(n), 0.0);

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    transition.Multiply(graph, current, next);

    double dangling_mass = 0.0;
    for (NodeId v : dangling) dangling_mass += current[static_cast<size_t>(v)];

    switch (options.dangling) {
      case DanglingPolicy::kTeleport:
        if (dangling_mass > 0.0) {
          for (NodeId v = 0; v < n; ++v) {
            next[static_cast<size_t>(v)] +=
                dangling_mass * teleport[static_cast<size_t>(v)];
          }
        }
        break;
      case DanglingPolicy::kSelfLoop:
        for (NodeId v : dangling) {
          next[static_cast<size_t>(v)] += current[static_cast<size_t>(v)];
        }
        break;
      case DanglingPolicy::kRenormalize:
        // Mass is dropped here; the blend below plus the final renormalize
        // keeps the iterate a distribution.
        break;
    }

    for (NodeId v = 0; v < n; ++v) {
      next[static_cast<size_t>(v)] =
          options.alpha * next[static_cast<size_t>(v)] +
          (1.0 - options.alpha) * teleport[static_cast<size_t>(v)];
    }
    if (options.dangling == DanglingPolicy::kRenormalize) {
      NormalizeL1(next);
    }

    result.iterations = iter;
    result.residual = DiffL1(next, current);
    current.swap(next);
    if (result.residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.scores = std::move(current);
  return result;
}

Result<PagerankResult> SolvePagerank(const CsrGraph& graph,
                                     const TransitionMatrix& transition,
                                     const PagerankOptions& options) {
  const std::vector<double> teleport = UniformTeleport(graph.num_nodes());
  return SolvePagerank(graph, transition, teleport, options);
}

}  // namespace d2pr
