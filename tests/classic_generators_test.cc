#include "datagen/classic_generators.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "graph/graph_stats.h"
#include "graph/traversal.h"

namespace d2pr {
namespace {

TEST(ErdosRenyiTest, ExactEdgeCount) {
  Rng rng(1);
  auto graph = ErdosRenyi(100, 500, &rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 100);
  EXPECT_EQ(graph->num_edges(), 500);
  // No self loops.
  for (NodeId v = 0; v < 100; ++v) EXPECT_FALSE(graph->HasArc(v, v));
}

TEST(ErdosRenyiTest, RejectsImpossibleEdgeCounts) {
  Rng rng(2);
  EXPECT_FALSE(ErdosRenyi(4, 7, &rng).ok());  // max is 6
  EXPECT_FALSE(ErdosRenyi(4, -1, &rng).ok());
  EXPECT_TRUE(ErdosRenyi(4, 6, &rng).ok());  // complete graph OK
}

TEST(ErdosRenyiTest, ZeroEdges) {
  Rng rng(3);
  auto graph = ErdosRenyi(10, 0, &rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_arcs(), 0);
}

TEST(ErdosRenyiTest, DeterministicGivenRngState) {
  Rng a(7), b(7);
  auto ga = ErdosRenyi(60, 150, &a);
  auto gb = ErdosRenyi(60, 150, &b);
  ASSERT_TRUE(ga.ok());
  ASSERT_TRUE(gb.ok());
  EXPECT_TRUE(*ga == *gb);
}

TEST(BarabasiAlbertTest, DegreeBoundsAndConnectivity) {
  Rng rng(4);
  const int m = 3;
  auto graph = BarabasiAlbert(500, m, &rng);
  ASSERT_TRUE(graph.ok());
  // Every non-seed node attaches with exactly m edges, so min degree >= m.
  GraphStats stats = ComputeGraphStats(*graph);
  EXPECT_GE(stats.min_degree, m);
  // Preferential attachment keeps the graph connected.
  Components comps = ConnectedComponents(*graph);
  EXPECT_EQ(comps.count, 1);
  // Edge count: seed clique + m per added node.
  const int64_t seed_edges = (m + 1) * m / 2;
  EXPECT_EQ(graph->num_edges(), seed_edges + (500 - (m + 1)) * m);
}

TEST(BarabasiAlbertTest, ProducesHeavyTail) {
  Rng rng(5);
  auto graph = BarabasiAlbert(2000, 2, &rng);
  ASSERT_TRUE(graph.ok());
  GraphStats stats = ComputeGraphStats(*graph);
  // Hubs far above the mean are the signature of preferential attachment.
  EXPECT_GT(static_cast<double>(stats.max_degree), 8.0 * stats.avg_degree);
}

TEST(BarabasiAlbertTest, RejectsBadParameters) {
  Rng rng(6);
  EXPECT_FALSE(BarabasiAlbert(5, 0, &rng).ok());
  EXPECT_FALSE(BarabasiAlbert(3, 3, &rng).ok());
}

TEST(WattsStrogatzTest, ZeroRewireIsRingLattice) {
  Rng rng(7);
  auto graph = WattsStrogatz(20, 2, 0.0, &rng);
  ASSERT_TRUE(graph.ok());
  // Every node has exactly 2k = 4 neighbors.
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(graph->OutDegree(v), 4);
  EXPECT_TRUE(graph->HasArc(0, 1));
  EXPECT_TRUE(graph->HasArc(0, 2));
  EXPECT_TRUE(graph->HasArc(0, 19));
  EXPECT_TRUE(graph->HasArc(0, 18));
}

TEST(WattsStrogatzTest, RewirePreservesEdgeCount) {
  Rng rng(8);
  auto graph = WattsStrogatz(100, 3, 0.3, &rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 300);  // n*k edges
}

TEST(WattsStrogatzTest, FullRewireChangesStructure) {
  Rng rng(9);
  auto lattice = WattsStrogatz(200, 2, 0.0, &rng);
  auto random = WattsStrogatz(200, 2, 1.0, &rng);
  ASSERT_TRUE(lattice.ok());
  ASSERT_TRUE(random.ok());
  EXPECT_FALSE(*lattice == *random);
  // Rewiring creates degree variance where the lattice had none.
  GraphStats stats = ComputeGraphStats(*random);
  EXPECT_GT(stats.stddev_degree, 0.0);
}

TEST(WattsStrogatzTest, RejectsBadParameters) {
  Rng rng(10);
  EXPECT_FALSE(WattsStrogatz(10, 0, 0.1, &rng).ok());
  EXPECT_FALSE(WattsStrogatz(10, 5, 0.1, &rng).ok());   // 2k >= n
  EXPECT_FALSE(WattsStrogatz(10, 2, -0.1, &rng).ok());
  EXPECT_FALSE(WattsStrogatz(10, 2, 1.1, &rng).ok());
}

TEST(ChungLuTest, ExpectedDegreesApproximatelyRealized) {
  Rng rng(11);
  const int n = 2000;
  std::vector<double> expected(n, 10.0);
  for (int i = 0; i < 100; ++i) expected[static_cast<size_t>(i)] = 50.0;
  auto graph = ChungLu(expected, &rng);
  ASSERT_TRUE(graph.ok());
  double high = 0.0, low = 0.0;
  for (int i = 0; i < 100; ++i) {
    high += static_cast<double>(graph->OutDegree(i));
  }
  for (int i = 100; i < n; ++i) {
    low += static_cast<double>(graph->OutDegree(i));
  }
  EXPECT_NEAR(high / 100.0, 50.0, 5.0);
  EXPECT_NEAR(low / (n - 100.0), 10.0, 1.0);
}

TEST(ChungLuTest, ZeroWeightNodesStayIsolated) {
  Rng rng(12);
  std::vector<double> expected{5.0, 5.0, 0.0, 5.0};
  auto graph = ChungLu(expected, &rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->OutDegree(2), 0);
}

TEST(ChungLuTest, RejectsNegativeOrDegenerateWeights) {
  Rng rng(13);
  EXPECT_FALSE(ChungLu({1.0, -1.0}, &rng).ok());
  EXPECT_FALSE(ChungLu({0.0, 0.0}, &rng).ok());
}

}  // namespace
}  // namespace d2pr
