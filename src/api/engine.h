// D2prEngine: the serving facade of the library.
//
// The paper's methodology — and any production deployment of it — is many
// solves over one graph: sweeps of p, alpha, and beta, auto-tuning probes,
// and per-user personalized queries. The engine is constructed once per
// graph and amortizes everything that does not depend on the individual
// query:
//
//   * the CsrGraph itself (owned or borrowed),
//   * an LRU cache of TransitionMatrix instances keyed by (p, beta,
//     metric) — the dominant per-query setup cost,
//   * a warm-start store: previous solutions, keyed by caller-chosen tag,
//     reused (with linear extrapolation along a parameter trajectory) as
//     starting iterates for nearby queries,
//   * the uniform teleportation vector.
//
// Queries go through one RankRequest / RankResponse pair regardless of
// solver (power iteration, Gauss-Seidel, forward push) and personalization
// (global or seeded). Cumulative EngineStats counters expose build/hit/
// iteration accounting for telemetry and efficiency tests.
//
//   CsrGraph graph = ...;
//   D2prEngine engine(std::move(graph));
//   auto response = engine.Rank({.p = 0.5, .alpha = 0.85});
//   if (response.ok()) use(response->scores);
//
// The legacy free functions (ComputeD2pr, SweepP, TuneDecouplingWeight,
// ...) are thin wrappers over a borrowing engine, so all call sites share
// one code path.
//
// Thread-safety: none yet — one engine per thread, or external locking.
// The planned thread-pool RankBatch (ROADMAP) will internalize this.

#ifndef D2PR_API_ENGINE_H_
#define D2PR_API_ENGINE_H_

#include <list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/rank_request.h"
#include "api/transition_cache.h"
#include "common/result.h"
#include "core/d2pr.h"
#include "core/transition.h"
#include "graph/csr_graph.h"

namespace d2pr {

/// \brief Engine construction knobs.
struct EngineOptions {
  /// Max TransitionMatrix instances kept alive. The default comfortably
  /// holds the paper's p grid (17 points) plus tuner refinement probes.
  size_t transition_cache_capacity = 32;
  /// Max distinct warm-start tags retained (each holds the last two
  /// solutions of its trajectory).
  size_t warm_start_capacity = 8;
};

/// \brief One-per-graph ranking engine with cached transitions, warm
/// starts, and pluggable solvers.
class D2prEngine {
 public:
  /// Takes ownership of `graph`.
  explicit D2prEngine(CsrGraph graph, const EngineOptions& options = {});

  /// Shares ownership of an already-managed graph.
  explicit D2prEngine(std::shared_ptr<const CsrGraph> graph,
                      const EngineOptions& options = {});

  /// Borrows `graph` without copying it. The caller must keep `graph`
  /// alive for the engine's lifetime — the pattern the legacy free
  /// functions use for their call-scoped engines.
  static D2prEngine Borrowing(const CsrGraph& graph,
                              const EngineOptions& options = {});

  const CsrGraph& graph() const { return *graph_; }

  /// Cumulative counters since construction or the last ResetStats().
  const EngineStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EngineStats{}; }

  /// Drops cached transitions and warm-start solutions (counters are
  /// kept; pair with ResetStats() for a full reset).
  void ClearCaches();

  /// \brief Executes one ranking query.
  ///
  /// Returns InvalidArgument for parameter errors (propagated from the
  /// transition builder and solvers: beta outside [0, 1], alpha outside
  /// [0, 1), bad seeds, ...).
  Result<RankResponse> Rank(const RankRequest& request);

  /// \brief Executes queries in order, failing fast on the first error.
  ///
  /// Requests within a batch see each other's cache and warm-start
  /// effects, in order; a batch is deterministic and equivalent to the
  /// same sequence of Rank() calls.
  Result<std::vector<RankResponse>> RankBatch(
      std::span<const RankRequest> requests);

  /// \brief Drops the stored trajectory under `tag` (no-op when absent).
  ///
  /// Sweeps call this before their first point so a re-run does not
  /// warm-start p = -4 from the far end (p = +4) of the previous run.
  void ForgetWarmStart(const std::string& tag);

 private:
  /// The last two solutions of one warm-start trajectory, newest first.
  struct WarmSnapshot {
    double p = 0.0;
    double beta = 0.0;
    double alpha = 0.0;
    DegreeMetric metric = DegreeMetric::kOutDegree;
    DanglingPolicy dangling = DanglingPolicy::kTeleport;
    std::vector<NodeId> seeds;
    std::vector<double> scores;
  };
  struct WarmEntry {
    std::string tag;
    std::vector<WarmSnapshot> snapshots;  // size <= 2, newest first
  };

  Result<std::shared_ptr<const TransitionMatrix>> GetTransition(
      const TransitionKey& key, bool* cache_hit);

  /// Returns the starting iterate for a power solve under `request`, or an
  /// empty vector when no compatible warm start exists. When two
  /// compatible snapshots differ in exactly one of (p, beta, alpha), the
  /// start is linearly extrapolated along that coordinate toward the
  /// requested value, which typically saves further iterations over
  /// restarting from the most recent solution alone.
  std::vector<double> WarmStartFor(const RankRequest& request,
                                   const TransitionKey& key);

  /// Records `scores` as the newest snapshot under the request's tag.
  void StoreWarmStart(const RankRequest& request, const TransitionKey& key,
                      const std::vector<double>& scores);

  /// Finds the trajectory stored under `tag`, refreshing its LRU recency;
  /// warm_entries_.end() when absent.
  std::list<WarmEntry>::iterator FindWarmEntry(const std::string& tag);

  std::shared_ptr<const CsrGraph> graph_;
  EngineOptions options_;
  TransitionCache transition_cache_;
  std::list<WarmEntry> warm_entries_;  // front = most recently used
  std::vector<double> uniform_teleport_;
  EngineStats stats_;
};

/// \brief Translates the legacy one-shot options into a RankRequest
/// (uniform teleport, power iteration, no warm start).
RankRequest ToRankRequest(const D2prOptions& options);

/// \brief Converts an engine response into the legacy solver result type,
/// dropping the engine-only diagnostics.
PagerankResult ToPagerankResult(RankResponse response);

}  // namespace d2pr

#endif  // D2PR_API_ENGINE_H_
