// Pre-cut shard files: one self-describing file per partition block, so
// a `d2pr_server --shard-file` process hosts its shard WITHOUT ever
// loading (or regenerating) the whole graph — the memory win
// distribution is supposed to buy. `d2pr_partition_cut` partitions a
// graph once and writes one file per shard; ShardWorker loads exactly
// one.
//
// What one file carries (everything a ShardWorker needs that is not
// derivable closed-form from the metadata):
//
//   * the shard's out-CSR — its owned rows with GLOBAL target ids and
//     the global arc index of each row, exactly PartitionShard's forward
//     slice, so the shard can normalize its own rows for the de-coupled
//     transition model;
//   * the shard's in-CSR — owned destinations' incoming arcs in strictly
//     ascending source order, each with its global arc index (the fold
//     order the solvers' bit-parity contract requires);
//   * the ascending dangling-owned and boundary-source lists the
//     handshake publishes;
//   * GHOST ROWS: the full out-row of every boundary source. A shard's
//     transition slice needs each in-arc source's row-normalization
//     state (softmax max, row sum, out-strength); for boundary sources
//     that row lives on another shard. Shipping those rows in the cut —
//     they are static graph structure, O(boundary) rows — lets the
//     worker recompute the state locally with the exact fold order the
//     owner shard would use, keeping the slice bitwise identical to
//     BuildTransitionSlicesLocal. The only whole-graph-sized input left
//     is the O(|V|) metric vector, which the coordinator broadcasts in
//     the solve-begin frame;
//   * for weighted graphs, the weights of all three arc families
//     (out rows, in-CSR positions — pre-gathered through the global arc
//     index at cut time — and ghost rows), so the beta blend never needs
//     the global weight array.
//
// Container conventions follow api/transition_store.cc: 8-byte magic,
// format version, fixed header with per-section Checksum64s and a header
// checksum, exact-size check, atomic save via unique temp + fsync +
// rename, mmap-backed load. A loader validates STRUCTURE, not just
// checksums: owned counts against the closed-form ownership rule
// (PartitionOwnerOf), offset monotonicity, id ranges, sorted-unique
// rows, dangling/boundary list consistency — a file that lies about its
// shape is rejected with a distinct IoError, never trusted into an
// allocation or a wrong solve.

#ifndef D2PR_GRAPH_SHARD_CUT_H_
#define D2PR_GRAPH_SHARD_CUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "graph/partition.h"
#include "graph/types.h"

namespace d2pr {

/// \brief The identity block of a cut file — everything checkable
/// without reading payload sections (ReadShardCutMetadata stops here).
struct ShardCutMetadata {
  uint64_t graph_fingerprint = 0;
  /// GLOBAL node / arc totals of the graph the cut was taken from.
  NodeId num_nodes = 0;
  EdgeIndex num_arcs = 0;
  PartitionScheme scheme = PartitionScheme::kRange;
  uint32_t shard_id = 0;
  uint32_t num_shards = 1;
  bool directed = false;
  bool weighted = false;
};

/// \brief One loaded cut: the shard's PartitionShard (out-CSR included)
/// plus the ghost rows and weight arrays the matrix-free slice build
/// needs. All node ids are global.
struct ShardCut {
  ShardCutMetadata meta;

  /// Bit-for-bit the PartitionShard GraphPartition::Build(out_csr=true)
  /// produces for this shard (tests/shard_cut_test.cc cross-checks every
  /// field), including the derived owned list, in_interior bits, and
  /// boundary counters the loader reconstructs from the ownership rule.
  PartitionShard shard;

  /// Distinct non-owned sources of the in-CSR, ascending global ids —
  /// the published boundary order of the handshake ack.
  std::vector<NodeId> boundary_sources;

  // --- ghost rows: boundary_sources[b]'s full out-row ---
  /// Row boundaries into ghost_targets; size boundary_sources.size() + 1.
  std::vector<EdgeIndex> ghost_offsets;
  /// Global target ids, ascending within each row.
  std::vector<NodeId> ghost_targets;

  // --- per-arc weights (empty unless meta.weighted) ---
  /// Aligned with shard.out_targets.
  std::vector<double> out_weights;
  /// Aligned with shard.in_sources: the weight of the forward arc at
  /// shard.in_arc_index[idx], pre-gathered at cut time so the worker
  /// never touches the global weight array.
  std::vector<double> in_weights;
  /// Aligned with ghost_targets.
  std::vector<double> ghost_weights;

  /// Bytes of graph-shaped payload this cut holds in memory — the
  /// byte-accounting input for the resident-memory ~1/N proof
  /// (tests/dist_cut_test.cc, results/dist_bench.md).
  int64_t payload_bytes() const;
};

/// \brief Canonical file name of one shard's cut:
/// "cut-<fingerprint16>-<scheme>-s<shard>of<N>.d2psc".
std::string ShardCutFileName(uint64_t graph_fingerprint,
                             PartitionScheme scheme, size_t num_shards,
                             size_t shard_id);

/// \brief Writes shard `shard_id` of `partition` (which must have been
/// built from `graph` with build_out_csr = true) to `path`, atomically
/// (unique temp + fsync + rename). InvalidArgument for a bad shard id or
/// a partition built without the out-CSR; IoError on filesystem
/// failures.
Status SaveShardCut(const CsrGraph& graph, const GraphPartition& partition,
                    size_t shard_id, const std::string& path);

/// \brief Loads and fully validates one cut file. IoError for anything
/// corrupt (bad magic, checksum or size mismatch, structural lies);
/// FailedPrecondition for a format version this build does not read.
Result<ShardCut> LoadShardCut(const std::string& path);

/// \brief Reads only the metadata block (header gates still apply:
/// magic, version, header checksum) — the cheap peek `d2pr_cluster
/// --cut-dir` uses to cross-check a directory of cuts against its graph
/// before any server is contacted.
Result<ShardCutMetadata> ReadShardCutMetadata(const std::string& path);

}  // namespace d2pr

#endif  // D2PR_GRAPH_SHARD_CUT_H_
