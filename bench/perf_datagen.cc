// Microbenchmarks for the synthetic data substrate.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "datagen/bipartite_world.h"
#include "datagen/classic_generators.h"
#include "datagen/dataset_registry.h"

namespace d2pr {
namespace {

void BM_BipartiteWorld(benchmark::State& state) {
  BipartiteWorldConfig config;
  config.num_members = static_cast<NodeId>(state.range(0));
  config.num_venues = static_cast<NodeId>(state.range(0) / 2);
  config.venue_size_min = 2;
  config.venue_size_max = 15;
  config.cost_quality_slope = 2.0;
  config.budget_mean = 10.0;
  for (auto _ : state) {
    auto world = GenerateBipartiteWorld(config);
    benchmark::DoNotOptimize(world->TotalMemberships());
  }
}
BENCHMARK(BM_BipartiteWorld)->Arg(2000)->Arg(10000);

void BM_ErdosRenyi(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    auto graph =
        ErdosRenyi(static_cast<NodeId>(state.range(0)),
                   4 * state.range(0), &rng);
    benchmark::DoNotOptimize(graph->num_arcs());
  }
}
BENCHMARK(BM_ErdosRenyi)->Arg(10000)->Arg(50000);

void BM_BarabasiAlbert(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    auto graph =
        BarabasiAlbert(static_cast<NodeId>(state.range(0)), 4, &rng);
    benchmark::DoNotOptimize(graph->num_arcs());
  }
}
BENCHMARK(BM_BarabasiAlbert)->Arg(10000)->Arg(50000);

void BM_RegistryGraph(benchmark::State& state) {
  RegistryOptions options;
  options.scale = 0.5;
  for (auto _ : state) {
    auto data =
        MakePaperGraph(PaperGraphId::kImdbActorActor, options);
    benchmark::DoNotOptimize(data->unweighted.num_arcs());
  }
}
BENCHMARK(BM_RegistryGraph);

}  // namespace
}  // namespace d2pr

BENCHMARK_MAIN();
