#include "datagen/ratings.h"

#include <gtest/gtest.h>

#include "datagen/bipartite_world.h"
#include "stats/correlation.h"

namespace d2pr {
namespace {

BipartiteWorld SmallWorld() {
  BipartiteWorldConfig config;
  config.num_members = 300;
  config.num_venues = 150;
  config.venue_size_min = 2;
  config.venue_size_max = 10;
  config.budget_mean = 8.0;
  config.seed = 5;
  auto world = GenerateBipartiteWorld(config);
  EXPECT_TRUE(world.ok());
  return std::move(world).value();
}

TEST(RatingsTest, TableShapeAndBounds) {
  const BipartiteWorld world = SmallWorld();
  RatingsConfig config;
  config.num_users = 200;
  config.ratings_per_user = 15;
  auto table = GenerateRatings(world, config);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->ratings.size(), 200u * 15u);
  EXPECT_EQ(table->venue_mean.size(), 150u);
  for (const Rating& rating : table->ratings) {
    EXPECT_GE(rating.stars, 1.0);
    EXPECT_LE(rating.stars, 5.0);
    EXPECT_GE(rating.item, 0);
    EXPECT_LT(rating.item, 150);
    EXPECT_GE(rating.user, 0);
    EXPECT_LT(rating.user, 200);
  }
}

TEST(RatingsTest, EachUserRatesDistinctItems) {
  const BipartiteWorld world = SmallWorld();
  RatingsConfig config;
  config.num_users = 50;
  config.ratings_per_user = 20;
  auto table = GenerateRatings(world, config);
  ASSERT_TRUE(table.ok());
  std::set<std::pair<int32_t, NodeId>> seen;
  for (const Rating& rating : table->ratings) {
    EXPECT_TRUE(seen.insert({rating.user, rating.item}).second)
        << "duplicate rating by user " << rating.user;
  }
}

TEST(RatingsTest, MeansTrackVenueQuality) {
  const BipartiteWorld world = SmallWorld();
  RatingsConfig config;
  config.num_users = 1500;
  config.ratings_per_user = 30;
  config.taste_sigma = 0.3;
  config.user_bias_sigma = 0.2;
  auto table = GenerateRatings(world, config);
  ASSERT_TRUE(table.ok());
  EXPECT_GT(SpearmanCorrelation(table->venue_mean, world.venue_quality),
            0.8);
}

TEST(RatingsTest, VenueCountsMatchTable) {
  const BipartiteWorld world = SmallWorld();
  RatingsConfig config;
  config.num_users = 100;
  config.ratings_per_user = 10;
  auto table = GenerateRatings(world, config);
  ASSERT_TRUE(table.ok());
  std::vector<int32_t> counts(150, 0);
  for (const Rating& rating : table->ratings) {
    ++counts[static_cast<size_t>(rating.item)];
  }
  EXPECT_EQ(counts, table->venue_count);
}

TEST(RatingsTest, PopularityBiasSkewsCoverage) {
  const BipartiteWorld world = SmallWorld();
  RatingsConfig uniform;
  uniform.num_users = 400;
  uniform.ratings_per_user = 10;
  uniform.popularity_exponent = 0.0;
  RatingsConfig biased = uniform;
  biased.popularity_exponent = 2.0;
  auto t_uniform = GenerateRatings(world, uniform);
  auto t_biased = GenerateRatings(world, biased);
  ASSERT_TRUE(t_uniform.ok());
  ASSERT_TRUE(t_biased.ok());
  // Count std-dev is larger under popularity bias.
  auto spread = [](const std::vector<int32_t>& counts) {
    double mean = 0.0;
    for (int32_t c : counts) mean += c;
    mean /= static_cast<double>(counts.size());
    double ss = 0.0;
    for (int32_t c : counts) ss += (c - mean) * (c - mean);
    return ss;
  };
  EXPECT_GT(spread(t_biased->venue_count), spread(t_uniform->venue_count));
}

TEST(RatingsTest, UnratedVenuesGetGlobalMean) {
  const BipartiteWorld world = SmallWorld();
  RatingsConfig config;
  config.num_users = 2;  // sparse: most venues unrated
  config.ratings_per_user = 3;
  auto table = GenerateRatings(world, config);
  ASSERT_TRUE(table.ok());
  for (NodeId r = 0; r < 150; ++r) {
    if (table->venue_count[static_cast<size_t>(r)] == 0) {
      EXPECT_DOUBLE_EQ(table->venue_mean[static_cast<size_t>(r)],
                       table->global_mean);
    }
  }
}

TEST(RatingsTest, DeterministicInSeed) {
  const BipartiteWorld world = SmallWorld();
  RatingsConfig config;
  config.num_users = 30;
  auto a = GenerateRatings(world, config);
  auto b = GenerateRatings(world, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->venue_mean, b->venue_mean);
}

TEST(RatingsTest, ValidationErrors) {
  const BipartiteWorld world = SmallWorld();
  RatingsConfig config;
  config.num_users = 0;
  EXPECT_FALSE(GenerateRatings(world, config).ok());
  config = RatingsConfig();
  config.ratings_per_user = 0;
  EXPECT_FALSE(GenerateRatings(world, config).ok());
  config = RatingsConfig();
  config.taste_sigma = -1.0;
  EXPECT_FALSE(GenerateRatings(world, config).ok());
  config = RatingsConfig();
  config.popularity_exponent = -0.5;
  EXPECT_FALSE(GenerateRatings(world, config).ok());
}

TEST(RatingsTest, RatingsPerUserCappedByVenueCount) {
  const BipartiteWorld world = SmallWorld();
  RatingsConfig config;
  config.num_users = 5;
  config.ratings_per_user = 10000;  // far more than 150 venues
  auto table = GenerateRatings(world, config);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->ratings.size(), 5u * 150u);
}

}  // namespace
}  // namespace d2pr
