// EngineRouter: N D2prEngine shards behind the single-engine serving
// surface (Rank / RankBatch / RankAsync).
//
// The engine facade is the seam: callers speak only RankRequest /
// RankResponse, so a router can replace one engine with a fleet of them
// without touching any call site. All shards share one immutable CsrGraph
// (a shared_ptr, not a copy); what is sharded is the mutable per-engine
// state — transition caches, warm-start stores, and the locks guarding
// them — which is exactly what serializes traffic on a single engine.
//
// Two routing policies:
//
//   * kReplicated — every shard can answer every request. Untagged
//     requests spread round-robin (deterministic) or least-loaded (by a
//     snapshot of each shard's requests_inflight gauge) so cache and lock
//     contention stops serializing independent queries. Warm-tag
//     affinity: all requests sharing a warm_start_tag pin to one shard
//     (stable hash of the tag), so every trajectory sees exactly the
//     per-tag request subsequence a single engine would — scores,
//     iteration counts, and warm diagnostics stay bit-identical to the
//     sequential single-engine reference.
//   * kPartitionedTeleport — the *query space* is partitioned by seed
//     ownership under a pluggable ShardMap: a personalized request whose
//     seeds span several owner shards is split into one sub-request per
//     owner (seeds restricted to that shard's nodes), and the per-shard
//     score vectors are merged back into one global RankResponse. The
//     merge exploits that the PageRank fixed point is linear in the
//     teleport vector once each sub-solution is un-normalized: under
//     DanglingPolicy::kTeleport a sub-solution x_s with dangling mass m_s
//     satisfies x_s = ((1-a) + a*m_s) * (I - aP)^-1 v_s, so the router
//     rescales each x_s by weight_s / ((1-a) + a*m_s), sums, and
//     L1-renormalizes — recovering the full-teleport solution to within
//     solver tolerance. Global (unseeded) requests and warm-tagged
//     requests route whole, as in replicated mode;
//     DanglingPolicy::kRenormalize breaks the linearity argument, so
//     seeded kRenormalize requests also route whole.
//
// Determinism contract (the parity suite in tests/engine_router_test.cc
// and tests/router_fuzz_test.cc enforces this):
//
//   * Replicated RankBatch is element-for-element identical to
//     D2prEngine::RankBatch on the same request sequence, for any shard
//     count, provided distinct warm tags stay within
//     EngineOptions::warm_start_capacity (per-shard warm stores evict
//     independently beyond that, the same caveat ServingRuntime documents
//     for cross-tag eviction order).
//   * Partitioned responses agree with the single-engine reference within
//     solver tolerance, and merged score vectors sum to 1.
//   * transition_cache_hit diagnostics are normalized to the sequential
//     single-engine reference: the router replays a persistent virtual
//     LRU (same capacity as one engine's transition cache) over the
//     request stream in submission order and overwrites each response's
//     flag with the replayed value, so diagnostics do not depend on how
//     traffic happened to spread across shards. Failed requests never
//     advance the replay — mirroring the engine, which validates before
//     touching its cache. warm_start_hit needs no normalization — tag
//     pinning makes it deterministic already.
//
// Concurrency: Rank / RankBatch / RankAsync are thread-safe. A RankBatch
// runs each shard's sub-sequence in submission order on a worker pool
// (one chain per shard); concurrent batches are safe but interleave on
// the shard engines, so cross-batch warm ordering is unspecified — the
// same contract ServingRuntime has.
//
//   CsrGraph graph = ...;
//   EngineRouter router(std::move(graph), {.num_shards = 4});
//   auto responses = router.RankBatch(requests);   // fans across shards
//   auto future = router.RankAsync(request);       // overlap with IO

#ifndef D2PR_SERVE_ENGINE_ROUTER_H_
#define D2PR_SERVE_ENGINE_ROUTER_H_

#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/rank_request.h"
#include "common/result.h"
#include "graph/csr_graph.h"
#include "serve/score_cache.h"
#include "serve/thread_pool.h"

namespace d2pr {

/// \brief How the router spreads requests across shards.
enum class RoutingPolicy {
  /// Every shard answers any request; untagged requests spread by
  /// ReplicaStrategy, warm-tagged requests pin by tag hash.
  kReplicated,
  /// Personalized requests route (and split) by seed-node ownership under
  /// the ShardMap; everything else behaves as in kReplicated.
  kPartitionedTeleport,
};

/// \brief Untagged-request spreading strategy in replicated routing.
enum class ReplicaStrategy {
  /// Deterministic rotation over shards (default; reproducible routing).
  kRoundRobin,
  /// Snapshot of each shard's requests_inflight gauge plus the
  /// assignments already planned, lowest shard index on ties.
  /// Deterministic from an idle router, adaptive under live traffic.
  kLeastLoaded,
};

/// \brief Pluggable seed-node ownership for kPartitionedTeleport.
class ShardMap {
 public:
  virtual ~ShardMap() = default;
  /// Which shard owns `node`. Must be a pure function of (node,
  /// num_shards) — the router calls it from multiple threads and relies
  /// on stable answers for cache affinity.
  virtual size_t OwnerOf(NodeId node, size_t num_shards) const = 0;
};

/// \brief Default ownership: node id modulo shard count.
class ModuloShardMap final : public ShardMap {
 public:
  size_t OwnerOf(NodeId node, size_t num_shards) const override {
    return static_cast<size_t>(static_cast<uint32_t>(node)) % num_shards;
  }
};

/// \brief EngineRouter construction knobs.
struct RouterOptions {
  /// Shard engines to stand up (0 is clamped to 1).
  size_t num_shards = 2;
  RoutingPolicy policy = RoutingPolicy::kReplicated;
  ReplicaStrategy strategy = ReplicaStrategy::kRoundRobin;
  /// Seed ownership for kPartitionedTeleport; null = ModuloShardMap.
  std::shared_ptr<const ShardMap> shard_map;
  /// Options forwarded to every shard engine. The transition-cache
  /// capacity also sizes the router's virtual reference LRU (diagnostic
  /// normalization).
  EngineOptions engine_options;
  /// Shared response memo in front of routing; 0 (default) disables it so
  /// the router is parity-pure out of the box. Only full (merged)
  /// responses are ever inserted — per-shard partial responses never
  /// reach the cache. With the memo on, duplicate memoizable requests
  /// within one RankBatch also solve exactly once (in-batch dedup).
  size_t score_cache_capacity = 0;
  std::chrono::nanoseconds score_cache_ttl{0};
  /// Injectable time source for the score cache (tests).
  std::function<std::chrono::steady_clock::time_point()> clock;
  /// Worker threads for RankBatch / RankAsync; 0 = one per shard.
  size_t worker_threads = 0;
};

/// \brief N-shard engine fleet behind the single-engine query surface.
class EngineRouter {
 public:
  /// Shares ownership of an already-managed graph across all shards.
  explicit EngineRouter(std::shared_ptr<const CsrGraph> graph,
                        const RouterOptions& options = {});

  /// Takes ownership of `graph`.
  explicit EngineRouter(CsrGraph graph, const RouterOptions& options = {});

  /// Borrows `graph`; the caller keeps it alive for the router's
  /// lifetime (the pattern tools and tests use for stack graphs).
  static EngineRouter Borrowing(const CsrGraph& graph,
                                const RouterOptions& options = {});

  const CsrGraph& graph() const { return *graph_; }
  const RouterOptions& options() const { return options_; }
  size_t num_shards() const { return shards_.size(); }
  /// Shard engines are exposed for telemetry (stats snapshots) and tests;
  /// routing through the router while mutating a shard directly voids the
  /// determinism contract.
  D2prEngine& shard(size_t index) { return *shards_[index]; }
  const D2prEngine& shard(size_t index) const { return *shards_[index]; }
  const ScoreCache& score_cache() const { return score_cache_; }
  size_t num_worker_threads() const { return pool_.num_threads(); }

  /// The shard a warm-start tag pins to (stable for the router's life).
  size_t ShardForTag(const std::string& tag) const;
  /// The shard owning `node` under the active ShardMap.
  size_t OwnerShardOf(NodeId node) const;

  /// \brief One query, routed (and, in partitioned mode, split/merged) on
  /// the caller's thread.
  Result<RankResponse> Rank(const RankRequest& request);

  /// \brief Executes `requests` across the shards and returns responses
  /// in request order.
  ///
  /// Each shard's sub-sequence runs in submission order on one worker, so
  /// per-shard state (warm trajectories, cache recency) evolves exactly
  /// as the routing plan dictates. On failure, returns the error of the
  /// lowest-index failing request — the same status the fail-fast
  /// sequential path reports; side effects of later requests are
  /// unspecified in that case.
  Result<std::vector<RankResponse>> RankBatch(
      std::span<const RankRequest> requests);

  /// \brief Enqueues one query and immediately returns its future.
  ///
  /// Routing order across concurrent async requests is whatever the pool
  /// runs; use RankBatch when reference-identical diagnostics matter.
  std::future<Result<RankResponse>> RankAsync(RankRequest request);

 private:
  /// One engine execution planned for a request. A request routed whole
  /// is a single unit of weight 1; a seed-split request has one unit per
  /// owning shard, weighted by its share of the seed set.
  struct Unit {
    size_t request_index = 0;
    size_t shard = 0;
    size_t slot = 0;      ///< Index into the request's parts vector.
    double weight = 1.0;
    RankRequest request;
  };
  struct Part {
    double weight = 1.0;
    RankResponse response;
  };

  /// Routes one request into units. Caller holds route_mu_;
  /// `planned_load` accumulates this plan's per-shard assignments for
  /// kLeastLoaded.
  std::vector<Unit> RouteLocked(const RankRequest& request,
                                size_t request_index,
                                std::vector<size_t>& planned_load);

  /// Advances the virtual single-engine LRU by one request's transition
  /// key and returns the hit flag the sequential reference would report.
  /// Caller holds route_mu_.
  bool AdvanceReferenceLruLocked(const TransitionKey& key);

  /// Weighted, dangling-aware merge of per-shard partial responses into
  /// one global response (see the linearity note in the file comment).
  /// The merged score vector is L1-normalized to mass 1.
  RankResponse MergeParts(const RankRequest& request,
                          std::vector<Part> parts) const;

  /// Runs one request's units sequentially on the caller's thread.
  Result<RankResponse> ExecuteUnits(const RankRequest& request,
                                    std::vector<Unit> units);

  std::shared_ptr<const CsrGraph> graph_;
  RouterOptions options_;
  std::shared_ptr<const ShardMap> shard_map_;
  std::vector<std::unique_ptr<D2prEngine>> shards_;
  std::vector<NodeId> dangling_nodes_;  ///< For the merge rescale.
  ScoreCache score_cache_;

  /// Guards the routing state: the round-robin cursor and the virtual
  /// reference LRU. Held only for planning (key bookkeeping), never
  /// during a solve.
  std::mutex route_mu_;
  size_t round_robin_next_ = 0;
  std::list<TransitionKey> reference_lru_;  // front = most recently used

  ThreadPool pool_;  // last member: workers must die before state above
};

}  // namespace d2pr

#endif  // D2PR_SERVE_ENGINE_ROUTER_H_
