#include "net/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/distributions.h"
#include "net/client.h"

namespace d2pr {
namespace {

/// Latency at quantile `q` (nearest-rank) of an unsorted sample vector.
double PercentileUs(std::vector<double>& latencies_us, double q) {
  if (latencies_us.empty()) return 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  const size_t rank = static_cast<size_t>(
      std::min<double>(latencies_us.size() - 1,
                       std::ceil(q * latencies_us.size()) - 1));
  return latencies_us[rank];
}

struct WorkerTally {
  size_t issued = 0;  ///< Requests sent, whatever their outcome.
  size_t ok = 0;
  size_t unavailable = 0;
  size_t deadline_exceeded = 0;
  size_t failed = 0;
  /// Latencies of OK responses only. Shed and failed round-trips are
  /// counted in `issued` but never sampled: a kUnavailable reject
  /// returns in microseconds without serving anything, and folding it
  /// into the percentiles (or the throughput numerator) makes a
  /// saturated server look faster the harder it sheds.
  std::vector<double> ok_latencies_us;
};

}  // namespace

Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options) {
  if (options.port == 0) {
    return Status::InvalidArgument("loadgen needs a --port to aim at");
  }
  if (options.connections == 0 || options.requests_per_connection == 0) {
    return Status::InvalidArgument(
        "loadgen needs at least one connection and one request");
  }
  if (options.zipf_s <= 0.0) {
    return Status::InvalidArgument("zipf_s must be positive");
  }
  if (options.global_fraction < 0.0 || options.global_fraction > 1.0) {
    return Status::InvalidArgument("global_fraction must lie in [0, 1]");
  }

  int64_t universe = options.zipf_n;
  if (universe <= 0) {
    auto probe = RpcClient::Connect(options.host, options.port);
    if (!probe.ok()) return probe.status();
    auto info = probe.value().Info();
    if (!info.ok()) return info.status();
    universe = static_cast<int64_t>(info.value().num_nodes);
  }
  if (universe <= 0) {
    return Status::InvalidArgument("empty seed universe (zipf_n)");
  }

  // One CDF shared read-only by every worker; each worker draws from its
  // own Rng stream so results do not depend on thread interleaving.
  const ZipfSampler zipf(universe, options.zipf_s);

  std::vector<WorkerTally> tallies(options.connections);
  std::vector<Status> worker_errors(options.connections);
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  const auto started = std::chrono::steady_clock::now();
  for (size_t w = 0; w < options.connections; ++w) {
    workers.emplace_back([&, w] {
      WorkerTally& tally = tallies[w];
      Rng rng(options.seed * 0x9e3779b97f4a7c15ull + w);
      auto client = RpcClient::Connect(options.host, options.port);
      if (!client.ok()) {
        worker_errors[w] = client.status();
        return;
      }
      tally.ok_latencies_us.reserve(options.requests_per_connection);
      for (size_t i = 0; i < options.requests_per_connection; ++i) {
        RankRequest request = options.base;
        const bool global =
            options.global_fraction > 0.0 &&
            (static_cast<double>(rng.Next() >> 11) * 0x1.0p-53 <
             options.global_fraction);
        if (!global) {
          request.seeds = {static_cast<NodeId>(zipf.Sample(&rng) - 1)};
        }
        const auto before = std::chrono::steady_clock::now();
        auto response = client.value().Rank(request, options.deadline_ms);
        const auto after = std::chrono::steady_clock::now();
        ++tally.issued;
        if (response.ok()) {
          ++tally.ok;
          tally.ok_latencies_us.push_back(
              std::chrono::duration_cast<std::chrono::nanoseconds>(after -
                                                                   before)
                  .count() /
              1000.0);
        } else if (response.status().code() == StatusCode::kUnavailable) {
          ++tally.unavailable;
        } else if (response.status().code() ==
                   StatusCode::kDeadlineExceeded) {
          ++tally.deadline_exceeded;
        } else {
          ++tally.failed;
          // Transport errors kill the connection; later requests on this
          // worker would only repeat the same failure.
          if (response.status().code() == StatusCode::kIoError) {
            worker_errors[w] = response.status();
            return;
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed_s =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started)
          .count() /
      1e9;

  for (size_t w = 0; w < options.connections; ++w) {
    // A worker that could not even issue one request is a run-level
    // failure; one that died mid-run still contributed its tallies.
    if (!worker_errors[w].ok() && tallies[w].issued == 0) {
      return worker_errors[w];
    }
  }

  LoadGenReport report;
  std::vector<double> ok_latencies;
  for (const WorkerTally& tally : tallies) {
    report.attempted += tally.issued;
    report.ok += tally.ok;
    report.unavailable += tally.unavailable;
    report.deadline_exceeded += tally.deadline_exceeded;
    report.failed += tally.failed;
    ok_latencies.insert(ok_latencies.end(), tally.ok_latencies_us.begin(),
                        tally.ok_latencies_us.end());
  }
  // Served metrics over OK responses only; offered load kept separately.
  report.p50_us = PercentileUs(ok_latencies, 0.50);
  report.p99_us = PercentileUs(ok_latencies, 0.99);
  report.elapsed_s = elapsed_s;
  report.requests_per_s =
      elapsed_s > 0.0 ? static_cast<double>(report.ok) / elapsed_s : 0.0;
  report.attempted_per_s =
      elapsed_s > 0.0 ? static_cast<double>(report.attempted) / elapsed_s
                      : 0.0;
  return report;
}

}  // namespace d2pr
