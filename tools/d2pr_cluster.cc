// d2pr_cluster: drives a distributed block solve over shard processes.
//
// Connects one SocketShardChannel per entry of --shard-ports (shard id =
// list position; every port a `d2pr_server --shard-role` process on
// loopback), handshakes the fleet, runs the solve through
// DistributedCoordinator, and — unless --compare=false — re-runs the
// same solve in-process (SolvePagerankPartitioned /
// SolveGaussSeidelPartitioned over the same partition) and checks
// parity: bitwise for power (scores, iterations, residual), within 1e-9
// for block Gauss-Seidel. Exits 0 only when the solve converged-or-
// capped cleanly AND parity held; the final line reports "0 protocol
// errors" for smoke scripts to grep.
//
// The cluster launcher loads the same graph the shard processes load
// (same flags), because the parity check needs the reference solve; a
// deployment that only wants the distributed answer needs just the
// teleport vector, node count, and fingerprint.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/block_solver.h"
#include "core/transition_slices.h"
#include "d2pr_net_flags.h"
#include "datagen/classic_generators.h"
#include "dist/channel.h"
#include "dist/coordinator.h"
#include "graph/graph_fingerprint.h"
#include "graph/graph_io.h"
#include "graph/partition.h"
#include "graph/shard_cut.h"

namespace d2pr {
namespace {

constexpr char kUsage[] =
    "usage: d2pr_cluster --shard-ports=P1,P2,... [flags]\n"
    "  --shard-ports=LIST   loopback ports of the shard processes, one\n"
    "                       per shard, shard id = list position (required)\n"
    "  --host=ADDR          numeric IPv4 of the shards (default 127.0.0.1)\n"
    "  --scheme=NAME        partition scheme: range (default) or hash\n"
    "  --method=NAME        power (default) or gauss-seidel\n"
    "  --dangling=NAME      teleport (default), self-loop, or renormalize\n"
    "  --p=X --beta=X       transition model (defaults 0.5, 0)\n"
    "  --alpha=X            damping (default 0.85)\n"
    "  --tolerance=X        L1 convergence threshold (default 1e-10)\n"
    "  --max-iterations=N   iteration cap (default 200)\n"
    "  --deadline-ms=N      per-sweep round-trip deadline (default none)\n"
    "  --retries=N          resends after a timeout (default 2)\n"
    "  --compare=BOOL       check parity against the in-process block\n"
    "                       solve (default true)\n"
    "  --cut-dir=DIR        cross-check a directory of pre-cut shard\n"
    "                       files (d2pr_partition_cut output) against\n"
    "                       the graph and fleet shape before contacting\n"
    "                       any server\n"
    "  --graph=EDGELIST / --nodes/--edges-per-node/--gen-seed as in\n"
    "  d2pr_server (the shard processes must load the same graph)\n";

int UsageError(const char* message) {
  std::fprintf(stderr, "%s\n%s", message, kUsage);
  return 2;
}

Result<std::vector<uint16_t>> ParsePorts(const std::string& list) {
  std::vector<uint16_t> ports;
  size_t begin = 0;
  while (begin <= list.size()) {
    size_t end = list.find(',', begin);
    if (end == std::string::npos) end = list.size();
    const std::string item = list.substr(begin, end - begin);
    begin = end + 1;
    if (item.empty()) {
      return Status::InvalidArgument("--shard-ports has an empty entry");
    }
    int value = 0;
    for (char c : item) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument(
            StrCat("--shard-ports entry '", item, "' is not a port"));
      }
      value = value * 10 + (c - '0');
      if (value > 65535) break;
    }
    if (value < 1 || value > 65535) {
      return Status::InvalidArgument(
          StrCat("--shard-ports entry '", item, "' outside [1, 65535]"));
    }
    ports.push_back(static_cast<uint16_t>(value));
  }
  return ports;
}

int Run(const Flags& flags) {
  const Status valid = ValidateClusterFlags(flags);
  if (!valid.ok()) return UsageError(valid.ToString().c_str());

  Result<std::vector<uint16_t>> ports =
      ParsePorts(flags.GetString("shard-ports"));
  if (!ports.ok()) return UsageError(ports.status().ToString().c_str());
  const std::string host =
      flags.Has("host") ? flags.GetString("host") : "127.0.0.1";

  Result<CsrGraph> graph = [&]() -> Result<CsrGraph> {
    if (flags.Has("graph")) {
      return ReadEdgeListText(flags.GetString("graph"),
                              *flags.GetBool("directed", false)
                                  ? GraphKind::kDirected
                                  : GraphKind::kUndirected,
                              *flags.GetBool("weighted", false));
    }
    Rng rng(static_cast<uint64_t>(*flags.GetInt("gen-seed", 42)));
    return BarabasiAlbert(
        static_cast<NodeId>(*flags.GetInt("nodes", 10000)),
        static_cast<int32_t>(*flags.GetInt("edges-per-node", 8)), &rng);
  }();
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  const PartitionScheme scheme = flags.GetString("scheme") == "hash"
                                     ? PartitionScheme::kHash
                                     : PartitionScheme::kRange;
  const SolverMethod method = flags.GetString("method") == "gauss-seidel"
                                  ? SolverMethod::kGaussSeidel
                                  : SolverMethod::kPower;
  TransitionConfig config;
  config.p = *flags.GetDouble("p", 0.5);
  config.beta = *flags.GetDouble("beta", 0.0);

  PagerankOptions options;
  options.alpha = *flags.GetDouble("alpha", 0.85);
  options.tolerance = *flags.GetDouble("tolerance", 1e-10);
  options.max_iterations =
      static_cast<int>(*flags.GetInt("max-iterations", 200));
  const std::string dangling = flags.GetString("dangling");
  if (dangling == "self-loop") {
    options.dangling = DanglingPolicy::kSelfLoop;
  } else if (dangling == "renormalize") {
    options.dangling = DanglingPolicy::kRenormalize;
  }

  const uint64_t fingerprint = GraphFingerprint(*graph);
  if (flags.Has("cut-dir")) {
    // Preflight a directory of pre-cut shard files: every shard id must
    // have exactly one cut that matches this graph, scheme, and fleet
    // size — so a stale or mis-cut directory fails here, before any
    // server is contacted (each server still validates the one file it
    // loads).
    std::vector<int> cuts_seen(ports->size(), 0);
    std::error_code ec;
    std::filesystem::directory_iterator dir(flags.GetString("cut-dir"), ec);
    if (ec) {
      std::fprintf(stderr, "--cut-dir %s: %s\n",
                   flags.GetString("cut-dir").c_str(), ec.message().c_str());
      return 1;
    }
    for (const std::filesystem::directory_entry& entry : dir) {
      if (entry.path().extension() != ".d2psc") continue;
      Result<ShardCutMetadata> meta =
          ReadShardCutMetadata(entry.path().string());
      if (!meta.ok()) {
        std::fprintf(stderr, "%s: %s\n", entry.path().string().c_str(),
                     meta.status().ToString().c_str());
        return 1;
      }
      if (meta->graph_fingerprint != fingerprint ||
          meta->scheme != scheme ||
          meta->num_shards != ports->size()) {
        continue;  // a cut of some other graph or fleet shape
      }
      if (meta->shard_id < cuts_seen.size()) ++cuts_seen[meta->shard_id];
    }
    for (size_t s = 0; s < cuts_seen.size(); ++s) {
      if (cuts_seen[s] != 1) {
        std::fprintf(stderr,
                     "--cut-dir holds %d cuts for shard %zu of %zu "
                     "(fingerprint %016llx, %s scheme); expected exactly 1\n",
                     cuts_seen[s], s, ports->size(),
                     static_cast<unsigned long long>(fingerprint),
                     PartitionSchemeName(scheme));
        return 1;
      }
    }
    std::fprintf(stderr, "cut-dir ok: %zu matching shard cuts\n",
                 ports->size());
  }

  // Connect the fleet.
  std::vector<std::unique_ptr<SocketShardChannel>> sockets;
  std::vector<ShardChannel*> channels;
  for (size_t s = 0; s < ports->size(); ++s) {
    Result<std::unique_ptr<SocketShardChannel>> channel =
        SocketShardChannel::Connect(host, (*ports)[s]);
    if (!channel.ok()) {
      std::fprintf(stderr, "shard %zu (%s:%u): %s\n", s, host.c_str(),
                   (*ports)[s], channel.status().ToString().c_str());
      return 1;
    }
    sockets.push_back(std::move(*channel));
    channels.push_back(sockets.back().get());
  }

  CoordinatorOptions coord_options;
  coord_options.scheme = scheme;
  coord_options.num_nodes = graph->num_nodes();
  coord_options.graph_fingerprint = fingerprint;
  coord_options.key = ResolveTransitionKey(*graph, config);
  // Always carried: any shard loaded from a cut file will ask for the
  // global metric vector in its handshake ack (whole-graph shards never
  // do, and the coordinator only ships it when asked).
  coord_options.metric_values = MetricValues(*graph, coord_options.key.metric);
  coord_options.sweep_deadline_ms = *flags.GetInt("deadline-ms", 0);
  coord_options.max_retries = static_cast<int>(*flags.GetInt("retries", 2));
  DistributedCoordinator coordinator(channels, coord_options);

  const Status handshake = coordinator.Handshake();
  if (!handshake.ok()) {
    std::fprintf(stderr, "handshake failed: %s\n",
                 handshake.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "handshook %zu shards (%s scheme, fingerprint %llx)\n",
               channels.size(), PartitionSchemeName(scheme),
               static_cast<unsigned long long>(
                   coord_options.graph_fingerprint));

  const std::vector<double> teleport(
      static_cast<size_t>(graph->num_nodes()),
      1.0 / static_cast<double>(graph->num_nodes()));
  Result<PagerankResult> distributed =
      coordinator.Solve(method, teleport, options);
  if (!distributed.ok()) {
    std::fprintf(stderr, "distributed solve failed: %s\n",
                 distributed.status().ToString().c_str());
    return 1;
  }
  std::printf("converged=%d iterations=%d residual=%.3e\n",
              distributed->converged ? 1 : 0, distributed->iterations,
              distributed->residual);

  if (*flags.GetBool("compare", true)) {
    PartitionOptions popts;
    popts.scheme = scheme;
    popts.num_shards = channels.size();
    popts.build_out_csr = false;
    Result<GraphPartition> partition = GraphPartition::Build(*graph, popts);
    if (!partition.ok()) {
      std::fprintf(stderr, "%s\n", partition.status().ToString().c_str());
      return 1;
    }
    Result<TransitionSlices> slices =
        BuildTransitionSlicesLocal(*graph, *partition, config);
    if (!slices.ok()) {
      std::fprintf(stderr, "%s\n", slices.status().ToString().c_str());
      return 1;
    }
    Result<PagerankResult> reference =
        method == SolverMethod::kPower
            ? SolvePagerankPartitioned(*slices, *partition, teleport, options)
            : SolveGaussSeidelPartitioned(*slices, *partition, teleport,
                                          options);
    if (!reference.ok()) {
      std::fprintf(stderr, "reference solve failed: %s\n",
                   reference.status().ToString().c_str());
      return 1;
    }
    if (method == SolverMethod::kPower) {
      const bool bitwise =
          distributed->iterations == reference->iterations &&
          distributed->residual == reference->residual &&
          distributed->scores.size() == reference->scores.size() &&
          std::memcmp(distributed->scores.data(), reference->scores.data(),
                      distributed->scores.size() * sizeof(double)) == 0;
      if (!bitwise) {
        std::fprintf(stderr,
                     "PARITY FAILURE: distributed power diverged from the "
                     "in-process block solve\n");
        return 1;
      }
      std::printf("parity ok (bitwise, %d iterations)\n",
                  reference->iterations);
    } else {
      double max_diff = 0.0;
      for (size_t i = 0; i < distributed->scores.size(); ++i) {
        max_diff = std::max(
            max_diff,
            std::abs(distributed->scores[i] - reference->scores[i]));
      }
      if (max_diff > 1e-9) {
        std::fprintf(stderr,
                     "PARITY FAILURE: block Gauss-Seidel diverged "
                     "(max |diff| = %.3e)\n",
                     max_diff);
        return 1;
      }
      std::printf("parity ok (max |diff| = %.3e)\n", max_diff);
    }
  }

  const CoordinatorStats& stats = coordinator.stats();
  std::printf(
      "distributed solve done: %lld sweeps, %lld retries, %lld boundary "
      "values down, %lld owned values up, 0 protocol errors\n",
      static_cast<long long>(stats.sweeps),
      static_cast<long long>(stats.retries),
      static_cast<long long>(stats.boundary_values),
      static_cast<long long>(stats.owned_values));
  return 0;
}

}  // namespace
}  // namespace d2pr

int main(int argc, char** argv) {
  auto flags = d2pr::Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    return d2pr::UsageError(flags.status().ToString().c_str());
  }
  return d2pr::Run(flags.value());
}
