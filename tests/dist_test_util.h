// Shared fixtures of the distributed-block-solve suites
// (dist_parity_test.cc, dist_fault_test.cc, dist_handshake_test.cc,
// dist_server_test.cc): an in-process shard fleet — N ShardWorkers over
// one graph, one InProcessShardChannel each, and the CoordinatorOptions
// that handshake with them — plus the FaultyChannel decorator the chaos
// suite wraps around any channel to inject transport faults below the
// codec layer.

#ifndef D2PR_TESTS_DIST_TEST_UTIL_H_
#define D2PR_TESTS_DIST_TEST_UTIL_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/result.h"
#include "common/rng.h"
#include "core/transition.h"
#include "datagen/bipartite_world.h"
#include "datagen/classic_generators.h"
#include "datagen/projection.h"
#include "dist/channel.h"
#include "dist/coordinator.h"
#include "dist/shard_worker.h"
#include "graph/csr_graph.h"
#include "graph/graph_fingerprint.h"
#include "graph/partition.h"

namespace d2pr {

/// \brief Transport-fault injection wrapping any ShardChannel. Faults
/// fire below the codec layer, exactly where a real network loses,
/// repeats, or mangles frames; the coordinator's fault policy must turn
/// every one of them into a clean Status — never a hang, never a
/// partial result.
class FaultyChannel : public ShardChannel {
 public:
  struct Options {
    /// Deliver the request, then lose the reply (DeadlineExceeded to the
    /// caller) on every `drop_reply_every`-th call; 0 disables. The
    /// request WAS processed — the retry must hit the worker's
    /// idempotent cached-reply path.
    int drop_reply_every = 0;
    /// Swallow the request undelivered (DeadlineExceeded, worker never
    /// saw it) on every `drop_request_every`-th call; 0 disables.
    int drop_request_every = 0;
    /// Deliver every frame twice (the duplicate's reply is discarded,
    /// as a late duplicate on a stream would be).
    bool duplicate = false;
    /// Chop the last byte off every `truncate_every`-th reply payload;
    /// 0 disables. The coordinator must reject the mangled reply, not
    /// decode garbage.
    int truncate_every = 0;
    /// After this many kSweepRequest frames have been delivered, the
    /// shard is dead: every later call is Unavailable. < 0 disables.
    int kill_after_sweeps = -1;
  };

  FaultyChannel(ShardChannel& inner, const Options& options)
      : inner_(inner), options_(options) {}

  Result<ShardFrame> Call(const ShardFrame& request,
                          int64_t deadline_ms) override {
    ++calls_;
    if (options_.kill_after_sweeps >= 0 &&
        sweeps_delivered_ >= options_.kill_after_sweeps) {
      return Status::Unavailable("injected: shard process died");
    }
    if (options_.drop_request_every > 0 &&
        calls_ % options_.drop_request_every == 0) {
      ++requests_dropped_;
      return Status::DeadlineExceeded("injected: request lost");
    }
    if (request.type == FrameType::kSweepRequest) ++sweeps_delivered_;
    Result<ShardFrame> reply = inner_.Call(request, deadline_ms);
    if (options_.duplicate) {
      // The repeated frame reaches the worker; its reply is dropped on
      // the floor exactly as the stream channel drains stale responses.
      (void)inner_.Call(request, deadline_ms);
      ++duplicates_sent_;
    }
    if (reply.ok() && options_.drop_reply_every > 0 &&
        calls_ % options_.drop_reply_every == 0) {
      ++replies_dropped_;
      return Status::DeadlineExceeded("injected: reply lost");
    }
    if (reply.ok() && options_.truncate_every > 0 &&
        calls_ % options_.truncate_every == 0 && !reply->payload.empty()) {
      reply->payload.pop_back();
      ++replies_truncated_;
    }
    return reply;
  }

  int64_t calls() const { return calls_; }
  int64_t replies_dropped() const { return replies_dropped_; }
  int64_t requests_dropped() const { return requests_dropped_; }
  int64_t duplicates_sent() const { return duplicates_sent_; }
  int64_t replies_truncated() const { return replies_truncated_; }

 private:
  ShardChannel& inner_;
  Options options_;
  int64_t calls_ = 0;
  int64_t sweeps_delivered_ = 0;
  int64_t replies_dropped_ = 0;
  int64_t requests_dropped_ = 0;
  int64_t duplicates_sent_ = 0;
  int64_t replies_truncated_ = 0;
};

/// \brief N shard workers over one graph plus one in-process channel
/// each — a whole "cluster" with no sockets and no threads.
struct DistFleet {
  std::vector<std::unique_ptr<ShardWorker>> workers;
  std::vector<std::unique_ptr<InProcessShardChannel>> channels;
  /// One entry per shard; points at channels[s] unless a test swaps in
  /// a FaultyChannel or permutes entries.
  std::vector<ShardChannel*> raw;
};

inline DistFleet MakeFleet(const CsrGraph& graph, size_t num_shards,
                           PartitionScheme scheme = PartitionScheme::kRange,
                           const TransitionConfig& config = {}) {
  DistFleet fleet;
  for (size_t s = 0; s < num_shards; ++s) {
    ShardWorkerOptions options;
    options.shard_id = s;
    options.num_shards = num_shards;
    options.scheme = scheme;
    options.config = config;
    auto worker = ShardWorker::Create(graph, options);
    D2PR_CHECK(worker.ok()) << worker.status().ToString();
    fleet.workers.push_back(std::move(*worker));
    fleet.channels.push_back(
        std::make_unique<InProcessShardChannel>(*fleet.workers.back()));
    fleet.raw.push_back(fleet.channels.back().get());
  }
  return fleet;
}

inline CoordinatorOptions MakeCoordinatorOptions(
    const CsrGraph& graph, PartitionScheme scheme = PartitionScheme::kRange,
    const TransitionConfig& config = {}) {
  CoordinatorOptions options;
  options.scheme = scheme;
  options.num_nodes = graph.num_nodes();
  options.graph_fingerprint = GraphFingerprint(graph);
  options.key = ResolveTransitionKey(graph, config);
  return options;
}

/// \brief The seeded graph family of partition_fuzz_test.cc, shared so
/// the distributed parity fuzz sweeps the same power-law and
/// bipartite-projection graphs (weighted every fourth case) the
/// in-process parity fuzz proved the block solvers on.
inline Result<CsrGraph> DistFuzzGraph(int case_id) {
  const auto seed = static_cast<uint64_t>(case_id);
  if (case_id % 2 == 0) {
    Rng rng(4000 + seed);
    return BarabasiAlbert(static_cast<NodeId>(100 + (case_id * 17) % 140),
                          2 + case_id % 3, &rng);
  }
  BipartiteWorldConfig config;
  config.num_members = static_cast<NodeId>(80 + (case_id * 11) % 70);
  config.num_venues = static_cast<NodeId>(25 + case_id % 25);
  config.venue_size_max = 12;
  config.seed = 5000 + seed;
  auto world = GenerateBipartiteWorld(config);
  if (!world.ok()) return world.status();
  ProjectionConfig projection;
  projection.weighted = case_id % 4 == 1;
  return ProjectMembers(*world, projection);
}

}  // namespace d2pr

#endif  // D2PR_TESTS_DIST_TEST_UTIL_H_
