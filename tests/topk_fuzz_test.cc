// Seeded randomized property tests for certified top-k serving: over 50
// random graphs (the power-law + bipartite-projection family of
// tests/router_fuzz_test.cc) and random (p, alpha, beta, k, seeds)
// mixes, every entry the bounded-push solver certifies must belong to
// the exact top-k computed by power iteration — near-ties within 1e-9
// excused — and the served lower bounds must never overshoot the exact
// scores.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "api/engine.h"
#include "common/rng.h"
#include "datagen/bipartite_world.h"
#include "datagen/classic_generators.h"
#include "datagen/projection.h"

namespace d2pr {
namespace {

constexpr int kNumCases = 50;
constexpr int kRequestsPerCase = 2;
constexpr double kNearTie = 1e-9;

/// Alternates between a power-law (preferential attachment) graph and a
/// bipartite member-member projection; every fourth case is weighted —
/// the same family the router fuzz suite draws from, so coverage spans
/// the degree regimes the bound index actually prunes on.
Result<CsrGraph> FuzzGraph(int case_id) {
  const auto seed = static_cast<uint64_t>(case_id);
  if (case_id % 2 == 0) {
    Rng rng(1000 + seed);
    return BarabasiAlbert(
        static_cast<NodeId>(120 + (case_id * 13) % 120),
        2 + case_id % 3, &rng);
  }
  BipartiteWorldConfig config;
  config.num_members = static_cast<NodeId>(90 + (case_id * 7) % 60);
  config.num_venues = static_cast<NodeId>(30 + case_id % 20);
  config.venue_size_max = 12;
  config.seed = 2000 + seed;
  auto world = GenerateBipartiteWorld(config);
  if (!world.ok()) return world.status();
  ProjectionConfig projection;
  projection.weighted = case_id % 4 == 1;
  return ProjectMembers(*world, projection);
}

std::vector<NodeId> ExactTopK(const std::vector<double>& scores, size_t k) {
  std::vector<NodeId> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<NodeId>(i);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const double sa = scores[static_cast<size_t>(a)];
    const double sb = scores[static_cast<size_t>(b)];
    if (sa != sb) return sa > sb;
    return a < b;
  });
  order.resize(std::min(k, order.size()));
  return order;
}

TEST(TopKFuzzTest, CertifiedEntriesBelongToExactTopKOnRandomMixes) {
  int certified_seen = 0;
  int fully_certified_responses = 0;
  for (int case_id = 0; case_id < kNumCases; ++case_id) {
    SCOPED_TRACE("case " + std::to_string(case_id));
    auto graph = FuzzGraph(case_id);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    ASSERT_GT(graph->num_nodes(), 0);
    D2prEngine engine = D2prEngine::Borrowing(*graph);

    Rng rng(3000 + static_cast<uint64_t>(case_id));
    for (int i = 0; i < kRequestsPerCase; ++i) {
      SCOPED_TRACE("request " + std::to_string(i));
      RankRequest request;
      request.p = rng.Uniform(-1.5, 2.0);
      request.alpha = rng.Uniform(0.5, 0.9);
      request.beta = graph->weighted() ? rng.Uniform() : 0.0;
      const auto num_seeds = static_cast<size_t>(rng.UniformInt(1, 3));
      while (request.seeds.size() < num_seeds) {
        const auto seed = static_cast<NodeId>(
            rng.UniformInt(0, graph->num_nodes() - 1));
        if (std::find(request.seeds.begin(), request.seeds.end(), seed) ==
            request.seeds.end()) {
          request.seeds.push_back(seed);
        }
      }

      RankRequest exact_request = request;
      exact_request.tolerance = 1e-12;
      exact_request.max_iterations = 3000;
      auto exact = engine.Rank(exact_request);
      ASSERT_TRUE(exact.ok()) << exact.status().ToString();
      ASSERT_TRUE(exact->converged);

      RankRequest truncated = request;
      truncated.method = SolverMethod::kForwardPush;
      truncated.push_epsilon = 1e-8;
      truncated.top_k = rng.UniformInt(3, 15);
      auto served = engine.Rank(truncated);
      ASSERT_TRUE(served.ok()) << served.status().ToString();
      ASSERT_TRUE(served->truncated);
      ASSERT_TRUE(served->scores.empty());
      ASSERT_EQ(served->top.size(),
                std::min(static_cast<size_t>(truncated.top_k),
                         static_cast<size_t>(graph->num_nodes())));

      const std::vector<NodeId> truth =
          ExactTopK(exact->scores, served->top.size());
      const double kth = exact->scores[static_cast<size_t>(truth.back())];
      bool all_certified = true;
      for (size_t j = 0; j < served->top.size(); ++j) {
        const RankedEntry& entry = served->top[j];
        // Served scores are certified lower bounds: never above the exact
        // score (a push epsilon of headroom for float accumulation).
        EXPECT_LE(entry.score,
                  exact->scores[static_cast<size_t>(entry.node)] + 1e-10)
            << "node " << entry.node;
        if (j > 0) {
          EXPECT_LE(entry.score, served->top[j - 1].score);
        }
        if (!entry.certified) {
          all_certified = false;
          continue;
        }
        ++certified_seen;
        const bool in_exact =
            std::find(truth.begin(), truth.end(), entry.node) != truth.end();
        const bool near_tie =
            exact->scores[static_cast<size_t>(entry.node)] >= kth - kNearTie;
        EXPECT_TRUE(in_exact || near_tie)
            << "certified node " << entry.node << " outside exact top-"
            << served->top.size();
      }
      if (all_certified) {
        ++fully_certified_responses;
        EXPECT_EQ(served->uncertainty_gap, 0.0);
      }
    }
  }
  // The property is vacuous if certification rarely fires; with epsilon
  // 1e-8 on graphs this size the solver certifies the vast majority of
  // queries outright.
  EXPECT_GT(certified_seen, 300);
  EXPECT_GT(fully_certified_responses, 60);
}

}  // namespace
}  // namespace d2pr
