// Flag validation of the network CLIs (d2pr_server, d2pr_loadgen): every
// accepted and rejected combination, without spawning processes. A
// rejection here is exit code 2 in the binary.

#include "d2pr_net_flags.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace d2pr {
namespace {

Flags ParseOrDie(std::vector<const char*> args) {
  auto flags = Flags::Parse(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(flags.ok()) << flags.status().ToString();
  return std::move(flags).value();
}

Status Server(std::vector<const char*> args) {
  return ValidateServerFlags(ParseOrDie(std::move(args)));
}

Status LoadGen(std::vector<const char*> args) {
  return ValidateLoadGenFlags(ParseOrDie(std::move(args)));
}

// ---------------------------------------------------------------- server

TEST(NetFlagsTest, ServerDefaultsAreValid) {
  EXPECT_TRUE(Server({}).ok());
}

TEST(NetFlagsTest, ServerAcceptsFullSyntheticConfiguration) {
  EXPECT_TRUE(Server({"--port=8080", "--threads=8", "--shards=4",
                      "--route=least-loaded", "--max-queue=64",
                      "--coalesce=false", "--nodes=5000",
                      "--edges-per-node=4", "--gen-seed=7"})
                  .ok());
}

TEST(NetFlagsTest, ServerAcceptsGraphFileWithOrientationFlags) {
  EXPECT_TRUE(
      Server({"--graph=edges.txt", "--directed", "--weighted"}).ok());
}

TEST(NetFlagsTest, ServerAcceptsEveryRouteName) {
  for (const char* route :
       {"replicated", "least-loaded", "partitioned", "subgraph"}) {
    SCOPED_TRACE(route);
    EXPECT_TRUE(
        Server({"--shards=2", (std::string("--route=") + route).c_str()})
            .ok());
  }
}

TEST(NetFlagsTest, ServerRejectsUnknownFlagAndPositionals) {
  EXPECT_FALSE(Server({"--bogus=1"}).ok());
  EXPECT_FALSE(Server({"stray"}).ok());
}

TEST(NetFlagsTest, ServerRejectsBadPort) {
  EXPECT_FALSE(Server({"--port=70000"}).ok());
  EXPECT_FALSE(Server({"--port=-1"}).ok());
  EXPECT_FALSE(Server({"--port=abc"}).ok());
  EXPECT_TRUE(Server({"--port=0"}).ok());  // ephemeral is legal here
  EXPECT_TRUE(Server({"--port=65535"}).ok());
}

TEST(NetFlagsTest, ServerRejectsOutOfRangeNumerics) {
  EXPECT_FALSE(Server({"--threads=0"}).ok());
  EXPECT_FALSE(Server({"--shards=0"}).ok());
  EXPECT_FALSE(Server({"--max-queue=0"}).ok());
  EXPECT_FALSE(Server({"--nodes=1"}).ok());
  EXPECT_FALSE(Server({"--edges-per-node=0"}).ok());
  EXPECT_FALSE(Server({"--threads=two"}).ok());
  EXPECT_FALSE(Server({"--coalesce=maybe"}).ok());
}

TEST(NetFlagsTest, ServerRejectsRouteCombinations) {
  EXPECT_FALSE(Server({"--route=diagonal", "--shards=2"}).ok());
  // --route without a fleet to route over.
  EXPECT_FALSE(Server({"--route=replicated"}).ok());
  EXPECT_FALSE(Server({"--route=subgraph", "--shards=1"}).ok());
}

TEST(NetFlagsTest, ServerRejectsGraphSourceConflicts) {
  EXPECT_FALSE(Server({"--graph="}).ok());
  EXPECT_FALSE(Server({"--graph=edges.txt", "--nodes=100"}).ok());
  EXPECT_FALSE(Server({"--graph=edges.txt", "--edges-per-node=2"}).ok());
  EXPECT_FALSE(Server({"--graph=edges.txt", "--gen-seed=1"}).ok());
  // Orientation flags describe a file; meaningless for the generator.
  EXPECT_FALSE(Server({"--directed"}).ok());
  EXPECT_FALSE(Server({"--weighted", "--nodes=100"}).ok());
}

// --------------------------------------------------------------- loadgen

TEST(NetFlagsTest, LoadGenRequiresPort) {
  EXPECT_FALSE(LoadGen({}).ok());
  EXPECT_FALSE(LoadGen({"--connections=2"}).ok());
  EXPECT_TRUE(LoadGen({"--port=9000"}).ok());
}

TEST(NetFlagsTest, LoadGenAcceptsFullConfiguration) {
  EXPECT_TRUE(LoadGen({"--port=9000", "--host=127.0.0.1",
                       "--connections=8", "--requests=500", "--zipf-s=0.9",
                       "--zipf-n=100000", "--global-fraction=0.1",
                       "--deadline-ms=250", "--seed=3", "--p=1.5",
                       "--alpha=0.9", "--method=forward-push"})
                  .ok());
}

TEST(NetFlagsTest, LoadGenRejectsUnknownFlagAndPositionals) {
  EXPECT_FALSE(LoadGen({"--port=9000", "--zipf=1.1"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "run"}).ok());
}

TEST(NetFlagsTest, LoadGenRejectsBadPort) {
  // Unlike the server, the loadgen cannot aim at port 0.
  EXPECT_FALSE(LoadGen({"--port=0"}).ok());
  EXPECT_FALSE(LoadGen({"--port=70000"}).ok());
  EXPECT_FALSE(LoadGen({"--port=-5"}).ok());
  EXPECT_FALSE(LoadGen({"--port=localhost"}).ok());
}

TEST(NetFlagsTest, LoadGenRejectsZeroDeadline) {
  // deadline 0 means "no deadline" on the wire; as an explicit flag it
  // would silently disable what the user asked for, so it is an error.
  EXPECT_FALSE(LoadGen({"--port=9000", "--deadline-ms=0"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--deadline-ms=-1"}).ok());
  EXPECT_TRUE(LoadGen({"--port=9000", "--deadline-ms=1"}).ok());
}

TEST(NetFlagsTest, LoadGenRejectsZipfOutOfRange) {
  EXPECT_FALSE(LoadGen({"--port=9000", "--zipf-s=0"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--zipf-s=-1"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--zipf-s=8.5"}).ok());
  EXPECT_TRUE(LoadGen({"--port=9000", "--zipf-s=8"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--zipf-n=-1"}).ok());
}

TEST(NetFlagsTest, LoadGenRejectsOutOfRangeNumerics) {
  EXPECT_FALSE(LoadGen({"--port=9000", "--connections=0"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--requests=0"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--global-fraction=1.5"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--global-fraction=-0.1"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--alpha=1.0"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--alpha=-0.2"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--requests=many"}).ok());
}

TEST(NetFlagsTopKTest, LoadGenAcceptsPositiveRejectsNonPositive) {
  EXPECT_TRUE(LoadGen({"--port=9000", "--top-k=10"}).ok());
  EXPECT_TRUE(LoadGen({"--port=9000", "--top-k=1",
                       "--method=forward-push"})
                  .ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--top-k=0"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--top-k=-3"}).ok());
  EXPECT_FALSE(LoadGen({"--port=9000", "--top-k=many"}).ok());
  // The server has no such flag: it serves whatever the requests ask.
  EXPECT_FALSE(Server({"--top-k=10"}).ok());
}

TEST(NetFlagsTest, LoadGenRejectsUnknownMethod) {
  EXPECT_FALSE(LoadGen({"--port=9000", "--method=jacobi"}).ok());
  for (const char* method : {"power", "gauss-seidel", "forward-push"}) {
    SCOPED_TRACE(method);
    EXPECT_TRUE(
        LoadGen({"--port=9000",
                 (std::string("--method=") + method).c_str()})
            .ok());
  }
}

}  // namespace
}  // namespace d2pr
