// Status: lightweight error-reporting value type (RocksDB-style).
//
// The library does not use C++ exceptions. Fallible operations return a
// Status (or a Result<T>, see result.h) that callers must inspect. A Status
// is cheap to construct in the OK case (no allocation) and carries a code
// plus a human-readable message otherwise.

#ifndef D2PR_COMMON_STATUS_H_
#define D2PR_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace d2pr {

/// \brief Canonical error codes used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kNotImplemented = 7,
  kInternal = 8,
  /// A caller-supplied deadline elapsed before the work finished (the
  /// serving layers never start a solve for an already-expired request).
  kDeadlineExceeded = 9,
  /// The service is shedding load (admission control); retrying later is
  /// expected to succeed.
  kUnavailable = 10,
};

/// \brief Returns a stable human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// \brief Value type describing the outcome of a fallible operation.
///
/// An OK status stores no state beyond the code; error statuses carry a
/// heap-allocated message. Statuses are cheaply movable and copyable.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code),
        message_(code == StatusCode::kOk
                     ? nullptr
                     : std::make_shared<std::string>(std::move(message))) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }

  /// Returns the error message, or an empty string for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return message_ ? *message_ : kEmpty;
  }

  /// Returns "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message() == other.message();
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::shared_ptr<const std::string> message_;
};

}  // namespace d2pr

/// \brief Returns early with the given status if it is not OK.
#define D2PR_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::d2pr::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (false)

#endif  // D2PR_COMMON_STATUS_H_
