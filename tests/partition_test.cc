// GraphPartitioner structural invariants and edge cases.
//
// The partition is the foundation the block solvers' bit-parity contract
// stands on, so these tests check the structure exhaustively against the
// source graph: every owned row reproduces its global row, every arc
// appears exactly once in exactly one shard's in-CSR with a correct
// global arc index, in-rows ascend strictly by source, and boundary
// accounting agrees between the push and pull sides. Degenerate inputs
// (empty graph, single node, all-dangling shard, more shards than nodes)
// must produce well-formed partitions or a clean Status — never a crash.

#include "graph/partition.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "datagen/classic_generators.h"
#include "graph/graph_builder.h"

namespace d2pr {
namespace {

CsrGraph DirectedDiamond() {
  // 0 -> {1, 2}, 1 -> 3, 2 -> 3; node 3 dangling.
  GraphBuilder builder(4, GraphKind::kDirected);
  EXPECT_TRUE(builder.AddEdge(0, 1).ok());
  EXPECT_TRUE(builder.AddEdge(0, 2).ok());
  EXPECT_TRUE(builder.AddEdge(1, 3).ok());
  EXPECT_TRUE(builder.AddEdge(2, 3).ok());
  auto graph = builder.Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

/// Cross-checks every structural field of `partition` against `graph`.
void ExpectWellFormed(const CsrGraph& graph, const GraphPartition& partition) {
  ASSERT_EQ(partition.num_nodes(), graph.num_nodes());

  // Every node owned exactly once, by the shard OwnerOf names.
  std::vector<int> owned_count(static_cast<size_t>(graph.num_nodes()), 0);
  for (size_t s = 0; s < partition.num_shards(); ++s) {
    const PartitionShard& shard = partition.shard(s);
    NodeId previous = -1;
    for (NodeId v : shard.owned) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, graph.num_nodes());
      EXPECT_GT(v, previous) << "owned list must ascend";
      previous = v;
      ++owned_count[static_cast<size_t>(v)];
      EXPECT_EQ(partition.OwnerOf(v), s);
    }
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    EXPECT_EQ(owned_count[static_cast<size_t>(v)], 1) << "node " << v;
  }

  EdgeIndex boundary_in_total = 0;
  EdgeIndex boundary_out_total = 0;
  std::set<EdgeIndex> seen_in_arcs;
  for (size_t s = 0; s < partition.num_shards(); ++s) {
    const PartitionShard& shard = partition.shard(s);
    ASSERT_EQ(shard.out_offsets.size(), shard.owned.size() + 1);
    ASSERT_EQ(shard.out_arc_begin.size(), shard.owned.size());
    ASSERT_EQ(shard.in_offsets.size(), shard.owned.size() + 1);
    ASSERT_EQ(shard.in_sources.size(), shard.in_arc_index.size());
    ASSERT_EQ(shard.in_sources.size(), shard.in_interior.size());

    for (size_t k = 0; k < shard.owned.size(); ++k) {
      const NodeId v = shard.owned[k];

      // Out-CSR row k == the global row of v, arc for arc.
      const auto global_row = graph.OutNeighbors(v);
      const EdgeIndex row_begin = shard.out_offsets[k];
      const EdgeIndex row_end = shard.out_offsets[k + 1];
      ASSERT_EQ(row_end - row_begin,
                static_cast<EdgeIndex>(global_row.size()));
      EXPECT_EQ(shard.out_arc_begin[k], graph.ArcBegin(v));
      for (EdgeIndex j = 0; j < row_end - row_begin; ++j) {
        EXPECT_EQ(shard.out_targets[static_cast<size_t>(row_begin + j)],
                  global_row[static_cast<size_t>(j)]);
      }

      // In-CSR row k: strictly ascending sources, each entry's global
      // arc index naming exactly the forward arc source -> v.
      const EdgeIndex in_begin = shard.in_offsets[k];
      const EdgeIndex in_end = shard.in_offsets[k + 1];
      NodeId prev_src = -1;
      for (EdgeIndex idx = in_begin; idx < in_end; ++idx) {
        const NodeId src = shard.in_sources[static_cast<size_t>(idx)];
        const EdgeIndex arc = shard.in_arc_index[static_cast<size_t>(idx)];
        EXPECT_GT(src, prev_src) << "in-row must strictly ascend by source";
        prev_src = src;
        ASSERT_GE(arc, 0);
        ASSERT_LT(arc, graph.num_arcs());
        EXPECT_EQ(graph.targets()[static_cast<size_t>(arc)], v);
        EXPECT_GE(arc, graph.ArcBegin(src));
        EXPECT_LT(arc, graph.ArcBegin(src) + graph.OutDegree(src));
        EXPECT_TRUE(seen_in_arcs.insert(arc).second)
            << "arc " << arc << " appears in two in-rows";
      }
    }

    // Dangling bookkeeping matches the graph.
    for (NodeId v : shard.dangling_owned) {
      EXPECT_EQ(graph.OutDegree(v), 0);
    }
    // Recount both boundary sides independently.
    EdgeIndex recount_out = 0;
    for (size_t k = 0; k < shard.owned.size(); ++k) {
      for (EdgeIndex j = shard.out_offsets[k]; j < shard.out_offsets[k + 1];
           ++j) {
        if (partition.OwnerOf(shard.out_targets[static_cast<size_t>(j)]) !=
            s) {
          ++recount_out;
        }
      }
    }
    EdgeIndex recount_in = 0;
    for (size_t idx = 0; idx < shard.in_sources.size(); ++idx) {
      const bool interior = partition.OwnerOf(shard.in_sources[idx]) == s;
      EXPECT_EQ(shard.in_interior[idx], interior ? 1 : 0);
      if (!interior) ++recount_in;
    }
    EXPECT_EQ(shard.boundary_out_arcs, recount_out);
    EXPECT_EQ(shard.boundary_in_arcs, recount_in);
    boundary_in_total += shard.boundary_in_arcs;
    boundary_out_total += shard.boundary_out_arcs;
  }
  // Every arc lands in exactly one in-row; both boundary tallies count
  // the same cross-shard arc set (once at its source, once at its
  // destination).
  EXPECT_EQ(static_cast<EdgeIndex>(seen_in_arcs.size()), graph.num_arcs());
  EXPECT_EQ(boundary_in_total, boundary_out_total);
  EXPECT_EQ(partition.boundary_arcs(), boundary_in_total);
}

TEST(GraphPartitionTest, RangeOwnershipIsContiguousAndBalanced) {
  Rng rng(7);
  auto graph = ErdosRenyi(10, 20, &rng);
  ASSERT_TRUE(graph.ok());
  auto partition = GraphPartition::Build(
      *graph, {.scheme = PartitionScheme::kRange, .num_shards = 4});
  ASSERT_TRUE(partition.ok()) << partition.status().ToString();
  ASSERT_EQ(partition->num_shards(), 4u);
  // 10 nodes over 4 shards: sizes 3, 3, 2, 2, contiguous in id order.
  EXPECT_EQ(partition->shard(0).owned, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(partition->shard(1).owned, (std::vector<NodeId>{3, 4, 5}));
  EXPECT_EQ(partition->shard(2).owned, (std::vector<NodeId>{6, 7}));
  EXPECT_EQ(partition->shard(3).owned, (std::vector<NodeId>{8, 9}));
  ExpectWellFormed(*graph, *partition);
}

TEST(GraphPartitionTest, HashOwnershipMatchesModulo) {
  Rng rng(11);
  auto graph = BarabasiAlbert(40, 2, &rng);
  ASSERT_TRUE(graph.ok());
  auto partition = GraphPartition::Build(
      *graph, {.scheme = PartitionScheme::kHash, .num_shards = 3});
  ASSERT_TRUE(partition.ok());
  for (NodeId v = 0; v < graph->num_nodes(); ++v) {
    EXPECT_EQ(partition->OwnerOf(v),
              static_cast<size_t>(v) % partition->num_shards());
  }
  ExpectWellFormed(*graph, *partition);
}

TEST(GraphPartitionTest, StructureMatchesGraphAcrossSchemesAndCounts) {
  Rng rng(23);
  auto built = BarabasiAlbert(57, 3, &rng);
  ASSERT_TRUE(built.ok());
  const CsrGraph& undirected = *built;
  const CsrGraph directed = DirectedDiamond();
  for (const CsrGraph* graph : {&undirected, &directed}) {
    for (PartitionScheme scheme :
         {PartitionScheme::kRange, PartitionScheme::kHash}) {
      for (size_t shards : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE(std::string(PartitionSchemeName(scheme)) + " x " +
                     std::to_string(shards));
        auto partition = GraphPartition::Build(
            *graph, {.scheme = scheme, .num_shards = shards});
        ASSERT_TRUE(partition.ok());
        ExpectWellFormed(*graph, *partition);
      }
    }
  }
}

TEST(GraphPartitionTest, SingleShardHasNoBoundary) {
  Rng rng(5);
  auto graph = WattsStrogatz(30, 2, 0.2, &rng);
  ASSERT_TRUE(graph.ok());
  auto partition = GraphPartition::Build(*graph, {.num_shards = 1});
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->boundary_arcs(), 0);
  EXPECT_DOUBLE_EQ(partition->BoundaryFraction(), 0.0);
  ExpectWellFormed(*graph, *partition);
}

// --- edge cases: well-formed partition or clean Status, never a crash ---

TEST(GraphPartitionTest, ZeroShardCountIsInvalidArgument) {
  auto partition = GraphPartition::Build(CsrGraph(), {.num_shards = 0});
  EXPECT_FALSE(partition.ok());
  EXPECT_EQ(partition.status().code(), StatusCode::kInvalidArgument)
      << partition.status().ToString();
}

TEST(GraphPartitionTest, EmptyGraphPartitionsCleanly) {
  for (PartitionScheme scheme :
       {PartitionScheme::kRange, PartitionScheme::kHash}) {
    auto partition =
        GraphPartition::Build(CsrGraph(), {.scheme = scheme, .num_shards = 3});
    ASSERT_TRUE(partition.ok()) << partition.status().ToString();
    EXPECT_EQ(partition->num_nodes(), 0);
    EXPECT_EQ(partition->num_shards(), 3u);
    EXPECT_EQ(partition->boundary_arcs(), 0);
    EXPECT_DOUBLE_EQ(partition->BoundaryFraction(), 0.0);
    for (size_t s = 0; s < 3; ++s) {
      EXPECT_EQ(partition->shard(s).num_owned(), 0u);
      EXPECT_EQ(partition->shard(s).num_out_arcs(), 0);
      EXPECT_EQ(partition->shard(s).num_in_arcs(), 0);
    }
    EXPECT_FALSE(partition->ToString().empty());
    ExpectWellFormed(CsrGraph(), *partition);
  }
}

TEST(GraphPartitionTest, SingleNodePartitionsCleanly) {
  GraphBuilder builder(1, GraphKind::kDirected);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  for (PartitionScheme scheme :
       {PartitionScheme::kRange, PartitionScheme::kHash}) {
    auto partition =
        GraphPartition::Build(*graph, {.scheme = scheme, .num_shards = 4});
    ASSERT_TRUE(partition.ok());
    EXPECT_EQ(partition->OwnerOf(0), 0u);  // both schemes: node 0 -> shard 0
    size_t total_owned = 0;
    for (size_t s = 0; s < partition->num_shards(); ++s) {
      total_owned += partition->shard(s).num_owned();
    }
    EXPECT_EQ(total_owned, 1u);
    // The lone node is dangling; its owner records it.
    EXPECT_EQ(partition->shard(0).dangling_owned,
              (std::vector<NodeId>{0}));
    ExpectWellFormed(*graph, *partition);
  }
}

TEST(GraphPartitionTest, MoreShardsThanNodesLeavesEmptyShards) {
  const CsrGraph graph = DirectedDiamond();  // 4 nodes
  auto partition = GraphPartition::Build(
      graph, {.scheme = PartitionScheme::kRange, .num_shards = 9});
  ASSERT_TRUE(partition.ok());
  size_t non_empty = 0;
  for (size_t s = 0; s < partition->num_shards(); ++s) {
    if (partition->shard(s).num_owned() > 0) ++non_empty;
  }
  EXPECT_EQ(non_empty, 4u);
  ExpectWellFormed(graph, *partition);
}

TEST(GraphPartitionTest, AllDanglingShardIsWellFormed) {
  // Directed star into a contiguous block of sinks: under a 2-shard range
  // partition, shard 1 owns only dangling nodes.
  GraphBuilder builder(6, GraphKind::kDirected);
  for (NodeId sink = 3; sink < 6; ++sink) {
    for (NodeId src = 0; src < 3; ++src) {
      ASSERT_TRUE(builder.AddEdge(src, sink).ok());
    }
  }
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  auto partition = GraphPartition::Build(
      *graph, {.scheme = PartitionScheme::kRange, .num_shards = 2});
  ASSERT_TRUE(partition.ok());
  const PartitionShard& sinks = partition->shard(1);
  EXPECT_EQ(sinks.owned, (std::vector<NodeId>{3, 4, 5}));
  EXPECT_EQ(sinks.dangling_owned, sinks.owned);
  EXPECT_EQ(sinks.num_out_arcs(), 0);
  // Every in-arc of the sink shard crosses the boundary.
  EXPECT_EQ(sinks.num_in_arcs(), 9);
  EXPECT_EQ(sinks.boundary_in_arcs, 9);
  ExpectWellFormed(*graph, *partition);
}

TEST(GraphPartitionTest, PullOnlyBuildSkipsOutCsrButKeepsAccounting) {
  // build_out_csr = false (what the serving router uses) must skip only
  // the forward arrays: the in-CSR, interior flags, dangling lists, and
  // every boundary counter stay identical to a full build.
  Rng rng(31);
  auto graph = BarabasiAlbert(50, 2, &rng);
  ASSERT_TRUE(graph.ok());
  for (PartitionScheme scheme :
       {PartitionScheme::kRange, PartitionScheme::kHash}) {
    auto full = GraphPartition::Build(
        *graph, {.scheme = scheme, .num_shards = 3});
    auto pull_only = GraphPartition::Build(
        *graph, {.scheme = scheme, .num_shards = 3, .build_out_csr = false});
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(pull_only.ok());
    EXPECT_EQ(pull_only->boundary_arcs(), full->boundary_arcs());
    EXPECT_DOUBLE_EQ(pull_only->BoundaryFraction(),
                     full->BoundaryFraction());
    for (size_t s = 0; s < 3; ++s) {
      const PartitionShard& a = pull_only->shard(s);
      const PartitionShard& b = full->shard(s);
      EXPECT_TRUE(a.out_offsets.empty());
      EXPECT_TRUE(a.out_targets.empty());
      EXPECT_TRUE(a.out_arc_begin.empty());
      EXPECT_EQ(a.owned, b.owned);
      EXPECT_EQ(a.in_offsets, b.in_offsets);
      EXPECT_EQ(a.in_sources, b.in_sources);
      EXPECT_EQ(a.in_arc_index, b.in_arc_index);
      EXPECT_EQ(a.in_interior, b.in_interior);
      EXPECT_EQ(a.dangling_owned, b.dangling_owned);
      EXPECT_EQ(a.boundary_in_arcs, b.boundary_in_arcs);
      EXPECT_EQ(a.boundary_out_arcs, b.boundary_out_arcs);
    }
  }
}

TEST(GraphPartitionTest, WeightedGraphKeepsArcAlignment) {
  GraphBuilder builder(4, GraphKind::kDirected, /*weighted=*/true);
  ASSERT_TRUE(builder.AddEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(builder.AddEdge(0, 3, 0.5).ok());
  ASSERT_TRUE(builder.AddEdge(2, 1, 4.0).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  auto partition = GraphPartition::Build(
      *graph, {.scheme = PartitionScheme::kHash, .num_shards = 2});
  ASSERT_TRUE(partition.ok());
  // The in-arc index must slice per-arc data correctly: reconstruct each
  // arc's weight through it.
  for (size_t s = 0; s < partition->num_shards(); ++s) {
    const PartitionShard& shard = partition->shard(s);
    for (size_t k = 0; k < shard.owned.size(); ++k) {
      for (EdgeIndex idx = shard.in_offsets[k]; idx < shard.in_offsets[k + 1];
           ++idx) {
        const NodeId src = shard.in_sources[static_cast<size_t>(idx)];
        const EdgeIndex arc = shard.in_arc_index[static_cast<size_t>(idx)];
        EXPECT_EQ(graph->weights()[static_cast<size_t>(arc)],
                  graph->ArcWeight(src, shard.owned[k]));
      }
    }
  }
  ExpectWellFormed(*graph, *partition);
}

}  // namespace
}  // namespace d2pr
