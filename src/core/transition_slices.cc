#include "core/transition_slices.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/string_util.h"

namespace d2pr {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// The O(|V|) per-source state the subgraph path broadcasts: everything a
/// destination shard needs to recompute any in-arc's probability without
/// seeing the source's row. Each field is written only by the source
/// node's owner shard (from its own rows) — the in-process stand-in for
/// a per-key broadcast round.
struct RowState {
  std::vector<double> log_metric;       ///< log(metric(v)); -inf at 0.
  std::vector<double> max_exponent;     ///< Row softmax max.
  std::vector<double> row_sum;          ///< Softmax denominator.
  std::vector<uint8_t> uniform_row;     ///< All-vanished fallback rows.
  std::vector<double> strength_total;   ///< Θ(v); only when beta > 0.
};

/// Allocates slices shaped for `partition` with the dangling view filled
/// from the graph's out-degrees (ascending by construction — the fold
/// order the solvers' bit-parity contract requires).
TransitionSlices ShapedSlices(const CsrGraph& graph,
                              const GraphPartition& partition) {
  TransitionSlices slices;
  slices.num_nodes = graph.num_nodes();
  slices.in_probs.resize(partition.num_shards());
  for (size_t s = 0; s < partition.num_shards(); ++s) {
    slices.in_probs[s].resize(
        static_cast<size_t>(partition.shard(s).num_in_arcs()));
  }
  slices.is_dangling.assign(static_cast<size_t>(graph.num_nodes()), 0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.OutDegree(v) == 0) {
      slices.is_dangling[static_cast<size_t>(v)] = 1;
      slices.dangling.push_back(v);
    }
  }
  return slices;
}

}  // namespace

const char* SliceBuildName(SliceBuild build) {
  switch (build) {
    case SliceBuild::kFromMatrix:
      return "matrix";
    case SliceBuild::kSubgraph:
      return "subgraph";
  }
  return "unknown";
}

Result<TransitionSlices> BuildTransitionSlices(
    const GraphPartition& partition, const TransitionMatrix& transition) {
  if (partition.num_nodes() != transition.num_nodes()) {
    return Status::InvalidArgument(
        StrCat("partition covers ", partition.num_nodes(),
               " nodes but transition matrix has ", transition.num_nodes()));
  }
  TransitionSlices slices;
  slices.num_nodes = transition.num_nodes();
  slices.in_probs.resize(partition.num_shards());
  const auto probs = transition.probs();
  for (size_t s = 0; s < partition.num_shards(); ++s) {
    const PartitionShard& shard = partition.shard(s);
    std::vector<double>& slice = slices.in_probs[s];
    slice.resize(shard.in_arc_index.size());
    // A pure permutation copy: position idx of the slice is the
    // probability the sweep used to gather at in_arc_index[idx].
    for (size_t idx = 0; idx < shard.in_arc_index.size(); ++idx) {
      slice[idx] = probs[static_cast<size_t>(shard.in_arc_index[idx])];
    }
  }
  slices.is_dangling.assign(static_cast<size_t>(transition.num_nodes()), 0);
  slices.dangling = transition.DanglingNodes();
  for (NodeId v : slices.dangling) {
    slices.is_dangling[static_cast<size_t>(v)] = 1;
  }
  return slices;
}

Result<TransitionSlices> BuildTransitionSlicesLocal(
    const CsrGraph& graph, const GraphPartition& partition,
    const TransitionConfig& config) {
  D2PR_RETURN_NOT_OK(ValidateTransitionConfig(graph, config));
  if (partition.num_nodes() != graph.num_nodes()) {
    return Status::InvalidArgument(
        StrCat("partition covers ", partition.num_nodes(),
               " nodes but the graph has ", graph.num_nodes()));
  }
  const DegreeMetric metric = ResolveMetric(graph, config.metric);
  // Beta folds to 0 on unweighted graphs, exactly as in
  // TransitionMatrix::Build (see the comment there).
  const double beta = graph.weighted() ? config.beta : 0.0;
  const double p = config.p;
  const NodeId n = graph.num_nodes();

  // --- Broadcast state, O(|V|). ---
  // log_metric is the broadcast global-metric vector: row probabilities
  // depend on *destination* metrics, which a shard cannot derive from its
  // own rows (a boundary target's degree is invisible locally).
  RowState state;
  {
    const std::vector<double> metric_values = MetricValues(graph, metric);
    state.log_metric.resize(static_cast<size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      state.log_metric[static_cast<size_t>(v)] =
          metric_values[static_cast<size_t>(v)] > 0.0
              ? std::log(metric_values[static_cast<size_t>(v)])
              : kNegInf;
    }
  }
  state.max_exponent.assign(static_cast<size_t>(n), kNegInf);
  state.row_sum.assign(static_cast<size_t>(n), 0.0);
  state.uniform_row.assign(static_cast<size_t>(n), 0);
  if (beta > 0.0) state.strength_total.assign(static_cast<size_t>(n), 0.0);

  // Pass 1 — every shard normalizes its OWN rows (this loop nests
  // shard-then-owned rather than scanning nodes so the data flow it
  // documents is the distributed one: a shard touches only its rows).
  // The per-arc numerators are recomputed in pass 2 instead of stored:
  // that trades one exp per arc for never holding O(|E|) state.
  const auto targets = graph.targets();
  for (size_t s = 0; s < partition.num_shards(); ++s) {
    for (NodeId i : partition.shard(s).owned) {
      const EdgeIndex begin = graph.ArcBegin(i);
      const EdgeIndex end = begin + graph.OutDegree(i);
      if (begin == end) continue;  // dangling: no row to normalize
      double max_exponent = kNegInf;
      for (EdgeIndex e = begin; e < end; ++e) {
        const NodeId j = targets[static_cast<size_t>(e)];
        max_exponent = std::max(
            max_exponent,
            DecoupledArcExponent(state.log_metric[static_cast<size_t>(j)],
                                 p));
      }
      // Summed in ascending arc order — the same left-to-right fold
      // TransitionMatrix::Build performs, so the denominator is the same
      // double bit for bit.
      double row_sum = 0.0;
      for (EdgeIndex e = begin; e < end; ++e) {
        const NodeId j = targets[static_cast<size_t>(e)];
        row_sum += DecoupledArcNumerator(
            DecoupledArcExponent(state.log_metric[static_cast<size_t>(j)],
                                 p),
            max_exponent);
      }
      if (row_sum == 0.0) {
        // All destinations vanished in the limit (metric 0, p < 0): the
        // row falls back to uniform, mirroring Build.
        state.uniform_row[static_cast<size_t>(i)] = 1;
        row_sum = static_cast<double>(end - begin);
      }
      state.max_exponent[static_cast<size_t>(i)] = max_exponent;
      state.row_sum[static_cast<size_t>(i)] = row_sum;
      if (beta > 0.0) {
        state.strength_total[static_cast<size_t>(i)] = graph.OutStrength(i);
      }
    }
  }

  // Pass 2 — every shard fills its own slice by streaming its in-CSR.
  // Each probability is a pure function of the broadcast state, the
  // destination's log-metric (an owned node), and — for weighted beta
  // blends — the arc's weight, static structure that rides with the
  // in-CSR. The kernel calls are the same out-of-line functions Build
  // uses, so the recomputed numerator and blend match its bits exactly.
  TransitionSlices slices = ShapedSlices(graph, partition);
  const auto weights = graph.weighted() ? graph.weights()
                                        : std::span<const double>{};
  for (size_t s = 0; s < partition.num_shards(); ++s) {
    const PartitionShard& shard = partition.shard(s);
    std::vector<double>& slice = slices.in_probs[s];
    for (size_t k = 0; k < shard.owned.size(); ++k) {
      const NodeId dst = shard.owned[k];
      const double dst_exponent_input =
          state.log_metric[static_cast<size_t>(dst)];
      const EdgeIndex begin = shard.in_offsets[k];
      const EdgeIndex end = shard.in_offsets[k + 1];
      for (EdgeIndex idx = begin; idx < end; ++idx) {
        const NodeId src =
            shard.in_sources[static_cast<size_t>(idx)];
        const size_t si = static_cast<size_t>(src);
        const double numerator =
            state.uniform_row[si]
                ? 1.0
                : DecoupledArcNumerator(
                      DecoupledArcExponent(dst_exponent_input, p),
                      state.max_exponent[si]);
        const double arc_weight =
            beta > 0.0
                ? weights[static_cast<size_t>(
                      shard.in_arc_index[static_cast<size_t>(idx)])]
                : 0.0;
        slice[static_cast<size_t>(idx)] = BlendedArcProb(
            numerator, state.row_sum[si], beta, arc_weight,
            beta > 0.0 ? state.strength_total[si] : 0.0);
      }
    }
  }
  return slices;
}

Result<std::vector<double>> BuildShardSliceFromCut(
    const ShardCut& cut, std::span<const double> metric_values,
    const TransitionConfig& config) {
  D2PR_RETURN_NOT_OK(ValidateTransitionConfig(cut.meta.weighted, config));
  if (metric_values.size() != static_cast<size_t>(cut.meta.num_nodes)) {
    return Status::InvalidArgument(
        StrCat("metric vector holds ", metric_values.size(),
               " values but the cut's graph has ", cut.meta.num_nodes,
               " nodes"));
  }
  const double beta = cut.meta.weighted ? config.beta : 0.0;
  const double p = config.p;
  const PartitionShard& shard = cut.shard;

  // log_metric over the FULL broadcast vector: pass 1 folds the rows of
  // owned and boundary sources, whose targets are arbitrary global ids.
  std::vector<double> log_metric(metric_values.size());
  for (size_t v = 0; v < metric_values.size(); ++v) {
    log_metric[v] = metric_values[v] > 0.0 ? std::log(metric_values[v])
                                           : kNegInf;
  }

  // Pass 1 over a compact slot space — slot k < owned for owned[k], slot
  // owned + b for boundary_sources[b] — since those are the only sources
  // the in-CSR can name. Each row folds in ascending arc order through
  // the shared kernels, so every double matches the whole-graph pass bit
  // for bit; ghost rows ARE the boundary sources' rows, in row order.
  const size_t num_owned = shard.owned.size();
  const size_t num_slots = num_owned + cut.boundary_sources.size();
  std::vector<double> max_exponent(num_slots, kNegInf);
  std::vector<double> row_sum(num_slots, 0.0);
  std::vector<uint8_t> uniform_row(num_slots, 0);
  std::vector<double> strength_total;
  if (beta > 0.0) strength_total.assign(num_slots, 0.0);

  const auto fold_row = [&](size_t slot, std::span<const NodeId> targets,
                            std::span<const double> weights) {
    if (targets.empty()) return;  // dangling: no row to normalize
    double row_max = kNegInf;
    for (NodeId j : targets) {
      row_max = std::max(
          row_max,
          DecoupledArcExponent(log_metric[static_cast<size_t>(j)], p));
    }
    double sum = 0.0;
    for (NodeId j : targets) {
      sum += DecoupledArcNumerator(
          DecoupledArcExponent(log_metric[static_cast<size_t>(j)], p),
          row_max);
    }
    if (sum == 0.0) {
      uniform_row[slot] = 1;
      sum = static_cast<double>(targets.size());
    }
    max_exponent[slot] = row_max;
    row_sum[slot] = sum;
    if (beta > 0.0) {
      // The ascending-arc-order weight sum CsrGraph::OutStrength
      // performs, replayed over the cut's copy of the row.
      double theta = 0.0;
      for (double w : weights) theta += w;
      strength_total[slot] = theta;
    }
  };

  for (size_t k = 0; k < num_owned; ++k) {
    const size_t begin = static_cast<size_t>(shard.out_offsets[k]);
    const size_t end = static_cast<size_t>(shard.out_offsets[k + 1]);
    fold_row(k,
             std::span<const NodeId>(shard.out_targets)
                 .subspan(begin, end - begin),
             beta > 0.0 ? std::span<const double>(cut.out_weights)
                              .subspan(begin, end - begin)
                        : std::span<const double>{});
  }
  for (size_t b = 0; b < cut.boundary_sources.size(); ++b) {
    const size_t begin = static_cast<size_t>(cut.ghost_offsets[b]);
    const size_t end = static_cast<size_t>(cut.ghost_offsets[b + 1]);
    fold_row(num_owned + b,
             std::span<const NodeId>(cut.ghost_targets)
                 .subspan(begin, end - begin),
             beta > 0.0 ? std::span<const double>(cut.ghost_weights)
                              .subspan(begin, end - begin)
                        : std::span<const double>{});
  }

  // Pass 2 — stream the in-CSR; the kernel calls and operand values are
  // the ones BuildTransitionSlicesLocal's pass 2 would produce.
  std::vector<double> slice(shard.in_sources.size());
  for (size_t k = 0; k < num_owned; ++k) {
    const double dst_exponent_input =
        log_metric[static_cast<size_t>(shard.owned[k])];
    const size_t begin = static_cast<size_t>(shard.in_offsets[k]);
    const size_t end = static_cast<size_t>(shard.in_offsets[k + 1]);
    for (size_t idx = begin; idx < end; ++idx) {
      const NodeId src = shard.in_sources[idx];
      size_t slot;
      if (shard.in_interior[idx]) {
        slot = static_cast<size_t>(
            std::lower_bound(shard.owned.begin(), shard.owned.end(), src) -
            shard.owned.begin());
      } else {
        slot = num_owned +
               static_cast<size_t>(std::lower_bound(
                                       cut.boundary_sources.begin(),
                                       cut.boundary_sources.end(), src) -
                                   cut.boundary_sources.begin());
      }
      const double numerator =
          uniform_row[slot]
              ? 1.0
              : DecoupledArcNumerator(
                    DecoupledArcExponent(dst_exponent_input, p),
                    max_exponent[slot]);
      const double arc_weight = beta > 0.0 ? cut.in_weights[idx] : 0.0;
      slice[idx] = BlendedArcProb(numerator, row_sum[slot], beta, arc_weight,
                                  beta > 0.0 ? strength_total[slot] : 0.0);
    }
  }
  return slice;
}

}  // namespace d2pr
