#include "serve/score_cache.h"

#include <utility>

#include "common/string_util.h"

namespace d2pr {

ScoreCache::ScoreCache(const ScoreCacheOptions& options) : options_(options) {
  if (!options_.now) {
    options_.now = [] { return std::chrono::steady_clock::now(); };
  }
}

ScoreCache::ScoreCache(size_t capacity) : ScoreCache([capacity] {
  ScoreCacheOptions options;
  options.capacity = capacity;
  return options;
}()) {}

std::string ScoreCache::KeyFor(const RankRequest& request) {
  // '|' separates fields, ',' separates seeds; doubles are serialized at
  // full precision so distinct parameters never collide.
  std::string key = StrCat(
      FormatGeneral(request.p, 17), "|", FormatGeneral(request.beta, 17), "|",
      static_cast<int>(request.metric), "|",
      FormatGeneral(request.alpha, 17), "|",
      FormatGeneral(request.tolerance, 17), "|", request.max_iterations, "|",
      static_cast<int>(request.dangling), "|",
      static_cast<int>(request.method), "|",
      FormatGeneral(request.push_epsilon, 17), "|", request.top_k, "|");
  for (NodeId seed : request.seeds) key += StrCat(seed, ",");
  return key;
}

size_t ScoreCache::ChargeFor(const std::string& key,
                             const RankResponse& response) {
  // The fixed term covers the hash-map node, the Entry bookkeeping, and
  // the shared response's control block + struct body; the variable terms
  // are the payloads that actually dominate at scale.
  constexpr size_t kFixedOverhead =
      sizeof(Entry) + sizeof(RankResponse) + 64;
  return kFixedOverhead + key.size() +
         response.scores.size() * sizeof(double) +
         response.top.size() * sizeof(RankedEntry);
}

bool ScoreCache::Expired(const Entry& entry,
                         std::chrono::steady_clock::time_point now) const {
  return options_.ttl.count() > 0 && now - entry.inserted_at > options_.ttl;
}

void ScoreCache::DropExpired(std::chrono::steady_clock::time_point now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (Expired(it->second, now)) {
      bytes_in_use_ -= it->second.charge;
      it = entries_.erase(it);
      ++stats_.expirations;
    } else {
      ++it;
    }
  }
}

void ScoreCache::EvictOne(const std::string* protect) {
  // LFU scan: budgets are small (hundreds of entries) and insertions are
  // amortized behind full solves, so O(n) beats maintaining a
  // frequency-ordered index.
  auto victim = entries_.end();
  for (auto candidate = entries_.begin(); candidate != entries_.end();
       ++candidate) {
    if (protect != nullptr && candidate->first == *protect) continue;
    if (victim == entries_.end()) {
      victim = candidate;
      continue;
    }
    const Entry& c = candidate->second;
    const Entry& v = victim->second;
    if (c.uses < v.uses || (c.uses == v.uses && c.sequence < v.sequence)) {
      victim = candidate;
    }
  }
  if (victim == entries_.end()) return;
  bytes_in_use_ -= victim->second.charge;
  entries_.erase(victim);
  ++stats_.evictions;
}

std::optional<RankResponse> ScoreCache::Lookup(const std::string& key) {
  std::shared_ptr<const RankResponse> found;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    if (Expired(it->second, options_.now())) {
      bytes_in_use_ -= it->second.charge;
      entries_.erase(it);
      ++stats_.expirations;
      ++stats_.misses;
      return std::nullopt;
    }
    ++it->second.uses;
    ++stats_.hits;
    found = it->second.response;
  }
  // The O(num_nodes) score copy happens outside the mutex.
  return *found;
}

void ScoreCache::Insert(const std::string& key, RankResponse response) {
  if (!enabled()) return;
  const size_t charge = ChargeFor(key, response);
  if (options_.capacity_bytes > 0 && charge > options_.capacity_bytes) {
    // One entry bigger than the whole byte budget: admitting it would
    // flush everything else and still break the budget. Reject it here,
    // before any eviction, so an oversize insert cannot even flush the
    // cache on its way to rejection. (The paths below each re-enforce
    // the budget locally, so the invariant `bytes_in_use_ <=
    // capacity_bytes after every mutation` does not depend on this
    // gate — it used to, through exactly this charge <= capacity_bytes
    // coupling, which left the refresh path one refactor away from a
    // permanent budget breach.)
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.oversize_rejections;
    return;
  }
  auto shared = std::make_shared<const RankResponse>(std::move(response));
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = options_.now();
  DropExpired(now);

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh: new payload, new TTL window; use count carries over so a
    // hot entry does not become an eviction candidate on refresh.
    bytes_in_use_ -= it->second.charge;
    it->second.response = std::move(shared);
    it->second.inserted_at = now;
    it->second.charge = charge;
    bytes_in_use_ += charge;
    ++stats_.insertions;
    // A refreshed payload can be larger than the one it replaced; evict
    // colder entries (never the entry just refreshed) until the byte
    // budget holds again.
    while (options_.capacity_bytes > 0 &&
           bytes_in_use_ > options_.capacity_bytes && entries_.size() > 1) {
      EvictOne(&key);
    }
    if (options_.capacity_bytes > 0 &&
        bytes_in_use_ > options_.capacity_bytes) {
      // Everything else is evicted and the refreshed entry alone still
      // breaks the budget (charge > capacity_bytes): reject it — drop
      // the entry — instead of leaving bytes_in_use_ permanently above
      // the cap. The admission gate makes this unreachable today; it is
      // enforced here regardless so the budget invariant is provable
      // from this path alone. Evicting other entries did not invalidate
      // `it` (unordered_map erase touches only erased iterators).
      bytes_in_use_ -= charge;
      entries_.erase(it);
      ++stats_.oversize_rejections;
    }
    return;
  }

  while (!entries_.empty() &&
         ((options_.capacity > 0 && entries_.size() >= options_.capacity) ||
          (options_.capacity_bytes > 0 &&
           bytes_in_use_ + charge > options_.capacity_bytes))) {
    EvictOne();
  }
  if (options_.capacity_bytes > 0 &&
      bytes_in_use_ + charge > options_.capacity_bytes) {
    // The loop above stopped with the cache empty (its first conjunct),
    // so this entry alone exceeds the budget: reject rather than admit a
    // breach. Same belt-and-braces as the refresh path — unreachable
    // while the admission gate holds, load-bearing the day it drifts.
    ++stats_.oversize_rejections;
    return;
  }

  Entry entry;
  entry.response = std::move(shared);
  entry.sequence = next_sequence_++;
  entry.charge = charge;
  entry.inserted_at = now;
  entries_.emplace(key, std::move(entry));
  bytes_in_use_ += charge;
  ++stats_.insertions;
}

ScoreCacheStats ScoreCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ScoreCacheStats snapshot = stats_;
  snapshot.bytes_in_use = bytes_in_use_;
  return snapshot;
}

size_t ScoreCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t ScoreCache::bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_in_use_;
}

void ScoreCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  bytes_in_use_ = 0;
}

}  // namespace d2pr
