#include "serve/score_cache.h"

#include <utility>

#include "common/string_util.h"

namespace d2pr {

ScoreCache::ScoreCache(const ScoreCacheOptions& options) : options_(options) {
  if (!options_.now) {
    options_.now = [] { return std::chrono::steady_clock::now(); };
  }
}

std::string ScoreCache::KeyFor(const RankRequest& request) {
  // '|' separates fields, ',' separates seeds; doubles are serialized at
  // full precision so distinct parameters never collide.
  std::string key = StrCat(
      FormatGeneral(request.p, 17), "|", FormatGeneral(request.beta, 17), "|",
      static_cast<int>(request.metric), "|",
      FormatGeneral(request.alpha, 17), "|",
      FormatGeneral(request.tolerance, 17), "|", request.max_iterations, "|",
      static_cast<int>(request.dangling), "|",
      static_cast<int>(request.method), "|",
      FormatGeneral(request.push_epsilon, 17), "|");
  for (NodeId seed : request.seeds) key += StrCat(seed, ",");
  return key;
}

bool ScoreCache::Expired(const Entry& entry,
                         std::chrono::steady_clock::time_point now) const {
  return options_.ttl.count() > 0 && now - entry.inserted_at > options_.ttl;
}

void ScoreCache::DropExpired(std::chrono::steady_clock::time_point now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (Expired(it->second, now)) {
      it = entries_.erase(it);
      ++stats_.expirations;
    } else {
      ++it;
    }
  }
}

std::optional<RankResponse> ScoreCache::Lookup(const std::string& key) {
  std::shared_ptr<const RankResponse> found;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    if (Expired(it->second, options_.now())) {
      entries_.erase(it);
      ++stats_.expirations;
      ++stats_.misses;
      return std::nullopt;
    }
    ++it->second.uses;
    ++stats_.hits;
    found = it->second.response;
  }
  // The O(num_nodes) score copy happens outside the mutex.
  return *found;
}

void ScoreCache::Insert(const std::string& key, RankResponse response) {
  if (options_.capacity == 0) return;
  auto shared = std::make_shared<const RankResponse>(std::move(response));
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = options_.now();
  DropExpired(now);

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh: new payload, new TTL window; use count carries over so a
    // hot entry does not become an eviction candidate on refresh.
    it->second.response = std::move(shared);
    it->second.inserted_at = now;
    ++stats_.insertions;
    return;
  }

  while (entries_.size() >= options_.capacity) {
    // LFU scan: capacities are small (hundreds) and insertions are
    // amortized behind full solves, so O(n) beats maintaining a
    // frequency-ordered index.
    auto victim = entries_.begin();
    for (auto candidate = std::next(entries_.begin());
         candidate != entries_.end(); ++candidate) {
      const Entry& c = candidate->second;
      const Entry& v = victim->second;
      if (c.uses < v.uses || (c.uses == v.uses && c.sequence < v.sequence)) {
        victim = candidate;
      }
    }
    entries_.erase(victim);
    ++stats_.evictions;
  }

  Entry entry;
  entry.response = std::move(shared);
  entry.sequence = next_sequence_++;
  entry.inserted_at = now;
  entries_.emplace(key, std::move(entry));
  ++stats_.insertions;
}

ScoreCacheStats ScoreCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ScoreCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void ScoreCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace d2pr
