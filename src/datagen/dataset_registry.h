// Registry of the eight paper data graphs (synthetic analogs).
//
// Table 3 of the paper lists eight graphs from four datasets; each drives
// one recommendation application with its own significance semantics. This
// registry reproduces each graph with a generator configuration chosen to
// preserve the property the paper shows matters: the sign and strength of
// the degree <-> significance relationship (paper Fig. 5) and the
// neighbor-degree heterogeneity (Table 3, last column).
//
//   id                          group  mechanism in the synthetic world
//   --------------------------  -----  ----------------------------------
//   imdb_actor_actor             A     cost-budget: good actors do few,
//                                      expensive movies (§1.2.1)
//   epinions_commenter_commenter A     effort dilution: prolific
//                                      commenters earn less trust
//   epinions_product_product     A     crowd penalty: heavily-commented
//                                      products rate worse (Fig. 5)
//   imdb_movie_movie             B     big casts = big budget: mild
//                                      positive size -> rating bonus
//   dblp_author_author           B     homogeneous budgets, small papers:
//                                      degree weakly informative
//   dblp_article_article         C     citations grow with author count
//   lastfm_listener_listener     C     social activity drives both degree
//                                      and listening volume
//   lastfm_artist_artist         C     play counts grow with audience size

#ifndef D2PR_DATAGEN_DATASET_REGISTRY_H_
#define D2PR_DATAGEN_DATASET_REGISTRY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace d2pr {

/// \brief The eight data graphs of the paper's Table 3.
enum class PaperGraphId {
  kImdbMovieMovie,
  kImdbActorActor,
  kDblpArticleArticle,
  kDblpAuthorAuthor,
  kLastfmListenerListener,
  kLastfmArtistArtist,
  kEpinionsCommenterCommenter,
  kEpinionsProductProduct,
};

/// \brief The paper's application grouping by optimal de-coupling regime.
enum class ApplicationGroup {
  kPenalizationHelps,  ///< Group A: optimal p > 0.
  kConventionalIdeal,  ///< Group B: optimal p = 0.
  kBoostingHelps,      ///< Group C: optimal p < 0.
};

/// \brief One fully-materialized data graph with its application evidence.
struct DataGraph {
  PaperGraphId id;
  std::string name;               ///< e.g. "imdb_actor_actor".
  ApplicationGroup expected_group;
  std::string weight_semantics;   ///< e.g. "# of common movies".
  CsrGraph unweighted;            ///< Used by Figs 2-8 experiments.
  CsrGraph weighted;              ///< Same topology; used by Figs 9-11.
  /// Application-specific node significance (external evidence).
  std::vector<double> significance;
};

/// \brief Generation knobs for the registry.
struct RegistryOptions {
  /// Multiplies node counts (1.0 ≈ 1.6k-4k nodes per graph; sized so the
  /// full bench suite completes in minutes on two cores).
  double scale = 1.0;
  uint64_t seed = 2016;
};

/// \brief Builds one named data graph. Deterministic in (id, options).
Result<DataGraph> MakePaperGraph(PaperGraphId id,
                                 const RegistryOptions& options = {});

/// \brief All eight ids in the paper's Table 3 order.
std::vector<PaperGraphId> AllPaperGraphIds();

/// \brief Ids belonging to one application group, in paper figure order.
std::vector<PaperGraphId> GraphsInGroup(ApplicationGroup group);

std::string_view PaperGraphName(PaperGraphId id);
ApplicationGroup ExpectedGroup(PaperGraphId id);
std::string_view GroupLabel(ApplicationGroup group);

/// \brief Reads the D2PR_SCALE environment variable (default 1.0, clamped
/// to [0.1, 100]); bench binaries use it so one knob resizes every
/// experiment.
double ScaleFromEnv();

}  // namespace d2pr

#endif  // D2PR_DATAGEN_DATASET_REGISTRY_H_
