// Microbenchmarks for the rank/correlation kernels used by every sweep.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "stats/correlation.h"
#include "stats/ranking.h"

namespace d2pr {
namespace {

std::vector<double> RandomVector(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (double& v : values) v = rng.Normal();
  return values;
}

void BM_AverageRanks(benchmark::State& state) {
  const auto values = RandomVector(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    auto ranks = AverageRanks(values);
    benchmark::DoNotOptimize(ranks.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AverageRanks)->Arg(10000)->Arg(100000);

void BM_Spearman(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = RandomVector(n, 2);
  const auto y = RandomVector(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpearmanCorrelation(x, y));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Spearman)->Arg(10000)->Arg(100000);

void BM_KendallTauB(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = RandomVector(n, 4);
  const auto y = RandomVector(n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KendallTauB(x, y));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KendallTauB)->Arg(10000)->Arg(100000);

void BM_TopK(benchmark::State& state) {
  const auto values = RandomVector(100000, 6);
  for (auto _ : state) {
    auto top = TopK(values, static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(top.data());
  }
}
BENCHMARK(BM_TopK)->Arg(10)->Arg(1000);

}  // namespace
}  // namespace d2pr

BENCHMARK_MAIN();
