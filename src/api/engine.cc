#include "api/engine.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/gauss_seidel.h"
#include "core/pagerank.h"
#include "core/push_ppr.h"
#include "core/teleport.h"
#include "linalg/vec_ops.h"
#include "topk/topk_solver.h"

namespace d2pr {

namespace {

// Extrapolation guardrail: a requested point farther than this many stored
// trajectory steps falls back to a plain warm start.
constexpr double kMaxExtrapolationFactor = 4.0;

}  // namespace

const char* SolverMethodName(SolverMethod method) {
  switch (method) {
    case SolverMethod::kPower:
      return "power";
    case SolverMethod::kGaussSeidel:
      return "gauss-seidel";
    case SolverMethod::kForwardPush:
      return "forward-push";
  }
  return "unknown";
}

D2prEngine::D2prEngine(CsrGraph graph, const EngineOptions& options)
    : D2prEngine(std::make_shared<const CsrGraph>(std::move(graph)),
                 options) {}

namespace {

TransitionResolverOptions ToResolverOptions(const EngineOptions& options) {
  TransitionResolverOptions resolver;
  resolver.cache_capacity = options.transition_cache_capacity;
  resolver.cache_dir = options.cache_dir;
  resolver.persist_mode = options.persist_mode;
  resolver.persist_policy = options.persist_policy;
  resolver.verify_checksums = options.persist_verify_checksums;
  resolver.precomputed_graph_fingerprint =
      options.precomputed_graph_fingerprint;
  return resolver;
}

}  // namespace

D2prEngine::D2prEngine(std::shared_ptr<const CsrGraph> graph,
                       const EngineOptions& options)
    : graph_(graph),
      options_(options),
      resolver_(std::move(graph), ToResolverOptions(options)) {}

D2prEngine::~D2prEngine() {
  if (options_.persist_policy == PersistPolicy::kLazy &&
      resolver_.store_writable()) {
    const Status spilled = PersistCachedTransitions();
    if (!spilled.ok()) {
      D2PR_LOG(Warning) << "lazy transition spill failed at shutdown: "
                        << spilled.ToString();
    }
  }
}

Status D2prEngine::PersistCachedTransitions() {
  int64_t saves = 0;
  const Status flushed = resolver_.PersistCached(&saves);
  stats_.transition_store_saves += saves;
  return flushed;
}

D2prEngine D2prEngine::Borrowing(const CsrGraph& graph,
                                 const EngineOptions& options) {
  return D2prEngine(
      std::shared_ptr<const CsrGraph>(&graph, [](const CsrGraph*) {}),
      options);
}

void D2prEngine::ClearCaches() {
  resolver_.Clear();
  std::lock_guard<std::mutex> lock(warm_mu_);
  warm_entries_.clear();
}

TransitionKey D2prEngine::ResolveKey(const RankRequest& request) const {
  TransitionKey key;
  key.p = request.p;
  key.beta = graph_->weighted() ? request.beta : 0.0;
  key.metric = ResolveMetric(*graph_, request.metric);
  return key;
}

std::span<const double> D2prEngine::UniformTeleportVector() {
  // Built on first unseeded query so purely personalized workloads never
  // pay for it; immutable afterwards, so readers need no lock.
  std::call_once(uniform_teleport_once_, [this] {
    uniform_teleport_ = UniformTeleport(graph_->num_nodes());
  });
  return uniform_teleport_;
}

Result<std::shared_ptr<const TransitionMatrix>> D2prEngine::GetTransition(
    const TransitionKey& key, bool* cache_hit, bool* store_hit) {
  TransitionResolver::Outcome outcome;
  auto resolved = resolver_.Resolve(key, &outcome);
  // Fold the resolver's outcome into this engine's cumulative stats; the
  // resolver keeps its own counters, but EngineStats is the per-engine
  // telemetry surface tests and routers read.
  *cache_hit = outcome.cache_hit;
  *store_hit = outcome.store_hit;
  if (outcome.cache_hit) ++stats_.transition_cache_hits;
  if (outcome.store_hit) ++stats_.transition_store_loads;
  if (outcome.built) ++stats_.transition_builds;
  if (outcome.spilled) ++stats_.transition_store_saves;
  return resolved;
}

Result<RankResponse> D2prEngine::Rank(const RankRequest& request) {
  ++stats_.requests;
  // Gauge for least-loaded routing (EngineRouter): held for the whole
  // call, including validation failures, so a router sees every in-flight
  // request it dispatched.
  ++stats_.requests_inflight;
  struct InflightGuard {
    std::atomic<int64_t>& gauge;
    ~InflightGuard() { --gauge; }
  } inflight_guard{stats_.requests_inflight};
  // Parameter checks run before the cache is touched; shared with every
  // other serving front end so the surface errors identically per mode.
  D2PR_RETURN_NOT_OK(ValidateRankRequestParameters(request));

  // The teleport vector is validated before the transition is fetched for
  // the same reason as the parameter checks above: bad seeds must not pay
  // a build or evict a cached matrix.
  std::vector<double> seeded;
  std::span<const double> teleport;
  if (!request.seeds.empty()) {
    D2PR_ASSIGN_OR_RETURN(seeded,
                          SeededTeleport(graph_->num_nodes(), request.seeds));
    teleport = seeded;
  } else {
    teleport = UniformTeleportVector();
  }

  const TransitionKey key = ResolveKey(request);

  RankResponse response;
  response.method = request.method;
  bool cache_hit = false;
  bool store_hit = false;
  D2PR_ASSIGN_OR_RETURN(std::shared_ptr<const TransitionMatrix> transition,
                        GetTransition(key, &cache_hit, &store_hit));
  response.transition_cache_hit = cache_hit;
  response.transition_store_hit = store_hit;

  if (request.method == SolverMethod::kForwardPush) {
    if (request.top_k > 0) {
      // Degree-pruned bounded push: the solver terminates as soon as the
      // k-th candidate's lower bound clears every non-candidate's upper
      // bound, which on skewed graphs is far before the residual floor.
      TopKOptions topk;
      topk.k = request.top_k;
      topk.alpha = request.alpha;
      topk.epsilon = request.push_epsilon;
      topk.reinject_dangling = request.dangling == DanglingPolicy::kTeleport;
      std::shared_ptr<const DegreeBoundIndex> bounds =
          resolver_.ResolveBounds(key, transition);
      D2PR_ASSIGN_OR_RETURN(
          TopKResult ranked,
          SolveTopK(*graph_, *transition, *bounds, teleport, topk));
      stats_.push_operations += ranked.pushes;
      response.truncated = true;
      response.top.reserve(ranked.entries.size());
      for (const TopKEntry& entry : ranked.entries) {
        response.top.push_back(
            {entry.node, entry.lower_bound, entry.certified});
      }
      response.uncertainty_gap = ranked.uncertainty_gap;
      response.pushes = ranked.pushes;
      response.converged = ranked.completed;
      return response;
    }
    PushOptions push;
    push.alpha = request.alpha;
    push.epsilon = request.push_epsilon;
    // kSelfLoop was rejected before the transition was fetched.
    push.reinject_dangling = request.dangling == DanglingPolicy::kTeleport;
    D2PR_ASSIGN_OR_RETURN(
        PushResult pushed,
        ForwardPushPpr(*graph_, *transition, teleport, push));
    stats_.push_operations += pushed.pushes;
    response.scores = std::move(pushed.scores);
    response.pushes = pushed.pushes;
    response.converged = pushed.completed;
    return response;
  }

  PagerankOptions solver;
  solver.alpha = request.alpha;
  solver.tolerance = request.tolerance;
  solver.max_iterations = request.max_iterations;
  solver.dangling = request.dangling;

  Result<PagerankResult> solved = [&]() -> Result<PagerankResult> {
    if (request.method == SolverMethod::kGaussSeidel) {
      return SolvePagerankGaussSeidel(*graph_, *transition, teleport, solver);
    }
    std::vector<double> start;
    if (!request.warm_start_tag.empty()) {
      start = WarmStartFor(request, key);
    }
    if (start.empty()) {
      return SolvePagerank(*graph_, *transition, teleport, solver);
    }
    response.warm_start_hit = true;
    ++stats_.warm_start_hits;
    return SolvePagerankFrom(*graph_, *transition, teleport, start, solver);
  }();
  if (!solved.ok()) return solved.status();

  stats_.solver_iterations += solved->iterations;
  response.iterations = solved->iterations;
  response.converged = solved->converged;
  response.residual = solved->residual;
  response.scores = std::move(solved->scores);
  if (!request.warm_start_tag.empty()) {
    // Store the FULL solution before any truncation: the trajectory must
    // stay usable as a starting iterate for the next exact solve.
    StoreWarmStart(request, key, response.scores);
  }
  if (request.top_k > 0) {
    // Exact solve, then truncate: every served entry is the true score,
    // so the whole set is certified with zero gap.
    TruncatedTopK truncated =
        TruncateToTopK(response.scores, request.top_k, /*certify_margin=*/0.0);
    response.top = std::move(truncated.entries);
    response.uncertainty_gap = truncated.uncertainty_gap;
    response.truncated = true;
    response.scores.clear();
  }
  return response;
}

Result<std::vector<RankResponse>> D2prEngine::RankBatch(
    std::span<const RankRequest> requests) {
  std::vector<RankResponse> responses;
  responses.reserve(requests.size());
  for (const RankRequest& request : requests) {
    D2PR_ASSIGN_OR_RETURN(RankResponse response, Rank(request));
    responses.push_back(std::move(response));
  }
  return responses;
}

void D2prEngine::ForgetWarmStart(const std::string& tag) {
  std::lock_guard<std::mutex> lock(warm_mu_);
  auto it = FindWarmEntry(tag);
  if (it != warm_entries_.end()) warm_entries_.erase(it);
}

std::list<D2prEngine::WarmEntry>::iterator D2prEngine::FindWarmEntry(
    const std::string& tag) {
  for (auto it = warm_entries_.begin(); it != warm_entries_.end(); ++it) {
    if (it->tag == tag) {
      warm_entries_.splice(warm_entries_.begin(), warm_entries_, it);
      return warm_entries_.begin();
    }
  }
  return warm_entries_.end();
}

std::vector<double> D2prEngine::WarmStartFor(const RankRequest& request,
                                             const TransitionKey& key) {
  std::lock_guard<std::mutex> lock(warm_mu_);
  auto entry = FindWarmEntry(request.warm_start_tag);
  if (entry == warm_entries_.end() || entry->snapshots.empty()) return {};
  const WarmSnapshot& cur = entry->snapshots.front();
  // A stored solution from a different metric, dangling policy, or seed
  // set solves a different family of fixed points; starting from it is
  // still correct (the fixed point is unique) but rarely closer than the
  // teleport vector, so require an exact context match.
  if (cur.metric != key.metric || cur.dangling != request.dangling ||
      cur.seeds != request.seeds) {
    return {};
  }

  if (entry->snapshots.size() == 2) {
    const WarmSnapshot& prev = entry->snapshots[1];
    if (prev.metric == cur.metric && prev.dangling == cur.dangling &&
        prev.seeds == cur.seeds) {
      // If exactly one of (p, beta, alpha) moves along prev -> cur ->
      // request, extrapolate linearly along that coordinate: the solution
      // curve is smooth in each parameter, so the predicted iterate lands
      // closer than cur.scores alone.
      const double steps[3] = {cur.p - prev.p, cur.beta - prev.beta,
                               cur.alpha - prev.alpha};
      const double wants[3] = {request.p - cur.p, key.beta - cur.beta,
                               request.alpha - cur.alpha};
      int moving = -1;
      int moving_count = 0;
      for (int i = 0; i < 3; ++i) {
        if (steps[i] != 0.0 || wants[i] != 0.0) {
          moving = i;
          ++moving_count;
        }
      }
      if (moving_count == 1 && steps[moving] != 0.0) {
        const double t = wants[moving] / steps[moving];
        if (std::isfinite(t) && std::abs(t) <= kMaxExtrapolationFactor) {
          std::vector<double> guess(cur.scores.size());
          for (size_t i = 0; i < guess.size(); ++i) {
            const double extrapolated =
                cur.scores[i] + t * (cur.scores[i] - prev.scores[i]);
            guess[i] = extrapolated > 0.0 ? extrapolated : 0.0;
          }
          if (NormalizeL1(guess) > 0.0) return guess;
        }
      }
    }
  }
  return cur.scores;
}

void D2prEngine::StoreWarmStart(const RankRequest& request,
                                const TransitionKey& key,
                                const std::vector<double>& scores) {
  if (options_.warm_start_capacity == 0) return;
  std::lock_guard<std::mutex> lock(warm_mu_);
  auto entry = FindWarmEntry(request.warm_start_tag);
  if (entry == warm_entries_.end()) {
    warm_entries_.push_front(WarmEntry{request.warm_start_tag, {}});
    entry = warm_entries_.begin();
    while (warm_entries_.size() > options_.warm_start_capacity) {
      warm_entries_.pop_back();
    }
  }
  WarmSnapshot snapshot;
  snapshot.p = key.p;
  snapshot.beta = key.beta;
  snapshot.alpha = request.alpha;
  snapshot.metric = key.metric;
  snapshot.dangling = request.dangling;
  snapshot.seeds = request.seeds;
  snapshot.scores = scores;
  entry->snapshots.insert(entry->snapshots.begin(), std::move(snapshot));
  if (entry->snapshots.size() > 2) entry->snapshots.resize(2);
}

RankRequest ToRankRequest(const D2prOptions& options) {
  RankRequest request;
  request.p = options.p;
  request.beta = options.beta;
  request.metric = options.metric;
  request.alpha = options.alpha;
  request.tolerance = options.tolerance;
  request.max_iterations = options.max_iterations;
  request.dangling = options.dangling;
  return request;
}

PagerankResult ToPagerankResult(RankResponse response) {
  PagerankResult result;
  result.scores = std::move(response.scores);
  result.iterations = response.iterations;
  result.converged = response.converged;
  result.residual = response.residual;
  return result;
}

}  // namespace d2pr
