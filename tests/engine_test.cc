// D2prEngine behavior: transition-cache accounting, warm-started sweeps,
// batch determinism, solver dispatch, and validation through the cache.

#include "api/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/sweeps.h"
#include "datagen/classic_generators.h"
#include "graph/graph_builder.h"
#include "linalg/vec_ops.h"

namespace d2pr {
namespace {

Result<CsrGraph> TestGraph(uint64_t seed, NodeId nodes = 300,
                           int64_t edges = 900) {
  Rng rng(seed);
  return ErdosRenyi(nodes, edges, &rng);
}

TEST(EngineTest, RepeatedRequestHitsTransitionCache) {
  auto graph = TestGraph(1);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);

  auto first = engine.Rank({.p = 0.5});
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->transition_cache_hit);
  EXPECT_EQ(engine.stats().transition_builds, 1);
  EXPECT_EQ(engine.stats().transition_cache_hits, 0);

  auto second = engine.Rank({.p = 0.5, .alpha = 0.7});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->transition_cache_hit);
  EXPECT_EQ(engine.stats().transition_builds, 1);
  EXPECT_EQ(engine.stats().transition_cache_hits, 1);

  auto third = engine.Rank({.p = 0.6});
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->transition_cache_hit);
  EXPECT_EQ(engine.stats().transition_builds, 2);
}

TEST(EngineTest, AutoMetricSharesCacheWithResolvedMetric) {
  auto graph = TestGraph(2);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  ASSERT_TRUE(engine.Rank({.p = 1.0, .metric = DegreeMetric::kAuto}).ok());
  // On an unweighted graph kAuto resolves to kOutDegree: same cache entry.
  auto resolved =
      engine.Rank({.p = 1.0, .metric = DegreeMetric::kOutDegree});
  ASSERT_TRUE(resolved.ok());
  EXPECT_TRUE(resolved->transition_cache_hit);
  EXPECT_EQ(engine.stats().transition_builds, 1);
}

TEST(EngineTest, CacheEvictionTriggersRebuild) {
  auto graph = TestGraph(3, 100, 300);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine =
      D2prEngine::Borrowing(*graph, {.transition_cache_capacity = 2});
  ASSERT_TRUE(engine.Rank({.p = 0.0}).ok());
  ASSERT_TRUE(engine.Rank({.p = 1.0}).ok());
  ASSERT_TRUE(engine.Rank({.p = 2.0}).ok());  // evicts p = 0
  auto again = engine.Rank({.p = 0.0});
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->transition_cache_hit);
  EXPECT_EQ(engine.stats().transition_builds, 4);
}

TEST(EngineTest, InvalidBetaRejectedEvenWhenFoldedKeyIsCached) {
  auto graph = TestGraph(4);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  // Unweighted graph: any valid beta folds to the beta = 0 cache entry...
  ASSERT_TRUE(engine.Rank({.p = 0.5, .beta = 0.25}).ok());
  ASSERT_TRUE(engine.Rank({.p = 0.5, .beta = 0.75}).ok());
  EXPECT_EQ(engine.stats().transition_builds, 1);
  // ...but an out-of-range beta must still error, not hit the cache.
  EXPECT_FALSE(engine.Rank({.p = 0.5, .beta = 1.5}).ok());
  EXPECT_FALSE(engine.Rank({.p = 0.5, .beta = -0.1}).ok());
  // NaN would otherwise forge never-matchable cache keys on weighted
  // graphs (NaN != NaN) and churn the LRU.
  EXPECT_FALSE(
      engine.Rank({.p = 0.5, .beta = std::nan("")}).ok());
  EXPECT_FALSE(engine.Rank({.p = std::nan(""), .beta = 0.0}).ok());
  EXPECT_EQ(engine.stats().transition_builds, 1);
}

TEST(EngineTest, WarmStartedSweepMatchesColdSweep) {
  auto graph = TestGraph(5, 400, 1600);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  D2prOptions base;
  base.tolerance = 1e-11;
  const std::vector<double> grid = LinearGrid(-2.0, 2.0, 0.5);

  auto warm = SweepP(engine, grid, base);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(engine.stats().warm_start_hits, 0);

  for (size_t i = 0; i < grid.size(); ++i) {
    D2prOptions point = base;
    point.p = grid[i];
    auto cold =
        SolvePagerank(*graph,
                      TransitionMatrix::Build(*graph,
                                              ToTransitionConfig(point))
                          .value(),
                      ToPagerankOptions(point));
    ASSERT_TRUE(cold.ok());
    EXPECT_LT(DiffLInf((*warm)[i].result.scores, cold->scores), 1e-7)
        << "p = " << grid[i];
  }
}

TEST(EngineTest, RankBatchIsDeterministicAndMatchesSequentialRanks) {
  auto graph = TestGraph(6);
  ASSERT_TRUE(graph.ok());
  std::vector<RankRequest> requests;
  for (double p : {-1.0, 0.0, 0.5, 0.5, 1.0}) {
    RankRequest request;
    request.p = p;
    request.warm_start_tag = "batch";
    requests.push_back(request);
  }

  D2prEngine a = D2prEngine::Borrowing(*graph);
  D2prEngine b = D2prEngine::Borrowing(*graph);
  auto batch_a = a.RankBatch(requests);
  auto batch_b = b.RankBatch(requests);
  ASSERT_TRUE(batch_a.ok());
  ASSERT_TRUE(batch_b.ok());
  ASSERT_EQ(batch_a->size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ((*batch_a)[i].scores, (*batch_b)[i].scores) << "request " << i;
    EXPECT_EQ((*batch_a)[i].iterations, (*batch_b)[i].iterations);
  }

  D2prEngine c = D2prEngine::Borrowing(*graph);
  for (size_t i = 0; i < requests.size(); ++i) {
    auto single = c.Rank(requests[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(single->scores, (*batch_a)[i].scores) << "request " << i;
  }
}

TEST(EngineTest, BatchFailsFastOnFirstInvalidRequest) {
  auto graph = TestGraph(7, 100, 300);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  std::vector<RankRequest> requests(3);
  requests[1].alpha = 1.5;  // invalid
  auto batch = engine.RankBatch(requests);
  EXPECT_FALSE(batch.ok());
}

TEST(EngineTest, GaussSeidelAndPowerAgreeOnScores) {
  auto graph = TestGraph(8);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  RankRequest request;
  request.p = 0.75;
  request.tolerance = 1e-12;
  auto power = engine.Rank(request);
  request.method = SolverMethod::kGaussSeidel;
  auto gauss = engine.Rank(request);
  ASSERT_TRUE(power.ok());
  ASSERT_TRUE(gauss.ok());
  EXPECT_TRUE(gauss->transition_cache_hit);  // same transition model
  EXPECT_LT(DiffLInf(power->scores, gauss->scores), 1e-8);
  EXPECT_LT(gauss->iterations, power->iterations);
}

TEST(EngineTest, ForwardPushApproximatesPersonalizedPower) {
  auto graph = TestGraph(9);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  RankRequest request;
  request.p = 0.5;
  request.seeds = {7};
  auto power = engine.Rank(request);
  request.method = SolverMethod::kForwardPush;
  request.push_epsilon = 1e-9;
  auto push = engine.Rank(request);
  ASSERT_TRUE(power.ok());
  ASSERT_TRUE(push.ok());
  EXPECT_TRUE(push->converged);
  EXPECT_GT(push->pushes, 0);
  EXPECT_GT(engine.stats().push_operations, 0);
  EXPECT_LT(DiffLInf(power->scores, push->scores), 1e-5);
}

TEST(EngineTest, ForwardPushHonorsDanglingPolicy) {
  // A graph with a dangling sink: 0 -> 1 -> 2, node 2 has no out-arcs.
  GraphBuilder builder(3, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);

  RankRequest request;
  request.method = SolverMethod::kForwardPush;
  request.seeds = {0};
  request.push_epsilon = 1e-10;
  auto reinjected = engine.Rank(request);
  ASSERT_TRUE(reinjected.ok());
  request.dangling = DanglingPolicy::kRenormalize;
  auto dropped = engine.Rank(request);
  ASSERT_TRUE(dropped.ok());
  // Re-injection routes the sink's residual back to the seed; dropping it
  // loses that mass, so the estimates must differ.
  EXPECT_GT(Sum(reinjected->scores), Sum(dropped->scores) + 1e-6);
  // kSelfLoop has no forward-push equivalent and is rejected.
  request.dangling = DanglingPolicy::kSelfLoop;
  EXPECT_FALSE(engine.Rank(request).ok());
}

TEST(EngineTest, SeededRequestMatchesLegacyPersonalized) {
  auto graph = TestGraph(10);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  RankRequest request;
  request.p = 1.0;
  request.seeds = {3, 17, 42};
  auto response = engine.Rank(request);
  ASSERT_TRUE(response.ok());
  auto legacy = ComputePersonalizedD2pr(*graph, request.seeds, {.p = 1.0});
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(response->scores, legacy->scores);
  // Bad seeds propagate the teleport error.
  request.seeds = {3, 3};
  EXPECT_FALSE(engine.Rank(request).ok());
  request.seeds = {-1};
  EXPECT_FALSE(engine.Rank(request).ok());
}

TEST(EngineTest, OwningEngineKeepsGraphAlive) {
  auto graph = TestGraph(11, 100, 300);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine(std::move(*graph));
  EXPECT_EQ(engine.graph().num_nodes(), 100);
  auto response = engine.Rank({.p = 0.5});
  ASSERT_TRUE(response.ok());
  EXPECT_NEAR(Sum(response->scores), 1.0, 1e-9);
}

TEST(EngineTest, ForgetWarmStartColdStartsNextSolve) {
  auto graph = TestGraph(12);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  RankRequest request;
  request.p = 0.5;
  request.warm_start_tag = "t";
  ASSERT_TRUE(engine.Rank(request).ok());
  auto warm = engine.Rank(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->warm_start_hit);
  engine.ForgetWarmStart("t");
  auto cold = engine.Rank(request);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->warm_start_hit);
}

TEST(EngineTest, ResetStatsAndClearCaches) {
  auto graph = TestGraph(13, 100, 300);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  ASSERT_TRUE(engine.Rank({.p = 0.5}).ok());
  EXPECT_GT(engine.stats().transition_builds, 0);
  engine.ResetStats();
  EXPECT_EQ(engine.stats().transition_builds, 0);
  EXPECT_EQ(engine.stats().requests, 0);
  engine.ClearCaches();
  auto rebuilt = engine.Rank({.p = 0.5});
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_FALSE(rebuilt->transition_cache_hit);
}

TEST(EngineTest, SolverMethodNames) {
  EXPECT_STREQ(SolverMethodName(SolverMethod::kPower), "power");
  EXPECT_STREQ(SolverMethodName(SolverMethod::kGaussSeidel), "gauss-seidel");
  EXPECT_STREQ(SolverMethodName(SolverMethod::kForwardPush), "forward-push");
}

}  // namespace
}  // namespace d2pr
