// Microbenchmarks for the approximate top-k serving tier: what
// degree-pruned bounded push (TopKSolver, certified early termination)
// buys over serving the same query exactly and truncating — the full
// forward-push solve, and the exact power solve — at k in {10, 100}.
// Run results are recorded in results/topk_bench.md.

#include <benchmark/benchmark.h>

#include "api/engine.h"
#include "common/rng.h"
#include "datagen/classic_generators.h"

namespace d2pr {
namespace {

CsrGraph MakeGraph(int64_t nodes) {
  Rng rng(42);
  auto graph = BarabasiAlbert(static_cast<NodeId>(nodes), 4, &rng);
  D2PR_CHECK(graph.ok());
  return std::move(graph).value();
}

RankRequest PersonalizedPush(NodeId seed) {
  RankRequest request;
  request.p = 0.5;
  request.method = SolverMethod::kForwardPush;
  request.push_epsilon = 1e-8;
  request.seeds = {seed};
  return request;
}

/// Certified bounded push: terminates as soon as the top-k set certifies.
/// Arg(0) = nodes, Arg(1) = k.
void BM_TopKBoundedPush(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(state.range(0));
  D2prEngine engine = D2prEngine::Borrowing(graph);
  RankRequest request = PersonalizedPush(7);
  request.top_k = static_cast<int>(state.range(1));
  // Resolve the transition + bound index outside the timed region: both
  // are cached per (graph, p, beta, metric) in serving, so steady-state
  // latency is what the solve itself costs.
  D2PR_CHECK(engine.Rank(request).ok());
  int64_t pushes = 0;
  for (auto _ : state) {
    auto response = engine.Rank(request);
    pushes += response->pushes;
    benchmark::DoNotOptimize(response->top.data());
  }
  state.counters["pushes"] = static_cast<double>(
      pushes / std::max<int64_t>(state.iterations(), 1));
}
BENCHMARK(BM_TopKBoundedPush)
    ->Args({10000, 10})
    ->Args({10000, 100})
    ->Args({100000, 10})
    ->Args({100000, 100});

/// The same query served exactly by forward push to the epsilon floor,
/// then truncated — what top-k serving cost before the bounded solver.
void BM_TopKFullPushThenTruncate(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(state.range(0));
  D2prEngine engine = D2prEngine::Borrowing(graph);
  RankRequest full = PersonalizedPush(7);
  D2PR_CHECK(engine.Rank(full).ok());
  const int top_k = static_cast<int>(state.range(1));
  int64_t pushes = 0;
  for (auto _ : state) {
    auto response = engine.Rank(full);
    auto truncated = TruncateToTopK(response->scores, top_k, 0.0);
    pushes += response->pushes;
    benchmark::DoNotOptimize(truncated.entries.data());
  }
  state.counters["pushes"] = static_cast<double>(
      pushes / std::max<int64_t>(state.iterations(), 1));
}
BENCHMARK(BM_TopKFullPushThenTruncate)
    ->Args({10000, 10})
    ->Args({10000, 100})
    ->Args({100000, 10})
    ->Args({100000, 100});

/// Exact power-iteration serving with engine-side truncation
/// (request.top_k on a kPower request): the certified-exact baseline.
void BM_TopKExactPowerTruncated(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(state.range(0));
  D2prEngine engine = D2prEngine::Borrowing(graph);
  RankRequest request;
  request.p = 0.5;
  request.tolerance = 1e-9;
  request.seeds = {7};
  request.top_k = static_cast<int>(state.range(1));
  D2PR_CHECK(engine.Rank(request).ok());
  for (auto _ : state) {
    auto response = engine.Rank(request);
    benchmark::DoNotOptimize(response->top.data());
  }
}
BENCHMARK(BM_TopKExactPowerTruncated)
    ->Args({10000, 10})
    ->Args({10000, 100})
    ->Args({100000, 10})
    ->Args({100000, 100});

/// The locality regime certification was built for: a non-hub seed at
/// strong teleport (alpha 0.3) concentrates the exact top-k inside the
/// seed's neighborhood, so bounded push certifies all of k with gap 0
/// after touching a few hundred nodes — while any exact solver still
/// pays for the whole graph. Arg(0) = k.
void BM_TopKCertifiedLocalPush(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(100000);
  D2prEngine engine = D2prEngine::Borrowing(graph);
  RankRequest request;
  request.p = 0.5;
  request.alpha = 0.3;
  request.method = SolverMethod::kForwardPush;
  request.push_epsilon = 1e-6;
  request.seeds = {50000};
  request.top_k = static_cast<int>(state.range(0));
  D2PR_CHECK(engine.Rank(request).ok());
  int64_t pushes = 0;
  int64_t certified = 0;
  for (auto _ : state) {
    auto response = engine.Rank(request);
    pushes += response->pushes;
    for (const auto& entry : response->top) certified += entry.certified;
    benchmark::DoNotOptimize(response->top.data());
  }
  const int64_t iters = std::max<int64_t>(state.iterations(), 1);
  state.counters["pushes"] = static_cast<double>(pushes / iters);
  state.counters["certified"] = static_cast<double>(certified / iters);
}
BENCHMARK(BM_TopKCertifiedLocalPush)->Arg(10)->Arg(100);

/// The exact baseline for the locality regime: same request served by
/// power iteration to 1e-9 and truncated. Every iteration is O(|E|)
/// regardless of how local the query is.
void BM_TopKExactPowerLocal(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(100000);
  D2prEngine engine = D2prEngine::Borrowing(graph);
  RankRequest request;
  request.p = 0.5;
  request.alpha = 0.3;
  request.tolerance = 1e-9;
  request.seeds = {50000};
  request.top_k = static_cast<int>(state.range(0));
  D2PR_CHECK(engine.Rank(request).ok());
  for (auto _ : state) {
    auto response = engine.Rank(request);
    benchmark::DoNotOptimize(response->top.data());
  }
}
BENCHMARK(BM_TopKExactPowerLocal)->Arg(10)->Arg(100);

/// Global (unseeded) top-k: the hardest regime for pruning — mass is
/// spread across the whole graph, so certification leans entirely on the
/// degree bounds separating the head from the body.
void BM_TopKGlobalBoundedPush(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(10000);
  D2prEngine engine = D2prEngine::Borrowing(graph);
  RankRequest request;
  request.p = 0.5;
  request.method = SolverMethod::kForwardPush;
  request.push_epsilon = 1e-8;
  request.top_k = static_cast<int>(state.range(0));
  D2PR_CHECK(engine.Rank(request).ok());
  for (auto _ : state) {
    auto response = engine.Rank(request);
    benchmark::DoNotOptimize(response->top.data());
  }
}
BENCHMARK(BM_TopKGlobalBoundedPush)->Arg(10)->Arg(100);

}  // namespace
}  // namespace d2pr

BENCHMARK_MAIN();
