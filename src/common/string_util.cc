#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace d2pr {

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return std::string(buf);
}

std::string FormatGeneral(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return std::string(buf);
}

std::string FormatExactDouble(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g (bits %016llx)",
                std::numeric_limits<double>::max_digits10, value,
                static_cast<unsigned long long>(bits));
  return std::string(buf);
}

std::string FormatWithCommas(int64_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  if (value < 0) out.push_back('-');
  size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  out.append(digits, 0, lead);
  for (size_t i = lead; i < digits.size(); i += 3) {
    out.push_back(',');
    out.append(digits, i, 3);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string Pad(std::string_view text, int width) {
  size_t target = static_cast<size_t>(width < 0 ? -width : width);
  if (text.size() >= target) return std::string(text);
  std::string pad(target - text.size(), ' ');
  return width < 0 ? pad + std::string(text) : std::string(text) + pad;
}

bool ParseDouble(std::string_view text, double* out) {
  text = StripWhitespace(text);
  if (text.empty()) return false;
  // std::from_chars for double is available in gcc 11+.
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  text = StripWhitespace(text);
  if (text.empty()) return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace d2pr
