#include "datagen/projection.h"

#include <algorithm>

#include "common/string_util.h"
#include "graph/graph_builder.h"

namespace d2pr {

Result<CsrGraph> ProjectGroups(const std::vector<std::vector<NodeId>>& groups,
                               NodeId num_nodes,
                               const ProjectionConfig& config) {
  // Emit packed (u << 32 | v) keys for every co-occurring pair, then sort
  // and run-length count. Memory is proportional to the number of pairs,
  // which the caller bounds via group sizes / max_anchor_size.
  std::vector<uint64_t> pairs;
  for (const auto& group : groups) {
    const size_t size = group.size();
    if (config.max_anchor_size > 0 &&
        size > static_cast<size_t>(config.max_anchor_size)) {
      continue;
    }
    for (size_t a = 0; a < size; ++a) {
      const NodeId u = group[a];
      if (u < 0 || u >= num_nodes) {
        return Status::InvalidArgument(
            StrCat("group member ", u, " outside [0, ", num_nodes, ")"));
      }
      for (size_t b = a + 1; b < size; ++b) {
        const NodeId v = group[b];
        if (u == v) {
          return Status::InvalidArgument(
              StrCat("duplicate node ", u, " within one group"));
        }
        const NodeId lo = std::min(u, v);
        const NodeId hi = std::max(u, v);
        pairs.push_back((static_cast<uint64_t>(lo) << 32) |
                        static_cast<uint32_t>(hi));
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());

  GraphBuilder builder(num_nodes, GraphKind::kUndirected, config.weighted);
  for (size_t i = 0; i < pairs.size();) {
    size_t j = i;
    while (j < pairs.size() && pairs[j] == pairs[i]) ++j;
    const NodeId u = static_cast<NodeId>(pairs[i] >> 32);
    const NodeId v = static_cast<NodeId>(pairs[i] & 0xffffffffULL);
    const double weight =
        config.weighted ? static_cast<double>(j - i) : 1.0;
    D2PR_RETURN_NOT_OK(builder.AddEdge(u, v, weight));
    i = j;
  }
  return builder.Build(DuplicatePolicy::kError);
}

Result<CsrGraph> ProjectMembers(const BipartiteWorld& world,
                                const ProjectionConfig& config) {
  return ProjectGroups(world.venue_members, world.config.num_members,
                       config);
}

Result<CsrGraph> ProjectVenues(const BipartiteWorld& world,
                               const ProjectionConfig& config) {
  return ProjectGroups(world.member_venues, world.config.num_venues, config);
}

Result<CsrGraph> CommonNeighborWeightedGraph(const CsrGraph& graph) {
  if (graph.directed()) {
    return Status::InvalidArgument(
        "common-neighbor weighting expects an undirected graph");
  }
  GraphBuilder builder(graph.num_nodes(), GraphKind::kUndirected,
                       /*weighted=*/true);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    auto nu = graph.OutNeighbors(u);
    for (NodeId v : nu) {
      if (v <= u) continue;  // handle each undirected edge once
      auto nv = graph.OutNeighbors(v);
      // Sorted-list intersection size.
      size_t a = 0, b = 0, shared = 0;
      while (a < nu.size() && b < nv.size()) {
        if (nu[a] == nv[b]) {
          ++shared;
          ++a;
          ++b;
        } else if (nu[a] < nv[b]) {
          ++a;
        } else {
          ++b;
        }
      }
      D2PR_RETURN_NOT_OK(
          builder.AddEdge(u, v, 1.0 + static_cast<double>(shared)));
    }
  }
  return builder.Build(DuplicatePolicy::kError);
}

}  // namespace d2pr
