// Figure 8: relationship between alpha and p for application Group C
// (degree boosting helps). Paper shape: larger alpha (longer walks) gives
// the highest correlations for p < 0; around p ≈ 0.5 the alpha curves
// cross and smaller alpha wins in the over-penalized regime.

#include "datagen/dataset_registry.h"
#include "repro_common.h"

int main() {
  return d2pr::bench::RunGroupAlphaFigure(
      d2pr::ApplicationGroup::kBoostingHelps,
      "Figure 8: alpha x p interplay (Group C)",
      "Figure 8(a)-(c): unweighted graphs, alpha in {0.5, 0.7, 0.85, 0.9}",
      "figure8");
}
