// Little-endian binary I/O primitives shared by the persistent file
// formats (the transition store, and any future on-disk cache).
//
// Three pieces:
//   * fixed-width append/read helpers over raw byte buffers, so a file
//     format can assemble its header in memory, checksum it, and write it
//     in one shot;
//   * Checksum64, the checksum used for per-section corruption detection —
//     not cryptographic, but deterministic, dependency-free, and reliable
//     against the truncation and bit-flip failures disks actually produce;
//   * MmapFile, a read-only memory mapping with RAII unmap, so a reader
//     can hand out spans into file pages instead of copying payloads.

#ifndef D2PR_COMMON_BINARY_IO_H_
#define D2PR_COMMON_BINARY_IO_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"

namespace d2pr {

// The formats are defined as little-endian; on a big-endian target the
// helpers would need byte swaps that nothing here implements yet.
static_assert(std::endian::native == std::endian::little,
              "d2pr binary formats require a little-endian target");

/// \brief 64-bit FNV-1a-style checksum over `bytes` bytes, continuing
/// from `seed` so multiple sections can be chained into one running
/// checksum.
///
/// Word-at-a-time variant of FNV-1a (each 8-byte lane is one symbol, the
/// tail is folded byte-wise): ~8x the throughput of canonical FNV, which
/// matters because the store verifies multi-megabyte payloads on every
/// load. Any single-bit flip changes the result (xor then multiply by an
/// odd prime is bijective per step); truncations are caught by the
/// explicit size fields, not the checksum.
uint64_t Checksum64(const void* data, size_t bytes,
                    uint64_t seed = 14695981039346656037ull);

/// \brief Appends a fixed-width little-endian value to `out`.
void AppendU32(std::vector<uint8_t>& out, uint32_t value);
void AppendU64(std::vector<uint8_t>& out, uint64_t value);
void AppendI64(std::vector<uint8_t>& out, int64_t value);
/// Appends the IEEE-754 bit pattern, so round-trips are bit-exact
/// (including NaN payloads and signed zeros).
void AppendF64(std::vector<uint8_t>& out, double value);

/// \brief Reads a fixed-width little-endian value at `p` (caller has
/// bounds-checked).
uint32_t ReadU32(const uint8_t* p);
uint64_t ReadU64(const uint8_t* p);
int64_t ReadI64(const uint8_t* p);
double ReadF64(const uint8_t* p);

/// \brief Read-only memory mapping of a whole file.
///
/// Move-only RAII: the mapping lives until destruction, so readers can
/// share spans into the pages by keeping the MmapFile alive (typically
/// inside a shared_ptr next to the spans). An empty file maps to an empty
/// span.
class MmapFile {
 public:
  /// Maps `path` read-only. IoError when the file cannot be opened,
  /// stat-ed, or mapped.
  static Result<MmapFile> Open(const std::string& path);

  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  std::span<const uint8_t> bytes() const { return {data_, size_}; }

 private:
  MmapFile(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace d2pr

#endif  // D2PR_COMMON_BINARY_IO_H_
