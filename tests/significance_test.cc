#include "datagen/significance.h"

#include <gtest/gtest.h>

#include "stats/correlation.h"

namespace d2pr {
namespace {

// A tiny hand-built world: 3 venues with qualities .2/.5/.8; 4 members.
BipartiteWorld TinyWorld() {
  BipartiteWorld world;
  world.config.num_members = 4;
  world.config.num_venues = 3;
  world.member_quality = {0.1, 0.4, 0.6, 0.9};
  world.venue_quality = {0.2, 0.5, 0.8};
  world.venue_members = {{0, 1}, {1, 2}, {2, 3}};
  world.member_venues = {{0}, {0, 1}, {1, 2}, {2}};
  world.member_budget = {4.0, 2.0, 2.0, 1.0};
  world.member_spent = {1.0, 2.0, 2.0, 1.0};
  return world;
}

TEST(AvgVenueQualityTest, NoiselessMeansExactAverages) {
  BipartiteWorld world = TinyWorld();
  Rng rng(1);
  const std::vector<double> sig =
      AvgVenueQualitySignificance(world, 0.0, &rng);
  EXPECT_DOUBLE_EQ(sig[0], 0.2);
  EXPECT_DOUBLE_EQ(sig[1], 0.35);  // (0.2 + 0.5)/2
  EXPECT_DOUBLE_EQ(sig[2], 0.65);  // (0.5 + 0.8)/2
  EXPECT_DOUBLE_EQ(sig[3], 0.8);
}

TEST(AvgVenueQualityTest, LonelyMemberGetsOwnQuality) {
  BipartiteWorld world = TinyWorld();
  world.member_venues[0].clear();
  Rng rng(2);
  const std::vector<double> sig =
      AvgVenueQualitySignificance(world, 0.0, &rng);
  EXPECT_DOUBLE_EQ(sig[0], 0.1);
}

TEST(AvgVenueQualityTest, NoiseChangesValuesButNotScale) {
  BipartiteWorld world = TinyWorld();
  Rng rng(3);
  const std::vector<double> noisy =
      AvgVenueQualitySignificance(world, 0.05, &rng);
  EXPECT_NE(noisy[1], 0.35);
  EXPECT_NEAR(noisy[1], 0.35, 0.5);
}

TEST(AvgVenueSignificanceTest, AveragesProvidedScores) {
  BipartiteWorld world = TinyWorld();
  const std::vector<double> venue_scores{10.0, 20.0, 40.0};
  const std::vector<double> sig = AvgVenueSignificance(world, venue_scores);
  EXPECT_DOUBLE_EQ(sig[0], 10.0);
  EXPECT_DOUBLE_EQ(sig[1], 15.0);
  EXPECT_DOUBLE_EQ(sig[2], 30.0);
  EXPECT_DOUBLE_EQ(sig[3], 40.0);
}

TEST(AvgVenueSignificanceTest, MemberWithoutVenuesGetsZero) {
  BipartiteWorld world = TinyWorld();
  world.member_venues[3].clear();
  const std::vector<double> sig =
      AvgVenueSignificance(world, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(sig[3], 0.0);
}

TEST(VenueRatingTest, StaysOnOneToFiveScale) {
  BipartiteWorld world = TinyWorld();
  Rng rng(4);
  const std::vector<double> sig =
      VenueRatingSignificance(world, 0.5, 2.0, &rng);
  for (double s : sig) {
    EXPECT_GE(s, 1.0);
    EXPECT_LE(s, 5.0);
  }
}

TEST(VenueRatingTest, NoiselessZeroSlopeIsAffineInQuality) {
  BipartiteWorld world = TinyWorld();
  Rng rng(5);
  const std::vector<double> sig =
      VenueRatingSignificance(world, 0.0, 0.0, &rng);
  EXPECT_DOUBLE_EQ(sig[0], 1.0 + 4.0 * 0.2);
  EXPECT_DOUBLE_EQ(sig[1], 1.0 + 4.0 * 0.5);
  EXPECT_DOUBLE_EQ(sig[2], 1.0 + 4.0 * 0.8);
}

TEST(VenueRatingTest, NegativeSlopePenalizesLargeVenues) {
  // Build a world where venue size varies strongly and quality is flat.
  BipartiteWorld world;
  world.config.num_members = 40;
  world.config.num_venues = 20;
  world.member_quality.assign(40, 0.5);
  world.venue_quality.assign(20, 0.5);
  world.venue_members.resize(20);
  world.member_venues.resize(40);
  for (NodeId r = 0; r < 20; ++r) {
    const int size = 1 + r;  // sizes 1..20
    for (int k = 0; k < size && k < 40; ++k) {
      world.venue_members[static_cast<size_t>(r)].push_back(k);
      world.member_venues[static_cast<size_t>(k)].push_back(r);
    }
  }
  Rng rng(6);
  const std::vector<double> sig =
      VenueRatingSignificance(world, -0.8, 0.0, &rng);
  std::vector<double> sizes(20);
  for (size_t r = 0; r < 20; ++r) {
    sizes[r] = static_cast<double>(world.venue_members[r].size());
  }
  EXPECT_LT(SpearmanCorrelation(sizes, sig), -0.9);
}

TEST(SizeScaledCountTest, PositiveAndGrowsWithSizeAndQuality) {
  BipartiteWorld world = TinyWorld();
  // Make venue 2 much bigger.
  world.venue_members[2] = {0, 1, 2, 3};
  Rng rng(7);
  const std::vector<double> sig =
      SizeScaledCountSignificance(world, 1.0, 1.5, 0.0, &rng);
  for (double s : sig) EXPECT_GT(s, 0.0);
  // Venue 2: highest quality AND biggest: must dominate.
  EXPECT_GT(sig[2], sig[0]);
  EXPECT_GT(sig[2], sig[1]);
}

TEST(SizeScaledCountTest, ZeroExponentsIgnoreSize) {
  BipartiteWorld world = TinyWorld();
  Rng rng(8);
  const std::vector<double> sig =
      SizeScaledCountSignificance(world, 0.0, 0.0, 0.0, &rng);
  for (double s : sig) EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(EffortDilutedTrustTest, DilutionPenalizesDegree) {
  BipartiteWorld world = TinyWorld();
  // Same quality and budget, different degrees.
  world.member_quality.assign(4, 0.5);
  world.member_budget.assign(4, 2.0);
  world.member_venues = {{0}, {0, 1}, {0, 1, 2}, {}};
  Rng rng(9);
  const std::vector<double> sig =
      EffortDilutedTrustSignificance(world, 0.8, 0.0, 0.0, &rng);
  EXPECT_GT(sig[3], sig[0]);
  EXPECT_GT(sig[0], sig[1]);
  EXPECT_GT(sig[1], sig[2]);
}

TEST(EffortDilutedTrustTest, BudgetExponentCompensates) {
  BipartiteWorld world = TinyWorld();
  world.member_quality.assign(4, 0.5);
  world.member_venues = {{0, 1}, {0, 1}, {0, 1}, {0, 1}};  // equal degrees
  world.member_budget = {1.0, 2.0, 4.0, 8.0};
  Rng rng(10);
  const std::vector<double> sig =
      EffortDilutedTrustSignificance(world, 1.0, 1.0, 0.0, &rng);
  // With full budget compensation, higher budget -> higher trust.
  EXPECT_LT(sig[0], sig[1]);
  EXPECT_LT(sig[1], sig[2]);
  EXPECT_LT(sig[2], sig[3]);
}

TEST(EffortDilutedTrustTest, ZeroDilutionLeavesQuality) {
  BipartiteWorld world = TinyWorld();
  Rng rng(11);
  const std::vector<double> sig =
      EffortDilutedTrustSignificance(world, 0.0, 0.0, 0.0, &rng);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(sig[i], world.member_quality[i]);
  }
}

}  // namespace
}  // namespace d2pr
