#include "core/sweeps.h"

#include <cmath>

namespace d2pr {

// The Sweep* functions declared here are implemented in api/queries.cc on
// top of D2prEngine; only the grid helpers live in core.

std::vector<double> LinearGrid(double lo, double hi, double step) {
  D2PR_CHECK_GT(step, 0.0);
  D2PR_CHECK_LE(lo, hi);
  std::vector<double> grid;
  const int count = static_cast<int>(std::floor((hi - lo) / step + 1e-9));
  grid.reserve(static_cast<size_t>(count) + 1);
  for (int i = 0; i <= count; ++i) {
    double value = lo + step * i;
    // Snap values like 1.4999999999 onto the intended grid point.
    const double rounded = std::round(value / step) * step;
    if (std::abs(rounded - value) < 1e-9) value = rounded;
    // Avoid "-0".
    if (value == 0.0) value = 0.0;
    grid.push_back(value);
  }
  return grid;
}

std::vector<double> PaperPGrid() { return LinearGrid(-4.0, 4.0, 0.5); }

std::vector<double> PaperAlphaGrid() { return {0.5, 0.7, 0.85, 0.9}; }

std::vector<double> PaperBetaGrid() { return {0.0, 0.25, 0.5, 0.75, 1.0}; }

}  // namespace d2pr
