#include "common/logging.h"

#include <cstring>

namespace d2pr {

LogLevel& GlobalLogLevel() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

namespace internal {

namespace {
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GlobalLogLevel()) {
  if (enabled_) {
    stream_ << "[" << LogLevelName(level) << " " << Basename(file) << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

}  // namespace internal
}  // namespace d2pr
