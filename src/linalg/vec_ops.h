// Dense vector kernels used by the power-iteration inner loop.
//
// Kept deliberately simple (no SIMD intrinsics): at the paper's scales the
// sparse scatter dominates; these are memory-bound loops the compiler
// vectorizes on its own under -O2/-O3.

#ifndef D2PR_LINALG_VEC_OPS_H_
#define D2PR_LINALG_VEC_OPS_H_

#include <span>
#include <vector>

namespace d2pr {

/// \brief Sum of elements.
double Sum(std::span<const double> values);

/// \brief Dot product; sizes must match.
double Dot(std::span<const double> a, std::span<const double> b);

/// \brief L1 norm (sum of absolute values).
double NormL1(std::span<const double> values);

/// \brief L2 (Euclidean) norm.
double NormL2(std::span<const double> values);

/// \brief Maximum absolute value.
double NormLInf(std::span<const double> values);

/// \brief Sum |a_i - b_i|; the power-iteration convergence criterion.
double DiffL1(std::span<const double> a, std::span<const double> b);

/// \brief Max |a_i - b_i|.
double DiffLInf(std::span<const double> a, std::span<const double> b);

/// \brief out_i += alpha * x_i.
void Axpy(double alpha, std::span<const double> x, std::span<double> out);

/// \brief values_i *= alpha.
void Scale(double alpha, std::span<double> values);

/// \brief Fills `values` with `value`.
void Fill(double value, std::span<double> values);

/// \brief Scales `values` so its L1 norm becomes 1 (no-op on zero vectors);
/// returns the original L1 norm.
double NormalizeL1(std::span<double> values);

/// \brief Constant vector 1/n (the paper's uniform teleportation vector).
std::vector<double> UniformVector(size_t n);

}  // namespace d2pr

#endif  // D2PR_LINALG_VEC_OPS_H_
