// Breadth-first search and connected components.
//
// Used by the data generators (to report component structure of the
// synthetic graphs) and by tests as an independent oracle for graph
// construction.

#ifndef D2PR_GRAPH_TRAVERSAL_H_
#define D2PR_GRAPH_TRAVERSAL_H_

#include <vector>

#include "graph/csr_graph.h"

namespace d2pr {

/// \brief BFS hop distances from `source`; unreachable nodes get -1.
std::vector<int64_t> BfsDistances(const CsrGraph& graph, NodeId source);

/// \brief Component labeling result.
struct Components {
  std::vector<NodeId> label;   ///< Component id per node, 0-based, dense.
  NodeId count = 0;            ///< Number of components.
  NodeId largest_size = 0;     ///< Size of the largest component.
  NodeId largest_label = 0;    ///< Label of the largest component.
};

/// \brief Connected components (undirected) or weakly-connected components
/// (directed; arc direction is ignored).
Components ConnectedComponents(const CsrGraph& graph);

/// \brief Extraction of an induced subgraph.
struct Subgraph {
  CsrGraph graph;
  /// new id -> old id (size = subgraph nodes).
  std::vector<NodeId> original_id;
};

/// \brief Induced subgraph on the largest (weakly) connected component.
/// Node ids are compacted; `original_id` maps back.
Subgraph LargestComponentSubgraph(const CsrGraph& graph);

}  // namespace d2pr

#endif  // D2PR_GRAPH_TRAVERSAL_H_
