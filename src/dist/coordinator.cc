#include "dist/coordinator.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/string_util.h"
#include "core/block_solver.h"
#include "linalg/vec_ops.h"
#include "net/shard_wire.h"

namespace d2pr {

TransitionKey ResolveTransitionKey(const CsrGraph& graph,
                                   const TransitionConfig& config) {
  TransitionKey key;
  key.p = config.p;
  key.beta = graph.weighted() ? config.beta : 0.0;
  key.metric = ResolveMetric(graph, config.metric);
  return key;
}

DistributedCoordinator::DistributedCoordinator(
    std::vector<ShardChannel*> channels, const CoordinatorOptions& options)
    : channels_(std::move(channels)), options_(options) {}

size_t DistributedCoordinator::OwnerOf(NodeId node) const {
  return PartitionOwnerOf(options_.scheme, node, options_.num_nodes,
                          channels_.size());
}

int64_t DistributedCoordinator::NowMs() const {
  if (options_.clock_ms) return options_.clock_ms();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Result<ShardFrame> DistributedCoordinator::CallShard(
    size_t shard, const ShardFrame& request, FrameType expected_reply) {
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    Result<ShardFrame> reply =
        channels_[shard]->Call(request, options_.sweep_deadline_ms);
    if (!reply.ok()) {
      const StatusCode code = reply.status().code();
      if (code == StatusCode::kDeadlineExceeded) {
        // The request may or may not have been processed; resending is
        // safe because every shard request is idempotent.
        last = reply.status();
        continue;
      }
      // Dead transport: the shard is gone mid-solve.
      return Status::Unavailable(StrCat("shard ", shard, " unreachable: ",
                                        reply.status().ToString()));
    }
    if (reply->type == FrameType::kStatus) {
      Status carried = Status::OK();
      Status decode = DecodeStatusPayload(reply->payload, &carried);
      if (!decode.ok()) {
        return Status::Unavailable(StrCat("shard ", shard,
                                          " sent a malformed status frame: ",
                                          decode.ToString()));
      }
      return carried.ok()
                 ? Result<ShardFrame>(std::move(*reply))
                 : Result<ShardFrame>(carried);
    }
    if (reply->type != expected_reply) {
      return Status::Unavailable(
          StrCat("shard ", shard, " replied with frame type ",
                 static_cast<int>(reply->type), ", expected ",
                 static_cast<int>(expected_reply)));
    }
    return std::move(*reply);
  }
  return Status::DeadlineExceeded(
      StrCat("shard ", shard, " timed out after ", options_.max_retries + 1,
             " attempts: ", last.ToString()));
}

Status DistributedCoordinator::Handshake() {
  if (channels_.empty()) {
    return Status::InvalidArgument("coordinator needs at least one shard");
  }
  const size_t num_shards = channels_.size();
  const NodeId n = options_.num_nodes;

  // Closed-form owned lists (the same assignment GraphPartition::Build
  // materializes; OwnerOf agrees by construction).
  owned_.assign(num_shards, {});
  for (NodeId v = 0; v < n; ++v) {
    owned_[OwnerOf(v)].push_back(v);
  }

  boundary_.assign(num_shards, {});
  needs_metric_.assign(num_shards, 0);
  dangling_.clear();

  ShardHandshake handshake;
  handshake.num_shards = static_cast<uint32_t>(num_shards);
  handshake.scheme = options_.scheme;
  handshake.slice_build = SliceBuild::kSubgraph;
  handshake.graph_fingerprint = options_.graph_fingerprint;
  handshake.p = options_.key.p;
  handshake.beta = options_.key.beta;
  handshake.metric = options_.key.metric;

  for (size_t s = 0; s < num_shards; ++s) {
    handshake.shard_id = static_cast<uint32_t>(s);
    ShardFrame request;
    request.type = FrameType::kShardHandshake;
    request.request_id = next_request_id_++;
    request.payload = EncodeShardHandshake(handshake);

    ShardFrame reply;
    D2PR_ASSIGN_OR_RETURN(
        reply, CallShard(s, request, FrameType::kShardHandshakeAck));
    Result<ShardHandshakeAck> decoded = DecodeShardHandshakeAck(reply.payload);
    if (!decoded.ok()) {
      return Status::Unavailable(StrCat("shard ", s,
                                        " sent a malformed handshake ack: ",
                                        decoded.status().ToString()));
    }
    const ShardHandshakeAck& ack = *decoded;

    if (ack.num_nodes != static_cast<uint64_t>(n)) {
      return Status::FailedPrecondition(
          StrCat("shard ", s, " holds a ", ack.num_nodes,
                 "-node graph, coordinator expects ", n));
    }
    if (ack.num_owned != owned_[s].size()) {
      return Status::FailedPrecondition(
          StrCat("shard ", s, " owns ", ack.num_owned,
                 " nodes, closed-form ownership expects ",
                 owned_[s].size()));
    }
    for (const std::vector<NodeId>* list :
         {&ack.dangling_owned, &ack.boundary_sources}) {
      NodeId prev = -1;
      for (NodeId v : *list) {
        if (v < 0 || v >= n || v <= prev) {
          return Status::FailedPrecondition(
              StrCat("shard ", s, " published an invalid node list"));
        }
        prev = v;
      }
    }
    for (NodeId v : ack.dangling_owned) {
      if (OwnerOf(v) != s) {
        return Status::FailedPrecondition(
            StrCat("shard ", s, " claims dangling node ", v,
                   " it does not own"));
      }
    }
    if (ack.needs_metric_values) {
      // A cut-loaded shard will not accept a solve begin without the
      // metric vector; fail HERE, before any solve moves an iterate.
      if (options_.metric_values.size() != static_cast<size_t>(n)) {
        return Status::FailedPrecondition(StrCat(
            "shard ", s,
            " was loaded from a cut file and needs the global metric "
            "vector, but the coordinator holds ",
            options_.metric_values.size(), " metric values for a ", n,
            "-node graph (set CoordinatorOptions::metric_values)"));
      }
      needs_metric_[s] = 1;
    }
    boundary_[s] = ack.boundary_sources;
    dangling_.insert(dangling_.end(), ack.dangling_owned.begin(),
                     ack.dangling_owned.end());
  }
  // Per-shard lists are disjoint and each ascending; one sort restores
  // the global ascending fold order.
  std::sort(dangling_.begin(), dangling_.end());
  handshaken_ = true;
  return Status::OK();
}

void DistributedCoordinator::EndSolve(uint64_t solve_id) {
  ShardSolveEnd end;
  end.solve_id = solve_id;
  const std::vector<uint8_t> payload = EncodeShardSolveEnd(end);
  for (size_t s = 0; s < channels_.size(); ++s) {
    ShardFrame request;
    request.type = FrameType::kSolveEnd;
    request.request_id = next_request_id_++;
    request.payload = payload;
    // Best effort: a failure here leaves per-solve state on the worker,
    // which its next solve begin (or session close) clears anyway.
    (void)CallShard(s, request, FrameType::kStatus);
  }
}

Result<PagerankResult> DistributedCoordinator::Solve(
    SolverMethod method, std::span<const double> teleport,
    const PagerankOptions& options) {
  if (!handshaken_) {
    return Status::FailedPrecondition("Solve before a successful Handshake");
  }
  if (method != SolverMethod::kPower &&
      method != SolverMethod::kGaussSeidel) {
    return Status::InvalidArgument(
        "distributed block solve supports kPower and kGaussSeidel only");
  }
  D2PR_RETURN_NOT_OK(ValidatePagerankOptions(options));
  D2PR_RETURN_NOT_OK(ValidateTeleportVector(teleport, options_.num_nodes));
  const bool gauss_seidel = method == SolverMethod::kGaussSeidel;
  if (gauss_seidel) {
    D2PR_RETURN_NOT_OK(ValidateBlockGaussSeidelPolicy(options.dangling));
  }
  const NodeId n = options_.num_nodes;
  const int64_t t0 = NowMs();

  PagerankResult result;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  const size_t num_shards = channels_.size();
  const uint64_t solve_id = next_solve_id_++;

  // The canonical iterate, initialized exactly as the reference solvers:
  // power normalizes the teleport copy defensively, Gauss-Seidel starts
  // from the raw teleport.
  std::vector<double> current(teleport.begin(), teleport.end());
  if (!gauss_seidel) NormalizeL1(current);
  std::vector<double> next(static_cast<size_t>(n), 0.0);

  // Per-solve constants down to every shard.
  for (size_t s = 0; s < num_shards; ++s) {
    ShardSolveBegin begin;
    begin.solve_id = solve_id;
    begin.method = static_cast<uint32_t>(method);
    begin.dangling = options.dangling;
    begin.alpha = options.alpha;
    begin.initial.reserve(owned_[s].size());
    begin.teleport.reserve(owned_[s].size());
    for (NodeId v : owned_[s]) {
      begin.initial.push_back(current[static_cast<size_t>(v)]);
      begin.teleport.push_back(teleport[static_cast<size_t>(v)]);
    }
    if (needs_metric_[s]) {
      // One O(|V|) broadcast, once per cut-loaded shard ever: the shard
      // builds its transition slice from it and never asks again.
      begin.metric_values = options_.metric_values;
      stats_.metric_values_sent +=
          static_cast<int64_t>(begin.metric_values.size());
    }
    ShardFrame request;
    request.type = FrameType::kSolveBegin;
    request.request_id = next_request_id_++;
    request.payload = EncodeShardSolveBegin(begin);
    Result<ShardFrame> reply = CallShard(s, request, FrameType::kStatus);
    if (!reply.ok()) {
      stats_.elapsed_ms += NowMs() - t0;
      return reply.status();
    }
    needs_metric_[s] = 0;
  }

  // prev_norm > 0 means the previous iteration L1-normalized the global
  // vector and shards must replay the exact 1/norm multiply on their
  // retained slices before sweeping.
  double prev_norm = 0.0;

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    // Canonical global folds, straight from core/block_solver.cc: the
    // dangling mass folds over the merged ascending list of `current`.
    double dangling_mass = 0.0;
    for (NodeId v : dangling_) {
      dangling_mass += current[static_cast<size_t>(v)];
    }

    // One synchronized sweep round. Shards are driven sequentially —
    // the bits cannot tell (disjoint writes, frozen reads); overlapping
    // the round trips is the async follow-up in ROADMAP.md.
    for (size_t s = 0; s < num_shards; ++s) {
      ShardSweepRequest sweep;
      sweep.solve_id = solve_id;
      sweep.sweep = static_cast<uint32_t>(iter);
      sweep.dangling_mass = dangling_mass;
      sweep.has_rescale = prev_norm > 0.0;
      sweep.rescale = prev_norm > 0.0 ? 1.0 / prev_norm : 1.0;
      sweep.boundary.reserve(boundary_[s].size());
      for (NodeId v : boundary_[s]) {
        sweep.boundary.push_back(current[static_cast<size_t>(v)]);
      }
      stats_.boundary_values += static_cast<int64_t>(sweep.boundary.size());

      ShardFrame request;
      request.type = FrameType::kSweepRequest;
      request.request_id = next_request_id_++;
      request.payload = EncodeShardSweepRequest(sweep);
      Result<ShardFrame> reply =
          CallShard(s, request, FrameType::kSweepResponse);
      if (!reply.ok()) {
        EndSolve(solve_id);
        stats_.elapsed_ms += NowMs() - t0;
        return reply.status();
      }
      Result<ShardSweepResponse> decoded =
          DecodeShardSweepResponse(reply->payload);
      if (!decoded.ok()) {
        EndSolve(solve_id);
        stats_.elapsed_ms += NowMs() - t0;
        return Status::Unavailable(
            StrCat("shard ", s, " sent a malformed sweep response: ",
                   decoded.status().ToString()));
      }
      const ShardSweepResponse& response = *decoded;
      if (response.solve_id != solve_id ||
          response.sweep != static_cast<uint32_t>(iter) ||
          response.owned.size() != owned_[s].size()) {
        EndSolve(solve_id);
        stats_.elapsed_ms += NowMs() - t0;
        return Status::Unavailable(
            StrCat("shard ", s, " answered the wrong sweep (solve ",
                   response.solve_id, ", sweep ", response.sweep, ", ",
                   response.owned.size(), " values)"));
      }
      for (size_t k = 0; k < owned_[s].size(); ++k) {
        next[static_cast<size_t>(owned_[s][k])] = response.owned[k];
      }
      stats_.owned_values += static_cast<int64_t>(response.owned.size());
    }
    ++stats_.sweeps;

    // Global normalization: Gauss-Seidel every iteration, power only
    // under kRenormalize — the reference's exact sequence. NormalizeL1
    // returns the norm it divided by; broadcasting 1/norm next sweep
    // keeps the shards' retained slices bitwise in step.
    if (gauss_seidel || options.dangling == DanglingPolicy::kRenormalize) {
      prev_norm = NormalizeL1(next);
    } else {
      prev_norm = 0.0;
    }

    result.iterations = iter;
    result.residual = DiffL1(next, current);
    current.swap(next);
    if (result.residual < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  EndSolve(solve_id);
  result.scores = std::move(current);
  stats_.elapsed_ms += NowMs() - t0;
  return result;
}

}  // namespace d2pr
