#include "core/d2pr.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/classic_generators.h"
#include "graph/graph_builder.h"
#include "linalg/vec_ops.h"
#include "stats/correlation.h"
#include "graph/graph_stats.h"

namespace d2pr {
namespace {

TEST(D2prTest, DefaultOptionsAreConventionalPagerank) {
  Rng rng(1);
  auto graph = BarabasiAlbert(200, 3, &rng);
  ASSERT_TRUE(graph.ok());
  auto d2pr = ComputeD2pr(*graph);
  auto conventional = ComputeConventionalPagerank(*graph);
  ASSERT_TRUE(d2pr.ok());
  ASSERT_TRUE(conventional.ok());
  for (size_t i = 0; i < d2pr->scores.size(); ++i) {
    EXPECT_NEAR(d2pr->scores[i], conventional->scores[i], 1e-12);
  }
}

TEST(D2prTest, PZeroTightlyCoupledWithDegree) {
  // The paper's Table 1 observation: Spearman(PR, degree) ≈ 0.85-0.997 on
  // undirected graphs.
  Rng rng(2);
  auto graph = BarabasiAlbert(800, 3, &rng);
  ASSERT_TRUE(graph.ok());
  auto pr = ComputeD2pr(*graph, {.p = 0.0});
  ASSERT_TRUE(pr.ok());
  const std::vector<double> degrees = DegreesAsDoubles(*graph);
  EXPECT_GT(SpearmanCorrelation(pr->scores, degrees), 0.9);
}

TEST(D2prTest, PositivePReducesDegreeCoupling) {
  Rng rng(3);
  auto graph = BarabasiAlbert(800, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<double> degrees = DegreesAsDoubles(*graph);
  auto plain = ComputeD2pr(*graph, {.p = 0.0});
  auto penalized = ComputeD2pr(*graph, {.p = 2.0});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(penalized.ok());
  EXPECT_LT(SpearmanCorrelation(penalized->scores, degrees),
            SpearmanCorrelation(plain->scores, degrees));
}

TEST(D2prTest, BoostedWalkStaysDegreeAlignedPenalizedDoesNot) {
  // Boosting tracks degree through a two-hop aggregate, so it need not
  // beat p = 0 exactly, but it must stay strongly aligned while
  // penalization decorrelates.
  Rng rng(4);
  auto graph = ErdosRenyi(600, 2400, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<double> degrees = DegreesAsDoubles(*graph);
  auto boosted = ComputeD2pr(*graph, {.p = -2.0});
  auto penalized = ComputeD2pr(*graph, {.p = 2.0});
  ASSERT_TRUE(boosted.ok());
  ASSERT_TRUE(penalized.ok());
  EXPECT_GT(SpearmanCorrelation(boosted->scores, degrees), 0.95);
  EXPECT_GT(SpearmanCorrelation(boosted->scores, degrees),
            SpearmanCorrelation(penalized->scores, degrees) + 0.1);
}

TEST(D2prTest, ScoresFormDistributionForAllP) {
  Rng rng(5);
  auto graph = BarabasiAlbert(300, 2, &rng);
  ASSERT_TRUE(graph.ok());
  for (double p : {-8.0, -1.0, 0.0, 0.5, 3.0, 8.0}) {
    auto pr = ComputeD2pr(*graph, {.p = p});
    ASSERT_TRUE(pr.ok()) << "p = " << p;
    EXPECT_NEAR(Sum(pr->scores), 1.0, 1e-8) << "p = " << p;
    for (double s : pr->scores) EXPECT_GT(s, 0.0);
  }
}

TEST(D2prTest, ConventionalOnWeightedGraphUsesStrengths) {
  GraphBuilder builder(3, GraphKind::kUndirected, /*weighted=*/true);
  ASSERT_TRUE(builder.AddEdge(0, 1, 10.0).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2, 1.0).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  auto pr = ComputeConventionalPagerank(*graph);
  ASSERT_TRUE(pr.ok());
  // The heavy 0-1 edge concentrates the walk on {0, 1}.
  EXPECT_GT(pr->scores[0], pr->scores[2]);
  EXPECT_GT(pr->scores[1], pr->scores[2]);
}

TEST(D2prTest, PersonalizedConcentratesAroundSeeds) {
  Rng rng(6);
  auto graph = WattsStrogatz(100, 3, 0.1, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<NodeId> seeds{10, 11};
  auto ppr = ComputePersonalizedD2pr(*graph, seeds, {.p = 0.5});
  ASSERT_TRUE(ppr.ok());
  // Seeds must outrank the global median by a wide margin.
  std::vector<double> sorted = ppr->scores;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  EXPECT_GT(ppr->scores[10], 5.0 * median);
  EXPECT_GT(ppr->scores[11], 5.0 * median);
}

TEST(D2prTest, PersonalizedRejectsBadSeeds) {
  Rng rng(7);
  auto graph = ErdosRenyi(20, 40, &rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(
      ComputePersonalizedD2pr(*graph, std::vector<NodeId>{99}, {}).ok());
  EXPECT_FALSE(
      ComputePersonalizedD2pr(*graph, std::vector<NodeId>{}, {}).ok());
}

TEST(D2prTest, OptionTranslation) {
  D2prOptions options;
  options.p = 1.5;
  options.beta = 0.25;
  options.alpha = 0.7;
  options.tolerance = 1e-6;
  options.max_iterations = 42;
  options.metric = DegreeMetric::kInDegree;
  options.dangling = DanglingPolicy::kSelfLoop;
  const TransitionConfig tc = ToTransitionConfig(options);
  EXPECT_DOUBLE_EQ(tc.p, 1.5);
  EXPECT_DOUBLE_EQ(tc.beta, 0.25);
  EXPECT_EQ(tc.metric, DegreeMetric::kInDegree);
  const PagerankOptions po = ToPagerankOptions(options);
  EXPECT_DOUBLE_EQ(po.alpha, 0.7);
  EXPECT_DOUBLE_EQ(po.tolerance, 1e-6);
  EXPECT_EQ(po.max_iterations, 42);
  EXPECT_EQ(po.dangling, DanglingPolicy::kSelfLoop);
}

TEST(D2prTest, InvalidOptionsPropagateAsStatus) {
  Rng rng(8);
  auto graph = ErdosRenyi(20, 40, &rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(ComputeD2pr(*graph, {.p = 0.0, .beta = 2.0}).ok());
  D2prOptions bad_alpha;
  bad_alpha.alpha = 1.0;
  EXPECT_FALSE(ComputeD2pr(*graph, bad_alpha).ok());
}

}  // namespace
}  // namespace d2pr
