// The serving vocabulary of the D2PR engine: one request struct in, one
// response struct out, for every ranking variant the library implements.
//
// A RankRequest bundles the transition knobs (p, beta, metric), the solver
// knobs (alpha, tolerance, iteration caps), the solver method, and the
// query context (personalization seeds, warm-start tag). A RankResponse
// carries the scores plus the convergence and cache diagnostics a serving
// layer needs for observability.

#ifndef D2PR_API_RANK_REQUEST_H_
#define D2PR_API_RANK_REQUEST_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/pagerank.h"
#include "core/transition.h"
#include "graph/types.h"

namespace d2pr {

/// \brief Which solver executes a RankRequest.
enum class SolverMethod {
  /// Jacobi-style power iteration (default; iterates stay distributions
  /// and warm starts are supported).
  kPower,
  /// Gauss-Seidel sweeps: typically ~half the iterations of power
  /// iteration at the same per-sweep cost.
  kGaussSeidel,
  /// Forward local push: approximate, output-sensitive; the right choice
  /// for per-query personalized rankings on large graphs.
  kForwardPush,
};

/// \brief Human-readable solver name ("power", "gauss-seidel",
/// "forward-push").
const char* SolverMethodName(SolverMethod method);

struct RankRequest;

/// \brief Validates a request's parameters (p finite, beta in [0, 1],
/// alpha in [0, 1), then the active solver's knobs) with the exact
/// checks and messages D2prEngine::Rank applies before touching its
/// caches. Every serving front end (the engine, EngineRouter's
/// partitioned-subgraph mode) calls this one function, so the surface
/// errors identically no matter which mode backs it — a contract
/// tests/partition_parity_test.cc asserts string-for-string.
Status ValidateRankRequestParameters(const RankRequest& request);

/// \brief One ranking query against a D2prEngine.
struct RankRequest {
  // --- transition model (cache key) ---
  /// Degree de-coupling weight (the paper's p).
  double p = 0.0;
  /// Connection-strength blend on weighted graphs (the paper's β).
  double beta = 0.0;
  /// Which destination quantity is raised to -p.
  DegreeMetric metric = DegreeMetric::kAuto;

  // --- solver ---
  double alpha = 0.85;       ///< Residual probability (the paper's α).
  double tolerance = 1e-10;  ///< L1 convergence threshold (power / GS).
  int max_iterations = 200;  ///< Iteration cap (power / GS).
  DanglingPolicy dangling = DanglingPolicy::kTeleport;
  SolverMethod method = SolverMethod::kPower;
  /// Per-node residual threshold for kForwardPush (ignored otherwise).
  double push_epsilon = 1e-7;

  // --- query context ---
  /// Personalization seeds; empty = uniform teleportation (global rank).
  std::vector<NodeId> seeds;
  /// 0 (the default) = exact serving: the response carries the full
  /// score vector, unchanged behavior. > 0 = truncated serving: the
  /// response carries only the top_k best entries (RankResponse::top)
  /// and an empty score vector. Under kForwardPush the engine runs the
  /// degree-pruned bounded-push TopKSolver (topk/topk_solver.h) with
  /// certified set membership; exact solvers (power / Gauss-Seidel)
  /// solve fully and truncate, so every entry is certified. Negative
  /// values are InvalidArgument.
  int top_k = 0;
  /// Non-empty: the engine warm-starts this solve from the previous
  /// solution stored under the same tag (power iteration only) and stores
  /// the new solution back. Sweeps and tuners use one tag per trajectory.
  std::string warm_start_tag;
};

/// \brief One node of a truncated (top-k) response.
struct RankedEntry {
  NodeId node = 0;
  /// The served score: a certified lower bound under bounded push, the
  /// exact stationary score under power / Gauss-Seidel.
  double score = 0.0;
  /// True when this node provably belongs to the exact top-k (always
  /// true for exact-solver truncation; bound-certified for push).
  bool certified = false;

  bool operator==(const RankedEntry&) const = default;
};

/// \brief Truncated top-k view plus its certification gap.
struct TruncatedTopK {
  /// min(top_k, |scores|) entries, score descending (ties by ascending
  /// node id).
  std::vector<RankedEntry> entries;
  /// max(0, best excluded score + margin - k-th score); 0 when every
  /// entry clears the boundary by at least the margin.
  double uncertainty_gap = 0.0;
};

/// \brief Selects the top_k best entries of a full score vector with
/// deterministic tie handling. An entry is certified when its score
/// clears the best excluded score by at least `certify_margin` — exact
/// servers pass 0 (everything selected is certified); EngineRouter's
/// merge path passes its merge tolerance so boundary-near entries that
/// float error could reorder are served uncertified instead.
TruncatedTopK TruncateToTopK(std::span<const double> scores, int top_k,
                             double certify_margin);

/// \brief Scores plus diagnostics for one RankRequest.
struct RankResponse {
  /// Stationary (or push-estimate) scores; EMPTY for truncated (top_k)
  /// responses, whose payload is `top` instead.
  std::vector<double> scores;
  /// Truncated top-k entries (top_k > 0 only), best first.
  std::vector<RankedEntry> top;
  /// Certification slack of a truncated response: how far the best
  /// excluded node's upper bound overlaps the k-th served score. 0 when
  /// the whole set is certified (exact truncation always is).
  double uncertainty_gap = 0.0;
  /// True when this response was served truncated (request.top_k > 0);
  /// `scores` is empty and `top` is the payload.
  bool truncated = false;
  SolverMethod method = SolverMethod::kPower;  ///< Solver that ran.
  int iterations = 0;      ///< Iterations performed (power / GS).
  int64_t pushes = 0;      ///< Push operations performed (forward push).
  bool converged = false;  ///< Tolerance reached / push completed.
  double residual = 0.0;   ///< Final L1 change (power / GS).
  bool transition_cache_hit = false;  ///< Transition served from cache.
  /// Transition mapped from the persistent store (a build was skipped).
  /// As reported by D2prEngine this is mutually exclusive with
  /// transition_cache_hit; the serve layers (ServingRuntime,
  /// EngineRouter) normalize transition_cache_hit to the sequential
  /// reference trace but leave this flag as executed, so a normalized
  /// response can carry both.
  bool transition_store_hit = false;
  bool warm_start_hit = false;        ///< Solve started from a stored
                                      ///< (possibly extrapolated) iterate.
  /// Served by a block solve over an edge-partitioned graph
  /// (EngineRouter's partitioned-subgraph mode) instead of a whole-graph
  /// engine. Scores are reference-parity either way (bit-identical for
  /// power iteration); the flag exists so telemetry can attribute
  /// latency to the exchange loop.
  bool served_partitioned = false;
};

/// \brief Cumulative per-engine counters, exposed for serving telemetry
/// and asserted on by efficiency tests.
///
/// Counters are atomic so one engine can back many worker threads without
/// losing increments; each counter is individually exact under concurrent
/// Rank calls. Reading several counters is not one consistent snapshot —
/// copy the struct (an atomic-load per field) when a point-in-time view
/// matters.
struct EngineStats {
  std::atomic<int64_t> requests{0};  ///< RankRequests executed (ok or not).
  /// Rank calls currently executing (a gauge, not a cumulative counter).
  /// EngineRouter's least-loaded policy routes on a snapshot of this.
  std::atomic<int64_t> requests_inflight{0};
  std::atomic<int64_t> transition_builds{
      0};  ///< TransitionMatrix::Build invocations.
  std::atomic<int64_t> transition_cache_hits{0};
  /// Matrices mapped in from the persistent store (each replaced a
  /// transition_builds increment).
  std::atomic<int64_t> transition_store_loads{0};
  /// Matrices successfully spilled to the persistent store.
  std::atomic<int64_t> transition_store_saves{0};
  std::atomic<int64_t> warm_start_hits{0};
  std::atomic<int64_t> solver_iterations{
      0};  ///< Summed power / Gauss-Seidel iterations.
  std::atomic<int64_t> push_operations{
      0};  ///< Summed forward-push operations.

  EngineStats() = default;
  // Atomics are not copyable; snapshot semantics (field-wise loads) keep
  // `EngineStats stats = engine.stats();` working for telemetry readers.
  EngineStats(const EngineStats& other) { *this = other; }
  EngineStats& operator=(const EngineStats& other) {
    requests.store(other.requests.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    requests_inflight.store(
        other.requests_inflight.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    transition_builds.store(
        other.transition_builds.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    transition_cache_hits.store(
        other.transition_cache_hits.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    transition_store_loads.store(
        other.transition_store_loads.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    transition_store_saves.store(
        other.transition_store_saves.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    warm_start_hits.store(other.warm_start_hits.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    solver_iterations.store(
        other.solver_iterations.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    push_operations.store(other.push_operations.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    return *this;
  }
};

}  // namespace d2pr

#endif  // D2PR_API_RANK_REQUEST_H_
