#include "datagen/copula.h"

#include <gtest/gtest.h>

#include "stats/correlation.h"

namespace d2pr {
namespace {

class CopulaTargetTest : public ::testing::TestWithParam<double> {};

TEST_P(CopulaTargetTest, AchievesTargetSpearman) {
  Rng rng(321);
  std::vector<double> reference(4000);
  for (double& v : reference) v = rng.Lognormal(0.0, 1.0);
  auto coupled = SpearmanCoupledVector(reference, GetParam(), &rng);
  ASSERT_TRUE(coupled.ok());
  const double achieved = SpearmanCorrelation(reference, *coupled);
  EXPECT_NEAR(achieved, GetParam(), 0.05) << "target " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Targets, CopulaTargetTest,
                         ::testing::Values(-0.9, -0.5, -0.2, 0.0, 0.2, 0.5,
                                           0.9));

TEST(CopulaTest, ExtremeTargetsReachNearPerfectCorrelation) {
  Rng rng(322);
  std::vector<double> reference(1000);
  for (double& v : reference) v = rng.Normal();
  auto coupled = SpearmanCoupledVector(reference, 1.0, &rng);
  ASSERT_TRUE(coupled.ok());
  EXPECT_GT(SpearmanCorrelation(reference, *coupled), 0.995);
}

TEST(CopulaTest, WorksWithTiedReferenceValues) {
  Rng rng(323);
  std::vector<double> reference(1000);
  for (size_t i = 0; i < reference.size(); ++i) {
    reference[i] = static_cast<double>(i % 5);  // heavy ties
  }
  auto coupled = SpearmanCoupledVector(reference, 0.6, &rng);
  ASSERT_TRUE(coupled.ok());
  EXPECT_NEAR(SpearmanCorrelation(reference, *coupled), 0.6, 0.08);
}

TEST(CopulaTest, RejectsInvalidInput) {
  Rng rng(324);
  std::vector<double> reference{1.0, 2.0, 3.0};
  EXPECT_FALSE(SpearmanCoupledVector(reference, 1.5, &rng).ok());
  EXPECT_FALSE(SpearmanCoupledVector(reference, -1.5, &rng).ok());
  std::vector<double> tiny{1.0};
  EXPECT_FALSE(SpearmanCoupledVector(tiny, 0.5, &rng).ok());
}

TEST(CopulaTest, DeterministicGivenRngState) {
  std::vector<double> reference{5.0, 1.0, 3.0, 2.0, 4.0};
  Rng a(77), b(77);
  auto ca = SpearmanCoupledVector(reference, 0.5, &a);
  auto cb = SpearmanCoupledVector(reference, 0.5, &b);
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  EXPECT_EQ(*ca, *cb);
}

}  // namespace
}  // namespace d2pr
