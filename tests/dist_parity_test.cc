// Distributed-vs-in-process parity: the DistributedCoordinator driving
// an in-process shard fleet must reproduce the reference block solvers
// exactly — power bitwise (scores, iteration count, final residual)
// against SolvePagerankPartitioned, block Gauss-Seidel within 1e-9 of
// SolveGaussSeidelPartitioned — across both partition schemes, shard
// counts {1, 2, 4, 8}, every dangling policy, and a 25-graph seeded fuzz
// over the same graph family partition_fuzz_test.cc proves the
// in-process solvers on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/block_solver.h"
#include "core/teleport.h"
#include "core/transition_slices.h"
#include "dist/coordinator.h"
#include "dist_test_util.h"
#include "graph/partition.h"

namespace d2pr {
namespace {

constexpr double kGsTolerance = 1e-9;

Result<PagerankResult> ReferenceSolve(const CsrGraph& graph,
                                      PartitionScheme scheme,
                                      size_t num_shards, SolverMethod method,
                                      const TransitionConfig& config,
                                      const std::vector<double>& teleport,
                                      const PagerankOptions& options) {
  auto partition = GraphPartition::Build(
      graph, {.scheme = scheme, .num_shards = num_shards,
              .build_out_csr = false});
  if (!partition.ok()) return partition.status();
  auto slices = BuildTransitionSlicesLocal(graph, *partition, config);
  if (!slices.ok()) return slices.status();
  return method == SolverMethod::kPower
             ? SolvePagerankPartitioned(*slices, *partition, teleport,
                                        options)
             : SolveGaussSeidelPartitioned(*slices, *partition, teleport,
                                           options);
}

void ExpectBitwiseEqual(const PagerankResult& got,
                        const PagerankResult& want) {
  EXPECT_EQ(got.scores, want.scores);
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.residual, want.residual);
  EXPECT_EQ(got.converged, want.converged);
}

void ExpectWithin(const PagerankResult& got, const PagerankResult& want,
                  double tolerance) {
  ASSERT_EQ(got.scores.size(), want.scores.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < got.scores.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(got.scores[i] - want.scores[i]));
  }
  EXPECT_LE(max_diff, tolerance);
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.converged, want.converged);
}

TEST(DistParityTest, PowerBitwiseAcrossSchemesShardsAndPolicies) {
  Rng rng(42);
  auto graph = BarabasiAlbert(300, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<double> teleport = UniformTeleport(graph->num_nodes());

  for (PartitionScheme scheme :
       {PartitionScheme::kRange, PartitionScheme::kHash}) {
    for (size_t shards : {1, 2, 4, 8}) {
      for (DanglingPolicy dangling :
           {DanglingPolicy::kTeleport, DanglingPolicy::kSelfLoop,
            DanglingPolicy::kRenormalize}) {
        SCOPED_TRACE(std::string(PartitionSchemeName(scheme)) + " x " +
                     std::to_string(shards) + " shards, dangling " +
                     std::to_string(static_cast<int>(dangling)));
        PagerankOptions options;
        options.alpha = 0.85;
        options.tolerance = 1e-11;
        options.max_iterations = 2000;
        options.dangling = dangling;

        DistFleet fleet = MakeFleet(*graph, shards, scheme);
        DistributedCoordinator coordinator(
            fleet.raw, MakeCoordinatorOptions(*graph, scheme));
        ASSERT_TRUE(coordinator.Handshake().ok());
        auto distributed =
            coordinator.Solve(SolverMethod::kPower, teleport, options);
        ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();
        ASSERT_TRUE(distributed->converged);

        auto reference =
            ReferenceSolve(*graph, scheme, shards, SolverMethod::kPower, {},
                           teleport, options);
        ASSERT_TRUE(reference.ok());
        ExpectBitwiseEqual(*distributed, *reference);
      }
    }
  }
}

TEST(DistParityTest, GaussSeidelWithinToleranceAcrossSchemesAndShards) {
  Rng rng(43);
  auto graph = BarabasiAlbert(250, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<double> teleport = UniformTeleport(graph->num_nodes());

  for (PartitionScheme scheme :
       {PartitionScheme::kRange, PartitionScheme::kHash}) {
    for (size_t shards : {1, 2, 4, 8}) {
      for (DanglingPolicy dangling :
           {DanglingPolicy::kTeleport, DanglingPolicy::kSelfLoop}) {
        SCOPED_TRACE(std::string(PartitionSchemeName(scheme)) + " x " +
                     std::to_string(shards) + " shards, dangling " +
                     std::to_string(static_cast<int>(dangling)));
        PagerankOptions options;
        options.alpha = 0.85;
        options.tolerance = 1e-11;
        options.max_iterations = 2000;
        options.dangling = dangling;

        DistFleet fleet = MakeFleet(*graph, shards, scheme);
        DistributedCoordinator coordinator(
            fleet.raw, MakeCoordinatorOptions(*graph, scheme));
        ASSERT_TRUE(coordinator.Handshake().ok());
        auto distributed =
            coordinator.Solve(SolverMethod::kGaussSeidel, teleport, options);
        ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();
        ASSERT_TRUE(distributed->converged);

        auto reference = ReferenceSolve(*graph, scheme, shards,
                                        SolverMethod::kGaussSeidel, {},
                                        teleport, options);
        ASSERT_TRUE(reference.ok());
        ExpectWithin(*distributed, *reference, kGsTolerance);
      }
    }
  }
}

TEST(DistParityTest, GaussSeidelRejectsRenormalizeExactlyAsInProcess) {
  Rng rng(44);
  auto graph = BarabasiAlbert(100, 2, &rng);
  ASSERT_TRUE(graph.ok());
  DistFleet fleet = MakeFleet(*graph, 2);
  DistributedCoordinator coordinator(fleet.raw,
                                     MakeCoordinatorOptions(*graph));
  ASSERT_TRUE(coordinator.Handshake().ok());

  PagerankOptions options;
  options.dangling = DanglingPolicy::kRenormalize;
  auto result = coordinator.Solve(SolverMethod::kGaussSeidel,
                                  UniformTeleport(graph->num_nodes()),
                                  options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(),
            ValidateBlockGaussSeidelPolicy(DanglingPolicy::kRenormalize)
                .code());
}

TEST(DistParityTest, SeededFuzzMatchesBlockSolversOnRandomGraphs) {
  // 25 graphs from the partition fuzz family, cycling shard counts
  // {1, 2, 4, 8}, both schemes, both methods, random transition configs
  // and non-uniform teleports.
  int power_cases = 0;
  int gs_cases = 0;
  for (int case_id = 0; case_id < 25; ++case_id) {
    SCOPED_TRACE("case " + std::to_string(case_id));
    auto graph = DistFuzzGraph(case_id);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();

    Rng rng(21000 + static_cast<uint64_t>(case_id));
    TransitionConfig config;
    config.p = rng.Uniform(-1.5, 2.0);
    config.beta = graph->weighted() ? rng.Uniform() : 0.0;

    PagerankOptions options;
    options.alpha = rng.Uniform(0.5, 0.9);
    options.tolerance = 1e-11;
    options.max_iterations = 5000;
    const double policy_draw = rng.Uniform();
    options.dangling = policy_draw < 0.6 ? DanglingPolicy::kTeleport
                       : policy_draw < 0.8 ? DanglingPolicy::kSelfLoop
                                           : DanglingPolicy::kRenormalize;
    const SolverMethod method =
        rng.Bernoulli(0.5) ? SolverMethod::kPower : SolverMethod::kGaussSeidel;
    if (method == SolverMethod::kGaussSeidel &&
        options.dangling == DanglingPolicy::kRenormalize) {
      options.dangling = DanglingPolicy::kTeleport;
    }

    // Every fourth case personalizes the teleport vector.
    std::vector<double> teleport = UniformTeleport(graph->num_nodes());
    if (case_id % 4 == 3) {
      double mass = 0.0;
      for (double& t : teleport) {
        t = rng.Uniform(0.1, 1.0);
        mass += t;
      }
      for (double& t : teleport) t /= mass;
    }

    const size_t shard_counts[] = {1, 2, 4, 8};
    const size_t shards = shard_counts[case_id % 4];
    const PartitionScheme scheme = case_id % 2 == 0
                                       ? PartitionScheme::kHash
                                       : PartitionScheme::kRange;

    DistFleet fleet = MakeFleet(*graph, shards, scheme, config);
    DistributedCoordinator coordinator(
        fleet.raw, MakeCoordinatorOptions(*graph, scheme, config));
    ASSERT_TRUE(coordinator.Handshake().ok());
    auto distributed = coordinator.Solve(method, teleport, options);
    ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();
    ASSERT_TRUE(distributed->converged);

    auto reference = ReferenceSolve(*graph, scheme, shards, method, config,
                                    teleport, options);
    ASSERT_TRUE(reference.ok());
    if (method == SolverMethod::kPower) {
      ExpectBitwiseEqual(*distributed, *reference);
      ++power_cases;
    } else {
      ExpectWithin(*distributed, *reference, kGsTolerance);
      ++gs_cases;
    }
  }
  // The sweep is only meaningful if both solvers recur.
  EXPECT_GE(power_cases, 5);
  EXPECT_GE(gs_cases, 5);
}

TEST(DistParityTest, BackToBackSolvesOverOneFleetStayBitwise) {
  // One handshake, three solves with different options over the same
  // connections — per-solve state must fully reset between solves.
  Rng rng(45);
  auto graph = BarabasiAlbert(200, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<double> teleport = UniformTeleport(graph->num_nodes());

  DistFleet fleet = MakeFleet(*graph, 4);
  DistributedCoordinator coordinator(fleet.raw,
                                     MakeCoordinatorOptions(*graph));
  ASSERT_TRUE(coordinator.Handshake().ok());

  for (double alpha : {0.7, 0.85, 0.9}) {
    SCOPED_TRACE("alpha " + std::to_string(alpha));
    PagerankOptions options;
    options.alpha = alpha;
    options.tolerance = 1e-11;
    options.max_iterations = 2000;
    auto distributed =
        coordinator.Solve(SolverMethod::kPower, teleport, options);
    ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();
    auto reference = ReferenceSolve(*graph, PartitionScheme::kRange, 4,
                                    SolverMethod::kPower, {}, teleport,
                                    options);
    ASSERT_TRUE(reference.ok());
    ExpectBitwiseEqual(*distributed, *reference);
  }
}

}  // namespace
}  // namespace d2pr
