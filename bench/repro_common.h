// Shared plumbing for the table/figure reproduction binaries.
//
// Every repro_* binary prints the paper-style rows to stdout and archives
// the same data as CSV under results/. Graph scale is controlled by the
// D2PR_SCALE environment variable (default 1.0).

#ifndef D2PR_BENCH_REPRO_COMMON_H_
#define D2PR_BENCH_REPRO_COMMON_H_

#include <string>
#include <vector>

#include "datagen/dataset_registry.h"
#include "eval/experiment.h"
#include "eval/table_writer.h"

namespace d2pr {
namespace bench {

/// \brief Registry options honoring D2PR_SCALE.
RegistryOptions BenchRegistryOptions();

/// \brief Prints a banner with the experiment name and scale.
void PrintHeader(const std::string& title, const std::string& paper_ref);

/// \brief Loads one graph or dies with a diagnostic.
DataGraph LoadGraph(PaperGraphId id, const RegistryOptions& options);

/// \brief Runs the p-sweep figure for one application group (the layout of
/// the paper's Figures 2-4): per graph, the correlation-vs-p series plus a
/// verdict line comparing best p against the conventional p = 0.
///
/// Archives results/<csv_name>.csv. Returns process exit code (0 = every
/// graph matched its expected regime).
int RunGroupPSweepFigure(ApplicationGroup group, const std::string& title,
                         const std::string& paper_ref,
                         const std::string& csv_name);

/// \brief Runs the alpha × p surface for one group (Figures 6-8 layout).
int RunGroupAlphaFigure(ApplicationGroup group, const std::string& title,
                        const std::string& paper_ref,
                        const std::string& csv_name);

/// \brief Runs the beta × p surface on weighted graphs (Figures 9-11).
int RunGroupBetaFigure(ApplicationGroup group, const std::string& title,
                       const std::string& paper_ref,
                       const std::string& csv_name);

/// \brief Formats a correlation for table cells ("+0.1234").
std::string FormatCorr(double value);

/// \brief Writes a table to results/<name>.csv (best effort; prints a
/// warning on failure).
void ArchiveCsv(const TextTable& table, const std::string& name);

}  // namespace bench
}  // namespace d2pr

#endif  // D2PR_BENCH_REPRO_COMMON_H_
