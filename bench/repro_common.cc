#include "repro_common.h"

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/sweeps.h"
#include "eval/table_writer.h"

namespace d2pr {
namespace bench {

RegistryOptions BenchRegistryOptions() {
  RegistryOptions options;
  options.scale = ScaleFromEnv();
  return options;
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Scale: %.2f (set D2PR_SCALE to change)\n", ScaleFromEnv());
  std::printf("================================================================\n\n");
}

DataGraph LoadGraph(PaperGraphId id, const RegistryOptions& options) {
  auto graph = MakePaperGraph(id, options);
  if (!graph.ok()) {
    std::fprintf(stderr, "failed to build %s: %s\n",
                 std::string(PaperGraphName(id)).c_str(),
                 graph.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(graph).value();
}

std::string FormatCorr(double value) {
  return StrCat(value >= 0 ? "+" : "", FormatDouble(value, 4));
}

void ArchiveCsv(const TextTable& table, const std::string& name) {
  if (!EnsureDirectory(ResultsDir()).ok()) return;
  const std::string path = StrCat(ResultsDir(), "/", name, ".csv");
  Status status = table.WriteCsv(path);
  if (!status.ok()) {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  } else {
    std::printf("[archived %s]\n", path.c_str());
  }
}

namespace {

// Verdict policy: group B curves are flat left of 0 (paper Fig. 3), so a
// best point within this tolerance of p = 0 counts as "conventional".
constexpr double kFlatTolerance = 0.02;

bool VerdictMatches(ApplicationGroup group, const CorrelationPoint& best,
                    const CorrelationPoint& conventional) {
  switch (group) {
    case ApplicationGroup::kPenalizationHelps:
      return best.p > 0.0 &&
             best.correlation > conventional.correlation + kFlatTolerance;
    case ApplicationGroup::kConventionalIdeal:
      return best.correlation <= conventional.correlation + kFlatTolerance;
    case ApplicationGroup::kBoostingHelps:
      return best.p <= 0.0;
  }
  return false;
}

}  // namespace

int RunGroupPSweepFigure(ApplicationGroup group, const std::string& title,
                         const std::string& paper_ref,
                         const std::string& csv_name) {
  PrintHeader(title, paper_ref);
  const RegistryOptions options = BenchRegistryOptions();
  const std::vector<double> grid = PaperPGrid();

  std::vector<std::string> headers{"p"};
  std::vector<std::vector<CorrelationPoint>> all_series;
  std::vector<DataGraph> graphs;
  for (PaperGraphId id : GraphsInGroup(group)) {
    graphs.push_back(LoadGraph(id, options));
    headers.push_back(graphs.back().name);
  }

  int exit_code = 0;
  for (DataGraph& data : graphs) {
    Timer timer;
    auto series = CorrelationPSweep(data.unweighted, data.significance,
                                    grid, BenchOptions());
    if (!series.ok()) {
      std::fprintf(stderr, "%s: %s\n", data.name.c_str(),
                   series.status().ToString().c_str());
      return 1;
    }
    all_series.push_back(std::move(series).value());
    const auto& s = all_series.back();
    const CorrelationPoint best = BestPoint(s);
    const CorrelationPoint conventional = ConventionalPoint(s);
    const bool matches = VerdictMatches(group, best, conventional);
    std::printf(
        "%-30s best p = %+.1f (corr %s); conventional p=0 corr %s -> %s "
        "[%.1fs]\n",
        data.name.c_str(), best.p, FormatCorr(best.correlation).c_str(),
        FormatCorr(conventional.correlation).c_str(),
        matches ? "matches expected group" : "MISMATCH",
        timer.ElapsedSeconds());
    if (!matches) exit_code = 1;
  }
  std::printf("\nExpected regime: %s\n\n",
              std::string(GroupLabel(group)).c_str());

  TextTable table(headers);
  for (size_t i = 0; i < grid.size(); ++i) {
    std::vector<std::string> row{FormatDouble(grid[i], 1)};
    for (const auto& series : all_series) {
      row.push_back(FormatCorr(series[i].correlation));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  ArchiveCsv(table, csv_name);
  return exit_code;
}

namespace {

int RunGroupSurfaceFigure(ApplicationGroup group, const std::string& title,
                          const std::string& paper_ref,
                          const std::string& csv_name, bool sweep_beta) {
  PrintHeader(title, paper_ref);
  const RegistryOptions options = BenchRegistryOptions();
  const std::vector<double> grid = PaperPGrid();
  const std::vector<double> outer =
      sweep_beta ? PaperBetaGrid() : PaperAlphaGrid();
  const char* outer_name = sweep_beta ? "beta" : "alpha";

  TextTable archive({"graph", outer_name, "p", "correlation"});
  for (PaperGraphId id : GraphsInGroup(group)) {
    DataGraph data = LoadGraph(id, options);
    const CsrGraph& graph = sweep_beta ? data.weighted : data.unweighted;
    auto surface =
        sweep_beta
            ? CorrelationBetaPSweep(graph, data.significance, outer, grid,
                                    BenchOptions())
            : CorrelationAlphaPSweep(graph, data.significance, outer, grid,
                                     BenchOptions());
    if (!surface.ok()) {
      std::fprintf(stderr, "%s: %s\n", data.name.c_str(),
                   surface.status().ToString().c_str());
      return 1;
    }

    std::printf("--- %s (%s)%s\n", data.name.c_str(),
                std::string(GroupLabel(data.expected_group)).c_str(),
                sweep_beta
                    ? StrCat("  [edge weight: ", data.weight_semantics, "]")
                          .c_str()
                    : "");
    std::vector<std::string> headers{"p"};
    for (double value : outer) {
      headers.push_back(StrCat(outer_name, "=", FormatGeneral(value, 3)));
    }
    TextTable table(headers);
    for (size_t i = 0; i < grid.size(); ++i) {
      std::vector<std::string> row{FormatDouble(grid[i], 1)};
      for (size_t k = 0; k < outer.size(); ++k) {
        const double corr = surface->series[k][i].correlation;
        row.push_back(FormatCorr(corr));
        archive.AddRow({data.name, FormatGeneral(outer[k], 3),
                        FormatDouble(grid[i], 1), FormatCorr(corr)});
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s\n", table.ToString().c_str());
    // Per-outer-value verdicts.
    for (size_t k = 0; k < outer.size(); ++k) {
      const CorrelationPoint best = BestPoint(surface->series[k]);
      std::printf("  %s = %-5s best p = %+.1f (corr %s)\n", outer_name,
                  FormatGeneral(outer[k], 3).c_str(), best.p,
                  FormatCorr(best.correlation).c_str());
    }
    std::printf("\n");
  }
  ArchiveCsv(archive, csv_name);
  return 0;
}

}  // namespace

int RunGroupAlphaFigure(ApplicationGroup group, const std::string& title,
                        const std::string& paper_ref,
                        const std::string& csv_name) {
  return RunGroupSurfaceFigure(group, title, paper_ref, csv_name,
                               /*sweep_beta=*/false);
}

int RunGroupBetaFigure(ApplicationGroup group, const std::string& title,
                       const std::string& paper_ref,
                       const std::string& csv_name) {
  return RunGroupSurfaceFigure(group, title, paper_ref, csv_name,
                               /*sweep_beta=*/true);
}

}  // namespace bench
}  // namespace d2pr
