// D2prEngine: the serving facade of the library.
//
// The paper's methodology — and any production deployment of it — is many
// solves over one graph: sweeps of p, alpha, and beta, auto-tuning probes,
// and per-user personalized queries. The engine is constructed once per
// graph and amortizes everything that does not depend on the individual
// query:
//
//   * the CsrGraph itself (owned or borrowed),
//   * an LRU cache of TransitionMatrix instances keyed by (p, beta,
//     metric) — the dominant per-query setup cost,
//   * optionally, a persistent transition store (EngineOptions::cache_dir):
//     built matrices spill to disk in a versioned, checksummed format and
//     a restarted engine maps them back instead of rebuilding — see
//     api/transition_store.h,
//   * a warm-start store: previous solutions, keyed by caller-chosen tag,
//     reused (with linear extrapolation along a parameter trajectory) as
//     starting iterates for nearby queries,
//   * the uniform teleportation vector.
//
// Queries go through one RankRequest / RankResponse pair regardless of
// solver (power iteration, Gauss-Seidel, forward push) and personalization
// (global or seeded). Cumulative EngineStats counters expose build/hit/
// iteration accounting for telemetry and efficiency tests.
//
//   CsrGraph graph = ...;
//   D2prEngine engine(std::move(graph));
//   auto response = engine.Rank({.p = 0.5, .alpha = 0.85});
//   if (response.ok()) use(response->scores);
//
// The legacy free functions (ComputeD2pr, SweepP, TuneDecouplingWeight,
// ...) are thin wrappers over a borrowing engine, so all call sites share
// one code path.
//
// Thread-safety: a single engine instance can back any number of threads
// calling Rank / RankBatch / stats() concurrently.
//
//   * The transition cache is mutex-guarded, and concurrent misses on the
//     same key are single-flighted: one thread builds the O(|E|) matrix
//     while the others wait on it, so a key is never built twice.
//   * The warm-start store is mutex-guarded. Lookups and stores are
//     atomic per call, but the *ordering* of a trajectory is defined by
//     call order: callers who share a tag across threads must serialize
//     those calls themselves (ServingRuntime chains a batch's tagged
//     requests onto one worker for exactly this reason).
//   * EngineStats counters are atomic — each counter is exact under
//     concurrency; copy the struct for a point-in-time snapshot.
//
// Rank() itself never blocks on other queries except when waiting for a
// shared transition build. For a multi-threaded batch runtime with
// futures and a response memo on top of this engine, see
// serve/serving_runtime.h.

#ifndef D2PR_API_ENGINE_H_
#define D2PR_API_ENGINE_H_

#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "api/rank_request.h"
#include "api/transition_resolver.h"
#include "common/result.h"
#include "core/d2pr.h"
#include "core/transition.h"
#include "graph/csr_graph.h"

namespace d2pr {

// PersistMode / PersistPolicy (the persistent-store knobs referenced by
// EngineOptions) live in api/transition_resolver.h with the resolver that
// enforces them; this header re-exports them for every existing caller.

/// \brief Engine construction knobs.
struct EngineOptions {
  /// Max TransitionMatrix instances kept alive. The default comfortably
  /// holds the paper's p grid (17 points) plus tuner refinement probes.
  size_t transition_cache_capacity = 32;
  /// Max distinct warm-start tags retained (each holds the last two
  /// solutions of its trajectory).
  size_t warm_start_capacity = 8;
  /// Directory of the persistent transition store (see
  /// api/transition_store.h). Empty (the default) disables persistence
  /// entirely; engines sharing one graph may share one directory.
  std::string cache_dir;
  /// Store permissions; ignored while cache_dir is empty.
  PersistMode persist_mode = PersistMode::kReadWrite;
  /// Spill timing for writable modes.
  PersistPolicy persist_policy = PersistPolicy::kWriteThrough;
  /// Verify store payload checksums on load (forwarded to the store).
  bool persist_verify_checksums = true;
  /// Precomputed GraphFingerprint of *this engine's* graph; 0 = compute
  /// at construction when a store is attached. EngineRouter sets it so a
  /// shard fleet over one shared graph hashes the edge arrays once, not
  /// once per shard. Trusted in release builds — passing another graph's
  /// fingerprint would defeat the store's cross-graph replay gate —
  /// so debug builds verify it against the graph.
  uint64_t precomputed_graph_fingerprint = 0;
};

/// \brief One-per-graph ranking engine with cached transitions, warm
/// starts, and pluggable solvers.
class D2prEngine {
 public:
  /// Takes ownership of `graph`.
  explicit D2prEngine(CsrGraph graph, const EngineOptions& options = {});

  /// Shares ownership of an already-managed graph.
  explicit D2prEngine(std::shared_ptr<const CsrGraph> graph,
                      const EngineOptions& options = {});

  /// Borrows `graph` without copying it. The caller must keep `graph`
  /// alive for the engine's lifetime — the pattern the legacy free
  /// functions use for their call-scoped engines.
  static D2prEngine Borrowing(const CsrGraph& graph,
                              const EngineOptions& options = {});

  const CsrGraph& graph() const { return *graph_; }
  /// The shared handle to the graph, for standing up further engines (or
  /// an EngineRouter shard fleet, as tools/d2pr_rank does) over this
  /// engine's graph without copying it. For a borrowing engine the handle
  /// carries a no-op deleter: it is only valid while the borrowed graph
  /// lives.
  std::shared_ptr<const CsrGraph> graph_ptr() const { return graph_; }
  const EngineOptions& options() const { return options_; }

  /// Cumulative counters since construction or the last ResetStats().
  /// Individual counters read atomically; copy for a consistent snapshot.
  const EngineStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EngineStats{}; }

  /// Flushes unspilled transitions under PersistPolicy::kLazy (spill
  /// failures are logged, never fatal — the store is an optimization).
  ~D2prEngine();

  /// Drops cached transitions and warm-start solutions (counters are
  /// kept; pair with ResetStats() for a full reset). Under
  /// PersistPolicy::kLazy, dropped matrices not yet spilled are lost.
  void ClearCaches();

  /// True when a persistent transition store is attached (cache_dir set
  /// and persist_mode != kOff).
  bool persistent_store_enabled() const { return resolver_.store_enabled(); }

  /// The graph's store fingerprint; 0 when no store is attached.
  uint64_t graph_fingerprint() const { return resolver_.graph_fingerprint(); }

  /// \brief Spills every currently cached transition to the store
  /// (skipping keys already persisted).
  ///
  /// The explicit flush for PersistPolicy::kLazy; harmless (idempotent)
  /// under write-through. FailedPrecondition when no writable store is
  /// attached; otherwise the first spill error, or OK.
  Status PersistCachedTransitions();

  /// \brief Executes one ranking query.
  ///
  /// Returns InvalidArgument for parameter errors (propagated from the
  /// transition builder and solvers: beta outside [0, 1], alpha outside
  /// [0, 1), bad seeds, ...).
  Result<RankResponse> Rank(const RankRequest& request);

  /// \brief Executes queries in order, failing fast on the first error.
  ///
  /// Requests within a batch see each other's cache and warm-start
  /// effects, in order; a batch is deterministic and equivalent to the
  /// same sequence of Rank() calls.
  Result<std::vector<RankResponse>> RankBatch(
      std::span<const RankRequest> requests);

  /// \brief Drops the stored trajectory under `tag` (no-op when absent).
  ///
  /// Sweeps call this before their first point so a re-run does not
  /// warm-start p = -4 from the far end (p = +4) of the previous run.
  void ForgetWarmStart(const std::string& tag);

  /// \brief The resolved transition-cache key `request` maps to: beta
  /// folded to 0 on unweighted graphs, kAuto metric resolved.
  ///
  /// Exposed so ServingRuntime can replay the sequential LRU trace of a
  /// batch (deterministic cache-hit diagnostics) without executing it.
  TransitionKey ResolveKey(const RankRequest& request) const;

  /// \brief Snapshot of resident transition keys, most recently used
  /// first (see TransitionCache::Keys).
  std::vector<TransitionKey> CachedTransitionKeys() const {
    return resolver_.CachedKeys();
  }

  /// Raw transition-cache lookup counters (the cache's own accounting;
  /// unlike EngineStats these count every Lookup, including re-checks
  /// while waiting on a single-flight build).
  int64_t transition_cache_lookup_hits() const {
    return resolver_.cache_lookup_hits();
  }
  int64_t transition_cache_lookup_misses() const {
    return resolver_.cache_lookup_misses();
  }

  /// DegreeBoundIndex builds performed for top-k queries (the resolver's
  /// accounting; cached indexes make this grow once per transition key,
  /// not once per query).
  int64_t degree_bound_builds() const { return resolver_.bound_builds(); }

 private:
  /// The last two solutions of one warm-start trajectory, newest first.
  struct WarmSnapshot {
    double p = 0.0;
    double beta = 0.0;
    double alpha = 0.0;
    DegreeMetric metric = DegreeMetric::kOutDegree;
    DanglingPolicy dangling = DanglingPolicy::kTeleport;
    std::vector<NodeId> seeds;
    std::vector<double> scores;
  };
  struct WarmEntry {
    std::string tag;
    std::vector<WarmSnapshot> snapshots;  // size <= 2, newest first
  };

  /// Returns the transition for `key` via the shared TransitionResolver
  /// (cache, else persistent store, else build — single-flighted), and
  /// folds the resolve outcome into this engine's EngineStats counters.
  Result<std::shared_ptr<const TransitionMatrix>> GetTransition(
      const TransitionKey& key, bool* cache_hit, bool* store_hit);

  /// Returns the starting iterate for a power solve under `request`, or an
  /// empty vector when no compatible warm start exists. When two
  /// compatible snapshots differ in exactly one of (p, beta, alpha), the
  /// start is linearly extrapolated along that coordinate toward the
  /// requested value, which typically saves further iterations over
  /// restarting from the most recent solution alone.
  std::vector<double> WarmStartFor(const RankRequest& request,
                                   const TransitionKey& key);

  /// Records `scores` as the newest snapshot under the request's tag.
  void StoreWarmStart(const RankRequest& request, const TransitionKey& key,
                      const std::vector<double>& scores);

  /// Finds the trajectory stored under `tag`, refreshing its LRU recency;
  /// warm_entries_.end() when absent. Caller must hold warm_mu_.
  std::list<WarmEntry>::iterator FindWarmEntry(const std::string& tag);

  /// The uniform teleport vector, built on first use (immutable after).
  std::span<const double> UniformTeleportVector();

  std::shared_ptr<const CsrGraph> graph_;
  EngineOptions options_;
  /// Cache + persistent store + single-flight build resolution, shared
  /// logic with EngineRouter's partitioned-subgraph mode.
  TransitionResolver resolver_;

  std::mutex warm_mu_;                 ///< Guards warm_entries_.
  std::list<WarmEntry> warm_entries_;  // front = most recently used

  std::once_flag uniform_teleport_once_;
  std::vector<double> uniform_teleport_;

  EngineStats stats_;
};

/// \brief Translates the legacy one-shot options into a RankRequest
/// (uniform teleport, power iteration, no warm start).
RankRequest ToRankRequest(const D2prOptions& options);

/// \brief Converts an engine response into the legacy solver result type,
/// dropping the engine-only diagnostics.
PagerankResult ToPagerankResult(RankResponse response);

}  // namespace d2pr

#endif  // D2PR_API_ENGINE_H_
