#include "common/rng.h"

#include <cmath>

namespace d2pr {

double Rng::Gamma(double shape, double scale) {
  D2PR_CHECK_GT(shape, 0.0);
  D2PR_CHECK_GT(scale, 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
    double u;
    do {
      u = Uniform();
    } while (u == 0.0);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

int64_t Rng::Poisson(double mean) {
  D2PR_CHECK_GE(mean, 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    int64_t count = -1;
    double product = 1.0;
    do {
      ++count;
      product *= Uniform();
    } while (product > limit);
    return count;
  }
  // Normal approximation with continuity correction; adequate for the
  // synthetic-workload sizes used here (mean >= 30).
  double draw = Normal(mean, std::sqrt(mean));
  if (draw < 0.0) return 0;
  return static_cast<int64_t>(draw + 0.5);
}

}  // namespace d2pr
