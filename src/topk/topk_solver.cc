#include "topk/topk_solver.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>

#include "common/string_util.h"
#include "core/push_ppr.h"

namespace d2pr {

Result<TopKResult> SolveTopK(const CsrGraph& graph,
                             const TransitionMatrix& transition,
                             const DegreeBoundIndex& bounds,
                             std::span<const double> seed,
                             const TopKOptions& options) {
  const NodeId n = graph.num_nodes();
  if (options.k < 1) {
    return Status::InvalidArgument(
        StrCat("top-k k must be >= 1, got ", options.k));
  }
  if (bounds.num_nodes() != n) {
    return Status::InvalidArgument(
        StrCat("DegreeBoundIndex built for ", bounds.num_nodes(),
               " nodes, graph has ", n));
  }
  if (seed.size() != static_cast<size_t>(n)) {
    return Status::InvalidArgument(
        StrCat("seed size ", seed.size(), " != num nodes ", n));
  }
  if (!(options.alpha >= 0.0) || options.alpha >= 1.0) {
    return Status::InvalidArgument(
        StrCat("alpha must lie in [0, 1), got ", options.alpha));
  }
  if (!(options.epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  double seed_sum = 0.0;
  for (double s : seed) {
    if (s < 0.0) return Status::InvalidArgument("seed entries must be >= 0");
    seed_sum += s;
  }
  if (n > 0 && std::abs(seed_sum - 1.0) > 1e-9) {
    return Status::InvalidArgument(
        StrCat("seed must sum to 1, got ", seed_sum));
  }

  TopKResult result;
  if (n == 0) {
    result.certified = true;
    result.completed = true;
    return result;
  }

  const double alpha = options.alpha;
  const double floor = options.epsilon;
  const int64_t cap =
      options.max_pushes > 0 ? options.max_pushes : DefaultPushCap(n);
  // Certification schedule. A fixed interval tuned for the drain regime
  // starves loose-epsilon queries (the whole solve can finish between two
  // checks), so the default doubles geometrically: O(log pushes) rounds,
  // with an early-exit opportunity at every scale.
  const bool geometric_certify = options.certify_interval <= 0;
  int64_t interval = geometric_certify ? 256 : options.certify_interval;
  const size_t want =
      std::min(static_cast<size_t>(options.k), static_cast<size_t>(n));
  // Seed re-injection only matters when the graph can route mass through
  // a dangling node at all.
  const bool reinject = options.reinject_dangling && bounds.has_dangling();

  std::vector<double> scores(static_cast<size_t>(n), 0.0);
  std::vector<double> residual(seed.begin(), seed.end());

  // Touched set: nodes that ever held score or residual mass. Bounds for
  // everything else reduce to alpha * R * ub_in and are read through the
  // index's sorted order, so certification never scans cold nodes.
  std::vector<uint8_t> touched_bit(static_cast<size_t>(n), 0);
  std::vector<NodeId> touched;
  auto touch = [&](NodeId v) {
    if (!touched_bit[static_cast<size_t>(v)]) {
      touched_bit[static_cast<size_t>(v)] = 1;
      touched.push_back(v);
    }
  };

  // FIFO frontier with floor-gated admission — the same generation
  // discipline as core/push_ppr.cc. A node re-entering the frontier goes
  // to the BACK, so by the time it is processed again an entire
  // generation of neighbors has paid into its residual and one push moves
  // all of it. (A max-heap "largest residual first" frontier was measured
  // at ~12x the pushes on hub-heavy graphs: the hub re-crosses the floor
  // after a handful of spoke payments and is immediately re-pushed with a
  // sliver of the mass a batched push would have moved.)
  std::deque<NodeId> frontier;
  std::vector<uint8_t> in_frontier(static_cast<size_t>(n), 0);
  auto enqueue = [&](NodeId v) {
    if (!in_frontier[static_cast<size_t>(v)]) {
      in_frontier[static_cast<size_t>(v)] = 1;
      frontier.push_back(v);
    }
  };
  std::vector<NodeId> seed_support;
  for (NodeId v = 0; v < n; ++v) {
    const double s = seed[static_cast<size_t>(v)];
    if (s > 0.0) {
      seed_support.push_back(v);
      touch(v);
      if (s > floor) enqueue(v);
    }
  }

  // --- certification ---
  // Bounds from the push invariant, with R recomputed exactly from the
  // live residuals each round so incremental float drift never loosens a
  // certificate.
  std::vector<uint8_t> in_candidate(static_cast<size_t>(n), 0);
  std::vector<NodeId> candidates;
  std::vector<NodeId> scratch;
  auto certify = [&]() -> bool {
    ++result.certification_rounds;
    double mass = 0.0;
    for (NodeId t : touched) mass += residual[static_cast<size_t>(t)];
    result.residual_mass = mass;

    auto eff_bound = [&](NodeId t) {
      double bound = bounds.MaxInProb(t);
      // Under re-injection a dangling node's transition column IS the
      // seed distribution, so seed(t) is a legal single-step
      // in-probability into t and must widen the bound.
      if (reinject) bound = std::max(bound, seed[static_cast<size_t>(t)]);
      return bound;
    };
    auto upper = [&](NodeId t) {
      return scores[static_cast<size_t>(t)] +
             (1.0 - alpha) * residual[static_cast<size_t>(t)] +
             alpha * mass * eff_bound(t);
    };

    // Candidates: the `want` best lower bounds among touched nodes,
    // padded (deterministically, by descending bound) from untouched
    // nodes when fewer than `want` were ever reached.
    scratch = touched;
    const auto by_score = [&](NodeId a, NodeId b) {
      const double sa = scores[static_cast<size_t>(a)];
      const double sb = scores[static_cast<size_t>(b)];
      if (sa != sb) return sa > sb;
      return a < b;
    };
    if (scratch.size() > want) {
      std::partial_sort(scratch.begin(),
                        scratch.begin() + static_cast<ptrdiff_t>(want),
                        scratch.end(), by_score);
      scratch.resize(want);
    } else {
      std::sort(scratch.begin(), scratch.end(), by_score);
    }
    candidates = scratch;
    if (candidates.size() < want) {
      for (NodeId t : bounds.ByBoundDescending()) {
        if (touched_bit[static_cast<size_t>(t)]) continue;
        candidates.push_back(t);
        if (candidates.size() == want) break;
      }
    }
    for (NodeId c : candidates) in_candidate[static_cast<size_t>(c)] = 1;

    double excluded_ub = 0.0;
    for (NodeId t : touched) {
      if (in_candidate[static_cast<size_t>(t)]) continue;
      excluded_ub = std::max(excluded_ub, upper(t));
    }
    for (NodeId t : bounds.ByBoundDescending()) {
      if (in_candidate[static_cast<size_t>(t)] ||
          touched_bit[static_cast<size_t>(t)]) {
        continue;
      }
      // Sorted descending by ub_in, so the first untouched non-candidate
      // dominates every other never-touched node (all have zero score,
      // zero residual, and zero seed mass).
      excluded_ub = std::max(excluded_ub, alpha * mass * bounds.MaxInProb(t));
      break;
    }

    result.entries.clear();
    result.entries.reserve(candidates.size());
    for (NodeId c : candidates) {
      TopKEntry entry;
      entry.node = c;
      entry.lower_bound = scores[static_cast<size_t>(c)];
      entry.upper_bound = upper(c);
      entry.certified =
          entry.lower_bound + options.tie_tolerance >= excluded_ub;
      result.entries.push_back(entry);
    }
    std::sort(result.entries.begin(), result.entries.end(),
              [](const TopKEntry& a, const TopKEntry& b) {
                if (a.lower_bound != b.lower_bound) {
                  return a.lower_bound > b.lower_bound;
                }
                return a.node < b.node;
              });
    result.uncertainty_gap =
        std::max(0.0, excluded_ub - result.entries.back().lower_bound);
    result.certified = std::all_of(
        result.entries.begin(), result.entries.end(),
        [](const TopKEntry& entry) { return entry.certified; });
    for (NodeId c : candidates) in_candidate[static_cast<size_t>(c)] = 0;
    return result.certified;
  };

  // --- bounded push ---
  const auto targets = graph.targets();
  const auto probs = transition.probs();
  auto spread = [&](NodeId v, double amount) {
    double& rv = residual[static_cast<size_t>(v)];
    rv += amount;
    touch(v);
    if (rv > floor) enqueue(v);
  };

  int64_t since_certify = 0;
  for (;;) {
    NodeId u = -1;
    while (!frontier.empty()) {
      const NodeId candidate = frontier.front();
      frontier.pop_front();
      in_frontier[static_cast<size_t>(candidate)] = 0;
      if (residual[static_cast<size_t>(candidate)] > floor) {
        u = candidate;
        break;
      }
    }
    if (u < 0) {
      // Frontier drained: every residual is at the floor. Certification
      // may still fail (the caller's epsilon was too loose for this
      // query); the verdict and gap report exactly that.
      result.completed = true;
      certify();
      break;
    }
    if (result.pushes >= cap) {
      result.completed = false;
      certify();
      break;
    }

    double& ru = residual[static_cast<size_t>(u)];
    const double push_mass = ru;
    ru = 0.0;
    ++result.pushes;
    scores[static_cast<size_t>(u)] += (1.0 - alpha) * push_mass;

    if (transition.IsDangling(u)) {
      if (options.reinject_dangling) {
        for (NodeId v : seed_support) {
          spread(v, alpha * push_mass * seed[static_cast<size_t>(v)]);
        }
      }
    } else {
      const EdgeIndex begin = graph.ArcBegin(u);
      const EdgeIndex end = begin + graph.OutDegree(u);
      for (EdgeIndex e = begin; e < end; ++e) {
        spread(targets[static_cast<size_t>(e)],
               alpha * push_mass * probs[static_cast<size_t>(e)]);
      }
    }

    if (++since_certify >= interval) {
      since_certify = 0;
      if (geometric_certify) interval *= 2;
      if (certify()) {
        result.completed = true;
        break;
      }
    }
  }
  return result;
}

}  // namespace d2pr
