// Shard-local transition slices: the per-arc probabilities each
// partition shard streams during a block sweep, materialized contiguously
// in the shard's in-CSR order (graph/partition.h declares the
// TransitionSlices container; this header owns its construction).
//
// Why slices exist: the original block sweep read
// `probs[shard.in_arc_index[idx]]` — a gather through the O(|E|) global
// arc index whose random stride defeats the hardware prefetcher once the
// arc arrays leave L2 (~65% overhead at 100k nodes,
// results/partition_bench.md). A slice turns that gather into a
// sequential read, restoring streaming (and SIMD-friendly) inner loops.
//
// Two construction paths, bitwise identical by construction:
//
//   * BuildTransitionSlices — permute a resolved whole-graph
//     TransitionMatrix through the partition's arc index. One copy, no
//     arithmetic: in_probs[s][idx] = probs[in_arc_index[idx]].
//   * BuildTransitionSlicesLocal — the distributed path: no whole-graph
//     TransitionMatrix is ever materialized (a test pins this via
//     TransitionMatrix::BuildCount()). Each shard computes, from its own
//     rows, the O(|V|) per-source normalization state of the de-coupled
//     softmax (max exponent, row sum, uniform-fallback flag, out-strength
//     for the beta blend); that state plus the O(|V|) log-metric vector is
//     what a deployment would broadcast. Every shard then fills its slice
//     by recomputing each in-arc's probability from the broadcast state —
//     through the same out-of-line arc kernel TransitionMatrix::Build
//     uses (DecoupledArcExponent / DecoupledArcNumerator /
//     BlendedArcProb), so every float matches the matrix path bit for
//     bit. Per transition key, a shard holds only its slice plus O(|V|)
//     vectors; the only O(|E|)-shaped inputs are static graph structure
//     (the in-CSR itself and, for weighted beta blends, the arc weights
//     that ride with it), never transition state.
//
// Both paths also carry the dangling view (ascending list + bitmap) so
// the sliced block solvers never need a TransitionMatrix at all.

#ifndef D2PR_CORE_TRANSITION_SLICES_H_
#define D2PR_CORE_TRANSITION_SLICES_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "core/transition.h"
#include "graph/csr_graph.h"
#include "graph/partition.h"
#include "graph/shard_cut.h"

namespace d2pr {

/// \brief How a serving layer constructs its per-shard slices.
enum class SliceBuild {
  /// Resolve (or load) the whole-graph TransitionMatrix, then slice it.
  /// The matrix stays cacheable and persistable (api/TransitionResolver),
  /// so this is the single-machine serving default.
  kFromMatrix,
  /// Build slices shard-locally from the shard rows plus broadcast O(|V|)
  /// metric state; no whole-graph matrix exists. The distributed mode —
  /// it bypasses the persistent store (there is no matrix to spill).
  kSubgraph,
};

/// \brief Human-readable slice-build name ("matrix", "subgraph").
const char* SliceBuildName(SliceBuild build);

/// \brief Slices `transition` through `partition`'s in-CSR arc index.
/// InvalidArgument when the node counts disagree.
Result<TransitionSlices> BuildTransitionSlices(
    const GraphPartition& partition, const TransitionMatrix& transition);

/// \brief Builds the slices shard-locally under `config`, never
/// materializing a whole-graph TransitionMatrix. Rejects exactly the
/// configs TransitionMatrix::Build rejects (shared validation), plus a
/// partition/graph node-count mismatch. The result is bitwise identical
/// to BuildTransitionSlices over TransitionMatrix::Build(graph, config).
Result<TransitionSlices> BuildTransitionSlicesLocal(
    const CsrGraph& graph, const GraphPartition& partition,
    const TransitionConfig& config);

/// \brief Builds ONE shard's probability slice from a loaded cut file and
/// the broadcast global metric vector — no CsrGraph, no GraphPartition,
/// no whole-graph anything (the --shard-file worker's only build path).
///
/// `metric_values` is the full O(|V|) per-node metric vector
/// (MetricValues on the coordinator side, shipped in the solve-begin
/// frame); it must hold exactly cut.meta.num_nodes values. The returned
/// vector is aligned with cut.shard.in_sources — bitwise identical to
/// BuildTransitionSlicesLocal's in_probs[shard] for the same graph,
/// scheme, and config, because owned rows fold in the same arc order the
/// whole-graph pass uses and boundary rows fold over the cut's ghost
/// rows, which are those sources' rows verbatim.
///
/// Rejects exactly what the whole-graph builders reject (shared
/// validation against cut.meta.weighted) plus a wrong-sized metric
/// vector.
Result<std::vector<double>> BuildShardSliceFromCut(
    const ShardCut& cut, std::span<const double> metric_values,
    const TransitionConfig& config);

}  // namespace d2pr

#endif  // D2PR_CORE_TRANSITION_SLICES_H_
