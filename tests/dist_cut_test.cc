// The pre-cut fleet end to end, in process: workers loaded from cut
// files (ShardWorker::CreateFromCutFile) driven by a
// DistributedCoordinator must solve bitwise identically to the
// whole-graph reference — while NEVER building a whole CsrGraph or a
// TransitionMatrix (pinned by build counters), holding ~1/N of the
// graph bytes per worker, and getting the O(|V|) metric vector from the
// coordinator's solve-begin broadcast exactly once.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/block_solver.h"
#include "core/teleport.h"
#include "core/transition.h"
#include "core/transition_slices.h"
#include "dist/coordinator.h"
#include "dist_test_util.h"
#include "graph/graph_builder.h"
#include "graph/shard_cut.h"

namespace d2pr {
namespace {

constexpr double kGsTolerance = 1e-9;

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/d2pr_distcut_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// A fleet whose every worker was loaded from a cut file written to
/// `dir` — no worker ever sees the graph.
DistFleet MakeCutFleet(const CsrGraph& graph, const std::string& dir,
                       size_t num_shards, PartitionScheme scheme,
                       const TransitionConfig& config = {}) {
  auto partition = GraphPartition::Build(
      graph,
      {.scheme = scheme, .num_shards = num_shards, .build_out_csr = true});
  D2PR_CHECK(partition.ok()) << partition.status().ToString();
  DistFleet fleet;
  for (size_t s = 0; s < num_shards; ++s) {
    const std::string path =
        dir + "/" + ShardCutFileName(GraphFingerprint(graph), scheme,
                                     num_shards, s);
    const Status saved = SaveShardCut(graph, *partition, s, path);
    D2PR_CHECK(saved.ok()) << saved.ToString();
    auto worker = ShardWorker::CreateFromCutFile(path, config);
    D2PR_CHECK(worker.ok()) << worker.status().ToString();
    fleet.workers.push_back(std::move(*worker));
    fleet.channels.push_back(
        std::make_unique<InProcessShardChannel>(*fleet.workers.back()));
    fleet.raw.push_back(fleet.channels.back().get());
  }
  return fleet;
}

/// Coordinator options for a cut fleet: the metric vector is mandatory —
/// the workers hold no whole-graph structure to derive it from.
CoordinatorOptions MakeCutCoordinatorOptions(
    const CsrGraph& graph, PartitionScheme scheme,
    const TransitionConfig& config = {}) {
  CoordinatorOptions options = MakeCoordinatorOptions(graph, scheme, config);
  options.metric_values = MetricValues(graph, options.key.metric);
  return options;
}

Result<PagerankResult> ReferenceSolve(const CsrGraph& graph,
                                      PartitionScheme scheme,
                                      size_t num_shards, SolverMethod method,
                                      const TransitionConfig& config,
                                      const std::vector<double>& teleport,
                                      const PagerankOptions& options) {
  auto partition = GraphPartition::Build(
      graph, {.scheme = scheme, .num_shards = num_shards,
              .build_out_csr = false});
  if (!partition.ok()) return partition.status();
  auto slices = BuildTransitionSlicesLocal(graph, *partition, config);
  if (!slices.ok()) return slices.status();
  return method == SolverMethod::kPower
             ? SolvePagerankPartitioned(*slices, *partition, teleport,
                                        options)
             : SolveGaussSeidelPartitioned(*slices, *partition, teleport,
                                           options);
}

TEST(DistCutTest, PowerBitwiseFromCutFilesAcrossSchemesAndShardCounts) {
  Rng rng(91);
  auto graph = BarabasiAlbert(260, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<double> teleport = UniformTeleport(graph->num_nodes());
  const std::string dir = FreshDir("parity");

  PagerankOptions options;
  options.alpha = 0.85;
  options.tolerance = 1e-11;
  options.max_iterations = 2000;

  for (PartitionScheme scheme :
       {PartitionScheme::kRange, PartitionScheme::kHash}) {
    for (size_t shards : {1, 2, 4, 8}) {
      SCOPED_TRACE(std::string(PartitionSchemeName(scheme)) + " x " +
                   std::to_string(shards) + " shards");
      DistFleet fleet = MakeCutFleet(*graph, dir, shards, scheme);
      DistributedCoordinator coordinator(
          fleet.raw, MakeCutCoordinatorOptions(*graph, scheme));
      ASSERT_TRUE(coordinator.Handshake().ok());
      auto distributed =
          coordinator.Solve(SolverMethod::kPower, teleport, options);
      ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();
      ASSERT_TRUE(distributed->converged);

      auto reference = ReferenceSolve(*graph, scheme, shards,
                                      SolverMethod::kPower, {}, teleport,
                                      options);
      ASSERT_TRUE(reference.ok());
      EXPECT_EQ(distributed->scores, reference->scores);
      EXPECT_EQ(distributed->iterations, reference->iterations);
      EXPECT_EQ(distributed->residual, reference->residual);
    }
  }
}

TEST(DistCutTest, GaussSeidelFromCutFilesWithinTolerance) {
  Rng rng(92);
  auto graph = BarabasiAlbert(220, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<double> teleport = UniformTeleport(graph->num_nodes());
  const std::string dir = FreshDir("gs");

  PagerankOptions options;
  options.alpha = 0.85;
  options.tolerance = 1e-11;
  options.max_iterations = 2000;

  for (PartitionScheme scheme :
       {PartitionScheme::kRange, PartitionScheme::kHash}) {
    for (size_t shards : {2, 4}) {
      SCOPED_TRACE(std::string(PartitionSchemeName(scheme)) + " x " +
                   std::to_string(shards) + " shards");
      DistFleet fleet = MakeCutFleet(*graph, dir, shards, scheme);
      DistributedCoordinator coordinator(
          fleet.raw, MakeCutCoordinatorOptions(*graph, scheme));
      ASSERT_TRUE(coordinator.Handshake().ok());
      auto distributed =
          coordinator.Solve(SolverMethod::kGaussSeidel, teleport, options);
      ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();

      auto reference = ReferenceSolve(*graph, scheme, shards,
                                      SolverMethod::kGaussSeidel, {},
                                      teleport, options);
      ASSERT_TRUE(reference.ok());
      ASSERT_EQ(distributed->scores.size(), reference->scores.size());
      double max_diff = 0.0;
      for (size_t i = 0; i < distributed->scores.size(); ++i) {
        max_diff = std::max(max_diff, std::abs(distributed->scores[i] -
                                               reference->scores[i]));
      }
      EXPECT_LE(max_diff, kGsTolerance);
      EXPECT_EQ(distributed->iterations, reference->iterations);
    }
  }
}

TEST(DistCutTest, WeightedCutFleetMatchesReferenceBitwise) {
  // A weighted graph exercises the cut's three weight families and the
  // out-strength metric broadcast.
  auto graph = DistFuzzGraph(5);  // bipartite projection, weighted
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->weighted());
  const std::vector<double> teleport = UniformTeleport(graph->num_nodes());
  const std::string dir = FreshDir("weighted");
  const TransitionConfig config{.p = 0.5, .beta = 0.5};

  PagerankOptions options;
  options.alpha = 0.85;
  options.tolerance = 1e-11;
  options.max_iterations = 2000;

  DistFleet fleet =
      MakeCutFleet(*graph, dir, 4, PartitionScheme::kHash, config);
  DistributedCoordinator coordinator(
      fleet.raw,
      MakeCutCoordinatorOptions(*graph, PartitionScheme::kHash, config));
  ASSERT_TRUE(coordinator.Handshake().ok());
  auto distributed =
      coordinator.Solve(SolverMethod::kPower, teleport, options);
  ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();

  auto reference = ReferenceSolve(*graph, PartitionScheme::kHash, 4,
                                  SolverMethod::kPower, config, teleport,
                                  options);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(distributed->scores, reference->scores);
  EXPECT_EQ(distributed->iterations, reference->iterations);
}

TEST(DistCutTest, CutWorkersNeverBuildAWholeGraphOrTransitionMatrix) {
  Rng rng(93);
  auto graph = BarabasiAlbert(200, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<double> teleport = UniformTeleport(graph->num_nodes());
  const std::string dir = FreshDir("nobuild");

  // Cuts are written (and the reference partition built) BEFORE the
  // counters are sampled: only the workers' own behavior is measured.
  auto partition = GraphPartition::Build(
      *graph, {.scheme = PartitionScheme::kRange, .num_shards = 4,
               .build_out_csr = true});
  ASSERT_TRUE(partition.ok());
  std::vector<std::string> paths;
  for (size_t s = 0; s < 4; ++s) {
    paths.push_back(dir + "/" +
                    ShardCutFileName(GraphFingerprint(*graph),
                                     PartitionScheme::kRange, 4, s));
    ASSERT_TRUE(SaveShardCut(*graph, *partition, s, paths.back()).ok());
  }
  CoordinatorOptions coordinator_options =
      MakeCutCoordinatorOptions(*graph, PartitionScheme::kRange);

  const uint64_t graphs_before = GraphBuilder::BuildCount();
  const uint64_t matrices_before = TransitionMatrix::BuildCount();

  DistFleet fleet;
  for (const std::string& path : paths) {
    auto worker = ShardWorker::CreateFromCutFile(path, {});
    ASSERT_TRUE(worker.ok()) << worker.status().ToString();
    fleet.workers.push_back(std::move(*worker));
    fleet.channels.push_back(
        std::make_unique<InProcessShardChannel>(*fleet.workers.back()));
    fleet.raw.push_back(fleet.channels.back().get());
  }
  DistributedCoordinator coordinator(fleet.raw, coordinator_options);
  ASSERT_TRUE(coordinator.Handshake().ok());
  PagerankOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 500;
  auto result = coordinator.Solve(SolverMethod::kPower, teleport, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->converged);

  EXPECT_EQ(GraphBuilder::BuildCount(), graphs_before)
      << "a cut-loaded worker constructed a whole CsrGraph";
  EXPECT_EQ(TransitionMatrix::BuildCount(), matrices_before)
      << "a cut-loaded worker materialized a TransitionMatrix";
}

TEST(DistCutTest, ResidentGraphBytesShrinkRoughlyOneOverN) {
  Rng rng(94);
  auto graph = BarabasiAlbert(2000, 8, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<double> teleport = UniformTeleport(graph->num_nodes());
  const std::string dir = FreshDir("resident");
  PagerankOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 500;

  // One whole-graph worker is the baseline every cut worker must beat.
  ShardWorkerOptions whole_options;
  whole_options.shard_id = 0;
  whole_options.num_shards = 1;
  auto whole = ShardWorker::Create(*graph, whole_options);
  ASSERT_TRUE(whole.ok());
  const int64_t whole_resident = (*whole)->resident_graph_bytes();
  ASSERT_GT(whole_resident, 0);

  int64_t max_resident_4 = 0;
  for (size_t shards : {4, 8}) {
    SCOPED_TRACE(std::to_string(shards) + " shards");
    DistFleet fleet =
        MakeCutFleet(*graph, dir, shards, PartitionScheme::kHash);
    DistributedCoordinator coordinator(
        fleet.raw, MakeCutCoordinatorOptions(*graph, PartitionScheme::kHash));
    ASSERT_TRUE(coordinator.Handshake().ok());
    // The first solve builds the slices, after which the ghost rows and
    // weights of the cut are dropped — the steady-state footprint the
    // ~1/N claim is about.
    ASSERT_TRUE(
        coordinator.Solve(SolverMethod::kPower, teleport, options).ok());
    int64_t max_resident = 0;
    for (const auto& worker : fleet.workers) {
      max_resident = std::max(max_resident, worker->resident_graph_bytes());
    }
    // Hash partitioning balances hubs, but not perfectly: assert a
    // generous 2.5/N — the point is the scaling, every worker far below
    // the whole graph and shrinking again from 4-way to 8-way.
    EXPECT_LT(max_resident, whole_resident * 5 / (2 * int64_t{shards}));
    if (shards == 4) max_resident_4 = max_resident;
    if (shards == 8) EXPECT_LT(max_resident, max_resident_4);
  }
}

TEST(DistCutTest, HandshakeFailsLoudWithoutTheMetricVector) {
  Rng rng(95);
  auto graph = BarabasiAlbert(150, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::string dir = FreshDir("nometric");
  DistFleet fleet = MakeCutFleet(*graph, dir, 2, PartitionScheme::kRange);

  // Missing entirely.
  {
    CoordinatorOptions options =
        MakeCoordinatorOptions(*graph, PartitionScheme::kRange);
    DistributedCoordinator coordinator(fleet.raw, options);
    const Status handshake = coordinator.Handshake();
    ASSERT_FALSE(handshake.ok());
    EXPECT_EQ(handshake.code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(handshake.message().find("metric"), std::string::npos);
  }
  // Wrong size.
  {
    CoordinatorOptions options =
        MakeCoordinatorOptions(*graph, PartitionScheme::kRange);
    options.metric_values.assign(
        static_cast<size_t>(graph->num_nodes()) - 1, 1.0);
    DistributedCoordinator coordinator(fleet.raw, options);
    const Status handshake = coordinator.Handshake();
    ASSERT_FALSE(handshake.ok());
    EXPECT_EQ(handshake.code(), StatusCode::kFailedPrecondition);
  }
}

TEST(DistCutTest, MetricVectorIsBroadcastExactlyOncePerShard) {
  Rng rng(96);
  auto graph = BarabasiAlbert(150, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<double> teleport = UniformTeleport(graph->num_nodes());
  const std::string dir = FreshDir("once");
  const size_t shards = 2;
  DistFleet fleet =
      MakeCutFleet(*graph, dir, shards, PartitionScheme::kRange);
  DistributedCoordinator coordinator(
      fleet.raw,
      MakeCutCoordinatorOptions(*graph, PartitionScheme::kRange));
  ASSERT_TRUE(coordinator.Handshake().ok());

  PagerankOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 500;
  ASSERT_TRUE(
      coordinator.Solve(SolverMethod::kPower, teleport, options).ok());
  const int64_t sent_after_first = coordinator.stats().metric_values_sent;
  EXPECT_EQ(sent_after_first,
            static_cast<int64_t>(graph->num_nodes()) *
                static_cast<int64_t>(shards));

  // The workers' slices are built now; the second solve ships nothing.
  ASSERT_TRUE(
      coordinator.Solve(SolverMethod::kPower, teleport, options).ok());
  EXPECT_EQ(coordinator.stats().metric_values_sent, sent_after_first);
}

TEST(DistCutTest, WholeGraphFleetNeverAsksForTheMetricVector) {
  Rng rng(97);
  auto graph = BarabasiAlbert(120, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<double> teleport = UniformTeleport(graph->num_nodes());
  DistFleet fleet = MakeFleet(*graph, 2, PartitionScheme::kRange);
  // Note: NO metric_values — a whole-graph fleet must not need them.
  DistributedCoordinator coordinator(
      fleet.raw, MakeCoordinatorOptions(*graph, PartitionScheme::kRange));
  ASSERT_TRUE(coordinator.Handshake().ok());
  PagerankOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 500;
  ASSERT_TRUE(
      coordinator.Solve(SolverMethod::kPower, teleport, options).ok());
  EXPECT_EQ(coordinator.stats().metric_values_sent, 0);
}

TEST(DistCutTest, FingerprintMismatchRejectsAtHandshake) {
  Rng rng(98);
  auto graph = BarabasiAlbert(120, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::string dir = FreshDir("wronggraph");
  DistFleet fleet = MakeCutFleet(*graph, dir, 2, PartitionScheme::kRange);
  CoordinatorOptions options =
      MakeCutCoordinatorOptions(*graph, PartitionScheme::kRange);
  options.graph_fingerprint ^= 0x1;
  DistributedCoordinator coordinator(fleet.raw, options);
  const Status handshake = coordinator.Handshake();
  ASSERT_FALSE(handshake.ok());
  EXPECT_EQ(handshake.code(), StatusCode::kFailedPrecondition);
}

TEST(DistCutTest, SchemeMismatchRejectsAtHandshake) {
  Rng rng(99);
  auto graph = BarabasiAlbert(120, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::string dir = FreshDir("wrongscheme");
  // Workers cut under hash; coordinator handshakes range.
  DistFleet fleet = MakeCutFleet(*graph, dir, 2, PartitionScheme::kHash);
  CoordinatorOptions options =
      MakeCutCoordinatorOptions(*graph, PartitionScheme::kRange);
  DistributedCoordinator coordinator(fleet.raw, options);
  const Status handshake = coordinator.Handshake();
  ASSERT_FALSE(handshake.ok());
  EXPECT_EQ(handshake.code(), StatusCode::kFailedPrecondition);
}

TEST(DistCutTest, CutFleetSurvivesTransportFaults) {
  // The fault policy must hold for cut-loaded workers exactly as for
  // whole-graph ones: dropped replies retry into the idempotent cache,
  // and the solve still matches the reference bitwise.
  Rng rng(100);
  auto graph = BarabasiAlbert(150, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<double> teleport = UniformTeleport(graph->num_nodes());
  const std::string dir = FreshDir("faults");
  DistFleet fleet = MakeCutFleet(*graph, dir, 2, PartitionScheme::kRange);

  FaultyChannel::Options faults;
  faults.drop_reply_every = 7;
  FaultyChannel flaky(*fleet.raw[0], faults);
  std::vector<ShardChannel*> channels = {&flaky, fleet.raw[1]};

  DistributedCoordinator coordinator(
      channels, MakeCutCoordinatorOptions(*graph, PartitionScheme::kRange));
  ASSERT_TRUE(coordinator.Handshake().ok());
  PagerankOptions options;
  options.tolerance = 1e-11;
  options.max_iterations = 2000;
  auto distributed =
      coordinator.Solve(SolverMethod::kPower, teleport, options);
  ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();
  EXPECT_GT(coordinator.stats().retries, 0);

  auto reference = ReferenceSolve(*graph, PartitionScheme::kRange, 2,
                                  SolverMethod::kPower, {}, teleport,
                                  options);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(distributed->scores, reference->scores);
}

}  // namespace
}  // namespace d2pr
