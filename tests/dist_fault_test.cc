// Fault-injection chaos for the distributed block solve: every injected
// transport fault — lost requests, lost replies, duplicated frames,
// truncated payloads, a shard dying mid-solve, a deadline that can never
// be met — must surface as a clean Status from Solve(). The coordinator
// never hangs (the in-process fleet has no real waits to hang on; the
// assertions are that every call RETURNS, with the right code) and never
// returns a partial vector (an error Result carries no scores at all).
// Recoverable faults (timeouts within the retry budget, duplicates) must
// not merely succeed: the result must stay bitwise identical to the
// in-process reference, proving the idempotent resend path replays — not
// re-executes — sweeps.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/block_solver.h"
#include "core/teleport.h"
#include "core/transition_slices.h"
#include "dist/coordinator.h"
#include "dist_test_util.h"
#include "graph/partition.h"

namespace d2pr {
namespace {

struct FaultFixture {
  Result<CsrGraph> graph = Status::Internal("unbuilt");
  std::vector<double> teleport;
  PagerankOptions options;
  PagerankResult reference;

  FaultFixture() {
    Rng rng(46);
    graph = BarabasiAlbert(220, 3, &rng);
    D2PR_CHECK(graph.ok());
    teleport = UniformTeleport(graph->num_nodes());
    options.alpha = 0.85;
    options.tolerance = 1e-11;
    options.max_iterations = 2000;

    auto partition = GraphPartition::Build(
        *graph, {.num_shards = 2, .build_out_csr = false});
    D2PR_CHECK(partition.ok());
    auto slices = BuildTransitionSlicesLocal(*graph, *partition, {});
    D2PR_CHECK(slices.ok());
    auto solved =
        SolvePagerankPartitioned(*slices, *partition, teleport, options);
    D2PR_CHECK(solved.ok());
    reference = std::move(solved).value();
  }
};

FaultFixture& Fixture() {
  static FaultFixture fixture;
  return fixture;
}

/// Wraps both shards of a fresh fleet in FaultyChannels with `faults`
/// and runs one power solve, returning the coordinator's result.
struct ChaosRun {
  DistFleet fleet;
  std::vector<std::unique_ptr<FaultyChannel>> faulty;
  std::unique_ptr<DistributedCoordinator> coordinator;
  Result<PagerankResult> result = Status::Internal("unrun");
};

ChaosRun RunWithFaults(const FaultyChannel::Options& faults,
                       int max_retries = 2) {
  FaultFixture& fixture = Fixture();
  ChaosRun run;
  run.fleet = MakeFleet(*fixture.graph, 2);
  std::vector<ShardChannel*> wrapped;
  for (ShardChannel* channel : run.fleet.raw) {
    run.faulty.push_back(std::make_unique<FaultyChannel>(*channel, faults));
    wrapped.push_back(run.faulty.back().get());
  }
  CoordinatorOptions options = MakeCoordinatorOptions(*fixture.graph);
  options.max_retries = max_retries;
  run.coordinator =
      std::make_unique<DistributedCoordinator>(wrapped, options);
  const Status handshake = run.coordinator->Handshake();
  if (!handshake.ok()) {
    run.result = handshake;
    return run;
  }
  run.result = run.coordinator->Solve(SolverMethod::kPower, fixture.teleport,
                                      fixture.options);
  return run;
}

TEST(DistFaultTest, LostRepliesAreRetriedAndStayBitwise) {
  FaultyChannel::Options faults;
  faults.drop_reply_every = 7;  // the request executed; the reply vanished
  ChaosRun run = RunWithFaults(faults);
  ASSERT_TRUE(run.result.ok()) << run.result.status().ToString();
  EXPECT_EQ(run.result->scores, Fixture().reference.scores);
  EXPECT_EQ(run.result->iterations, Fixture().reference.iterations);
  EXPECT_EQ(run.result->residual, Fixture().reference.residual);
  // The fault fired and the retry path (cached-reply resend) healed it.
  EXPECT_GT(run.faulty[0]->replies_dropped() +
                run.faulty[1]->replies_dropped(),
            0);
  EXPECT_GT(run.coordinator->stats().retries, 0);
}

TEST(DistFaultTest, LostRequestsAreRetriedAndStayBitwise) {
  FaultyChannel::Options faults;
  faults.drop_request_every = 9;  // the worker never saw these at all
  ChaosRun run = RunWithFaults(faults);
  ASSERT_TRUE(run.result.ok()) << run.result.status().ToString();
  EXPECT_EQ(run.result->scores, Fixture().reference.scores);
  EXPECT_GT(run.faulty[0]->requests_dropped() +
                run.faulty[1]->requests_dropped(),
            0);
}

TEST(DistFaultTest, DuplicatedFramesNeverDoubleAdvanceTheIterate) {
  FaultyChannel::Options faults;
  faults.duplicate = true;  // every frame delivered twice
  ChaosRun run = RunWithFaults(faults);
  ASSERT_TRUE(run.result.ok()) << run.result.status().ToString();
  EXPECT_EQ(run.result->scores, Fixture().reference.scores);
  EXPECT_EQ(run.result->iterations, Fixture().reference.iterations);
  EXPECT_GT(run.faulty[0]->duplicates_sent(), 0);
}

TEST(DistFaultTest, CombinedRecoverableChaosStaysBitwise) {
  FaultyChannel::Options faults;
  faults.drop_reply_every = 7;
  faults.drop_request_every = 11;
  faults.duplicate = true;
  ChaosRun run = RunWithFaults(faults, /*max_retries=*/4);
  ASSERT_TRUE(run.result.ok()) << run.result.status().ToString();
  EXPECT_EQ(run.result->scores, Fixture().reference.scores);
  EXPECT_EQ(run.result->iterations, Fixture().reference.iterations);
  EXPECT_EQ(run.result->residual, Fixture().reference.residual);
}

TEST(DistFaultTest, ExhaustedRetryBudgetIsDeadlineExceeded) {
  FaultyChannel::Options faults;
  faults.drop_request_every = 1;  // every call times out
  ChaosRun run = RunWithFaults(faults, /*max_retries=*/3);
  ASSERT_FALSE(run.result.ok());
  EXPECT_EQ(run.result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DistFaultTest, ShardDeathMidSolveIsUnavailable) {
  FaultyChannel::Options faults;
  faults.kill_after_sweeps = 3;  // a few sweeps in, the shard vanishes
  ChaosRun run = RunWithFaults(faults);
  ASSERT_FALSE(run.result.ok());
  EXPECT_EQ(run.result.status().code(), StatusCode::kUnavailable);
}

TEST(DistFaultTest, TruncatedRepliesFailTheSolveCleanly) {
  FaultyChannel::Options faults;
  faults.truncate_every = 5;  // mangled below the codec layer
  ChaosRun run = RunWithFaults(faults);
  ASSERT_FALSE(run.result.ok());
  EXPECT_EQ(run.result.status().code(), StatusCode::kUnavailable);
}

TEST(DistFaultTest, FleetRecoversAfterAFailedSolve) {
  // Solve 1 dies mid-flight behind faulty channels; a fresh coordinator
  // over the same workers (same sessions — re-claiming a shard you
  // already hold is legal) must then solve bitwise clean. A crashed
  // solve may never wedge the shard state.
  FaultFixture& fixture = Fixture();
  DistFleet fleet = MakeFleet(*fixture.graph, 2);

  FaultyChannel::Options faults;
  faults.kill_after_sweeps = 2;
  std::vector<std::unique_ptr<FaultyChannel>> faulty;
  std::vector<ShardChannel*> wrapped;
  for (ShardChannel* channel : fleet.raw) {
    faulty.push_back(std::make_unique<FaultyChannel>(*channel, faults));
    wrapped.push_back(faulty.back().get());
  }
  DistributedCoordinator broken(wrapped,
                                MakeCoordinatorOptions(*fixture.graph));
  ASSERT_TRUE(broken.Handshake().ok());
  auto failed = broken.Solve(SolverMethod::kPower, fixture.teleport,
                             fixture.options);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);

  DistributedCoordinator healthy(fleet.raw,
                                 MakeCoordinatorOptions(*fixture.graph));
  ASSERT_TRUE(healthy.Handshake().ok());
  auto recovered = healthy.Solve(SolverMethod::kPower, fixture.teleport,
                                 fixture.options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->scores, fixture.reference.scores);
  EXPECT_EQ(recovered->iterations, fixture.reference.iterations);
}

TEST(DistFaultTest, DeadShardAtHandshakeIsCleanToo) {
  FaultyChannel::Options faults;
  faults.kill_after_sweeps = 0;  // dead before the first sweep...
  ChaosRun run = RunWithFaults(faults);
  // ...which also kills the handshake round-trip: a clean error either
  // way, never a hang and never a partially handshaken "success".
  ASSERT_FALSE(run.result.ok());
  EXPECT_EQ(run.result.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace d2pr
