#include "serve/serving_runtime.h"

#include <algorithm>
#include <latch>
#include <list>
#include <mutex>
#include <utility>

namespace d2pr {

namespace {

ScoreCacheOptions ToScoreCacheOptions(const ServingOptions& options) {
  ScoreCacheOptions cache;
  cache.capacity = options.score_cache_capacity;
  cache.capacity_bytes = options.score_cache_capacity_bytes;
  cache.ttl = options.score_cache_ttl;
  cache.now = options.clock;
  return cache;
}

}  // namespace

ServingRuntime::ServingRuntime(std::shared_ptr<D2prEngine> engine,
                               const ServingOptions& options)
    : engine_(std::move(engine)),
      score_cache_(ToScoreCacheOptions(options)),
      pool_(options.num_threads) {}

ServingRuntime ServingRuntime::Borrowing(D2prEngine& engine,
                                         const ServingOptions& options) {
  return ServingRuntime(
      std::shared_ptr<D2prEngine>(&engine, [](D2prEngine*) {}), options);
}

Result<RankResponse> ServingRuntime::Rank(const RankRequest& request) {
  return Execute(request, std::nullopt);
}

Result<RankResponse> ServingRuntime::Execute(
    const RankRequest& request, std::optional<bool> expected_cache_hit) {
  // Warm-started requests depend on (and advance) per-tag trajectory
  // state, so their responses are not memoizable.
  const bool cacheable =
      score_cache_.enabled() && request.warm_start_tag.empty();
  std::string key;
  if (cacheable) {
    key = ScoreCache::KeyFor(request);
    auto from_memo =
        [&expected_cache_hit](RankResponse memo) -> RankResponse {
      if (expected_cache_hit) {
        memo.transition_cache_hit = *expected_cache_hit;
      }
      return memo;
    };
    // Single-flight: if an identical query is already solving, wait for
    // it and take the memo hit instead of duplicating the full solve.
    // The in-flight check comes BEFORE the memo probe so a waiter logs
    // one stats event (its post-wake hit), and the O(num_nodes) memo
    // copy always happens with inflight_mu_ released.
    std::unique_lock<std::mutex> lock(inflight_mu_);
    for (;;) {
      if (std::find(inflight_keys_.begin(), inflight_keys_.end(), key) !=
          inflight_keys_.end()) {
        inflight_cv_.wait(lock);
        continue;
      }
      lock.unlock();
      // The solver inserts before deregistering, so waiters hit here; a
      // miss means no solver, a failed solve, or TTL expiry — solve.
      if (std::optional<RankResponse> memo = score_cache_.Lookup(key)) {
        return from_memo(std::move(*memo));
      }
      lock.lock();
      if (std::find(inflight_keys_.begin(), inflight_keys_.end(), key) ==
          inflight_keys_.end()) {
        inflight_keys_.push_back(key);
        break;
      }
      // Raced with a thread that registered during our probe: wait.
    }
  }

  Result<RankResponse> response = engine_->Rank(request);

  if (cacheable) {
    // The memo stores the response as the engine produced it; the
    // normalized diagnostic below applies only to this batch's copy.
    if (response.ok()) score_cache_.Insert(key, *response);
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      std::erase(inflight_keys_, key);
    }
    inflight_cv_.notify_all();
  }
  if (!response.ok()) return response;
  if (expected_cache_hit) {
    response->transition_cache_hit = *expected_cache_hit;
  }
  return response;
}

std::vector<bool> ServingRuntime::SimulateSequentialCacheHits(
    std::span<const RankRequest> requests) const {
  // Concurrent execution makes the engine's real hit/miss interleaving a
  // race outcome; replaying the reference LRU trace over the resolved
  // keys (cheap: keys, not matrices) pins every response's
  // transition_cache_hit flag to the deterministic sequential value.
  std::list<TransitionKey> lru;
  for (const TransitionKey& key : engine_->CachedTransitionKeys()) {
    lru.push_back(key);  // Keys() is MRU-first, matching list order.
  }
  const size_t capacity = engine_->options().transition_cache_capacity;

  std::vector<bool> hits(requests.size(), false);
  for (size_t i = 0; i < requests.size(); ++i) {
    const TransitionKey key = engine_->ResolveKey(requests[i]);
    auto it = std::find(lru.begin(), lru.end(), key);
    if (it != lru.end()) {
      hits[i] = true;
      lru.splice(lru.begin(), lru, it);
    } else {
      lru.push_front(key);
      while (lru.size() > capacity) lru.pop_back();
    }
  }
  return hits;
}

Result<std::vector<RankResponse>> ServingRuntime::RankBatch(
    std::span<const RankRequest> requests) {
  std::vector<RankResponse> responses(requests.size());
  if (requests.empty()) return responses;

  const std::vector<bool> expected_hits =
      SimulateSequentialCacheHits(requests);

  // Group request indices into execution chains: every untagged request
  // is its own chain; ALL tagged requests form one chain in submission
  // order. One chain per tag would keep each trajectory ordered, but the
  // warm store is a shared LRU — with more tags than warm_start_capacity
  // the eviction order across concurrent chains would be a race, and a
  // trajectory the sequential path keeps could get dropped mid-batch.
  std::vector<std::vector<size_t>> chains;
  std::vector<size_t> tagged;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].warm_start_tag.empty()) {
      chains.push_back({i});
    } else {
      tagged.push_back(i);
    }
  }
  if (!tagged.empty()) chains.push_back(std::move(tagged));

  std::mutex error_mu;
  size_t first_error_index = requests.size();
  Status first_error = Status::OK();

  std::latch done(static_cast<ptrdiff_t>(chains.size()));
  for (std::vector<size_t>& chain : chains) {
    pool_.Submit([this, &requests, &responses, &expected_hits, &error_mu,
                  &first_error_index, &first_error, &done,
                  chain = std::move(chain)] {
      // RAII tick: the pool contains task exceptions, so a throw past
      // a plain trailing count_down() would strand done.wait() forever.
      struct Tick {
        std::latch& latch;
        ~Tick() { latch.count_down(); }
      } tick{done};
      for (size_t index : chain) {
        Result<RankResponse> response =
            Execute(requests[index], expected_hits[index]);
        if (!response.ok()) {
          // Mirror the sequential fail-fast error: of all failing
          // requests, the lowest index wins; the rest of this chain
          // would never have run, so stop it.
          std::lock_guard<std::mutex> lock(error_mu);
          if (index < first_error_index) {
            first_error_index = index;
            first_error = response.status();
          }
          break;
        }
        responses[index] = std::move(response).value();
      }
    });
  }
  done.wait();

  if (first_error_index < requests.size()) return first_error;
  return responses;
}

std::future<Result<RankResponse>> ServingRuntime::RankAsync(
    RankRequest request) {
  auto promise = std::make_shared<std::promise<Result<RankResponse>>>();
  std::future<Result<RankResponse>> future = promise->get_future();
  pool_.Submit([this, promise, request = std::move(request)] {
    promise->set_value(Execute(request, std::nullopt));
  });
  return future;
}

void ServingRuntime::RankAsync(RankRequest request,
                               std::function<void(Result<RankResponse>)> done,
                               std::function<Status()> gate) {
  pool_.Submit([this, request = std::move(request), done = std::move(done),
                gate = std::move(gate)]() mutable {
    if (gate) {
      Status admitted = gate();
      if (!admitted.ok()) {
        done(std::move(admitted));
        return;
      }
    }
    done(Execute(request, std::nullopt));
  });
}

}  // namespace d2pr
