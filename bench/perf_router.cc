// Shard-count sweeps for the EngineRouter: what a fleet of engines buys
// over one engine for batch serving traffic, in both routing policies.
// Arg(1) of each sweep is the sharded baseline's floor; BM_SingleEngine*
// is the unsharded reference the ISSUE acceptance compares against.
// Future router PRs regress against these QPS numbers.

#include <benchmark/benchmark.h>

#include <vector>

#include "api/engine.h"
#include "common/check.h"
#include "common/rng.h"
#include "datagen/classic_generators.h"
#include "serve/engine_router.h"

namespace d2pr {
namespace {

constexpr NodeId kGraphNodes = 20000;
constexpr int kBatchSize = 64;

CsrGraph MakeGraph() {
  Rng rng(42);
  auto graph = BarabasiAlbert(kGraphNodes, 4, &rng);
  D2PR_CHECK(graph.ok());
  return std::move(graph).value();
}

// Per-user personalized push queries: the workload sharding targets.
std::vector<RankRequest> PersonalizedBatch(int multi_seed_every) {
  std::vector<RankRequest> batch;
  for (int i = 0; i < kBatchSize; ++i) {
    RankRequest request;
    request.p = 0.5;
    request.method = SolverMethod::kForwardPush;
    request.push_epsilon = 1e-6;
    request.seeds = {static_cast<NodeId>(i * 17 % kGraphNodes)};
    if (multi_seed_every > 0 && i % multi_seed_every == 0) {
      // Seed pairs landing on different modulo owners: in partitioned
      // mode these split and pay the merge.
      request.seeds.push_back(
          static_cast<NodeId>((i * 17 + 1) % kGraphNodes));
    }
    batch.push_back(std::move(request));
  }
  return batch;
}

// Sequential single-engine reference the shard sweeps compare against.
void BM_SingleEngineBatch(benchmark::State& state) {
  const CsrGraph graph = MakeGraph();
  D2prEngine engine = D2prEngine::Borrowing(graph);
  const std::vector<RankRequest> batch = PersonalizedBatch(0);
  D2PR_CHECK(engine.RankBatch(batch).ok());  // steady-state transitions

  for (auto _ : state) {
    auto responses = engine.RankBatch(batch);
    benchmark::DoNotOptimize(responses->data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchSize);
}
BENCHMARK(BM_SingleEngineBatch)->UseRealTime()->Unit(benchmark::kMillisecond);

// Replicated round-robin sweep. Arg: shard count. Shards fan the batch's
// independent per-user queries across engines, so throughput should
// climb until cache/lock contention (the thing sharding removes) stops
// being the bottleneck.
void BM_RouterReplicatedBatch(benchmark::State& state) {
  const CsrGraph graph = MakeGraph();
  RouterOptions options;
  options.num_shards = static_cast<size_t>(state.range(0));
  EngineRouter router = EngineRouter::Borrowing(graph, options);
  const std::vector<RankRequest> batch = PersonalizedBatch(0);
  D2PR_CHECK(router.RankBatch(batch).ok());  // warm every shard's cache

  for (auto _ : state) {
    auto responses = router.RankBatch(batch);
    benchmark::DoNotOptimize(responses->data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchSize);
}
BENCHMARK(BM_RouterReplicatedBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// Partitioned-teleport sweep on the same batch plus an eighth of the
// requests multi-seeded across owners, so the split-and-merge path is
// paid at a realistic rate.
void BM_RouterPartitionedBatch(benchmark::State& state) {
  const CsrGraph graph = MakeGraph();
  RouterOptions options;
  options.num_shards = static_cast<size_t>(state.range(0));
  options.policy = RoutingPolicy::kPartitionedTeleport;
  EngineRouter router = EngineRouter::Borrowing(graph, options);
  const std::vector<RankRequest> batch = PersonalizedBatch(8);
  D2PR_CHECK(router.RankBatch(batch).ok());

  for (auto _ : state) {
    auto responses = router.RankBatch(batch);
    benchmark::DoNotOptimize(responses->data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchSize);
}
BENCHMARK(BM_RouterPartitionedBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// Global power-iteration queries at distinct parameter points: each
// shard holds a slice of the p-grid's transitions, so sharding also
// multiplies effective transition-cache capacity.
void BM_RouterGlobalSweepBatch(benchmark::State& state) {
  const CsrGraph graph = MakeGraph();
  RouterOptions options;
  options.num_shards = static_cast<size_t>(state.range(0));
  EngineRouter router = EngineRouter::Borrowing(graph, options);

  std::vector<RankRequest> batch;
  for (int i = 0; i < 16; ++i) {
    RankRequest request;
    request.p = -2.0 + 0.25 * i;
    request.tolerance = 1e-9;
    batch.push_back(request);
  }
  D2PR_CHECK(router.RankBatch(batch).ok());

  for (auto _ : state) {
    auto responses = router.RankBatch(batch);
    benchmark::DoNotOptimize(responses->data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_RouterGlobalSweepBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace d2pr

BENCHMARK_MAIN();
