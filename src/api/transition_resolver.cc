#include "api/transition_resolver.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "graph/graph_fingerprint.h"

namespace d2pr {

TransitionResolver::TransitionResolver(std::shared_ptr<const CsrGraph> graph,
                                       const TransitionResolverOptions& options)
    : graph_(std::move(graph)),
      options_(options),
      cache_(options.cache_capacity) {
  if (!options_.cache_dir.empty() &&
      options_.persist_mode != PersistMode::kOff) {
    TransitionStoreOptions store_options;
    store_options.verify_payload_checksums = options_.verify_checksums;
    store_ = std::make_unique<TransitionStore>(options_.cache_dir,
                                               store_options);
    // O(|E|) once per graph — noise next to a single transition build,
    // and it gates every store file against this exact graph. Callers
    // standing up many resolvers over one graph pass it in precomputed.
    graph_fingerprint_ = options_.precomputed_graph_fingerprint != 0
                             ? options_.precomputed_graph_fingerprint
                             : GraphFingerprint(*graph_);
    // A wrong precomputed fingerprint would let the store replay another
    // graph's matrices; catch the caller mistake where builds can afford
    // the re-hash.
    D2PR_DCHECK(options_.precomputed_graph_fingerprint == 0 ||
                graph_fingerprint_ == GraphFingerprint(*graph_))
        << "precomputed_graph_fingerprint does not match this graph";
  }
}

Result<std::shared_ptr<const TransitionMatrix>> TransitionResolver::Resolve(
    const TransitionKey& key, Outcome* outcome) {
  *outcome = Outcome{};
  // Single-flight only pays off when the finished matrix lands in the
  // cache for the waiters; with caching disabled, waiting would turn N
  // independent builds into N serialized ones.
  const bool single_flight = cache_.capacity() > 0;
  if (single_flight) {
    std::unique_lock<std::mutex> lock(build_mu_);
    for (;;) {
      if (auto cached = cache_.Lookup(key)) {
        outcome->cache_hit = true;
        return cached;
      }
      // Someone else is loading or building this key: wait for them
      // instead of paying the work twice, then re-check the cache.
      if (std::find(building_keys_.begin(), building_keys_.end(), key) ==
          building_keys_.end()) {
        break;
      }
      build_cv_.wait(lock);
    }
    building_keys_.push_back(key);
  }

  Status error;
  std::shared_ptr<const TransitionMatrix> shared;

  // Spill layer first: mapping a persisted matrix is O(1) against the
  // O(|E|) rebuild. A missing file is the expected cold path; a rejected
  // file (wrong graph, corruption, version skew) is surfaced loudly but
  // never used — the rebuild below always produces a correct matrix.
  if (store_readable()) {
    auto loaded = store_->Load(graph_fingerprint_, key, graph_->num_nodes(),
                               graph_->num_arcs());
    if (loaded.ok()) {
      outcome->store_hit = true;
      ++store_loads_;
      shared = std::move(loaded).value();
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      D2PR_LOG(Warning) << "transition store rejected; rebuilding: "
                        << loaded.status().ToString();
    }
  }

  bool built_fresh = false;
  if (shared == nullptr) {
    TransitionConfig config;
    config.p = key.p;
    config.beta = key.beta;
    config.metric = key.metric;
    outcome->built = true;
    ++builds_;
    Result<TransitionMatrix> built = TransitionMatrix::Build(*graph_, config);
    if (built.ok()) {
      shared =
          std::make_shared<const TransitionMatrix>(std::move(built).value());
      built_fresh = true;
    } else {
      error = built.status();
    }
  }

  if (single_flight) {
    {
      std::lock_guard<std::mutex> lock(build_mu_);
      std::erase(building_keys_, key);
      if (shared != nullptr) cache_.Insert(key, shared);
    }
    // Wake waiters whether the load/build succeeded (they will hit the
    // cache) or failed (one of them retries and reports the same error).
    build_cv_.notify_all();
  }

  // Spill after releasing the single-flight slot: waiters need the
  // matrix, not the file, so the disk write must not sit on their
  // critical path.
  if (built_fresh && store_writable()) {
    // With the cache on, a key builds at most once per process, so the
    // unconditional write doubles as repair of a rejected (corrupt)
    // file. With the cache off every request rebuilds; skip the spill
    // when the file already exists or each query would pay a full
    // rewrite (at the cost of not healing corrupt files in that
    // degenerate configuration).
    const bool spill_write_through =
        options_.persist_policy == PersistPolicy::kWriteThrough &&
        (single_flight || !store_->Contains(graph_fingerprint_, key));
    if (spill_write_through) {
      const Status saved = store_->Save(graph_fingerprint_, key, *shared);
      if (saved.ok()) {
        outcome->spilled = true;
        ++store_saves_;
      } else {
        D2PR_LOG(Warning) << "transition store spill failed: "
                          << saved.ToString();
      }
    } else if (options_.persist_policy == PersistPolicy::kLazy) {
      std::lock_guard<std::mutex> lock(persist_mu_);
      if (std::find(unspilled_keys_.begin(), unspilled_keys_.end(), key) ==
          unspilled_keys_.end()) {
        unspilled_keys_.push_back(key);
      }
    }
  }

  if (!error.ok()) return error;
  return shared;
}

Result<std::shared_ptr<const TransitionSlices>> TransitionResolver::ResolveSlices(
    const TransitionKey& key, const GraphPartition& partition,
    SliceBuild build, Outcome* outcome) {
  // kFromMatrix resolves the whole-graph matrix FIRST, so the cache /
  // store / spill behavior and every counter an owner reads off the
  // Outcome are exactly the unsliced path's; the slice cache below then
  // only adds (never replaces) work. kSubgraph must not touch the matrix
  // machinery at all — that path's whole point is that no whole-graph
  // matrix exists.
  std::shared_ptr<const TransitionMatrix> matrix;
  if (build == SliceBuild::kFromMatrix) {
    auto resolved = Resolve(key, outcome);
    if (!resolved.ok()) return resolved.status();
    matrix = std::move(resolved).value();
  } else {
    *outcome = Outcome{};
  }

  // Same discipline as ResolveBounds: no cache, no single-flight.
  const bool caching = cache_.capacity() > 0;
  if (caching) {
    std::unique_lock<std::mutex> lock(slices_mu_);
    for (;;) {
      const auto hit = std::find_if(
          slices_cache_.begin(), slices_cache_.end(),
          [&](const auto& entry) { return entry.first == key; });
      if (hit != slices_cache_.end()) {
        auto slices = hit->second;
        std::rotate(slices_cache_.begin(), hit, hit + 1);  // MRU to front.
        if (build == SliceBuild::kSubgraph) outcome->cache_hit = true;
        return slices;
      }
      if (std::find(slices_building_.begin(), slices_building_.end(), key) ==
          slices_building_.end()) {
        break;
      }
      slices_cv_.wait(lock);
    }
    slices_building_.push_back(key);
  }

  Status error;
  std::shared_ptr<const TransitionSlices> shared;
  {
    Result<TransitionSlices> built =
        build == SliceBuild::kFromMatrix
            ? BuildTransitionSlices(partition, *matrix)
            : [&] {
                TransitionConfig config;
                config.p = key.p;
                config.beta = key.beta;
                config.metric = key.metric;
                outcome->built = true;
                return BuildTransitionSlicesLocal(*graph_, partition, config);
              }();
    ++slice_builds_;
    if (built.ok()) {
      shared =
          std::make_shared<const TransitionSlices>(std::move(built).value());
    } else {
      error = built.status();
    }
  }

  if (caching) {
    {
      std::lock_guard<std::mutex> lock(slices_mu_);
      std::erase(slices_building_, key);
      if (shared != nullptr) {
        slices_cache_.insert(slices_cache_.begin(), {key, shared});
        if (slices_cache_.size() > cache_.capacity()) slices_cache_.pop_back();
      }
    }
    slices_cv_.notify_all();
  }

  if (!error.ok()) return error;
  return shared;
}

std::shared_ptr<const DegreeBoundIndex> TransitionResolver::ResolveBounds(
    const TransitionKey& key,
    const std::shared_ptr<const TransitionMatrix>& transition) {
  // Mirrors Resolve's discipline: with caching disabled there is nowhere
  // for a finished index to land, so waiting on another builder would
  // only serialize independent O(|E|) passes.
  const bool caching = cache_.capacity() > 0;
  if (caching) {
    std::unique_lock<std::mutex> lock(bounds_mu_);
    for (;;) {
      const auto hit = std::find_if(
          bounds_cache_.begin(), bounds_cache_.end(),
          [&](const auto& entry) { return entry.first == key; });
      if (hit != bounds_cache_.end()) {
        auto index = hit->second;
        std::rotate(bounds_cache_.begin(), hit, hit + 1);  // MRU to front.
        return index;
      }
      if (std::find(bounds_building_.begin(), bounds_building_.end(), key) ==
          bounds_building_.end()) {
        break;
      }
      bounds_cv_.wait(lock);
    }
    bounds_building_.push_back(key);
  }

  ++bound_builds_;
  auto built = std::make_shared<const DegreeBoundIndex>(
      DegreeBoundIndex::Build(*graph_, *transition));

  if (caching) {
    {
      std::lock_guard<std::mutex> lock(bounds_mu_);
      std::erase(bounds_building_, key);
      bounds_cache_.insert(bounds_cache_.begin(), {key, built});
      if (bounds_cache_.size() > cache_.capacity()) bounds_cache_.pop_back();
    }
    bounds_cv_.notify_all();
  }
  return built;
}

Status TransitionResolver::PersistCached(int64_t* saves) {
  if (saves != nullptr) *saves = 0;
  if (!store_writable()) {
    return Status::FailedPrecondition(
        "no writable transition store attached (set EngineOptions::"
        "cache_dir and a writable persist_mode)");
  }
  // Snapshot the cache and read/prune the dirty set under one
  // persist_mu_ hold. Resolve marks a key dirty only *after* inserting
  // its matrix (and takes persist_mu_ to do it), so inside this critical
  // section a dirty key absent from the snapshot is provably evicted —
  // its bytes are gone and the mark can never be honored; prune it so
  // the list stays bounded by the resident set. A concurrent build that
  // inserts after the snapshot keeps its mark for the next flush (or the
  // destructor's) instead of losing it.
  std::vector<std::pair<TransitionKey, std::shared_ptr<const TransitionMatrix>>>
      snapshot;
  std::vector<TransitionKey> dirty;
  {
    std::lock_guard<std::mutex> lock(persist_mu_);
    snapshot = cache_.Snapshot();
    dirty = unspilled_keys_;
    std::erase_if(unspilled_keys_, [&](const TransitionKey& unspilled) {
      return std::none_of(
          snapshot.begin(), snapshot.end(),
          [&](const auto& entry) { return entry.first == unspilled; });
    });
  }
  Status first_error;
  for (const auto& [key, matrix] : snapshot) {
    // A key this resolver built must be (re)written even if a file
    // exists — the file may be the corrupt one whose rejection caused
    // the rebuild. Everything else skips on existence, keeping the flush
    // idempotent.
    const bool must_write =
        std::find(dirty.begin(), dirty.end(), key) != dirty.end();
    if (!must_write && store_->Contains(graph_fingerprint_, key)) continue;
    const Status saved = store_->Save(graph_fingerprint_, key, *matrix);
    if (saved.ok()) {
      ++store_saves_;
      if (saves != nullptr) ++*saves;
      std::lock_guard<std::mutex> lock(persist_mu_);
      std::erase(unspilled_keys_, key);
    } else if (first_error.ok()) {
      first_error = saved;
    }
  }
  return first_error;
}

void TransitionResolver::Clear() {
  cache_.Clear();
  {
    std::lock_guard<std::mutex> lock(bounds_mu_);
    bounds_cache_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(slices_mu_);
    slices_cache_.clear();
  }
  // The matrices are gone, so their pending lazy spills can never run.
  std::lock_guard<std::mutex> lock(persist_mu_);
  unspilled_keys_.clear();
}

}  // namespace d2pr
