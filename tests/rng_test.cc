#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace d2pr {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(77);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.Next());
  rng.Reseed(77);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Next(), first[i]);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(11);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(bound), bound);
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Below(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, ss = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    ss += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(ss / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(21);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GammaMeanMatchesShapeScale) {
  Rng rng(25);
  for (double shape : {0.5, 1.0, 3.0, 9.0}) {
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.Gamma(shape, 2.0);
    EXPECT_NEAR(sum / n, shape * 2.0, shape * 2.0 * 0.05)
        << "shape = " << shape;
  }
}

TEST(RngTest, BetaStaysInUnitIntervalWithCorrectMean) {
  Rng rng(27);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Beta(2.0, 3.0);
    EXPECT_GT(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.4, 0.01);  // mean = a/(a+b)
}

TEST(RngTest, PoissonMeanSmallAndLargeRegimes) {
  Rng rng(29);
  for (double mean : {0.5, 4.0, 50.0}) {
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.Poisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean = " << mean;
  }
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(31);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng(33);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.Lognormal(0.0, 1.0), 0.0);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(35);
  std::vector<int> values(50);
  std::iota(values.begin(), values.end(), 0);
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(41);
  Rng child_a = parent.Fork(1);
  Rng child_b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child_a.Next() == child_b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngDeathTest, InvalidArgumentsAbort) {
  Rng rng(43);
  EXPECT_DEATH(rng.Below(0), "CHECK failed");
  EXPECT_DEATH(rng.Exponential(0.0), "CHECK failed");
  EXPECT_DEATH(rng.Gamma(0.0, 1.0), "CHECK failed");
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  // Golden values: determinism across platforms is part of the contract.
  uint64_t state = 0;
  const uint64_t first = SplitMix64(&state);
  const uint64_t second = SplitMix64(&state);
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
  EXPECT_EQ(second, 0x6e789e6aa1b965f4ULL);
}

}  // namespace
}  // namespace d2pr
