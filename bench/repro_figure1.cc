// Figure 1: the worked transition-probability example. Node A has three
// neighbors B (degree 2), C (degree 3), D (degree 1); the paper's table
// gives the transition probabilities from A at p = 0, 2, -2:
//   p =  0: 0.33 / 0.33 / 0.33
//   p =  2: 0.18 / 0.08 / 0.74
//   p = -2: 0.29 / 0.64 / 0.07

#include <cmath>
#include <cstdio>

#include "common/string_util.h"
#include "core/transition.h"
#include "eval/table_writer.h"
#include "graph/graph_builder.h"
#include "repro_common.h"

namespace d2pr {
namespace bench {
namespace {

int Run() {
  PrintHeader("Figure 1: degree de-coupled transition probabilities",
              "Figure 1(b) (exact example values)");

  // A=0, B=1, C=2, D=3, E=4, F=5; degrees B:2, C:3, D:1 as in the paper.
  GraphBuilder builder(6, GraphKind::kUndirected);
  struct {
    NodeId u, v;
  } edges[] = {{0, 1}, {0, 2}, {0, 3}, {1, 4}, {2, 4}, {2, 5}};
  for (auto [u, v] : edges) {
    if (!builder.AddEdge(u, v).ok()) return 1;
  }
  auto graph = builder.Build();
  if (!graph.ok()) return 1;

  const double expected[3][3] = {{1.0 / 3, 1.0 / 3, 1.0 / 3},
                                 {9.0 / 49, 4.0 / 49, 36.0 / 49},
                                 {4.0 / 14, 9.0 / 14, 1.0 / 14}};
  const double p_values[3] = {0.0, 2.0, -2.0};
  const char* names[] = {"B (deg 2)", "C (deg 3)", "D (deg 1)"};

  TextTable table({"p", "P(A->B)", "P(A->C)", "P(A->D)"});
  int exit_code = 0;
  for (int k = 0; k < 3; ++k) {
    auto transition = TransitionMatrix::Build(*graph, {.p = p_values[k]});
    if (!transition.ok()) return 1;
    std::vector<std::string> row{FormatGeneral(p_values[k], 3)};
    for (NodeId j = 1; j <= 3; ++j) {
      const double prob = transition->Prob(*graph, 0, j);
      row.push_back(FormatDouble(prob, 2));
      if (std::abs(prob - expected[k][j - 1]) > 1e-12) {
        std::fprintf(stderr, "MISMATCH at p=%g, %s: got %.6f want %.6f\n",
                     p_values[k], names[j - 1], prob, expected[k][j - 1]);
        exit_code = 1;
      }
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("%s\n\n", exit_code == 0
                            ? "All nine probabilities match the paper's "
                              "Figure 1(b) exactly."
                            : "MISMATCH against the paper's example.");
  ArchiveCsv(table, "figure1");
  return exit_code;
}

}  // namespace
}  // namespace bench
}  // namespace d2pr

int main() { return d2pr::bench::Run(); }
