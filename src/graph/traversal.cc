#include "graph/traversal.h"

#include <deque>

#include "graph/graph_builder.h"

namespace d2pr {

std::vector<int64_t> BfsDistances(const CsrGraph& graph, NodeId source) {
  D2PR_CHECK(source >= 0 && source < graph.num_nodes());
  std::vector<int64_t> dist(graph.num_nodes(), -1);
  std::deque<NodeId> frontier{source};
  dist[source] = 0;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    for (NodeId u : graph.OutNeighbors(v)) {
      if (dist[u] < 0) {
        dist[u] = dist[v] + 1;
        frontier.push_back(u);
      }
    }
  }
  return dist;
}

Components ConnectedComponents(const CsrGraph& graph) {
  const NodeId n = graph.num_nodes();
  // For directed graphs we need the reverse arcs too (weak connectivity).
  const CsrGraph reverse =
      graph.directed() ? graph.Transpose() : CsrGraph();

  Components result;
  result.label.assign(n, -1);
  std::vector<NodeId> component_size;
  std::deque<NodeId> frontier;
  for (NodeId start = 0; start < n; ++start) {
    if (result.label[start] >= 0) continue;
    const NodeId comp = result.count++;
    component_size.push_back(0);
    result.label[start] = comp;
    frontier.push_back(start);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop_front();
      ++component_size[comp];
      for (NodeId u : graph.OutNeighbors(v)) {
        if (result.label[u] < 0) {
          result.label[u] = comp;
          frontier.push_back(u);
        }
      }
      if (graph.directed()) {
        for (NodeId u : reverse.OutNeighbors(v)) {
          if (result.label[u] < 0) {
            result.label[u] = comp;
            frontier.push_back(u);
          }
        }
      }
    }
  }
  for (NodeId comp = 0; comp < result.count; ++comp) {
    if (component_size[comp] > result.largest_size) {
      result.largest_size = component_size[comp];
      result.largest_label = comp;
    }
  }
  return result;
}

Subgraph LargestComponentSubgraph(const CsrGraph& graph) {
  const Components comps = ConnectedComponents(graph);
  const NodeId n = graph.num_nodes();

  Subgraph out;
  std::vector<NodeId> new_id(n, -1);
  for (NodeId v = 0; v < n; ++v) {
    if (comps.label[v] == comps.largest_label) {
      new_id[v] = static_cast<NodeId>(out.original_id.size());
      out.original_id.push_back(v);
    }
  }

  GraphBuilder builder(static_cast<NodeId>(out.original_id.size()),
                       graph.kind(), graph.weighted());
  for (NodeId v = 0; v < n; ++v) {
    if (new_id[v] < 0) continue;
    auto nbrs = graph.OutNeighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId u = nbrs[i];
      if (new_id[u] < 0) continue;
      if (!graph.directed() && u < v) continue;  // mirrored arcs: add once
      const double w = graph.weighted() ? graph.OutWeights(v)[i] : 1.0;
      // Ids were validated above; AddEdge cannot fail here.
      D2PR_CHECK(builder.AddEdge(new_id[v], new_id[u], w).ok());
    }
  }
  auto built = builder.Build(DuplicatePolicy::kKeepFirst);
  D2PR_CHECK(built.ok()) << built.status().ToString();
  out.graph = std::move(built).value();
  return out;
}

}  // namespace d2pr
