// Flag vocabulary and combination rules of the d2pr_rank CLI, split out
// of the binary so tests/flags_test.cc can assert every accepted and
// rejected combination without spawning processes.
//
// ValidateRankFlags performs every check that maps to exit code 2 (usage
// error): unknown flags, missing required flags, numeric ranges, and the
// cross-flag rules (--route requires --shards, --partition requires
// --shards, --tune excludes --seeds/--shards, ...). The binary calls it
// once after parsing and before any I/O, so a typo'd invocation fails in
// microseconds; value extraction stays in the binary.

#ifndef D2PR_TOOLS_D2PR_RANK_FLAGS_H_
#define D2PR_TOOLS_D2PR_RANK_FLAGS_H_

#include <string>

#include "api/engine.h"
#include "api/rank_request.h"
#include "common/flags.h"
#include "common/result.h"
#include "core/transition_slices.h"
#include "graph/partition.h"
#include "serve/engine_router.h"

namespace d2pr {

/// \brief Parses a --partition value ("range" or "hash").
Result<PartitionScheme> ParsePartitionScheme(const std::string& name);

/// \brief Parses a --slices value ("matrix" or "subgraph"); empty means
/// the default (matrix). Only meaningful with --partition: it selects how
/// the partitioned router constructs its per-shard transition slices —
/// "matrix" resolves the shared whole-graph matrix (persistent cache
/// included) and slices it; "subgraph" builds the slices shard-locally
/// and never materializes a whole-graph matrix (and therefore never
/// reads or writes --cache-dir for the transition).
Result<SliceBuild> ParseSliceBuild(const std::string& name);

/// \brief Parses a --method value; empty means the default (power).
Result<SolverMethod> ParseRankMethod(const std::string& name);

/// \brief Parses a --cache-mode value; empty means the default (rw).
Result<PersistMode> ParseCacheMode(const std::string& name);

/// \brief Routing policy + strategy named by one --route value.
struct RouteSpec {
  RoutingPolicy policy = RoutingPolicy::kReplicated;
  ReplicaStrategy strategy = ReplicaStrategy::kRoundRobin;
};

/// \brief Parses a --route value ("replicated", "least-loaded",
/// "partitioned"); empty means the default (replicated round-robin).
Result<RouteSpec> ParseRoute(const std::string& name);

/// \brief Validates the full flag set of d2pr_rank: flag names, value
/// vocabularies (method/route/cache-mode/partition), numeric ranges, and
/// combination rules. OK means the invocation is well-formed; any error
/// corresponds to exit code 2 in the binary.
Status ValidateRankFlags(const Flags& flags);

}  // namespace d2pr

#endif  // D2PR_TOOLS_D2PR_RANK_FLAGS_H_
