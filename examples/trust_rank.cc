// Personalized trust ranking on the Epinions-like commenter graph.
//
// Two things the paper motivates but leaves to future work:
//   * combining degree de-coupling with *personalized* teleportation
//     (recommend trustworthy commenters near a given user), and
//   * computing such rankings locally, without touching the whole graph —
//     the forward-push solver from the authors' locality-sensitive PPR
//     line of work (ref [17]).
//
//   $ ./build/examples/trust_rank

#include <cstdio>

#include "common/timer.h"
#include "core/d2pr.h"
#include "core/push_ppr.h"
#include "datagen/dataset_registry.h"
#include "stats/ranking.h"

int main() {
  using namespace d2pr;

  RegistryOptions options;
  options.scale = 0.5;
  auto data =
      MakePaperGraph(PaperGraphId::kEpinionsCommenterCommenter, options);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const CsrGraph& graph = data->unweighted;
  const NodeId user = graph.num_nodes() / 3;  // an arbitrary user
  std::printf("Commenter graph: %d commenters, %lld edges; user = %d\n\n",
              graph.num_nodes(), static_cast<long long>(graph.num_edges()),
              user);

  // Degree-penalized transitions (this is a Group A application).
  auto transition = TransitionMatrix::Build(graph, {.p = 1.0});
  if (!transition.ok()) return 1;

  // Exact personalized D2PR by power iteration.
  Timer power_timer;
  auto exact = ComputePersonalizedD2pr(graph, std::vector<NodeId>{user},
                                       {.p = 1.0});
  if (!exact.ok()) return 1;
  const double power_ms = power_timer.ElapsedMillis();

  // Local approximation by forward push.
  PushOptions push_options;
  push_options.epsilon = 1e-8;
  Timer push_timer;
  auto push = ForwardPushPpr(graph, *transition, user, push_options);
  if (!push.ok()) return 1;
  const double push_ms = push_timer.ElapsedMillis();

  const std::vector<NodeId> exact_top = TopK(exact->scores, 5);
  const std::vector<NodeId> push_top = TopK(push->scores, 5);
  std::printf("top trustworthy commenters near user %d\n", user);
  std::printf("  rank  power-iteration   forward-push\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  %4d  %15d  %13d\n", i + 1, exact_top[i], push_top[i]);
  }
  std::printf(
      "\npower iteration: %.1f ms (%d iterations over the whole graph)\n"
      "forward push:    %.1f ms (%lld pushes, touched residuals only)\n",
      power_ms, exact->iterations, push_ms,
      static_cast<long long>(push->pushes));

  int agree = 0;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) agree += (exact_top[i] == push_top[j]);
  }
  std::printf("top-5 agreement: %d/5\n", agree);
  return agree >= 4 ? 0 : 1;
}
