#include "datagen/projection.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace d2pr {
namespace {

TEST(ProjectGroupsTest, SingleGroupMakesClique) {
  const std::vector<std::vector<NodeId>> groups{{0, 1, 2}};
  auto graph = ProjectGroups(groups, 4);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 3);  // triangle on {0,1,2}
  EXPECT_TRUE(graph->HasArc(0, 1));
  EXPECT_TRUE(graph->HasArc(1, 2));
  EXPECT_TRUE(graph->HasArc(0, 2));
  EXPECT_EQ(graph->OutDegree(3), 0);  // node 3 in no group
}

TEST(ProjectGroupsTest, SharedPairsAccumulateWeight) {
  const std::vector<std::vector<NodeId>> groups{{0, 1}, {0, 1, 2}, {1, 0}};
  ProjectionConfig config;
  config.weighted = true;
  auto graph = ProjectGroups(groups, 3, config);
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph->weighted());
  EXPECT_DOUBLE_EQ(graph->ArcWeight(0, 1), 3.0);  // co-occur in all three
  EXPECT_DOUBLE_EQ(graph->ArcWeight(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(graph->ArcWeight(1, 2), 1.0);
}

TEST(ProjectGroupsTest, UnweightedStillDeduplicates) {
  const std::vector<std::vector<NodeId>> groups{{0, 1}, {0, 1}};
  auto graph = ProjectGroups(groups, 2);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(graph->weighted());
  EXPECT_EQ(graph->num_edges(), 1);
}

TEST(ProjectGroupsTest, MaxAnchorSizeSkipsLargeGroups) {
  const std::vector<std::vector<NodeId>> groups{{0, 1}, {2, 3, 4, 5}};
  ProjectionConfig config;
  config.max_anchor_size = 3;
  auto graph = ProjectGroups(groups, 6, config);
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph->HasArc(0, 1));
  EXPECT_FALSE(graph->HasArc(2, 3));  // the size-4 anchor was skipped
  EXPECT_EQ(graph->num_edges(), 1);
}

TEST(ProjectGroupsTest, RejectsOutOfRangeAndDuplicateMembers) {
  EXPECT_FALSE(ProjectGroups({{0, 9}}, 3).ok());
  EXPECT_FALSE(ProjectGroups({{-1, 0}}, 3).ok());
  EXPECT_FALSE(ProjectGroups({{1, 1}}, 3).ok());
}

TEST(ProjectGroupsTest, EmptyAndSingletonGroupsProduceNoEdges) {
  auto graph = ProjectGroups({{}, {2}}, 3);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 0);
  EXPECT_EQ(graph->num_nodes(), 3);
}

TEST(ProjectionSidesTest, MemberAndVenueViewsAreConsistent) {
  BipartiteWorld world;
  world.config.num_members = 4;
  world.config.num_venues = 3;
  world.venue_members = {{0, 1}, {1, 2}, {2, 3}};
  world.member_venues = {{0}, {0, 1}, {1, 2}, {2}};
  world.member_quality.assign(4, 0.5);
  world.venue_quality.assign(3, 0.5);

  auto members = ProjectMembers(world);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->num_nodes(), 4);
  EXPECT_TRUE(members->HasArc(0, 1));
  EXPECT_TRUE(members->HasArc(1, 2));
  EXPECT_TRUE(members->HasArc(2, 3));
  EXPECT_FALSE(members->HasArc(0, 2));

  auto venues = ProjectVenues(world);
  ASSERT_TRUE(venues.ok());
  EXPECT_EQ(venues->num_nodes(), 3);
  EXPECT_TRUE(venues->HasArc(0, 1));  // share member 1
  EXPECT_TRUE(venues->HasArc(1, 2));  // share member 2
  EXPECT_FALSE(venues->HasArc(0, 2));
}

TEST(CommonNeighborTest, WeightsAreSharedNeighborsPlusOne) {
  // Diamond: 0-1, 0-2, 1-2, 1-3, 2-3. Edge (1,2) shares {0, 3}.
  GraphBuilder builder(4, GraphKind::kUndirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  ASSERT_TRUE(builder.AddEdge(1, 3).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  auto weighted = CommonNeighborWeightedGraph(*graph);
  ASSERT_TRUE(weighted.ok());
  EXPECT_TRUE(weighted->weighted());
  EXPECT_DOUBLE_EQ(weighted->ArcWeight(1, 2), 3.0);  // 1 + |{0, 3}|
  EXPECT_DOUBLE_EQ(weighted->ArcWeight(0, 1), 2.0);  // 1 + |{2}|
  EXPECT_DOUBLE_EQ(weighted->ArcWeight(1, 3), 2.0);  // 1 + |{2}|
  // Topology unchanged.
  EXPECT_EQ(weighted->num_edges(), graph->num_edges());
}

TEST(CommonNeighborTest, RejectsDirectedInput) {
  GraphBuilder builder(2, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(CommonNeighborWeightedGraph(*graph).ok());
}

TEST(CommonNeighborTest, NoSharedNeighborsGivesWeightOne) {
  GraphBuilder builder(2, GraphKind::kUndirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  auto weighted = CommonNeighborWeightedGraph(*graph);
  ASSERT_TRUE(weighted.ok());
  EXPECT_DOUBLE_EQ(weighted->ArcWeight(0, 1), 1.0);
}

}  // namespace
}  // namespace d2pr
