// The serving vocabulary of the D2PR engine: one request struct in, one
// response struct out, for every ranking variant the library implements.
//
// A RankRequest bundles the transition knobs (p, beta, metric), the solver
// knobs (alpha, tolerance, iteration caps), the solver method, and the
// query context (personalization seeds, warm-start tag). A RankResponse
// carries the scores plus the convergence and cache diagnostics a serving
// layer needs for observability.

#ifndef D2PR_API_RANK_REQUEST_H_
#define D2PR_API_RANK_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/pagerank.h"
#include "core/transition.h"
#include "graph/types.h"

namespace d2pr {

/// \brief Which solver executes a RankRequest.
enum class SolverMethod {
  /// Jacobi-style power iteration (default; iterates stay distributions
  /// and warm starts are supported).
  kPower,
  /// Gauss-Seidel sweeps: typically ~half the iterations of power
  /// iteration at the same per-sweep cost.
  kGaussSeidel,
  /// Forward local push: approximate, output-sensitive; the right choice
  /// for per-query personalized rankings on large graphs.
  kForwardPush,
};

/// \brief Human-readable solver name ("power", "gauss-seidel",
/// "forward-push").
const char* SolverMethodName(SolverMethod method);

/// \brief One ranking query against a D2prEngine.
struct RankRequest {
  // --- transition model (cache key) ---
  /// Degree de-coupling weight (the paper's p).
  double p = 0.0;
  /// Connection-strength blend on weighted graphs (the paper's β).
  double beta = 0.0;
  /// Which destination quantity is raised to -p.
  DegreeMetric metric = DegreeMetric::kAuto;

  // --- solver ---
  double alpha = 0.85;       ///< Residual probability (the paper's α).
  double tolerance = 1e-10;  ///< L1 convergence threshold (power / GS).
  int max_iterations = 200;  ///< Iteration cap (power / GS).
  DanglingPolicy dangling = DanglingPolicy::kTeleport;
  SolverMethod method = SolverMethod::kPower;
  /// Per-node residual threshold for kForwardPush (ignored otherwise).
  double push_epsilon = 1e-7;

  // --- query context ---
  /// Personalization seeds; empty = uniform teleportation (global rank).
  std::vector<NodeId> seeds;
  /// Non-empty: the engine warm-starts this solve from the previous
  /// solution stored under the same tag (power iteration only) and stores
  /// the new solution back. Sweeps and tuners use one tag per trajectory.
  std::string warm_start_tag;
};

/// \brief Scores plus diagnostics for one RankRequest.
struct RankResponse {
  std::vector<double> scores;  ///< Stationary (or push-estimate) scores.
  SolverMethod method = SolverMethod::kPower;  ///< Solver that ran.
  int iterations = 0;      ///< Iterations performed (power / GS).
  int64_t pushes = 0;      ///< Push operations performed (forward push).
  bool converged = false;  ///< Tolerance reached / push completed.
  double residual = 0.0;   ///< Final L1 change (power / GS).
  bool transition_cache_hit = false;  ///< Transition served from cache.
  bool warm_start_hit = false;        ///< Solve started from a stored
                                      ///< (possibly extrapolated) iterate.
};

/// \brief Cumulative per-engine counters, exposed for serving telemetry
/// and asserted on by efficiency tests.
struct EngineStats {
  int64_t requests = 0;           ///< RankRequests executed (ok or not).
  int64_t transition_builds = 0;  ///< TransitionMatrix::Build invocations.
  int64_t transition_cache_hits = 0;
  int64_t warm_start_hits = 0;
  int64_t solver_iterations = 0;  ///< Summed power / Gauss-Seidel iterations.
  int64_t push_operations = 0;    ///< Summed forward-push operations.
};

}  // namespace d2pr

#endif  // D2PR_API_RANK_REQUEST_H_
