// Dataset pipeline: generate a paper graph, persist it, reload it, and
// verify the ranking reproduces bit-for-bit — the workflow for sharing
// experiment inputs between machines.
//
//   $ ./build/examples/io_pipeline [output_dir]

#include <cstdio>
#include <string>

#include "core/d2pr.h"
#include "datagen/dataset_registry.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"

int main(int argc, char** argv) {
  using namespace d2pr;

  const std::string dir = argc > 1 ? argv[1] : "/tmp";

  RegistryOptions options;
  options.scale = 0.5;
  auto data = MakePaperGraph(PaperGraphId::kLastfmArtistArtist, options);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const GraphStats stats = ComputeGraphStats(data->weighted);
  std::printf("artist graph: %d nodes, %lld edges (avg degree %.1f)\n",
              stats.num_nodes, static_cast<long long>(stats.num_edges),
              stats.avg_degree);

  // Persist in both formats.
  const std::string text_path = dir + "/artist_graph.txt";
  const std::string bin_path = dir + "/artist_graph.bin";
  for (const auto& [path, status] :
       {std::pair{text_path, WriteEdgeListText(data->weighted, text_path)},
        std::pair{bin_path, WriteBinary(data->weighted, bin_path)}}) {
    if (!status.ok()) {
      std::fprintf(stderr, "write %s: %s\n", path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }

  // Reload from the binary format and re-rank.
  auto reloaded = ReadBinary(bin_path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "%s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  if (!(*reloaded == data->weighted)) {
    std::fprintf(stderr, "round-trip mismatch!\n");
    return 1;
  }

  auto original = ComputeD2pr(data->weighted, {.p = -1.0, .beta = 0.25});
  auto recomputed = ComputeD2pr(*reloaded, {.p = -1.0, .beta = 0.25});
  if (!original.ok() || !recomputed.ok()) return 1;
  const bool identical = original->scores == recomputed->scores;
  std::printf("round-trip graph equal: yes; rankings bit-identical: %s\n",
              identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
