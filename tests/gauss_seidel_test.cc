#include "core/gauss_seidel.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/teleport.h"
#include "datagen/classic_generators.h"
#include "graph/graph_builder.h"
#include "linalg/vec_ops.h"

namespace d2pr {
namespace {

TransitionMatrix Transition(const CsrGraph& graph, double p = 0.0) {
  auto result = TransitionMatrix::Build(graph, {.p = p});
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

class GaussSeidelVsPowerTest : public ::testing::TestWithParam<double> {};

TEST_P(GaussSeidelVsPowerTest, AgreesWithPowerIteration) {
  Rng rng(1);
  auto graph = BarabasiAlbert(400, 3, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph, GetParam());
  PagerankOptions options;
  options.tolerance = 1e-12;
  options.max_iterations = 500;
  auto power = SolvePagerank(*graph, t, options);
  auto gauss = SolvePagerankGaussSeidel(*graph, t, options);
  ASSERT_TRUE(power.ok());
  ASSERT_TRUE(gauss.ok());
  EXPECT_TRUE(power->converged);
  EXPECT_TRUE(gauss->converged);
  EXPECT_LT(DiffLInf(power->scores, gauss->scores), 1e-9)
      << "p = " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PGrid, GaussSeidelVsPowerTest,
                         ::testing::Values(-2.0, -0.5, 0.0, 0.5, 2.0));

TEST(GaussSeidelTest, ConvergesInFewerSweepsThanPower) {
  Rng rng(2);
  auto graph = BarabasiAlbert(1000, 3, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph);
  PagerankOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 500;
  auto power = SolvePagerank(*graph, t, options);
  auto gauss = SolvePagerankGaussSeidel(*graph, t, options);
  ASSERT_TRUE(power.ok());
  ASSERT_TRUE(gauss.ok());
  EXPECT_LT(gauss->iterations, power->iterations);
}

TEST(GaussSeidelTest, ScoresFormDistribution) {
  Rng rng(3);
  auto graph = ErdosRenyi(300, 900, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph, 1.0);
  auto result = SolvePagerankGaussSeidel(*graph, t, {});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(Sum(result->scores), 1.0, 1e-9);
  for (double s : result->scores) EXPECT_GE(s, 0.0);
}

TEST(GaussSeidelTest, HandlesDanglingTeleportPolicy) {
  GraphBuilder builder(3, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph);
  PagerankOptions options;
  options.tolerance = 1e-12;
  options.max_iterations = 500;
  auto power = SolvePagerank(*graph, t, options);
  auto gauss = SolvePagerankGaussSeidel(*graph, t, options);
  ASSERT_TRUE(power.ok());
  ASSERT_TRUE(gauss.ok());
  EXPECT_LT(DiffLInf(power->scores, gauss->scores), 1e-8);
}

TEST(GaussSeidelTest, PersonalizedTeleport) {
  Rng rng(4);
  auto graph = WattsStrogatz(200, 3, 0.1, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph, 0.5);
  auto teleport = SeededTeleport(200, std::vector<NodeId>{42});
  ASSERT_TRUE(teleport.ok());
  PagerankOptions options;
  options.tolerance = 1e-12;
  options.max_iterations = 500;
  auto power = SolvePagerank(*graph, t, *teleport, options);
  auto gauss = SolvePagerankGaussSeidel(*graph, t, *teleport, options);
  ASSERT_TRUE(power.ok());
  ASSERT_TRUE(gauss.ok());
  EXPECT_LT(DiffLInf(power->scores, gauss->scores), 1e-9);
}

TEST(GaussSeidelTest, ValidationMirrorsPowerIteration) {
  GraphBuilder builder(2, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = Transition(*graph);
  PagerankOptions bad;
  bad.alpha = 1.0;
  EXPECT_FALSE(SolvePagerankGaussSeidel(*graph, t, bad).ok());
  bad = PagerankOptions();
  bad.tolerance = -1.0;
  EXPECT_FALSE(SolvePagerankGaussSeidel(*graph, t, bad).ok());
  std::vector<double> short_teleport{1.0};
  EXPECT_FALSE(
      SolvePagerankGaussSeidel(*graph, t, short_teleport, {}).ok());
}

TEST(GaussSeidelTest, EmptyGraphConverges) {
  CsrGraph graph;
  TransitionMatrix t = Transition(graph);
  auto result = SolvePagerankGaussSeidel(graph, t, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
}

}  // namespace
}  // namespace d2pr
