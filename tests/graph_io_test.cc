#include "graph/graph_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/classic_generators.h"
#include "graph/graph_builder.h"

namespace d2pr {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }
};

CsrGraph SampleWeightedDirected() {
  GraphBuilder builder(4, GraphKind::kDirected, /*weighted=*/true);
  EXPECT_TRUE(builder.AddEdge(0, 1, 2.5).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2, 0.125).ok());
  EXPECT_TRUE(builder.AddEdge(2, 0, 7.0).ok());
  EXPECT_TRUE(builder.AddEdge(2, 3, 1.0).ok());
  auto graph = builder.Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST_F(GraphIoTest, TextRoundTripUndirected) {
  GraphBuilder builder(5, GraphKind::kUndirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  ASSERT_TRUE(builder.AddEdge(3, 4).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());

  const std::string path = TempPath("undirected.txt");
  ASSERT_TRUE(WriteEdgeListText(*graph, path).ok());
  auto loaded = ReadEdgeListText(path, GraphKind::kUndirected,
                                 /*weighted=*/false, 5);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == *graph);
}

TEST_F(GraphIoTest, TextRoundTripWeightedDirected) {
  CsrGraph graph = SampleWeightedDirected();
  const std::string path = TempPath("weighted.txt");
  ASSERT_TRUE(WriteEdgeListText(graph, path).ok());
  auto loaded =
      ReadEdgeListText(path, GraphKind::kDirected, /*weighted=*/true, 4);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == graph);
}

TEST_F(GraphIoTest, TextReaderInfersNodeCount) {
  const std::string path = TempPath("inferred.txt");
  {
    std::ofstream out(path);
    out << "# comment line\n0 7\n3 5\n\n";
  }
  auto loaded = ReadEdgeListText(path, GraphKind::kDirected,
                                 /*weighted=*/false);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), 8);
  EXPECT_TRUE(loaded->HasArc(0, 7));
  EXPECT_TRUE(loaded->HasArc(3, 5));
}

TEST_F(GraphIoTest, TextReaderRejectsGarbage) {
  const std::string path = TempPath("garbage.txt");
  {
    std::ofstream out(path);
    out << "0 not_a_number\n";
  }
  auto loaded = ReadEdgeListText(path, GraphKind::kDirected,
                                 /*weighted=*/false);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(GraphIoTest, TextReaderRejectsNegativeIds) {
  const std::string path = TempPath("negative.txt");
  {
    std::ofstream out(path);
    out << "0 -2\n";
  }
  auto loaded = ReadEdgeListText(path, GraphKind::kDirected,
                                 /*weighted=*/false);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(GraphIoTest, TextReaderRequiresWeightWhenWeighted) {
  const std::string path = TempPath("noweight.txt");
  {
    std::ofstream out(path);
    out << "0 1\n";
  }
  auto loaded = ReadEdgeListText(path, GraphKind::kDirected,
                                 /*weighted=*/true);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(GraphIoTest, MissingFileIsIoError) {
  auto loaded = ReadEdgeListText(TempPath("does_not_exist.txt"),
                                 GraphKind::kDirected, false);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  auto binary = ReadBinary(TempPath("does_not_exist.bin"));
  EXPECT_FALSE(binary.ok());
}

TEST_F(GraphIoTest, BinaryRoundTripWeightedDirected) {
  CsrGraph graph = SampleWeightedDirected();
  const std::string path = TempPath("graph.bin");
  ASSERT_TRUE(WriteBinary(graph, path).ok());
  auto loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(*loaded == graph);
}

TEST_F(GraphIoTest, BinaryRoundTripRandomUndirected) {
  Rng rng(99);
  auto graph = ErdosRenyi(200, 800, &rng);
  ASSERT_TRUE(graph.ok());
  const std::string path = TempPath("er.bin");
  ASSERT_TRUE(WriteBinary(*graph, path).ok());
  auto loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(*loaded == *graph);
}

TEST_F(GraphIoTest, BinaryRejectsBadMagic) {
  const std::string path = TempPath("bad_magic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTAGRPH extra bytes beyond the header for good measure";
  }
  auto loaded = ReadBinary(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);
}

TEST_F(GraphIoTest, BinaryRejectsTruncatedFile) {
  CsrGraph graph = SampleWeightedDirected();
  const std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(WriteBinary(graph, path).ok());
  // Truncate to half size.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  auto loaded = ReadBinary(path);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(GraphIoTest, SelfLoopSurvivesTextRoundTrip) {
  GraphBuilder builder(2, GraphKind::kUndirected);
  ASSERT_TRUE(builder.AddEdge(0, 0).ok());
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  const std::string path = TempPath("loop.txt");
  ASSERT_TRUE(WriteEdgeListText(*graph, path).ok());
  auto loaded = ReadEdgeListText(path, GraphKind::kUndirected, false, 2);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(*loaded == *graph);
}

}  // namespace
}  // namespace d2pr
