#include "core/tuner.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/classic_generators.h"
#include "datagen/copula.h"
#include "graph/graph_stats.h"

namespace d2pr {
namespace {

TEST(TunerTest, FindsNegativePWhenSignificanceIsDegree) {
  // If significance IS the degree, boosting degree can only help: the
  // tuned p must be <= 0 and the correlation near 1.
  Rng rng(55);
  auto graph = BarabasiAlbert(400, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<double> significance = DegreesAsDoubles(*graph);
  TuneOptions options;
  options.base.tolerance = 1e-8;
  auto tuned = TuneDecouplingWeight(*graph, significance, options);
  ASSERT_TRUE(tuned.ok()) << tuned.status().ToString();
  EXPECT_LE(tuned->best_p, 0.0);
  EXPECT_GT(tuned->best_correlation, 0.9);
}

TEST(TunerTest, FindsPositivePWhenSignificanceIsInverseDegree) {
  Rng rng(56);
  auto graph = BarabasiAlbert(400, 3, &rng);
  ASSERT_TRUE(graph.ok());
  std::vector<double> significance = DegreesAsDoubles(*graph);
  for (double& s : significance) s = 1.0 / s;
  TuneOptions options;
  options.base.tolerance = 1e-8;
  auto tuned = TuneDecouplingWeight(*graph, significance, options);
  ASSERT_TRUE(tuned.ok());
  EXPECT_GT(tuned->best_p, 0.0);
  // BA graphs have huge degree-tie groups, capping the achievable rank
  // correlation with 1/deg well below 1.
  EXPECT_GT(tuned->best_correlation, 0.15);
}

TEST(TunerTest, EvaluationLogCoversCoarseGrid) {
  Rng rng(57);
  auto graph = ErdosRenyi(150, 450, &rng);
  ASSERT_TRUE(graph.ok());
  Rng noise(58);
  auto significance =
      SpearmanCoupledVector(DegreesAsDoubles(*graph), 0.4, &noise);
  ASSERT_TRUE(significance.ok());
  TuneOptions options;
  options.p_min = -2.0;
  options.p_max = 2.0;
  options.coarse_step = 1.0;
  options.base.tolerance = 1e-7;
  auto tuned = TuneDecouplingWeight(*graph, *significance, options);
  ASSERT_TRUE(tuned.ok());
  // 5 coarse points plus refinement evaluations.
  EXPECT_GE(tuned->evaluated.size(), 7u);
  // best_correlation must equal the max of everything evaluated.
  double best = -2.0;
  for (const auto& [p, corr] : tuned->evaluated) best = std::max(best, corr);
  EXPECT_DOUBLE_EQ(tuned->best_correlation, best);
}

TEST(TunerTest, BestPWithinSearchRange) {
  Rng rng(59);
  auto graph = BarabasiAlbert(200, 2, &rng);
  ASSERT_TRUE(graph.ok());
  Rng noise(60);
  auto significance =
      SpearmanCoupledVector(DegreesAsDoubles(*graph), -0.3, &noise);
  ASSERT_TRUE(significance.ok());
  TuneOptions options;
  options.p_min = -1.0;
  options.p_max = 3.0;
  options.base.tolerance = 1e-7;
  auto tuned = TuneDecouplingWeight(*graph, *significance, options);
  ASSERT_TRUE(tuned.ok());
  EXPECT_GE(tuned->best_p, options.p_min);
  EXPECT_LE(tuned->best_p, options.p_max);
}

TEST(TunerTest, ValidationErrors) {
  Rng rng(61);
  auto graph = ErdosRenyi(20, 40, &rng);
  ASSERT_TRUE(graph.ok());
  std::vector<double> wrong_size(5, 1.0);
  EXPECT_FALSE(TuneDecouplingWeight(*graph, wrong_size, {}).ok());
  std::vector<double> significance(20, 1.0);
  TuneOptions bad_range;
  bad_range.p_min = 2.0;
  bad_range.p_max = -2.0;
  EXPECT_FALSE(TuneDecouplingWeight(*graph, significance, bad_range).ok());
  TuneOptions bad_step;
  bad_step.coarse_step = 0.0;
  EXPECT_FALSE(TuneDecouplingWeight(*graph, significance, bad_step).ok());
}

}  // namespace
}  // namespace d2pr
