#include "core/sweeps.h"

#include <cmath>

#include "core/teleport.h"

namespace d2pr {

std::vector<double> LinearGrid(double lo, double hi, double step) {
  D2PR_CHECK_GT(step, 0.0);
  D2PR_CHECK_LE(lo, hi);
  std::vector<double> grid;
  const int count = static_cast<int>(std::floor((hi - lo) / step + 1e-9));
  grid.reserve(static_cast<size_t>(count) + 1);
  for (int i = 0; i <= count; ++i) {
    double value = lo + step * i;
    // Snap values like 1.4999999999 onto the intended grid point.
    const double rounded = std::round(value / step) * step;
    if (std::abs(rounded - value) < 1e-9) value = rounded;
    // Avoid "-0".
    if (value == 0.0) value = 0.0;
    grid.push_back(value);
  }
  return grid;
}

std::vector<double> PaperPGrid() { return LinearGrid(-4.0, 4.0, 0.5); }

std::vector<double> PaperAlphaGrid() { return {0.5, 0.7, 0.85, 0.9}; }

std::vector<double> PaperBetaGrid() { return {0.0, 0.25, 0.5, 0.75, 1.0}; }

Result<std::vector<SweepPoint>> SweepP(const CsrGraph& graph,
                                       const std::vector<double>& p_values,
                                       const D2prOptions& base) {
  // Adjacent grid points have nearby stationary vectors, so each solve is
  // warm-started from its predecessor; the fixed point is unique, so the
  // results match a cold sweep (within tolerance) at a fraction of the
  // iterations.
  const std::vector<double> teleport = UniformTeleport(graph.num_nodes());
  const PagerankOptions solver = ToPagerankOptions(base);
  std::vector<SweepPoint> points;
  points.reserve(p_values.size());
  for (double p : p_values) {
    D2prOptions options = base;
    options.p = p;
    D2PR_ASSIGN_OR_RETURN(
        TransitionMatrix transition,
        TransitionMatrix::Build(graph, ToTransitionConfig(options)));
    Result<PagerankResult> result =
        points.empty()
            ? SolvePagerank(graph, transition, teleport, solver)
            : SolvePagerankFrom(graph, transition, teleport,
                                points.back().result.scores, solver);
    if (!result.ok()) return result.status();
    points.push_back({p, std::move(result).value()});
  }
  return points;
}

Result<std::vector<SweepPoint>> SweepAlpha(
    const CsrGraph& graph, const std::vector<double>& alpha_values,
    const D2prOptions& base) {
  std::vector<SweepPoint> points;
  points.reserve(alpha_values.size());
  for (double alpha : alpha_values) {
    D2prOptions options = base;
    options.alpha = alpha;
    D2PR_ASSIGN_OR_RETURN(PagerankResult result, ComputeD2pr(graph, options));
    points.push_back({alpha, std::move(result)});
  }
  return points;
}

Result<std::vector<SweepPoint>> SweepBeta(
    const CsrGraph& graph, const std::vector<double>& beta_values,
    const D2prOptions& base) {
  std::vector<SweepPoint> points;
  points.reserve(beta_values.size());
  for (double beta : beta_values) {
    D2prOptions options = base;
    options.beta = beta;
    D2PR_ASSIGN_OR_RETURN(PagerankResult result, ComputeD2pr(graph, options));
    points.push_back({beta, std::move(result)});
  }
  return points;
}

}  // namespace d2pr
