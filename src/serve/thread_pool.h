// ThreadPool: a fixed set of worker threads draining one FIFO task queue.
//
// The serving runtime's only scheduling primitive. Deliberately minimal —
// no priorities, no work stealing, no task handles: ServingRuntime layers
// futures and completion latches on top of bare Submit(). The pool is
// created once per runtime and lives as long as it does; destruction is a
// clean shutdown that finishes every task already submitted (so a batch
// in flight always completes) before joining the workers.

#ifndef D2PR_SERVE_THREAD_POOL_H_
#define D2PR_SERVE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace d2pr {

/// \brief Fixed-size worker pool with a FIFO work queue.
///
/// Submit() is thread-safe and never blocks on task execution. Tasks run
/// in submission order relative to queue pop, on whichever worker frees
/// up first; callers needing ordering between tasks must chain them into
/// one task (as ServingRuntime does for warm-start trajectories).
///
/// Exception safety: a task that throws is caught and logged by the
/// worker, which then continues draining the queue — one bad task can
/// neither kill a worker nor wedge the drain-at-destruction. Tasks that
/// need their failures observed must surface them through their own
/// channel (Status results, promises); the pool treats a throw as a bug
/// being contained, not a result being delivered.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (a requested 0 is clamped to 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue — every submitted task runs — then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. Must not be called
  /// during or after destruction.
  void Submit(std::function<void()> task);

  size_t num_threads() const { return workers_.size(); }

  /// Tasks submitted but not yet picked up by a worker. A gauge, not a
  /// cumulative counter: the admission-control layer (net/server.h) sheds
  /// load once this crosses its bound. Exact under concurrent Submit —
  /// each task is counted from the instant Submit enqueues it until a
  /// worker dequeues it.
  int64_t queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  /// Workers currently inside a task (between dequeue and task return,
  /// including a task that throws). queue_depth() + busy_workers() is the
  /// pool's total outstanding work at a snapshot.
  int64_t busy_workers() const {
    return busy_workers_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;

  std::atomic<int64_t> queue_depth_{0};
  std::atomic<int64_t> busy_workers_{0};

  std::vector<std::thread> workers_;
};

}  // namespace d2pr

#endif  // D2PR_SERVE_THREAD_POOL_H_
