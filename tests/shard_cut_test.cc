// Shard-cut file correctness: a saved cut must load back as exactly the
// PartitionShard the partitioner would build (field for field, across
// both schemes and shard counts), the slice built from a cut must be
// bitwise the slice the whole-graph path builds, and every way a cut
// file can lie — bad magic, future version, truncation at any section
// boundary, bit flips in any section, structurally wrong payloads that
// checksum cleanly — must be rejected with a clear error, never trusted
// into a wrong solve.

#include "graph/shard_cut.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/rng.h"
#include "core/transition.h"
#include "core/transition_slices.h"
#include "datagen/classic_generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_fingerprint.h"
#include "graph/partition.h"

namespace d2pr {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/d2pr_cut_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Directed graph with dangling nodes and uneven degrees, so every
/// section of the cut (dangling list included) is non-trivial.
CsrGraph DirectedGraphWithDangling(NodeId nodes, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder(nodes, GraphKind::kDirected, /*weighted=*/false);
  for (NodeId v = 0; v < nodes; ++v) {
    if (v % 7 == 3) continue;  // dangling
    const int degree = 1 + static_cast<int>(rng.Next() % 5);
    for (int d = 0; d < degree; ++d) {
      const NodeId t = static_cast<NodeId>(rng.Next() % nodes);
      if (t != v) EXPECT_TRUE(builder.AddEdge(v, t).ok());
    }
  }
  auto graph = builder.Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

CsrGraph WeightedDirectedGraph(NodeId nodes, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder(nodes, GraphKind::kDirected, /*weighted=*/true);
  for (NodeId v = 0; v < nodes; ++v) {
    if (v % 9 == 5) continue;  // dangling
    const int degree = 1 + static_cast<int>(rng.Next() % 4);
    for (int d = 0; d < degree; ++d) {
      const NodeId t = static_cast<NodeId>(rng.Next() % nodes);
      const double w = 0.25 + static_cast<double>(rng.Next() % 100) / 16.0;
      if (t != v) EXPECT_TRUE(builder.AddEdge(v, t, w).ok());
    }
  }
  auto graph = builder.Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

GraphPartition BuildPartition(const CsrGraph& graph, PartitionScheme scheme,
                              size_t shards) {
  auto partition = GraphPartition::Build(
      graph, {.scheme = scheme, .num_shards = shards, .build_out_csr = true});
  EXPECT_TRUE(partition.ok()) << partition.status().ToString();
  return std::move(partition).value();
}

std::string SaveCut(const CsrGraph& graph, const GraphPartition& partition,
                    size_t shard_id, const std::string& dir) {
  const std::string path =
      dir + "/" + ShardCutFileName(GraphFingerprint(graph),
                                   partition.scheme(),
                                   partition.num_shards(), shard_id);
  const Status saved = SaveShardCut(graph, partition, shard_id, path);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  return path;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::vector<char> chars{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
  return {chars.begin(), chars.end()};
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

constexpr size_t kHeaderBytes = 200;
constexpr size_t kNumSections = 11;

/// Section byte sizes recomputed from the header's count fields — the
/// same arithmetic the loader uses, so truncation/flip tests can aim at
/// exact section boundaries without hardcoding offsets.
std::vector<size_t> SectionSizes(const std::vector<uint8_t>& bytes) {
  uint64_t counts[6];
  for (size_t i = 0; i < 6; ++i) counts[i] = ReadU64(bytes.data() + 56 + 8 * i);
  const uint64_t owned = counts[0], out_arcs = counts[1], in_arcs = counts[2],
                 dangling = counts[3], boundary = counts[4],
                 ghost_arcs = counts[5];
  const bool weighted = (ReadU32(bytes.data() + 52) & 2) != 0;
  return {static_cast<size_t>((owned + 1) * 8),
          static_cast<size_t>(out_arcs * 4),
          static_cast<size_t>(owned * 8),
          static_cast<size_t>((owned + 1) * 8),
          static_cast<size_t>(in_arcs * 4),
          static_cast<size_t>(in_arcs * 8),
          static_cast<size_t>(dangling * 4),
          static_cast<size_t>(boundary * 4),
          static_cast<size_t>((boundary + 1) * 8),
          static_cast<size_t>(ghost_arcs * 4),
          weighted ? static_cast<size_t>((out_arcs + in_arcs + ghost_arcs) * 8)
                   : 0};
}

/// Recomputes every section checksum and the header checksum after a
/// test mutated payload bytes — the way to forge a file that checksums
/// cleanly but lies structurally.
void FixChecksums(std::vector<uint8_t>* bytes) {
  const std::vector<size_t> sizes = SectionSizes(*bytes);
  const bool weighted = (ReadU32(bytes->data() + 52) & 2) != 0;
  size_t offset = kHeaderBytes;
  for (size_t i = 0; i < kNumSections; ++i) {
    uint64_t checksum = Checksum64(bytes->data() + offset, sizes[i]);
    if (i == 10 && !weighted) checksum = 0;
    std::memcpy(bytes->data() + 104 + i * 8, &checksum, 8);
    offset += sizes[i];
  }
  const uint64_t header = Checksum64(bytes->data(), 192);
  std::memcpy(bytes->data() + 192, &header, 8);
}

void ExpectShardEqual(const PartitionShard& got, const PartitionShard& want) {
  EXPECT_EQ(got.owned, want.owned);
  EXPECT_EQ(got.out_offsets, want.out_offsets);
  EXPECT_EQ(got.out_targets, want.out_targets);
  EXPECT_EQ(got.out_arc_begin, want.out_arc_begin);
  EXPECT_EQ(got.in_offsets, want.in_offsets);
  EXPECT_EQ(got.in_sources, want.in_sources);
  EXPECT_EQ(got.in_arc_index, want.in_arc_index);
  EXPECT_EQ(got.in_interior, want.in_interior);
  EXPECT_EQ(got.boundary_out_arcs, want.boundary_out_arcs);
  EXPECT_EQ(got.boundary_in_arcs, want.boundary_in_arcs);
  EXPECT_EQ(got.dangling_owned, want.dangling_owned);
}

TEST(ShardCutTest, RoundTripMatchesPartitionerAcrossSchemesAndShardCounts) {
  const CsrGraph graph = DirectedGraphWithDangling(233, 71);
  const std::string dir = FreshDir("roundtrip");
  for (PartitionScheme scheme :
       {PartitionScheme::kRange, PartitionScheme::kHash}) {
    for (size_t shards : {1, 2, 4, 8}) {
      SCOPED_TRACE(std::string(PartitionSchemeName(scheme)) + " x " +
                   std::to_string(shards));
      const GraphPartition partition = BuildPartition(graph, scheme, shards);
      for (size_t s = 0; s < shards; ++s) {
        SCOPED_TRACE("shard " + std::to_string(s));
        const std::string path = SaveCut(graph, partition, s, dir);
        auto cut = LoadShardCut(path);
        ASSERT_TRUE(cut.ok()) << cut.status().ToString();

        EXPECT_EQ(cut->meta.graph_fingerprint, GraphFingerprint(graph));
        EXPECT_EQ(cut->meta.num_nodes, graph.num_nodes());
        EXPECT_EQ(cut->meta.num_arcs, graph.num_arcs());
        EXPECT_EQ(cut->meta.scheme, scheme);
        EXPECT_EQ(cut->meta.shard_id, s);
        EXPECT_EQ(cut->meta.num_shards, shards);
        EXPECT_TRUE(cut->meta.directed);
        EXPECT_FALSE(cut->meta.weighted);
        ExpectShardEqual(cut->shard, partition.shard(s));

        // Boundary sources: the distinct non-interior in-CSR sources.
        const PartitionShard& want = partition.shard(s);
        std::vector<NodeId> boundary;
        for (size_t idx = 0; idx < want.in_sources.size(); ++idx) {
          if (!want.in_interior[idx]) boundary.push_back(want.in_sources[idx]);
        }
        std::sort(boundary.begin(), boundary.end());
        boundary.erase(std::unique(boundary.begin(), boundary.end()),
                       boundary.end());
        EXPECT_EQ(cut->boundary_sources, boundary);

        // Ghost rows: each boundary source's full out-row, verbatim.
        ASSERT_EQ(cut->ghost_offsets.size(), boundary.size() + 1);
        for (size_t b = 0; b < boundary.size(); ++b) {
          const auto row = graph.OutNeighbors(boundary[b]);
          const auto begin = static_cast<size_t>(cut->ghost_offsets[b]);
          const auto end = static_cast<size_t>(cut->ghost_offsets[b + 1]);
          ASSERT_EQ(end - begin, row.size());
          EXPECT_TRUE(std::equal(row.begin(), row.end(),
                                 cut->ghost_targets.begin() + begin));
        }
        EXPECT_TRUE(cut->out_weights.empty());
        EXPECT_TRUE(cut->in_weights.empty());
        EXPECT_TRUE(cut->ghost_weights.empty());
      }
    }
  }
}

TEST(ShardCutTest, WeightedRoundTripCarriesAllThreeWeightFamilies) {
  const CsrGraph graph = WeightedDirectedGraph(120, 72);
  const std::string dir = FreshDir("weighted");
  const GraphPartition partition =
      BuildPartition(graph, PartitionScheme::kRange, 4);
  for (size_t s = 0; s < 4; ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    const std::string path = SaveCut(graph, partition, s, dir);
    auto cut = LoadShardCut(path);
    ASSERT_TRUE(cut.ok()) << cut.status().ToString();
    EXPECT_TRUE(cut->meta.weighted);
    ExpectShardEqual(cut->shard, partition.shard(s));

    // Out weights: the owned rows' weights, concatenated.
    const PartitionShard& shard = partition.shard(s);
    std::vector<double> out_weights;
    for (NodeId v : shard.owned) {
      const auto row = graph.OutWeights(v);
      out_weights.insert(out_weights.end(), row.begin(), row.end());
    }
    EXPECT_EQ(cut->out_weights, out_weights);

    // In weights: gathered through the global arc index.
    const auto weights = graph.weights();
    ASSERT_EQ(cut->in_weights.size(), shard.in_arc_index.size());
    for (size_t idx = 0; idx < shard.in_arc_index.size(); ++idx) {
      EXPECT_EQ(cut->in_weights[idx],
                weights[static_cast<size_t>(shard.in_arc_index[idx])]);
    }

    // Ghost weights: each boundary source's row weights, verbatim.
    for (size_t b = 0; b < cut->boundary_sources.size(); ++b) {
      const auto row = graph.OutWeights(cut->boundary_sources[b]);
      const auto begin = static_cast<size_t>(cut->ghost_offsets[b]);
      ASSERT_LE(begin + row.size(), cut->ghost_weights.size());
      EXPECT_TRUE(std::equal(row.begin(), row.end(),
                             cut->ghost_weights.begin() + begin));
    }
  }
}

TEST(ShardCutTest, MetadataPeekMatchesFullLoad) {
  const CsrGraph graph = DirectedGraphWithDangling(90, 73);
  const std::string dir = FreshDir("peek");
  const GraphPartition partition =
      BuildPartition(graph, PartitionScheme::kHash, 2);
  const std::string path = SaveCut(graph, partition, 1, dir);
  auto meta = ReadShardCutMetadata(path);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  auto cut = LoadShardCut(path);
  ASSERT_TRUE(cut.ok());
  EXPECT_EQ(meta->graph_fingerprint, cut->meta.graph_fingerprint);
  EXPECT_EQ(meta->num_nodes, cut->meta.num_nodes);
  EXPECT_EQ(meta->num_arcs, cut->meta.num_arcs);
  EXPECT_EQ(meta->scheme, cut->meta.scheme);
  EXPECT_EQ(meta->shard_id, 1u);
  EXPECT_EQ(meta->num_shards, 2u);
  EXPECT_EQ(meta->directed, cut->meta.directed);
  EXPECT_EQ(meta->weighted, cut->meta.weighted);
}

TEST(ShardCutTest, SliceFromCutIsBitwiseTheWholeGraphSlice) {
  struct Case {
    const char* name;
    CsrGraph graph;
    TransitionConfig config;
  };
  Case cases[] = {
      {"unweighted", DirectedGraphWithDangling(150, 74), {.p = 0.5}},
      {"weighted-blend", WeightedDirectedGraph(130, 75),
       {.p = 0.75, .beta = 0.25}},
      {"negative-p", DirectedGraphWithDangling(110, 76), {.p = -1.25}},
  };
  const std::string dir = FreshDir("sliceparity");
  for (Case& c : cases) {
    for (PartitionScheme scheme :
         {PartitionScheme::kRange, PartitionScheme::kHash}) {
      SCOPED_TRACE(std::string(c.name) + " " + PartitionSchemeName(scheme));
      const size_t shards = 4;
      const GraphPartition partition =
          BuildPartition(c.graph, scheme, shards);
      auto reference = BuildTransitionSlicesLocal(c.graph, partition,
                                                  c.config);
      ASSERT_TRUE(reference.ok()) << reference.status().ToString();
      const std::vector<double> metric = MetricValues(
          c.graph, ResolveMetric(c.graph, c.config.metric));
      for (size_t s = 0; s < shards; ++s) {
        SCOPED_TRACE("shard " + std::to_string(s));
        const std::string path = SaveCut(c.graph, partition, s, dir);
        auto cut = LoadShardCut(path);
        ASSERT_TRUE(cut.ok()) << cut.status().ToString();
        auto slice = BuildShardSliceFromCut(*cut, metric, c.config);
        ASSERT_TRUE(slice.ok()) << slice.status().ToString();
        const std::vector<double>& want = reference->in_probs[s];
        ASSERT_EQ(slice->size(), want.size());
        EXPECT_EQ(std::memcmp(slice->data(), want.data(),
                              want.size() * sizeof(double)),
                  0);
      }
    }
  }
}

TEST(ShardCutTest, SliceFromCutRejectsWrongSizedMetricVector) {
  const CsrGraph graph = DirectedGraphWithDangling(80, 77);
  const std::string dir = FreshDir("badmetric");
  const GraphPartition partition =
      BuildPartition(graph, PartitionScheme::kRange, 2);
  const std::string path = SaveCut(graph, partition, 0, dir);
  auto cut = LoadShardCut(path);
  ASSERT_TRUE(cut.ok());
  const std::vector<double> short_metric(
      static_cast<size_t>(graph.num_nodes()) - 1, 1.0);
  auto slice = BuildShardSliceFromCut(*cut, short_metric, {.p = 0.5});
  ASSERT_FALSE(slice.ok());
  EXPECT_EQ(slice.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardCutTest, SaveRejectsPartitionWithoutOutCsr)
{
  const CsrGraph graph = DirectedGraphWithDangling(60, 78);
  auto partition = GraphPartition::Build(
      graph,
      {.scheme = PartitionScheme::kRange, .num_shards = 2,
       .build_out_csr = false});
  ASSERT_TRUE(partition.ok());
  const std::string dir = FreshDir("nooutcsr");
  const Status saved = SaveShardCut(graph, *partition, 0, dir + "/x.d2psc");
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(saved.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(saved.message().find("out-CSR"), std::string::npos);
}

TEST(ShardCutTest, BadMagicIsRejected) {
  const CsrGraph graph = DirectedGraphWithDangling(70, 79);
  const std::string dir = FreshDir("magic");
  const GraphPartition partition =
      BuildPartition(graph, PartitionScheme::kRange, 2);
  const std::string path = SaveCut(graph, partition, 0, dir);
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  bytes[3] ^= 0xff;
  WriteFileBytes(path, bytes);
  for (const auto& result :
       {LoadShardCut(path).status(), ReadShardCutMetadata(path).status()}) {
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.code(), StatusCode::kIoError);
    EXPECT_NE(result.message().find("magic"), std::string::npos);
  }
}

TEST(ShardCutTest, FutureFormatVersionIsRejected) {
  const CsrGraph graph = DirectedGraphWithDangling(70, 80);
  const std::string dir = FreshDir("version");
  const GraphPartition partition =
      BuildPartition(graph, PartitionScheme::kRange, 2);
  const std::string path = SaveCut(graph, partition, 0, dir);
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  const uint32_t future = 2;
  std::memcpy(bytes.data() + 8, &future, sizeof(future));
  // The version gate must fire before the header checksum so old builds
  // report "version too new", not "corrupt" — keep the checksum valid.
  FixChecksums(&bytes);
  WriteFileBytes(path, bytes);
  const Status loaded = LoadShardCut(path).status();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.message().find("version"), std::string::npos);
}

TEST(ShardCutTest, HeaderBitFlipIsRejectedByHeaderChecksum) {
  const CsrGraph graph = DirectedGraphWithDangling(70, 81);
  const std::string dir = FreshDir("headerflip");
  const GraphPartition partition =
      BuildPartition(graph, PartitionScheme::kHash, 2);
  const std::string path = SaveCut(graph, partition, 1, dir);
  const std::vector<uint8_t> pristine = ReadFileBytes(path);
  // Every interesting header field: fingerprint, node count, scheme,
  // shard id, shard count, a section count.
  for (const size_t offset : {16u, 24u, 40u, 44u, 48u, 56u}) {
    SCOPED_TRACE("flip at byte " + std::to_string(offset));
    std::vector<uint8_t> bytes = pristine;
    bytes[offset] ^= 0x01;
    WriteFileBytes(path, bytes);
    const Status loaded = LoadShardCut(path).status();
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), StatusCode::kIoError);
    EXPECT_NE(loaded.message().find("checksum"), std::string::npos);
  }
}

TEST(ShardCutTest, TruncationAtEverySectionBoundaryIsRejected) {
  const CsrGraph graph = WeightedDirectedGraph(90, 82);
  const std::string dir = FreshDir("truncate");
  const GraphPartition partition =
      BuildPartition(graph, PartitionScheme::kRange, 3);
  const std::string path = SaveCut(graph, partition, 1, dir);
  const std::vector<uint8_t> pristine = ReadFileBytes(path);
  const std::vector<size_t> sizes = SectionSizes(pristine);

  std::vector<size_t> cut_points = {0, 1, kHeaderBytes - 1, kHeaderBytes};
  size_t offset = kHeaderBytes;
  for (size_t size : sizes) {
    offset += size;
    cut_points.push_back(offset);      // exactly at each section boundary
    if (size > 0) cut_points.push_back(offset - 1);  // one byte short
  }

  for (const size_t keep : cut_points) {
    if (keep >= pristine.size()) continue;  // the full file is valid
    SCOPED_TRACE("truncated to " + std::to_string(keep) + " bytes");
    std::vector<uint8_t> bytes = pristine;
    bytes.resize(keep);
    WriteFileBytes(path, bytes);
    const Status loaded = LoadShardCut(path).status();
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), StatusCode::kIoError);
  }

  // And one byte too many is just as dead: the size check is exact.
  std::vector<uint8_t> bytes = pristine;
  bytes.push_back(0);
  WriteFileBytes(path, bytes);
  const Status loaded = LoadShardCut(path).status();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), StatusCode::kIoError);
  EXPECT_NE(loaded.message().find("oversized"), std::string::npos);
}

TEST(ShardCutTest, PayloadBitFlipInEverySectionIsRejected) {
  const CsrGraph graph = WeightedDirectedGraph(90, 83);
  const std::string dir = FreshDir("bitflip");
  const GraphPartition partition =
      BuildPartition(graph, PartitionScheme::kRange, 3);
  const std::string path = SaveCut(graph, partition, 0, dir);
  const std::vector<uint8_t> pristine = ReadFileBytes(path);
  const std::vector<size_t> sizes = SectionSizes(pristine);

  size_t offset = kHeaderBytes;
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (sizes[i] == 0) {
      continue;  // an empty section has no byte to flip
    }
    SCOPED_TRACE("flip in section " + std::to_string(i));
    std::vector<uint8_t> bytes = pristine;
    bytes[offset + sizes[i] / 2] ^= 0x20;
    WriteFileBytes(path, bytes);
    const Status loaded = LoadShardCut(path).status();
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), StatusCode::kIoError);
    EXPECT_NE(loaded.message().find("checksum"), std::string::npos)
        << loaded.ToString();
    offset += sizes[i];
  }
}

// A file whose checksums are VALID but whose payload lies about the
// shard's structure must still be rejected — checksums catch rot, the
// structural pass catches forgery and writer bugs.
TEST(ShardCutTest, StructurallyLyingPayloadsAreRejectedDespiteValidChecksums) {
  const CsrGraph graph = DirectedGraphWithDangling(90, 84);
  const std::string dir = FreshDir("lies");
  const GraphPartition partition =
      BuildPartition(graph, PartitionScheme::kRange, 3);
  const std::string path = SaveCut(graph, partition, 1, dir);
  const std::vector<uint8_t> pristine = ReadFileBytes(path);
  const std::vector<size_t> sizes = SectionSizes(pristine);
  std::vector<size_t> starts(sizes.size());
  size_t offset = kHeaderBytes;
  for (size_t i = 0; i < sizes.size(); ++i) {
    starts[i] = offset;
    offset += sizes[i];
  }

  struct Lie {
    const char* name;
    size_t section;
    const char* expect;  // substring of the rejection message
  };
  const Lie lies[] = {
      {"out-target out of range", 1, "ascending in-range"},
      {"in-source out of range", 4, "ascending in-range"},
      {"in-arc index out of range", 5, "out of range"},
      {"boundary list disagrees", 7, "disagrees"},
      {"ghost row not ascending", 9, "ghost row"},
  };
  for (const Lie& lie : lies) {
    SCOPED_TRACE(lie.name);
    ASSERT_GT(sizes[lie.section], 0u);
    std::vector<uint8_t> bytes = pristine;
    // Overwrite the section's first element with an implausibly large
    // value (still within the type's width), then make the checksums
    // agree with the lie.
    std::memset(bytes.data() + starts[lie.section], 0x7f,
                lie.section == 5 ? 8 : 4);
    FixChecksums(&bytes);
    WriteFileBytes(path, bytes);
    const Status loaded = LoadShardCut(path).status();
    ASSERT_FALSE(loaded.ok()) << lie.name;
    EXPECT_EQ(loaded.code(), StatusCode::kIoError);
    EXPECT_NE(loaded.message().find(lie.expect), std::string::npos)
        << loaded.ToString();
  }

  // A dangling list naming a non-empty row (first dangling entry swapped
  // for an owned node with arcs) — checksums fixed, still rejected.
  {
    ASSERT_GT(sizes[6], 0u);
    std::vector<uint8_t> bytes = pristine;
    const PartitionShard& shard = partition.shard(1);
    NodeId with_arcs = -1;
    for (size_t k = 0; k < shard.owned.size(); ++k) {
      if (shard.out_offsets[k + 1] > shard.out_offsets[k]) {
        with_arcs = shard.owned[k];
        break;
      }
    }
    ASSERT_GE(with_arcs, 0);
    std::memcpy(bytes.data() + starts[6], &with_arcs, 4);
    FixChecksums(&bytes);
    WriteFileBytes(path, bytes);
    const Status loaded = LoadShardCut(path).status();
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), StatusCode::kIoError);
    EXPECT_NE(loaded.message().find("dangling"), std::string::npos)
        << loaded.ToString();
  }
}

TEST(ShardCutTest, MissingFileIsIoError) {
  const Status loaded =
      LoadShardCut(testing::TempDir() + "/no_such_cut.d2psc").status();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), StatusCode::kIoError);
}

TEST(ShardCutTest, FileNameIsCanonical) {
  EXPECT_EQ(ShardCutFileName(0xabcdef0123456789ull, PartitionScheme::kRange,
                             4, 2),
            "cut-abcdef0123456789-range-s2of4.d2psc");
  EXPECT_EQ(ShardCutFileName(0x1, PartitionScheme::kHash, 2, 0),
            "cut-0000000000000001-hash-s0of2.d2psc");
}

}  // namespace
}  // namespace d2pr
