// Minimal command-line flag parsing for the CLI tools.
//
// Supports "--name=value", "--name value", and bare boolean "--name".
// Unrecognized positional arguments are collected in order.

#ifndef D2PR_COMMON_FLAGS_H_
#define D2PR_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace d2pr {

/// \brief Parsed command line.
class Flags {
 public:
  /// Parses argv (excluding argv[0]). Returns InvalidArgument on malformed
  /// input such as "--=x".
  static Result<Flags> Parse(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  bool Has(const std::string& name) const;

  /// String value of --name, or `fallback` when absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;

  /// Numeric accessors; return InvalidArgument when present but
  /// unparseable.
  Result<double> GetDouble(const std::string& name, double fallback) const;
  Result<int64_t> GetInt(const std::string& name, int64_t fallback) const;

  /// Boolean: absent -> fallback; bare flag or "true"/"1" -> true;
  /// "false"/"0" -> false.
  Result<bool> GetBool(const std::string& name, bool fallback) const;

  /// Arguments that were not flags, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of all flags seen (for unknown-flag diagnostics).
  std::vector<std::string> FlagNames() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace d2pr

#endif  // D2PR_COMMON_FLAGS_H_
