// Correlation coefficients: Spearman's rho (the paper's measure, §4.2),
// Pearson's r, and Kendall's tau-b.

#ifndef D2PR_STATS_CORRELATION_H_
#define D2PR_STATS_CORRELATION_H_

#include <span>

namespace d2pr {

/// \brief Pearson product-moment correlation of (x, y).
///
/// Returns 0 when either vector is constant (undefined correlation) or the
/// vectors are shorter than 2; sizes must match.
double PearsonCorrelation(std::span<const double> x,
                          std::span<const double> y);

/// \brief Spearman's rank correlation: Pearson correlation of the
/// average-tie ranks of x and y. This is the measure the paper uses to
/// compare D2PR rankings with application-specific significances.
double SpearmanCorrelation(std::span<const double> x,
                           std::span<const double> y);

/// \brief Kendall's tau-b (tie-adjusted), computed in O(n log n) via a
/// merge-sort inversion count. Included as a robustness cross-check on the
/// Spearman-based findings.
double KendallTauB(std::span<const double> x, std::span<const double> y);

}  // namespace d2pr

#endif  // D2PR_STATS_CORRELATION_H_
