#include "api/rank_request.h"

#include <cmath>

#include "common/string_util.h"

namespace d2pr {

Status ValidateRankRequestParameters(const RankRequest& request) {
  // Mirror the transition builder's parameter checks before any cache is
  // touched: the cache key folds beta to 0 on unweighted graphs, which
  // must not let an out-of-range beta hit a cached matrix instead of
  // erroring.
  if (!std::isfinite(request.p)) {
    return Status::InvalidArgument(
        StrCat("de-coupling weight p must be finite, got ", request.p));
  }
  if (!(request.beta >= 0.0 && request.beta <= 1.0)) {  // rejects NaN too
    return Status::InvalidArgument(
        StrCat("beta must lie in [0, 1], got ", request.beta));
  }
  // Pre-check the solver knobs too (the solvers re-validate; messages
  // mirror theirs): an invalid request must not pay an O(|E|) transition
  // build nor insert an entry that evicts a hot one.
  if (!(request.alpha >= 0.0) || request.alpha >= 1.0) {
    return Status::InvalidArgument(
        StrCat("alpha must lie in [0, 1), got ", request.alpha));
  }
  if (request.method == SolverMethod::kForwardPush) {
    if (!(request.push_epsilon > 0.0)) {
      return Status::InvalidArgument("epsilon must be positive");
    }
    if (request.dangling == DanglingPolicy::kSelfLoop) {
      return Status::InvalidArgument(
          "forward push does not support DanglingPolicy::kSelfLoop");
    }
  } else {
    if (!(request.tolerance > 0.0)) {
      return Status::InvalidArgument(
          StrCat("tolerance must be positive, got ", request.tolerance));
    }
    if (request.max_iterations < 1) {
      return Status::InvalidArgument(
          StrCat("max_iterations must be >= 1, got ",
                 request.max_iterations));
    }
  }
  return Status::OK();
}

}  // namespace d2pr
