// Restart parity: an engine that loads its transitions from the
// persistent store must be indistinguishable — bit for bit — from the
// engine that built them. Engine A solves and persists; engine B
// "restarts" on the same cache_dir and must reproduce every score,
// iteration count, and convergence flag exactly, with EngineStats proving
// that not a single transition Build ran after the restart. The same
// holds for an EngineRouter whose shards share one cache_dir.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"
#include "common/rng.h"
#include "datagen/classic_generators.h"
#include "graph/graph_builder.h"
#include "serve/engine_router.h"

namespace d2pr {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/d2pr_persist_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

size_t StoreFileCount(const std::string& dir) {
  if (!std::filesystem::exists(dir)) return 0;
  size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".d2ptm") ++count;
  }
  return count;
}

// A request mix covering all three solvers, several transition keys, and
// both global and personalized teleportation.
std::vector<RankRequest> ParityRequests() {
  std::vector<RankRequest> requests;
  for (const double p : {-0.5, 0.0, 0.75}) {
    RankRequest power;
    power.p = p;
    power.tolerance = 1e-11;
    requests.push_back(power);

    RankRequest gs = power;
    gs.method = SolverMethod::kGaussSeidel;
    requests.push_back(gs);

    RankRequest push = power;
    push.method = SolverMethod::kForwardPush;
    push.push_epsilon = 1e-7;
    push.seeds = {1, 7};
    requests.push_back(push);
  }
  return requests;
}

void ExpectBitIdentical(const RankResponse& restarted,
                        const RankResponse& reference) {
  ASSERT_EQ(restarted.scores.size(), reference.scores.size());
  for (size_t i = 0; i < reference.scores.size(); ++i) {
    // Exact double equality on purpose: the loaded matrix is the same
    // bytes, so every solver must walk the same float path.
    ASSERT_EQ(restarted.scores[i], reference.scores[i]) << "score " << i;
  }
  EXPECT_EQ(restarted.iterations, reference.iterations);
  EXPECT_EQ(restarted.pushes, reference.pushes);
  EXPECT_EQ(restarted.converged, reference.converged);
  EXPECT_EQ(restarted.residual, reference.residual);
  EXPECT_EQ(restarted.warm_start_hit, reference.warm_start_hit);
}

TEST(PersistParityTest, RestartReproducesAllSolversBitIdentically) {
  Rng rng(31);
  auto graph = BarabasiAlbert(300, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::string dir = FreshDir("solvers");
  const std::vector<RankRequest> requests = ParityRequests();

  EngineOptions options;
  options.cache_dir = dir;
  std::vector<RankResponse> reference;
  {
    D2prEngine engine_a = D2prEngine::Borrowing(*graph, options);
    for (const RankRequest& request : requests) {
      auto response = engine_a.Rank(request);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      reference.push_back(std::move(response).value());
    }
    EXPECT_EQ(engine_a.stats().transition_builds, 3);  // 3 distinct keys
    EXPECT_EQ(engine_a.stats().transition_store_saves, 3);
  }  // engine A "process" exits

  D2prEngine engine_b = D2prEngine::Borrowing(*graph, options);
  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "request " << i);
    auto response = engine_b.Rank(requests[i]);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ExpectBitIdentical(*response, reference[i]);
    EXPECT_FALSE(reference[i].transition_store_hit);
    if (!response->transition_cache_hit) {
      EXPECT_TRUE(response->transition_store_hit);
    }
  }
  const EngineStats stats = engine_b.stats();
  EXPECT_EQ(stats.transition_builds, 0) << "restart must never rebuild";
  EXPECT_EQ(stats.transition_store_loads, 3);
}

TEST(PersistParityTest, RestartParityOnWeightedBlendedGraph) {
  GraphBuilder builder(40, GraphKind::kDirected, /*weighted=*/true);
  Rng rng(32);
  for (int e = 0; e < 160; ++e) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(0, 39));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(0, 39));
    ASSERT_TRUE(builder.AddEdge(u, v, rng.Uniform() + 0.25).ok());
  }
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  const std::string dir = FreshDir("weighted");

  RankRequest request;
  request.p = 1.25;
  request.beta = 0.4;
  request.tolerance = 1e-11;

  EngineOptions options;
  options.cache_dir = dir;
  RankResponse reference = [&] {
    D2prEngine engine_a = D2prEngine::Borrowing(*graph, options);
    auto response = engine_a.Rank(request);
    EXPECT_TRUE(response.ok());
    return std::move(response).value();
  }();

  D2prEngine engine_b = D2prEngine::Borrowing(*graph, options);
  auto restarted = engine_b.Rank(request);
  ASSERT_TRUE(restarted.ok());
  ExpectBitIdentical(*restarted, reference);
  EXPECT_EQ(engine_b.stats().transition_builds, 0);
  EXPECT_EQ(engine_b.stats().transition_store_loads, 1);
}

// The store must refuse to cross graphs: a restart on a *different* graph
// with the same cache_dir rebuilds (correctly) instead of loading.
TEST(PersistParityTest, DifferentGraphNeverReusesTheStore) {
  Rng rng(33);
  auto graph_a = ErdosRenyi(80, 240, &rng);
  auto graph_b = ErdosRenyi(80, 240, &rng);  // same sizes, different arcs
  ASSERT_TRUE(graph_a.ok());
  ASSERT_TRUE(graph_b.ok());
  const std::string dir = FreshDir("crossgraph");

  RankRequest request;
  request.p = 0.5;
  EngineOptions options;
  options.cache_dir = dir;
  {
    D2prEngine engine_a = D2prEngine::Borrowing(*graph_a, options);
    ASSERT_TRUE(engine_a.Rank(request).ok());
  }
  D2prEngine engine_b = D2prEngine::Borrowing(*graph_b, options);
  ASSERT_TRUE(engine_b.Rank(request).ok());
  EXPECT_EQ(engine_b.stats().transition_store_loads, 0);
  EXPECT_EQ(engine_b.stats().transition_builds, 1);
}

// A router fleet restarting over a shared cache_dir: every shard maps the
// persisted matrices, zero builds fleet-wide, and the batch output stays
// bit-identical to a persistence-free single engine.
TEST(PersistParityTest, RouterSharedCacheDirRestartsWithZeroBuilds) {
  Rng rng(34);
  auto graph = BarabasiAlbert(250, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::string dir = FreshDir("router");

  std::vector<RankRequest> batch;
  for (int i = 0; i < 24; ++i) {
    RankRequest request;
    request.p = (i % 3) * 0.5;
    request.method =
        (i % 2) ? SolverMethod::kGaussSeidel : SolverMethod::kPower;
    request.tolerance = 1e-11;
    batch.push_back(request);
  }

  // Reference: plain single engine, no persistence anywhere.
  D2prEngine reference_engine = D2prEngine::Borrowing(*graph);
  auto reference = reference_engine.RankBatch(batch);
  ASSERT_TRUE(reference.ok());

  // Warm the store (a previous serving process).
  EngineOptions persist_options;
  persist_options.cache_dir = dir;
  {
    D2prEngine warmer = D2prEngine::Borrowing(*graph, persist_options);
    for (const RankRequest& request : batch) {
      ASSERT_TRUE(warmer.Rank(request).ok());
    }
  }
  EXPECT_EQ(StoreFileCount(dir), 3u);

  for (const size_t num_shards : {2u, 4u}) {
    SCOPED_TRACE(testing::Message() << num_shards << " shards");
    RouterOptions router_options;
    router_options.num_shards = num_shards;
    router_options.engine_options = persist_options;
    EngineRouter router(reference_engine.graph_ptr(), router_options);
    auto routed = router.RankBatch(batch);
    ASSERT_TRUE(routed.ok());
    ASSERT_EQ(routed->size(), reference->size());
    for (size_t i = 0; i < reference->size(); ++i) {
      SCOPED_TRACE(testing::Message() << "request " << i);
      ExpectBitIdentical((*routed)[i], (*reference)[i]);
    }
    int64_t fleet_builds = 0;
    int64_t fleet_loads = 0;
    for (size_t s = 0; s < router.num_shards(); ++s) {
      fleet_builds += router.shard(s).stats().transition_builds;
      fleet_loads += router.shard(s).stats().transition_store_loads;
    }
    EXPECT_EQ(fleet_builds, 0) << "restarted fleet must never rebuild";
    EXPECT_GE(fleet_loads, 3);  // every shard maps what it needs
  }
}

TEST(PersistParityTest, LazyPolicySpillsOnFlushAndDestruction) {
  Rng rng(35);
  auto graph = ErdosRenyi(60, 180, &rng);
  ASSERT_TRUE(graph.ok());
  const std::string dir = FreshDir("lazy");

  EngineOptions options;
  options.cache_dir = dir;
  options.persist_policy = PersistPolicy::kLazy;

  RankRequest request;
  request.p = 0.5;
  {
    D2prEngine engine = D2prEngine::Borrowing(*graph, options);
    ASSERT_TRUE(engine.Rank(request).ok());
    EXPECT_EQ(StoreFileCount(dir), 0u) << "lazy must not write on build";
    ASSERT_TRUE(engine.PersistCachedTransitions().ok());
    EXPECT_EQ(StoreFileCount(dir), 1u);
    EXPECT_EQ(engine.stats().transition_store_saves, 1);

    // Flushing again is idempotent — already-persisted keys are skipped.
    ASSERT_TRUE(engine.PersistCachedTransitions().ok());
    EXPECT_EQ(engine.stats().transition_store_saves, 1);

    request.p = 1.0;
    ASSERT_TRUE(engine.Rank(request).ok());
    EXPECT_EQ(StoreFileCount(dir), 1u);
  }  // destructor flushes the second key
  EXPECT_EQ(StoreFileCount(dir), 2u);

  D2prEngine restarted = D2prEngine::Borrowing(*graph, options);
  request.p = 0.5;
  ASSERT_TRUE(restarted.Rank(request).ok());
  request.p = 1.0;
  ASSERT_TRUE(restarted.Rank(request).ok());
  EXPECT_EQ(restarted.stats().transition_builds, 0);
  EXPECT_EQ(restarted.stats().transition_store_loads, 2);
}

// A corrupt store file forces a rebuild; a lazy flush must then replace
// the corrupt file (not skip it because "a file exists"), so the next
// restart loads cleanly again.
TEST(PersistParityTest, LazyFlushReplacesCorruptStoreFile) {
  Rng rng(38);
  auto graph = ErdosRenyi(60, 180, &rng);
  ASSERT_TRUE(graph.ok());
  const std::string dir = FreshDir("lazyheal");

  RankRequest request;
  request.p = 0.5;
  EngineOptions options;
  options.cache_dir = dir;
  {
    D2prEngine warmer = D2prEngine::Borrowing(*graph, options);
    ASSERT_TRUE(warmer.Rank(request).ok());
  }

  // Corrupt the persisted payload.
  std::string path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    path = entry.path().string();
  }
  ASSERT_FALSE(path.empty());
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(100);
    file.put('\x7f');
  }

  options.persist_policy = PersistPolicy::kLazy;
  {
    D2prEngine engine = D2prEngine::Borrowing(*graph, options);
    ASSERT_TRUE(engine.Rank(request).ok());
    EXPECT_EQ(engine.stats().transition_builds, 1) << "corrupt file rebuilt";
    EXPECT_EQ(engine.stats().transition_store_loads, 0);
  }  // destructor flush must overwrite the corrupt file

  D2prEngine healed = D2prEngine::Borrowing(*graph, options);
  ASSERT_TRUE(healed.Rank(request).ok());
  EXPECT_EQ(healed.stats().transition_store_loads, 1);
  EXPECT_EQ(healed.stats().transition_builds, 0);
}

TEST(PersistParityTest, ReadOnlyModeNeverWrites) {
  Rng rng(36);
  auto graph = ErdosRenyi(60, 180, &rng);
  ASSERT_TRUE(graph.ok());
  const std::string dir = FreshDir("readonly");

  EngineOptions options;
  options.cache_dir = dir;
  options.persist_mode = PersistMode::kReadOnly;
  D2prEngine engine = D2prEngine::Borrowing(*graph, options);
  RankRequest request;
  request.p = 0.5;
  ASSERT_TRUE(engine.Rank(request).ok());
  EXPECT_EQ(StoreFileCount(dir), 0u);
  EXPECT_EQ(engine.stats().transition_store_saves, 0);
  EXPECT_FALSE(engine.PersistCachedTransitions().ok());
}

TEST(PersistParityTest, WriteOnlyModeNeverLoads) {
  Rng rng(37);
  auto graph = ErdosRenyi(60, 180, &rng);
  ASSERT_TRUE(graph.ok());
  const std::string dir = FreshDir("writeonly");

  RankRequest request;
  request.p = 0.5;
  EngineOptions options;
  options.cache_dir = dir;
  {
    D2prEngine warmer = D2prEngine::Borrowing(*graph, options);
    ASSERT_TRUE(warmer.Rank(request).ok());
  }

  options.persist_mode = PersistMode::kWriteOnly;
  D2prEngine engine = D2prEngine::Borrowing(*graph, options);
  ASSERT_TRUE(engine.Rank(request).ok());
  EXPECT_EQ(engine.stats().transition_store_loads, 0);
  EXPECT_EQ(engine.stats().transition_builds, 1);
}

}  // namespace
}  // namespace d2pr
