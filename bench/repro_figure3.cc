// Figure 3, application Group B: author-author and movie-movie graphs,
// where conventional PageRank (p = 0) is already the right measure. Paper
// shape: peak at p = 0, quick deterioration once p > 0.5, and a drop for
// p < 0 explained by the low neighbor-degree spread (Table 3).

#include "datagen/dataset_registry.h"
#include "repro_common.h"

int main() {
  return d2pr::bench::RunGroupPSweepFigure(
      d2pr::ApplicationGroup::kConventionalIdeal,
      "Figure 3: correlation of D2PR ranks and node significance (Group B)",
      "Figure 3(a)-(b): unweighted graphs, alpha = 0.85, p in [-4, 4]",
      "figure3");
}
