// Fundamental identifier types shared by all graph components.

#ifndef D2PR_GRAPH_TYPES_H_
#define D2PR_GRAPH_TYPES_H_

#include <cstdint>

namespace d2pr {

/// Node identifier: dense, zero-based. 32 bits covers the paper's graphs
/// (max 191,602 nodes) with three orders of magnitude of headroom.
using NodeId = int32_t;

/// Index into edge arrays. 64 bits: projections can produce > 2^31 arcs.
using EdgeIndex = int64_t;

/// Whether a graph's arcs are one-directional.
enum class GraphKind { kUndirected, kDirected };

}  // namespace d2pr

#endif  // D2PR_GRAPH_TYPES_H_
