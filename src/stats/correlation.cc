#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "stats/ranking.h"

namespace d2pr {

double PearsonCorrelation(std::span<const double> x,
                          std::span<const double> y) {
  D2PR_CHECK_EQ(x.size(), y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  double mean_x = 0.0, mean_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double SpearmanCorrelation(std::span<const double> x,
                           std::span<const double> y) {
  D2PR_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  const std::vector<double> rx = AverageRanks(x, RankOrder::kAscending);
  const std::vector<double> ry = AverageRanks(y, RankOrder::kAscending);
  return PearsonCorrelation(rx, ry);
}

namespace {

// Counts inversions in `values` by index-array merge sort (iterative).
int64_t CountInversions(std::vector<double>* values) {
  const size_t n = values->size();
  std::vector<double> buffer(n);
  int64_t inversions = 0;
  for (size_t width = 1; width < n; width *= 2) {
    for (size_t lo = 0; lo + width < n; lo += 2 * width) {
      const size_t mid = lo + width;
      const size_t hi = std::min(lo + 2 * width, n);
      size_t a = lo, b = mid, out = lo;
      while (a < mid && b < hi) {
        if ((*values)[b] < (*values)[a]) {
          inversions += static_cast<int64_t>(mid - a);
          buffer[out++] = (*values)[b++];
        } else {
          buffer[out++] = (*values)[a++];
        }
      }
      while (a < mid) buffer[out++] = (*values)[a++];
      while (b < hi) buffer[out++] = (*values)[b++];
      std::copy(buffer.begin() + static_cast<int64_t>(lo),
                buffer.begin() + static_cast<int64_t>(hi),
                values->begin() + static_cast<int64_t>(lo));
    }
  }
  return inversions;
}

// Sum over tie groups of t*(t-1)/2 in a sorted vector.
int64_t TiePairs(std::vector<double> sorted_values) {
  std::sort(sorted_values.begin(), sorted_values.end());
  int64_t pairs = 0;
  size_t i = 0;
  while (i < sorted_values.size()) {
    size_t j = i;
    while (j + 1 < sorted_values.size() &&
           sorted_values[j + 1] == sorted_values[i]) {
      ++j;
    }
    const int64_t t = static_cast<int64_t>(j - i + 1);
    pairs += t * (t - 1) / 2;
    i = j + 1;
  }
  return pairs;
}

}  // namespace

double KendallTauB(std::span<const double> x, std::span<const double> y) {
  D2PR_CHECK_EQ(x.size(), y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  const int64_t total_pairs = static_cast<int64_t>(n) *
                              static_cast<int64_t>(n - 1) / 2;

  // Sort by x (ties broken by y); then discordant pairs among x-distinct
  // pairs are inversions of the y sequence.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    if (x[a] != x[b]) return x[a] < x[b];
    return y[a] < y[b];
  });

  // Joint ties (same x and same y) and x-ties.
  int64_t ties_xy = 0;
  {
    size_t i = 0;
    while (i < n) {
      size_t j = i;
      while (j + 1 < n && x[idx[j + 1]] == x[idx[i]] &&
             y[idx[j + 1]] == y[idx[i]]) {
        ++j;
      }
      const int64_t t = static_cast<int64_t>(j - i + 1);
      ties_xy += t * (t - 1) / 2;
      i = j + 1;
    }
  }
  const int64_t ties_x = TiePairs(std::vector<double>(x.begin(), x.end()));
  const int64_t ties_y = TiePairs(std::vector<double>(y.begin(), y.end()));

  std::vector<double> y_sequence(n);
  for (size_t i = 0; i < n; ++i) y_sequence[i] = y[idx[i]];
  const int64_t discordant = CountInversions(&y_sequence);

  // Pairs tied in x are never discordant under this sort (y ascending
  // within x groups), so `discordant` counts only x-distinct pairs.
  const int64_t concordant =
      total_pairs - discordant - ties_x - ties_y + ties_xy;
  const double denom_x = static_cast<double>(total_pairs - ties_x);
  const double denom_y = static_cast<double>(total_pairs - ties_y);
  if (denom_x <= 0.0 || denom_y <= 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) /
         std::sqrt(denom_x * denom_y);
}

}  // namespace d2pr
