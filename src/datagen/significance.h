// Application-specific node significance models (paper §4.1.1).
//
// Each of the paper's eight applications defines "significance" from
// external evidence. These models generate the analogous evidence from a
// world's latent state:
//
//   application            paper's significance          model here
//   -------------------    --------------------------    ------------------
//   actor-actor            avg rating of movies acted    AvgVenueQuality
//   author-author          avg citations of papers       AvgVenueSignificance
//                                                        over citations
//   movie-movie            avg user rating (MovieLens)   VenueRating (+size
//                                                        bonus, crowd noise)
//   product-product        avg commenter rating          VenueRating with
//                                                        negative size slope
//   article-article        citation count                SizeScaledCounts
//   artist-artist          play count                    SizeScaledCounts
//   commenter-commenter    trusts received               EffortDilutedTrust
//   listener-listener      total listening activity      (see social_graph)

#ifndef D2PR_DATAGEN_SIGNIFICANCE_H_
#define D2PR_DATAGEN_SIGNIFICANCE_H_

#include <vector>

#include "common/rng.h"
#include "datagen/bipartite_world.h"

namespace d2pr {

/// \brief Member-side: mean quality of the venues a member joined, plus
/// Gaussian observation noise. Members with no venues get their own latent
/// quality (they exist but have no public record).
///
/// Models "average user rating of the movies an actor played in".
std::vector<double> AvgVenueQualitySignificance(const BipartiteWorld& world,
                                                double noise_sigma, Rng* rng);

/// \brief Member-side: mean of a per-venue significance vector over the
/// member's venues (e.g. average citations of an author's articles).
/// Members with no venues get 0.
std::vector<double> AvgVenueSignificance(
    const BipartiteWorld& world, const std::vector<double>& venue_scores);

/// \brief Venue-side rating model on a 1..5 scale:
///
///   rating(r) = clamp(1 + 4·quality(r) + size_slope·ẑ(log(1+|r|))
///               + noise, 1, 5)
///
/// where ẑ is the z-score of log venue size across venues. A positive
/// size_slope models "big casts are big-budget productions" (movie-movie,
/// Group B); a negative slope models "heavily-commented products attract
/// negative comments" (product-product, Group A; paper Fig. 5).
std::vector<double> VenueRatingSignificance(const BipartiteWorld& world,
                                            double size_slope,
                                            double noise_sigma, Rng* rng);

/// \brief Venue-side open-ended counts (citations, play counts):
///
///   count(r) = exp(quality_scale·quality(r)) · (1+|r|)^size_exponent
///              · lognormal-noise
///
/// size_exponent > 0 ties the count to venue size and hence to projected
/// degree (Group C: degree is genuinely informative).
std::vector<double> SizeScaledCountSignificance(const BipartiteWorld& world,
                                                double quality_scale,
                                                double size_exponent,
                                                double noise_sigma, Rng* rng);

/// \brief Member-side trust counts with effort dilution:
///
///   trust(i) = quality(i) ·
///              (budget(i)^budget_exponent / (1 + deg(i)))^dilution ·
///              lognormal-noise
///
/// dilution > 0 encodes the paper's §4.3.1 reading of Epinions: prolific
/// commenters spread effort thin, earning less trust per comment and less
/// trust overall relative to their visibility. budget_exponent in [0, 1)
/// partially compensates high-capacity members (a diligent power-user is
/// not as diluted as a spammer with the same volume), which keeps the
/// degree signal from being perfectly monotone — over-penalizing degree
/// must not be a free lunch.
std::vector<double> EffortDilutedTrustSignificance(const BipartiteWorld& world,
                                                   double dilution,
                                                   double budget_exponent,
                                                   double noise_sigma,
                                                   Rng* rng);

}  // namespace d2pr

#endif  // D2PR_DATAGEN_SIGNIFICANCE_H_
