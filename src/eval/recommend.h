// Top-k recommendation-accuracy metrics.
//
// The paper's thesis is that degree de-coupling "improves recommendation
// accuracies". Its evaluation reports rank correlations; these metrics
// quantify the same effect on the top of the ranking, where recommenders
// actually operate: precision@k / recall@k against a relevant set, NDCG@k
// against graded relevance, and average precision.

#ifndef D2PR_EVAL_RECOMMEND_H_
#define D2PR_EVAL_RECOMMEND_H_

#include <span>
#include <vector>

#include "graph/types.h"

namespace d2pr {

/// \brief Fraction of the top-k ranked items (by score) that are relevant.
/// `relevant` is an indicator per item. k is clamped to the item count.
double PrecisionAtK(std::span<const double> scores,
                    std::span<const uint8_t> relevant, size_t k);

/// \brief Fraction of all relevant items that appear in the top-k.
/// Returns 0 when nothing is relevant.
double RecallAtK(std::span<const double> scores,
                 std::span<const uint8_t> relevant, size_t k);

/// \brief Normalized discounted cumulative gain at k over graded
/// relevance `gains` (non-negative). Returns 0 when all gains are 0.
double NdcgAtK(std::span<const double> scores, std::span<const double> gains,
               size_t k);

/// \brief Average precision of the full ranking against `relevant`
/// (area under the precision-recall curve; 0 when nothing is relevant).
double AveragePrecision(std::span<const double> scores,
                        std::span<const uint8_t> relevant);

/// \brief Marks the top `fraction` of `significance` as relevant (the
/// standard "top-quantile is ground truth" protocol). fraction in (0, 1].
std::vector<uint8_t> TopFractionRelevance(std::span<const double> significance,
                                          double fraction);

}  // namespace d2pr

#endif  // D2PR_EVAL_RECOMMEND_H_
