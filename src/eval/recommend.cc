#include "eval/recommend.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/ranking.h"

namespace d2pr {

namespace {

// Item indices in ranked (best-first) order.
std::vector<NodeId> RankedOrder(std::span<const double> scores) {
  return TopK(scores, scores.size());
}

}  // namespace

double PrecisionAtK(std::span<const double> scores,
                    std::span<const uint8_t> relevant, size_t k) {
  D2PR_CHECK_EQ(scores.size(), relevant.size());
  k = std::min(k, scores.size());
  if (k == 0) return 0.0;
  const std::vector<NodeId> order = RankedOrder(scores);
  size_t hits = 0;
  for (size_t i = 0; i < k; ++i) {
    hits += relevant[static_cast<size_t>(order[i])];
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double RecallAtK(std::span<const double> scores,
                 std::span<const uint8_t> relevant, size_t k) {
  D2PR_CHECK_EQ(scores.size(), relevant.size());
  size_t total_relevant = 0;
  for (uint8_t r : relevant) total_relevant += r;
  if (total_relevant == 0) return 0.0;
  k = std::min(k, scores.size());
  const std::vector<NodeId> order = RankedOrder(scores);
  size_t hits = 0;
  for (size_t i = 0; i < k; ++i) {
    hits += relevant[static_cast<size_t>(order[i])];
  }
  return static_cast<double>(hits) / static_cast<double>(total_relevant);
}

double NdcgAtK(std::span<const double> scores, std::span<const double> gains,
               size_t k) {
  D2PR_CHECK_EQ(scores.size(), gains.size());
  k = std::min(k, scores.size());
  if (k == 0) return 0.0;
  const std::vector<NodeId> order = RankedOrder(scores);
  double dcg = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double gain = gains[static_cast<size_t>(order[i])];
    D2PR_CHECK_GE(gain, 0.0);
    dcg += gain / std::log2(static_cast<double>(i) + 2.0);
  }
  // Ideal DCG: gains sorted descending.
  std::vector<double> ideal(gains.begin(), gains.end());
  std::sort(ideal.begin(), ideal.end(), std::greater<double>());
  double idcg = 0.0;
  for (size_t i = 0; i < k; ++i) {
    idcg += ideal[i] / std::log2(static_cast<double>(i) + 2.0);
  }
  if (idcg == 0.0) return 0.0;
  return dcg / idcg;
}

double AveragePrecision(std::span<const double> scores,
                        std::span<const uint8_t> relevant) {
  D2PR_CHECK_EQ(scores.size(), relevant.size());
  size_t total_relevant = 0;
  for (uint8_t r : relevant) total_relevant += r;
  if (total_relevant == 0) return 0.0;
  const std::vector<NodeId> order = RankedOrder(scores);
  double sum = 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (relevant[static_cast<size_t>(order[i])]) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return sum / static_cast<double>(total_relevant);
}

std::vector<uint8_t> TopFractionRelevance(std::span<const double> significance,
                                          double fraction) {
  D2PR_CHECK(fraction > 0.0 && fraction <= 1.0);
  const size_t count = std::max<size_t>(
      1, static_cast<size_t>(
             std::llround(fraction *
                          static_cast<double>(significance.size()))));
  std::vector<uint8_t> relevant(significance.size(), 0);
  for (NodeId v : TopK(significance, count)) {
    relevant[static_cast<size_t>(v)] = 1;
  }
  return relevant;
}

}  // namespace d2pr
