#include "eval/table_writer.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>

#include "common/check.h"
#include "common/string_util.h"

namespace d2pr {

namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  bool digit_seen = false;
  for (char ch : cell) {
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      digit_seen = true;
    } else if (ch != '-' && ch != '+' && ch != '.' && ch != ',' &&
               ch != 'e' && ch != 'E' && ch != '%') {
      return false;
    }
  }
  return digit_seen;
}

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (char ch : cell) {
    if (ch == '"') escaped += '"';
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  D2PR_CHECK(!headers_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  D2PR_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row, bool header) {
    for (size_t c = 0; c < row.size(); ++c) {
      const int width = static_cast<int>(widths[c]);
      const bool right = !header && LooksNumeric(row[c]);
      out += Pad(row[c], right ? -width : width);
      if (c + 1 < row.size()) out += "  ";
    }
    // Trim trailing spaces of left-aligned last column.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit_row(headers_, /*header=*/true);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c], '-');
    if (c + 1 < widths.size()) rule += "  ";
  }
  out += rule + '\n';
  for (const auto& row : rows_) emit_row(row, /*header=*/false);
  return out;
}

Status TextTable::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError(StrCat("cannot open for write: ", path));
  auto emit = [&out](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << CsvEscape(row[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  out.flush();
  if (!out) return Status::IoError(StrCat("write failed: ", path));
  return Status::OK();
}

Status EnsureDirectory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError(StrCat("mkdir ", dir, ": ", ec.message()));
  return Status::OK();
}

std::string ResultsDir() { return "results"; }

}  // namespace d2pr
