// Warm-started solves and warm-started sweeps: correctness (unique fixed
// point regardless of starting iterate) and effectiveness (fewer
// iterations than cold starts).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pagerank.h"
#include "core/sweeps.h"
#include "core/teleport.h"
#include "datagen/classic_generators.h"
#include "linalg/vec_ops.h"

namespace d2pr {
namespace {

TEST(WarmStartTest, AnyStartReachesSameFixedPoint) {
  Rng rng(3);
  auto graph = BarabasiAlbert(300, 3, &rng);
  ASSERT_TRUE(graph.ok());
  auto transition = TransitionMatrix::Build(*graph, {.p = 0.5});
  ASSERT_TRUE(transition.ok());
  const std::vector<double> teleport = UniformTeleport(300);
  PagerankOptions options;
  options.tolerance = 1e-13;
  options.max_iterations = 500;

  auto cold = SolvePagerank(*graph, *transition, teleport, options);
  ASSERT_TRUE(cold.ok());

  // Start from a wildly different distribution: all mass on node 0.
  std::vector<double> spike(300, 0.0);
  spike[0] = 1.0;
  auto warm =
      SolvePagerankFrom(*graph, *transition, teleport, spike, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_LT(DiffLInf(cold->scores, warm->scores), 1e-10);
}

TEST(WarmStartTest, UnnormalizedInitialIsNormalized) {
  Rng rng(5);
  auto graph = ErdosRenyi(100, 300, &rng);
  ASSERT_TRUE(graph.ok());
  auto transition = TransitionMatrix::Build(*graph, {});
  ASSERT_TRUE(transition.ok());
  const std::vector<double> teleport = UniformTeleport(100);
  std::vector<double> initial(100, 42.0);  // sums to 4200
  PagerankOptions options;
  options.tolerance = 1e-12;
  auto result =
      SolvePagerankFrom(*graph, *transition, teleport, initial, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(Sum(result->scores), 1.0, 1e-9);
}

TEST(WarmStartTest, NearbyStartConvergesFaster) {
  Rng rng(7);
  auto graph = BarabasiAlbert(500, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<double> teleport = UniformTeleport(500);
  PagerankOptions options;
  options.tolerance = 1e-11;
  options.max_iterations = 500;

  auto t1 = TransitionMatrix::Build(*graph, {.p = 0.5});
  auto t2 = TransitionMatrix::Build(*graph, {.p = 0.6});
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  auto first = SolvePagerank(*graph, *t1, teleport, options);
  ASSERT_TRUE(first.ok());
  auto cold = SolvePagerank(*graph, *t2, teleport, options);
  auto warm = SolvePagerankFrom(*graph, *t2, teleport, first->scores,
                                options);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_LT(warm->iterations, cold->iterations);
  EXPECT_LT(DiffLInf(cold->scores, warm->scores), 1e-8);
}

TEST(WarmStartTest, ValidationErrors) {
  Rng rng(9);
  auto graph = ErdosRenyi(50, 150, &rng);
  ASSERT_TRUE(graph.ok());
  auto transition = TransitionMatrix::Build(*graph, {});
  ASSERT_TRUE(transition.ok());
  const std::vector<double> teleport = UniformTeleport(50);
  std::vector<double> short_initial(10, 0.1);
  EXPECT_FALSE(SolvePagerankFrom(*graph, *transition, teleport,
                                 short_initial, {})
                   .ok());
  std::vector<double> negative(50, 1.0 / 50);
  negative[3] = -0.5;
  EXPECT_FALSE(
      SolvePagerankFrom(*graph, *transition, teleport, negative, {}).ok());
}

TEST(WarmSweepTest, MatchesColdPointwiseSolves) {
  Rng rng(11);
  auto graph = BarabasiAlbert(400, 3, &rng);
  ASSERT_TRUE(graph.ok());
  D2prOptions base;
  base.tolerance = 1e-11;
  const std::vector<double> grid = LinearGrid(-2.0, 2.0, 0.5);
  auto sweep = SweepP(*graph, grid, base);
  ASSERT_TRUE(sweep.ok());
  // Compare two arbitrary interior points with independent cold solves.
  for (size_t idx : {2UL, 6UL}) {
    D2prOptions point = base;
    point.p = grid[idx];
    auto cold = ComputeD2pr(*graph, point);
    ASSERT_TRUE(cold.ok());
    EXPECT_LT(DiffLInf((*sweep)[idx].result.scores, cold->scores), 1e-7)
        << "p = " << grid[idx];
  }
}

TEST(WarmSweepTest, WarmPointsBeatTheirOwnColdSolves) {
  // Comparison must hold p fixed: more-concentrated transitions (larger p)
  // mix more slowly regardless of the starting iterate.
  Rng rng(13);
  auto graph = BarabasiAlbert(600, 3, &rng);
  ASSERT_TRUE(graph.ok());
  D2prOptions base;
  base.tolerance = 1e-10;
  const std::vector<double> grid = LinearGrid(0.0, 2.0, 0.25);
  auto sweep = SweepP(*graph, grid, base);
  ASSERT_TRUE(sweep.ok());
  int64_t warm_total = 0, cold_total = 0;
  for (size_t i = 1; i < sweep->size(); ++i) {
    warm_total += (*sweep)[i].result.iterations;
    D2prOptions point = base;
    point.p = grid[i];
    auto cold = ComputeD2pr(*graph, point);
    ASSERT_TRUE(cold.ok());
    cold_total += cold->iterations;
  }
  EXPECT_LT(warm_total, cold_total);
}

}  // namespace
}  // namespace d2pr
