// Citation ranking with automatic de-coupling tuning.
//
// Builds the DBLP-like article graph (Group C: citations grow with author
// count, so degree is genuinely informative), then:
//   1. auto-tunes the de-coupling weight p against held-out citations,
//   2. compares D2PR at the tuned p with the baselines the paper cites:
//      degree centrality, equal-opportunity PageRank [2], and the
//      degree-biased walk [11].
//
//   $ ./build/examples/citation_ranking

#include <cstdio>

#include "core/baselines.h"
#include "core/tuner.h"
#include "datagen/dataset_registry.h"
#include "stats/correlation.h"

int main() {
  using namespace d2pr;

  RegistryOptions options;
  options.scale = 0.5;
  auto data = MakePaperGraph(PaperGraphId::kDblpArticleArticle, options);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const CsrGraph& graph = data->unweighted;
  std::printf("Article graph: %d articles, %lld co-author edges\n\n",
              graph.num_nodes(),
              static_cast<long long>(graph.num_edges()));

  // 1. Auto-tune p.
  TuneOptions tune_options;
  tune_options.p_min = -4.0;
  tune_options.p_max = 4.0;
  auto tuned = TuneDecouplingWeight(graph, data->significance, tune_options);
  if (!tuned.ok()) {
    std::fprintf(stderr, "%s\n", tuned.status().ToString().c_str());
    return 1;
  }
  std::printf("Auto-tuned de-coupling: p* = %+.2f  (Spearman %.4f, %zu "
              "evaluations)\n\n",
              tuned->best_p, tuned->best_correlation,
              tuned->evaluated.size());

  // 2. Baselines.
  auto report = [&](const char* name, const std::vector<double>& scores) {
    std::printf("  %-32s Spearman vs citations: %+.4f\n", name,
                SpearmanCorrelation(scores, data->significance));
  };
  report("degree centrality", DegreeCentralityScores(graph));

  auto conventional = ComputeConventionalPagerank(graph);
  if (!conventional.ok()) return 1;
  report("conventional PageRank (p=0)", conventional->scores);

  auto equal_opportunity = EqualOpportunityPagerank(graph);
  if (!equal_opportunity.ok()) return 1;
  report("equal-opportunity PageRank [2]", equal_opportunity->scores);

  auto degree_biased = DegreeBiasedWalkScores(graph);
  if (!degree_biased.ok()) return 1;
  report("degree-biased walk [11] (p=-1)", degree_biased->scores);

  D2prOptions best;
  best.p = tuned->best_p;
  auto d2pr_best = ComputeD2pr(graph, best);
  if (!d2pr_best.ok()) return 1;
  report("D2PR at tuned p*", d2pr_best->scores);

  std::printf(
      "\nThis is a Group C application: citations reward visibility, so\n"
      "the tuned p* is <= 0 (degree boosting) and low-degree-boosting\n"
      "baselines underperform.\n");
  return tuned->best_p <= 0.0 ? 0 : 1;
}
