// Microbenchmarks for the power-iteration solver: scaling with graph size,
// de-coupling weight, and residual probability.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/d2pr.h"
#include "datagen/classic_generators.h"

namespace d2pr {
namespace {

CsrGraph MakeGraph(int64_t nodes) {
  Rng rng(42);
  auto graph = BarabasiAlbert(static_cast<NodeId>(nodes), 4, &rng);
  D2PR_CHECK(graph.ok());
  return std::move(graph).value();
}

void BM_PagerankBySize(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(state.range(0));
  D2prOptions options;
  options.tolerance = 1e-9;
  for (auto _ : state) {
    auto result = ComputeD2pr(graph, options);
    benchmark::DoNotOptimize(result->scores.data());
  }
  state.SetItemsProcessed(state.iterations() * graph.num_arcs());
}
BENCHMARK(BM_PagerankBySize)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_PagerankByP(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(10000);
  D2prOptions options;
  options.p = static_cast<double>(state.range(0)) / 2.0;
  options.tolerance = 1e-9;
  for (auto _ : state) {
    auto result = ComputeD2pr(graph, options);
    benchmark::DoNotOptimize(result->scores.data());
  }
}
BENCHMARK(BM_PagerankByP)->Arg(-4)->Arg(0)->Arg(1)->Arg(4);

void BM_PagerankByAlpha(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(10000);
  D2prOptions options;
  options.alpha = static_cast<double>(state.range(0)) / 100.0;
  options.tolerance = 1e-9;
  for (auto _ : state) {
    auto result = ComputeD2pr(graph, options);
    benchmark::DoNotOptimize(result->scores.data());
  }
}
BENCHMARK(BM_PagerankByAlpha)->Arg(50)->Arg(85)->Arg(95);

void BM_SingleIterationMultiply(benchmark::State& state) {
  const CsrGraph graph = MakeGraph(state.range(0));
  auto transition = TransitionMatrix::Build(graph, {.p = 0.5});
  D2PR_CHECK(transition.ok());
  std::vector<double> x(static_cast<size_t>(graph.num_nodes()),
                        1.0 / graph.num_nodes());
  std::vector<double> out(x.size());
  for (auto _ : state) {
    transition->Multiply(graph, x, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * graph.num_arcs());
}
BENCHMARK(BM_SingleIterationMultiply)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace d2pr

BENCHMARK_MAIN();
