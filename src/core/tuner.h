// Automatic selection of the de-coupling weight p (extension).
//
// The paper shows the optimal p is application-specific and must currently
// be found by sweeping. This module automates that: a coarse grid pass over
// [p_min, p_max] followed by golden-section refinement around the best grid
// point, maximizing Spearman correlation between D2PR scores and a provided
// significance vector (e.g. held-out ratings).

#ifndef D2PR_CORE_TUNER_H_
#define D2PR_CORE_TUNER_H_

#include <span>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/d2pr.h"
#include "graph/csr_graph.h"

namespace d2pr {

class D2prEngine;

/// \brief Tuning parameters.
struct TuneOptions {
  double p_min = -4.0;
  double p_max = 4.0;
  double coarse_step = 0.5;     ///< Grid spacing of the first pass.
  double refine_tolerance = 0.02;  ///< Stop when the bracket is this narrow.
  int max_refine_iterations = 20;
  D2prOptions base;             ///< alpha, beta, solver knobs.
};

/// \brief Warm-start trajectory tag used by TuneDecouplingWeight. A
/// post-tune solve on the same engine can pass it as its own
/// warm_start_tag to start from the last probe's solution.
inline constexpr char kTuneWarmStartTag[] = "tune:p";

/// \brief Tuning output.
struct TuneResult {
  double best_p = 0.0;
  double best_correlation = 0.0;
  /// Every (p, correlation) pair evaluated, in evaluation order.
  std::vector<std::pair<double, double>> evaluated;
};

/// \brief Finds the p maximizing Spearman(D2PR scores, significance).
///
/// The correlation curve need not be exactly unimodal; the coarse pass
/// protects against local optima at grid resolution and the refinement
/// only sharpens within one grid cell.
Result<TuneResult> TuneDecouplingWeight(const CsrGraph& graph,
                                        std::span<const double> significance,
                                        const TuneOptions& options = {});

/// \brief Engine-routed variant: every probe reuses the engine's
/// transition cache and warm-starts from the previous probe's solution,
/// so a tuning run costs a fraction of the seed's per-probe cold solves.
/// The free function above wraps this on a call-scoped engine.
Result<TuneResult> TuneDecouplingWeight(D2prEngine& engine,
                                        std::span<const double> significance,
                                        const TuneOptions& options = {});

}  // namespace d2pr

#endif  // D2PR_CORE_TUNER_H_
