#include "dist/channel.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <utility>

#include "common/binary_io.h"
#include "common/string_util.h"
#include "dist/shard_worker.h"

namespace d2pr {

namespace {

/// Session ids for in-process channels: globally unique, never 0 (0 is
/// the worker's "unclaimed" sentinel).
std::atomic<uint64_t> g_next_session_id{1};

}  // namespace

Result<std::unique_ptr<SocketShardChannel>> SocketShardChannel::Connect(
    const std::string& host, uint16_t port) {
  Socket socket;
  D2PR_ASSIGN_OR_RETURN(socket, Socket::Connect(host, port));
  return std::unique_ptr<SocketShardChannel>(
      new SocketShardChannel(std::move(socket)));
}

Result<ShardFrame> SocketShardChannel::Call(const ShardFrame& request,
                                            int64_t deadline_ms) {
  // A negative deadline is a budget the caller already spent. Fail before
  // touching the wire: SetRecvTimeout treats non-positive values as "no
  // timeout", so sending anyway would trade an expired budget for an
  // unbounded wait.
  if (deadline_ms < 0) {
    return Status::DeadlineExceeded(
        StrCat("call budget of ", deadline_ms, " ms already expired"));
  }
  const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  // Arms SO_RCVTIMEO with the budget REMAINING before a receive. The
  // deadline bounds the whole call, not each recv — the stale-reply
  // drain loop below reads one frame per duplicate, and arming the full
  // deadline per frame would let a storm of duplicates extend one call
  // indefinitely (each stale frame granting a fresh budget).
  auto arm_remaining = [&]() -> Status {
    int64_t remaining = 0;  // 0 = no deadline
    if (deadline_ms > 0) {
      const int64_t elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      remaining = deadline_ms - elapsed;
      if (remaining <= 0) {
        return Status::DeadlineExceeded(
            StrCat("call budget of ", deadline_ms, " ms exhausted after ",
                   elapsed, " ms"));
      }
    }
    if (remaining != armed_deadline_ms_) {
      Status armed = socket_.SetRecvTimeout(remaining);
      if (!armed.ok()) return armed;
      armed_deadline_ms_ = remaining;
    }
    return Status::OK();
  };
  const std::vector<uint8_t> frame =
      EncodeFrame(request.type, request.request_id, request.payload);
  D2PR_RETURN_NOT_OK(socket_.SendAll(frame.data(), frame.size()));

  // Read frames until one matches the request id. Older ids are stale
  // replies of retried calls — drained, not errors; anything else means
  // the stream lost sync.
  for (;;) {
    D2PR_RETURN_NOT_OK(arm_remaining());
    uint8_t header_bytes[kFrameHeaderBytes];
    D2PR_RETURN_NOT_OK(socket_.RecvExact(header_bytes, sizeof(header_bytes)));
    FrameHeader header;
    D2PR_ASSIGN_OR_RETURN(
        header, DecodeFrameHeader(std::span<const uint8_t>(
                    header_bytes, sizeof(header_bytes))));
    ShardFrame reply;
    reply.type = header.type;
    reply.request_id = header.request_id;
    reply.payload.resize(header.payload_len);
    if (header.payload_len > 0) {
      D2PR_RETURN_NOT_OK(arm_remaining());
      D2PR_RETURN_NOT_OK(
          socket_.RecvExact(reply.payload.data(), reply.payload.size()));
    }
    if (reply.request_id == request.request_id) return reply;
    if (reply.request_id < request.request_id) continue;  // stale duplicate
    return Status::Internal(
        StrCat("shard replied to future request ", reply.request_id,
               " while waiting for ", request.request_id));
  }
}

InProcessShardChannel::InProcessShardChannel(ShardWorker& worker)
    : worker_(worker),
      session_id_(g_next_session_id.fetch_add(1, std::memory_order_relaxed)) {}

Result<ShardFrame> InProcessShardChannel::Call(const ShardFrame& request,
                                               int64_t deadline_ms) {
  (void)deadline_ms;  // nothing to wait on in-process
  return worker_.Handle(request, session_id_);
}

}  // namespace d2pr
