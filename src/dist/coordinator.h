// DistributedCoordinator: the block-iteration loop of
// core/block_solver.cc driven over N shard connections instead of N
// in-process shards.
//
// The coordinator owns the canonical full iterate and performs every
// global fold itself, in exactly the reference's order: the dangling
// mass folds over the merged ascending dangling list, the L1
// normalization and the DiffL1 residual run over the assembled full
// vector, and the teleport blend happens shard-side with the same
// element order the in-process sweep uses. Shards only ever compute
// their owned slices — so the distributed power solve is BITWISE
// identical to SolvePagerankPartitioned (scores, iteration count, final
// residual), and block Gauss-Seidel is bitwise its in-process form
// (tests/dist_parity_test.cc). The one subtlety is global
// renormalization: NormalizeL1 multiplies by 1/norm, so the coordinator
// broadcasts that exact scalar and each shard replays the multiply on
// its retained slice — bitwise the slice of the normalized vector.
//
// Per-sweep wire cost per shard: O(boundary sources) values down,
// O(owned) values up, plus two scalars — the exchange volume
// graph/partition.h accounts as boundary_in_arcs, deduplicated by
// source.
//
// Fault policy (tests/dist_fault_test.cc):
//   * A call that times out (DeadlineExceeded from the channel) is
//     retried up to `max_retries` times — safe because every shard
//     request is idempotent (the worker caches its last sweep reply).
//     Exhausted retries fail the solve with DeadlineExceeded.
//   * A dead transport (IoError / Unavailable) fails the solve with
//     Unavailable immediately — no partial vector is ever returned.
//   * A kStatus reply carries the worker's own rejection and fails the
//     solve with that exact status (handshake mismatches keep their
//     distinct codes).
// Every failure path returns a clean Status; the coordinator never
// hangs (deadlines bound every wait) and never serves a partial result.

#ifndef D2PR_DIST_COORDINATOR_H_
#define D2PR_DIST_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "api/rank_request.h"
#include "api/transition_cache.h"
#include "common/result.h"
#include "core/pagerank.h"
#include "core/transition.h"
#include "dist/channel.h"
#include "graph/csr_graph.h"
#include "graph/partition.h"

namespace d2pr {

/// \brief The resolved transition key a coordinator handshakes with —
/// normalized against the graph exactly as D2prEngine (and ShardWorker)
/// normalize theirs, so equal configurations compare bitwise equal.
TransitionKey ResolveTransitionKey(const CsrGraph& graph,
                                   const TransitionConfig& config);

/// \brief Coordinator knobs.
struct CoordinatorOptions {
  PartitionScheme scheme = PartitionScheme::kRange;
  /// Nodes of the (shared) graph; shard ownership is closed-form from
  /// scheme + num_nodes + shard count, so the coordinator never needs
  /// the graph itself.
  NodeId num_nodes = 0;
  /// GraphFingerprint of the graph every shard must hold.
  uint64_t graph_fingerprint = 0;
  /// Resolved transition key (ResolveTransitionKey).
  TransitionKey key;
  /// The FULL global per-node metric vector (MetricValues under
  /// key.metric), broadcast in the first kSolveBegin to any shard whose
  /// handshake ack set needs_metric_values — i.e. shards loaded from
  /// pre-cut files, which hold no whole-graph structure to derive it
  /// from. Must hold num_nodes values when any shard will ask; may stay
  /// empty for whole-graph fleets (Handshake rejects the mismatch, not
  /// Solve, so misconfiguration surfaces before any iterate moves).
  std::vector<double> metric_values;
  /// Per-call deadline for every shard round-trip, in milliseconds;
  /// 0 = wait forever (the in-process fleets run without deadlines).
  int64_t sweep_deadline_ms = 0;
  /// Retries per call after a DeadlineExceeded (idempotent resend).
  int max_retries = 2;
  /// Monotonic milliseconds for the stats' elapsed accounting;
  /// injectable so fault tests control time. Defaults to
  /// std::chrono::steady_clock.
  std::function<int64_t()> clock_ms;
};

/// \brief Cumulative coordinator counters.
struct CoordinatorStats {
  int64_t sweeps = 0;           ///< Synchronized sweep rounds completed.
  int64_t retries = 0;          ///< Idempotent resends after timeouts.
  int64_t boundary_values = 0;  ///< Boundary doubles shipped down, total.
  int64_t owned_values = 0;     ///< Owned doubles shipped up, total.
  int64_t metric_values_sent = 0;  ///< Metric doubles broadcast, total.
  int64_t elapsed_ms = 0;       ///< Wall clock inside Solve().
};

/// \brief Drives distributed block solves over one channel per shard.
class DistributedCoordinator {
 public:
  /// One channel per shard, index = shard id. Channels must outlive the
  /// coordinator.
  DistributedCoordinator(std::vector<ShardChannel*> channels,
                         const CoordinatorOptions& options);

  /// Handshakes every shard: sends the identity declaration, validates
  /// each ack against the closed-form ownership (owned count, node
  /// count, list sanity), and merges the shards' dangling lists into
  /// the global ascending list the bit-parity fold requires. Any
  /// rejection surfaces with the worker's distinct status code. Must
  /// succeed before Solve.
  Status Handshake();

  /// Runs one distributed block solve. `method` must be kPower or
  /// kGaussSeidel (kGaussSeidel rejects DanglingPolicy::kRenormalize,
  /// exactly as ValidateBlockGaussSeidelPolicy does in-process);
  /// `teleport` is a distribution over num_nodes. Returns the complete
  /// PagerankResult or a clean error — never a partial vector.
  Result<PagerankResult> Solve(SolverMethod method,
                               std::span<const double> teleport,
                               const PagerankOptions& options);

  const CoordinatorStats& stats() const { return stats_; }

  /// The shard id owning `node` under this coordinator's scheme
  /// (mirrors GraphPartition::OwnerOf).
  size_t OwnerOf(NodeId node) const;

 private:
  /// One channel round-trip under the fault policy (retry timeouts,
  /// Unavailable on dead transport, unwrap kStatus replies).
  Result<ShardFrame> CallShard(size_t shard, const ShardFrame& request,
                               FrameType expected_reply);

  /// Best-effort solve teardown (failures ignored — the worker also
  /// clears state when the connection dies).
  void EndSolve(uint64_t solve_id);

  int64_t NowMs() const;

  std::vector<ShardChannel*> channels_;
  CoordinatorOptions options_;
  CoordinatorStats stats_;

  bool handshaken_ = false;
  uint64_t next_request_id_ = 1;
  uint64_t next_solve_id_ = 1;

  /// Per-shard owned nodes, ascending (closed-form, computed once).
  std::vector<std::vector<NodeId>> owned_;
  /// Per-shard boundary sources (from the acks; the order boundary
  /// values are shipped in).
  std::vector<std::vector<NodeId>> boundary_;
  /// 1 while shard s still needs the metric vector in its next solve
  /// begin (from the acks; cleared after a solve begin it accepted).
  std::vector<uint8_t> needs_metric_;
  /// All dangling nodes, ascending global ids (merged from the acks).
  std::vector<NodeId> dangling_;
};

}  // namespace d2pr

#endif  // D2PR_DIST_COORDINATOR_H_
