// TransitionResolver: the one keyed resolver behind every serving mode's
// transition lookups.
//
// Both whole-graph engines (D2prEngine) and the edge-partitioned router
// mode (EngineRouter::kPartitionedSubgraph) need the same three-layer
// resolution for a TransitionKey:
//
//   1. an in-memory LRU TransitionCache (shared_ptr entries, O(1)-ish),
//   2. a persistent TransitionStore spill layer (mmap-backed load before
//      any rebuild, write-through or lazy spill after one),
//   3. the O(|E|) TransitionMatrix::Build cold path,
//
// with concurrent misses on one key single-flighted: the first requester
// loads or builds while the rest wait on a condition variable and then
// take the cache hit, so a key is never built twice. Until this class
// existed, D2prEngine::GetTransition and EngineRouter::PartitionTransition
// carried duplicated copies of that whole discipline; each new metric or
// concurrency fix had to land twice. Now both own a TransitionResolver and
// the logic lives once (the ROADMAP's unlocking refactor for the
// multi-metric engine).
//
// Thread-safety: Resolve is safe from any number of threads. The internal
// mutex guards only the in-flight key list — never a load, build, or
// spill — so distinct keys proceed in parallel.

#ifndef D2PR_API_TRANSITION_RESOLVER_H_
#define D2PR_API_TRANSITION_RESOLVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "api/transition_cache.h"
#include "api/transition_store.h"
#include "common/result.h"
#include "core/transition.h"
#include "core/transition_slices.h"
#include "graph/csr_graph.h"
#include "graph/partition.h"
#include "topk/degree_bound.h"

namespace d2pr {

/// \brief What a resolver (and the engine owning it) may do with the
/// persistent transition store rooted at its cache_dir.
enum class PersistMode {
  kOff,        ///< Never touch the store, even when cache_dir is set.
  kReadOnly,   ///< Map persisted matrices; never write files.
  kWriteOnly,  ///< Spill built matrices; never read (store (re)builder).
  kReadWrite,  ///< Both (the serving default).
};

/// \brief When a writable resolver spills newly built matrices.
enum class PersistPolicy {
  /// Persist each matrix right after its build, on the building thread.
  /// Restart-safe by construction; adds one file write to each cold
  /// build.
  kWriteThrough,
  /// Persist only on PersistCached() and at destruction (the owning
  /// engine's flush points). Keeps the serving path free of writes, at
  /// two costs: matrices built since the last flush are lost on a crash,
  /// and a matrix evicted from the in-memory LRU before a flush is never
  /// spilled at all (only resident matrices can be).
  kLazy,
};

/// \brief TransitionResolver construction knobs (the persistence subset of
/// EngineOptions, which D2prEngine forwards verbatim).
struct TransitionResolverOptions {
  /// Max TransitionMatrix instances kept alive; 0 disables caching (and
  /// with it single-flight — waiting would serialize N independent
  /// builds that can never land anywhere).
  size_t cache_capacity = 32;
  /// Directory of the persistent transition store; empty disables
  /// persistence entirely.
  std::string cache_dir;
  /// Store permissions; ignored while cache_dir is empty.
  PersistMode persist_mode = PersistMode::kReadWrite;
  /// Spill timing for writable modes.
  PersistPolicy persist_policy = PersistPolicy::kWriteThrough;
  /// Verify store payload checksums on load (forwarded to the store).
  bool verify_checksums = true;
  /// Precomputed GraphFingerprint of the resolver's graph; 0 = compute at
  /// construction when a store is attached. Fleets over one shared graph
  /// pass it in so the edge arrays hash once, not once per resolver.
  /// Trusted in release builds — debug builds verify it.
  uint64_t precomputed_graph_fingerprint = 0;
};

/// \brief Keyed cache + store + build resolution with single-flight
/// deduplication, shared by every serving front end.
class TransitionResolver {
 public:
  /// What one Resolve call did, for the owner's counter accounting
  /// (exactly one of cache_hit / store_hit / built is set on success).
  struct Outcome {
    bool cache_hit = false;  ///< Served from the in-memory LRU.
    bool store_hit = false;  ///< Mapped from the persistent store.
    bool built = false;      ///< TransitionMatrix::Build was invoked.
    bool spilled = false;    ///< A write-through spill succeeded.
  };

  TransitionResolver(std::shared_ptr<const CsrGraph> graph,
                     const TransitionResolverOptions& options);

  /// \brief Returns the transition for `key`: cached, else mapped from
  /// the persistent store (readable modes), else built — and spilled back
  /// under write-through. Concurrent misses on one key are
  /// single-flighted.
  Result<std::shared_ptr<const TransitionMatrix>> Resolve(
      const TransitionKey& key, Outcome* outcome);

  /// \brief Returns the per-shard transition slices for `key` under
  /// `partition` — what the sliced block solvers stream
  /// (core/transition_slices.h). Slices are cached alongside the
  /// transition (same capacity, MRU, single-flighted misses) and keyed by
  /// TransitionKey alone: a resolver serves exactly one partition (its
  /// owner's), so callers must pass the same partition on every call.
  ///
  /// Persistence contract: slices have NO sections of their own in the
  /// TransitionStore. Under SliceBuild::kFromMatrix the whole-graph
  /// matrix is resolved first — cache, store, spill, and every Outcome /
  /// counter observable exactly as Resolve — and the slices are a cheap
  /// permutation of it, rebuilt after any cache eviction. Under
  /// SliceBuild::kSubgraph no whole-graph matrix is ever materialized
  /// (and therefore nothing can touch the store): the slices build
  /// shard-locally, a slice-cache hit reports Outcome::cache_hit, a
  /// local build reports Outcome::built, and only slice_builds()
  /// advances — builds()/store counters stay put.
  Result<std::shared_ptr<const TransitionSlices>> ResolveSlices(
      const TransitionKey& key, const GraphPartition& partition,
      SliceBuild build, Outcome* outcome);

  /// \brief Returns the DegreeBoundIndex for `key`'s transition — the
  /// per-node score upper bounds the top-k solver prunes with — building
  /// it once per key and caching it alongside the transition (same
  /// capacity, LRU, single-flighted misses). Building is O(|E|), ~100x
  /// cheaper than the transition build it rides behind, but still worth
  /// never paying twice on the serving path. `transition` must be the
  /// matrix Resolve returned for the same key.
  std::shared_ptr<const DegreeBoundIndex> ResolveBounds(
      const TransitionKey& key,
      const std::shared_ptr<const TransitionMatrix>& transition);

  /// \brief Spills every currently cached transition to the store
  /// (skipping keys already persisted, except keys built under kLazy
  /// since the last flush, which are (re)written so a rebuilt-after-
  /// rejection matrix replaces its corrupt file). `saves`, when non-null,
  /// receives the number of successful writes. FailedPrecondition when no
  /// writable store is attached; otherwise the first spill error, or OK.
  Status PersistCached(int64_t* saves);

  /// Drops cached transitions (counters are kept). Under kLazy, dropped
  /// matrices not yet spilled are lost.
  void Clear();

  /// True when a persistent store is attached (cache_dir set and
  /// persist_mode != kOff).
  bool store_enabled() const { return store_ != nullptr; }
  bool store_readable() const {
    return store_ != nullptr &&
           (options_.persist_mode == PersistMode::kReadOnly ||
            options_.persist_mode == PersistMode::kReadWrite);
  }
  bool store_writable() const {
    return store_ != nullptr &&
           (options_.persist_mode == PersistMode::kWriteOnly ||
            options_.persist_mode == PersistMode::kReadWrite);
  }

  /// The graph's store fingerprint; 0 when no store is attached.
  uint64_t graph_fingerprint() const { return graph_fingerprint_; }

  /// Cumulative counters (atomic; each individually exact under
  /// concurrent Resolve calls). builds() counts Build attempts, matching
  /// the engine's historical accounting.
  int64_t builds() const { return builds_.load(std::memory_order_relaxed); }
  int64_t store_loads() const {
    return store_loads_.load(std::memory_order_relaxed);
  }
  int64_t store_saves() const {
    return store_saves_.load(std::memory_order_relaxed);
  }
  /// DegreeBoundIndex::Build invocations (cache misses in ResolveBounds).
  int64_t bound_builds() const {
    return bound_builds_.load(std::memory_order_relaxed);
  }
  /// Slice constructions (cache misses in ResolveSlices, either path).
  int64_t slice_builds() const {
    return slice_builds_.load(std::memory_order_relaxed);
  }

  /// Cache passthroughs (see TransitionCache).
  size_t cache_capacity() const { return cache_.capacity(); }
  std::vector<TransitionKey> CachedKeys() const { return cache_.Keys(); }
  int64_t cache_lookup_hits() const { return cache_.hits(); }
  int64_t cache_lookup_misses() const { return cache_.misses(); }

 private:
  std::shared_ptr<const CsrGraph> graph_;
  TransitionResolverOptions options_;
  TransitionCache cache_;

  /// Persistent spill layer; null unless cache_dir names a directory and
  /// persist_mode allows any access.
  std::unique_ptr<TransitionStore> store_;
  uint64_t graph_fingerprint_ = 0;  ///< Computed once when store_ is set.

  std::mutex persist_mu_;  ///< Guards unspilled_keys_.
  /// Keys built (not loaded) under PersistPolicy::kLazy and not yet
  /// flushed. PersistCached saves these even when a store file already
  /// exists, so a rebuilt-after-rejection matrix replaces its corrupt
  /// file instead of being skipped.
  std::vector<TransitionKey> unspilled_keys_;

  /// Guards building_keys_: the keys with a transition build in flight.
  std::mutex build_mu_;
  std::condition_variable build_cv_;
  std::vector<TransitionKey> building_keys_;

  /// Guards the bound-index cache and its in-flight key list. Separate
  /// from build_mu_ so a slow transition build never stalls a bounds
  /// lookup for an unrelated key.
  std::mutex bounds_mu_;
  std::condition_variable bounds_cv_;
  /// MRU-first list, capped at cache_capacity; linear scans are fine at
  /// the same small capacities TransitionCache runs at.
  std::vector<std::pair<TransitionKey, std::shared_ptr<const DegreeBoundIndex>>>
      bounds_cache_;
  std::vector<TransitionKey> bounds_building_;

  /// Guards the slice cache and its in-flight key list; same shape and
  /// rationale as the bounds cache above.
  std::mutex slices_mu_;
  std::condition_variable slices_cv_;
  std::vector<std::pair<TransitionKey, std::shared_ptr<const TransitionSlices>>>
      slices_cache_;
  std::vector<TransitionKey> slices_building_;

  std::atomic<int64_t> builds_{0};
  std::atomic<int64_t> store_loads_{0};
  std::atomic<int64_t> store_saves_{0};
  std::atomic<int64_t> bound_builds_{0};
  std::atomic<int64_t> slice_builds_{0};
};

}  // namespace d2pr

#endif  // D2PR_API_TRANSITION_RESOLVER_H_
