// RpcClient: a blocking connection to an RpcServer.
//
// One request in flight per client at a time: Rank() writes one frame and
// blocks until the matching reply arrives. Concurrency is achieved with
// many clients (one per load-generator worker, see net/loadgen.h), which
// is also what exercises the server's cross-connection machinery —
// coalescing joins requests from different connections, and admission
// control sheds across all of them.
//
// Error surface: a kStatus reply becomes the carried Status (the server's
// error, code preserved — DeadlineExceeded, InvalidArgument, ...); a
// kUnavailable reply becomes StatusCode::kUnavailable; transport failures
// surface as IoError. A client whose connection died stays dead —
// callers reconnect by constructing a new client.

#ifndef D2PR_NET_CLIENT_H_
#define D2PR_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/rank_request.h"
#include "common/result.h"
#include "net/socket.h"
#include "net/wire.h"

namespace d2pr {

/// \brief Blocking RPC client speaking the net/wire.h protocol.
class RpcClient {
 public:
  /// Connects to `host`:`port` (numeric IPv4).
  static Result<RpcClient> Connect(const std::string& host, uint16_t port);

  /// \brief One ranking query; blocks for the reply.
  ///
  /// `deadline_ms` > 0 asks the server to drop the request (or its
  /// response) once that many milliseconds have passed from admission;
  /// the expiry comes back as StatusCode::kDeadlineExceeded.
  Result<RankResponse> Rank(const RankRequest& request,
                            uint64_t deadline_ms = 0);

  /// \brief Fetches the server's self-description.
  Result<ServerInfo> Info();

  /// \brief Escape hatch for protocol tests: writes raw bytes as-is.
  Status SendRaw(const void* data, size_t len);

  /// \brief Escape hatch for protocol tests: reads the next whole frame.
  struct RawFrame {
    FrameType type = FrameType::kStatus;
    uint64_t request_id = 0;
    std::vector<uint8_t> payload;
  };
  Result<RawFrame> ReadFrame();

 private:
  explicit RpcClient(Socket socket) : socket_(std::move(socket)) {}

  /// Sends one frame and blocks for the reply to `request_id`.
  Result<RawFrame> Call(FrameType type, std::vector<uint8_t> payload);

  Socket socket_;
  uint64_t next_request_id_ = 1;
};

}  // namespace d2pr

#endif  // D2PR_NET_CLIENT_H_
