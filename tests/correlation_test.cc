#include "stats/correlation.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace d2pr {
namespace {

TEST(PearsonTest, PerfectLinear) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> neg{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantVectorGivesZero) {
  std::vector<double> x{1.0, 1.0, 1.0};
  std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(PearsonTest, KnownValue) {
  // Hand-computed: x={1,2,3}, y={1,3,2}: r = 0.5.
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{1.0, 3.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.5, 1e-12);
}

TEST(PearsonTest, TooShortGivesZero) {
  std::vector<double> x{1.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, x), 0.0);
}

TEST(SpearmanTest, MonotoneTransformInvariance) {
  // Spearman depends only on ranks: rho(x, y) == rho(x, exp(y)).
  std::vector<double> x{0.3, 0.1, 0.9, 0.5, 0.7};
  std::vector<double> y{1.0, 0.5, 2.5, 1.5, 2.0};
  std::vector<double> exp_y;
  for (double v : y) exp_y.push_back(std::exp(v));
  EXPECT_NEAR(SpearmanCorrelation(x, y), SpearmanCorrelation(x, exp_y),
              1e-12);
}

TEST(SpearmanTest, PerfectAgreementAndReversal) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> y{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> rev{50.0, 40.0, 30.0, 20.0, 10.0};
  EXPECT_NEAR(SpearmanCorrelation(x, rev), -1.0, 1e-12);
}

TEST(SpearmanTest, KnownValueWithTies) {
  // x = {1, 2, 2, 4}, y = {1, 2, 3, 4}.
  // Ranks x (average ties): {1, 2.5, 2.5, 4}; ranks y: {1,2,3,4}.
  // Pearson of ranks = 4.5 / sqrt(4.5 * 5) = 3/sqrt(10).
  std::vector<double> x{1.0, 2.0, 2.0, 4.0};
  std::vector<double> y{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 3.0 / std::sqrt(10.0), 1e-12);
}

TEST(SpearmanTest, IndependentSamplesNearZero) {
  Rng rng(4242);
  std::vector<double> x(5000), y(5000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    y[i] = rng.Normal();
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), 0.0, 0.05);
}

TEST(SpearmanTest, SymmetricInArguments) {
  std::vector<double> x{3.0, 1.0, 4.0, 1.0, 5.0};
  std::vector<double> y{2.0, 7.0, 1.0, 8.0, 2.0};
  EXPECT_NEAR(SpearmanCorrelation(x, y), SpearmanCorrelation(y, x), 1e-12);
}

TEST(KendallTest, PerfectAgreementAndReversal) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(KendallTauB(x, y), 1.0, 1e-12);
  std::vector<double> rev{4.0, 3.0, 2.0, 1.0};
  EXPECT_NEAR(KendallTauB(x, rev), -1.0, 1e-12);
}

TEST(KendallTest, KnownSmallExample) {
  // x = {1,2,3}, y = {1,3,2}: concordant {12? y1<y3:(1,3)c, (1,2)c},
  // pairs: (1,2): x inc, y inc -> c; (1,3): x inc, y inc -> c;
  // (2,3): x inc, y dec -> d. tau = (2 - 1) / 3 = 1/3.
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{1.0, 3.0, 2.0};
  EXPECT_NEAR(KendallTauB(x, y), 1.0 / 3.0, 1e-12);
}

TEST(KendallTest, TieAdjustedExample) {
  // x = {1, 1, 2}, y = {1, 2, 3}.
  // Pairs: (1,2): x tied -> neither; (1,3): c; (2,3): c.
  // n0 = 3, ties_x = 1, ties_y = 0.
  // tau_b = (2 - 0) / sqrt((3-1)(3-0)) = 2/sqrt(6).
  std::vector<double> x{1.0, 1.0, 2.0};
  std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_NEAR(KendallTauB(x, y), 2.0 / std::sqrt(6.0), 1e-12);
}

TEST(KendallTest, MatchesBruteForceOnRandomData) {
  Rng rng(777);
  std::vector<double> x(200), y(200);
  for (size_t i = 0; i < x.size(); ++i) {
    // Coarse grid to force plenty of ties.
    x[i] = static_cast<double>(rng.UniformInt(0, 9));
    y[i] = static_cast<double>(rng.UniformInt(0, 9));
  }
  // Brute force tau-b.
  int64_t concordant = 0, discordant = 0, ties_x = 0, ties_y = 0,
          ties_xy = 0;
  const int64_t n = static_cast<int64_t>(x.size());
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0 && dy == 0) {
        ++ties_xy;
        ++ties_x;
        ++ties_y;
      } else if (dx == 0) {
        ++ties_x;
      } else if (dy == 0) {
        ++ties_y;
      } else if (dx * dy > 0) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const int64_t total = n * (n - 1) / 2;
  const double expected =
      static_cast<double>(concordant - discordant) /
      std::sqrt(static_cast<double>(total - ties_x) *
                static_cast<double>(total - ties_y));
  EXPECT_NEAR(KendallTauB(x, y), expected, 1e-12);
  (void)ties_xy;
}

TEST(KendallTest, AgreesInSignWithSpearman) {
  Rng rng(31337);
  std::vector<double> x(500), y(500);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    y[i] = 0.6 * x[i] + 0.8 * rng.Normal();
  }
  const double spearman = SpearmanCorrelation(x, y);
  const double kendall = KendallTauB(x, y);
  EXPECT_GT(spearman, 0.3);
  EXPECT_GT(kendall, 0.2);
  EXPECT_LT(kendall, spearman);  // tau is typically ~2/3 of rho here
}

TEST(CorrelationDeathTest, SizeMismatchAborts) {
  std::vector<double> a{1.0, 2.0};
  std::vector<double> b{1.0};
  EXPECT_DEATH((void)PearsonCorrelation(a, b), "CHECK failed");
  EXPECT_DEATH((void)SpearmanCorrelation(a, b), "CHECK failed");
  EXPECT_DEATH((void)KendallTauB(a, b), "CHECK failed");
}

}  // namespace
}  // namespace d2pr
