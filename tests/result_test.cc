#include "common/result.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace d2pr {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.status().message(), "nope");
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> good(7);
  Result<int> bad(Status::Internal("x"));
  EXPECT_EQ(good.value_or(-1), 7);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> result(std::vector<int>{1, 2, 3});
  std::vector<int> moved = std::move(result).value();
  EXPECT_EQ(moved.size(), 3u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::string> result(std::string("abc"));
  result.value() += "d";
  EXPECT_EQ(*result, "abcd");
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> result(Status::Internal("boom"));
  EXPECT_DEATH((void)result.value(), "Result::value");
}

TEST(ResultDeathTest, ConstructFromOkStatusAborts) {
  EXPECT_DEATH(Result<int>{Status::OK()}, "OK status");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  D2PR_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  EXPECT_FALSE(Doubled(-1).ok());
  EXPECT_EQ(Doubled(-1).status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnUnwrapsValue) {
  ASSERT_TRUE(Doubled(21).ok());
  EXPECT_EQ(Doubled(21).value(), 42);
}

Result<std::unique_ptr<int>> MakeUnique(int v) {
  return std::make_unique<int>(v);
}

Result<int> UsesMoveOnly() {
  D2PR_ASSIGN_OR_RETURN(std::unique_ptr<int> ptr, MakeUnique(5));
  return *ptr;
}

TEST(ResultTest, AssignOrReturnHandlesMoveOnlyTypes) {
  ASSERT_TRUE(UsesMoveOnly().ok());
  EXPECT_EQ(UsesMoveOnly().value(), 5);
}

}  // namespace
}  // namespace d2pr
