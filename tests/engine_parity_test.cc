// The acceptance bar for the engine migration:
//
//  1. Legacy free functions are wrappers over D2prEngine and return
//     bit-identical (one-shot) or within-tolerance (warm-started sweep /
//     tuner) results.
//  2. SweepP(PaperPGrid()) and TuneDecouplingWeight routed through one
//     shared engine perform strictly fewer TransitionMatrix::Build calls
//     and strictly fewer solver iterations than the seed implementation
//     (re-created here verbatim as the baseline), asserted via the
//     engine's diagnostics counters.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "api/engine.h"
#include "common/rng.h"
#include "core/sweeps.h"
#include "core/teleport.h"
#include "core/tuner.h"
#include "datagen/classic_generators.h"
#include "linalg/vec_ops.h"
#include "stats/correlation.h"

namespace d2pr {
namespace {

struct SeedCounters {
  int64_t builds = 0;
  int64_t iterations = 0;
};

// The seed SweepP: one TransitionMatrix::Build per grid point, each solve
// warm-started from its predecessor's scores.
SeedCounters SeedSweepP(const CsrGraph& graph,
                        const std::vector<double>& p_values,
                        const D2prOptions& base) {
  SeedCounters counters;
  const std::vector<double> teleport = UniformTeleport(graph.num_nodes());
  const PagerankOptions solver = ToPagerankOptions(base);
  std::vector<double> previous;
  for (double p : p_values) {
    D2prOptions options = base;
    options.p = p;
    ++counters.builds;
    auto transition =
        TransitionMatrix::Build(graph, ToTransitionConfig(options));
    EXPECT_TRUE(transition.ok());
    auto result =
        previous.empty()
            ? SolvePagerank(graph, *transition, teleport, solver)
            : SolvePagerankFrom(graph, *transition, teleport, previous,
                                solver);
    EXPECT_TRUE(result.ok());
    counters.iterations += result->iterations;
    previous = std::move(result)->scores;
  }
  return counters;
}

// The seed TuneDecouplingWeight: every probe (coarse grid and
// golden-section refinement) is a fresh Build plus a cold solve.
SeedCounters SeedTune(const CsrGraph& graph,
                      std::span<const double> significance,
                      const TuneOptions& options) {
  constexpr double kInvPhi = 0.6180339887498949;
  SeedCounters counters;
  auto evaluate = [&](double p) -> double {
    D2prOptions opts = options.base;
    opts.p = p;
    ++counters.builds;
    auto transition =
        TransitionMatrix::Build(graph, ToTransitionConfig(opts));
    EXPECT_TRUE(transition.ok());
    auto pr = SolvePagerank(graph, *transition, ToPagerankOptions(opts));
    EXPECT_TRUE(pr.ok());
    counters.iterations += pr->iterations;
    return SpearmanCorrelation(pr->scores, significance);
  };

  double best_p = options.p_min;
  double best_corr = -2.0;
  for (double p = options.p_min; p <= options.p_max + 1e-12;
       p += options.coarse_step) {
    const double corr = evaluate(p);
    if (corr > best_corr) {
      best_corr = corr;
      best_p = p;
    }
  }
  double lo = std::max(options.p_min, best_p - options.coarse_step);
  double hi = std::min(options.p_max, best_p + options.coarse_step);
  double x1 = hi - kInvPhi * (hi - lo);
  double x2 = lo + kInvPhi * (hi - lo);
  double f1 = evaluate(x1);
  double f2 = evaluate(x2);
  for (int iter = 0; iter < options.max_refine_iterations &&
                     (hi - lo) > options.refine_tolerance;
       ++iter) {
    if (f1 < f2) {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + kInvPhi * (hi - lo);
      f2 = evaluate(x2);
    } else {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - kInvPhi * (hi - lo);
      f1 = evaluate(x1);
    }
  }
  return counters;
}

// The references below deliberately bypass the engine (ComputeD2pr and
// friends are wrappers over it now) and re-run the seed recipe on core
// primitives, so a regression in the engine's cold path cannot hide.

TEST(EngineParityTest, ComputeD2prIsBitIdenticalToSeedRecipe) {
  Rng rng(21);
  auto graph = BarabasiAlbert(400, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const D2prOptions options{.p = 0.75, .alpha = 0.8};

  auto transition =
      TransitionMatrix::Build(*graph, ToTransitionConfig(options));
  ASSERT_TRUE(transition.ok());
  auto reference =
      SolvePagerank(*graph, *transition, ToPagerankOptions(options));
  ASSERT_TRUE(reference.ok());

  auto legacy = ComputeD2pr(*graph, options);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->scores, reference->scores);
  EXPECT_EQ(legacy->iterations, reference->iterations);
  EXPECT_EQ(legacy->residual, reference->residual);

  D2prEngine engine = D2prEngine::Borrowing(*graph);
  auto response = engine.Rank(ToRankRequest(options));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->scores, reference->scores);
}

TEST(EngineParityTest, PersonalizedWrapperIsBitIdenticalToSeedRecipe) {
  Rng rng(22);
  auto graph = BarabasiAlbert(400, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<NodeId> seeds = {5, 9, 120};
  const D2prOptions options{.p = 0.5};

  auto transition =
      TransitionMatrix::Build(*graph, ToTransitionConfig(options));
  ASSERT_TRUE(transition.ok());
  auto teleport = SeededTeleport(graph->num_nodes(), seeds);
  ASSERT_TRUE(teleport.ok());
  auto reference = SolvePagerank(*graph, *transition, *teleport,
                                 ToPagerankOptions(options));
  ASSERT_TRUE(reference.ok());

  auto legacy = ComputePersonalizedD2pr(*graph, seeds, options);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->scores, reference->scores);

  D2prEngine engine = D2prEngine::Borrowing(*graph);
  RankRequest request = ToRankRequest(options);
  request.seeds = seeds;
  auto response = engine.Rank(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->scores, reference->scores);
}

TEST(EngineParityTest, LegacySweepsMatchColdPointSolvesWithinTolerance) {
  Rng rng(23);
  auto graph = BarabasiAlbert(400, 3, &rng);
  ASSERT_TRUE(graph.ok());
  D2prOptions base;
  base.tolerance = 1e-11;

  auto alpha_sweep = SweepAlpha(*graph, PaperAlphaGrid(), base);
  ASSERT_TRUE(alpha_sweep.ok());
  for (const SweepPoint& point : *alpha_sweep) {
    D2prOptions cold = base;
    cold.alpha = point.parameter;
    auto reference =
        SolvePagerank(*graph,
                      TransitionMatrix::Build(*graph,
                                              ToTransitionConfig(cold))
                          .value(),
                      ToPagerankOptions(cold));
    ASSERT_TRUE(reference.ok());
    EXPECT_LT(DiffLInf(point.result.scores, reference->scores), 1e-7)
        << "alpha = " << point.parameter;
  }
}

TEST(EngineParityTest, TunerFindsTheSameOptimumAsTheSeedImplementation) {
  Rng rng(24);
  auto graph = BarabasiAlbert(400, 3, &rng);
  ASSERT_TRUE(graph.ok());
  // Smooth unimodal target: the D2PR scores at p = 1.5 themselves.
  auto target = ComputeD2pr(*graph, {.p = 1.5});
  ASSERT_TRUE(target.ok());

  TuneOptions options;
  options.p_min = -2.0;
  options.p_max = 3.0;
  auto tuned = TuneDecouplingWeight(*graph, target->scores, options);
  ASSERT_TRUE(tuned.ok());
  EXPECT_NEAR(tuned->best_p, 1.5, options.coarse_step);
  EXPECT_GT(tuned->best_correlation, 0.999);
}

TEST(EngineParityTest, SharedEngineSweepAndTuneBeatSeedCounters) {
  Rng rng(25);
  auto graph = BarabasiAlbert(600, 3, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<double> grid = PaperPGrid();
  D2prOptions base;
  auto target = ComputeD2pr(*graph, {.p = 1.0});
  ASSERT_TRUE(target.ok());
  TuneOptions tune_options;
  tune_options.base = base;

  // Baseline: the seed implementations, counted by construction.
  const SeedCounters seed_sweep = SeedSweepP(*graph, grid, base);
  const SeedCounters seed_tune =
      SeedTune(*graph, target->scores, tune_options);
  const int64_t seed_builds = seed_sweep.builds + seed_tune.builds;
  const int64_t seed_iterations =
      seed_sweep.iterations + seed_tune.iterations;

  // Engine: same sweep then same tuning run, sharing one engine.
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  auto sweep = SweepP(engine, grid, base);
  ASSERT_TRUE(sweep.ok());
  const int64_t engine_sweep_iterations = engine.stats().solver_iterations;
  auto tuned = TuneDecouplingWeight(engine, target->scores, tune_options);
  ASSERT_TRUE(tuned.ok());

  const EngineStats& stats = engine.stats();
  // The tuner's coarse pass revisits the sweep's 17 grid points, so its
  // transitions come from the cache instead of being rebuilt.
  EXPECT_GE(stats.transition_cache_hits, 15);
  EXPECT_LT(stats.transition_builds, seed_builds);
  EXPECT_LT(stats.solver_iterations, seed_iterations);
  // The warm-started (and extrapolated) sweep alone also beats the seed's
  // predecessor-warm-started sweep.
  EXPECT_LE(engine_sweep_iterations, seed_sweep.iterations);
  EXPECT_EQ(sweep->size(), grid.size());
  EXPECT_TRUE(std::isfinite(tuned->best_p));
}

}  // namespace
}  // namespace d2pr
