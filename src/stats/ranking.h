// Ranking utilities: score vectors -> rank vectors, with tie handling.

#ifndef D2PR_STATS_RANKING_H_
#define D2PR_STATS_RANKING_H_

#include <span>
#include <vector>

#include "graph/types.h"

namespace d2pr {

/// \brief Direction of ranking.
enum class RankOrder {
  kDescending,  ///< Rank 1 = highest score (paper convention: top node).
  kAscending,   ///< Rank 1 = lowest score.
};

/// \brief Fractional (average) ranks with tie handling.
///
/// Returns ranks[i] = average position (1-based) of scores[i] in sorted
/// order; equal scores share the average of the positions they span. This
/// is the tie convention Spearman's rho requires.
std::vector<double> AverageRanks(std::span<const double> scores,
                                 RankOrder order = RankOrder::kDescending);

/// \brief Ordinal ranks: each element gets a distinct 1-based rank; ties are
/// broken by smaller index first (deterministic). Matches the paper's
/// Table 2 presentation of node ranks.
std::vector<int64_t> OrdinalRanks(std::span<const double> scores,
                                  RankOrder order = RankOrder::kDescending);

/// \brief Indices of the k largest scores, in decreasing score order (ties
/// broken by smaller index). k is clamped to scores.size().
std::vector<NodeId> TopK(std::span<const double> scores, size_t k);

/// \brief Indices of the k smallest scores, in increasing score order.
std::vector<NodeId> BottomK(std::span<const double> scores, size_t k);

}  // namespace d2pr

#endif  // D2PR_STATS_RANKING_H_
