// Table 2: ranks of individual graph nodes under different de-coupling
// weights p ∈ {-4, -2, 0, 2, 4}. The paper shows the two highest-degree
// nodes (ranked 1-2 at p = -4, pushed to the thousands at p = 4) and two
// degree-1 nodes (the reverse). We reproduce the same layout on the
// commenter-commenter graph.

#include <cstdio>

#include "common/string_util.h"
#include "core/d2pr.h"
#include "eval/table_writer.h"
#include "graph/graph_stats.h"
#include "repro_common.h"
#include "stats/ranking.h"

namespace d2pr {
namespace bench {
namespace {

int Run() {
  PrintHeader("Table 2: node ranks under different de-coupling weights",
              "Table 2 (high-degree nodes sink as p grows; degree-1 nodes "
              "rise)");
  const RegistryOptions options = BenchRegistryOptions();
  DataGraph data =
      LoadGraph(PaperGraphId::kEpinionsCommenterCommenter, options);
  const CsrGraph& graph = data.unweighted;

  const std::vector<double> p_values{-4.0, -2.0, 0.0, 2.0, 4.0};
  // Rank vectors per p (rank 1 = highest D2PR score).
  std::vector<std::vector<int64_t>> ranks;
  for (double p : p_values) {
    auto result = ComputeD2pr(graph, {.p = p});
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    ranks.push_back(OrdinalRanks(result->scores));
  }

  // The paper lists the two highest-degree nodes and two degree-1 nodes.
  const std::vector<double> degrees = DegreesAsDoubles(graph);
  std::vector<NodeId> picks = TopK(degrees, 2);
  const std::vector<NodeId> low = BottomK(degrees, 2);
  picks.insert(picks.end(), low.begin(), low.end());

  std::vector<std::string> headers{"node id", "degree"};
  for (double p : p_values) headers.push_back(StrCat("p=", p));
  TextTable table(headers);
  for (NodeId v : picks) {
    std::vector<std::string> row{std::to_string(v),
                                 FormatGeneral(degrees[v], 6)};
    for (size_t k = 0; k < p_values.size(); ++k) {
      row.push_back(std::to_string(ranks[k][static_cast<size_t>(v)]));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Shape check (paper Table 2): high-degree nodes rank near 1 for "
      "p < 0\nand are pushed down for p > 0; degree-1 nodes move the "
      "opposite way.\n\n");
  ArchiveCsv(table, "table2");

  // Quantified verdict: high-degree picks must worsen monotonically in p.
  int exit_code = 0;
  for (int pick = 0; pick < 2; ++pick) {
    const NodeId v = picks[static_cast<size_t>(pick)];
    if (ranks.front()[static_cast<size_t>(v)] >=
        ranks.back()[static_cast<size_t>(v)]) {
      std::fprintf(stderr,
                   "MISMATCH: high-degree node %d did not sink with p\n", v);
      exit_code = 1;
    }
  }
  for (int pick = 2; pick < 4; ++pick) {
    const NodeId v = picks[static_cast<size_t>(pick)];
    if (ranks.front()[static_cast<size_t>(v)] <=
        ranks.back()[static_cast<size_t>(v)]) {
      std::fprintf(stderr,
                   "MISMATCH: low-degree node %d did not rise with p\n", v);
      exit_code = 1;
    }
  }
  return exit_code;
}

}  // namespace
}  // namespace bench
}  // namespace d2pr

int main() { return d2pr::bench::Run(); }
