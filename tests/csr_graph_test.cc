#include "graph/csr_graph.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace d2pr {
namespace {

CsrGraph BuildOrDie(GraphBuilder* builder,
                    DuplicatePolicy policy = DuplicatePolicy::kSum) {
  auto result = builder->Build(policy);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// The paper's Figure 1 sample graph: A-B, A-C, A-D, B-E, C-E, C-F gives
// deg(A)=3, deg(B)=2, deg(C)=3, deg(D)=1, deg(E)=2, deg(F)=1.
CsrGraph Figure1Graph() {
  GraphBuilder builder(6, GraphKind::kUndirected);
  EXPECT_TRUE(builder.AddEdge(0, 1).ok());  // A-B
  EXPECT_TRUE(builder.AddEdge(0, 2).ok());  // A-C
  EXPECT_TRUE(builder.AddEdge(0, 3).ok());  // A-D
  EXPECT_TRUE(builder.AddEdge(1, 4).ok());  // B-E
  EXPECT_TRUE(builder.AddEdge(2, 4).ok());  // C-E
  EXPECT_TRUE(builder.AddEdge(2, 5).ok());  // C-F
  return BuildOrDie(&builder);
}

TEST(CsrGraphTest, EmptyGraph) {
  CsrGraph graph;
  EXPECT_EQ(graph.num_nodes(), 0);
  EXPECT_EQ(graph.num_arcs(), 0);
  EXPECT_EQ(graph.num_edges(), 0);
  EXPECT_FALSE(graph.directed());
  EXPECT_FALSE(graph.weighted());
}

TEST(CsrGraphTest, UndirectedDegreesMatchFigure1) {
  CsrGraph graph = Figure1Graph();
  EXPECT_EQ(graph.num_nodes(), 6);
  EXPECT_EQ(graph.num_edges(), 6);
  EXPECT_EQ(graph.num_arcs(), 12);  // mirrored
  EXPECT_EQ(graph.OutDegree(0), 3);
  EXPECT_EQ(graph.OutDegree(1), 2);
  EXPECT_EQ(graph.OutDegree(2), 3);
  EXPECT_EQ(graph.OutDegree(3), 1);
  EXPECT_EQ(graph.OutDegree(4), 2);
  EXPECT_EQ(graph.OutDegree(5), 1);
}

TEST(CsrGraphTest, NeighborsSortedAndSymmetric) {
  CsrGraph graph = Figure1Graph();
  auto nbrs = graph.OutNeighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 1);
  EXPECT_EQ(nbrs[1], 2);
  EXPECT_EQ(nbrs[2], 3);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      EXPECT_TRUE(graph.HasArc(v, u)) << u << "->" << v;
    }
  }
}

TEST(CsrGraphTest, HasArcAndArcWeightUnweighted) {
  CsrGraph graph = Figure1Graph();
  EXPECT_TRUE(graph.HasArc(0, 1));
  EXPECT_FALSE(graph.HasArc(0, 4));
  EXPECT_DOUBLE_EQ(graph.ArcWeight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(graph.ArcWeight(0, 4), 0.0);
}

TEST(CsrGraphTest, WeightedArcs) {
  GraphBuilder builder(3, GraphKind::kDirected, /*weighted=*/true);
  ASSERT_TRUE(builder.AddEdge(0, 1, 2.5).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2, 0.5).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2, 4.0).ok());
  CsrGraph graph = BuildOrDie(&builder);
  EXPECT_TRUE(graph.weighted());
  EXPECT_DOUBLE_EQ(graph.ArcWeight(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(graph.ArcWeight(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(graph.OutStrength(0), 3.0);
  EXPECT_DOUBLE_EQ(graph.OutStrength(1), 4.0);
  EXPECT_DOUBLE_EQ(graph.OutStrength(2), 0.0);
}

TEST(CsrGraphTest, OutStrengthEqualsDegreeWhenUnweighted) {
  CsrGraph graph = Figure1Graph();
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(graph.OutStrength(v),
                     static_cast<double>(graph.OutDegree(v)));
  }
}

TEST(CsrGraphTest, DirectedInDegrees) {
  GraphBuilder builder(4, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(2, 1).ok());
  ASSERT_TRUE(builder.AddEdge(3, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 0).ok());
  CsrGraph graph = BuildOrDie(&builder);
  const std::vector<EdgeIndex> in = graph.InDegrees();
  EXPECT_EQ(in[0], 1);
  EXPECT_EQ(in[1], 3);
  EXPECT_EQ(in[2], 0);
  EXPECT_EQ(in[3], 0);
  EXPECT_EQ(graph.num_edges(), 4);
}

TEST(CsrGraphTest, TransposeReversesArcs) {
  GraphBuilder builder(3, GraphKind::kDirected, /*weighted=*/true);
  ASSERT_TRUE(builder.AddEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2, 3.0).ok());
  ASSERT_TRUE(builder.AddEdge(2, 1, 5.0).ok());
  CsrGraph graph = BuildOrDie(&builder);
  CsrGraph transpose = graph.Transpose();
  EXPECT_EQ(transpose.num_arcs(), graph.num_arcs());
  EXPECT_TRUE(transpose.HasArc(1, 0));
  EXPECT_TRUE(transpose.HasArc(2, 0));
  EXPECT_TRUE(transpose.HasArc(1, 2));
  EXPECT_FALSE(transpose.HasArc(0, 1));
  EXPECT_DOUBLE_EQ(transpose.ArcWeight(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(transpose.ArcWeight(1, 2), 5.0);
}

TEST(CsrGraphTest, TransposeOfUndirectedIsIdentical) {
  CsrGraph graph = Figure1Graph();
  EXPECT_TRUE(graph.Transpose() == graph);
}

TEST(CsrGraphTest, TransposeTwiceIsIdentity) {
  GraphBuilder builder(5, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 4).ok());
  ASSERT_TRUE(builder.AddEdge(4, 2).ok());
  ASSERT_TRUE(builder.AddEdge(2, 0).ok());
  ASSERT_TRUE(builder.AddEdge(3, 3).ok());
  CsrGraph graph = BuildOrDie(&builder);
  EXPECT_TRUE(graph.Transpose().Transpose() == graph);
}

TEST(CsrGraphTest, SelfLoopCountsOnceUndirected) {
  GraphBuilder builder(2, GraphKind::kUndirected);
  ASSERT_TRUE(builder.AddEdge(0, 0).ok());
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  CsrGraph graph = BuildOrDie(&builder);
  EXPECT_EQ(graph.OutDegree(0), 2);  // loop + edge to 1
  EXPECT_EQ(graph.num_arcs(), 3);
  EXPECT_EQ(graph.num_edges(), 2);
}

TEST(CsrGraphTest, CountDangling) {
  GraphBuilder builder(4, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  CsrGraph graph = BuildOrDie(&builder);
  EXPECT_EQ(graph.CountDangling(), 3);  // 1, 2, 3 have no out-arcs
}

TEST(CsrGraphDeathTest, OutOfRangeAccessAbortsInDebug) {
#ifndef NDEBUG
  CsrGraph graph = Figure1Graph();
  EXPECT_DEATH((void)graph.OutDegree(99), "CHECK failed");
#else
  GTEST_SKIP() << "DCHECKs compiled out in release builds";
#endif
}

}  // namespace
}  // namespace d2pr
