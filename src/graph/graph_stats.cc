#include "graph/graph_stats.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace d2pr {

namespace {

// Population standard deviation of `values`.
double StdDev(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values.size()));
}

}  // namespace

GraphStats ComputeGraphStats(const CsrGraph& graph) {
  GraphStats stats;
  const NodeId n = graph.num_nodes();
  stats.num_nodes = n;
  stats.num_arcs = graph.num_arcs();
  stats.num_edges = graph.num_edges();
  if (n == 0) return stats;

  std::vector<double> degrees(n);
  const std::vector<EdgeIndex> in_degrees =
      graph.directed() ? graph.InDegrees() : std::vector<EdgeIndex>();
  stats.min_degree = graph.OutDegree(0);
  stats.max_degree = graph.OutDegree(0);
  double sum = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    const EdgeIndex d = graph.OutDegree(v);
    degrees[v] = static_cast<double>(d);
    sum += degrees[v];
    stats.min_degree = std::min(stats.min_degree, d);
    stats.max_degree = std::max(stats.max_degree, d);
    if (d == 0) {
      ++stats.num_dangling;
      const EdgeIndex incident = graph.directed() ? in_degrees[v] : 0;
      if (incident == 0) ++stats.num_isolated;
    }
  }
  stats.avg_degree = sum / static_cast<double>(n);
  stats.stddev_degree = StdDev(degrees);

  // Median over nodes of std-dev of neighbor degrees; nodes with fewer than
  // one neighbor contribute spread 0.
  std::vector<double> spreads;
  spreads.reserve(n);
  std::vector<double> buffer;
  for (NodeId v = 0; v < n; ++v) {
    auto nbrs = graph.OutNeighbors(v);
    buffer.clear();
    for (NodeId u : nbrs) buffer.push_back(degrees[u]);
    spreads.push_back(StdDev(buffer));
  }
  std::sort(spreads.begin(), spreads.end());
  const size_t mid = spreads.size() / 2;
  stats.median_neighbor_degree_stddev =
      spreads.size() % 2 == 1
          ? spreads[mid]
          : 0.5 * (spreads[mid - 1] + spreads[mid]);
  return stats;
}

std::string FormatStatsRow(const std::string& name, const GraphStats& stats) {
  return StrCat(Pad(name, 28), Pad(FormatWithCommas(stats.num_nodes), -10),
                Pad(FormatWithCommas(stats.num_edges), -12),
                Pad(FormatDouble(stats.avg_degree, 2), -10),
                Pad(FormatDouble(stats.stddev_degree, 2), -10),
                Pad(FormatDouble(stats.median_neighbor_degree_stddev, 2),
                    -12));
}

std::vector<double> DegreesAsDoubles(const CsrGraph& graph) {
  std::vector<double> degrees(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    degrees[v] = static_cast<double>(graph.OutDegree(v));
  }
  return degrees;
}

}  // namespace d2pr
