#include "graph/csr_graph.h"

#include <algorithm>

namespace d2pr {

EdgeIndex CsrGraph::num_edges() const {
  if (directed()) return num_arcs();
  // Count self-loops once; reciprocal pairs count once.
  EdgeIndex loops = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (NodeId u : OutNeighbors(v)) {
      if (u == v) ++loops;
    }
  }
  return (num_arcs() - loops) / 2 + loops;
}

bool CsrGraph::HasArc(NodeId u, NodeId v) const {
  auto row = OutNeighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

double CsrGraph::ArcWeight(NodeId u, NodeId v) const {
  auto row = OutNeighbors(u);
  auto it = std::lower_bound(row.begin(), row.end(), v);
  if (it == row.end() || *it != v) return 0.0;
  if (!weighted()) return 1.0;
  return weights_[offsets_[u] + (it - row.begin())];
}

double CsrGraph::OutStrength(NodeId v) const {
  if (!weighted()) return static_cast<double>(OutDegree(v));
  double total = 0.0;
  for (double w : OutWeights(v)) total += w;
  return total;
}

std::vector<EdgeIndex> CsrGraph::InDegrees() const {
  std::vector<EdgeIndex> in(num_nodes(), 0);
  for (NodeId t : targets_) ++in[t];
  return in;
}

CsrGraph CsrGraph::Transpose() const {
  const NodeId n = num_nodes();
  std::vector<EdgeIndex> offsets(n + 1, 0);
  for (NodeId t : targets_) ++offsets[t + 1];
  for (NodeId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];

  std::vector<NodeId> targets(targets_.size());
  std::vector<double> weights(weights_.size());
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (NodeId src = 0; src < n; ++src) {
    const EdgeIndex begin = offsets_[src];
    const EdgeIndex end = offsets_[src + 1];
    for (EdgeIndex e = begin; e < end; ++e) {
      const NodeId dst = targets_[e];
      const EdgeIndex slot = cursor[dst]++;
      targets[slot] = src;
      if (!weights_.empty()) weights[slot] = weights_[e];
    }
  }
  // Rows of the transpose must stay sorted; counting sort above emits
  // sources in ascending order already (we scan src ascending), so each
  // row is sorted by construction.
  return CsrGraph(std::move(offsets), std::move(targets), std::move(weights),
                  kind_);
}

NodeId CsrGraph::CountDangling() const {
  NodeId count = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (OutDegree(v) == 0) ++count;
  }
  return count;
}

bool CsrGraph::operator==(const CsrGraph& other) const {
  return kind_ == other.kind_ && offsets_ == other.offsets_ &&
         targets_ == other.targets_ && weights_ == other.weights_;
}

}  // namespace d2pr
