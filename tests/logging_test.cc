#include "common/logging.h"

#include <gtest/gtest.h>

namespace d2pr {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = GlobalLogLevel(); }
  void TearDown() override { GlobalLogLevel() = saved_level_; }
  LogLevel saved_level_;
};

TEST_F(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST_F(LoggingTest, BelowThresholdIsSuppressed) {
  GlobalLogLevel() = LogLevel::kError;
  testing::internal::CaptureStderr();
  D2PR_LOG(Info) << "should not appear";
  D2PR_LOG(Warning) << "nor this";
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, AtOrAboveThresholdIsEmitted) {
  GlobalLogLevel() = LogLevel::kInfo;
  testing::internal::CaptureStderr();
  D2PR_LOG(Error) << "visible " << 42;
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("visible 42"), std::string::npos);
  EXPECT_NE(out.find("[ERROR"), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, DefaultLevelIsInfo) {
  EXPECT_EQ(saved_level_, LogLevel::kInfo);
}

}  // namespace
}  // namespace d2pr
