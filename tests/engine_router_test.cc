// EngineRouter correctness: replicated-mode RankBatch must be element-
// for-element identical to the sequential single-engine reference for
// every solver and shard count {1, 2, 4, 8} — including after prior
// traffic and with warm-tag chains pinned to one shard — routing must
// spread untagged load deterministically, errors must surface as the
// sequential fail-fast status, and partitioned-mode seed splits must
// merge back to the reference solution with score mass 1.

#include "serve/engine_router.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datagen/classic_generators.h"
#include "linalg/vec_ops.h"
#include "stats/ranking.h"

namespace d2pr {
namespace {

Result<CsrGraph> TestGraph(uint64_t seed, NodeId nodes = 250,
                           int64_t edges = 750) {
  Rng rng(seed);
  return ErdosRenyi(nodes, edges, &rng);
}

void ExpectResponsesIdentical(const RankResponse& routed,
                              const RankResponse& sequential, size_t index) {
  SCOPED_TRACE("request index " + std::to_string(index));
  EXPECT_EQ(routed.scores, sequential.scores);  // exact, not approximate
  EXPECT_EQ(routed.method, sequential.method);
  EXPECT_EQ(routed.iterations, sequential.iterations);
  EXPECT_EQ(routed.pushes, sequential.pushes);
  EXPECT_EQ(routed.converged, sequential.converged);
  EXPECT_EQ(routed.residual, sequential.residual);
  EXPECT_EQ(routed.transition_cache_hit, sequential.transition_cache_hit);
  EXPECT_EQ(routed.warm_start_hit, sequential.warm_start_hit);
}

/// A per-solver serving mix: global and personalized queries over a few
/// repeated parameter points (transition-cache traffic), plus — for the
/// iterative solvers — two warm-start chains that must each stay pinned
/// to one shard to reproduce the sequential trajectory bit-for-bit.
std::vector<RankRequest> SolverWorkload(SolverMethod method,
                                        NodeId num_nodes) {
  std::vector<RankRequest> requests;
  const std::vector<double> p_values = {0.3, 0.8, 1.3};
  for (int i = 0; i < 18; ++i) {
    RankRequest request;
    request.method = method;
    request.p = p_values[static_cast<size_t>(i) % p_values.size()];
    request.tolerance = 1e-9;
    request.push_epsilon = 1e-6;
    if (method == SolverMethod::kForwardPush || i % 3 == 0) {
      request.seeds = {static_cast<NodeId>((i * 7) % num_nodes)};
      if (method != SolverMethod::kForwardPush && i % 6 == 0) {
        request.seeds.push_back(
            static_cast<NodeId>((i * 11 + 1) % num_nodes));
      }
    }
    requests.push_back(std::move(request));
  }
  if (method != SolverMethod::kForwardPush) {
    for (int i = 0; i < 4; ++i) {
      RankRequest sweep;
      sweep.method = method;
      sweep.p = -1.0 + 0.5 * i;
      sweep.tolerance = 1e-9;
      sweep.warm_start_tag = "chain-a";
      requests.push_back(sweep);

      RankRequest tune;
      tune.method = method;
      tune.p = 0.9;
      tune.alpha = 0.6 + 0.08 * i;
      tune.tolerance = 1e-9;
      tune.warm_start_tag = "chain-b";
      requests.push_back(tune);
    }
  }
  return requests;
}

TEST(EngineRouterTest, ReplicatedParityAllSolversAndShardCounts) {
  auto graph = TestGraph(31);
  ASSERT_TRUE(graph.ok());

  // Prior traffic part-populates the transition caches so the batch does
  // not start cold — the diagnostics normalization must account for it.
  std::vector<RankRequest> prior;
  for (double p : {0.3, 1.3}) {
    RankRequest request;
    request.p = p;
    request.tolerance = 1e-9;
    prior.push_back(request);
  }

  for (SolverMethod method :
       {SolverMethod::kPower, SolverMethod::kGaussSeidel,
        SolverMethod::kForwardPush}) {
    const std::vector<RankRequest> requests =
        SolverWorkload(method, graph->num_nodes());
    D2prEngine reference = D2prEngine::Borrowing(*graph);
    ASSERT_TRUE(reference.RankBatch(prior).ok());
    auto sequential = reference.RankBatch(requests);
    ASSERT_TRUE(sequential.ok());

    for (size_t shards : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE(std::string(SolverMethodName(method)) + ", " +
                   std::to_string(shards) + " shard(s)");
      EngineRouter router =
          EngineRouter::Borrowing(*graph, {.num_shards = shards});
      ASSERT_TRUE(router.RankBatch(prior).ok());
      auto routed = router.RankBatch(requests);
      ASSERT_TRUE(routed.ok());

      ASSERT_EQ(routed->size(), sequential->size());
      for (size_t i = 0; i < routed->size(); ++i) {
        ExpectResponsesIdentical((*routed)[i], (*sequential)[i], i);
      }
    }
  }
}

TEST(EngineRouterTest, WarmChainPinsToOneShard) {
  auto graph = TestGraph(32);
  ASSERT_TRUE(graph.ok());
  EngineRouter router = EngineRouter::Borrowing(*graph, {.num_shards = 4});

  std::vector<RankRequest> chain;
  for (int i = 0; i < 5; ++i) {
    RankRequest request;
    request.p = -1.0 + 0.5 * i;
    request.tolerance = 1e-9;
    request.warm_start_tag = "trajectory";
    chain.push_back(request);
  }
  ASSERT_TRUE(router.RankBatch(chain).ok());

  const size_t pinned = router.ShardForTag("trajectory");
  for (size_t s = 0; s < router.num_shards(); ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    if (s == pinned) {
      EXPECT_EQ(router.shard(s).stats().requests, 5);
      // Every request after the first warm-starts from its predecessor.
      EXPECT_EQ(router.shard(s).stats().warm_start_hits, 4);
    } else {
      EXPECT_EQ(router.shard(s).stats().requests, 0);
    }
  }
}

TEST(EngineRouterTest, RoundRobinSpreadsUntaggedRequestsEvenly) {
  auto graph = TestGraph(33);
  ASSERT_TRUE(graph.ok());
  EngineRouter router = EngineRouter::Borrowing(*graph, {.num_shards = 4});

  std::vector<RankRequest> requests;
  for (int i = 0; i < 16; ++i) {
    RankRequest request;
    request.p = -2.0 + 0.25 * i;
    request.tolerance = 1e-8;
    requests.push_back(request);
  }
  ASSERT_TRUE(router.RankBatch(requests).ok());
  for (size_t s = 0; s < router.num_shards(); ++s) {
    EXPECT_EQ(router.shard(s).stats().requests, 4) << "shard " << s;
  }
}

TEST(EngineRouterTest, LeastLoadedBalancesFromIdle) {
  auto graph = TestGraph(34);
  ASSERT_TRUE(graph.ok());
  EngineRouter router = EngineRouter::Borrowing(
      *graph,
      {.num_shards = 4, .strategy = ReplicaStrategy::kLeastLoaded});

  std::vector<RankRequest> requests;
  for (int i = 0; i < 16; ++i) {
    RankRequest request;
    request.p = -2.0 + 0.25 * i;
    request.tolerance = 1e-8;
    requests.push_back(request);
  }
  // From an idle router the inflight gauges are all zero, so the planned
  // assignment is deterministic and exactly balanced.
  ASSERT_TRUE(router.RankBatch(requests).ok());
  for (size_t s = 0; s < router.num_shards(); ++s) {
    EXPECT_EQ(router.shard(s).stats().requests, 4) << "shard " << s;
  }
}

TEST(EngineRouterTest, EmptyBatchReturnsEmpty) {
  auto graph = TestGraph(35);
  ASSERT_TRUE(graph.ok());
  EngineRouter router = EngineRouter::Borrowing(*graph, {.num_shards = 2});
  auto responses = router.RankBatch({});
  ASSERT_TRUE(responses.ok());
  EXPECT_TRUE(responses->empty());
}

TEST(EngineRouterTest, BatchErrorMatchesSequentialFailFastStatus) {
  auto graph = TestGraph(36);
  ASSERT_TRUE(graph.ok());
  std::vector<RankRequest> requests =
      SolverWorkload(SolverMethod::kPower, graph->num_nodes());
  requests[7].alpha = 1.5;  // invalid
  requests[12].p = std::numeric_limits<double>::quiet_NaN();  // also invalid

  D2prEngine reference = D2prEngine::Borrowing(*graph);
  auto sequential = reference.RankBatch(requests);
  ASSERT_FALSE(sequential.ok());

  EngineRouter router = EngineRouter::Borrowing(*graph, {.num_shards = 4});
  auto routed = router.RankBatch(requests);
  ASSERT_FALSE(routed.ok());

  // The lowest failing index (7) wins in both paths.
  EXPECT_EQ(routed.status().ToString(), sequential.status().ToString());
}

TEST(EngineRouterTest, RankAsyncAgreesWithRank) {
  auto graph = TestGraph(37);
  ASSERT_TRUE(graph.ok());
  EngineRouter router = EngineRouter::Borrowing(*graph, {.num_shards = 2});

  RankRequest request;
  request.p = 0.7;
  request.tolerance = 1e-9;
  auto future = router.RankAsync(request);
  auto async_response = future.get();
  ASSERT_TRUE(async_response.ok());

  auto sync_response = router.Rank(request);
  ASSERT_TRUE(sync_response.ok());
  EXPECT_EQ(async_response->scores, sync_response->scores);

  RankRequest invalid = request;
  invalid.alpha = -0.5;
  auto failed = router.RankAsync(invalid).get();
  EXPECT_FALSE(failed.ok());
}

TEST(EngineRouterTest, PartitionedSingleOwnerRequestRoutesWhole) {
  auto graph = TestGraph(38);
  ASSERT_TRUE(graph.ok());
  EngineRouter router = EngineRouter::Borrowing(
      *graph,
      {.num_shards = 3, .policy = RoutingPolicy::kPartitionedTeleport});

  // Seeds 2, 5, 8 all belong to shard 2 under the modulo map: the request
  // must reach exactly that engine unsplit, so its response is bit-
  // identical to the single-engine reference.
  RankRequest request;
  request.p = 0.5;
  request.tolerance = 1e-10;
  request.seeds = {2, 5, 8};

  D2prEngine reference = D2prEngine::Borrowing(*graph);
  auto expected = reference.Rank(request);
  ASSERT_TRUE(expected.ok());

  auto routed = router.Rank(request);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed->scores, expected->scores);

  for (size_t s = 0; s < router.num_shards(); ++s) {
    EXPECT_EQ(router.shard(s).stats().requests, s == 2 ? 1 : 0)
        << "shard " << s;
  }
}

TEST(EngineRouterTest, PartitionedSplitMergesToReferenceWithMassOne) {
  auto graph = TestGraph(39);
  ASSERT_TRUE(graph.ok());
  EngineRouter router = EngineRouter::Borrowing(
      *graph,
      {.num_shards = 3, .policy = RoutingPolicy::kPartitionedTeleport});

  // Owners 0, 1, and 2 under the modulo map: a genuine three-way split.
  RankRequest request;
  request.p = 0.8;
  request.alpha = 0.85;
  request.tolerance = 1e-12;
  request.max_iterations = 2000;
  request.seeds = {0, 1, 2, 6, 10};

  D2prEngine reference = D2prEngine::Borrowing(*graph);
  auto expected = reference.Rank(request);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(expected->converged);

  auto routed = router.Rank(request);
  ASSERT_TRUE(routed.ok());
  EXPECT_TRUE(routed->converged);
  // Every owner shard solved one sub-request.
  for (size_t s = 0; s < router.num_shards(); ++s) {
    EXPECT_EQ(router.shard(s).stats().requests, 1) << "shard " << s;
  }

  ASSERT_EQ(routed->scores.size(), expected->scores.size());
  EXPECT_NEAR(Sum(routed->scores), 1.0, 1e-12);
  double max_diff = 0.0;
  for (size_t i = 0; i < routed->scores.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(routed->scores[i] - expected->scores[i]));
  }
  EXPECT_LT(max_diff, 1e-9);
  EXPECT_EQ(TopK(routed->scores, 10), TopK(expected->scores, 10));
}

TEST(EngineRouterTest, PartitionedForwardPushSplitAgreesOnTopK) {
  auto graph = TestGraph(40);
  ASSERT_TRUE(graph.ok());
  EngineRouter router = EngineRouter::Borrowing(
      *graph,
      {.num_shards = 2, .policy = RoutingPolicy::kPartitionedTeleport});

  RankRequest request;
  request.p = 0.5;
  request.method = SolverMethod::kForwardPush;
  request.push_epsilon = 1e-8;
  request.seeds = {3, 4};  // owners 1 and 0: a two-way split

  D2prEngine reference = D2prEngine::Borrowing(*graph);
  auto expected = reference.Rank(request);
  ASSERT_TRUE(expected.ok());

  auto routed = router.Rank(request);
  ASSERT_TRUE(routed.ok());
  // Merged push responses are L1-normalized; the push reference is only
  // approximately so. Rankings are scale-invariant, so compare top-k.
  EXPECT_NEAR(Sum(routed->scores), 1.0, 1e-12);
  EXPECT_EQ(TopK(routed->scores, 10), TopK(expected->scores, 10));
}

TEST(EngineRouterTest, FailedRequestsDoNotAdvanceReferenceDiagnostics) {
  auto graph = TestGraph(42);
  ASSERT_TRUE(graph.ok());
  EngineRouter router = EngineRouter::Borrowing(*graph, {.num_shards = 2});

  // The engine validates before touching its transition cache, so a
  // failing request must not leave its key in the router's reference
  // replay either — the next valid query at the same point is still the
  // first build.
  RankRequest invalid;
  invalid.p = 0.7;
  invalid.alpha = 1.5;  // invalid: validation precedes the cache
  ASSERT_FALSE(router.Rank(invalid).ok());
  RankRequest nan_request;
  nan_request.p = std::numeric_limits<double>::quiet_NaN();
  ASSERT_FALSE(router.Rank(nan_request).ok());

  RankRequest valid;
  valid.p = 0.7;
  valid.tolerance = 1e-9;
  auto first = router.Rank(valid);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->transition_cache_hit);
  auto second = router.Rank(valid);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->transition_cache_hit);
}

TEST(EngineRouterTest, ColdIdenticalBatchSolvesOncePerDistinctKey) {
  auto graph = TestGraph(43);
  ASSERT_TRUE(graph.ok());
  EngineRouter router = EngineRouter::Borrowing(
      *graph, {.num_shards = 4, .score_cache_capacity = 16});

  // 32 copies of one query plus 8 of another in a single cold batch:
  // in-batch dedup must route one solve per distinct key, and every
  // aliased response must equal its solved original.
  RankRequest hot;
  hot.p = 0.6;
  hot.tolerance = 1e-9;
  RankRequest cold;
  cold.p = 1.1;
  cold.tolerance = 1e-9;
  std::vector<RankRequest> batch(32, hot);
  for (int i = 0; i < 8; ++i) batch.push_back(cold);

  auto responses = router.RankBatch(batch);
  ASSERT_TRUE(responses.ok());
  int64_t total_requests = 0;
  for (size_t s = 0; s < router.num_shards(); ++s) {
    total_requests += router.shard(s).stats().requests;
  }
  EXPECT_EQ(total_requests, 2);  // one per distinct key
  for (size_t i = 0; i < 32; ++i) {
    EXPECT_EQ((*responses)[i].scores, (*responses)[0].scores);
  }
  for (size_t i = 32; i < batch.size(); ++i) {
    EXPECT_EQ((*responses)[i].scores, (*responses)[32].scores);
  }
}

TEST(EngineRouterTest, ScoreCacheMemoizesAcrossShards) {
  auto graph = TestGraph(41);
  ASSERT_TRUE(graph.ok());
  EngineRouter router = EngineRouter::Borrowing(
      *graph, {.num_shards = 2, .score_cache_capacity = 16});

  RankRequest request;
  request.p = 0.4;
  request.tolerance = 1e-9;
  auto first = router.Rank(request);
  ASSERT_TRUE(first.ok());
  auto second = router.Rank(request);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->scores, first->scores);
  // The repeat came from the memo: no shard saw a second request.
  int64_t total_requests = 0;
  for (size_t s = 0; s < router.num_shards(); ++s) {
    total_requests += router.shard(s).stats().requests;
  }
  EXPECT_EQ(total_requests, 1);
  EXPECT_EQ(router.score_cache().stats().hits, 1);
}

}  // namespace
}  // namespace d2pr
