// d2pr_rank: command-line degree de-coupled PageRank.
//
// Rank the nodes of an edge-list graph:
//   d2pr_rank --graph=edges.txt [--directed] [--weighted]
//             [--p=0.5] [--alpha=0.85] [--beta=0] [--top=20]
//             [--seeds=3,17] [--scores-out=scores.txt]
//
// Auto-tune p against an external significance file (one value per line):
//   d2pr_rank --graph=edges.txt --tune --significance=sig.txt
//
// Print structural statistics:
//   d2pr_rank --graph=edges.txt --stats

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "core/d2pr.h"
#include "core/tuner.h"
#include "graph/graph_io.h"
#include "graph/graph_metrics.h"
#include "graph/graph_stats.h"
#include "stats/ranking.h"

namespace d2pr {
namespace {

constexpr char kUsage[] =
    "usage: d2pr_rank --graph=EDGELIST [options]\n"
    "  --directed           treat the edge list as directed arcs\n"
    "  --weighted           read a third column of edge weights\n"
    "  --p=FLOAT            degree de-coupling weight (default 0)\n"
    "  --alpha=FLOAT        residual probability (default 0.85)\n"
    "  --beta=FLOAT         connection-strength blend, weighted graphs\n"
    "  --top=N              print the N best nodes (default 20)\n"
    "  --seeds=a,b,...      personalized teleportation on these nodes\n"
    "  --scores-out=FILE    write all scores, one per line\n"
    "  --tune               search p maximizing Spearman correlation\n"
    "  --significance=FILE  per-node values for --tune (one per line)\n"
    "  --stats              print structural statistics and exit\n";

Result<std::vector<double>> ReadValuesFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError(StrCat("cannot open: ", path));
  std::vector<double> values;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    double value = 0.0;
    if (!ParseDouble(stripped, &value)) {
      return Status::IoError(StrCat(path, ": bad value '", line, "'"));
    }
    values.push_back(value);
  }
  return values;
}

Result<std::vector<NodeId>> ParseSeeds(const std::string& spec) {
  std::vector<NodeId> seeds;
  for (const std::string& field : Split(spec, ',')) {
    int64_t id = 0;
    if (!ParseInt64(field, &id)) {
      return Status::InvalidArgument(StrCat("bad seed '", field, "'"));
    }
    seeds.push_back(static_cast<NodeId>(id));
  }
  return seeds;
}

int RunOrDie(const Flags& flags) {
  const std::string graph_path = flags.GetString("graph");
  if (graph_path.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  auto directed = flags.GetBool("directed", false);
  auto weighted = flags.GetBool("weighted", false);
  if (!directed.ok() || !weighted.ok()) {
    std::fprintf(stderr, "%s\n", directed.status().ToString().c_str());
    return 2;
  }
  auto graph = ReadEdgeListText(
      graph_path, *directed ? GraphKind::kDirected : GraphKind::kUndirected,
      *weighted);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "loaded %s: %d nodes, %lld edges\n",
               graph_path.c_str(), graph->num_nodes(),
               static_cast<long long>(graph->num_edges()));

  if (flags.Has("stats")) {
    const GraphStats stats = ComputeGraphStats(*graph);
    std::printf("nodes                 %d\n", stats.num_nodes);
    std::printf("edges                 %lld\n",
                static_cast<long long>(stats.num_edges));
    std::printf("avg degree            %.3f\n", stats.avg_degree);
    std::printf("stddev degree         %.3f\n", stats.stddev_degree);
    std::printf("median nbr-deg stddev %.3f\n",
                stats.median_neighbor_degree_stddev);
    std::printf("dangling nodes        %d\n", stats.num_dangling);
    if (!graph->directed()) {
      std::printf("avg clustering        %.4f\n",
                  AverageClusteringCoefficient(*graph));
      std::printf("degree assortativity  %+.4f\n",
                  DegreeAssortativity(*graph));
    }
    return 0;
  }

  D2prOptions options;
  auto p = flags.GetDouble("p", 0.0);
  auto alpha = flags.GetDouble("alpha", 0.85);
  auto beta = flags.GetDouble("beta", 0.0);
  auto top = flags.GetInt("top", 20);
  if (!p.ok() || !alpha.ok() || !beta.ok() || !top.ok()) {
    std::fprintf(stderr, "bad numeric flag\n%s", kUsage);
    return 2;
  }
  options.p = *p;
  options.alpha = *alpha;
  options.beta = *beta;

  if (flags.Has("tune")) {
    const std::string sig_path = flags.GetString("significance");
    if (sig_path.empty()) {
      std::fprintf(stderr, "--tune requires --significance=FILE\n");
      return 2;
    }
    auto significance = ReadValuesFile(sig_path);
    if (!significance.ok()) {
      std::fprintf(stderr, "%s\n",
                   significance.status().ToString().c_str());
      return 1;
    }
    TuneOptions tune_options;
    tune_options.base = options;
    auto tuned = TuneDecouplingWeight(*graph, *significance, tune_options);
    if (!tuned.ok()) {
      std::fprintf(stderr, "%s\n", tuned.status().ToString().c_str());
      return 1;
    }
    std::printf("tuned p = %+.3f  (Spearman %.4f over %zu evaluations)\n",
                tuned->best_p, tuned->best_correlation,
                tuned->evaluated.size());
    options.p = tuned->best_p;
  }

  Result<PagerankResult> ranked = [&]() -> Result<PagerankResult> {
    if (flags.Has("seeds")) {
      D2PR_ASSIGN_OR_RETURN(std::vector<NodeId> seeds,
                            ParseSeeds(flags.GetString("seeds")));
      return ComputePersonalizedD2pr(*graph, seeds, options);
    }
    return ComputeD2pr(*graph, options);
  }();
  if (!ranked.ok()) {
    std::fprintf(stderr, "%s\n", ranked.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "solved in %d iterations (converged: %s)\n",
               ranked->iterations, ranked->converged ? "yes" : "no");

  const std::string out_path = flags.GetString("scores-out");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    for (double score : ranked->scores) {
      out << FormatGeneral(score, 17) << '\n';
    }
    if (!out) {
      std::fprintf(stderr, "failed writing %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu scores to %s\n", ranked->scores.size(),
                 out_path.c_str());
  }

  std::printf("rank  node  score\n");
  const std::vector<NodeId> best =
      TopK(ranked->scores, static_cast<size_t>(*top));
  for (size_t i = 0; i < best.size(); ++i) {
    std::printf("%4zu  %4d  %.6e\n", i + 1, best[i],
                ranked->scores[static_cast<size_t>(best[i])]);
  }
  return 0;
}

}  // namespace
}  // namespace d2pr

int main(int argc, char** argv) {
  auto flags = d2pr::Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  return d2pr::RunOrDie(*flags);
}
