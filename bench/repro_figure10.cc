// Figure 10: beta x p on weighted graphs for application Group B. Paper
// shape: emphasis on degree de-coupling (beta ≈ 0) with p ≈ 0 performs
// well; the movie-movie graph peaks slightly right of 0 (mild penalization
// helps when edge weights count shared actors).

#include "datagen/dataset_registry.h"
#include "repro_common.h"

int main() {
  return d2pr::bench::RunGroupBetaFigure(
      d2pr::ApplicationGroup::kConventionalIdeal,
      "Figure 10: beta x p interplay on weighted graphs (Group B)",
      "Figure 10(a)-(b): weighted graphs, beta in {0, .25, .5, .75, 1}, "
      "alpha = 0.85",
      "figure10");
}
