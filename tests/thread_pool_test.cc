// ThreadPool behavior: every submitted task runs, work executes on
// worker threads (not the caller), and shutdown drains the backlog.

#include "serve/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <latch>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace d2pr {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // destruction waits for every task
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ZeroThreadRequestClampsToOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::latch done(1);
  std::atomic<bool> ran{false};
  pool.Submit([&] {
    ran = true;
    done.count_down();
  });
  done.wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, TasksRunOffTheCallingThread) {
  ThreadPool pool(2);
  std::mutex mu;
  std::set<std::thread::id> worker_ids;
  std::latch done(64);
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&] {
      {
        std::lock_guard<std::mutex> lock(mu);
        worker_ids.insert(std::this_thread::get_id());
      }
      done.count_down();
    });
  }
  done.wait();
  EXPECT_FALSE(worker_ids.contains(std::this_thread::get_id()));
  EXPECT_GE(worker_ids.size(), 1u);
  EXPECT_LE(worker_ids.size(), 2u);
}

// Deterministic drain-on-shutdown (no sleeps): every worker is parked on
// a latch while a backlog piles up, destruction begins with the queue
// still full, and each queued task — with its own heap allocation, so a
// dropped task would leak under sanitizers — must run exactly once.
TEST(ThreadPoolTest, DestructionWithTasksStillQueuedRunsEachExactlyOnce) {
  constexpr int kWorkers = 3;
  constexpr int kBacklog = 64;
  std::atomic<int> ran{0};
  std::atomic<int64_t> payload_sum{0};
  std::latch workers_parked(kWorkers);
  std::latch release(1);
  {
    ThreadPool pool(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      pool.Submit([&] {
        workers_parked.count_down();
        release.wait();
      });
    }
    workers_parked.wait();  // queue is provably empty of running tasks
    for (int i = 0; i < kBacklog; ++i) {
      auto payload = std::make_shared<std::vector<int64_t>>(100, i);
      pool.Submit([&, payload] {
        ran.fetch_add(1);
        payload_sum.fetch_add(payload->front());
      });
    }
    release.count_down();
  }  // destructor joins only after the backlog drains
  EXPECT_EQ(ran.load(), kBacklog);
  EXPECT_EQ(payload_sum.load(),
            static_cast<int64_t>(kBacklog) * (kBacklog - 1) / 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedBacklog) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    // Park the lone worker so the remaining submissions pile up in the
    // queue, then destroy the pool: the backlog must still run.
    pool.Submit([&count] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      count.fetch_add(1);
    });
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 21);
}

TEST(ThreadPoolTest, ThrowingTaskDoesNotKillItsWorker) {
  // One worker: if the throw escaped, either the process would terminate
  // or the lone worker would die and nothing after it could ever run.
  std::atomic<int> ran{0};
  std::latch after_throw(1);
  {
    ThreadPool pool(1);
    pool.Submit([] { throw std::runtime_error("task failure"); });
    pool.Submit([&] {
      ran.fetch_add(1);
      after_throw.count_down();
    });
    after_throw.wait();  // the worker survived and kept draining
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 51);
}

TEST(ThreadPoolTest, NonStdExceptionIsContainedToo) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    pool.Submit([] { throw 42; });  // not derived from std::exception
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 10);
}

// Deterministic gauge exactness under a parked-latch backlog: with every
// worker provably parked, queue_depth() must equal the submissions since,
// and busy_workers() must equal the worker count — no sleeps, no races,
// every count asserted with EXPECT_EQ.
TEST(ThreadPoolTest, GaugesTrackParkedWorkersAndQueuedBacklogExactly) {
  constexpr int kWorkers = 2;
  constexpr int kBacklog = 16;
  std::latch workers_parked(kWorkers);
  std::latch release(1);
  std::latch drained(kBacklog);
  {
    ThreadPool pool(kWorkers);
    EXPECT_EQ(pool.queue_depth(), 0);
    EXPECT_EQ(pool.busy_workers(), 0);

    for (int w = 0; w < kWorkers; ++w) {
      pool.Submit([&] {
        workers_parked.count_down();
        release.wait();
      });
    }
    workers_parked.wait();
    // Both workers are inside a task; nothing waits in the queue.
    EXPECT_EQ(pool.busy_workers(), kWorkers);
    EXPECT_EQ(pool.queue_depth(), 0);

    // With the workers parked, each submission grows the queue by exactly
    // one, observable synchronously from this thread.
    for (int i = 0; i < kBacklog; ++i) {
      pool.Submit([&drained] { drained.count_down(); });
      EXPECT_EQ(pool.queue_depth(), i + 1);
    }
    EXPECT_EQ(pool.busy_workers(), kWorkers);

    release.count_down();
    drained.wait();
    // The backlog has fully run; the parked tasks are long gone. Workers
    // may still be between dequeue and the gauge decrement for a moment,
    // so poll to the settled state instead of asserting instantly.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while ((pool.queue_depth() != 0 || pool.busy_workers() != 0) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    EXPECT_EQ(pool.queue_depth(), 0);
    EXPECT_EQ(pool.busy_workers(), 0);
  }
}

// queue_depth() is the admission signal of net/server.h: it must count a
// task from Submit until dequeue, not until completion — a slow task in
// progress is busy_workers' business, not the queue's.
TEST(ThreadPoolTest, QueueDepthExcludesTheRunningTask) {
  std::latch running(1);
  std::latch release(1);
  ThreadPool pool(1);
  pool.Submit([&] {
    running.count_down();
    release.wait();
  });
  running.wait();
  EXPECT_EQ(pool.queue_depth(), 0);  // dequeued: running, not queued
  EXPECT_EQ(pool.busy_workers(), 1);
  release.count_down();
}

TEST(ThreadPoolTest, ThrowingTasksDoNotDeadlockShutdownDrain) {
  // Interleave throwing and counting tasks into a queued backlog, then
  // destroy the pool immediately: the drain-at-destruction must finish
  // (no wedge) and every non-throwing task must have run.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    pool.Submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      throw std::runtime_error("first in the backlog");
    });
    for (int i = 0; i < 30; ++i) {
      if (i % 3 == 0) {
        pool.Submit([] { throw std::runtime_error("mid-backlog"); });
      } else {
        pool.Submit([&ran] { ran.fetch_add(1); });
      }
    }
  }  // destructor: drain must complete despite the throws
  EXPECT_EQ(ran.load(), 20);
}

}  // namespace
}  // namespace d2pr
