#include "common/string_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

namespace d2pr {
namespace {

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
  EXPECT_EQ(StrCat(42), "42");
}

TEST(FormatDoubleTest, FixedDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
  EXPECT_EQ(FormatDouble(0.0, 1), "0.0");
}

TEST(FormatGeneralTest, SignificantDigits) {
  EXPECT_EQ(FormatGeneral(0.988, 3), "0.988");
  EXPECT_EQ(FormatGeneral(1234567.0, 3), "1.23e+06");
}

TEST(FormatWithCommasTest, GroupsThousands) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(4465272), "4,465,272");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StripWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(StripWhitespace("  abc  "), "abc");
  EXPECT_EQ(StripWhitespace("\t x \n"), "x");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_FALSE(StartsWith("xbc", "ab"));
}

TEST(PadTest, LeftAndRightPadding) {
  EXPECT_EQ(Pad("ab", 5), "ab   ");
  EXPECT_EQ(Pad("ab", -5), "   ab");
  EXPECT_EQ(Pad("abcdef", 3), "abcdef");  // never truncates
}

TEST(ParseDoubleTest, AcceptsValidRejectsGarbage) {
  double value = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &value));
  EXPECT_DOUBLE_EQ(value, 3.5);
  EXPECT_TRUE(ParseDouble("  -0.25 ", &value));
  EXPECT_DOUBLE_EQ(value, -0.25);
  EXPECT_TRUE(ParseDouble("1e-3", &value));
  EXPECT_DOUBLE_EQ(value, 1e-3);
  EXPECT_FALSE(ParseDouble("", &value));
  EXPECT_FALSE(ParseDouble("abc", &value));
  EXPECT_FALSE(ParseDouble("1.5x", &value));
}

TEST(ParseInt64Test, AcceptsValidRejectsGarbage) {
  int64_t value = 0;
  EXPECT_TRUE(ParseInt64("42", &value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(ParseInt64(" -7 ", &value));
  EXPECT_EQ(value, -7);
  EXPECT_FALSE(ParseInt64("4.5", &value));
  EXPECT_FALSE(ParseInt64("", &value));
  EXPECT_FALSE(ParseInt64("12a", &value));
}

TEST(FormatExactDoubleTest, DistinguishesValuesDefaultPrecisionMerges) {
  // 0.1 and its nearest-neighbor double print identically at stream
  // default precision — the exact formatter must keep them apart, which
  // is the whole reason handshake-mismatch messages use it.
  const double a = 0.1;
  const double b = std::nextafter(a, 1.0);
  EXPECT_NE(FormatExactDouble(a), FormatExactDouble(b));
  EXPECT_EQ(FormatExactDouble(0.1),
            "0.10000000000000001 (bits 3fb999999999999a)");
}

TEST(FormatExactDoubleTest, TextRoundTripsBitExact) {
  const double cases[] = {0.0,  -0.0, 0.1,   1.0 / 3.0,
                          0.85, 1e300, 5e-324 /* min subnormal */};
  for (const double value : cases) {
    const std::string text = FormatExactDouble(value);
    // max_digits10 digits round-trip any double exactly.
    double parsed = 0.0;
    ASSERT_TRUE(ParseDouble(text.substr(0, text.find(" (")), &parsed))
        << text;
    EXPECT_EQ(std::memcmp(&parsed, &value, sizeof(double)), 0) << text;
    // And the bit pattern rides along for absolute certainty.
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    char expected_bits[32];
    std::snprintf(expected_bits, sizeof(expected_bits), "(bits %016llx)",
                  static_cast<unsigned long long>(bits));
    EXPECT_NE(text.find(expected_bits), std::string::npos) << text;
  }
}

}  // namespace
}  // namespace d2pr
