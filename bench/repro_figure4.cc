// Figure 4, application Group C: article-article, listener-listener and
// artist-artist graphs, where degree *boosting* (p < 0) helps. Paper
// shape: peak around p ≈ -1 with a stable plateau for p < 0 (each node has
// a dominant high-degree neighbor; see Table 3's last column), and a steep
// collapse once degrees are penalized.

#include "datagen/dataset_registry.h"
#include "repro_common.h"

int main() {
  return d2pr::bench::RunGroupPSweepFigure(
      d2pr::ApplicationGroup::kBoostingHelps,
      "Figure 4: correlation of D2PR ranks and node significance (Group C)",
      "Figure 4(a)-(c): unweighted graphs, alpha = 0.85, p in [-4, 4]",
      "figure4");
}
