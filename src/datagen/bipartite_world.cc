#include "datagen/bipartite_world.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/string_util.h"
#include "datagen/distributions.h"

namespace d2pr {

namespace {

Status ValidateConfig(const BipartiteWorldConfig& config) {
  if (config.num_members <= 0 || config.num_venues <= 0) {
    return Status::InvalidArgument("world sides must be non-empty");
  }
  if (config.venue_size_min < 1 ||
      config.venue_size_max < config.venue_size_min) {
    return Status::InvalidArgument("invalid venue size range");
  }
  if (config.venue_size_zipf_s < 0.0) {
    return Status::InvalidArgument("zipf exponent must be >= 0");
  }
  if (config.quality_alpha <= 0.0 || config.quality_beta <= 0.0) {
    return Status::InvalidArgument("beta-distribution parameters must be > 0");
  }
  if (config.affinity < 0.0) {
    return Status::InvalidArgument("affinity must be >= 0");
  }
  if (config.cost_base <= 0.0) {
    return Status::InvalidArgument("cost_base must be positive");
  }
  if (config.cost_base + std::min(0.0, config.cost_quality_slope) <= 0.0) {
    return Status::InvalidArgument("cost can become non-positive");
  }
  if (config.budget_mean < config.cost_base) {
    return Status::InvalidArgument(
        StrCat("budget_mean ", config.budget_mean,
               " below cost_base ", config.cost_base,
               ": every member would be priced out"));
  }
  if (config.budget_sigma < 0.0) {
    return Status::InvalidArgument("budget_sigma must be >= 0");
  }
  return Status::OK();
}

}  // namespace

Result<BipartiteWorld> GenerateBipartiteWorld(
    const BipartiteWorldConfig& config) {
  D2PR_RETURN_NOT_OK(ValidateConfig(config));

  BipartiteWorld world;
  world.config = config;
  Rng rng(config.seed);

  // Latent qualities.
  world.member_quality.resize(static_cast<size_t>(config.num_members));
  for (double& q : world.member_quality) {
    q = rng.Beta(config.quality_alpha, config.quality_beta);
  }
  world.venue_quality.resize(static_cast<size_t>(config.num_venues));
  for (double& q : world.venue_quality) {
    q = rng.Beta(config.quality_alpha, config.quality_beta);
  }

  // Budgets: lognormal with the requested arithmetic mean.
  const double mu = std::log(config.budget_mean) -
                    0.5 * config.budget_sigma * config.budget_sigma;
  world.member_budget.resize(static_cast<size_t>(config.num_members));
  for (double& b : world.member_budget) {
    b = config.budget_sigma == 0.0 ? config.budget_mean
                                   : rng.Lognormal(mu, config.budget_sigma);
  }
  world.member_spent.assign(static_cast<size_t>(config.num_members), 0.0);

  // Venue target sizes.
  const int64_t size_range =
      config.venue_size_max - config.venue_size_min + 1;
  const std::vector<int64_t> venue_size =
      SampleZipfMany(config.num_venues, size_range, config.venue_size_zipf_s,
                     config.venue_size_min, &rng);

  // Process venues in random order so early venues get no systematic
  // access to fuller budgets.
  std::vector<NodeId> venue_order(static_cast<size_t>(config.num_venues));
  std::iota(venue_order.begin(), venue_order.end(), NodeId{0});
  rng.Shuffle(&venue_order);

  world.venue_members.resize(static_cast<size_t>(config.num_venues));
  std::vector<double> remaining = world.member_budget;

  for (NodeId r : venue_order) {
    const double venue_q = world.venue_quality[static_cast<size_t>(r)];
    const double cost =
        config.cost_base + config.cost_quality_slope * venue_q;
    const int64_t target = venue_size[static_cast<size_t>(r)];

    // Rejection-sample distinct members: uniform proposal, acceptance
    // proportional to exp(-affinity · |Δquality|), budget-gated.
    std::unordered_set<NodeId> chosen;
    const int64_t max_attempts = 60 * target + 600;
    int64_t attempts = 0;
    while (static_cast<int64_t>(chosen.size()) < target &&
           attempts < max_attempts) {
      ++attempts;
      const NodeId i = static_cast<NodeId>(
          rng.Below(static_cast<uint64_t>(config.num_members)));
      if (remaining[static_cast<size_t>(i)] < cost) continue;
      if (chosen.count(i)) continue;
      const double gap =
          std::abs(world.member_quality[static_cast<size_t>(i)] - venue_q);
      if (config.affinity > 0.0 &&
          rng.Uniform() >= std::exp(-config.affinity * gap)) {
        continue;
      }
      chosen.insert(i);
      remaining[static_cast<size_t>(i)] -= cost;
      world.member_spent[static_cast<size_t>(i)] += cost;
    }
    auto& members = world.venue_members[static_cast<size_t>(r)];
    members.assign(chosen.begin(), chosen.end());
    std::sort(members.begin(), members.end());
  }

  // Derive the member -> venues view.
  world.member_venues.resize(static_cast<size_t>(config.num_members));
  for (NodeId r = 0; r < config.num_venues; ++r) {
    for (NodeId i : world.venue_members[static_cast<size_t>(r)]) {
      world.member_venues[static_cast<size_t>(i)].push_back(r);
    }
  }
  for (auto& venues : world.member_venues) {
    std::sort(venues.begin(), venues.end());
  }
  return world;
}

}  // namespace d2pr
