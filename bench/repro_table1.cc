// Table 1: Spearman's rank correlation between node degree ranks and
// PageRank ranks. The paper reports 0.988 (listener graph), 0.997 (article
// graph), 0.848 (movie graph) — the "tight coupling" motivating D2PR.
// We print all eight graphs; the paper's three come first.

#include <cstdio>

#include "common/string_util.h"
#include "core/d2pr.h"
#include "eval/table_writer.h"
#include "graph/graph_stats.h"
#include "repro_common.h"
#include "stats/correlation.h"

namespace d2pr {
namespace bench {
namespace {

int Run() {
  PrintHeader("Table 1: PageRank-degree rank correlation",
              "Table 1 (paper values: listener 0.988, article 0.997, "
              "movie 0.848)");
  const RegistryOptions options = BenchRegistryOptions();

  TextTable table({"data graph", "Spearman(PageRank, degree)"});
  const std::vector<PaperGraphId> paper_order{
      PaperGraphId::kLastfmListenerListener,
      PaperGraphId::kDblpArticleArticle,
      PaperGraphId::kImdbMovieMovie,
      PaperGraphId::kImdbActorActor,
      PaperGraphId::kDblpAuthorAuthor,
      PaperGraphId::kLastfmArtistArtist,
      PaperGraphId::kEpinionsCommenterCommenter,
      PaperGraphId::kEpinionsProductProduct,
  };
  for (PaperGraphId id : paper_order) {
    DataGraph data = LoadGraph(id, options);
    auto pagerank = ComputeConventionalPagerank(data.unweighted, 0.85);
    if (!pagerank.ok()) {
      std::fprintf(stderr, "%s\n", pagerank.status().ToString().c_str());
      return 1;
    }
    const double corr = SpearmanCorrelation(
        pagerank->scores, DegreesAsDoubles(data.unweighted));
    table.AddRow({data.name, FormatDouble(corr, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Shape check: every correlation should be high (paper: 0.85-0.997),\n"
      "demonstrating the degree-PageRank coupling D2PR de-couples.\n\n");
  ArchiveCsv(table, "table1");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace d2pr

int main() { return d2pr::bench::Run(); }
