// Aligned text tables and CSV dumps for the reproduction benches.

#ifndef D2PR_EVAL_TABLE_WRITER_H_
#define D2PR_EVAL_TABLE_WRITER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace d2pr {

/// \brief Accumulates rows and renders them column-aligned (stdout) or as
/// CSV (result archives).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds one row; the cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  size_t num_rows() const { return rows_.size(); }

  /// Renders with two-space column gutters; numeric-looking cells are
  /// right-aligned, text cells left-aligned.
  std::string ToString() const;

  /// Writes RFC-4180-ish CSV (quotes cells containing commas/quotes).
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Ensures `dir` exists (mkdir -p); returns IoError on failure.
Status EnsureDirectory(const std::string& dir);

/// \brief Standard location benches archive their CSVs to ("results").
std::string ResultsDir();

}  // namespace d2pr

#endif  // D2PR_EVAL_TABLE_WRITER_H_
