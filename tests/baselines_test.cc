#include "core/baselines.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/d2pr.h"
#include "datagen/classic_generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_stats.h"
#include "linalg/vec_ops.h"
#include "stats/correlation.h"

namespace d2pr {
namespace {

TEST(DegreeCentralityTest, NormalizedDegrees) {
  GraphBuilder builder(3, GraphKind::kUndirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  const std::vector<double> scores = DegreeCentralityScores(*graph);
  EXPECT_DOUBLE_EQ(scores[0], 0.5);
  EXPECT_DOUBLE_EQ(scores[1], 0.25);
  EXPECT_DOUBLE_EQ(scores[2], 0.25);
}

TEST(DegreeCentralityTest, EmptyGraphAllZero) {
  GraphBuilder builder(3, GraphKind::kUndirected);
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  const std::vector<double> scores = DegreeCentralityScores(*graph);
  for (double s : scores) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(EqualOpportunityTest, BoostsLowDegreeNodesVersusConventional) {
  Rng rng(21);
  auto graph = BarabasiAlbert(400, 3, &rng);
  ASSERT_TRUE(graph.ok());
  auto equal_opportunity = EqualOpportunityPagerank(*graph, 0.85, -1.0);
  auto conventional = ComputeConventionalPagerank(*graph, 0.85);
  ASSERT_TRUE(equal_opportunity.ok());
  ASSERT_TRUE(conventional.ok());
  const std::vector<double> degrees = DegreesAsDoubles(*graph);
  // Teleporting preferentially to low-degree nodes must weaken the
  // PageRank-degree coupling relative to the conventional measure ([2]).
  EXPECT_LT(SpearmanCorrelation(equal_opportunity->scores, degrees),
            SpearmanCorrelation(conventional->scores, degrees));
  EXPECT_NEAR(Sum(equal_opportunity->scores), 1.0, 1e-9);
}

TEST(EqualOpportunityTest, GammaZeroMatchesConventional) {
  Rng rng(22);
  auto graph = ErdosRenyi(100, 300, &rng);
  ASSERT_TRUE(graph.ok());
  auto eo = EqualOpportunityPagerank(*graph, 0.85, 0.0);
  auto conventional = ComputeConventionalPagerank(*graph, 0.85);
  ASSERT_TRUE(eo.ok());
  ASSERT_TRUE(conventional.ok());
  for (size_t i = 0; i < eo->scores.size(); ++i) {
    EXPECT_NEAR(eo->scores[i], conventional->scores[i], 1e-10);
  }
}

TEST(DegreeBiasedWalkTest, MatchesD2prWithPMinusOne) {
  Rng rng(23);
  auto graph = BarabasiAlbert(200, 2, &rng);
  ASSERT_TRUE(graph.ok());
  auto biased = DegreeBiasedWalkScores(*graph, 0.85);
  auto d2pr = ComputeD2pr(*graph, {.p = -1.0});
  ASSERT_TRUE(biased.ok());
  ASSERT_TRUE(d2pr.ok());
  for (size_t i = 0; i < biased->scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(biased->scores[i], d2pr->scores[i]);
  }
}

TEST(DegreeBiasedWalkTest, StrengthensDegreeCoupling) {
  // [11] used degree-biased walks to locate high-degree vertices quickly:
  // the stationary distribution must be at least as degree-aligned as the
  // plain walk's.
  Rng rng(24);
  auto graph = ErdosRenyi(500, 2000, &rng);
  ASSERT_TRUE(graph.ok());
  auto biased = DegreeBiasedWalkScores(*graph);
  ASSERT_TRUE(biased.ok());
  const std::vector<double> degrees = DegreesAsDoubles(*graph);
  // Must remain near-perfectly aligned with degree (the property [11]
  // exploits to find hubs quickly).
  EXPECT_GT(SpearmanCorrelation(biased->scores, degrees), 0.95);
  auto penalized = ComputeD2pr(*graph, {.p = 1.0});
  ASSERT_TRUE(penalized.ok());
  EXPECT_GT(SpearmanCorrelation(biased->scores, degrees),
            SpearmanCorrelation(penalized->scores, degrees));
}

}  // namespace
}  // namespace d2pr
