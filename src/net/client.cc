#include "net/client.h"

#include <utility>

#include "common/string_util.h"

namespace d2pr {

Result<RpcClient> RpcClient::Connect(const std::string& host, uint16_t port) {
  auto socket = Socket::Connect(host, port);
  if (!socket.ok()) return socket.status();
  return RpcClient(std::move(socket).value());
}

Status RpcClient::SendRaw(const void* data, size_t len) {
  return socket_.SendAll(data, len);
}

Result<RpcClient::RawFrame> RpcClient::ReadFrame() {
  std::vector<uint8_t> header(kFrameHeaderBytes);
  D2PR_RETURN_NOT_OK(socket_.RecvExact(header.data(), header.size()));
  auto decoded = DecodeFrameHeader(header);
  if (!decoded.ok()) return decoded.status();
  RawFrame frame;
  frame.type = decoded.value().type;
  frame.request_id = decoded.value().request_id;
  frame.payload.resize(decoded.value().payload_len);
  if (!frame.payload.empty()) {
    D2PR_RETURN_NOT_OK(
        socket_.RecvExact(frame.payload.data(), frame.payload.size()));
  }
  return frame;
}

Result<RpcClient::RawFrame> RpcClient::Call(FrameType type,
                                            std::vector<uint8_t> payload) {
  const uint64_t request_id = next_request_id_++;
  const std::vector<uint8_t> frame = EncodeFrame(type, request_id, payload);
  D2PR_RETURN_NOT_OK(socket_.SendAll(frame.data(), frame.size()));
  auto reply = ReadFrame();
  if (!reply.ok()) return reply.status();
  if (reply.value().request_id != request_id) {
    // With one request in flight the ids must match; a mismatch means
    // this client lost sync with the stream.
    return Status::Internal(
        StrCat("reply for request ", reply.value().request_id,
               " while waiting for ", request_id));
  }
  return reply;
}

Result<RankResponse> RpcClient::Rank(const RankRequest& request,
                                     uint64_t deadline_ms) {
  WireRankRequest wire;
  wire.request = request;
  wire.deadline_ms = deadline_ms;
  auto reply = Call(FrameType::kRankRequest, EncodeRankRequest(wire));
  if (!reply.ok()) return reply.status();
  const RawFrame& frame = reply.value();
  switch (frame.type) {
    case FrameType::kRankResponse:
      return DecodeRankResponse(frame.payload);
    case FrameType::kStatus:
    case FrameType::kUnavailable: {
      Status carried;
      D2PR_RETURN_NOT_OK(DecodeStatusPayload(frame.payload, &carried));
      if (carried.ok()) {
        return Status::Internal("server sent an OK status frame for a rank");
      }
      return carried;
    }
    default:
      return Status::Internal(
          StrCat("unexpected reply frame type ",
                 static_cast<int>(frame.type), " for a rank request"));
  }
}

Result<ServerInfo> RpcClient::Info() {
  auto reply = Call(FrameType::kInfoRequest, {});
  if (!reply.ok()) return reply.status();
  const RawFrame& frame = reply.value();
  if (frame.type != FrameType::kInfoResponse) {
    return Status::Internal(
        StrCat("unexpected reply frame type ",
               static_cast<int>(frame.type), " for an info request"));
  }
  return DecodeServerInfo(frame.payload);
}

}  // namespace d2pr
