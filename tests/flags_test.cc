#include "common/flags.h"

#include <gtest/gtest.h>

namespace d2pr {
namespace {

Flags ParseOrDie(std::vector<const char*> args) {
  auto flags = Flags::Parse(static_cast<int>(args.size()), args.data());
  EXPECT_TRUE(flags.ok()) << flags.status().ToString();
  return std::move(flags).value();
}

TEST(FlagsTest, EqualsSyntax) {
  Flags flags = ParseOrDie({"--p=0.5", "--graph=edges.txt"});
  EXPECT_TRUE(flags.Has("p"));
  EXPECT_EQ(flags.GetString("graph"), "edges.txt");
  EXPECT_DOUBLE_EQ(flags.GetDouble("p", 0.0).value(), 0.5);
}

TEST(FlagsTest, SpaceSyntax) {
  Flags flags = ParseOrDie({"--alpha", "0.9", "--top", "5"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("alpha", 0.0).value(), 0.9);
  EXPECT_EQ(flags.GetInt("top", 0).value(), 5);
}

TEST(FlagsTest, BareBooleanFlags) {
  Flags flags = ParseOrDie({"--directed", "--weighted=false", "--stats"});
  EXPECT_TRUE(flags.GetBool("directed", false).value());
  EXPECT_FALSE(flags.GetBool("weighted", true).value());
  EXPECT_TRUE(flags.Has("stats"));
  EXPECT_FALSE(flags.GetBool("absent", false).value());
  EXPECT_TRUE(flags.GetBool("absent", true).value());
}

TEST(FlagsTest, PositionalArguments) {
  Flags flags = ParseOrDie({"input.txt", "--p=1", "output.txt"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.txt", "output.txt"}));
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  Flags flags = ParseOrDie({});
  EXPECT_EQ(flags.GetString("missing", "default"), "default");
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 2.5).value(), 2.5);
  EXPECT_EQ(flags.GetInt("missing", -3).value(), -3);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, BadNumbersAreErrors) {
  Flags flags = ParseOrDie({"--p=abc", "--n=1.5", "--b=maybe"});
  EXPECT_FALSE(flags.GetDouble("p", 0.0).ok());
  EXPECT_FALSE(flags.GetInt("n", 0).ok());
  EXPECT_FALSE(flags.GetBool("b", false).ok());
}

TEST(FlagsTest, MalformedFlagRejected) {
  std::vector<const char*> args{"--=value"};
  auto flags = Flags::Parse(1, args.data());
  EXPECT_FALSE(flags.ok());
}

TEST(FlagsTest, LastValueWins) {
  Flags flags = ParseOrDie({"--p=1", "--p=2"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("p", 0.0).value(), 2.0);
}

TEST(FlagsTest, NegativeNumberAsSeparateValue) {
  // "--p -1" treats "-1" as the value (does not start with "--").
  Flags flags = ParseOrDie({"--p", "-1.5"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("p", 0.0).value(), -1.5);
}

TEST(FlagsTest, FlagNamesEnumerated) {
  Flags flags = ParseOrDie({"--b=1", "--a=2"});
  EXPECT_EQ(flags.FlagNames(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace d2pr
