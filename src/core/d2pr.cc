#include "core/d2pr.h"

#include "core/teleport.h"

namespace d2pr {

TransitionConfig ToTransitionConfig(const D2prOptions& options) {
  TransitionConfig config;
  config.p = options.p;
  config.beta = options.beta;
  config.metric = options.metric;
  return config;
}

PagerankOptions ToPagerankOptions(const D2prOptions& options) {
  PagerankOptions pr;
  pr.alpha = options.alpha;
  pr.tolerance = options.tolerance;
  pr.max_iterations = options.max_iterations;
  pr.dangling = options.dangling;
  return pr;
}

Result<PagerankResult> ComputeD2pr(const CsrGraph& graph,
                                   const D2prOptions& options) {
  D2PR_ASSIGN_OR_RETURN(
      TransitionMatrix transition,
      TransitionMatrix::Build(graph, ToTransitionConfig(options)));
  return SolvePagerank(graph, transition, ToPagerankOptions(options));
}

Result<PagerankResult> ComputeConventionalPagerank(const CsrGraph& graph,
                                                   double alpha) {
  D2prOptions options;
  options.p = 0.0;
  options.beta = graph.weighted() ? 1.0 : 0.0;
  options.alpha = alpha;
  return ComputeD2pr(graph, options);
}

Result<PagerankResult> ComputePersonalizedD2pr(const CsrGraph& graph,
                                               std::span<const NodeId> seeds,
                                               const D2prOptions& options) {
  D2PR_ASSIGN_OR_RETURN(
      TransitionMatrix transition,
      TransitionMatrix::Build(graph, ToTransitionConfig(options)));
  D2PR_ASSIGN_OR_RETURN(std::vector<double> teleport,
                        SeededTeleport(graph.num_nodes(), seeds));
  return SolvePagerank(graph, transition, teleport,
                       ToPagerankOptions(options));
}

}  // namespace d2pr
