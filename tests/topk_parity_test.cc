// Top-k serving parity: a truncated response — whether produced by the
// bounded-push TopKSolver, by exact-solver truncation, or through the
// router's split-and-merge path — must agree with the exact full-vector
// top-k. Certified entries carry a hard guarantee (membership in the
// exact set, modulo 1e-9 near-ties); the suite holds every serving layer
// to it across the paper's p / alpha / beta grid.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/rank_request.h"
#include "common/rng.h"
#include "datagen/bipartite_world.h"
#include "datagen/classic_generators.h"
#include "datagen/projection.h"
#include "serve/engine_router.h"
#include "serve/serving_runtime.h"

namespace d2pr {
namespace {

/// A certified entry may miss the exact top-k set only across a near-tie:
/// its exact score must be within this of the k-th exact score.
constexpr double kNearTie = 1e-9;

std::vector<NodeId> ExactTopK(const std::vector<double>& scores, size_t k) {
  std::vector<NodeId> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<NodeId>(i);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const double sa = scores[static_cast<size_t>(a)];
    const double sb = scores[static_cast<size_t>(b)];
    if (sa != sb) return sa > sb;
    return a < b;
  });
  order.resize(std::min(k, order.size()));
  return order;
}

/// Every certified entry of `response.top` belongs to the exact top-k of
/// `exact` (near-ties excused); uncertified entries are unconstrained.
void ExpectCertifiedSubsetOfExact(const RankResponse& response,
                                  const std::vector<double>& exact,
                                  size_t k) {
  ASSERT_TRUE(response.truncated);
  ASSERT_TRUE(response.scores.empty());
  ASSERT_LE(response.top.size(), k);
  const std::vector<NodeId> truth = ExactTopK(exact, k);
  ASSERT_FALSE(truth.empty());
  const double kth = exact[static_cast<size_t>(truth.back())];
  for (const RankedEntry& entry : response.top) {
    if (!entry.certified) continue;
    const bool in_exact =
        std::find(truth.begin(), truth.end(), entry.node) != truth.end();
    const bool near_tie =
        exact[static_cast<size_t>(entry.node)] >= kth - kNearTie;
    EXPECT_TRUE(in_exact || near_tie)
        << "certified node " << entry.node << " (exact score "
        << exact[static_cast<size_t>(entry.node)]
        << ") is outside the exact top-" << k << " (k-th score " << kth
        << ")";
  }
}

struct ParityCase {
  double p;
  double alpha;
  double beta;
};

class TopKEngineParityTest : public ::testing::TestWithParam<ParityCase> {};

TEST_P(TopKEngineParityTest, PushCertifiedSetMatchesExactTopK) {
  const ParityCase param = GetParam();
  Rng rng(601);
  auto graph = BarabasiAlbert(300, 3, &rng);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);

  for (NodeId seed : {NodeId{2}, NodeId{47}, NodeId{188}}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RankRequest exact_request;
    exact_request.p = param.p;
    exact_request.alpha = param.alpha;
    exact_request.beta = param.beta;
    exact_request.tolerance = 1e-13;
    exact_request.max_iterations = 2000;
    exact_request.seeds = {seed};
    auto exact = engine.Rank(exact_request);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    ASSERT_TRUE(exact->converged);

    RankRequest truncated = exact_request;
    truncated.method = SolverMethod::kForwardPush;
    truncated.push_epsilon = 1e-8;
    truncated.top_k = 10;
    auto served = engine.Rank(truncated);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_EQ(served->method, SolverMethod::kForwardPush);
    EXPECT_GT(served->pushes, 0);
    ExpectCertifiedSubsetOfExact(*served, exact->scores, 10);
  }
}

TEST_P(TopKEngineParityTest, ExactSolverTruncationIsFullyCertified) {
  const ParityCase param = GetParam();
  Rng rng(602);
  auto graph = BarabasiAlbert(200, 3, &rng);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);

  for (SolverMethod method :
       {SolverMethod::kPower, SolverMethod::kGaussSeidel}) {
    SCOPED_TRACE(SolverMethodName(method));
    RankRequest full;
    full.p = param.p;
    full.alpha = param.alpha;
    full.beta = param.beta;
    full.method = method;
    full.seeds = {11};
    auto exact = engine.Rank(full);
    ASSERT_TRUE(exact.ok());

    RankRequest truncated = full;
    truncated.top_k = 10;
    auto served = engine.Rank(truncated);
    ASSERT_TRUE(served.ok());
    ASSERT_TRUE(served->truncated);
    ASSERT_TRUE(served->scores.empty());
    ASSERT_EQ(served->top.size(), 10u);
    EXPECT_EQ(served->uncertainty_gap, 0.0);

    // Exact truncation serves the exact scores, every entry certified,
    // in exact-top-k order.
    const std::vector<NodeId> truth = ExactTopK(exact->scores, 10);
    for (size_t i = 0; i < served->top.size(); ++i) {
      EXPECT_EQ(served->top[i].node, truth[i]) << "rank " << i;
      EXPECT_TRUE(served->top[i].certified);
      EXPECT_DOUBLE_EQ(served->top[i].score,
                       exact->scores[static_cast<size_t>(truth[i])]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TopKEngineParityTest,
    ::testing::Values(ParityCase{0.0, 0.85, 0.0}, ParityCase{0.5, 0.85, 0.0},
                      ParityCase{1.0, 0.7, 0.0}, ParityCase{-1.0, 0.9, 0.0},
                      ParityCase{2.0, 0.5, 0.0}));

TEST(TopKEngineDispatchTest, NegativeTopKIsInvalidArgument) {
  Rng rng(603);
  auto graph = ErdosRenyi(30, 90, &rng);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  RankRequest request;
  request.top_k = -1;
  auto result = engine.Rank(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("top_k"), std::string::npos);
}

TEST(TopKEngineDispatchTest, BoundIndexIsBuiltOnceAndCached) {
  Rng rng(604);
  auto graph = BarabasiAlbert(150, 2, &rng);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  RankRequest request;
  request.method = SolverMethod::kForwardPush;
  request.seeds = {3};
  request.top_k = 5;
  ASSERT_TRUE(engine.Rank(request).ok());
  EXPECT_EQ(engine.degree_bound_builds(), 1);
  request.seeds = {9};  // same transition key, different query
  ASSERT_TRUE(engine.Rank(request).ok());
  EXPECT_EQ(engine.degree_bound_builds(), 1);
  request.p = 0.5;  // new transition key: a new index
  ASSERT_TRUE(engine.Rank(request).ok());
  EXPECT_EQ(engine.degree_bound_builds(), 2);
}

TEST(TopKEngineDispatchTest, ExactTruncationStoresFullWarmStart) {
  // A truncated power solve under a warm tag must store the FULL vector:
  // the follow-up tagged request has to warm-start from a complete
  // iterate, not a 5-entry stub.
  Rng rng(605);
  auto graph = BarabasiAlbert(120, 2, &rng);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  RankRequest request;
  request.seeds = {4};
  request.top_k = 5;
  request.warm_start_tag = "sweep";
  auto first = engine.Rank(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->truncated);
  auto second = engine.Rank(request);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->warm_start_hit);
  // Warm-started from the converged full solution: trivial to re-converge.
  EXPECT_LE(second->iterations, 2);
  ASSERT_EQ(second->top.size(), first->top.size());
  for (size_t i = 0; i < second->top.size(); ++i) {
    EXPECT_EQ(second->top[i].node, first->top[i].node);
    EXPECT_NEAR(second->top[i].score, first->top[i].score, 1e-9);
  }
}

TEST(TopKServingRuntimeTest, TruncatedResponsesAreServedAndCached) {
  Rng rng(606);
  auto graph = BarabasiAlbert(150, 2, &rng);
  ASSERT_TRUE(graph.ok());
  D2prEngine engine = D2prEngine::Borrowing(*graph);
  ServingRuntime runtime =
      ServingRuntime::Borrowing(engine, {.score_cache_capacity = 16});
  RankRequest request;
  request.method = SolverMethod::kForwardPush;
  request.seeds = {8};
  request.top_k = 10;
  auto first = runtime.Rank(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->truncated);
  auto second = runtime.Rank(request);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(runtime.score_cache().stats().hits, 1);
  ASSERT_EQ(second->top.size(), first->top.size());
  for (size_t i = 0; i < second->top.size(); ++i) {
    EXPECT_EQ(second->top[i], first->top[i]);
  }

  // Exact and truncated forms of the same query must not share a cache
  // slot: the exact request still gets its full vector.
  RankRequest exact = request;
  exact.top_k = 0;
  auto full = runtime.Rank(exact);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->truncated);
  EXPECT_FALSE(full->scores.empty());
}

TEST(TopKRouterTest, ReplicatedPassthroughMatchesSingleEngine) {
  Rng rng(607);
  auto graph = BarabasiAlbert(200, 3, &rng);
  ASSERT_TRUE(graph.ok());
  D2prEngine reference = D2prEngine::Borrowing(*graph);
  EngineRouter router =
      EngineRouter::Borrowing(*graph, {.num_shards = 3});

  RankRequest request;
  request.method = SolverMethod::kForwardPush;
  request.seeds = {17};
  request.top_k = 10;
  auto expected = reference.Rank(request);
  auto routed = router.Rank(request);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  ASSERT_TRUE(routed->truncated);
  ASSERT_EQ(routed->top.size(), expected->top.size());
  for (size_t i = 0; i < routed->top.size(); ++i) {
    EXPECT_EQ(routed->top[i], expected->top[i]) << "rank " << i;
  }
  EXPECT_EQ(routed->uncertainty_gap, expected->uncertainty_gap);
}

TEST(TopKRouterTest, TeleportSplitMergeAgreesWithExactTopK) {
  // Multi-seed requests that span shards exercise the split path: the
  // router strips top_k from the sub-requests, merges full vectors, and
  // truncates once — so the served set must match the single-engine
  // exact top-k, and certified entries clear the 1e-9 merge margin.
  Rng rng(608);
  auto graph = BarabasiAlbert(240, 3, &rng);
  ASSERT_TRUE(graph.ok());
  D2prEngine reference = D2prEngine::Borrowing(*graph);
  EngineRouter router = EngineRouter::Borrowing(
      *graph,
      {.num_shards = 3, .policy = RoutingPolicy::kPartitionedTeleport});

  RankRequest request;
  request.tolerance = 1e-12;
  request.max_iterations = 3000;
  // Seeds chosen to span all three shards under the default ShardMap.
  request.seeds = {1, 101, 201};
  request.top_k = 10;

  RankRequest full = request;
  full.top_k = 0;
  auto exact = reference.Rank(full);
  ASSERT_TRUE(exact.ok());

  auto routed = router.Rank(request);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  ExpectCertifiedSubsetOfExact(*routed, exact->scores, 10);
  // The routed set itself (certified or not) matches the exact top-10
  // modulo near-ties.
  const std::vector<NodeId> truth = ExactTopK(exact->scores, 10);
  const double kth = exact->scores[static_cast<size_t>(truth.back())];
  for (const RankedEntry& entry : routed->top) {
    EXPECT_GE(exact->scores[static_cast<size_t>(entry.node)], kth - 1e-7)
        << "served node " << entry.node;
  }
}

TEST(TopKRouterTest, PartitionedSubgraphRejectsTopK) {
  Rng rng(609);
  auto graph = BarabasiAlbert(120, 2, &rng);
  ASSERT_TRUE(graph.ok());
  EngineRouter router = EngineRouter::Borrowing(
      *graph,
      {.num_shards = 2, .policy = RoutingPolicy::kPartitionedSubgraph});
  RankRequest request;
  request.seeds = {5};
  request.top_k = 10;
  auto result = router.Rank(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("partitioned-subgraph"),
            std::string::npos);
}

TEST(TopKTruncateTest, ExactTruncationHelperCertifiesByMargin) {
  // Node 2's score sits 5e-10 below node 1's: inside a 1e-9 merge margin,
  // far outside a zero margin.
  const std::vector<double> scores = {0.4, 0.3, 0.3 - 5e-10, 0.1, 0.05};

  // Margin 0 (exact serving): the boundary is exact, everything selected
  // is certified and the gap is zero.
  TruncatedTopK strict = TruncateToTopK(scores, 2, 0.0);
  ASSERT_EQ(strict.entries.size(), 2u);
  EXPECT_EQ(strict.entries[0].node, 0);
  EXPECT_EQ(strict.entries[1].node, 1);
  EXPECT_TRUE(strict.entries[0].certified);
  EXPECT_TRUE(strict.entries[1].certified);
  EXPECT_EQ(strict.uncertainty_gap, 0.0);

  // Margin 1e-9 (router merge): node 1 no longer clears the excluded
  // node 2 by the margin, so it is served uncertified with a nonzero gap;
  // node 0 still clears easily.
  TruncatedTopK merged = TruncateToTopK(scores, 2, 1e-9);
  ASSERT_EQ(merged.entries.size(), 2u);
  EXPECT_TRUE(merged.entries[0].certified);
  EXPECT_FALSE(merged.entries[1].certified);
  EXPECT_GT(merged.uncertainty_gap, 0.0);

  // Deterministic tie handling: equal scores order by ascending node id.
  const std::vector<double> tied = {0.25, 0.25, 0.25, 0.25};
  TruncatedTopK ties = TruncateToTopK(tied, 2, 0.0);
  ASSERT_EQ(ties.entries.size(), 2u);
  EXPECT_EQ(ties.entries[0].node, 0);
  EXPECT_EQ(ties.entries[1].node, 1);

  // k >= n returns everything, certified (nothing is excluded).
  TruncatedTopK all = TruncateToTopK(scores, 10, 1e-9);
  ASSERT_EQ(all.entries.size(), scores.size());
  for (const RankedEntry& entry : all.entries) {
    EXPECT_TRUE(entry.certified);
  }
  EXPECT_EQ(all.uncertainty_gap, 0.0);

  // k = 0 and empty inputs degrade to an empty result.
  EXPECT_TRUE(TruncateToTopK(scores, 0, 0.0).entries.empty());
  EXPECT_TRUE(TruncateToTopK({}, 3, 0.0).entries.empty());
}

}  // namespace
}  // namespace d2pr
