// RpcServer: the network front door over a ServingRuntime or EngineRouter.
//
// One accept thread plus one reader/writer thread pair per connection,
// all speaking the length-prefixed frame protocol of net/wire.h. Solves
// never run on connection threads: a decoded RankRequest is handed to the
// backend's completion-queue RankAsync — the callback encodes the
// response on the worker that solved it and drops the bytes onto the
// owning connection's write queue. N in-flight requests therefore cost
// zero parked threads (the old fan-in was one future.get() per request),
// and responses leave in completion order, matched by request id.
//
// Three protections stand between the socket and the solver:
//
//   * Admission control — a request arriving while the backend pool's
//     queue_depth() is at or past ServerOptions::max_queue_depth is
//     answered immediately with a kUnavailable frame and never enqueued.
//     Shedding at the door keeps queue wait (the dominant latency term
//     past saturation) bounded for everything already admitted.
//   * Deadlines — a request carrying deadline_ms > 0 gets an absolute
//     deadline stamped at admission. It is checked twice more: on the
//     worker immediately before the solve (an expired request is dropped
//     without the engine ever seeing it — the gate) and at response
//     delivery (a response that can no longer arrive in time is replaced
//     by DeadlineExceeded). Exactly three clock reads per deadlined
//     request — stamp, gate, delivery — all through the injectable
//     ServerOptions::clock_ms, which is what makes deadline behavior
//     deterministically testable.
//   * Coalescing — identical cacheable requests (same ScoreCache key, no
//     warm tag) already in flight are joined, not re-enqueued: the new
//     (connection, request id, deadline) triple is appended to the
//     in-flight entry's waiter list and the single solve fans out to all
//     waiters, each under its own deadline. Joins skip admission — they
//     add no pool work.
//
// Framing errors (bad magic/version/type, oversize length, truncation)
// close the connection; a well-formed frame whose payload fails to decode
// gets a kStatus InvalidArgument reply and the connection lives on. The
// distinction mirrors wire.h: broken stream vs broken request.

#ifndef D2PR_NET_SERVER_H_
#define D2PR_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/rank_request.h"
#include "common/result.h"
#include "net/socket.h"
#include "net/wire.h"

namespace d2pr {

class ServingRuntime;
class EngineRouter;

/// \brief The serving surface RpcServer needs from its backend — the
/// seam that lets one server front either a single-engine ServingRuntime
/// or an EngineRouter fleet (any routing policy).
class RankBackend {
 public:
  virtual ~RankBackend() = default;

  /// Completion-queue solve: runs `request` on the backend's pool; `gate`
  /// (if non-null) runs on the worker immediately before the solve and a
  /// non-OK return skips the solve; `done` receives the result on the
  /// worker.
  virtual void RankAsync(RankRequest request,
                         std::function<void(Result<RankResponse>)> done,
                         std::function<Status()> gate) = 0;

  /// Tasks waiting in the backend pool's queue (the admission signal).
  virtual int64_t queue_depth() = 0;

  /// What the server reports in kInfoResponse frames.
  virtual ServerInfo info() = 0;
};

/// \brief Backend adapter over a ServingRuntime (caller keeps it alive).
std::unique_ptr<RankBackend> MakeBackend(ServingRuntime& runtime);
/// \brief Backend adapter over an EngineRouter (caller keeps it alive).
std::unique_ptr<RankBackend> MakeBackend(EngineRouter& router);

/// \brief RpcServer construction knobs.
struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 (default) binds an ephemeral port, reported
  /// by port() after Start().
  uint16_t port = 0;
  /// Admission bound: a non-coalesced rank request arriving while the
  /// backend queue_depth() >= this is shed with kUnavailable.
  int64_t max_queue_depth = 256;
  /// Join identical in-flight cacheable requests instead of re-solving.
  bool coalesce = true;
  /// Monotonic milliseconds for deadline arithmetic; defaults to
  /// std::chrono::steady_clock. Injectable so tests can step time
  /// deterministically (see the three-read discipline in the file
  /// comment).
  std::function<int64_t()> clock_ms;
};

/// \brief Cumulative server counters (atomic; read individually exact).
struct ServerStats {
  std::atomic<int64_t> connections_accepted{0};
  std::atomic<int64_t> requests_received{0};  ///< Rank frames decoded OK.
  std::atomic<int64_t> responses_sent{0};     ///< Any reply frame enqueued.
  std::atomic<int64_t> shed_unavailable{0};   ///< Admission rejections.
  /// Deadline expiries caught by the pre-solve gate (the engine never ran)
  /// vs at response delivery (the solve ran but the reply was too late).
  std::atomic<int64_t> deadline_expired_presolve{0};
  std::atomic<int64_t> deadline_expired_delivery{0};
  std::atomic<int64_t> coalesce_joins{0};  ///< Requests joined in flight.
  /// Framing violations (each closed its connection).
  std::atomic<int64_t> protocol_errors{0};
  /// Well-formed frames whose payload failed to decode (kStatus replied).
  std::atomic<int64_t> decode_errors{0};
};

/// \brief Length-prefixed RPC server over one RankBackend.
class RpcServer {
 public:
  /// `backend` must outlive the server.
  RpcServer(RankBackend& backend, const ServerOptions& options = {});

  /// Stops and joins everything (see Stop()).
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds, listens, and starts the accept loop. IoError when the port
  /// cannot be bound; FailedPrecondition when already started.
  Status Start();

  /// Stops accepting, tears down every connection, waits for in-flight
  /// backend callbacks to finish, and joins all threads. Idempotent.
  void Stop();

  /// The bound port; valid after a successful Start().
  uint16_t port() const { return port_; }

  const ServerStats& stats() const { return stats_; }

 private:
  /// Per-connection state. Reader and writer threads plus a write queue;
  /// completion callbacks touch only EnqueueWrite, so a connection that
  /// died early just swallows its late responses.
  struct Connection {
    Socket socket;
    std::thread reader;
    std::thread writer;

    std::mutex write_mu;
    std::condition_variable write_cv;
    std::deque<std::vector<uint8_t>> write_queue;
    bool closed = false;  ///< Guarded by write_mu.

    /// Queues `frame` for the writer thread; dropped when closed.
    void EnqueueWrite(std::vector<uint8_t> frame);
    /// Rejects further enqueues and lets the writer drain what is queued
    /// and exit — the graceful half of Close(), used by Stop() so
    /// admitted responses flush before the socket goes down.
    void SealWrites();
    /// SealWrites plus socket shutdown: unblocks a writer mid-send and
    /// shows the peer EOF. Queued-but-unsent frames may be lost.
    void Close();
  };

  /// One response destination of an in-flight solve.
  struct Waiter {
    std::shared_ptr<Connection> connection;
    uint64_t request_id = 0;
    /// Absolute deadline in clock_ms units; INT64_MAX = none.
    int64_t deadline_ms = 0;
  };
  /// An in-flight (possibly coalesced) solve.
  struct Inflight {
    std::vector<Waiter> waiters;
  };

  void AcceptLoop();
  void ReaderLoop(const std::shared_ptr<Connection>& connection);
  void WriterLoop(const std::shared_ptr<Connection>& connection);

  /// Dispatches one decoded rank request: stamp deadline, coalesce-join
  /// or admit, submit to the backend with the deadline gate.
  void HandleRank(const std::shared_ptr<Connection>& connection,
                  uint64_t request_id, WireRankRequest wire);

  /// Completion path: fans the solve result out to every waiter of
  /// `key`, enforcing each waiter's delivery deadline.
  void CompleteRank(const std::string& key,
                    const Result<RankResponse>& result);

  /// Sends one reply frame (response, status, or unavailable) to a
  /// single waiter, applying the delivery deadline check.
  void DeliverTo(const Waiter& waiter, const Result<RankResponse>& result);

  int64_t NowMs() const;

  RankBackend& backend_;
  ServerOptions options_;
  ServerStats stats_;

  ListenSocket listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  std::mutex connections_mu_;
  std::vector<std::shared_ptr<Connection>> connections_;

  /// Guards inflight_: the find + admission check + insert sequence in
  /// HandleRank holds it across all three, so two identical concurrent
  /// requests can never both miss the map and double-solve.
  std::mutex inflight_mu_;
  std::unordered_map<std::string, Inflight> inflight_;

  /// Backend submissions whose completion callback has not finished.
  /// Stop() waits for this to drain before joining writers, so every
  /// admitted request gets its response (or deadline status) even across
  /// shutdown.
  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  int64_t pending_ = 0;
};

}  // namespace d2pr

#endif  // D2PR_NET_SERVER_H_
