#include "core/sweeps.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/classic_generators.h"
#include "graph/graph_builder.h"

namespace d2pr {
namespace {

TEST(LinearGridTest, PaperPGrid) {
  const std::vector<double> grid = PaperPGrid();
  ASSERT_EQ(grid.size(), 17u);
  EXPECT_DOUBLE_EQ(grid.front(), -4.0);
  EXPECT_DOUBLE_EQ(grid.back(), 4.0);
  EXPECT_DOUBLE_EQ(grid[8], 0.0);  // p = 0 must be on the grid exactly
  for (size_t i = 1; i < grid.size(); ++i) {
    EXPECT_NEAR(grid[i] - grid[i - 1], 0.5, 1e-12);
  }
}

TEST(LinearGridTest, InclusiveEndpointsAndStep) {
  EXPECT_EQ(LinearGrid(0.0, 1.0, 0.25),
            (std::vector<double>{0.0, 0.25, 0.5, 0.75, 1.0}));
  EXPECT_EQ(LinearGrid(2.0, 2.0, 1.0), (std::vector<double>{2.0}));
}

TEST(LinearGridTest, NonDivisibleRangeStopsBeforeHi) {
  const std::vector<double> grid = LinearGrid(0.0, 1.0, 0.4);
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_DOUBLE_EQ(grid[2], 0.8);
}

TEST(LinearGridTest, PaperAlphaAndBetaGrids) {
  EXPECT_EQ(PaperAlphaGrid(), (std::vector<double>{0.5, 0.7, 0.85, 0.9}));
  EXPECT_EQ(PaperBetaGrid(),
            (std::vector<double>{0.0, 0.25, 0.5, 0.75, 1.0}));
}

TEST(LinearGridDeathTest, InvalidStepAborts) {
  EXPECT_DEATH(LinearGrid(0.0, 1.0, 0.0), "CHECK failed");
  EXPECT_DEATH(LinearGrid(1.0, 0.0, 0.5), "CHECK failed");
}

TEST(SweepPTest, EvaluatesEveryPoint) {
  Rng rng(12);
  auto graph = BarabasiAlbert(150, 2, &rng);
  ASSERT_TRUE(graph.ok());
  const std::vector<double> p_values{-1.0, 0.0, 1.0};
  auto sweep = SweepP(*graph, p_values);
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ((*sweep)[i].parameter, p_values[i]);
    EXPECT_TRUE((*sweep)[i].result.converged);
    EXPECT_EQ((*sweep)[i].result.scores.size(), 150u);
  }
  // Different p must actually change the scores.
  EXPECT_NE((*sweep)[0].result.scores, (*sweep)[2].result.scores);
}

TEST(SweepAlphaTest, EvaluatesEveryAlpha) {
  Rng rng(13);
  auto graph = ErdosRenyi(100, 300, &rng);
  ASSERT_TRUE(graph.ok());
  auto sweep = SweepAlpha(*graph, {0.5, 0.9});
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->size(), 2u);
  EXPECT_LT((*sweep)[0].result.iterations, (*sweep)[1].result.iterations);
}

TEST(SweepBetaTest, RequiresNothingSpecialOnWeighted) {
  GraphBuilder builder(4, GraphKind::kUndirected, /*weighted=*/true);
  ASSERT_TRUE(builder.AddEdge(0, 1, 5.0).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2, 1.0).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3, 2.0).ok());
  ASSERT_TRUE(builder.AddEdge(3, 0, 1.0).ok());
  auto graph = builder.Build();
  ASSERT_TRUE(graph.ok());
  D2prOptions base;
  base.p = 1.0;
  auto sweep = SweepBeta(*graph, PaperBetaGrid(), base);
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(sweep->size(), 5u);
  // beta = 0 vs beta = 1 must differ (full de-coupling vs pure strength).
  EXPECT_NE((*sweep)[0].result.scores, (*sweep)[4].result.scores);
}

TEST(SweepTest, PropagatesInvalidConfig) {
  Rng rng(14);
  auto graph = ErdosRenyi(30, 60, &rng);
  ASSERT_TRUE(graph.ok());
  D2prOptions bad;
  bad.alpha = 1.5;
  EXPECT_FALSE(SweepP(*graph, {0.0}, bad).ok());
}

}  // namespace
}  // namespace d2pr
