// CsrGraph: immutable compressed-sparse-row adjacency structure.
//
// This is the library's central data structure: every transition model and
// random-walk computation reads adjacency through it. Graphs are built once
// via GraphBuilder and never mutated afterwards, which keeps the hot loops
// free of synchronization and lets readers share one instance.
//
// Storage convention:
//  * Directed graphs store each arc (u -> v) once, grouped by source u.
//  * Undirected graphs store each edge {u, v} as two arcs (u -> v) and
//    (v -> u), so OutDegree(v) equals the classical degree deg(v). A
//    self-loop is stored as a single arc and contributes 1 to the degree.
//  * Within a source's row, targets are sorted ascending and unique
//    (duplicates are merged at build time).

#ifndef D2PR_GRAPH_CSR_GRAPH_H_
#define D2PR_GRAPH_CSR_GRAPH_H_

#include <span>
#include <vector>

#include "common/check.h"
#include "graph/types.h"

namespace d2pr {

/// \brief Immutable sparse graph in CSR form.
class CsrGraph {
 public:
  /// Creates an empty graph with zero nodes.
  CsrGraph() : offsets_(1, 0), kind_(GraphKind::kUndirected) {}

  /// Number of nodes (node ids are 0 .. num_nodes()-1).
  NodeId num_nodes() const {
    return static_cast<NodeId>(offsets_.size() - 1);
  }

  /// Number of stored arcs. For undirected graphs this is twice the number
  /// of non-loop edges plus the number of self-loops.
  EdgeIndex num_arcs() const {
    return static_cast<EdgeIndex>(targets_.size());
  }

  /// Number of logical edges: arcs for directed graphs; for undirected
  /// graphs, reciprocal arc pairs count once and self-loops count once.
  EdgeIndex num_edges() const;

  GraphKind kind() const { return kind_; }
  bool directed() const { return kind_ == GraphKind::kDirected; }

  /// True if per-arc weights are stored.
  bool weighted() const { return !weights_.empty(); }

  /// Out-degree of `v` (== degree for undirected graphs).
  EdgeIndex OutDegree(NodeId v) const {
    D2PR_DCHECK(v >= 0 && v < num_nodes());
    return offsets_[v + 1] - offsets_[v];
  }

  /// Targets of arcs leaving `v`, sorted ascending.
  std::span<const NodeId> OutNeighbors(NodeId v) const {
    D2PR_DCHECK(v >= 0 && v < num_nodes());
    return {targets_.data() + offsets_[v],
            static_cast<size_t>(OutDegree(v))};
  }

  /// Weights aligned with OutNeighbors(v). Only valid when weighted().
  std::span<const double> OutWeights(NodeId v) const {
    D2PR_DCHECK(weighted());
    D2PR_DCHECK(v >= 0 && v < num_nodes());
    return {weights_.data() + offsets_[v], static_cast<size_t>(OutDegree(v))};
  }

  /// Index of the first arc of `v` in the flat arc arrays.
  EdgeIndex ArcBegin(NodeId v) const { return offsets_[v]; }

  /// Flat arrays (for kernels that iterate all arcs).
  std::span<const EdgeIndex> offsets() const { return offsets_; }
  std::span<const NodeId> targets() const { return targets_; }
  std::span<const double> weights() const { return weights_; }

  /// True if `u` has an arc to `v` (binary search, O(log deg)).
  bool HasArc(NodeId u, NodeId v) const;

  /// Weight of arc (u -> v); 0.0 when absent; 1.0 when present on an
  /// unweighted graph.
  double ArcWeight(NodeId u, NodeId v) const;

  /// Sum of weights of arcs leaving `v` (the paper's Θ(v)); equals
  /// OutDegree(v) on unweighted graphs.
  double OutStrength(NodeId v) const;

  /// In-degrees of every node (counts arcs entering each node).
  std::vector<EdgeIndex> InDegrees() const;

  /// Returns the transpose (arcs reversed). The transpose of an undirected
  /// graph is itself (copy).
  CsrGraph Transpose() const;

  /// Count of nodes with no outgoing arcs (dangling for random walks).
  NodeId CountDangling() const;

  /// Structural equality (same kind, offsets, targets, weights).
  bool operator==(const CsrGraph& other) const;

 private:
  friend class GraphBuilder;

  CsrGraph(std::vector<EdgeIndex> offsets, std::vector<NodeId> targets,
           std::vector<double> weights, GraphKind kind)
      : offsets_(std::move(offsets)),
        targets_(std::move(targets)),
        weights_(std::move(weights)),
        kind_(kind) {}

  std::vector<EdgeIndex> offsets_;  // size num_nodes()+1
  std::vector<NodeId> targets_;     // size num_arcs()
  std::vector<double> weights_;     // empty or size num_arcs()
  GraphKind kind_;
};

}  // namespace d2pr

#endif  // D2PR_GRAPH_CSR_GRAPH_H_
