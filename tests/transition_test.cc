#include "core/transition.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/classic_generators.h"
#include "graph/graph_builder.h"

namespace d2pr {
namespace {

CsrGraph BuildOrDie(GraphBuilder* builder) {
  auto result = builder->Build();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TransitionMatrix BuildTransitionOrDie(const CsrGraph& graph,
                                      const TransitionConfig& config) {
  auto result = TransitionMatrix::Build(graph, config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// The paper's Figure 1: node A (0) has neighbors B (1, degree 2),
// C (2, degree 3), D (3, degree 1). Edges: A-B, A-C, A-D, B-E, C-E, C-F.
CsrGraph Figure1Graph() {
  GraphBuilder builder(6, GraphKind::kUndirected);
  EXPECT_TRUE(builder.AddEdge(0, 1).ok());
  EXPECT_TRUE(builder.AddEdge(0, 2).ok());
  EXPECT_TRUE(builder.AddEdge(0, 3).ok());
  EXPECT_TRUE(builder.AddEdge(1, 4).ok());
  EXPECT_TRUE(builder.AddEdge(2, 4).ok());
  EXPECT_TRUE(builder.AddEdge(2, 5).ok());
  return BuildOrDie(&builder);
}

// --- The paper's worked example (Figure 1(b)), exact values. ---

TEST(TransitionFigure1Test, ConventionalPageRankIsUniform) {
  CsrGraph graph = Figure1Graph();
  TransitionMatrix t = BuildTransitionOrDie(graph, {.p = 0.0});
  EXPECT_NEAR(t.Prob(graph, 0, 1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(t.Prob(graph, 0, 2), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(t.Prob(graph, 0, 3), 1.0 / 3.0, 1e-12);
}

TEST(TransitionFigure1Test, PenalizationPEquals2) {
  // deg^-2: B: 1/4, C: 1/9, D: 1. Sum = 49/36.
  // P(A->B) = (1/4)/(49/36) = 9/49 ≈ 0.18
  // P(A->C) = (1/9)/(49/36) = 4/49 ≈ 0.08
  // P(A->D) = 1/(49/36)    = 36/49 ≈ 0.74
  CsrGraph graph = Figure1Graph();
  TransitionMatrix t = BuildTransitionOrDie(graph, {.p = 2.0});
  EXPECT_NEAR(t.Prob(graph, 0, 1), 9.0 / 49.0, 1e-12);
  EXPECT_NEAR(t.Prob(graph, 0, 2), 4.0 / 49.0, 1e-12);
  EXPECT_NEAR(t.Prob(graph, 0, 3), 36.0 / 49.0, 1e-12);
  // Paper reports these as 0.18 / 0.08 / 0.74 (0.7347 printed as 0.74).
  EXPECT_NEAR(t.Prob(graph, 0, 1), 0.18, 0.01);
  EXPECT_NEAR(t.Prob(graph, 0, 2), 0.08, 0.01);
  EXPECT_NEAR(t.Prob(graph, 0, 3), 0.74, 0.01);
}

TEST(TransitionFigure1Test, BoostingPEqualsMinus2) {
  // deg^2: B: 4, C: 9, D: 1. Sum = 14.
  // Paper reports 0.29 / 0.64 / 0.07.
  CsrGraph graph = Figure1Graph();
  TransitionMatrix t = BuildTransitionOrDie(graph, {.p = -2.0});
  EXPECT_NEAR(t.Prob(graph, 0, 1), 4.0 / 14.0, 1e-12);
  EXPECT_NEAR(t.Prob(graph, 0, 2), 9.0 / 14.0, 1e-12);
  EXPECT_NEAR(t.Prob(graph, 0, 3), 1.0 / 14.0, 1e-12);
}

// --- Desideratum limit cases (paper §3.1). ---

TEST(TransitionDesideratumTest, LargePositivePGoesToLowestDegree) {
  CsrGraph graph = Figure1Graph();
  TransitionMatrix t = BuildTransitionOrDie(graph, {.p = 60.0});
  // D has the lowest degree among A's neighbors: transition ~100% to D.
  EXPECT_GT(t.Prob(graph, 0, 3), 0.999999);
  EXPECT_LT(t.Prob(graph, 0, 1), 1e-6);
  EXPECT_LT(t.Prob(graph, 0, 2), 1e-6);
}

TEST(TransitionDesideratumTest, LargeNegativePGoesToHighestDegree) {
  CsrGraph graph = Figure1Graph();
  TransitionMatrix t = BuildTransitionOrDie(graph, {.p = -60.0});
  // C has the highest degree among A's neighbors.
  EXPECT_GT(t.Prob(graph, 0, 2), 0.999999);
}

TEST(TransitionDesideratumTest, PEqualsMinus1IsProportionalToDegree) {
  CsrGraph graph = Figure1Graph();
  TransitionMatrix t = BuildTransitionOrDie(graph, {.p = -1.0});
  EXPECT_NEAR(t.Prob(graph, 0, 1), 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(t.Prob(graph, 0, 2), 3.0 / 6.0, 1e-12);
  EXPECT_NEAR(t.Prob(graph, 0, 3), 1.0 / 6.0, 1e-12);
}

TEST(TransitionDesideratumTest, PEquals1IsInverselyProportional) {
  CsrGraph graph = Figure1Graph();
  TransitionMatrix t = BuildTransitionOrDie(graph, {.p = 1.0});
  const double total = 1.0 / 2.0 + 1.0 / 3.0 + 1.0;
  EXPECT_NEAR(t.Prob(graph, 0, 1), (1.0 / 2.0) / total, 1e-12);
  EXPECT_NEAR(t.Prob(graph, 0, 2), (1.0 / 3.0) / total, 1e-12);
  EXPECT_NEAR(t.Prob(graph, 0, 3), 1.0 / total, 1e-12);
}

// --- Column-stochastic invariant across the whole p range (property). ---

class TransitionStochasticTest : public ::testing::TestWithParam<double> {};

TEST_P(TransitionStochasticTest, RowsOfEverySourceSumToOne) {
  Rng rng(2016);
  auto graph = BarabasiAlbert(300, 3, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = BuildTransitionOrDie(*graph, {.p = GetParam()});
  for (NodeId v = 0; v < graph->num_nodes(); ++v) {
    double total = 0.0;
    for (NodeId u : graph->OutNeighbors(v)) total += t.Prob(*graph, v, u);
    EXPECT_NEAR(total, 1.0, 1e-9) << "source " << v << " p " << GetParam();
  }
}

TEST_P(TransitionStochasticTest, ProbabilitiesAreFiniteAndNonNegative) {
  Rng rng(7);
  auto graph = ErdosRenyi(150, 600, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = BuildTransitionOrDie(*graph, {.p = GetParam()});
  for (double prob : t.probs()) {
    EXPECT_TRUE(std::isfinite(prob));
    EXPECT_GE(prob, 0.0);
    EXPECT_LE(prob, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(PGrid, TransitionStochasticTest,
                         ::testing::Values(-50.0, -4.0, -2.0, -1.0, -0.5,
                                           0.0, 0.5, 1.0, 2.0, 4.0, 50.0));

// --- Weighted graphs and the beta blend (paper §3.2.3). ---

CsrGraph WeightedTriangle() {
  GraphBuilder builder(3, GraphKind::kDirected, /*weighted=*/true);
  EXPECT_TRUE(builder.AddEdge(0, 1, 3.0).ok());
  EXPECT_TRUE(builder.AddEdge(0, 2, 1.0).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2, 2.0).ok());
  EXPECT_TRUE(builder.AddEdge(2, 0, 1.0).ok());
  auto graph = builder.Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(TransitionWeightedTest, BetaOneIsPureConnectionStrength) {
  CsrGraph graph = WeightedTriangle();
  TransitionMatrix t =
      BuildTransitionOrDie(graph, {.p = 2.0, .beta = 1.0});
  // beta = 1: T = T_conn regardless of p.
  EXPECT_NEAR(t.Prob(graph, 0, 1), 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(t.Prob(graph, 0, 2), 1.0 / 4.0, 1e-12);
}

TEST(TransitionWeightedTest, BetaZeroUsesOutStrengthMetric) {
  CsrGraph graph = WeightedTriangle();
  // Θ(1) = 2, Θ(2) = 1. p = 1: weights Θ^-1 -> 1/2 and 1.
  TransitionMatrix t =
      BuildTransitionOrDie(graph, {.p = 1.0, .beta = 0.0});
  EXPECT_NEAR(t.Prob(graph, 0, 1), (1.0 / 2.0) / (3.0 / 2.0), 1e-12);
  EXPECT_NEAR(t.Prob(graph, 0, 2), 1.0 / (3.0 / 2.0), 1e-12);
}

TEST(TransitionWeightedTest, BetaBlendsLinearly) {
  CsrGraph graph = WeightedTriangle();
  const double beta = 0.25;
  TransitionMatrix blend =
      BuildTransitionOrDie(graph, {.p = 1.0, .beta = beta});
  TransitionMatrix conn =
      BuildTransitionOrDie(graph, {.p = 1.0, .beta = 1.0});
  TransitionMatrix decoupled =
      BuildTransitionOrDie(graph, {.p = 1.0, .beta = 0.0});
  for (NodeId u : {0, 1, 2}) {
    for (NodeId v : graph.OutNeighbors(u)) {
      EXPECT_NEAR(blend.Prob(graph, u, v),
                  beta * conn.Prob(graph, u, v) +
                      (1 - beta) * decoupled.Prob(graph, u, v),
                  1e-12);
    }
  }
}

TEST(TransitionWeightedTest, BetaIgnoredOnUnweightedGraphs) {
  CsrGraph graph = Figure1Graph();
  TransitionMatrix with_beta =
      BuildTransitionOrDie(graph, {.p = 2.0, .beta = 0.75});
  TransitionMatrix without =
      BuildTransitionOrDie(graph, {.p = 2.0, .beta = 0.0});
  for (size_t e = 0; e < with_beta.probs().size(); ++e) {
    EXPECT_DOUBLE_EQ(with_beta.probs()[e], without.probs()[e]);
  }
}

// --- Directed graphs: out-degree metric and sink semantics (§3.2.2). ---

TEST(TransitionDirectedTest, UsesOutDegreeOfDestination) {
  // 0 -> 1 (outdeg 2), 0 -> 2 (outdeg 1); 1 -> {0, 2}; 2 -> 0.
  GraphBuilder builder(3, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  ASSERT_TRUE(builder.AddEdge(1, 0).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  ASSERT_TRUE(builder.AddEdge(2, 0).ok());
  CsrGraph graph = BuildOrDie(&builder);
  TransitionMatrix t = BuildTransitionOrDie(graph, {.p = 1.0});
  // outdeg(1) = 2, outdeg(2) = 1: weights 1/2 and 1.
  EXPECT_NEAR(t.Prob(graph, 0, 1), (0.5) / 1.5, 1e-12);
  EXPECT_NEAR(t.Prob(graph, 0, 2), 1.0 / 1.5, 1e-12);
}

TEST(TransitionDirectedTest, SinkCapturesRowWhenPenalizing) {
  // 0 -> 1 (sink, outdeg 0) and 0 -> 2 (outdeg 1).
  GraphBuilder builder(3, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  ASSERT_TRUE(builder.AddEdge(2, 0).ok());
  CsrGraph graph = BuildOrDie(&builder);
  // p > 0: 0^-p -> infinity: the sink dominates (limit semantics).
  TransitionMatrix penal = BuildTransitionOrDie(graph, {.p = 1.0});
  EXPECT_DOUBLE_EQ(penal.Prob(graph, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(penal.Prob(graph, 0, 2), 0.0);
  // p < 0: 0^|p| -> 0: the sink is avoided entirely.
  TransitionMatrix boost = BuildTransitionOrDie(graph, {.p = -1.0});
  EXPECT_DOUBLE_EQ(boost.Prob(graph, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(boost.Prob(graph, 0, 2), 1.0);
  // p = 0: conventional, uniform.
  TransitionMatrix plain = BuildTransitionOrDie(graph, {.p = 0.0});
  EXPECT_DOUBLE_EQ(plain.Prob(graph, 0, 1), 0.5);
}

TEST(TransitionDirectedTest, AllSinkNeighborsWithBoostFallBackToUniform) {
  GraphBuilder builder(3, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  CsrGraph graph = BuildOrDie(&builder);
  TransitionMatrix t = BuildTransitionOrDie(graph, {.p = -2.0});
  EXPECT_DOUBLE_EQ(t.Prob(graph, 0, 1), 0.5);
  EXPECT_DOUBLE_EQ(t.Prob(graph, 0, 2), 0.5);
}

// --- Validation and structure. ---

TEST(TransitionValidationTest, RejectsBadConfigs) {
  CsrGraph graph = Figure1Graph();
  EXPECT_FALSE(TransitionMatrix::Build(graph, {.p = 1.0, .beta = -0.1}).ok());
  EXPECT_FALSE(TransitionMatrix::Build(graph, {.p = 1.0, .beta = 1.5}).ok());
  EXPECT_FALSE(
      TransitionMatrix::Build(graph, {.p = std::nan("")}).ok());
  TransitionConfig strength_on_unweighted;
  strength_on_unweighted.metric = DegreeMetric::kOutStrength;
  EXPECT_FALSE(TransitionMatrix::Build(graph, strength_on_unweighted).ok());
}

TEST(TransitionValidationTest, DanglingNodesReported) {
  GraphBuilder builder(3, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  CsrGraph graph = BuildOrDie(&builder);
  TransitionMatrix t = BuildTransitionOrDie(graph, {});
  EXPECT_FALSE(t.IsDangling(0));
  EXPECT_TRUE(t.IsDangling(1));
  EXPECT_TRUE(t.IsDangling(2));
  EXPECT_EQ(t.DanglingNodes(), (std::vector<NodeId>{1, 2}));
}

TEST(TransitionValidationTest, InDegreeMetricExtension) {
  GraphBuilder builder(3, GraphKind::kDirected);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  ASSERT_TRUE(builder.AddEdge(2, 0).ok());
  CsrGraph graph = BuildOrDie(&builder);
  // indeg(1) = 1, indeg(2) = 2. p = 1: weights 1 and 1/2.
  TransitionConfig config;
  config.p = 1.0;
  config.metric = DegreeMetric::kInDegree;
  TransitionMatrix t = BuildTransitionOrDie(graph, config);
  EXPECT_NEAR(t.Prob(graph, 0, 1), 1.0 / 1.5, 1e-12);
  EXPECT_NEAR(t.Prob(graph, 0, 2), 0.5 / 1.5, 1e-12);
}

TEST(TransitionMultiplyTest, MatchesManualComputation) {
  CsrGraph graph = Figure1Graph();
  TransitionMatrix t = BuildTransitionOrDie(graph, {.p = 0.0});
  std::vector<double> x{1.0, 0.0, 0.0, 0.0, 0.0, 0.0};  // all mass at A
  std::vector<double> out(6, -1.0);
  t.Multiply(graph, x, out);
  EXPECT_NEAR(out[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(out[2], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(out[3], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(TransitionMultiplyTest, PreservesTotalMassWithoutDangling) {
  Rng rng(55);
  auto graph = BarabasiAlbert(100, 2, &rng);
  ASSERT_TRUE(graph.ok());
  TransitionMatrix t = BuildTransitionOrDie(*graph, {.p = 1.5});
  std::vector<double> x(100, 0.01);
  std::vector<double> out(100);
  t.Multiply(*graph, x, out);
  double total = 0.0;
  for (double v : out) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MetricValuesTest, AutoResolution) {
  CsrGraph unweighted = Figure1Graph();
  EXPECT_EQ(ResolveMetric(unweighted, DegreeMetric::kAuto),
            DegreeMetric::kOutDegree);
  CsrGraph weighted = WeightedTriangle();
  EXPECT_EQ(ResolveMetric(weighted, DegreeMetric::kAuto),
            DegreeMetric::kOutStrength);
  const std::vector<double> values =
      MetricValues(weighted, DegreeMetric::kAuto);
  EXPECT_DOUBLE_EQ(values[0], 4.0);
  EXPECT_DOUBLE_EQ(values[1], 2.0);
  EXPECT_DOUBLE_EQ(values[2], 1.0);
}

}  // namespace
}  // namespace d2pr
