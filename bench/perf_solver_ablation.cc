// Ablation: power iteration vs Gauss-Seidel sweeps for the D2PR fixed
// point. Gauss-Seidel typically needs ~half the sweeps at the same
// per-sweep cost; power iteration keeps exact distributions mid-solve and
// is the library default. Reported counters: iterations to 1e-10.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/gauss_seidel.h"
#include "core/pagerank.h"
#include "datagen/classic_generators.h"

namespace d2pr {
namespace {

struct Fixture {
  CsrGraph graph;
  TransitionMatrix transition;
};

Fixture MakeFixture(int64_t nodes, double p) {
  Rng rng(31);
  auto graph = BarabasiAlbert(static_cast<NodeId>(nodes), 4, &rng);
  D2PR_CHECK(graph.ok());
  auto transition = TransitionMatrix::Build(*graph, {.p = p});
  D2PR_CHECK(transition.ok());
  return {std::move(graph).value(), std::move(transition).value()};
}

PagerankOptions TightOptions() {
  PagerankOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 500;
  return options;
}

void BM_PowerIteration(benchmark::State& state) {
  const Fixture fixture =
      MakeFixture(state.range(0), static_cast<double>(state.range(1)));
  int iterations = 0;
  for (auto _ : state) {
    auto result =
        SolvePagerank(fixture.graph, fixture.transition, TightOptions());
    iterations = result->iterations;
    benchmark::DoNotOptimize(result->scores.data());
  }
  state.counters["iterations"] = iterations;
}
BENCHMARK(BM_PowerIteration)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({50000, 0});

void BM_GaussSeidel(benchmark::State& state) {
  const Fixture fixture =
      MakeFixture(state.range(0), static_cast<double>(state.range(1)));
  int iterations = 0;
  for (auto _ : state) {
    auto result = SolvePagerankGaussSeidel(fixture.graph,
                                           fixture.transition,
                                           TightOptions());
    iterations = result->iterations;
    benchmark::DoNotOptimize(result->scores.data());
  }
  state.counters["iterations"] = iterations;
}
BENCHMARK(BM_GaussSeidel)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({50000, 0});

}  // namespace
}  // namespace d2pr

BENCHMARK_MAIN();
