// Parameter sweeps: evaluate D2PR across grids of p, alpha, or beta.
//
// The paper's entire evaluation is sweeps of this form (p from -4 to 4 in
// steps of 0.5, alpha in {0.5, 0.7, 0.85, 0.9}, beta in {0, .25, .5, .75,
// 1}); these helpers centralize the loop so benches and applications share
// one implementation.

#ifndef D2PR_CORE_SWEEPS_H_
#define D2PR_CORE_SWEEPS_H_

#include <vector>

#include "common/result.h"
#include "core/d2pr.h"
#include "graph/csr_graph.h"

namespace d2pr {

class D2prEngine;

/// \brief Inclusive arithmetic grid lo, lo+step, ..., hi (hi included when
/// it falls on the grid within 1e-9).
std::vector<double> LinearGrid(double lo, double hi, double step);

/// \brief The paper's default p grid: -4 to 4 in steps of 0.5.
std::vector<double> PaperPGrid();

/// \brief The paper's alpha values: {0.5, 0.7, 0.85, 0.9}.
std::vector<double> PaperAlphaGrid();

/// \brief The paper's beta values: {0, 0.25, 0.5, 0.75, 1}.
std::vector<double> PaperBetaGrid();

/// \brief One evaluated grid point.
struct SweepPoint {
  double parameter = 0.0;       ///< The swept value (p, alpha, or beta).
  PagerankResult result;        ///< Full solver output at that value.
};

/// \brief Computes D2PR for every p in `p_values` (other knobs from
/// `base`). Fails fast on the first invalid configuration.
Result<std::vector<SweepPoint>> SweepP(const CsrGraph& graph,
                                       const std::vector<double>& p_values,
                                       const D2prOptions& base = {});

/// \brief Sweeps alpha with p (and the rest) fixed in `base`.
Result<std::vector<SweepPoint>> SweepAlpha(
    const CsrGraph& graph, const std::vector<double>& alpha_values,
    const D2prOptions& base = {});

/// \brief Sweeps beta with p fixed (weighted graphs).
Result<std::vector<SweepPoint>> SweepBeta(
    const CsrGraph& graph, const std::vector<double>& beta_values,
    const D2prOptions& base = {});

// Engine-routed variants: reuse the engine's transition cache across calls
// and warm-start each grid point from (an extrapolation of) its
// predecessors. The free functions above are thin wrappers running these
// on a call-scoped engine; pass a long-lived engine to amortize transition
// builds across repeated sweeps and tuner probes on the same graph.

Result<std::vector<SweepPoint>> SweepP(D2prEngine& engine,
                                       const std::vector<double>& p_values,
                                       const D2prOptions& base = {});

Result<std::vector<SweepPoint>> SweepAlpha(
    D2prEngine& engine, const std::vector<double>& alpha_values,
    const D2prOptions& base = {});

Result<std::vector<SweepPoint>> SweepBeta(
    D2prEngine& engine, const std::vector<double>& beta_values,
    const D2prOptions& base = {});

}  // namespace d2pr

#endif  // D2PR_CORE_SWEEPS_H_
