// ScoreCache: a request-keyed memo of full RankResponses with TTL
// expiry and LFU eviction.
//
// Serving traffic is heavily repetitive — dashboards re-request the same
// global ranking, recommenders re-rank the same hot users — and a D2PR
// solve is deterministic given the graph and the request, so an identical
// request can be answered from memory without touching a solver. The
// cache stores the complete response (scores plus diagnostics) keyed by a
// canonical serialization of every response-affecting request field.
//
// Eviction is two-tiered, matching how ranking results age:
//   * TTL: entries older than `ttl` are dropped at lookup/insert time —
//     a bound on staleness for deployments that mutate the graph by
//     swapping engines.
//   * LFU: when over capacity, the least-frequently-used entry goes
//     first (ties broken by oldest insertion), keeping the hot head of a
//     skewed query distribution resident.
//
// Thread-safe; the clock is injectable so TTL behavior is testable
// without sleeping.

#ifndef D2PR_SERVE_SCORE_CACHE_H_
#define D2PR_SERVE_SCORE_CACHE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "api/rank_request.h"

namespace d2pr {

/// \brief ScoreCache construction knobs.
struct ScoreCacheOptions {
  /// Max resident responses. 0 disables the cache entirely (every Lookup
  /// misses, Insert is a no-op).
  size_t capacity = 256;
  /// Entries older than this are expired; zero (the default) means no
  /// time-based expiry.
  std::chrono::nanoseconds ttl{0};
  /// Time source; defaults to steady_clock. Tests inject a fake to drive
  /// TTL expiry deterministically.
  std::function<std::chrono::steady_clock::time_point()> now;
};

/// \brief Cumulative ScoreCache counters (snapshot by value).
struct ScoreCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;    ///< LFU capacity evictions.
  int64_t expirations = 0;  ///< TTL expiries.
};

/// \brief TTL + LFU memo of RankResponses keyed by canonical request.
class ScoreCache {
 public:
  explicit ScoreCache(const ScoreCacheOptions& options = {});

  /// Canonical serialization of every field of `request` that affects its
  /// response. Requests that are semantically identical map to one key.
  /// The warm-start tag is deliberately excluded: warm-started responses
  /// depend on engine trajectory state and must not be memoized —
  /// ServingRuntime bypasses the cache for them.
  static std::string KeyFor(const RankRequest& request);

  /// Returns a copy of the stored response, bumping the entry's use
  /// count; nullopt on miss or TTL expiry (which erases the entry).
  std::optional<RankResponse> Lookup(const std::string& key);

  /// Stores (or refreshes) `response` under `key`, first dropping expired
  /// entries, then LFU-evicting down to capacity.
  void Insert(const std::string& key, RankResponse response);

  ScoreCacheStats stats() const;
  size_t size() const;
  size_t capacity() const { return options_.capacity; }
  void Clear();

 private:
  struct Entry {
    /// Shared + immutable so Lookup can copy the (O(num_nodes)) payload
    /// outside the mutex instead of serializing workers behind it.
    std::shared_ptr<const RankResponse> response;
    int64_t uses = 0;  ///< Lookups served since insertion.
    int64_t sequence = 0;  ///< Insertion order, LFU tie-break.
    std::chrono::steady_clock::time_point inserted_at;
  };

  bool Expired(const Entry& entry,
               std::chrono::steady_clock::time_point now) const;
  /// Erases every expired entry; caller holds mu_.
  void DropExpired(std::chrono::steady_clock::time_point now);

  ScoreCacheOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  int64_t next_sequence_ = 0;
  ScoreCacheStats stats_;
};

}  // namespace d2pr

#endif  // D2PR_SERVE_SCORE_CACHE_H_
