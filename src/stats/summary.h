// Univariate summary statistics.

#ifndef D2PR_STATS_SUMMARY_H_
#define D2PR_STATS_SUMMARY_H_

#include <span>

namespace d2pr {

/// \brief Moments and order statistics of one sample.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Population standard deviation.
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// \brief Computes the summary (O(n log n) due to the median).
Summary Summarize(std::span<const double> values);

/// \brief q-th quantile (0 <= q <= 1) with linear interpolation between
/// order statistics. Returns 0 on an empty sample.
double Quantile(std::span<const double> values, double q);

}  // namespace d2pr

#endif  // D2PR_STATS_SUMMARY_H_
