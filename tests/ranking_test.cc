#include "stats/ranking.h"

#include <vector>

#include <gtest/gtest.h>

namespace d2pr {
namespace {

TEST(AverageRanksTest, NoTiesDescending) {
  std::vector<double> scores{0.1, 0.9, 0.5};
  const std::vector<double> ranks = AverageRanks(scores);
  EXPECT_EQ(ranks, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(AverageRanksTest, NoTiesAscending) {
  std::vector<double> scores{0.1, 0.9, 0.5};
  const std::vector<double> ranks =
      AverageRanks(scores, RankOrder::kAscending);
  EXPECT_EQ(ranks, (std::vector<double>{1.0, 3.0, 2.0}));
}

TEST(AverageRanksTest, TiesShareAverageRank) {
  // Descending: 9 -> rank 1; the two 5s occupy positions 2,3 -> 2.5 each;
  // 1 -> rank 4.
  std::vector<double> scores{5.0, 9.0, 5.0, 1.0};
  const std::vector<double> ranks = AverageRanks(scores);
  EXPECT_EQ(ranks, (std::vector<double>{2.5, 1.0, 2.5, 4.0}));
}

TEST(AverageRanksTest, AllEqualGetMiddleRank) {
  std::vector<double> scores{7.0, 7.0, 7.0};
  const std::vector<double> ranks = AverageRanks(scores);
  EXPECT_EQ(ranks, (std::vector<double>{2.0, 2.0, 2.0}));
}

TEST(AverageRanksTest, EmptyAndSingle) {
  EXPECT_TRUE(AverageRanks(std::vector<double>{}).empty());
  EXPECT_EQ(AverageRanks(std::vector<double>{3.0}),
            (std::vector<double>{1.0}));
}

TEST(OrdinalRanksTest, TiesBrokenByIndex) {
  std::vector<double> scores{5.0, 9.0, 5.0};
  const std::vector<int64_t> ranks = OrdinalRanks(scores);
  EXPECT_EQ(ranks, (std::vector<int64_t>{2, 1, 3}));
}

TEST(OrdinalRanksTest, AscendingOrder) {
  std::vector<double> scores{5.0, 9.0, 1.0};
  const std::vector<int64_t> ranks =
      OrdinalRanks(scores, RankOrder::kAscending);
  EXPECT_EQ(ranks, (std::vector<int64_t>{2, 3, 1}));
}

TEST(OrdinalRanksTest, RanksAreAPermutation) {
  std::vector<double> scores{2.0, 2.0, 2.0, 1.0, 3.0};
  std::vector<int64_t> ranks = OrdinalRanks(scores);
  std::sort(ranks.begin(), ranks.end());
  EXPECT_EQ(ranks, (std::vector<int64_t>{1, 2, 3, 4, 5}));
}

TEST(TopKTest, ReturnsLargestInOrder) {
  std::vector<double> scores{0.3, 0.9, 0.1, 0.7};
  EXPECT_EQ(TopK(scores, 2), (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(TopK(scores, 10), (std::vector<NodeId>{1, 3, 0, 2}));
  EXPECT_TRUE(TopK(scores, 0).empty());
}

TEST(TopKTest, TieBreaksBySmallerIndex) {
  std::vector<double> scores{0.5, 0.5, 0.9};
  EXPECT_EQ(TopK(scores, 3), (std::vector<NodeId>{2, 0, 1}));
}

TEST(BottomKTest, ReturnsSmallestInOrder) {
  std::vector<double> scores{0.3, 0.9, 0.1, 0.7};
  EXPECT_EQ(BottomK(scores, 2), (std::vector<NodeId>{2, 0}));
}

}  // namespace
}  // namespace d2pr
