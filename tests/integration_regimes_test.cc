// End-to-end reproduction of the paper's headline finding at test scale:
// the sign of the optimal de-coupling weight p matches each application
// group (A: p > 0, B: p ≈ 0, C: p <= 0), and the degree-significance
// correlation (paper Fig. 5) predicts the group.

#include <gtest/gtest.h>

#include "datagen/dataset_registry.h"
#include "core/sweeps.h"
#include "eval/experiment.h"
#include "graph/graph_stats.h"
#include "stats/correlation.h"

namespace d2pr {
namespace {

struct RegimeCase {
  PaperGraphId id;
};

class RegimeTest : public ::testing::TestWithParam<PaperGraphId> {
 protected:
  static constexpr double kScale = 0.5;

  DataGraph Graph() {
    RegistryOptions options;
    options.scale = kScale;
    auto graph = MakePaperGraph(GetParam(), options);
    EXPECT_TRUE(graph.ok()) << graph.status().ToString();
    return std::move(graph).value();
  }
};

TEST_P(RegimeTest, OptimalPSignMatchesExpectedGroup) {
  const DataGraph data = Graph();
  auto series = CorrelationPSweep(data.unweighted, data.significance,
                                  PaperPGrid(), BenchOptions());
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  const CorrelationPoint best = BestPoint(*series);
  const CorrelationPoint conventional = ConventionalPoint(*series);
  // Tolerance below which "best" is indistinguishable from conventional:
  // Group B curves are flat for p < 0 (paper Fig. 3 shows the same
  // plateau), so the argmax may drift within curve noise.
  constexpr double kFlatTolerance = 0.02;
  switch (data.expected_group) {
    case ApplicationGroup::kPenalizationHelps:
      EXPECT_GT(best.p, 0.0) << data.name;
      // Penalization must be a real improvement, not curve noise.
      EXPECT_GT(best.correlation,
                conventional.correlation + kFlatTolerance)
          << data.name;
      break;
    case ApplicationGroup::kConventionalIdeal:
      // p = 0 is optimal up to curve flatness.
      EXPECT_LE(best.correlation,
                conventional.correlation + kFlatTolerance)
          << data.name;
      break;
    case ApplicationGroup::kBoostingHelps:
      EXPECT_LE(best.p, 0.0) << data.name;
      break;
  }
}

TEST_P(RegimeTest, DegreeSignificanceCorrelationPredictsGroup) {
  // Paper Fig. 5: the sign of Spearman(degree, significance) separates
  // Group A (negative) from Group C (clearly positive).
  const DataGraph data = Graph();
  const double coupling = SpearmanCorrelation(
      DegreesAsDoubles(data.unweighted), data.significance);
  switch (data.expected_group) {
    case ApplicationGroup::kPenalizationHelps:
      EXPECT_LT(coupling, 0.0) << data.name;
      break;
    case ApplicationGroup::kConventionalIdeal:
      EXPECT_GT(coupling, -0.05) << data.name;
      EXPECT_LT(coupling, 0.45) << data.name;
      break;
    case ApplicationGroup::kBoostingHelps:
      EXPECT_GT(coupling, 0.05) << data.name;
      break;
  }
}

TEST_P(RegimeTest, OverPenalizationNeverBeatsModeratePenalization) {
  // For every graph, the extreme p = 4 walk (always to the min-degree
  // neighbor) must not beat the best grid point: the curves have interior
  // structure rather than being monotone in p.
  const DataGraph data = Graph();
  auto series = CorrelationPSweep(data.unweighted, data.significance,
                                  PaperPGrid(), BenchOptions());
  ASSERT_TRUE(series.ok());
  const CorrelationPoint best = BestPoint(*series);
  EXPECT_GE(best.correlation, series->back().correlation) << data.name;
  EXPECT_GE(best.correlation, series->front().correlation) << data.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperGraphs, RegimeTest,
    ::testing::ValuesIn(AllPaperGraphIds()),
    [](const ::testing::TestParamInfo<PaperGraphId>& info) {
      return std::string(PaperGraphName(info.param));
    });

TEST(RegimeSummaryTest, PagerankDegreeCouplingIsHigh) {
  // Paper Table 1: Spearman(PageRank rank, degree rank) in [0.85, 1.0).
  RegistryOptions options;
  options.scale = 0.5;
  for (PaperGraphId id :
       {PaperGraphId::kLastfmListenerListener,
        PaperGraphId::kDblpArticleArticle,
        PaperGraphId::kImdbMovieMovie}) {
    auto data = MakePaperGraph(id, options);
    ASSERT_TRUE(data.ok());
    auto series = CorrelationPSweep(data->unweighted,
                                    DegreesAsDoubles(data->unweighted),
                                    {0.0}, BenchOptions());
    ASSERT_TRUE(series.ok());
    EXPECT_GT((*series)[0].correlation, 0.85) << PaperGraphName(id);
  }
}

}  // namespace
}  // namespace d2pr
