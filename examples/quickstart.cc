// Quickstart: build a small graph, stand up a D2prEngine, and compare
// conventional PageRank with degree de-coupled PageRank (D2PR) in one
// batch of ranking queries.
//
//   $ ./build/examples/quickstart
//
// The graph is the paper's Figure 1 example extended with a hub: node H
// connects to everything. Conventional PageRank puts the hub first; with
// degree penalization (p = 1) the hub drops and quieter nodes surface.

#include <cstdio>

#include "api/engine.h"
#include "graph/graph_builder.h"
#include "stats/ranking.h"

int main() {
  using namespace d2pr;

  // Nodes: A=0 B=1 C=2 D=3 E=4 F=5 H=6 (hub).
  const char* names[] = {"A", "B", "C", "D", "E", "F", "H"};
  GraphBuilder builder(7, GraphKind::kUndirected);
  const std::pair<NodeId, NodeId> edges[] = {
      {0, 1}, {0, 2}, {0, 3}, {1, 4}, {2, 4}, {2, 5},
      {6, 0}, {6, 1}, {6, 2}, {6, 3}, {6, 4}, {6, 5},  // hub H
  };
  for (auto [u, v] : edges) {
    Status status = builder.AddEdge(u, v);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  auto graph = builder.Build();
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  // One engine per graph; every query goes through it and shares its
  // transition cache.
  D2prEngine engine(std::move(*graph));

  // Conventional PageRank is D2PR with p = 0; the second request
  // penalizes high-degree destinations.
  const RankRequest requests[] = {
      {.p = 0.0, .alpha = 0.85},
      {.p = 1.0, .alpha = 0.85},
  };
  auto ranked = engine.RankBatch(requests);
  if (!ranked.ok()) {
    std::fprintf(stderr, "%s\n", ranked.status().ToString().c_str());
    return 1;
  }
  const RankResponse& conventional = (*ranked)[0];
  const RankResponse& decoupled = (*ranked)[1];

  std::printf("node  degree  PageRank(p=0)  rank   D2PR(p=1)  rank\n");
  const auto rank0 = OrdinalRanks(conventional.scores);
  const auto rank1 = OrdinalRanks(decoupled.scores);
  for (NodeId v = 0; v < engine.graph().num_nodes(); ++v) {
    std::printf("  %s   %6lld   %12.4f  %4lld  %10.4f  %4lld\n", names[v],
                static_cast<long long>(engine.graph().OutDegree(v)),
                conventional.scores[v], static_cast<long long>(rank0[v]),
                decoupled.scores[v], static_cast<long long>(rank1[v]));
  }
  std::printf(
      "\nThe hub H tops conventional PageRank; with p = 1 the walk avoids\n"
      "high-degree destinations and H falls in the ranking.\n");
  std::printf("(solver: %d and %d iterations, converged: %s/%s)\n",
              conventional.iterations, decoupled.iterations,
              conventional.converged ? "yes" : "no",
              decoupled.converged ? "yes" : "no");
  return 0;
}
