// ScoreCache: a request-keyed memo of full RankResponses with TTL
// expiry and LFU eviction.
//
// Serving traffic is heavily repetitive — dashboards re-request the same
// global ranking, recommenders re-rank the same hot users — and a D2PR
// solve is deterministic given the graph and the request, so an identical
// request can be answered from memory without touching a solver. The
// cache stores the complete response (scores plus diagnostics) keyed by a
// canonical serialization of every response-affecting request field.
//
// Eviction is two-tiered, matching how ranking results age:
//   * TTL: entries older than `ttl` are dropped at lookup/insert time —
//     a bound on staleness for deployments that mutate the graph by
//     swapping engines.
//   * LFU: when over budget, the least-frequently-used entry goes
//     first (ties broken by oldest insertion), keeping the hot head of a
//     skewed query distribution resident.
//
// The budget is expressed in entries (capacity), bytes (capacity_bytes),
// or both — whichever nonzero limit is breached first triggers eviction.
// Byte budgeting exists because entries are wildly uneven: a full score
// vector is O(|V|) doubles while a truncated top-k response is O(k), so
// an entry count alone either starves full-vector workloads or lets
// mixed workloads blow past any intended memory envelope.
//
// Thread-safe; the clock is injectable so TTL behavior is testable
// without sleeping.

#ifndef D2PR_SERVE_SCORE_CACHE_H_
#define D2PR_SERVE_SCORE_CACHE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "api/rank_request.h"

namespace d2pr {

/// \brief ScoreCache construction knobs.
struct ScoreCacheOptions {
  /// Max resident responses; 0 = no entry-count limit. The cache is
  /// disabled entirely (every Lookup misses, Insert is a no-op) only when
  /// capacity AND capacity_bytes are both 0.
  size_t capacity = 256;
  /// Max resident bytes, as accounted by ChargeFor; 0 (the default) = no
  /// byte limit. A response whose single-entry charge exceeds this budget
  /// is rejected outright (counted in oversize_rejections) rather than
  /// flushing the whole cache to make room.
  size_t capacity_bytes = 0;
  /// Entries older than this are expired; zero (the default) means no
  /// time-based expiry.
  std::chrono::nanoseconds ttl{0};
  /// Time source; defaults to steady_clock. Tests inject a fake to drive
  /// TTL expiry deterministically.
  std::function<std::chrono::steady_clock::time_point()> now;
};

/// \brief Cumulative ScoreCache counters (snapshot by value).
struct ScoreCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;    ///< LFU budget evictions (entries or bytes).
  int64_t expirations = 0;  ///< TTL expiries.
  /// Inserts rejected because one entry's charge exceeded capacity_bytes.
  int64_t oversize_rejections = 0;
  /// Current charged bytes (a gauge, not cumulative).
  size_t bytes_in_use = 0;
};

/// \brief TTL + LFU memo of RankResponses keyed by canonical request.
class ScoreCache {
 public:
  explicit ScoreCache(const ScoreCacheOptions& options = {});

  /// Entry-count-only compatibility constructor (the pre-byte-budget
  /// signature): `ScoreCache cache(256)` keeps meaning what it always
  /// did.
  explicit ScoreCache(size_t capacity);

  /// \brief The bytes an entry under `key` holding `response` is charged
  /// against capacity_bytes: a fixed per-entry overhead (map node, Entry
  /// bookkeeping, response control block) plus the key and the variable
  /// payloads (full score vector and/or truncated top-k entries).
  /// Deliberately an estimate of resident footprint, not a serialization
  /// size — it only needs to be monotone in actual memory use.
  static size_t ChargeFor(const std::string& key,
                          const RankResponse& response);

  /// Canonical serialization of every field of `request` that affects its
  /// response. Requests that are semantically identical map to one key.
  /// The warm-start tag is deliberately excluded: warm-started responses
  /// depend on engine trajectory state and must not be memoized —
  /// ServingRuntime bypasses the cache for them.
  static std::string KeyFor(const RankRequest& request);

  /// Returns a copy of the stored response, bumping the entry's use
  /// count; nullopt on miss or TTL expiry (which erases the entry).
  std::optional<RankResponse> Lookup(const std::string& key);

  /// Stores (or refreshes) `response` under `key`, first dropping expired
  /// entries, then LFU-evicting until both nonzero budgets (entries,
  /// bytes) hold.
  void Insert(const std::string& key, RankResponse response);

  ScoreCacheStats stats() const;
  size_t size() const;
  /// Currently charged bytes (0 whenever the cache is empty; maintained
  /// even without a byte limit, so telemetry can size a budget).
  size_t bytes_in_use() const;
  size_t capacity() const { return options_.capacity; }
  size_t capacity_bytes() const { return options_.capacity_bytes; }
  /// True when some budget admits entries (capacity or capacity_bytes
  /// nonzero). Serving layers gate their lookup/insert path on this.
  bool enabled() const {
    return options_.capacity > 0 || options_.capacity_bytes > 0;
  }
  void Clear();

 private:
  struct Entry {
    /// Shared + immutable so Lookup can copy the (O(num_nodes)) payload
    /// outside the mutex instead of serializing workers behind it.
    std::shared_ptr<const RankResponse> response;
    int64_t uses = 0;  ///< Lookups served since insertion.
    int64_t sequence = 0;  ///< Insertion order, LFU tie-break.
    size_t charge = 0;  ///< Bytes charged against capacity_bytes.
    std::chrono::steady_clock::time_point inserted_at;
  };

  bool Expired(const Entry& entry,
               std::chrono::steady_clock::time_point now) const;
  /// Erases every expired entry; caller holds mu_.
  void DropExpired(std::chrono::steady_clock::time_point now);
  /// Evicts the LFU entry (ties to oldest), skipping `protect` when
  /// non-null; caller holds mu_ and guarantees an evictable entry
  /// exists.
  void EvictOne(const std::string* protect = nullptr);

  ScoreCacheOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  int64_t next_sequence_ = 0;
  size_t bytes_in_use_ = 0;  ///< Sum of resident entries' charges.
  ScoreCacheStats stats_;
};

}  // namespace d2pr

#endif  // D2PR_SERVE_SCORE_CACHE_H_
