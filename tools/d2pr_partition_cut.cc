// d2pr_partition_cut: partitions a graph once and writes one
// self-describing cut file per shard (graph/shard_cut.h), so a fleet of
// `d2pr_server --shard-role --shard-file=...` processes can host the
// distributed block solve without any of them ever loading the whole
// graph.
//
// The graph comes from the same flags d2pr_server uses (an edge list or
// the seeded synthetic generator), so cutting the synthetic bench graph
// is one command. Files land in --out-dir under the canonical name
// "cut-<fingerprint16>-<scheme>-s<shard>of<N>.d2psc"; the final line
// prints the fingerprint so launch scripts can cross-check the fleet.

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/rng.h"
#include "d2pr_net_flags.h"
#include "datagen/classic_generators.h"
#include "graph/graph_fingerprint.h"
#include "graph/graph_io.h"
#include "graph/partition.h"
#include "graph/shard_cut.h"

namespace d2pr {
namespace {

constexpr char kUsage[] =
    "usage: d2pr_partition_cut --out-dir=DIR [flags]\n"
    "  --out-dir=DIR        directory the cut files are written into\n"
    "                       (required; created if missing)\n"
    "  --shards=N           number of shards to cut (default 2)\n"
    "  --scheme=NAME        partition scheme: range (default) or hash\n"
    "  --graph=EDGELIST     cut this graph (with --directed/--weighted)\n"
    "  --nodes=N            synthetic graph size (default 10000;\n"
    "                       excludes --graph)\n"
    "  --edges-per-node=N   synthetic attachment degree (default 8)\n"
    "  --gen-seed=N         synthetic generator seed (default 42)\n";

int UsageError(const char* message) {
  std::fprintf(stderr, "%s\n%s", message, kUsage);
  return 2;
}

int Run(const Flags& flags) {
  const Status valid = ValidatePartitionCutFlags(flags);
  if (!valid.ok()) return UsageError(valid.ToString().c_str());

  const size_t shards = static_cast<size_t>(*flags.GetInt("shards", 2));
  const PartitionScheme scheme = flags.GetString("scheme") == "hash"
                                     ? PartitionScheme::kHash
                                     : PartitionScheme::kRange;
  const std::string out_dir = flags.GetString("out-dir");

  Result<CsrGraph> graph = [&]() -> Result<CsrGraph> {
    if (flags.Has("graph")) {
      return ReadEdgeListText(flags.GetString("graph"),
                              *flags.GetBool("directed", false)
                                  ? GraphKind::kDirected
                                  : GraphKind::kUndirected,
                              *flags.GetBool("weighted", false));
    }
    Rng rng(static_cast<uint64_t>(*flags.GetInt("gen-seed", 42)));
    return BarabasiAlbert(
        static_cast<NodeId>(*flags.GetInt("nodes", 10000)),
        static_cast<int32_t>(*flags.GetInt("edges-per-node", 8)), &rng);
  }();
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create --out-dir %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  // The cut needs the forward slices (owned out-rows with global arc
  // indexes) in addition to the in-CSR the solvers use.
  PartitionOptions popts;
  popts.scheme = scheme;
  popts.num_shards = shards;
  popts.build_out_csr = true;
  Result<GraphPartition> partition = GraphPartition::Build(*graph, popts);
  if (!partition.ok()) {
    std::fprintf(stderr, "%s\n", partition.status().ToString().c_str());
    return 1;
  }

  const uint64_t fingerprint = GraphFingerprint(*graph);
  int64_t total_bytes = 0;
  for (size_t s = 0; s < shards; ++s) {
    const std::string name = ShardCutFileName(fingerprint, scheme, shards, s);
    const std::string path =
        (std::filesystem::path(out_dir) / name).string();
    const Status saved = SaveShardCut(*graph, *partition, s, path);
    if (!saved.ok()) {
      std::fprintf(stderr, "shard %zu: %s\n", s, saved.ToString().c_str());
      return 1;
    }
    std::error_code size_ec;
    const uintmax_t bytes = std::filesystem::file_size(path, size_ec);
    if (!size_ec) total_bytes += static_cast<int64_t>(bytes);
    std::fprintf(stderr, "wrote %s (%zu owned nodes, %lld bytes)\n",
                 name.c_str(), partition->shard(s).num_owned(),
                 size_ec ? 0LL : static_cast<long long>(bytes));
  }
  std::printf("cut %d nodes, %lld arcs into %zu %s shards: %lld bytes, "
              "fingerprint %016llx\n",
              graph->num_nodes(), static_cast<long long>(graph->num_arcs()),
              shards, PartitionSchemeName(scheme),
              static_cast<long long>(total_bytes),
              static_cast<unsigned long long>(fingerprint));
  return 0;
}

}  // namespace
}  // namespace d2pr

int main(int argc, char** argv) {
  auto flags = d2pr::Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    return d2pr::UsageError(flags.status().ToString().c_str());
  }
  return d2pr::Run(flags.value());
}
