// Figure 6: relationship between alpha and p for application Group A
// (degree penalization helps). Paper shape: for actor-actor and
// commenter-commenter, *lower* alpha gives the highest correlations at the
// optimal p ≈ 0.5, but when degrees are over-penalized (p >> 0.5) higher
// alpha wins; product-product instead benefits from long walks (high
// alpha) throughout.

#include "datagen/dataset_registry.h"
#include "repro_common.h"

int main() {
  return d2pr::bench::RunGroupAlphaFigure(
      d2pr::ApplicationGroup::kPenalizationHelps,
      "Figure 6: alpha x p interplay (Group A)",
      "Figure 6(a)-(c): unweighted graphs, alpha in {0.5, 0.7, 0.85, 0.9}",
      "figure6");
}
